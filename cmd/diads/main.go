// Command diads is the DIADS console: it builds a scenario on the
// simulated Figure 1 testbed and renders the tool's screens — the
// query-selection table (Figure 3), the APG visualization (Figure 6), the
// diagnosis workflow (Figure 7), and the final report.
//
// Usage:
//
// -symdb FILE extends the built-in symptoms database with entries from
// an administrator-authored DSL file — including entries learned and
// persisted by diadsd's fleet learning loop, closing the loop from
// online learning back to the offline console.
//
//	diads [-scenario N] [-seed S] [-screen query|apg|workflow|timing|telemetry|report|all] [-symdb FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"diads/internal/console"
	"diads/internal/diag"
	"diads/internal/experiments"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
)

func main() {
	scenario := flag.Int("scenario", 1, "scenario number (1-9, see DESIGN.md)")
	seed := flag.Int64("seed", 42, "simulation seed")
	screen := flag.String("screen", "all", "screen to render: query|apg|workflow|timing|telemetry|report|all")
	component := flag.String("component", string(testbed.VolV1), "component for the APG metric panel")
	symdb := flag.String("symdb", "", "DSL file with extra symptom entries (e.g. learned by diadsd) added to the built-in database")
	flag.Parse()

	if err := run(experiments.ScenarioID(*scenario), *seed, *screen, *component, *symdb); err != nil {
		fmt.Fprintln(os.Stderr, "diads:", err)
		os.Exit(1)
	}
}

func run(id experiments.ScenarioID, seed int64, screen, component, symdbPath string) error {
	sc, err := experiments.Build(id, seed)
	if err != nil {
		return err
	}
	if symdbPath != "" {
		data, err := os.ReadFile(symdbPath)
		if err != nil {
			return err
		}
		extra, err := symptoms.Parse(string(data))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", symdbPath, err)
		}
		db := symptoms.Builtin()
		for _, e := range extra.Entries() {
			if err := db.Add(e); err != nil {
				return fmt.Errorf("entry %s from %s: %w", e.Kind, symdbPath, err)
			}
		}
		sc.Input.SymDB = db
		fmt.Printf("symptoms database extended with %d entries from %s\n", len(extra.Entries()), symdbPath)
	}
	fmt.Printf("scenario %d: %s\n%s\n\n", sc.ID, sc.Title, sc.Description)

	w, err := diag.NewWorkflow(sc.Input)
	if err != nil {
		return err
	}
	res, err := w.Run()
	if err != nil {
		return err
	}

	show := func(name string) bool { return screen == name || screen == "all" }

	if show("query") {
		fmt.Println(console.QueryScreen(sc.Input.Runs, sc.Input.Satisfactory))
	}
	if show("apg") && res.APG != nil {
		unsat := sc.Input.UnsatRuns()
		if len(unsat) > 0 {
			var windows []simtime.Interval
			for _, r := range unsat {
				windows = append(windows, metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop)))
			}
			fmt.Println(console.APGScreen(res.APG, sc.Input.Store, unsat[0], component, windows))
		}
	}
	if show("workflow") {
		fmt.Println(console.WorkflowScreen(w))
	}
	if show("timing") {
		fmt.Println(console.TimingPanel(res.Trace))
	}
	if show("telemetry") {
		// The same snapshot render diadsd prints and /metrics serves:
		// module wall histograms and outcome counters from this run.
		fmt.Println(telemetry.RenderSnapshot(telemetry.Default().Snapshot()))
	}
	if show("report") {
		fmt.Println(res.Render())
	}
	return nil
}

// Command diads is the DIADS console: it builds a scenario on the
// simulated Figure 1 testbed and renders the tool's screens — the
// query-selection table (Figure 3), the APG visualization (Figure 6), the
// diagnosis workflow (Figure 7), and the final report.
//
// Usage:
//
//	diads [-scenario N] [-seed S] [-screen query|apg|workflow|timing|report|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"diads/internal/console"
	"diads/internal/diag"
	"diads/internal/experiments"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/testbed"
)

func main() {
	scenario := flag.Int("scenario", 1, "scenario number (1-9, see DESIGN.md)")
	seed := flag.Int64("seed", 42, "simulation seed")
	screen := flag.String("screen", "all", "screen to render: query|apg|workflow|timing|report|all")
	component := flag.String("component", string(testbed.VolV1), "component for the APG metric panel")
	flag.Parse()

	if err := run(experiments.ScenarioID(*scenario), *seed, *screen, *component); err != nil {
		fmt.Fprintln(os.Stderr, "diads:", err)
		os.Exit(1)
	}
}

func run(id experiments.ScenarioID, seed int64, screen, component string) error {
	sc, err := experiments.Build(id, seed)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %d: %s\n%s\n\n", sc.ID, sc.Title, sc.Description)

	w, err := diag.NewWorkflow(sc.Input)
	if err != nil {
		return err
	}
	res, err := w.Run()
	if err != nil {
		return err
	}

	show := func(name string) bool { return screen == name || screen == "all" }

	if show("query") {
		fmt.Println(console.QueryScreen(sc.Input.Runs, sc.Input.Satisfactory))
	}
	if show("apg") && res.APG != nil {
		unsat := sc.Input.UnsatRuns()
		if len(unsat) > 0 {
			var windows []simtime.Interval
			for _, r := range unsat {
				windows = append(windows, metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop)))
			}
			fmt.Println(console.APGScreen(res.APG, sc.Input.Store, unsat[0], component, windows))
		}
	}
	if show("workflow") {
		fmt.Println(console.WorkflowScreen(w))
	}
	if show("timing") {
		fmt.Println(console.TimingPanel(res.Trace))
	}
	if show("report") {
		fmt.Println(res.Render())
	}
	return nil
}

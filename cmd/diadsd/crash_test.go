package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diads/internal/symptoms"
)

// buildDaemon compiles diadsd into a temp dir once per test run. The
// crash test needs a real process it can SIGKILL — in-process testing
// cannot model "the daemon died between truncate and write".
func buildDaemon(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "diadsd")
	cmd := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building diadsd: %v\n%s", err, out)
	}
	return bin
}

// parseLearned reads and parses the persisted DSL, failing the test on
// a corrupt file — the exact artifact a non-atomic flush leaves behind.
// It returns the set of entry kinds.
func parseLearned(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading learned DB: %v", err)
	}
	db, err := symptoms.Parse(string(data))
	if err != nil {
		t.Fatalf("learned DB corrupt: %v\n%s", err, data)
	}
	kinds := make(map[string]bool)
	for _, e := range db.Entries() {
		kinds[e.Kind] = true
	}
	return kinds
}

// TestKillAndResumeLearnedDB is the crash-consistency test for -learned
// persistence: a completed fleet run installs mined entries and persists
// them; a second run of the same command is SIGKILLed mid-run; a third
// run must still load every previously installed entry. The kill may
// land at any point — including inside the flush — so this pins both
// properties the persistence layer claims: the file is only replaced
// atomically, and a restart resumes from whatever complete state the
// last successful flush left.
func TestKillAndResumeLearnedDB(t *testing.T) {
	bin := buildDaemon(t)
	learned := filepath.Join(t.TempDir(), "learned.dsl")
	args := []string{"-instances", "4", "-degraded", "3", "-runs", "12", "-seed", "11", "-learned", learned}

	// Run 1: to completion. The canonical learning scenario must install
	// at least one mined entry, or the survival assertions are vacuous.
	if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
		t.Fatalf("run 1: %v\n%s", err, out)
	}
	installed := parseLearned(t, learned)
	if len(installed) == 0 {
		t.Fatal("run 1 installed no mined entries; scenario lost its teeth")
	}

	// Run 2: SIGKILL mid-run. A bigger fleet keeps it busy long enough
	// that the kill is unambiguously mid-run; stderr is watched for the
	// startup line so the kill cannot land before the flag parsing that
	// would make the run a no-op.
	big := []string{"-instances", "8", "-degraded", "6", "-runs", "24", "-seed", "11", "-learned", learned}
	run2 := exec.Command(bin, big...)
	stderr, err := run2.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := run2.Start(); err != nil {
		t.Fatalf("starting run 2: %v", err)
	}
	started := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "fleet starting") {
				close(started)
				break
			}
		}
		// Drain so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("run 2 never reported fleet starting")
	}
	time.Sleep(300 * time.Millisecond) // let it get properly mid-run
	if err := run2.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = run2.Wait() // expected: killed

	// The persisted DB must be intact and complete after the crash.
	afterCrash := parseLearned(t, learned)
	for kind := range installed {
		if !afterCrash[kind] {
			t.Errorf("entry %s lost to the crash", kind)
		}
	}

	// Run 3: restart. The daemon must load the surviving entries and
	// complete normally.
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("run 3 after crash: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("loaded learned entries")) {
		t.Errorf("run 3 did not report loading learned entries:\n%s", out)
	}
	final := parseLearned(t, learned)
	for kind := range installed {
		if !final[kind] {
			t.Errorf("entry %s missing after resume", kind)
		}
	}
}

// Command diadsd is the always-on DIADS daemon: it drives the simulated
// Figure 1 testbed under a configurable multi-query workload with a SAN
// misconfiguration injected on a schedule, streams every completed run
// through the online monitor, fans detected slowdowns out to the
// concurrent diagnosis service's worker pool, and periodically prints
// the ranked incident report an operator would watch.
//
// With -instances N > 1 it drives a fleet instead: N staggered instances
// stream concurrently into one shared service, the first -degraded of
// them attached to a misconfigured shared SAN pool, and the daemon
// prints the grouped fleet incident view with its per-instance breakdown
// and the cross-instance symptom-learning summary.
//
// Mined-candidate review and persistence (fleet mode): by default
// candidates that pass healthy-corpus validation install automatically.
// -review holds them for an operator instead — validated candidates are
// printed in the admin DSL for a human to adopt — and -ack KIND[,KIND]
// plays the operator, accepting exactly the listed mined kinds.
// -learned FILE loads previously-learned entries (the DSL written by an
// earlier run) into the shared database before streaming and writes the
// union of old and newly-installed entries back afterwards, so learned
// knowledge persists across daemon runs.
//
// Serving mode: -listen ADDR skips the simulator entirely and serves
// the HTTP ingest/query/operator API — external clients POST samples,
// runs, and configuration events per tenant instance, diagnoses run
// against the posted evidence, and incidents/candidates/modules are
// queried back over the same mux, which also carries the full telemetry
// surface (/metrics, /healthz, /readyz, /traces, /debug/pprof). On
// SIGINT/SIGTERM the daemon drains: ingest returns 503, in-flight
// diagnoses finish, -learned is flushed, and the listener closes. See
// API.md for the wire contract.
//
// Telemetry: every layer instruments the process-wide registry, and
// -telemetry ADDR serves it while the daemon runs — /metrics (Prometheus
// text), /healthz, /traces (per-slowdown span streams), and
// /debug/pprof. Structured events go to stderr through log/slog
// (-log-json for one JSON object per line). The end-of-run summary is
// the same registry snapshot /metrics serves, rendered for the console.
// The daemon also watches itself: its per-diagnosis wall times feed a
// dedicated self-monitor whose slowdown events — diadsd diagnosing
// diadsd — are logged like any other detection. -linger keeps the
// process (and the telemetry listener) alive after the run until
// SIGINT/SIGTERM, for scrapes and profile grabs.
//
// Usage:
//
//	diadsd [-seed S] [-workers N] [-chunk MIN] [-report-every N] [-runs N] [-quiet]
//	diadsd -instances N [-degraded M] [-seed S] [-workers N] [-chunk MIN] [-runs N]
//	       [-review] [-ack KIND,KIND] [-learned FILE]
//	diadsd -telemetry 127.0.0.1:9090 [-log-json] [-linger] ...
//	diadsd -listen 127.0.0.1:8080 [-seed S] [-workers N] [-learned FILE] [-log-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"diads/internal/api"
	"diads/internal/console"
	"diads/internal/experiments"
	"diads/internal/fleet"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/telemetry/selfmon"
	"diads/internal/testbed"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	workers := flag.Int("workers", 4, "diagnosis worker pool size")
	chunkMin := flag.Float64("chunk", 30, "simulation chunk in minutes (monitoring lag; fleet default 10)")
	reportEvery := flag.Int("report-every", 4, "print the incident report every N chunks")
	runs := flag.Int("runs", 16, "Q2 runs to schedule (other queries scale along)")
	instances := flag.Int("instances", 1, "fleet size; above 1 streams a multi-instance fleet")
	shards := flag.Int("shards", 1, "fleet coordinator shards (results are shard-count invariant)")
	degraded := flag.Int("degraded", 0, "instances on the misconfigured shared pool (default 3/4 of the fleet)")
	review := flag.Bool("review", false, "hold validated candidates for operator review instead of auto-accepting")
	ack := flag.String("ack", "", "comma-separated mined kinds the operator accepts (implies -review)")
	learned := flag.String("learned", "", "DSL file to load learned symptom entries from and persist installed ones to")
	quiet := flag.Bool("quiet", false, "suppress per-event output")
	listen := flag.String("listen", "", "serve the HTTP ingest/query/operator API on this address instead of simulating (e.g. 127.0.0.1:8080)")
	idleBatches := flag.Int("idle-batches", 0, "evict a tenant instance idle for this many applied batches (0 disables; incidents survive, state rebuilds on its next batch)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /healthz, /traces, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	logJSON := flag.Bool("log-json", false, "emit structured events as JSON lines")
	linger := flag.Bool("linger", false, "keep serving telemetry after the run until SIGINT/SIGTERM")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	logger := telemetry.NewLogger(os.Stderr, *logJSON)
	slog.SetDefault(logger)

	var srv *telemetry.Server
	if *telemetryAddr != "" {
		srv = telemetry.NewServer(*telemetryAddr, nil, nil)
		addr, err := srv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, "diadsd: telemetry listener:", err)
			os.Exit(1)
		}
		//lint:allow errdiscard best-effort telemetry listener teardown on exit; nothing left to report to
		defer srv.Close()
		logger.Info("telemetry listening", "addr", addr,
			"endpoints", "/metrics /healthz /traces /debug/pprof")
	} else if *linger {
		fmt.Fprintln(os.Stderr, "diadsd: -linger needs -telemetry (nothing to serve)")
		os.Exit(2)
	}

	self := selfmon.New(selfmon.Config{})

	var err error
	if *listen != "" {
		// Serving mode has no simulator driving it, so every flag that
		// shapes a simulated timeline is rejected rather than ignored.
		// -telemetry too: the API listener carries the telemetry surface
		// on the same mux.
		for _, unsupported := range []string{"chunk", "report-every", "runs", "instances",
			"shards", "degraded", "review", "ack", "quiet", "linger", "telemetry"} {
			if set[unsupported] {
				fmt.Fprintf(os.Stderr, "diadsd: -%s does not apply with -listen (the API serves posted evidence)\n", unsupported)
				os.Exit(2)
			}
		}
		if err := serve(*listen, *seed, *workers, *idleBatches, *learned, self, logger); err != nil {
			fmt.Fprintln(os.Stderr, "diadsd:", err)
			os.Exit(1)
		}
		drainSelf(self, logger)
		fmt.Println(telemetry.RenderSnapshot(telemetry.Default().Snapshot()))
		return
	}
	if set["idle-batches"] {
		// The idle horizon is a serving-surface lifecycle; simulated
		// fleets bound residency with the shard cap instead.
		fmt.Fprintln(os.Stderr, "diadsd: -idle-batches only applies with -listen")
		os.Exit(2)
	}
	if *instances > 1 {
		// The fleet runs to completion and prints one grouped report;
		// flags that only shape the single-instance streaming loop are
		// rejected rather than silently ignored.
		for _, unsupported := range []string{"report-every", "quiet"} {
			if set[unsupported] {
				fmt.Fprintf(os.Stderr, "diadsd: -%s does not apply with -instances > 1\n", unsupported)
				os.Exit(2)
			}
		}
		chunk := simtime.Duration(0) // fleet default (10 minutes)
		if set["chunk"] {
			if *chunkMin <= 0 {
				fmt.Fprintln(os.Stderr, "diadsd: -chunk must be positive with -instances > 1 (barriers need boundaries)")
				os.Exit(2)
			}
			chunk = simtime.Duration(*chunkMin) * simtime.Minute
		}
		var ackKinds []string
		if *ack != "" {
			*review = true
			for _, k := range strings.Split(*ack, ",") {
				if k = strings.TrimSpace(k); k != "" {
					ackKinds = append(ackKinds, k)
				}
			}
		}
		err = runFleet(fleetOpts{
			seed: *seed, instances: *instances, degraded: *degraded,
			workers: *workers, runs: *runs, chunk: chunk, shards: *shards,
			review: *review, ackKinds: ackKinds, learnedPath: *learned,
			self: self, logger: logger,
		})
	} else {
		for _, unsupported := range []string{"review", "ack", "learned", "shards"} {
			if set[unsupported] {
				fmt.Fprintf(os.Stderr, "diadsd: -%s needs the fleet's learning loop (-instances > 1)\n", unsupported)
				os.Exit(2)
			}
		}
		err = run(*seed, *workers, *chunkMin, *reportEvery, *runs, *quiet, self, logger)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diadsd:", err)
		os.Exit(1)
	}

	drainSelf(self, logger)
	// One snapshot render for the console — the same data /metrics
	// serves, so the end-of-run summary and the scrape surface cannot
	// drift.
	fmt.Println(telemetry.RenderSnapshot(telemetry.Default().Snapshot()))

	if *linger {
		logger.Info("run complete, lingering for scrapes", "signal", "SIGINT/SIGTERM to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// serve runs the HTTP serving surface until SIGINT/SIGTERM, then drains
// gracefully: ingest stops (503), queued batches apply, in-flight
// diagnoses finish, learned entries flush, and the listener closes.
func serve(addr string, seed int64, workers, idleBatches int, learnedPath string,
	self *selfmon.SelfMonitor, logger *slog.Logger) error {
	symdb := symptoms.Builtin()
	learned := symptoms.NewDB()
	if learnedPath != "" {
		db, err := loadLearned(learnedPath)
		if err != nil {
			return err
		}
		learned = db
		for _, e := range learned.Entries() {
			if err := symdb.Add(e); err != nil {
				return fmt.Errorf("learned entry %s: %w", e.Kind, err)
			}
		}
		logger.Info("loaded learned entries", "count", len(learned.Entries()), "path", learnedPath)
	}
	node := api.New(api.Config{
		Seed:        seed,
		Service:     service.Config{Workers: workers},
		SymDB:       symdb,
		IdleBatches: idleBatches,
	})
	node.Service().Self = self
	srv := telemetry.NewServer(addr, nil, nil)
	node.Mount(srv)
	bound, err := srv.Start()
	if err != nil {
		node.Shutdown()
		return fmt.Errorf("listen: %w", err)
	}
	logger.Info("serving", "addr", bound,
		"endpoints", "/v1/... /metrics /healthz /readyz /traces /debug/pprof")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("signal received, draining", "signal", s.String())
	// Shutdown stops new ingest (503 draining), applies what was already
	// queued, and waits out the diagnosis pool — so the flush below sees
	// every candidate the accepted evidence could mine.
	node.Shutdown()
	if learnedPath != "" {
		if err := saveLearned(learnedPath, learned, node.Learner().Stats(), logger); err != nil {
			return err
		}
	}
	//lint:allow errdiscard best-effort telemetry listener teardown on exit; nothing left to report to
	srv.Close()
	logger.Info("drained and stopped")
	return nil
}

// drainSelf surfaces the dogfood loop's findings: slowdown events the
// daemon's self-monitor raised about its own diagnosis latency.
func drainSelf(self *selfmon.SelfMonitor, logger *slog.Logger) {
	for _, ev := range self.Drain() {
		logger.Warn("self-diagnosis: diadsd's own diagnosis latency degraded",
			"query", ev.Query, "kind", string(ev.Kind),
			"factor", fmt.Sprintf("%.2f", ev.Factor),
			"duration", ev.Duration.String(), "baseline", ev.Baseline.String(),
			"trace", ev.TraceID)
	}
	st := self.Stats()
	logger.Info("self-monitor summary",
		"observed", st.Observed, "events", st.Events, "queries", st.Queries)
}

// fleetOpts bundles the fleet-mode flags.
type fleetOpts struct {
	seed                int64
	instances, degraded int
	workers, runs       int
	shards              int
	chunk               simtime.Duration
	review              bool
	ackKinds            []string
	learnedPath         string
	self                *selfmon.SelfMonitor
	logger              *slog.Logger
}

// runFleet drives the multi-instance fleet to the end of its timeline
// and prints the grouped incident view plus the mined-candidate review
// panel. A chunk of 0 uses the fleet default (10 minutes).
func runFleet(o fleetOpts) error {
	if o.degraded <= 0 {
		o.degraded = 3 * o.instances / 4
		if o.degraded < 1 {
			o.degraded = 1
		}
	}
	if o.degraded > o.instances {
		return fmt.Errorf("-degraded %d exceeds -instances %d", o.degraded, o.instances)
	}
	spec := experiments.FleetSpec{
		Seed: o.seed, Instances: o.instances, Degraded: o.degraded,
		Runs: o.runs, Chunk: o.chunk, Workers: o.workers, Shards: o.shards,
		OperatorReview: o.review, AckKinds: o.ackKinds,
		SelfObserver: o.self,
	}
	learned := symptoms.NewDB()
	if o.learnedPath != "" {
		db, err := loadLearned(o.learnedPath)
		if err != nil {
			return err
		}
		learned = db
		full := symptoms.Builtin()
		for _, e := range learned.Entries() {
			if err := full.Add(e); err != nil {
				return fmt.Errorf("learned entry %s: %w", e.Kind, err)
			}
		}
		spec.SymDB = full
		o.logger.Info("loaded learned entries", "count", len(learned.Entries()), "path", o.learnedPath)
	}
	o.logger.Info("fleet starting", "instances", o.instances,
		"degraded", o.degraded, "shared_pool", string(testbed.PoolP1))
	rep, onsets, err := experiments.RunFleetSpec(spec)
	if err != nil {
		return err
	}
	fmt.Printf("fault onsets %s .. %s (staggered)\n\n",
		onsets[0].Clock(), onsets[o.degraded-1].Clock())
	fmt.Println(console.FleetPanel(rep))
	fmt.Println(console.CandidatesPanel(rep.Learning))
	if o.learnedPath != "" {
		if err := saveLearned(o.learnedPath, learned, rep.Learning, o.logger); err != nil {
			return err
		}
	}
	return nil
}

// loadLearned parses the learned-entry DSL file; a missing file is an
// empty database (first run).
func loadLearned(path string) (*symptoms.DB, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return symptoms.NewDB(), nil
	}
	if err != nil {
		return nil, err
	}
	db, err := symptoms.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return db, nil
}

// saveLearned persists the union of previously-learned entries and this
// run's validated installs back to the DSL file. The write is atomic —
// full body to a temp file in the same directory, then rename — so a
// crash (even SIGKILL) at any instant leaves either the old complete
// file or the new complete file, never a truncated one: learned
// knowledge must survive the daemon dying mid-flush.
func saveLearned(path string, learned *symptoms.DB, st fleet.LearnStats, logger *slog.Logger) error {
	added := 0
	for _, ie := range st.Installed {
		if err := learned.Add(ie.Entry); err != nil {
			return fmt.Errorf("persisting %s: %w", ie.Kind, err)
		}
		added++
	}
	body := "# symptom entries learned by diadsd — reloaded on the next run\n" + learned.Render()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	logger.Info("persisted learned entries", "total", len(learned.Entries()), "new", added, "path", path)
	return nil
}

func run(seed int64, workers int, chunkMin float64, reportEvery, runs int, quiet bool,
	self *selfmon.SelfMonitor, logger *slog.Logger) error {
	if reportEvery < 1 {
		return fmt.Errorf("-report-every must be at least 1, got %d", reportEvery)
	}
	env, err := experiments.BuildOnline(experiments.OnlineSpec{Seed: seed, Runs: runs})
	if err != nil {
		return err
	}
	tb, mon := env.Testbed, env.Monitor
	logger.Info("workload starting", "queries", "Q2/Q6/Q14",
		"fault_onset", env.Onset.Clock())

	watcher := monitor.NewWatcher(tb.Store, monitor.Config{MinRuns: 12, MinFactor: 1.3})
	watcher.Watch(string(testbed.VolV1), metrics.VolReadTime)
	watcher.Watch(string(testbed.VolV2), metrics.VolReadTime)

	svc := service.New(service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}, service.Config{Workers: workers})
	svc.Self = self
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	chunks := 0
	gate := &monitor.Gate{}
	tick := func(now simtime.Time) error {
		for {
			select {
			case ev := <-mon.Events():
				if !quiet {
					logger.Info("slowdown detected", "query", ev.Query,
						"kind", string(ev.Kind), "factor", fmt.Sprintf("%.2f", ev.Factor),
						"at", ev.At.Clock(), "trace", ev.TraceID)
				}
				gate.Add(ev)
			default:
				// Diagnose only once the emitted metrics cover the
				// event's window (the monitor can outrun the pipeline).
				for _, ev := range gate.Release(now) {
					err := svc.Submit(ev)
					switch err {
					case nil, service.ErrDuplicate:
					case service.ErrBackpressure:
						if !quiet {
							logger.Warn("shed under backpressure", "run", ev.RunID, "trace", ev.TraceID)
						}
					default:
						return err
					}
				}
				for _, a := range watcher.Poll() {
					if !quiet {
						logger.Info("metric alert", "alert", a.String())
					}
				}
				chunks++
				if chunks%reportEvery == 0 {
					svc.Wait() // settle in-flight diagnoses before reporting
					fmt.Printf("\n[%s]\n%s\n", now.Clock(), svc.Registry().Render())
				}
				return nil
			}
		}
	}
	if err := tb.SimulateStream(simtime.Duration(chunkMin)*simtime.Minute, tick); err != nil {
		return err
	}
	svc.Wait()
	svc.Stop()

	fmt.Printf("\n[final %s]\n%s\n", tb.Horizon.End.Clock(), svc.Registry().Render())

	incs := svc.Registry().Incidents()
	if len(incs) == 0 {
		return fmt.Errorf("no incidents diagnosed")
	}
	top := incs[0]
	fmt.Printf("\ntop incident: %s %s(%s) — impact %.1fs over %d events\n",
		top.Query, top.Kind, top.Subject, top.EstImpact(), top.Events)
	if top.Result != nil {
		fmt.Println()
		fmt.Println(top.Result.Render())
	}
	if top.Trace != nil {
		fmt.Println(console.TimingPanel(top.Trace))
	}
	return nil
}

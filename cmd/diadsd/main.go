// Command diadsd is the always-on DIADS daemon: it drives the simulated
// Figure 1 testbed under a configurable multi-query workload with a SAN
// misconfiguration injected on a schedule, streams every completed run
// through the online monitor, fans detected slowdowns out to the
// concurrent diagnosis service's worker pool, and periodically prints
// the ranked incident report an operator would watch.
//
// Usage:
//
//	diadsd [-seed S] [-workers N] [-chunk MIN] [-report-every N] [-runs N] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"diads/internal/console"
	"diads/internal/faults"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	workers := flag.Int("workers", 4, "diagnosis worker pool size")
	chunkMin := flag.Float64("chunk", 30, "simulation chunk in minutes (monitoring lag)")
	reportEvery := flag.Int("report-every", 4, "print the incident report every N chunks")
	runs := flag.Int("runs", 16, "Q2 runs to schedule (other queries scale along)")
	quiet := flag.Bool("quiet", false, "suppress per-event output")
	flag.Parse()

	if err := run(*seed, *workers, *chunkMin, *reportEvery, *runs, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "diadsd:", err)
		os.Exit(1)
	}
}

func run(seed int64, workers int, chunkMin float64, reportEvery, runs int, quiet bool) error {
	if runs < 2 {
		return fmt.Errorf("-runs must be at least 2, got %d", runs)
	}
	if reportEvery < 1 {
		return fmt.Errorf("-report-every must be at least 1, got %d", reportEvery)
	}
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		return err
	}
	start := simtime.Time(10 * simtime.Minute)
	horizon := start.Add(simtime.Duration(runs) * 30 * simtime.Minute)
	onset := start.Add(simtime.Duration(runs/2)*30*simtime.Minute - 5*simtime.Minute)
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: start, Period: 30 * simtime.Minute, Count: runs},
		{Query: "Q6", Start: start.Add(2 * simtime.Minute), Period: 20 * simtime.Minute, Count: 3 * runs / 2},
		{Query: "Q14", Start: start.Add(4 * simtime.Minute), Period: 25 * simtime.Minute, Count: 6 * runs / 5},
	}
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if err := faults.Inject(tb, &faults.SANMisconfiguration{
		At: onset, Until: horizon, Pool: testbed.PoolP1,
		NewVolume: "vol-Vp", Host: testbed.ServerApp1,
		ReadIOPS: 450, WriteIOPS: 120,
	}); err != nil {
		return err
	}
	fmt.Printf("diadsd: workload Q2/Q6/Q14, SAN misconfiguration scheduled at %s\n", onset.Clock())

	mon := monitor.New(monitor.Config{})
	tb.Engine.OnRunComplete = mon.Observe

	watcher := monitor.NewWatcher(tb.Store, monitor.Config{MinRuns: 12, MinFactor: 1.3})
	watcher.Watch(string(testbed.VolV1), metrics.VolReadTime)
	watcher.Watch(string(testbed.VolV2), metrics.VolReadTime)

	svc := service.New(service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}, service.Config{Workers: workers})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	chunks := 0
	gate := &monitor.Gate{}
	tick := func(now simtime.Time) error {
		for {
			select {
			case ev := <-mon.Events():
				if !quiet {
					fmt.Println("  event:", ev)
				}
				gate.Add(ev)
			default:
				// Diagnose only once the emitted metrics cover the
				// event's window (the monitor can outrun the pipeline).
				for _, ev := range gate.Release(now) {
					err := svc.Submit(ev)
					switch err {
					case nil, service.ErrDuplicate:
					case service.ErrBackpressure:
						if !quiet {
							fmt.Println("  shed under backpressure:", ev.RunID)
						}
					default:
						return err
					}
				}
				for _, a := range watcher.Poll() {
					if !quiet {
						fmt.Println("  alert:", a)
					}
				}
				chunks++
				if chunks%reportEvery == 0 {
					svc.Wait() // settle in-flight diagnoses before reporting
					fmt.Printf("\n[%s]\n%s\n", now.Clock(), svc.Registry().Render())
				}
				return nil
			}
		}
	}
	if err := tb.SimulateStream(simtime.Duration(chunkMin)*simtime.Minute, tick); err != nil {
		return err
	}
	svc.Wait()
	svc.Stop()

	fmt.Printf("\n[final %s]\n%s\n", tb.Horizon.End.Clock(), svc.Registry().Render())
	ms, ss := mon.Stats(), svc.Stats()
	fmt.Printf("monitor: observed=%d events=%d dropped=%d queries=%d\n",
		ms.Observed, ms.Events, ms.Dropped, ms.Queries)
	fmt.Printf("service: %s\n", ss)
	fmt.Println("per-module totals across all diagnoses:")
	for _, st := range svc.ModuleStats() {
		fmt.Printf("  %-6s runs=%-3d cache-hits=%-3d skipped=%-3d wall=%s\n",
			st.Module, st.Runs, st.CacheHits, st.Skipped, st.Wall)
	}

	incs := svc.Registry().Incidents()
	if len(incs) == 0 {
		return fmt.Errorf("no incidents diagnosed")
	}
	top := incs[0]
	fmt.Printf("\ntop incident: %s %s(%s) — impact %.1fs over %d events\n",
		top.Query, top.Kind, top.Subject, top.EstImpact(), top.Events)
	if top.Result != nil {
		fmt.Println()
		fmt.Println(top.Result.Render())
	}
	if top.Trace != nil {
		fmt.Println(console.TimingPanel(top.Trace))
	}
	return nil
}

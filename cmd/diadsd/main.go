// Command diadsd is the always-on DIADS daemon: it drives the simulated
// Figure 1 testbed under a configurable multi-query workload with a SAN
// misconfiguration injected on a schedule, streams every completed run
// through the online monitor, fans detected slowdowns out to the
// concurrent diagnosis service's worker pool, and periodically prints
// the ranked incident report an operator would watch.
//
// With -instances N > 1 it drives a fleet instead: N staggered instances
// stream concurrently into one shared service, the first -degraded of
// them attached to a misconfigured shared SAN pool, and the daemon
// prints the grouped fleet incident view with its per-instance breakdown
// and the cross-instance symptom-learning summary.
//
// Usage:
//
//	diadsd [-seed S] [-workers N] [-chunk MIN] [-report-every N] [-runs N] [-quiet]
//	diadsd -instances N [-degraded M] [-seed S] [-workers N] [-chunk MIN] [-runs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"diads/internal/console"
	"diads/internal/experiments"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	workers := flag.Int("workers", 4, "diagnosis worker pool size")
	chunkMin := flag.Float64("chunk", 30, "simulation chunk in minutes (monitoring lag; fleet default 10)")
	reportEvery := flag.Int("report-every", 4, "print the incident report every N chunks")
	runs := flag.Int("runs", 16, "Q2 runs to schedule (other queries scale along)")
	instances := flag.Int("instances", 1, "fleet size; above 1 streams a multi-instance fleet")
	degraded := flag.Int("degraded", 0, "instances on the misconfigured shared pool (default 3/4 of the fleet)")
	quiet := flag.Bool("quiet", false, "suppress per-event output")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var err error
	if *instances > 1 {
		// The fleet runs to completion and prints one grouped report;
		// flags that only shape the single-instance streaming loop are
		// rejected rather than silently ignored.
		for _, unsupported := range []string{"report-every", "quiet"} {
			if set[unsupported] {
				fmt.Fprintf(os.Stderr, "diadsd: -%s does not apply with -instances > 1\n", unsupported)
				os.Exit(2)
			}
		}
		chunk := simtime.Duration(0) // fleet default (10 minutes)
		if set["chunk"] {
			if *chunkMin <= 0 {
				fmt.Fprintln(os.Stderr, "diadsd: -chunk must be positive with -instances > 1 (barriers need boundaries)")
				os.Exit(2)
			}
			chunk = simtime.Duration(*chunkMin) * simtime.Minute
		}
		err = runFleet(*seed, *instances, *degraded, *workers, *runs, chunk)
	} else {
		err = run(*seed, *workers, *chunkMin, *reportEvery, *runs, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diadsd:", err)
		os.Exit(1)
	}
}

// runFleet drives the multi-instance fleet to the end of its timeline
// and prints the grouped incident view. A chunk of 0 uses the fleet
// default (10 minutes).
func runFleet(seed int64, instances, degraded, workers, runs int, chunk simtime.Duration) error {
	if degraded <= 0 {
		degraded = 3 * instances / 4
		if degraded < 1 {
			degraded = 1
		}
	}
	if degraded > instances {
		return fmt.Errorf("-degraded %d exceeds -instances %d", degraded, instances)
	}
	fmt.Printf("diadsd: fleet of %d instances, shared pool %s misconfigured under the first %d\n",
		instances, testbed.PoolP1, degraded)
	rep, onsets, err := experiments.RunFleetSpec(experiments.FleetSpec{
		Seed: seed, Instances: instances, Degraded: degraded,
		Runs: runs, Chunk: chunk, Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fault onsets %s .. %s (staggered)\n\n",
		onsets[0].Clock(), onsets[degraded-1].Clock())
	fmt.Println(console.FleetPanel(rep))
	fmt.Printf("apg cache %d/%d hits, sd cache %d/%d hits\n",
		rep.Stats.APG.Hits, rep.Stats.APG.Hits+rep.Stats.APG.Misses,
		rep.Stats.SD.Hits, rep.Stats.SD.Hits+rep.Stats.SD.Misses)
	return nil
}

func run(seed int64, workers int, chunkMin float64, reportEvery, runs int, quiet bool) error {
	if reportEvery < 1 {
		return fmt.Errorf("-report-every must be at least 1, got %d", reportEvery)
	}
	env, err := experiments.BuildOnline(experiments.OnlineSpec{Seed: seed, Runs: runs})
	if err != nil {
		return err
	}
	tb, mon := env.Testbed, env.Monitor
	fmt.Printf("diadsd: workload Q2/Q6/Q14, SAN misconfiguration scheduled at %s\n", env.Onset.Clock())

	watcher := monitor.NewWatcher(tb.Store, monitor.Config{MinRuns: 12, MinFactor: 1.3})
	watcher.Watch(string(testbed.VolV1), metrics.VolReadTime)
	watcher.Watch(string(testbed.VolV2), metrics.VolReadTime)

	svc := service.New(service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}, service.Config{Workers: workers})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	chunks := 0
	gate := &monitor.Gate{}
	tick := func(now simtime.Time) error {
		for {
			select {
			case ev := <-mon.Events():
				if !quiet {
					fmt.Println("  event:", ev)
				}
				gate.Add(ev)
			default:
				// Diagnose only once the emitted metrics cover the
				// event's window (the monitor can outrun the pipeline).
				for _, ev := range gate.Release(now) {
					err := svc.Submit(ev)
					switch err {
					case nil, service.ErrDuplicate:
					case service.ErrBackpressure:
						if !quiet {
							fmt.Println("  shed under backpressure:", ev.RunID)
						}
					default:
						return err
					}
				}
				for _, a := range watcher.Poll() {
					if !quiet {
						fmt.Println("  alert:", a)
					}
				}
				chunks++
				if chunks%reportEvery == 0 {
					svc.Wait() // settle in-flight diagnoses before reporting
					fmt.Printf("\n[%s]\n%s\n", now.Clock(), svc.Registry().Render())
				}
				return nil
			}
		}
	}
	if err := tb.SimulateStream(simtime.Duration(chunkMin)*simtime.Minute, tick); err != nil {
		return err
	}
	svc.Wait()
	svc.Stop()

	fmt.Printf("\n[final %s]\n%s\n", tb.Horizon.End.Clock(), svc.Registry().Render())
	ms, ss := mon.Stats(), svc.Stats()
	fmt.Printf("monitor: observed=%d events=%d dropped=%d queries=%d\n",
		ms.Observed, ms.Events, ms.Dropped, ms.Queries)
	fmt.Printf("service: %s\n", ss)
	fmt.Println("per-module totals across all diagnoses:")
	for _, st := range svc.ModuleStats() {
		fmt.Printf("  %-6s runs=%-3d cache-hits=%-3d skipped=%-3d wall=%s\n",
			st.Module, st.Runs, st.CacheHits, st.Skipped, st.Wall)
	}

	incs := svc.Registry().Incidents()
	if len(incs) == 0 {
		return fmt.Errorf("no incidents diagnosed")
	}
	top := incs[0]
	fmt.Printf("\ntop incident: %s %s(%s) — impact %.1fs over %d events\n",
		top.Query, top.Kind, top.Subject, top.EstImpact(), top.Events)
	if top.Result != nil {
		fmt.Println()
		fmt.Println(top.Result.Render())
	}
	if top.Trace != nil {
		fmt.Println(console.TimingPanel(top.Trace))
	}
	return nil
}

// Command faultinject demonstrates the fault injector: it builds the
// Figure 1 testbed, injects the selected fault, simulates the timeline,
// and prints the run history with the fault's visible effect — the tool
// the paper's footnote 1 describes for testing and verifying DIADS.
//
// Usage:
//
//	faultinject [-fault misconfig|burst|dml|locks|raid|disk|cpu|indexdrop] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"diads/internal/dbsys"
	"diads/internal/faults"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func main() {
	fault := flag.String("fault", "misconfig", "fault to inject")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	if err := run(*fault, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func run(name string, seed int64) error {
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		return err
	}
	const runs = 12
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: runs},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs)*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	//lint:allow readwindow fault onset placement (just before a run), not an evidence read window
	onset := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs/2)*30*simtime.Minute) -
		simtime.Time(5*simtime.Minute)

	var f faults.Fault
	switch name {
	case "misconfig":
		f = &faults.SANMisconfiguration{At: onset, Until: horizon, Pool: testbed.PoolP1,
			NewVolume: "vol-Vp", Host: testbed.ServerApp1, ReadIOPS: 450, WriteIOPS: 120}
	case "burst":
		f = &faults.ExternalVolumeLoad{LoadName: "wl-burst", Volume: testbed.VolV4,
			Window:   simtime.NewInterval(onset, horizon),
			ReadIOPS: 260, WriteIOPS: 120, DutyCycle: 0.35, Period: 10 * simtime.Minute}
	case "dml":
		f = &faults.DataPropertyChange{At: onset, Table: dbsys.TPartsupp, Factor: 1.8}
	case "locks":
		var holds []simtime.Interval
		for i := runs / 2; i < runs; i++ {
			start := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(i)*30*simtime.Minute)
			holds = append(holds, simtime.NewInterval(start.Add(-30*simtime.Second), start.Add(90)))
		}
		f = &faults.TableLockContention{Table: dbsys.TPartsupp, Holds: holds, Holder: "txn-batch"}
	case "raid":
		f = &faults.RAIDRebuild{Pool: testbed.PoolP1,
			Window: simtime.NewInterval(onset, horizon), Intensity: 0.55}
	case "disk":
		f = &faults.DiskFailure{Disk: "disk-3",
			Window: simtime.NewInterval(onset, horizon), RebuildIntensity: 0.45}
	case "cpu":
		f = &faults.CPUSaturation{Server: testbed.ServerDB,
			Window: simtime.NewInterval(onset, horizon), Load: 0.83}
	case "indexdrop":
		f = &faults.IndexDrop{At: onset, Index: dbsys.IdxPartsuppPart}
	default:
		return fmt.Errorf("unknown fault %q", name)
	}

	if err := faults.Inject(tb, f); err != nil {
		return err
	}
	if err := tb.Simulate(); err != nil {
		return err
	}

	kind, _ := f.GroundTruth()
	fmt.Printf("injected fault: %s (ground-truth cause kind: %s)\n\n", f.Name(), kind)
	fmt.Printf("%-14s %-12s %-10s %-10s\n", "Run", "Start", "Duration", "Plan")
	for _, r := range tb.RunsFor("Q2") {
		fmt.Printf("%-14s %-12s %-10s %-10s\n", r.RunID, r.Start.Clock(), r.Duration(), r.PlanSig[:8])
	}
	fmt.Println("\nconfiguration/system events:")
	for _, ev := range tb.Cfg.Log.All() {
		fmt.Println(" ", ev)
	}
	return nil
}

// Command diadslint machine-checks the repo's determinism,
// evidence-window, and telemetry contracts. It loads the packages
// matching its arguments (default ./...), runs the analyzer suite in
// internal/lint against each package's policy domain, and prints
// findings.
//
// Usage:
//
//	diadslint [-json] [-counts] [packages...]
//
// Exit status is 1 when any unsuppressed finding remains (including
// malformed //lint:allow directives), 2 on load/type-check failure.
// Suppressed findings never fail the run but are always counted;
// -counts prints the per-analyzer finding/suppression totals so
// suppression creep stays visible in CI logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"diads/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings and counts as JSON")
	counts := flag.Bool("counts", false, "print per-analyzer finding/suppression totals")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: diadslint [-json] [-counts] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diadslint: %v\n", err)
		os.Exit(2)
	}
	res := lint.Run(nil, pkgs)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "diadslint: encoding result: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			mark := ""
			if f.Suppressed {
				mark = " (suppressed: " + f.Reason + ")"
			}
			fmt.Printf("%s: [%s] %s%s\n", f.Pos, f.Analyzer, f.Message, mark)
		}
	}
	if *counts && !*jsonOut {
		names := make([]string, 0, len(res.Counts))
		for name := range res.Counts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("diadslint: %d packages\n", len(pkgs))
		for _, name := range names {
			c := res.Counts[name]
			fmt.Printf("  %-11s findings=%d suppressed=%d\n", name, c.Findings, c.Suppressed)
		}
	}
	if res.Failed() {
		os.Exit(1)
	}
}

// Command promcheck validates a Prometheus text exposition: it fetches
// -url (or reads -file), runs the strict format validator, and then
// checks that every -require metric-name prefix appears in at least one
// sample. The CI smoke job points it at a live diadsd's /metrics so a
// malformed exposition or a layer that silently stopped instrumenting
// fails the build.
//
// Usage:
//
//	promcheck -url http://127.0.0.1:9090/metrics -require diads_monitor_,diads_service_
//	promcheck -file metrics.txt -require diads_module_
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"diads/internal/telemetry"
)

func main() {
	url := flag.String("url", "", "metrics endpoint to fetch")
	file := flag.String("file", "", "exposition file to read instead of fetching")
	require := flag.String("require", "", "comma-separated metric-name prefixes that must have samples")
	timeout := flag.Duration("timeout", 10*time.Second, "fetch timeout")
	flag.Parse()

	data, err := load(*url, *file, *timeout)
	if err != nil {
		fail(err)
	}
	if err := telemetry.ValidateExposition(data); err != nil {
		fail(err)
	}
	missing := missingPrefixes(data, *require)
	if len(missing) > 0 {
		fail(fmt.Errorf("no samples for required prefixes: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("promcheck: ok (%d bytes, %d sample lines)\n", len(data), sampleLines(data))
}

func load(url, file string, timeout time.Duration) ([]byte, error) {
	switch {
	case url != "" && file != "":
		return nil, fmt.Errorf("use -url or -file, not both")
	case url != "":
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		return io.ReadAll(resp.Body)
	case file != "":
		return os.ReadFile(file)
	default:
		return nil, fmt.Errorf("one of -url or -file is required")
	}
}

// missingPrefixes returns the required prefixes with no sample line.
func missingPrefixes(data []byte, require string) []string {
	var missing []string
	for _, p := range strings.Split(require, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		found := false
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if strings.HasPrefix(line, p) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, p)
		}
	}
	return missing
}

func sampleLines(data []byte) int {
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}

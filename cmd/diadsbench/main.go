// Command diadsbench regenerates every table and figure of the paper's
// evaluation, printing the same rows the paper reports (Table 1, Table 2,
// Figures 1 and 3-7) plus the observation studies and ablations indexed in
// DESIGN.md.
//
// Usage:
//
//	diadsbench [-seed S] [-only table1|table2|fig1|fig3|fig4|fig5|fig6|fig7|kde|baselines|sd|ablations|whatif|selfheal]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"diads/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	only := flag.String("only", "", "run a single experiment (default: all)")
	flag.Parse()

	if err := run(*seed, *only); err != nil {
		fmt.Fprintln(os.Stderr, "diadsbench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	run  func(seed int64) (interface{ Render() string }, error)
}

func run(seed int64, only string) error {
	all := []experiment{
		{"table1", func(s int64) (interface{ Render() string }, error) { return experiments.Table1(s) }},
		{"table2", func(s int64) (interface{ Render() string }, error) { return experiments.Table2(s) }},
		{"fig1", func(s int64) (interface{ Render() string }, error) { return experiments.Figure1(s) }},
		{"fig3", func(s int64) (interface{ Render() string }, error) { return experiments.Figure3(s) }},
		{"fig4", func(s int64) (interface{ Render() string }, error) { return experiments.Figure4(), nil }},
		{"fig5", func(s int64) (interface{ Render() string }, error) { return experiments.Figure5(s) }},
		{"fig6", func(s int64) (interface{ Render() string }, error) { return experiments.Figure6(s) }},
		{"fig7", func(s int64) (interface{ Render() string }, error) { return experiments.Figure7(s) }},
		{"kde", func(s int64) (interface{ Render() string }, error) { return experiments.KDERobustness(s), nil }},
		{"baselines", func(s int64) (interface{ Render() string }, error) { return experiments.Baselines(s) }},
		{"sd", func(s int64) (interface{ Render() string }, error) { return experiments.IncompleteSymptomsDB(s) }},
		{"ablations", func(s int64) (interface{ Render() string }, error) { return experiments.Ablations(s) }},
		{"whatif", func(s int64) (interface{ Render() string }, error) { return experiments.WhatIf(s) }},
		{"selfheal", func(s int64) (interface{ Render() string }, error) { return experiments.SelfHeal(s) }},
		{"robustness", func(s int64) (interface{ Render() string }, error) { return experiments.SeedRobustness(s, 4) }},
	}
	ran := 0
	for _, e := range all {
		if only != "" && e.name != only {
			continue
		}
		res, err := e.run(seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("==== %s ====\n%s\n%s\n", e.name, res.Render(), strings.Repeat("=", 72))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", only)
	}
	return nil
}

// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark results can be persisted as machine-readable
// artifacts (BENCH_fleet.json) and diffed across commits instead of
// eyeballed in logs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFleet_Throughput -benchtime 3x . | benchjson -o BENCH_fleet.json
//
// Single-iteration results are refused by default: one iteration of a
// seeded end-to-end benchmark measures one sample of a noisy process,
// and persisting it as the artifact invites phantom regressions. Run
// with -benchtime 3x or higher, or pass -allow-single to override
// (smoke tests only).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
// "BenchmarkFleet_Throughput/inst=2/workers=1-8  1  123456 ns/op".
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the persisted artifact.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	allowSingle := flag.Bool("allow-single", false,
		"accept 1-iteration results instead of refusing them")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fail(err)
	}
	if len(doc.Results) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin"))
	}
	if !*allowSingle {
		var single []string
		for _, r := range doc.Results {
			if r.Iterations <= 1 {
				single = append(single, r.Name)
			}
		}
		if len(single) > 0 {
			fail(fmt.Errorf("refusing 1-iteration results (run with -benchtime 3x or higher, or pass -allow-single): %s",
				strings.Join(single, ", ")))
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fail(err)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: malformed value %q in %q", fields[i], line)
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	return doc, sc.Err()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

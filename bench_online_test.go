// Benchmarks for the online layer: monitor ingestion, the store's
// incremental window queries, and cache-accelerated repeated diagnosis.
package diads_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diads"
	"diads/internal/apg"
	"diads/internal/cache"
	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/experiments"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/simtime"
	"diads/internal/symptoms"
)

// BenchmarkOnline_MonitorObserve measures per-run ingestion cost: ring
// update, windowed mean/variance, Page-Hinkley — the budget the monitor
// adds to every query execution.
func BenchmarkOnline_MonitorObserve(b *testing.B) {
	m := monitor.New(monitor.Config{})
	recs := make([]*exec.RunRecord, 256)
	for i := range recs {
		start := simtime.Time(simtime.Duration(i) * 30 * simtime.Minute)
		recs[i] = &exec.RunRecord{
			Query: fmt.Sprintf("Q%d", i%8),
			RunID: fmt.Sprintf("run-%04d", i),
			Start: start,
			Stop:  start.Add(simtime.Duration(60 + i%5)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(recs[i%len(recs)])
	}
}

// BenchmarkOnline_WindowStats measures the O(log n) incremental window
// query against a year-scale series.
func BenchmarkOnline_WindowStats(b *testing.B) {
	s := metrics.NewStore()
	const n = 100_000 // ~1 year of 5-minute samples
	for i := 0; i < n; i++ {
		s.MustAppend("vol-V1", metrics.VolReadTime,
			metrics.Sample{T: simtime.Time(i * 300), V: 0.01 + float64(i%7)*1e-4})
	}
	iv := simtime.NewInterval(simtime.Time(n/4*300), simtime.Time(3*n/4*300))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := s.WindowStats("vol-V1", metrics.VolReadTime, iv); st.N == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkFleet_Throughput sweeps the fleet along two axes. The small
// axis (inst × workers) streams 2–8 instances through one service and
// shows how far a shard's worker pool absorbs diagnosis load. The scale
// axis (inst=100 × shards) is the tentpole measurement. On a single
// CPU the curve across shard counts should be flat: after the sanperf
// pool-demand hoist and the emission memo flattened the per-instance
// simulation cost, the remaining 100-instance work is linear and
// per-instance, so shards can neither divide it nor — and this is what
// the sweep guards — add coordination overhead on top. Shard division
// pays on multi-core hardware, where per-shard coordinators and
// worker pools parallelize; at 1000 instances the single-core cost is
// dominated by the resident fleet's heap, flat across shards. The scale
// axis is opt-in (whole fleets per iteration are expensive):
// DIADS_BENCH_FLEET=100 enables it, DIADS_BENCH_FLEET=1000 adds the
// 1000-instance sweep (minutes per iteration; never part of CI smoke).
func BenchmarkFleet_Throughput(b *testing.B) {
	runFleet := func(b *testing.B, spec experiments.FleetSpec) {
		// Each iteration builds and drains a whole fleet, so a sub-bench
		// inherits whatever heap the previous one grew. Collect before
		// timing so every (inst, shards) point starts from the same
		// allocator state instead of paying its predecessor's cleanup.
		runtime.GC()
		// Track the live-heap high-water mark while the fleets run: the
		// number the retention layer exists to bound. A sampler records
		// HeapAlloc maxima (10ms resolution is plenty — fleet heap grows
		// over seconds); the peak lands in BENCH_fleet.json as
		// peak-heap-bytes via benchjson's extra-metric passthrough.
		var peak atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak.Load() {
						peak.Store(ms.HeapAlloc)
					}
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, _, err := experiments.RunFleetSpec(spec)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Stats.Completed == 0 || rep.Stats.Failed != 0 {
				b.Fatalf("fleet idle or failing: %+v", rep.Stats)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak.Load() {
			peak.Store(ms.HeapAlloc)
		}
		b.ReportMetric(float64(peak.Load()), "peak-heap-bytes")
	}
	for _, inst := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("inst=%d/workers=%d", inst, workers), func(b *testing.B) {
				runFleet(b, experiments.FleetSpec{
					Seed: 42, Instances: inst, Degraded: 3 * inst / 4,
					Runs: 12, Workers: workers,
				})
			})
		}
	}
	var scale []int
	switch os.Getenv("DIADS_BENCH_FLEET") {
	case "100":
		scale = []int{100}
	case "1000":
		scale = []int{100, 1000}
	}
	for _, inst := range scale {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("inst=%d/shards=%d", inst, shards), func(b *testing.B) {
				runFleet(b, experiments.FleetSpec{
					Seed: 42, Instances: inst, Degraded: 3 * inst / 4,
					Runs: 12, Shards: shards,
					// Cap concurrent simulations to bound memory; the
					// barrier protocol makes the cap invisible in results.
					MaxStreams: 16,
					// The scale axis runs with the retention layer on —
					// peak-heap-bytes here is the bounded-memory
					// measurement; the parity sweep guarantees the knobs
					// cannot change the report.
					Retention:   true,
					ResidentCap: 16,
				})
			})
		}
	}
}

// BenchmarkOnline_CachedDiagnosis measures a service-style repeated
// diagnosis with shared APG and symptoms caches — the near-free path a
// recurring incident takes.
func BenchmarkOnline_CachedDiagnosis(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	in := *sc.Input
	in.APGCache = cache.New[string, *apg.APG](8)
	in.SDCache = cache.New[string, []symptoms.CauseInstance](8)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := diag.DiagnoseContext(ctx, &in)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.TopCause(); !ok {
			b.Fatal("no cause")
		}
	}
}

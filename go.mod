module diads

go 1.24

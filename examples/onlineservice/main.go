// Onlineservice: the always-on operating mode through the public facade.
// A multi-query workload streams through the online monitor while a SAN
// misconfiguration degrades one query mid-timeline; detected slowdowns
// fan out to the concurrent diagnosis service, and the ranked incident
// registry names the root cause — no administrator labeling anything.
package main

import (
	"context"
	"fmt"
	"log"

	"diads"
)

func main() {
	// The prebuilt scenario wires everything: monitor on the engine's
	// run-completion hook, worker-pool service, chunked streaming.
	res, err := diads.RunOnlineScenario(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	// The same wiring by hand, for custom workloads: build a testbed,
	// attach a monitor, start a service, and stream.
	tb, err := diads.NewTestbed(7)
	if err != nil {
		log.Fatal(err)
	}
	mon := diads.NewMonitor(diads.MonitorConfig{})
	tb.Engine.OnRunComplete = mon.Observe

	svc := diads.NewService(diads.ServiceEnvFromTestbed(tb), diads.ServiceConfig{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	gate := &diads.EventGate{}
	err = tb.SimulateStream(30*60, func(now diads.SimTime) error {
		for {
			select {
			case ev := <-mon.Events():
				gate.Add(ev) // hold until metrics cover the window
			default:
				for _, ev := range gate.Release(now) {
					if err := svc.Submit(ev); err != nil {
						fmt.Println("skipped:", err)
					}
				}
				return nil
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Wait()
	svc.Stop()
	fmt.Printf("steady workload: %d events, %d incidents (expected none)\n",
		mon.Stats().Events, svc.Registry().Len())
}

// Plan regression: an index is dropped between runs, the optimizer falls
// back to scans, and Module PD detects the plan change and pinpoints the
// cause by replaying candidate changes through the optimizer — then the
// self-healing extension recreates the index and verifies recovery.
package main

import (
	"fmt"
	"log"

	"diads"
	"diads/internal/experiments"
)

func main() {
	sc, err := diads.BuildScenario(diads.ScenarioPlanRegression, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n\n", sc.Title)

	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Module PD: plan changed = %v\n", res.PD.Changed)
	for _, d := range res.PD.Differences {
		fmt.Printf("  difference: %s\n", d)
	}
	fmt.Println("plan-change analysis (replaying candidate changes):")
	for _, c := range res.PD.Causes {
		marker := "  "
		if c.Explains {
			marker = "->"
		}
		fmt.Printf("%s %s %s: %s\n", marker, c.Event.T.Clock(), c.Event.Kind, c.Detail)
	}

	// Self-healing: recreate the index and verify the recovery.
	heal, err := experiments.SelfHeal(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(heal.Render())
}

// SAN contention walk-through: reproduces the paper's Section 5 analysis
// of scenario 1 module by module using the interactive workflow — the
// administrator inspects each intermediate result, exactly as the paper's
// drill-down describes: plans, then operators, then components, then
// symptoms, then impact.
package main

import (
	"fmt"
	"log"

	"diads"
	"diads/internal/metrics"
)

func main() {
	sc, err := diads.BuildScenario(diads.ScenarioSANMisconfig, 7)
	if err != nil {
		log.Fatal(err)
	}
	w, err := diads.NewWorkflow(sc.Input)
	if err != nil {
		log.Fatal(err)
	}

	// Module PD: is the same plan involved in good and bad runs?
	if err := w.RunPD(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Module PD: plan changed = %v\n", w.Res.PD.Changed)

	// Module CO: which operators' running times explain the slowdown?
	if err := w.RunCO(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Module CO: correlated operator set = %v\n", w.Res.CO.COS)
	fmt.Println("           (paper: O2,O3,O4,O6,O7,O8,O17,O18,O20,O21,O22 —")
	fmt.Println("            both V1 leaves plus their ancestors, noise FPs possible)")

	// Module DA: which component metrics correlate? Table 2's scores.
	if err := w.RunDA(); err != nil {
		log.Fatal(err)
	}
	for _, m := range []metrics.Metric{metrics.VolWriteIO, metrics.VolWriteTime} {
		for _, vol := range []string{"vol-V1", "vol-V2"} {
			fmt.Printf("Module DA: %s %s anomaly score = %.3f\n",
				vol, m, w.Res.DA.ScoreOf(vol, m))
		}
	}

	// Module CR: did data properties change?
	if err := w.RunCR(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Module CR: record-count anomalies = %v (expected none)\n", w.Res.CR.CRS)

	// Modules SD and IA: root causes and impact.
	if err := w.RunSD(); err != nil {
		log.Fatal(err)
	}
	if err := w.RunIA(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal ranking:")
	for _, item := range w.Res.IA.Items {
		fmt.Printf("  %-58s impact %5.1f%%\n", item.Cause.String(), item.Score)
	}
}

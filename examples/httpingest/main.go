// Httpingest: DIADS as a service, end to end over HTTP. A diadsd
// started with -listen serves the ingest/query/operator API; this
// client plays the monitored system. It simulates the Figure 1 SAN
// misconfiguration scenario locally — standing in for a real database
// plus storage stack — then serializes what real monitoring agents
// would capture and POSTs it: the configuration events of the
// misconfiguration, every completed query run, and every metric sample,
// closing with a watermark that releases the gated diagnoses. It then
// polls /v1/incidents until the server-side diagnosis names the root
// cause from posted evidence alone.
//
// Run against a live daemon:
//
//	diadsd -listen 127.0.0.1:8080 &
//	go run ./examples/httpingest -addr http://127.0.0.1:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"diads/internal/api"
	"diads/internal/experiments"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of a diadsd -listen server")
	seed := flag.Int64("seed", 11, "client-side simulation seed")
	runs := flag.Int("runs", 16, "Q2 runs to simulate (other queries scale along)")
	tenant := flag.String("tenant", "acme", "tenant to post as")
	instance := flag.String("instance", "db-1", "instance to post as")
	flag.Parse()

	// The "real system": simulate the online scenario locally with the
	// monitor detached — runs travel over the wire instead.
	env, err := experiments.BuildOnline(experiments.OnlineSpec{Seed: *seed, Runs: *runs})
	if err != nil {
		log.Fatal(err)
	}
	tb := env.Testbed
	tb.Engine.OnRunComplete = nil
	if err := tb.Simulate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated client workload: %d runs, fault onset %s\n", len(tb.Runs), env.Onset.Clock())

	// 1. Configuration events: the misconfiguration as a storage
	// management stack would report it (parameters mirror the fault).
	at := float64(env.Onset)
	events := []api.WireEvent{
		{T: at, Kind: "VolumeCreated", Subject: "vol-Vp", Detail: "volume V' created in pool-P1",
			Pool: string(testbed.PoolP1), Name: "V'", SizeGB: 80},
		{T: at + 30, Kind: "ZoneCreated", Subject: "vol-Vp", Detail: "zoning for host srv-app1"},
		{T: at + 60, Kind: "LUNMapped", Subject: "vol-Vp", Detail: "LUN mapped to host srv-app1",
			Server: string(testbed.ServerApp1)},
		{T: at + 120, Kind: "WorkloadStarted", Subject: "vol-Vp", Detail: "external workload started on V'"},
	}
	post(*addr+"/v1/ingest/events", api.EventBatch{Tenant: *tenant, Instance: *instance, Events: events})
	fmt.Printf("posted %d configuration events\n", len(events))

	// 2. Run records, batched like a monitoring agent flush.
	wire := make([]api.WireRun, 0, len(tb.Runs))
	for _, rec := range tb.Runs {
		wire = append(wire, api.WireRunOf(rec))
	}
	for i := 0; i < len(wire); i += 16 {
		end := min(i+16, len(wire))
		post(*addr+"/v1/ingest/runs", api.RunBatch{Tenant: *tenant, Instance: *instance, Runs: wire[i:end]})
	}
	fmt.Printf("posted %d runs\n", len(wire))

	// 3. Metric samples in global time order; the final batch carries an
	// explicit watermark past every detection's read window, releasing
	// the gated events into diagnosis.
	var samples []api.WireSample
	for _, k := range tb.Store.Keys() {
		for _, s := range tb.Store.Series(k.Component, k.Metric) {
			samples = append(samples, api.WireSampleOf(k.Component, k.Metric, s))
		}
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].T < samples[j].T })
	//lint:allow readwindow watermark margin past every possible read window, not a read window itself
	final := float64(env.Horizon.Add(2 * metrics.DefaultMonitorInterval))
	for i := 0; i < len(samples); i += 4096 {
		end := min(i+4096, len(samples))
		b := api.SampleBatch{Tenant: *tenant, Instance: *instance, Samples: samples[i:end]}
		if end == len(samples) {
			b.Watermark = &final
		}
		post(*addr+"/v1/ingest/samples", b)
	}
	fmt.Printf("posted %d samples, watermark %s\n", len(samples), simtime.Time(final).Clock())

	// Poll until the server-side diagnosis surfaces the incident.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var list struct {
			Incidents []api.IncidentView `json:"incidents"`
		}
		get(*addr+"/v1/incidents?tenant="+*tenant, &list)
		for _, inc := range list.Incidents {
			if inc.Kind != symptoms.CauseSANMisconfig {
				continue
			}
			fmt.Printf("\ndiagnosed from posted evidence alone:\n")
			fmt.Printf("  %s/%s %s: %s(%s) confidence=%.0f impact=%.1fs events=%d\n",
				inc.Tenant, inc.Instance, inc.Query, inc.Kind, inc.Subject,
				inc.Confidence, inc.EstImpact, inc.Events)
			fmt.Printf("  trace: %s/traces?trace=%s\n", *addr, inc.TraceID)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("no %s incident within 30s; got %+v", symptoms.CauseSANMisconfig, list.Incidents)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// post sends one JSON batch and insists on 202 — backpressure (429) is
// retried, anything else is fatal.
func post(url string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	for {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("POST %s: %v", url, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return
		case http.StatusTooManyRequests:
			time.Sleep(100 * time.Millisecond) // honor the bounded queue
		default:
			log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decoding: %v", url, err)
	}
}

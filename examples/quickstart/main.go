// Quickstart: build the paper's scenario 1 (a SAN misconfiguration that
// slows a periodic report-generation query), run the DIADS diagnosis
// workflow, and print the report.
package main

import (
	"fmt"
	"log"

	"diads"
)

func main() {
	// Scenario 1: volume V' carved from pool P1 and mapped to another
	// host; its workload contends with V1, where partsupp lives.
	sc, err := diads.BuildScenario(diads.ScenarioSANMisconfig, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n\n", sc.Title)

	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	if top, ok := res.TopCause(); ok {
		fmt.Printf("root cause: %s\n", top.Cause)
		fmt.Printf("impact:     %.1f%% of the slowdown\n", top.Score)
		fmt.Printf("suggested fix: %s\n", top.Cause.Fix)
	}
}

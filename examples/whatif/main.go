// What-if analysis (Section 7 extension): before placing a new workload
// or changing configuration, predict the impact on the report query using
// the same models the diagnosis runs on.
package main

import (
	"fmt"
	"log"

	"diads"
	"diads/internal/dbsys"
	"diads/internal/testbed"
	"diads/internal/whatif"
)

func main() {
	// A healthy testbed: no faults, just the periodic query.
	tb, err := diads.NewTestbed(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		log.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	baselineRun := runs[len(runs)/2]
	fmt.Printf("baseline Q2 duration: %s\n\n", baselineRun.Duration())

	an := &whatif.Analyzer{
		Cfg: tb.Cfg, SAN: tb.SAN, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats,
		Baseline: baselineRun, At: baselineRun.Start,
	}

	fmt.Println("planned changes and their predicted impact on Q2:")
	for _, q := range []func() (whatif.Prediction, error){
		func() (whatif.Prediction, error) { return an.AddWorkload(testbed.VolV3, 450, 120) },
		func() (whatif.Prediction, error) { return an.AddWorkload(testbed.VolV4, 450, 120) },
		func() (whatif.Prediction, error) { return an.MoveVolume(testbed.VolV3, testbed.PoolP2) },
		func() (whatif.Prediction, error) { return an.GrowTable(dbsys.TPartsupp, 2.0) },
		func() (whatif.Prediction, error) { return an.ChangeParam(dbsys.ParamEnableIndexScan, 0) },
	} {
		pred, err := q()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", pred)
	}
	fmt.Println("\nplacing the workload on P1 hurts the query; P2 has more spindles")
	fmt.Println("and no partsupp data, so the same workload is far cheaper there.")
}

// Concurrent faults: the paper's scenario 4 — a data-property change in
// the database at the same time as a SAN misconfiguration. DIADS must
// identify both problems and rank them, which no silo tool can do.
package main

import (
	"fmt"
	"log"

	"diads"
	"diads/internal/baseline"
)

func main() {
	sc, err := diads.BuildScenario(diads.ScenarioConcurrentFaults, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n%s\n\n", sc.Title, sc.Description)

	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DIADS ranking (both problems should appear with high confidence):")
	for _, item := range res.IA.Items {
		fmt.Printf("  %-58s impact %5.1f%%\n", item.Cause.String(), item.Score)
	}

	// Contrast with the silo tools on the same evidence.
	fmt.Println()
	san, err := baseline.SANOnly(sc.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(san)
	db, err := baseline.DBOnly(sc.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db)
	fmt.Println("note how neither silo tool can connect the record-count change")
	fmt.Println("to the SAN symptoms or separate the two concurrent causes.")
}

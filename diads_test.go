package diads_test

import (
	"context"
	"strings"
	"testing"

	"diads"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	sc, err := diads.BuildScenario(diads.ScenarioSANMisconfig, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.TopCause()
	if !ok {
		t.Fatal("no cause")
	}
	if top.Cause.Kind != "san-misconfig-contention" {
		t.Fatalf("quickstart should find the misconfiguration, got %v", top.Cause)
	}
	if top.Cause.Fix == "" {
		t.Fatalf("cause should carry its fix")
	}
	if !strings.Contains(res.Render(), "DIADS diagnosis") {
		t.Fatalf("report missing header")
	}
}

func TestFacadeTestbedAndAPG(t *testing.T) {
	tb, err := diads.NewTestbed(301)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	if len(runs) != 48 {
		t.Fatalf("default schedule should run 48 times, got %d", len(runs))
	}
	g, err := diads.BuildAPG(tb, runs[0])
	if err != nil {
		t.Fatal(err)
	}
	if g.Plan.NumOperators() != 25 {
		t.Fatalf("APG shape wrong")
	}
}

func TestFacadeSymptomsDBRoundTrip(t *testing.T) {
	db := diads.BuiltinSymptomsDB()
	if len(db.Entries()) == 0 {
		t.Fatal("builtin DB empty")
	}
	custom, err := diads.ParseSymptomsDB(`
cause my-cause scope=global {
  100: exists(plan-changed)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Entries()) != 1 || custom.Entries()[0].Kind != "my-cause" {
		t.Fatalf("parsed DB wrong: %+v", custom.Entries())
	}
	if _, err := diads.ParseSymptomsDB("garbage"); err == nil {
		t.Fatalf("bad DSL should error")
	}
}

func TestFacadeInteractiveWorkflow(t *testing.T) {
	sc, err := diads.BuildScenario(diads.ScenarioLockingNoise, 302)
	if err != nil {
		t.Fatal(err)
	}
	w, err := diads.NewWorkflow(sc.Input)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunPD(); err != nil {
		t.Fatal(err)
	}
	if w.Res.PD.Changed {
		t.Fatalf("locking scenario should not change the plan")
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	top, ok := w.Res.TopCause()
	if !ok || top.Cause.Kind != "lock-contention" {
		t.Fatalf("locking scenario diagnosis: %v", top.Cause)
	}
}

func TestFacadeOnlinePipeline(t *testing.T) {
	// A steady workload through the facade's online wiring: the monitor
	// must stay silent and the service idle.
	tb, err := diads.NewTestbed(303)
	if err != nil {
		t.Fatal(err)
	}
	mon := diads.NewMonitor(diads.MonitorConfig{})
	tb.Engine.OnRunComplete = mon.Observe

	svc := diads.NewService(diads.ServiceEnvFromTestbed(tb), diads.ServiceConfig{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	chunks := 0
	err = tb.SimulateStream(30*60, func(now diads.SimTime) error {
		chunks++
		for {
			select {
			case ev := <-mon.Events():
				if err := svc.Submit(ev); err != nil {
					return err
				}
			default:
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Wait()
	svc.Stop()

	if chunks == 0 {
		t.Fatal("streaming simulation never ticked")
	}
	if n := mon.Stats().Events; n != 0 {
		t.Errorf("steady workload raised %d events", n)
	}
	if svc.Registry().Len() != 0 {
		t.Errorf("registry has incidents on a steady workload:\n%s", svc.Registry().Render())
	}
}

func TestFacadePipelineRegistry(t *testing.T) {
	names := diads.Pipelines().Names()
	want := map[string]bool{"diads": false, "san-only": false, "db-only": false}
	for _, n := range names {
		want[n] = true
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing pipeline %q (have %v)", n, names)
		}
	}

	sc, err := diads.BuildScenario(diads.ScenarioSANMisconfig, 305)
	if err != nil {
		t.Fatal(err)
	}
	// A facade diagnosis carries the engine trace; sequential execution
	// through DiagnoseWith renders identically.
	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Module("da") == nil {
		t.Fatalf("facade diagnosis should carry the workflow trace, got %+v", res.Trace)
	}
	seq, err := diads.DiagnoseWith(context.Background(), sc.Input, diads.DiagnoseConfig{MaxParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != res.Render() {
		t.Fatal("sequential and concurrent facade diagnoses disagree")
	}

	// A silo strategy runs by name over the same input.
	bb, trace, err := diads.RunPipeline(context.Background(), "san-only", sc.Input)
	if err != nil {
		t.Fatal(err)
	}
	if bb == nil || trace == nil || trace.Pipeline != "san-only" {
		t.Fatalf("silo pipeline run wrong: trace=%+v", trace)
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus micro-benchmarks
// of the diagnosis machinery. Shapes, not absolute numbers, are the
// comparison target; EXPERIMENTS.md records paper-vs-measured values.
package diads_test

import (
	"context"
	"fmt"
	"testing"

	"diads"
	"diads/internal/apg"
	"diads/internal/baseline"
	"diads/internal/diag"
	"diads/internal/experiments"
	"diads/internal/kde"
	"diads/internal/simtime"
	"diads/internal/testbed"
)

// allScenarioIDs lists every scenario (the paper's five plus the
// extension scenarios) for engine-wide sweeps.
var allScenarioIDs = []diads.ScenarioID{
	diads.ScenarioSANMisconfig, diads.ScenarioTwoPools, diads.ScenarioDataProperty,
	diads.ScenarioConcurrentFaults, diads.ScenarioLockingNoise, diads.ScenarioPlanRegression,
	diads.ScenarioCPUSaturation, diads.ScenarioDiskFailure, diads.ScenarioRAIDRebuild,
}

const benchSeed = 4242

// benchScenario caches one simulated scenario per ID across iterations;
// construction dominates otherwise.
var benchScenarios = map[diads.ScenarioID]*diads.Scenario{}

func scenarioFor(b *testing.B, id diads.ScenarioID) *diads.Scenario {
	b.Helper()
	if sc, ok := benchScenarios[id]; ok {
		return sc
	}
	sc, err := diads.BuildScenario(id, benchSeed+int64(id))
	if err != nil {
		b.Fatal(err)
	}
	benchScenarios[id] = sc
	return sc
}

// BenchmarkTable1_Scenario1 through _Scenario5 regenerate Table 1: each
// iteration diagnoses the scenario end to end and verifies the outcome.
func BenchmarkTable1_Scenario1(b *testing.B) { benchScenarioDiagnosis(b, diads.ScenarioSANMisconfig) }
func BenchmarkTable1_Scenario2(b *testing.B) { benchScenarioDiagnosis(b, diads.ScenarioTwoPools) }
func BenchmarkTable1_Scenario3(b *testing.B) { benchScenarioDiagnosis(b, diads.ScenarioDataProperty) }
func BenchmarkTable1_Scenario4(b *testing.B) {
	benchScenarioDiagnosis(b, diads.ScenarioConcurrentFaults)
}
func BenchmarkTable1_Scenario5(b *testing.B) { benchScenarioDiagnosis(b, diads.ScenarioLockingNoise) }

func benchScenarioDiagnosis(b *testing.B, id diads.ScenarioID) {
	sc := scenarioFor(b, id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, correct, err := sc.Diagnose()
		if err != nil {
			b.Fatal(err)
		}
		if !correct {
			top, _ := res.TopCause()
			b.Fatalf("scenario %d misdiagnosed: %v", id, top.Cause)
		}
	}
}

// BenchmarkTable2_AnomalyScores regenerates Table 2 (prints it once).
func BenchmarkTable2_AnomalyScores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkFigure1_APG regenerates the Figure 1 APG: construction from
// plan, catalog, and SAN configuration.
func BenchmarkFigure1_APG(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	run := sc.Testbed.Runs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := diads.BuildAPG(sc.Testbed, run)
		if err != nil {
			b.Fatal(err)
		}
		if g.Plan.NumOperators() != 25 || len(g.Plan.Leaves()) != 9 {
			b.Fatalf("Figure 1 shape broken")
		}
	}
}

// BenchmarkFigure2_Workflow times the full batch workflow of Figure 2 on
// the prepared scenario-1 input.
func BenchmarkFigure2_Workflow(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diads.Diagnose(sc.Input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_QueryScreen renders the query-selection screen.
func BenchmarkFigure3_QueryScreen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows == 0 {
			b.Fatal("empty screen")
		}
	}
}

// BenchmarkFigure4_MetricCatalog enumerates the Figure 4 catalog.
func BenchmarkFigure4_MetricCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4()
		if len(res.Catalog) != 4 {
			b.Fatal("catalog layers wrong")
		}
	}
}

// BenchmarkFigure6_APGScreen renders the APG visualization screen.
func BenchmarkFigure6_APGScreen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_WorkflowScreen renders the interactive workflow screen.
func BenchmarkFigure7_WorkflowScreen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKDE_SampleEfficiency reproduces the Section 5 observation
// (KDE vs model-based correlation, accuracy vs sample count and noise).
func BenchmarkKDE_SampleEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.KDERobustness(benchSeed)
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkBaseline_Comparison reproduces the silo-tool narrative.
func BenchmarkBaseline_Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Baselines(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if !res.DIADSCorrect {
			b.Fatal("DIADS misdiagnosed the comparison scenario")
		}
	}
}

// BenchmarkPipeline_Sequential and _Concurrent compare the module-DAG
// engine's two execution modes on every scenario: sequential runs one
// module at a time (the old step-list workflow's schedule), concurrent
// lets independent modules (DA ∥ CR) overlap. Reports are byte-identical
// between the two (see experiments.TestEngineParityAcrossScenarios);
// only the wall time differs.
func BenchmarkPipeline_Sequential(b *testing.B) { benchPipelineEngine(b, 1) }
func BenchmarkPipeline_Concurrent(b *testing.B) { benchPipelineEngine(b, diag.DefaultParallelism) }

func benchPipelineEngine(b *testing.B, maxParallel int) {
	for _, id := range allScenarioIDs {
		b.Run(fmt.Sprintf("scenario%d", id), func(b *testing.B) {
			sc := scenarioFor(b, id)
			cfg := diads.DiagnoseConfig{MaxParallel: maxParallel}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := diads.DiagnoseWith(context.Background(), sc.Input, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModulePD_PlanDiff regenerates the plan-regression experiment.
func BenchmarkModulePD_PlanDiff(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioPlanRegression)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := diads.Diagnose(sc.Input)
		if err != nil {
			b.Fatal(err)
		}
		if !res.PD.Changed {
			b.Fatal("plan change missed")
		}
	}
}

// BenchmarkAblation_NoSymptomsDB measures diagnosis without the symptoms
// database (the incomplete-knowledge observation).
func BenchmarkAblation_NoSymptomsDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.IncompleteSymptomsDB(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.NarrowedOperators) == 0 {
			b.Fatal("no narrowing")
		}
	}
}

// BenchmarkAblation_ThresholdSweep measures the workflow ablations.
func BenchmarkAblation_ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_WhatIf measures the what-if study (E19).
func BenchmarkExtension_WhatIf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WhatIf(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkExtension_SelfHeal measures the self-healing study (E20).
func BenchmarkExtension_SelfHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SelfHeal(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatal("self-heal did not recover")
		}
	}
}

// --- micro-benchmarks of the core machinery ---

// BenchmarkMicro_KDEScore times one anomaly-score computation at the
// workload sizes the workflow uses (tens of samples).
func BenchmarkMicro_KDEScore(b *testing.B) {
	rnd := simtime.NewRand(1, "bench-kde")
	sat := make([]float64, 30)
	for i := range sat {
		sat[i] = rnd.Gaussian(10, 1)
	}
	unsat := []float64{31, 29, 33}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kde.AnomalyScore(sat, unsat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_GaussianScore times the baseline scorer for comparison.
func BenchmarkMicro_GaussianScore(b *testing.B) {
	rnd := simtime.NewRand(1, "bench-gauss")
	sat := make([]float64, 30)
	for i := range sat {
		sat[i] = rnd.Gaussian(10, 1)
	}
	unsat := []float64{31, 29, 33}
	s := baseline.GaussianScorer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Score(sat, unsat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_TestbedSimulation times one full-day testbed simulation
// (48 query runs plus monitoring emission).
func BenchmarkMicro_TestbedSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := diads.NewTestbed(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ModuleCO times Module CO alone.
func BenchmarkMicro_ModuleCO(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	w, err := diads.NewWorkflow(sc.Input)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.RunPD(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunCO(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ModuleDA times Module DA alone.
func BenchmarkMicro_ModuleDA(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	w, err := diads.NewWorkflow(sc.Input)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.RunPD(); err != nil {
		b.Fatal(err)
	}
	if err := w.RunCO(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunDA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_APGDependencyPaths times dependency-path computation for
// every operator of the Q2 plan.
func BenchmarkMicro_APGDependencyPaths(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	run := sc.Testbed.Runs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := apg.Build(run.Plan, sc.Testbed.Cfg, sc.Testbed.Cat, testbed.ServerDB)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range run.Plan.Nodes() {
			if dp := g.DependencyPath(n.ID); len(dp.Inner) == 0 {
				b.Fatal("empty dependency path")
			}
		}
	}
}

// BenchmarkMicro_SymptomEvaluation times one symptoms-database evaluation.
func BenchmarkMicro_SymptomEvaluation(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		b.Fatal(err)
	}
	db := diads.BuiltinSymptomsDB()
	bindings := diag.Bindings(sc.Input, res.APG)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		causes := db.Evaluate(res.Facts, bindings)
		if len(causes) == 0 {
			b.Fatal("no causes")
		}
	}
}

// BenchmarkMicro_QueryExecution times one simulated Q2 execution.
func BenchmarkMicro_QueryExecution(b *testing.B) {
	tb, err := diads.NewTestbed(9)
	if err != nil {
		b.Fatal(err)
	}
	p, err := tb.Opt.PlanQuery("Q2", tb.Stats, tb.Params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Engine.Run(p, simtime.Time(i*1800), fmt.Sprintf("b-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_Placement measures the integrated-planning extension
// ranking pools for partsupp.
func BenchmarkExtension_Placement(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	run := sc.Input.SatRuns()[0]
	p := &diads.PlacementPlanner{
		Cfg: sc.Testbed.Cfg, SAN: sc.Testbed.SAN, Cat: sc.Testbed.Cat,
		Baseline: run, At: run.Start,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Rank("partsupp"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_SymptomMining measures the self-evolving database
// proposing entries from three confirmed incidents.
func BenchmarkExtension_SymptomMining(b *testing.B) {
	sc := scenarioFor(b, diads.ScenarioSANMisconfig)
	res, err := diads.Diagnose(sc.Input)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := res.ToIncident("san-misconfig-contention", "vol-V1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m diads.SymptomMiner
		m.AddIncident(inc)
		m.AddIncident(inc)
		m.AddIncident(inc)
		if cands := m.Propose(3); len(cands) == 0 {
			b.Fatal("no candidates mined")
		}
	}
}

// BenchmarkRobustness_SeedSweep measures multi-seed scenario accuracy
// (the aggregate study in EXPERIMENTS.md).
func BenchmarkRobustness_SeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SeedRobustness(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.MinAccuracy() < 0.5 {
			b.Fatal("diagnosis unstable")
		}
	}
}

// Package diads is an open-source reproduction of "Why Did My Query Slow
// Down?" (Borisov, Babu, Uttamchandani, Routray, Singh — CIDR 2009): an
// integrated database + SAN diagnosis tool built around two ideas.
//
// The Annotated Plan Graph (APG) ties every operator of a query's
// execution plan through its tablespace to the SAN volume it reads, and on
// through the fabric to pools and physical disks, annotating each
// component with the monitoring data collected during the plan's
// execution.
//
// The diagnosis workflow drills down from the query to plans (Module PD),
// operators (Module CO), components (Module DA), and record counts
// (Module CR), maps symptoms to root causes through a weighted
// symptoms database (Module SD), and rolls back up with impact analysis
// (Module IA).
//
// Because the paper's testbed (PostgreSQL on a production IBM SAN) is not
// reproducible on a laptop, the library ships a faithful simulation
// substrate: a SAN configuration and performance model, a cost-based
// query engine over a TPC-H catalog, a noisy monitoring pipeline, and a
// fault injector covering the paper's scenario menu.
//
// Quickstart:
//
//	sc, _ := diads.BuildScenario(diads.ScenarioSANMisconfig, 42)
//	res, _ := diads.Diagnose(sc.Input)
//	fmt.Println(res.Render())
//
// See examples/ for complete programs and DESIGN.md for the system map.
package diads

import (
	"context"

	"diads/internal/apg"
	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/experiments"
	"diads/internal/fleet"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/pipeline"
	"diads/internal/pipelines"
	"diads/internal/placement"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/whatif"
)

// Core diagnosis types.
type (
	// Input is everything a diagnosis consumes: labeled runs, the
	// monitoring store, and configuration state.
	Input = diag.Input
	// Result is a complete diagnosis.
	Result = diag.Result
	// Workflow runs modules one at a time (the interactive mode).
	Workflow = diag.Workflow
	// DiagnoseConfig tunes the module-DAG engine (parallelism, hooks).
	DiagnoseConfig = diag.RunConfig
	// Trace is a pipeline run's per-module execution record: wall time,
	// cache hit/miss, and skip/short-circuit decisions.
	Trace = pipeline.Trace
	// ModuleTrace is one module's entry in a Trace.
	ModuleTrace = pipeline.ModuleTrace
	// PipelineRegistry catalogs the registered diagnosis strategies.
	PipelineRegistry = pipeline.Registry
	// Blackboard is the shared result space a pipeline run writes to.
	Blackboard = pipeline.Blackboard
	// APG is the Annotated Plan Graph.
	APG = apg.APG
	// RunRecord is the monitoring record of one query run.
	RunRecord = exec.RunRecord
	// Testbed is the simulated database+SAN environment.
	Testbed = testbed.Testbed
	// TestbedConfig tunes testbed construction.
	TestbedConfig = testbed.Config
	// SymptomsDB is the root-cause knowledge base.
	SymptomsDB = symptoms.DB
	// CauseInstance is one evaluated root-cause hypothesis.
	CauseInstance = symptoms.CauseInstance
	// Scenario is a constructed, simulated, labeled problem scenario.
	Scenario = experiments.Scenario
	// ScenarioID selects a scenario.
	ScenarioID = experiments.ScenarioID
	// WhatIfAnalyzer answers what-if questions (Section 7 extension).
	WhatIfAnalyzer = whatif.Analyzer
	// PlacementPlanner ranks tablespace placements (Section 7 extension).
	PlacementPlanner = placement.Planner
	// SymptomMiner proposes codebook entries from confirmed incidents
	// (Section 7's self-evolving symptoms database).
	SymptomMiner = symptoms.Miner
	// SymptomCandidate is one proposed codebook entry awaiting
	// validation and review.
	SymptomCandidate = symptoms.CandidateEntry
	// SymptomValidator replays candidates against healthy-period fact
	// bases and held-out confirmed incidents before they may install.
	SymptomValidator = symptoms.Validator
	// SymptomValidation is a candidate's typed validation report with
	// per-condition reasons.
	SymptomValidation = symptoms.Validation

	// Monitor is the online detection front-end: it ingests completed
	// runs, maintains incremental per-query baselines, and emits
	// SlowdownEvents (attach Observe to a testbed engine's
	// OnRunComplete hook).
	Monitor = monitor.Monitor
	// MonitorConfig tunes online detection.
	MonitorConfig = monitor.Config
	// SlowdownEvent is one detected degradation, self-contained enough
	// to diagnose.
	SlowdownEvent = monitor.SlowdownEvent
	// MetricWatcher tails monitoring series incrementally and raises
	// component-level alerts.
	MetricWatcher = monitor.Watcher
	// EventGate defers slowdown events until the monitoring watermark
	// covers their evidence window.
	EventGate = monitor.Gate
	// Service is the concurrent diagnosis engine: a bounded worker pool
	// with per-(query, window) dedup, APG/symptoms caches, and a ranked
	// incident registry.
	Service = service.Service
	// ServiceConfig tunes the worker pool and caches.
	ServiceConfig = service.Config
	// ServiceEnv is the read-only diagnosis environment jobs share.
	ServiceEnv = service.Env
	// Incident is one open problem in the results registry.
	Incident = service.Incident
	// OnlineResult is the outcome of the end-to-end online scenario.
	OnlineResult = experiments.OnlineResult

	// Fleet streams many instances concurrently through per-shard
	// diagnosis services with cross-instance incident grouping and
	// epoch-sealed symptom learning; reports are byte-identical across
	// shard counts.
	Fleet = fleet.Fleet
	// FleetConfig tunes a fleet (shared symptoms DB, chunking,
	// concurrency, shard count, learning loop).
	FleetConfig = fleet.Config
	// FleetInstance is one database+SAN deployment a fleet streams.
	FleetInstance = fleet.Instance
	// FleetReport is a fleet run's outcome: grouped incidents,
	// per-instance summaries, learning stats.
	FleetReport = fleet.Report
	// GroupedIncident is one fleet-level problem, possibly correlated
	// across instances through shared SAN infrastructure.
	GroupedIncident = fleet.GroupedIncident
	// FleetLearnStats summarizes the cross-instance symptom-learning
	// loop: confirmed/held-out incidents, the healthy corpus, and the
	// installed/pending/rejected candidate lifecycle.
	FleetLearnStats = fleet.LearnStats
	// FleetLearnConfig tunes the learning loop, including the
	// validation thresholds and the review policy.
	FleetLearnConfig = fleet.LearnConfig
	// FleetReviewPolicy selects how validated candidates are adopted:
	// auto-accept-on-validation or an operator ack.
	FleetReviewPolicy = fleet.ReviewPolicy
	// FleetResult is the outcome of the fleet scenario with its
	// learning-off baseline.
	FleetResult = experiments.FleetResult

	// SimTime is a simulation timestamp in seconds since the epoch.
	SimTime = simtime.Time
	// SimDuration is a span of simulated time in seconds.
	SimDuration = simtime.Duration
	// SimInterval is a half-open span of simulated time.
	SimInterval = simtime.Interval
)

// Scenario identifiers: the paper's five Table 1 settings plus the
// extension scenarios.
const (
	ScenarioSANMisconfig     = experiments.S1SANMisconfig
	ScenarioTwoPools         = experiments.S2TwoPoolContention
	ScenarioDataProperty     = experiments.S3DataPropertyChange
	ScenarioConcurrentFaults = experiments.S4ConcurrentDBAndSAN
	ScenarioLockingNoise     = experiments.S5LockingWithNoise
	ScenarioPlanRegression   = experiments.SPlanRegression
	ScenarioCPUSaturation    = experiments.SCPUSaturation
	ScenarioDiskFailure      = experiments.SDiskFailure
	ScenarioRAIDRebuild      = experiments.SRAIDRebuild
)

// Review policies for the fleet learning loop's adoption gate.
const (
	ReviewAutoAccept = fleet.ReviewAutoAccept
	ReviewOperator   = fleet.ReviewOperator
)

// NewTestbed builds the paper's Figure 1 environment with default
// configuration: the TPC-H database on volumes V1/V2 behind an FC fabric,
// Q2 scheduled every 30 minutes.
func NewTestbed(seed int64) (*Testbed, error) {
	return testbed.NewFigure1(testbed.DefaultConfig(seed))
}

// NewTestbedWithConfig builds the Figure 1 environment with custom
// configuration.
func NewTestbedWithConfig(conf TestbedConfig) (*Testbed, error) {
	return testbed.NewFigure1(conf)
}

// BuildScenario constructs, simulates, and labels one of the canonical
// problem scenarios.
func BuildScenario(id ScenarioID, seed int64) (*Scenario, error) {
	return experiments.Build(id, seed)
}

// Diagnose runs the full batch workflow of Figure 2 through the module
// DAG engine (independent modules, such as DA and CR, run concurrently;
// the Result carries the per-module Trace).
func Diagnose(in *Input) (*Result, error) {
	return diag.Diagnose(in)
}

// DiagnoseWith is Diagnose with engine configuration — e.g.
// MaxParallel: 1 forces sequential module execution, which produces a
// byte-identical report.
func DiagnoseWith(ctx context.Context, in *Input, cfg DiagnoseConfig) (*Result, error) {
	return diag.DiagnoseWith(ctx, in, cfg)
}

// NewWorkflow prepares an interactive workflow over the input.
func NewWorkflow(in *Input) (*Workflow, error) {
	return diag.NewWorkflow(in)
}

// Pipelines returns the registry of diagnosis strategies: "diads" (the
// full Figure 2 DAG) plus the "san-only" and "db-only" silo baselines.
func Pipelines() *PipelineRegistry { return pipelines.Registry() }

// RunPipeline executes a registered diagnosis strategy by name over the
// input, returning the blackboard of module outputs and the run's trace.
func RunPipeline(ctx context.Context, name string, in *Input) (*Blackboard, *Trace, error) {
	return pipelines.Run(ctx, name, in)
}

// BuildAPG constructs the Annotated Plan Graph for a run's plan in the
// testbed's environment.
func BuildAPG(tb *Testbed, run *RunRecord) (*APG, error) {
	return apg.Build(run.Plan, tb.Cfg, tb.Cat, testbed.ServerDB)
}

// NewMonitor returns an online slowdown monitor. Wire it into a testbed
// with tb.Engine.OnRunComplete = m.Observe before simulating.
func NewMonitor(cfg MonitorConfig) *Monitor { return monitor.New(cfg) }

// NewMetricWatcher returns a watcher tailing the store's series with the
// monitor's detection settings.
func NewMetricWatcher(store *metrics.Store, cfg MonitorConfig) *MetricWatcher {
	return monitor.NewWatcher(store, cfg)
}

// ReadWindow pads an activity span by the monitoring interval on both
// sides — the evidence-window contract every diagnosis metric read
// honors. A SlowdownEvent carries it precomputed (ReadWindow), the
// EventGate holds events until the streaming watermark covers it, and
// the Service deduplicates jobs by it.
func ReadWindow(iv SimInterval) SimInterval { return metrics.ReadWindow(iv) }

// NewService returns a concurrent diagnosis service over the
// environment. Call Start, Submit monitor events, and read ranked
// incidents from Registry.
func NewService(env ServiceEnv, cfg ServiceConfig) *Service { return service.New(env, cfg) }

// ServiceEnvFromTestbed assembles the service's diagnosis environment
// from a testbed, with the built-in symptoms database.
func ServiceEnvFromTestbed(tb *Testbed) ServiceEnv {
	return ServiceEnv{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}
}

// RunOnlineScenario streams the multi-query online scenario end to end:
// monitor, worker-pool service, injected SAN misconfiguration, ranked
// incidents.
func RunOnlineScenario(seed int64) (*OnlineResult, error) { return experiments.Online(seed) }

// RunFleetScenario streams the fleet scenario end to end: 8 staggered
// instances diagnosed by one shared service while a misconfigured
// shared SAN pool degrades 6 of them, grouped into one correlated
// fleet incident, with the cross-instance symptom-learning loop
// measured against a learning-off baseline of the same seed.
func RunFleetScenario(seed int64) (*FleetResult, error) { return experiments.Fleet(seed) }

// NewFleet assembles a fleet over instances built with NewTestbed (or
// the testbed config of your choice) and monitors attached to each
// engine's OnRunComplete hook. Run streams them to completion.
func NewFleet(cfg FleetConfig, instances []FleetInstance) (*Fleet, error) {
	return fleet.New(cfg, instances)
}

// BuiltinSymptomsDB returns the in-house symptoms database for query
// slowdowns.
func BuiltinSymptomsDB() *SymptomsDB { return symptoms.Builtin() }

// ParseSymptomsDB reads a symptoms database from the administrator-
// editable text format.
func ParseSymptomsDB(src string) (*SymptomsDB, error) { return symptoms.Parse(src) }

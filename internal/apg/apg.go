// Package apg implements the paper's central abstraction: the Annotated
// Plan Graph. An APG ties together the execution path of a query in the
// database and the SAN — every plan operator is mapped through its
// tablespace to the SAN volume it reads, and from there through the fabric
// to pools and physical disks, yielding per-operator inner and outer
// dependency paths (Section 3). Components are annotated with the
// monitoring data collected during the plan's execution.
package apg

import (
	"fmt"
	"sort"
	"strings"

	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/plan"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// DBComponent is the pseudo-component carrying database-level metrics in
// dependency paths (buffer cache, lock manager).
const DBComponent = "db-RepDB"

// APG is the annotated plan graph for one query plan in one environment.
type APG struct {
	Plan   *plan.Plan
	Cfg    *topology.Config
	Server topology.ID

	// volumeOf maps a leaf operator ID to the SAN volume it reads.
	volumeOf map[int]topology.ID
	// paths maps operator IDs to dependency paths. Leaves carry their
	// volume's path; interior operators the union of their descendants'.
	paths map[int]topology.DependencyPath
}

// Build constructs the APG: it resolves every leaf operator's table
// through the catalog's tablespace mapping to a SAN volume (Section
// 3.1.2) and computes inner and outer dependency paths from the SAN
// configuration (Section 3.1.1).
func Build(p *plan.Plan, cfg *topology.Config, cat *dbsys.Catalog, server topology.ID) (*APG, error) {
	g := &APG{
		Plan:     p,
		Cfg:      cfg,
		Server:   server,
		volumeOf: make(map[int]topology.ID),
		paths:    make(map[int]topology.DependencyPath),
	}
	for _, leaf := range p.Leaves() {
		vol, err := cat.VolumeOf(leaf.Table)
		if err != nil {
			return nil, fmt.Errorf("apg: leaf O%d: %w", leaf.ID, err)
		}
		g.volumeOf[leaf.ID] = vol
		dp, err := cfg.VolumeDependencyPath(server, vol)
		if err != nil {
			return nil, fmt.Errorf("apg: leaf O%d on %s: %w", leaf.ID, vol, err)
		}
		dp.Inner = append(dp.Inner, DBComponent)
		g.paths[leaf.ID] = dp
	}
	// Interior operators depend on everything their descendants depend
	// on, plus the server and database instance.
	var walk func(n *plan.Node) topology.DependencyPath
	walk = func(n *plan.Node) topology.DependencyPath {
		if n.IsLeaf() {
			return g.paths[n.ID]
		}
		merged := topology.DependencyPath{
			Inner: []topology.ID{server, DBComponent},
		}
		seenIn := map[topology.ID]bool{server: true, DBComponent: true}
		seenOut := map[topology.ID]bool{}
		absorb := func(dp topology.DependencyPath) {
			for _, id := range dp.Inner {
				if !seenIn[id] {
					seenIn[id] = true
					merged.Inner = append(merged.Inner, id)
				}
			}
			for _, id := range dp.Outer {
				if !seenOut[id] {
					seenOut[id] = true
					merged.Outer = append(merged.Outer, id)
				}
			}
		}
		for _, ch := range n.Children {
			absorb(walk(ch))
		}
		for _, s := range n.SubPlans {
			absorb(walk(s))
		}
		g.paths[n.ID] = merged
		return merged
	}
	walk(p.Root)
	return g, nil
}

// VolumeOf returns the SAN volume a leaf operator reads ("" for interior
// operators).
func (g *APG) VolumeOf(opID int) topology.ID { return g.volumeOf[opID] }

// DependencyPath returns the operator's inner and outer dependency paths.
func (g *APG) DependencyPath(opID int) topology.DependencyPath { return g.paths[opID] }

// LeavesOnVolume returns the leaf operator IDs reading the given volume,
// in plan order.
func (g *APG) LeavesOnVolume(vol topology.ID) []int {
	var out []int
	for _, leaf := range g.Plan.Leaves() {
		if g.volumeOf[leaf.ID] == vol {
			out = append(out, leaf.ID)
		}
	}
	return out
}

// Volumes returns the distinct volumes the plan touches, sorted.
func (g *APG) Volumes() []topology.ID {
	seen := map[topology.ID]bool{}
	for _, v := range g.volumeOf {
		seen[v] = true
	}
	out := make([]topology.ID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Components returns every SAN component appearing on any operator's
// inner dependency path, sorted and de-duplicated.
func (g *APG) Components() []topology.ID {
	seen := map[topology.ID]bool{}
	for _, dp := range g.paths {
		for _, id := range dp.Inner {
			seen[id] = true
		}
	}
	out := make([]topology.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Annotation is the monitoring data attached to one APG component for one
// operator's execution window.
type Annotation struct {
	Component string
	Metric    metrics.Metric
	Samples   []metrics.Sample
}

// Annotate returns the annotations for an operator during one run: every
// metric series of every component on the operator's inner dependency
// path, restricted to the operator's evidence window (metrics.ReadWindow
// — the [start, stop] span padded by the monitoring interval, so coarse
// series contribute their nearest samples).
func (g *APG) Annotate(store *metrics.Store, run *exec.RunRecord, opID int) []Annotation {
	op := run.Op(opID)
	if op == nil {
		return nil
	}
	win := metrics.ReadWindow(simtime.NewInterval(op.Start, op.Stop))
	var out []Annotation
	for _, comp := range g.paths[opID].Inner {
		c := string(comp)
		for _, m := range store.MetricsFor(c) {
			samples := store.Window(c, m, win)
			if len(samples) == 0 {
				continue
			}
			out = append(out, Annotation{Component: c, Metric: m, Samples: samples})
		}
	}
	return out
}

// Render returns a text rendering of the APG: the plan tree with each
// leaf's volume mapping, followed by the SAN-side structure.
func (g *APG) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Annotated Plan Graph — query %s on %s\n", g.Plan.Query, g.Server)
	fmt.Fprintf(&b, "%d operators, %d leaves\n\n", g.Plan.NumOperators(), len(g.Plan.Leaves()))
	var walk func(n *plan.Node, depth int, prefix string)
	walk = func(n *plan.Node, depth int, prefix string) {
		suffix := ""
		if n.IsLeaf() {
			vol := g.volumeOf[n.ID]
			pool := g.Cfg.PoolOf(vol)
			disks := g.Cfg.DisksOf(vol)
			suffix = fmt.Sprintf("  -> %s (%s, %d disks)", vol, pool, len(disks))
		}
		fmt.Fprintf(&b, "%-4s %s%s%s%s\n", n.OpName(), strings.Repeat("  ", depth), prefix, n.Label(), suffix)
		for _, c := range n.Children {
			walk(c, depth+1, "")
		}
		for _, s := range n.SubPlans {
			walk(s, depth+1, "SubPlan: ")
		}
	}
	walk(g.Plan.Root, 0, "")

	b.WriteString("\nSAN layer:\n")
	for _, ss := range g.Cfg.All(topology.KindSubsystem) {
		fmt.Fprintf(&b, "  %s\n", g.Cfg.MustGet(ss))
		for _, pool := range g.Cfg.ChildrenOfKind(ss, topology.KindPool) {
			disks := g.Cfg.ChildrenOfKind(pool, topology.KindDisk)
			fmt.Fprintf(&b, "    %s (%d disks: %s..%s)\n", g.Cfg.MustGet(pool).Name,
				len(disks), disks[0], disks[len(disks)-1])
			for _, vol := range g.Cfg.VolumesInPool(pool) {
				fmt.Fprintf(&b, "      %s", g.Cfg.MustGet(vol).Name)
				if leaves := g.LeavesOnVolume(vol); len(leaves) > 0 {
					ops := make([]string, len(leaves))
					for i, id := range leaves {
						ops[i] = fmt.Sprintf("O%d", id)
					}
					fmt.Fprintf(&b, "  <- operators %s", strings.Join(ops, ", "))
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

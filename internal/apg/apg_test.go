package apg

import (
	"strings"
	"testing"

	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/topology"
	"diads/internal/workload"
)

func buildAPG(t *testing.T) (*APG, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 2},
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	p := tb.Runs[0].Plan
	g, err := Build(p, tb.Cfg, tb.Cat, testbed.ServerDB)
	if err != nil {
		t.Fatal(err)
	}
	return g, tb
}

func TestAPGVolumeMapping(t *testing.T) {
	g, _ := buildAPG(t)
	// O8 and O22 read V1; the other seven leaves read V2.
	v1 := g.LeavesOnVolume(testbed.VolV1)
	if len(v1) != 2 || v1[0] != 8 || v1[1] != 22 {
		t.Fatalf("V1 leaves: got %v, want [8 22]", v1)
	}
	v2 := g.LeavesOnVolume(testbed.VolV2)
	if len(v2) != 7 {
		t.Fatalf("V2 leaves: got %v, want 7 leaves", v2)
	}
	vols := g.Volumes()
	if len(vols) != 2 {
		t.Fatalf("plan should touch 2 volumes, got %v", vols)
	}
}

func TestO23DependencyPathMatchesPaper(t *testing.T) {
	// Section 3: the inner dependency path for Index Scan O23 includes
	// the server, HBA, FC switches, storage subsystem, pool P2, volume
	// V2, and disks 5-10; the outer path holds the disk-sharing volumes.
	g, _ := buildAPG(t)
	dp := g.DependencyPath(23)
	for _, want := range []topology.ID{
		testbed.ServerDB, "hba-db-1", "sw-edge-1", "sw-core-1",
		testbed.Subsystem, testbed.PoolP2, testbed.VolV2,
		"disk-5", "disk-6", "disk-7", "disk-8", "disk-9", "disk-10",
	} {
		if !dp.Contains(want) {
			t.Errorf("O23 inner path missing %s: %v", want, dp.Inner)
		}
	}
	if dp.Contains("disk-1") {
		t.Errorf("O23 must not depend on P1 disks")
	}
	foundV4 := false
	for _, v := range dp.Outer {
		if v == testbed.VolV4 {
			foundV4 = true
		}
	}
	if !foundV4 {
		t.Errorf("O23 outer path should include V4 (shared disks): %v", dp.Outer)
	}
}

func TestInteriorOperatorUnionsDescendantPaths(t *testing.T) {
	g, _ := buildAPG(t)
	// O3 sits above both V1 and V2 subtrees (via its subplan).
	dp := g.DependencyPath(3)
	for _, want := range []topology.ID{testbed.VolV1, testbed.VolV2, testbed.PoolP1, testbed.PoolP2} {
		if !dp.Contains(want) {
			t.Errorf("O3 path missing %s", want)
		}
	}
	// O7 covers only the V1 and V2 main-tree leaves under it (O8, O10).
	dp7 := g.DependencyPath(7)
	if !dp7.Contains(testbed.VolV1) || !dp7.Contains(testbed.VolV2) {
		t.Errorf("O7 should depend on V1 (O8) and V2 (O10)")
	}
	// O21 (sort over O22) depends on V1 only.
	dp21 := g.DependencyPath(21)
	if !dp21.Contains(testbed.VolV1) || dp21.Contains(testbed.VolV2) {
		t.Errorf("O21 should depend on V1 only: %v", dp21.Inner)
	}
	// Every interior path includes the DB pseudo-component.
	if !dp.Contains(DBComponent) {
		t.Errorf("paths should include the database instance")
	}
}

func TestAnnotationsCarryMonitoringData(t *testing.T) {
	g, tb := buildAPG(t)
	run := tb.Runs[0]
	anns := g.Annotate(tb.Store, run, 8)
	if len(anns) == 0 {
		t.Fatalf("O8 should have annotations")
	}
	var sawV1Metric bool
	for _, a := range anns {
		if a.Component == string(testbed.VolV1) && a.Metric == metrics.VolReadIO {
			sawV1Metric = true
			if len(a.Samples) == 0 {
				t.Fatalf("V1 readIO annotation empty")
			}
		}
	}
	if !sawV1Metric {
		t.Fatalf("O8 annotations missing V1 readIO; got %d annotations", len(anns))
	}
	if anns := g.Annotate(tb.Store, run, 999); anns != nil {
		t.Fatalf("unknown operator should yield nil annotations")
	}
}

func TestRenderShowsStructure(t *testing.T) {
	g, _ := buildAPG(t)
	r := g.Render()
	for _, want := range []string{
		"25 operators, 9 leaves",
		"vol-V1 (pool-P1, 4 disks)",
		"vol-V2 (pool-P2, 6 disks)",
		"SubPlan:",
		"<- operators O8, O22",
	} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
}

// Package workload describes the activity applied to the testbed: the
// periodic report-generation queries whose slowdown DIADS diagnoses,
// external application workloads hitting SAN volumes (steady or bursty),
// and DML batches that change data properties.
package workload

import (
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// QuerySchedule describes a query executed periodically, like the paper's
// report-generation query against RepDB.
type QuerySchedule struct {
	Query  string
	Start  simtime.Time
	Period simtime.Duration
	Count  int
}

// Times returns the scheduled start times.
func (qs QuerySchedule) Times() []simtime.Time {
	out := make([]simtime.Time, 0, qs.Count)
	for i := 0; i < qs.Count; i++ {
		out = append(out, qs.Start.Add(simtime.Duration(i)*qs.Period))
	}
	return out
}

// ExternalLoad is an application workload against a SAN volume. A
// DutyCycle below 1 makes the load bursty: within each Period it is on for
// DutyCycle of the time and silent otherwise — the bursts production
// monitoring averages out.
type ExternalLoad struct {
	Name      string
	Volume    topology.ID
	Window    simtime.Interval
	ReadIOPS  float64
	WriteIOPS float64
	SeqFrac   float64
	DutyCycle float64
	Period    simtime.Duration
}

// Segments expands the load into piecewise-constant SAN load segments.
func (el ExternalLoad) Segments() []sanperf.Load {
	duty := el.DutyCycle
	if duty <= 0 || duty >= 1 || el.Period <= 0 {
		return []sanperf.Load{{
			Volume: el.Volume, Iv: el.Window,
			ReadIOPS: el.ReadIOPS, WriteIOPS: el.WriteIOPS,
			SeqFrac: el.SeqFrac, Source: el.Name,
		}}
	}
	var out []sanperf.Load
	for start := el.Window.Start; start < el.Window.End; start = start.Add(el.Period) {
		end := start.Add(simtime.Duration(float64(el.Period) * duty))
		if end > el.Window.End {
			end = el.Window.End
		}
		if end <= start {
			break
		}
		out = append(out, sanperf.Load{
			Volume: el.Volume, Iv: simtime.NewInterval(start, end),
			ReadIOPS: el.ReadIOPS, WriteIOPS: el.WriteIOPS,
			SeqFrac: el.SeqFrac, Source: el.Name,
		})
	}
	return out
}

// MeanIOPS returns the load's time-averaged total IOPS over its window —
// what a coarse monitoring interval would report for a bursty load.
func (el ExternalLoad) MeanIOPS() float64 {
	total := el.ReadIOPS + el.WriteIOPS
	if el.DutyCycle > 0 && el.DutyCycle < 1 && el.Period > 0 {
		return total * el.DutyCycle
	}
	return total
}

// DMLBatch is a bulk data modification that changes a table's data
// properties at a point in time (scenario 3's "SQL DML causes a subtle
// change in data properties").
type DMLBatch struct {
	T      simtime.Time
	Table  string
	Factor float64 // multiplier on the table's cardinality
}

// ScheduledIndexDrop removes an index at a point in time (a Module PD
// plan-change cause).
type ScheduledIndexDrop struct {
	T     simtime.Time
	Index string
}

// ScheduledParamChange alters a configuration parameter at a point in
// time (another Module PD plan-change cause).
type ScheduledParamChange struct {
	T     simtime.Time
	Param string
	Value float64
}

package workload

import (
	"math"
	"testing"

	"diads/internal/simtime"
)

func TestQueryScheduleTimes(t *testing.T) {
	qs := QuerySchedule{Query: "Q2", Start: 100, Period: 30 * simtime.Minute, Count: 4}
	times := qs.Times()
	if len(times) != 4 {
		t.Fatalf("want 4 times, got %d", len(times))
	}
	if times[0] != 100 || times[3] != 100+3*simtime.Time(30*simtime.Minute) {
		t.Fatalf("times wrong: %v", times)
	}
}

func TestSteadyLoadSingleSegment(t *testing.T) {
	el := ExternalLoad{
		Name: "wl", Volume: "vol-V1",
		Window:   simtime.NewInterval(0, 1000),
		ReadIOPS: 100, WriteIOPS: 50, DutyCycle: 1,
	}
	segs := el.Segments()
	if len(segs) != 1 {
		t.Fatalf("steady load should be one segment, got %d", len(segs))
	}
	if segs[0].ReadIOPS != 100 || segs[0].Iv.Length() != 1000 {
		t.Fatalf("segment wrong: %+v", segs[0])
	}
	if el.MeanIOPS() != 150 {
		t.Fatalf("mean IOPS: %v", el.MeanIOPS())
	}
}

func TestBurstyLoadExpansion(t *testing.T) {
	el := ExternalLoad{
		Name: "burst", Volume: "vol-V2",
		Window:   simtime.NewInterval(0, 1000),
		ReadIOPS: 200, DutyCycle: 0.25, Period: 100,
	}
	segs := el.Segments()
	if len(segs) != 10 {
		t.Fatalf("want 10 bursts, got %d", len(segs))
	}
	var onTime float64
	for _, s := range segs {
		onTime += float64(s.Iv.Length())
		if s.ReadIOPS != 200 {
			t.Fatalf("burst intensity wrong: %+v", s)
		}
	}
	if math.Abs(onTime-250) > 1e-9 {
		t.Fatalf("duty cycle 0.25 over 1000s should be on 250s, got %v", onTime)
	}
	if math.Abs(el.MeanIOPS()-50) > 1e-9 {
		t.Fatalf("mean IOPS of bursty load: %v", el.MeanIOPS())
	}
}

func TestBurstTruncatedAtWindowEnd(t *testing.T) {
	el := ExternalLoad{
		Name: "b", Volume: "v",
		Window:   simtime.NewInterval(0, 130),
		ReadIOPS: 10, DutyCycle: 0.5, Period: 100,
	}
	segs := el.Segments()
	// Bursts: [0,50) and [100,130) truncated.
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d: %+v", len(segs), segs)
	}
	if segs[1].Iv.End != 130 {
		t.Fatalf("last burst should truncate at window end: %+v", segs[1])
	}
}

package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d,%v, want 1,true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d,%v, want 3,true", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a = %d, want 10", v)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	compute := func() (int, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", compute)
		if err != nil || v != 7 {
			t.Fatalf("got %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := fmt.Errorf("boom")
	if _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed compute was cached")
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := New[int, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 40
				if v, ok := c.Get(k); ok && v != k*k {
					t.Errorf("key %d = %d, want %d", k, v, k*k)
					return
				}
				c.Put(k, k*k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}

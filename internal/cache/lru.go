// Package cache provides a small, thread-safe LRU used by the concurrent
// diagnosis service to make repeated diagnoses of the same plan
// near-free: built Annotated Plan Graphs, symptoms-database evaluations,
// and whole diagnosis results are all keyed and reused through it.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache safe for concurrent
// use. The zero value is not usable; construct with New.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element

	hits, misses, evictions int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU holding at most capacity entries. Capacities below 1
// are raised to 1.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes k→v, evicting the least recently used entry if
// the cache is full.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.evictions++
	}
}

// GetOrCompute returns the cached value for k, computing and inserting it
// on a miss. The compute function runs outside the cache lock, so
// concurrent misses on the same key may compute twice; the last writer
// wins, which is harmless for the immutable values cached here.
func (c *LRU[K, V]) GetOrCompute(k K, compute func() (V, error)) (V, error) {
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return v, err
	}
	c.Put(k, v)
	return v, nil
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge empties the cache, keeping its statistics.
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// RemoveIf drops every entry whose key satisfies the predicate and
// returns how many were removed. Removals are not counted as evictions:
// they are lifecycle cleanup (an instance paging out releases its scoped
// entries), not capacity pressure.
func (c *LRU[K, V]) RemoveIf(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry[K, V]); pred(e.key) {
			c.order.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	return n
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

// Stats returns the cache's effectiveness counters.
func (c *LRU[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

package monitor

import (
	"fmt"
	"sort"
	"sync"

	"diads/internal/metrics"
	"diads/internal/simtime"
)

// MetricAlert is one anomalous monitoring sample: a watched component
// metric deviating from its own sliding baseline. Alerts are advisory
// context for the operator console — query slowdowns themselves are
// detected from run records — but they surface component-level trouble
// (a volume's response time climbing) before any query degrades enough
// to fire.
type MetricAlert struct {
	Component string
	Metric    metrics.Metric
	T         simtime.Time
	Value     float64
	Baseline  float64
	Sigma     float64
}

// String implements fmt.Stringer.
func (a MetricAlert) String() string {
	return fmt.Sprintf("%s %s/%s: %.3g vs baseline %.3g",
		a.T.Clock(), a.Component, a.Metric, a.Value, a.Baseline)
}

// watchState tracks one watched series: a cursor into the store and a
// sliding baseline over accepted samples.
type watchState struct {
	cursor int
	base   *baseline
}

// Watcher tails selected series of a metrics.Store as a stream: each Poll
// reads only the samples appended since the previous one (via the
// store's cursor queries — no re-scan) and pushes them through the same
// incremental baseline machinery the run monitor uses.
type Watcher struct {
	cfg   Config
	store *metrics.Store
	mu    sync.Mutex
	state map[metrics.SeriesKey]*watchState
}

// NewWatcher returns a watcher over the store with the given detection
// configuration (History, MinRuns, SigmaK, and MinFactor apply).
func NewWatcher(store *metrics.Store, cfg Config) *Watcher {
	return &Watcher{
		cfg:   cfg.withDefaults(),
		store: store,
		state: make(map[metrics.SeriesKey]*watchState),
	}
}

// Watch registers a series to tail. Watching an already-watched series is
// a no-op.
func (w *Watcher) Watch(component string, metric metrics.Metric) {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := metrics.SeriesKey{Component: component, Metric: metric}
	if _, ok := w.state[k]; !ok {
		w.state[k] = &watchState{base: newBaseline(w.cfg.History)}
	}
}

// Poll ingests all samples that arrived since the last call and returns
// the alerts they raised, in deterministic series order.
func (w *Watcher) Poll() []MetricAlert {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]metrics.SeriesKey, 0, len(w.state))
	for k := range w.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Component != keys[j].Component {
			return keys[i].Component < keys[j].Component
		}
		return keys[i].Metric < keys[j].Metric
	})
	var alerts []MetricAlert
	for _, k := range keys {
		st := w.state[k]
		var newSamples []metrics.Sample
		newSamples, st.cursor = w.store.Since(k.Component, k.Metric, st.cursor)
		for _, smp := range newSamples {
			mean, sigma := st.base.mean(), st.base.std()
			armed := st.base.count() >= w.cfg.MinRuns
			if armed && smp.V > mean*w.cfg.MinFactor && smp.V > mean+w.cfg.SigmaK*sigma {
				alerts = append(alerts, MetricAlert{
					Component: k.Component, Metric: k.Metric,
					T: smp.T, Value: smp.V, Baseline: mean, Sigma: sigma,
				})
				continue // anomalous samples stay out of the baseline
			}
			st.base.push(smp.V)
		}
	}
	return alerts
}

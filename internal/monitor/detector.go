package monitor

import "math"

// baseline maintains the online statistics of one observed stream over a
// sliding window: a fixed-capacity ring of accepted values with running
// sum and sum of squares (so mean and variance are O(1) per update, no
// re-scan), plus a Page-Hinkley accumulator for change-point detection of
// sustained drifts too small to trip the per-observation threshold.
type baseline struct {
	ring      []float64
	head, n   int
	sum, sum2 float64
	phSum     float64 // Page-Hinkley cumulative deviation
	phMin     float64 // running minimum of phSum
}

func newBaseline(capacity int) *baseline {
	if capacity < 1 {
		capacity = 1
	}
	return &baseline{ring: make([]float64, capacity)}
}

// push accepts v into the sliding window, evicting the oldest value once
// the ring is full.
func (b *baseline) push(v float64) {
	if b.n == len(b.ring) {
		old := b.ring[b.head]
		b.sum -= old
		b.sum2 -= old * old
	} else {
		b.n++
	}
	b.ring[b.head] = v
	b.sum += v
	b.sum2 += v * v
	b.head = (b.head + 1) % len(b.ring)
}

func (b *baseline) count() int { return b.n }

func (b *baseline) mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / float64(b.n)
}

func (b *baseline) std() float64 {
	if b.n == 0 {
		return 0
	}
	m := b.mean()
	v := b.sum2/float64(b.n) - m*m
	if v < 0 { // floating-point cancellation
		v = 0
	}
	return math.Sqrt(v)
}

// pageHinkley feeds the Page-Hinkley test with the relative deviation of
// v from the current baseline mean. delta is the tolerated drift
// fraction. It reports detected when the accumulated drift crossed
// lambda (the accumulator then resets so one regime shift fires once),
// and elevated while the accumulator is a quarter of the way there —
// callers freeze baseline updates during elevation so a slow drift is
// judged against the pre-drift reference instead of being absorbed into
// it.
func (b *baseline) pageHinkley(v, delta, lambda float64) (detected, elevated bool) {
	m := b.mean()
	if m <= 0 {
		return false, false
	}
	b.phSum += v/m - 1 - delta
	if b.phSum < b.phMin {
		b.phMin = b.phSum
	}
	if b.phSum-b.phMin > lambda {
		b.phSum, b.phMin = 0, 0
		return true, false
	}
	return false, b.phSum-b.phMin > lambda/4
}

package monitor

import (
	"fmt"
	"testing"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/simtime"
)

// fakeRun fabricates a run record; the monitor reads only identity and
// the start/stop interval.
func fakeRun(query string, i int, start simtime.Time, dur simtime.Duration) *exec.RunRecord {
	return &exec.RunRecord{
		Query: query,
		RunID: fmt.Sprintf("run-%s-%03d", query, i),
		Start: start,
		Stop:  start.Add(dur),
	}
}

// feed pushes n runs of the given duration pattern through the monitor.
func feed(m *Monitor, query string, n int, dur func(i int) simtime.Duration) {
	for i := 0; i < n; i++ {
		start := simtime.Time(simtime.Duration(i) * 30 * simtime.Minute)
		m.Observe(fakeRun(query, i, start, dur(i)))
	}
}

func drain(m *Monitor) []SlowdownEvent {
	var evs []SlowdownEvent
	for {
		select {
		case ev := <-m.Events():
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

func TestSteadyWorkloadRaisesNoEvents(t *testing.T) {
	m := New(Config{})
	// ±4% wobble around 60s, well inside 3 sigma of itself.
	feed(m, "Q2", 40, func(i int) simtime.Duration {
		return simtime.Duration(60 + 2.4*float64(i%5-2))
	})
	if evs := drain(m); len(evs) != 0 {
		t.Fatalf("steady workload produced %d events, first: %v", len(evs), evs[0])
	}
	st := m.Stats()
	if st.Observed != 40 || st.Events != 0 {
		t.Fatalf("stats = %+v, want 40 observed / 0 events", st)
	}
}

func TestInjectedSlowdownDetected(t *testing.T) {
	m := New(Config{})
	// 10 baseline runs at ~60s, then a 1.8x regime.
	feed(m, "Q2", 16, func(i int) simtime.Duration {
		if i < 10 {
			return simtime.Duration(60 + float64(i%3))
		}
		return simtime.Duration(108)
	})
	evs := drain(m)
	if len(evs) != 6 {
		t.Fatalf("got %d events, want one per degraded run (6)", len(evs))
	}
	ev := evs[0]
	if ev.Kind != KindThreshold {
		t.Errorf("first event kind = %s, want %s", ev.Kind, KindThreshold)
	}
	if ev.RunID != "run-Q2-010" {
		t.Errorf("first event run = %s, want run-Q2-010 (first degraded)", ev.RunID)
	}
	if ev.Factor < 1.5 {
		t.Errorf("factor = %.2f, want >= 1.5", ev.Factor)
	}
	// The baseline must not have been poisoned by the degraded runs:
	// every degraded run keeps firing against the pre-onset mean.
	last := evs[len(evs)-1]
	if last.Baseline > simtime.Duration(65) {
		t.Errorf("baseline drifted to %s; degraded runs leaked into it", last.Baseline)
	}
}

func TestEventSnapshotIsDiagnosable(t *testing.T) {
	m := New(Config{})
	feed(m, "Q2", 12, func(i int) simtime.Duration {
		if i < 10 {
			return 60
		}
		return 120
	})
	evs := drain(m)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		for _, r := range ev.Runs {
			if !ev.Window.Contains(r.Start) {
				t.Errorf("run %s starts outside the event window %v", r.RunID, ev.Window)
			}
		}
	}
	ev := evs[len(evs)-1]
	var sat, unsat int
	for _, r := range ev.Runs {
		if ev.Satisfactory[r.RunID] {
			sat++
		} else {
			unsat++
		}
	}
	// diag.Input needs >= 3 satisfactory and >= 1 unsatisfactory runs.
	if sat < 3 || unsat < 1 {
		t.Fatalf("snapshot has %d sat / %d unsat, not diagnosable", sat, unsat)
	}
	if ev.Satisfactory[ev.RunID] {
		t.Errorf("the offending run %s is labeled satisfactory", ev.RunID)
	}
}

// TestEventCarriesEvidenceReadWindow pins the evidence-window contract on
// the event itself: the window spans the snapshot's runs and ends at the
// offending run's stop, the read window is exactly metrics.ReadWindow of
// it, and every run's own padded read window — what Module DA and the
// silo baselines actually query — lies inside the event's, which is the
// containment that makes gating on ReadWindow.End sufficient.
func TestEventCarriesEvidenceReadWindow(t *testing.T) {
	m := New(Config{})
	feed(m, "Q2", 12, func(i int) simtime.Duration {
		if i < 10 {
			return 60
		}
		return 120
	})
	evs := drain(m)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		if ev.Window.End != ev.At {
			t.Errorf("window %v should end at the offending run's stop %v", ev.Window, ev.At)
		}
		if ev.ReadWindow != metrics.ReadWindow(ev.Window) {
			t.Errorf("read window %v is not metrics.ReadWindow(%v)", ev.ReadWindow, ev.Window)
		}
		for _, r := range ev.Runs {
			rw := metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop))
			if rw.Start < ev.ReadWindow.Start || rw.End > ev.ReadWindow.End {
				t.Errorf("run %s read window %v escapes the event's %v", r.RunID, rw, ev.ReadWindow)
			}
		}
	}
}

func TestChangePointCatchesSlowDrift(t *testing.T) {
	m := New(Config{SigmaK: 50, MinFactor: 4}) // threshold path disabled
	// 10 flat runs, then a persistent +15% regime: each run is far from
	// 4x the baseline, but the drift accumulates.
	feed(m, "Q2", 40, func(i int) simtime.Duration {
		if i < 10 {
			return 60
		}
		return 69
	})
	evs := drain(m)
	if len(evs) == 0 {
		t.Fatal("Page-Hinkley missed a sustained 15% drift")
	}
	if evs[0].Kind != KindChangePoint {
		t.Errorf("kind = %s, want %s", evs[0].Kind, KindChangePoint)
	}
}

func TestPerQueryIsolation(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 16; i++ {
		start := simtime.Time(simtime.Duration(i) * 30 * simtime.Minute)
		m.Observe(fakeRun("Q2", i, start, 60))
		d := simtime.Duration(30)
		if i >= 10 {
			d = 90 // only Q6 degrades
		}
		m.Observe(fakeRun("Q6", i, start.Add(simtime.Minute), d))
	}
	evs := drain(m)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		if ev.Query != "Q6" {
			t.Errorf("event for %s; only Q6 degraded", ev.Query)
		}
	}
}

func TestDroppedEventsAreCounted(t *testing.T) {
	m := New(Config{Buffer: 2})
	feed(m, "Q2", 20, func(i int) simtime.Duration {
		if i < 10 {
			return 60
		}
		return 150
	})
	st := m.Stats()
	if st.Events != 2 {
		t.Errorf("events = %d, want 2 (buffer capacity)", st.Events)
	}
	if st.Dropped != 8 {
		t.Errorf("dropped = %d, want 8", st.Dropped)
	}
}

func TestGateReleasesOnlyCoveredWindows(t *testing.T) {
	g := &Gate{}
	mk := func(id string, end simtime.Time) SlowdownEvent {
		return SlowdownEvent{RunID: id, ReadWindow: simtime.NewInterval(0, end)}
	}
	g.Add(mk("a", 100))
	g.Add(mk("b", 250))
	g.Add(mk("c", 180))

	if got := g.Release(50); len(got) != 0 {
		t.Fatalf("released %d events before any window closed", len(got))
	}
	got := g.Release(200)
	if len(got) != 2 || got[0].RunID != "a" || got[1].RunID != "c" {
		t.Fatalf("watermark 200 released %v, want [a c] in arrival order", got)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", g.Pending())
	}
	if got := g.Release(300); len(got) != 1 || got[0].RunID != "b" {
		t.Fatalf("final release = %v, want [b]", got)
	}
	if got := g.Release(1000); len(got) != 0 {
		t.Fatalf("empty gate released %v", got)
	}
}

// TestGateReleaseBoundaryInclusive pins Release's boundary rule: an
// event whose read window ends exactly at the watermark is released
// (sound because the watermark covers every sample with timestamp <= it,
// and read windows are half-open, so such an event reads only samples
// strictly before the watermark); one ending any later is held.
func TestGateReleaseBoundaryInclusive(t *testing.T) {
	g := &Gate{}
	g.Add(SlowdownEvent{RunID: "edge", ReadWindow: simtime.NewInterval(0, 300)})
	if got := g.Release(299); len(got) != 0 {
		t.Fatalf("released %d events below the window end", len(got))
	}
	got := g.Release(300)
	if len(got) != 1 || got[0].RunID != "edge" {
		t.Fatalf("watermark == ReadWindow.End must release the event, got %v", got)
	}
	g.Add(SlowdownEvent{RunID: "late", ReadWindow: simtime.NewInterval(0, simtime.Time(300).Add(simtime.Duration(1e-6)))})
	if got := g.Release(300); len(got) != 0 {
		t.Fatalf("a window ending past the watermark must be held, got %v", got)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", g.Pending())
	}
}

func TestWatcherAlertsOnDegradedSeries(t *testing.T) {
	store := metrics.NewStore()
	w := NewWatcher(store, Config{MinRuns: 6})
	w.Watch("vol-V1", metrics.VolReadTime)
	w.Watch("vol-V2", metrics.VolReadTime)

	for i := 0; i < 30; i++ {
		tstamp := simtime.Time(simtime.Duration(i) * 5 * simtime.Minute)
		v1 := 0.010
		if i >= 15 {
			v1 = 0.025 // V1 degrades halfway
		}
		store.MustAppend("vol-V1", metrics.VolReadTime, metrics.Sample{T: tstamp, V: v1})
		store.MustAppend("vol-V2", metrics.VolReadTime, metrics.Sample{T: tstamp, V: 0.012})
		if i == 10 {
			// Interleaved polling must pick up only the delta.
			if alerts := w.Poll(); len(alerts) != 0 {
				t.Fatalf("alerts before degradation: %v", alerts)
			}
		}
	}
	alerts := w.Poll()
	if len(alerts) != 15 {
		t.Fatalf("got %d alerts, want 15 (every degraded V1 sample)", len(alerts))
	}
	for _, a := range alerts {
		if a.Component != "vol-V1" {
			t.Errorf("alert on %s; only vol-V1 degraded", a.Component)
		}
	}
	if again := w.Poll(); len(again) != 0 {
		t.Errorf("re-poll with no new samples alerted: %v", again)
	}
}

// Package monitor is the online detection front-end of the reproduction's
// always-on operating mode. Where the paper's workflow (Figure 2) starts
// from an administrator noticing a slow query, the monitor watches the
// stream of completed runs itself: it maintains an incremental
// per-query baseline — a ring-buffered history with online mean/variance
// and Page-Hinkley change-point detection, never re-scanning the full
// history — and emits typed SlowdownEvents the moment a run degrades
// beyond the configured threshold. Events carry a labeled run-history
// snapshot, so a downstream diagnosis worker has everything Module PD
// onwards needs without touching the monitor again.
package monitor

import (
	"fmt"
	"sync"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/telemetry"
)

// EventKind classifies how a slowdown was detected.
type EventKind string

const (
	// KindThreshold marks a single run exceeding the baseline by the
	// configured factor and sigma multiple.
	KindThreshold EventKind = "threshold"
	// KindChangePoint marks a sustained drift caught by the Page-Hinkley
	// test before any single run tripped the threshold.
	KindChangePoint EventKind = "change-point"
)

// SlowdownEvent is one detected degradation of a query, self-contained
// enough to diagnose: it snapshots the ring-buffered run history with
// satisfactory/unsatisfactory labels in the form diag.Input consumes.
type SlowdownEvent struct {
	Query string
	RunID string
	Kind  EventKind
	// TraceID identifies the event across the whole stack: the service
	// tags its submit-outcome, queue-wait, and diagnosis spans with it,
	// and the resulting pipeline trace carries it too. It is derived
	// deterministically from the offending run (never random), so traces
	// are stable per seed and reports stay byte-identical.
	TraceID string
	// Instance names the database instance the event came from. The
	// monitor itself leaves it empty (it watches a single instance); the
	// fleet layer tags events with the instance ID while fanning many
	// monitors into one shared diagnosis service, so job deduplication
	// and incident identity stay per-instance.
	Instance string
	// At is when the offending run completed.
	At simtime.Time
	// Duration is the offending run's time; Baseline the sliding-window
	// mean and Sigma its standard deviation at detection time.
	Duration, Baseline, Sigma simtime.Duration
	// Factor is Duration / Baseline.
	Factor float64
	// Window spans the snapshot's runs: from the earliest remembered
	// run's start to the offending run's stop.
	Window simtime.Interval
	// ReadWindow is the evidence window of the event — Window padded by
	// the monitoring interval on both sides (metrics.ReadWindow). It is
	// the single contract tying detection to diagnosis: every metric
	// read a diagnosis of this event performs lies inside it, the Gate
	// holds the event until the emission watermark covers its end, and
	// the diagnosis service deduplicates jobs by it.
	ReadWindow simtime.Interval
	// Runs is the history snapshot (baseline runs plus recent anomalous
	// ones, in time order) and Satisfactory its labels.
	Runs         []*exec.RunRecord
	Satisfactory map[string]bool
}

// String implements fmt.Stringer.
func (ev SlowdownEvent) String() string {
	q := ev.Query
	if ev.Instance != "" {
		q = ev.Instance + "/" + ev.Query
	}
	return fmt.Sprintf("%s %s %s: %s vs baseline %s (%.2fx, %d-run window)",
		ev.At.Clock(), q, ev.Kind, ev.Duration, ev.Baseline, ev.Factor, len(ev.Runs))
}

// Config tunes detection.
type Config struct {
	// History is the per-query ring capacity (default 32 runs).
	History int
	// MinRuns arms detection only after this many baseline runs
	// (default 6; at least 3, the diagnosis workflow's floor).
	MinRuns int
	// SigmaK is the sigma multiple a run must exceed (default 3).
	SigmaK float64
	// MinFactor is the minimum slowdown ratio over the baseline mean
	// (default 1.4), guarding against sigma collapsing on quiet streams.
	MinFactor float64
	// PHDelta is the Page-Hinkley tolerated drift fraction (default 0.05).
	PHDelta float64
	// PHLambda is the Page-Hinkley detection threshold in cumulative
	// relative-drift units (default 1.0).
	PHLambda float64
	// Buffer is the event channel capacity (default 64). When the
	// consumer falls behind, further events are counted as dropped
	// rather than blocking the execution path.
	Buffer int
}

func (c Config) withDefaults() Config {
	if c.History <= 0 {
		c.History = 32
	}
	if c.MinRuns <= 0 {
		c.MinRuns = 6
	}
	if c.MinRuns < 3 {
		c.MinRuns = 3
	}
	if c.SigmaK <= 0 {
		c.SigmaK = 3
	}
	if c.MinFactor <= 0 {
		c.MinFactor = 1.4
	}
	if c.PHDelta <= 0 {
		c.PHDelta = 0.05
	}
	if c.PHLambda <= 0 {
		c.PHLambda = 1.0
	}
	if c.Buffer <= 0 {
		c.Buffer = 64
	}
	return c
}

// histEntry is one remembered run plus its label.
type histEntry struct {
	rec *exec.RunRecord
	sat bool
}

// queryState is the incremental state of one query's stream.
type queryState struct {
	hist []histEntry // ring of recent runs, oldest first after slicing
	base *baseline   // sliding stats over satisfactory runs only
}

// Stats are the monitor's lifetime counters.
type Stats struct {
	Observed int64 // runs ingested
	Events   int64 // events emitted
	Dropped  int64 // events lost to a full channel
	Queries  int   // distinct queries tracked
}

// Monitor ingests completed runs (attach Observe to
// exec.Engine.OnRunComplete) and emits SlowdownEvents. All methods are
// safe for concurrent use.
type Monitor struct {
	cfg    Config
	mu     sync.Mutex
	states map[string]*queryState
	events chan SlowdownEvent
	sink   func(SlowdownEvent)
	stats  Stats
	tel    monitorTelemetry
}

// monitorTelemetry holds the layer's shared instruments: every monitor
// in the process (each fleet instance runs its own) increments the same
// fleet-wide counters. Telemetry is a side channel — Stats stays the
// per-monitor source of truth.
type monitorTelemetry struct {
	observed    *telemetry.Counter
	threshold   *telemetry.Counter
	changePoint *telemetry.Counter
	dropped     *telemetry.Counter
}

func newMonitorTelemetry() monitorTelemetry {
	reg := telemetry.Default()
	events := func(kind EventKind) *telemetry.Counter {
		return reg.Counter("diads_monitor_slowdown_events_total",
			"Slowdown events emitted by run monitors, by detection kind.",
			telemetry.Labels{"kind": string(kind)})
	}
	return monitorTelemetry{
		observed: reg.Counter("diads_monitor_runs_observed_total",
			"Completed query runs ingested by run monitors.", nil),
		threshold:   events(KindThreshold),
		changePoint: events(KindChangePoint),
		dropped: reg.Counter("diads_monitor_events_dropped_total",
			"Slowdown events lost to a full event channel.", nil),
	}
}

// New returns a monitor with the given configuration.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:    cfg,
		states: make(map[string]*queryState),
		events: make(chan SlowdownEvent, cfg.Buffer),
		tel:    newMonitorTelemetry(),
	}
}

// Events is the stream of detected slowdowns. The channel is never
// closed; drain it with a select or poll its length.
func (m *Monitor) Events() <-chan SlowdownEvent { return m.events }

// SetSink replaces the buffered event channel with a synchronous
// callback: every detected slowdown is delivered to fn from inside
// Observe, losslessly — nothing is ever counted dropped. The HTTP
// ingest path uses this (its single ordered intake worker calls
// Observe, so delivery happens on a controlled goroutine and the
// caller's gate/submit logic applies its own backpressure). Set it
// before the first Observe and do not mix with Events(): once a sink
// is installed the channel stays empty.
func (m *Monitor) SetSink(fn func(SlowdownEvent)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink = fn
}

// Stats returns the lifetime counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Queries = len(m.states)
	return st
}

// LowWatermark returns the oldest evidence time a FUTURE event from this
// monitor can reference, and whether any history is remembered at all.
// Every event snapshots the per-query history ring, and its ReadWindow
// starts at the earliest remembered run padded by the evidence-window
// contract — so the padded Start of the oldest remembered run across all
// queries bounds, from below, every read window the monitor can still
// mint. Metric samples and run records older than this can never be read
// by a diagnosis that has not already been released; retention layers
// truncate against it (combined with Gate.LowWatermark for events
// already minted but not yet diagnosed).
func (m *Monitor) LowWatermark() (simtime.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest simtime.Time
	found := false
	//lint:allow mapiter min over the per-query oldest runs is commutative
	for _, st := range m.states {
		if len(st.hist) == 0 {
			continue
		}
		start := st.hist[0].rec.Start
		if !found || start < oldest {
			oldest, found = start, true
		}
	}
	if !found {
		return 0, false
	}
	// Pad through the one evidence-window contract, never hand-derived:
	// a future event whose Window starts at `oldest` reads
	// metrics.ReadWindow of that window.
	return metrics.ReadWindow(simtime.NewInterval(oldest, oldest)).Start, true
}

// Observe ingests one completed run: O(1) baseline update plus, when the
// run (or the accumulated drift) degrades past the thresholds, one event.
// It is the callback to hang on exec.Engine.OnRunComplete.
func (m *Monitor) Observe(rec *exec.RunRecord) {
	if rec == nil {
		return
	}
	m.tel.observed.Inc()
	m.mu.Lock()
	m.stats.Observed++
	st := m.states[rec.Query]
	if st == nil {
		st = &queryState{base: newBaseline(m.cfg.History)}
		m.states[rec.Query] = st
	}

	dur := float64(rec.Duration())
	mean, sigma, n := st.base.mean(), st.base.std(), st.base.count()
	armed := n >= m.cfg.MinRuns

	kind := EventKind("")
	elevated := false
	if armed && dur > mean*m.cfg.MinFactor && dur > mean+m.cfg.SigmaK*sigma {
		kind = KindThreshold
	} else if armed {
		// Page-Hinkley catches sustained drifts too small for the
		// threshold; while its accumulator is elevated the baseline
		// freezes so the drift is judged against the pre-drift regime.
		var detected bool
		detected, elevated = st.base.pageHinkley(dur, m.cfg.PHDelta, m.cfg.PHLambda)
		if detected {
			kind = KindChangePoint
		}
	}

	sat := kind == ""
	if sat && !elevated {
		// Only satisfactory runs feed the baseline, so a degraded regime
		// cannot poison the reference it is judged against.
		st.base.push(dur)
	}
	st.hist = append(st.hist, histEntry{rec: rec, sat: sat})
	if len(st.hist) > m.cfg.History {
		st.hist = st.hist[len(st.hist)-m.cfg.History:]
	}

	var ev SlowdownEvent
	sink := m.sink
	if kind != "" {
		ev = m.buildEvent(rec, st, kind, dur, mean, sigma)
		m.stats.Events++
	}
	m.mu.Unlock()

	if kind != "" {
		switch kind {
		case KindThreshold:
			m.tel.threshold.Inc()
		case KindChangePoint:
			m.tel.changePoint.Inc()
		}
		if sink != nil {
			sink(ev)
			return
		}
		select {
		case m.events <- ev:
		default:
			m.tel.dropped.Inc()
			m.mu.Lock()
			m.stats.Dropped++
			m.stats.Events--
			m.mu.Unlock()
		}
	}
}

// Gate defers slowdown events until the monitoring pipeline's watermark
// has passed their evidence window. The monitor emits an event the
// moment the offending run completes, but a run can finish inside a
// chunk whose metrics are not yet emitted; diagnosing then would read a
// half-written window and make results timing-dependent. Drivers drain
// the event channel into the gate and submit only what Release returns
// for the current watermark (in a chunked simulation, the chunk
// boundary onChunk reports).
type Gate struct {
	mu      sync.Mutex
	pending []SlowdownEvent
}

// Add defers an event until its read window is fully covered.
func (g *Gate) Add(ev SlowdownEvent) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending = append(g.pending, ev)
}

// Release returns, in arrival order, every deferred event whose
// ReadWindow ends at or before the watermark — the emission watermark's
// evidence-window contract: a released event's diagnosis reads metrics
// only inside its ReadWindow, so its result can never depend on samples
// a later chunk emits.
//
// The boundary is inclusive: an event whose ReadWindow ends exactly at
// the watermark is released. That is sound because the watermark
// guarantees every sample with timestamp <= watermark has been emitted,
// while read windows are half-open — a window ending at the watermark
// reads only samples strictly before it.
func (g *Gate) Release(watermark simtime.Time) []SlowdownEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	var ready []SlowdownEvent
	kept := g.pending[:0]
	for _, ev := range g.pending {
		if ev.ReadWindow.End <= watermark {
			ready = append(ready, ev)
		} else {
			kept = append(kept, ev)
		}
	}
	g.pending = kept
	return ready
}

// LowWatermark returns the earliest ReadWindow start among deferred
// events, and whether any events are pending. Events in the gate have
// been minted but not yet diagnosed: their whole read windows are still
// future evidence, so retention must not truncate below the minimum.
func (g *Gate) LowWatermark() (simtime.Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var oldest simtime.Time
	found := false
	for _, ev := range g.pending {
		if !found || ev.ReadWindow.Start < oldest {
			oldest, found = ev.ReadWindow.Start, true
		}
	}
	return oldest, found
}

// Pending returns the number of deferred events.
func (g *Gate) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// buildEvent snapshots the query's history into a self-contained event.
// Callers hold the mutex.
func (m *Monitor) buildEvent(rec *exec.RunRecord, st *queryState, kind EventKind, dur, mean, sigma float64) SlowdownEvent {
	runs := make([]*exec.RunRecord, 0, len(st.hist))
	labels := make(map[string]bool, len(st.hist))
	winStart := rec.Start
	for _, h := range st.hist {
		runs = append(runs, h.rec)
		labels[h.rec.RunID] = h.sat
		if h.rec.Start < winStart {
			winStart = h.rec.Start
		}
	}
	factor := 0.0
	if mean > 0 {
		factor = dur / mean
	}
	window := simtime.NewInterval(winStart, rec.Stop)
	return SlowdownEvent{
		Query: rec.Query,
		RunID: rec.RunID,
		Kind:  kind,
		// Deterministic per (query, run, kind): the same seed always
		// mints the same trace IDs, so span streams are comparable
		// across runs and nothing downstream can pick up entropy.
		TraceID:      fmt.Sprintf("%s/%s/%s", rec.Query, rec.RunID, kind),
		At:           rec.Stop,
		Duration:     simtime.Duration(dur),
		Baseline:     simtime.Duration(mean),
		Sigma:        simtime.Duration(sigma),
		Factor:       factor,
		Window:       window,
		ReadWindow:   metrics.ReadWindow(window),
		Runs:         runs,
		Satisfactory: labels,
	}
}

// Package whatif implements the what-if analysis extension of Section 7:
// administrators can assess the impact of a planned database or SAN
// change on query performance before applying it, using the same models
// the diagnosis workflow runs on — the SAN utilization law for storage
// changes and the optimizer cost model for database changes.
package whatif

import (
	"fmt"
	"math"

	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/opt"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// Prediction is the outcome of one what-if question.
type Prediction struct {
	Change string
	// SlowdownFactor is the predicted query running-time multiplier
	// (values < 1 predict a speedup).
	SlowdownFactor float64
	Detail         string
}

// String implements fmt.Stringer.
func (p Prediction) String() string {
	return fmt.Sprintf("%s -> predicted %.2fx (%s)", p.Change, p.SlowdownFactor, p.Detail)
}

// Analyzer answers what-if questions against the current environment and
// a representative baseline run of the query.
type Analyzer struct {
	Cfg      *topology.Config
	SAN      *sanperf.Model
	Cat      *dbsys.Catalog
	Opt      *opt.Optimizer
	Params   *dbsys.Params
	Stats    dbsys.Stats
	Baseline *exec.RunRecord
	// At is the representative time at which storage state is evaluated.
	At simtime.Time
}

// AddWorkload predicts the query impact of adding an I/O workload to a
// volume: the extra utilization on the volume's pool inflates the I/O
// time of every leaf operator reading volumes of that pool.
func (a *Analyzer) AddWorkload(vol topology.ID, readIOPS, writeIOPS float64) (Prediction, error) {
	pool := a.Cfg.PoolOf(vol)
	if pool == "" {
		return Prediction{}, fmt.Errorf("whatif: volume %q has no pool", vol)
	}
	disks := a.Cfg.ChildrenOfKind(pool, topology.KindDisk)
	params := a.SAN.Params()
	extraUtil := (readIOPS*float64(params.RandomReadService) +
		writeIOPS*float64(params.WriteService)) / float64(len(disks))

	rho0 := a.SAN.PoolUtilization(pool, a.At)
	rho1 := math.Min(rho0+extraUtil, params.MaxUtil)
	factor := (1 - rho0) / (1 - rho1)

	pred := Prediction{
		Change: fmt.Sprintf("add %.0f read + %.0f write IOPS to %s", readIOPS, writeIOPS, vol),
		Detail: fmt.Sprintf("pool %s utilization %.2f -> %.2f; I/O on its volumes slows %.2fx",
			pool, rho0, rho1, factor),
	}
	pred.SlowdownFactor = a.scaleLeafIO(func(leafVol topology.ID) float64 {
		if a.Cfg.PoolOf(leafVol) == pool {
			return factor
		}
		return 1
	})
	return pred, nil
}

// MoveVolume predicts the impact of migrating a volume to another pool:
// its current pool gets lighter, the destination heavier.
func (a *Analyzer) MoveVolume(vol topology.ID, toPool topology.ID) (Prediction, error) {
	fromPool := a.Cfg.PoolOf(vol)
	if fromPool == "" {
		return Prediction{}, fmt.Errorf("whatif: volume %q has no pool", vol)
	}
	if _, ok := a.Cfg.Get(toPool); !ok {
		return Prediction{}, fmt.Errorf("whatif: unknown pool %q", toPool)
	}
	params := a.SAN.Params()
	load := a.SAN.VolumeReadIOPS(vol, a.At)*float64(params.RandomReadService) +
		a.SAN.VolumeWriteIOPS(vol, a.At)*float64(params.WriteService)

	fromDisks := float64(len(a.Cfg.ChildrenOfKind(fromPool, topology.KindDisk)))
	toDisks := float64(len(a.Cfg.ChildrenOfKind(toPool, topology.KindDisk)))
	rhoFrom0 := a.SAN.PoolUtilization(fromPool, a.At)
	rhoFrom1 := math.Max(rhoFrom0-load/fromDisks, 0)
	rhoTo0 := a.SAN.PoolUtilization(toPool, a.At)
	rhoTo1 := math.Min(rhoTo0+load/toDisks, params.MaxUtil)

	factorFrom := (1 - rhoFrom0) / (1 - rhoFrom1)
	factorTo := (1 - rhoTo0) / (1 - rhoTo1)

	pred := Prediction{
		Change: fmt.Sprintf("move %s from %s to %s", vol, fromPool, toPool),
		Detail: fmt.Sprintf("%s utilization %.2f -> %.2f; %s %.2f -> %.2f",
			fromPool, rhoFrom0, rhoFrom1, toPool, rhoTo0, rhoTo1),
	}
	pred.SlowdownFactor = a.scaleLeafIO(func(leafVol topology.ID) float64 {
		switch a.Cfg.PoolOf(leafVol) {
		case fromPool:
			return factorFrom
		case toPool:
			return factorTo
		}
		return 1
	})
	return pred, nil
}

// GrowTable predicts the impact of a table growing by the given factor,
// using the optimizer's cost model (the cost-model implementation of
// Module IA repurposed proactively).
func (a *Analyzer) GrowTable(table string, factor float64) (Prediction, error) {
	if _, ok := a.Cat.Table(table); !ok {
		return Prediction{}, fmt.Errorf("whatif: unknown table %q", table)
	}
	p, err := a.Opt.PlanQuery(a.Baseline.Query, a.Stats, a.Params)
	if err != nil {
		return Prediction{}, err
	}
	base := a.Opt.CostPlan(p, a.Stats, a.Params)
	grown := a.Stats.Clone()
	grown.Rows[table] = int64(float64(grown.Rows[table]) * factor)
	after := a.Opt.CostPlan(p, grown, a.Params)
	return Prediction{
		Change:         fmt.Sprintf("grow %s by %.2fx", table, factor),
		SlowdownFactor: after / base,
		Detail:         fmt.Sprintf("optimizer cost %.0f -> %.0f with the current plan", base, after),
	}, nil
}

// ChangeParam predicts the impact of a configuration-parameter change:
// if the optimizer would pick a different plan, the cost ratio of the new
// plan to the current one is reported.
func (a *Analyzer) ChangeParam(name string, value float64) (Prediction, error) {
	before, err := a.Opt.PlanQuery(a.Baseline.Query, a.Stats, a.Params)
	if err != nil {
		return Prediction{}, err
	}
	changed := a.Params.Clone()
	changed.Set(name, value)
	after, err := a.Opt.PlanQuery(a.Baseline.Query, a.Stats, changed)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{
		Change: fmt.Sprintf("set %s=%g", name, value),
	}
	if before.Signature() == after.Signature() {
		pred.SlowdownFactor = 1
		pred.Detail = "plan unchanged"
		return pred, nil
	}
	// Compare both plans under the *current* cost model: the plan the
	// changed parameters force, costed at true parameters.
	costBefore := a.Opt.CostPlan(before, a.Stats, a.Params)
	costAfter := a.Opt.CostPlan(after, a.Stats, a.Params)
	pred.SlowdownFactor = costAfter / costBefore
	pred.Detail = fmt.Sprintf("plan changes; cost %.0f -> %.0f", costBefore, costAfter)
	return pred, nil
}

// scaleLeafIO recomputes the baseline run's duration with each leaf's I/O
// time scaled by factorFor(volume of the leaf), returning the predicted
// duration ratio.
func (a *Analyzer) scaleLeafIO(factorFor func(topology.ID) float64) float64 {
	base := float64(a.Baseline.Duration())
	if base <= 0 {
		return 1
	}
	var extra float64
	for _, n := range a.Baseline.Plan.Leaves() {
		op := a.Baseline.Op(n.ID)
		if op == nil {
			continue
		}
		vol, err := a.Cat.VolumeOf(n.Table)
		if err != nil {
			continue
		}
		extra += float64(op.IOTime) * (factorFor(vol) - 1)
	}
	return (base + extra) / base
}

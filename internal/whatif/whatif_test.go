package whatif

import (
	"testing"

	"diads/internal/dbsys"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func analyzer(t *testing.T) *Analyzer {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(61))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 4},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(4*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	run := tb.RunsFor("Q2")[1]
	return &Analyzer{
		Cfg: tb.Cfg, SAN: tb.SAN, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Baseline: run, At: run.Start,
	}
}

func TestAddWorkloadPredictsPoolSensitivity(t *testing.T) {
	an := analyzer(t)
	p1, err := an.AddWorkload(testbed.VolV3, 450, 120)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := an.AddWorkload(testbed.VolV4, 450, 120)
	if err != nil {
		t.Fatal(err)
	}
	if p1.SlowdownFactor <= 1 {
		t.Fatalf("P1 workload should predict a slowdown: %v", p1)
	}
	if p1.SlowdownFactor <= p2.SlowdownFactor {
		t.Fatalf("P1 (partsupp pool, 4 disks) should hurt more than P2 (6 disks): %v vs %v", p1, p2)
	}
	if _, err := an.AddWorkload("no-such-volume", 10, 10); err == nil {
		t.Fatalf("unknown volume should error")
	}
}

func TestMoveVolumePredictsRelief(t *testing.T) {
	an := analyzer(t)
	// Load V3's pool first so moving V3 away predicts relief for Q2.
	an.SAN.AddLoad(sanperf.Load{
		Volume: testbed.VolV3, Iv: simtime.NewInterval(0, 1e9),
		ReadIOPS: 300, Source: "test-load",
	})
	pred, err := an.MoveVolume(testbed.VolV3, testbed.PoolP2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.SlowdownFactor >= 1 {
		t.Fatalf("moving the loaded V3 off P1 should predict a speedup: %v", pred)
	}
	if _, err := an.MoveVolume(testbed.VolV3, "no-such-pool"); err == nil {
		t.Fatalf("unknown pool should error")
	}
}

func TestGrowTablePredictsCostIncrease(t *testing.T) {
	an := analyzer(t)
	pred, err := an.GrowTable(dbsys.TPartsupp, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.SlowdownFactor <= 1 {
		t.Fatalf("doubling partsupp should predict a slowdown: %v", pred)
	}
	if _, err := an.GrowTable("nope", 2); err == nil {
		t.Fatalf("unknown table should error")
	}
}

func TestChangeParamDetectsPlanFlip(t *testing.T) {
	an := analyzer(t)
	same, err := an.ChangeParam(dbsys.ParamWorkMemKB, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if same.SlowdownFactor != 1 {
		t.Fatalf("work_mem change should keep the plan: %v", same)
	}
	flip, err := an.ChangeParam(dbsys.ParamEnableIndexScan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flip.SlowdownFactor <= 1 {
		t.Fatalf("disabling index scans should predict a regression: %v", flip)
	}
}

// Package diag implements DIADS's diagnosis workflow (Figure 2 of the
// paper): starting from a query the administrator marked as having
// satisfactory and unsatisfactory runs, it drills down to plans (Module
// PD), operators (Module CO), components (Module DA), and record counts
// (Module CR), maps the observed symptoms to root causes through the
// symptoms database (Module SD), and rolls back up with impact analysis
// (Module IA) to tie causes to their share of the slowdown.
package diag

import (
	"fmt"
	"sort"

	"diads/internal/apg"
	"diads/internal/cache"
	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/kde"
	"diads/internal/metrics"
	"diads/internal/opt"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/topology"
)

// Input is everything the workflow consumes: the run history with the
// administrator's satisfactory/unsatisfactory labels, the monitoring
// store, and the configuration state needed to construct APGs and replay
// plan choices.
type Input struct {
	Query string
	Runs  []*exec.RunRecord
	// Satisfactory maps run IDs to the administrator's labels. Runs
	// absent from the map are ignored.
	Satisfactory map[string]bool

	Store  *metrics.Store
	Cfg    *topology.Config
	Cat    *dbsys.Catalog
	Opt    *opt.Optimizer
	Params *dbsys.Params
	Stats  dbsys.Stats
	Server topology.ID

	// SymDB is the symptoms database; nil means diagnosis stops after the
	// module outputs (the paper notes DIADS still narrows the search
	// space without one).
	SymDB *symptoms.DB
	// Threshold is the anomaly-score threshold (default 0.8).
	Threshold float64

	// APGCache, when non-nil, caches built Annotated Plan Graphs by plan
	// signature across diagnoses. The concurrent diagnosis service shares
	// one cache between its workers so repeated diagnoses of the same
	// plan skip the topology walk. Entries assume a stable SAN
	// configuration; purge the cache after configuration changes.
	APGCache *cache.LRU[string, *apg.APG]
	// SDCache, when non-nil, caches symptoms-database evaluations keyed
	// by (plan signature, fact-base fingerprint, SymDB version), so
	// identical symptom sets are not re-scored entry by entry while
	// database growth (mined entries) still invalidates stale results.
	SDCache *cache.LRU[string, []symptoms.CauseInstance]

	// CacheScope namespaces APGCache/SDCache keys. A service diagnosing
	// several fleet instances through shared caches sets it to the
	// instance ID: the instances' plans share signatures but their SAN
	// topologies diverge once faults are injected, so a cached APG from
	// one instance must never satisfy another's diagnosis.
	CacheScope string

	// TraceID, when set, tags the diagnosis's pipeline trace and telemetry
	// spans. The online service threads the triggering SlowdownEvent's
	// deterministic trace ID here so one slowdown can be followed from
	// detection through every module it ran. Purely observational: it
	// never influences module results or report bytes.
	TraceID string
}

// threshold returns the configured or default anomaly threshold.
func (in *Input) threshold() float64 {
	if in.Threshold > 0 {
		return in.Threshold
	}
	return kde.DefaultThreshold
}

// Threshold0 exposes the effective anomaly threshold to other analyzers
// (the silo baselines reuse it for comparability).
func (in *Input) Threshold0() float64 { return in.threshold() }

// SatRuns exposes the labeled-satisfactory runs in time order.
func (in *Input) SatRuns() []*exec.RunRecord { return in.satisfactoryRuns() }

// UnsatRuns exposes the labeled-unsatisfactory runs in time order.
func (in *Input) UnsatRuns() []*exec.RunRecord { return in.unsatisfactoryRuns() }

// satisfactoryRuns returns the labeled-satisfactory runs in time order.
func (in *Input) satisfactoryRuns() []*exec.RunRecord {
	return in.labeled(true)
}

// unsatisfactoryRuns returns the labeled-unsatisfactory runs in time
// order.
func (in *Input) unsatisfactoryRuns() []*exec.RunRecord {
	return in.labeled(false)
}

func (in *Input) labeled(want bool) []*exec.RunRecord {
	var out []*exec.RunRecord
	for _, r := range in.Runs {
		if sat, ok := in.Satisfactory[r.RunID]; ok && sat == want {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// validate checks the input is diagnosable.
func (in *Input) validate() error {
	if len(in.Runs) == 0 {
		return fmt.Errorf("diag: no runs for query %s", in.Query)
	}
	sat, unsat := in.satisfactoryRuns(), in.unsatisfactoryRuns()
	if len(sat) < 3 {
		return fmt.Errorf("diag: need at least 3 satisfactory runs, have %d", len(sat))
	}
	if len(unsat) < 1 {
		return fmt.Errorf("diag: need at least 1 unsatisfactory run, have %d", len(unsat))
	}
	if in.Store == nil || in.Cfg == nil || in.Cat == nil {
		return fmt.Errorf("diag: store, config, and catalog are required")
	}
	return nil
}

// LabelByDuration produces labels declaratively, like the paper's
// "every query execution that has a running time greater than 30 minutes
// is unsatisfactory": runs with duration <= cutoff are satisfactory.
func LabelByDuration(runs []*exec.RunRecord, cutoff simtime.Duration) map[string]bool {
	labels := make(map[string]bool, len(runs))
	for _, r := range runs {
		labels[r.RunID] = r.Duration() <= cutoff
	}
	return labels
}

// LabelByWindow labels runs starting inside unsatWindow as
// unsatisfactory and everything else satisfactory, like the paper's "all
// runs from 2 PM to 3 PM were unsatisfactory".
func LabelByWindow(runs []*exec.RunRecord, unsatWindow simtime.Interval) map[string]bool {
	labels := make(map[string]bool, len(runs))
	for _, r := range runs {
		labels[r.RunID] = !unsatWindow.Contains(r.Start)
	}
	return labels
}

// LabelAdaptive labels runs relative to the median of the first few runs:
// anything more than factor times the early median is unsatisfactory.
// It is a convenience for experiments; real administrators mark runs
// explicitly or declaratively.
func LabelAdaptive(runs []*exec.RunRecord, factor float64) map[string]bool {
	if len(runs) == 0 {
		return nil
	}
	ordered := make([]*exec.RunRecord, len(runs))
	copy(ordered, runs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	n := len(ordered) / 3
	if n < 3 {
		n = min(3, len(ordered))
	}
	early := make([]float64, 0, n)
	for _, r := range ordered[:n] {
		early = append(early, float64(r.Duration()))
	}
	sort.Float64s(early)
	median := early[len(early)/2]
	labels := make(map[string]bool, len(runs))
	for _, r := range ordered {
		labels[r.RunID] = float64(r.Duration()) <= median*factor
	}
	return labels
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

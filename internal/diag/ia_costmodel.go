package diag

import (
	"fmt"

	"diads/internal/symptoms"
)

// CostModelImpact is the paper's second Module IA implementation: it
// "leverages the plan cost models used by database query optimizers".
// For causes expressible as an optimizer-input change (data-property
// growth, configuration changes), it predicts the slowdown factor from
// plan costs and compares it with the observed factor — an independent
// check on the inverse-dependency result.
type CostModelImpact struct {
	Cause symptoms.CauseInstance
	// PredictedFactor is the cost-model slowdown prediction.
	PredictedFactor float64
	// ObservedFactor is the measured mean-duration ratio.
	ObservedFactor float64
	// Explains reports whether the cost model directionally confirms the
	// cause: it predicts a material regression (> 5%) whenever one was
	// observed. Plan-cost units are abstract page fetches, not
	// wall-clock seconds, so magnitudes are indicative only — cache
	// effects in particular make real slowdowns larger than cost deltas.
	Explains bool
}

// String implements fmt.Stringer.
func (c CostModelImpact) String() string {
	return fmt.Sprintf("%s: cost model predicts %.2fx, observed %.2fx (explains=%v)",
		c.Cause, c.PredictedFactor, c.ObservedFactor, c.Explains)
}

// CostModelAnalysis runs the cost-model IA variant for the causes it can
// express. Currently data-property changes are supported: the plan is
// re-costed with the affected table's actual (grown) cardinality in place
// of the stale statistics snapshot.
func CostModelAnalysis(in *Input, res *Result) ([]CostModelImpact, error) {
	if res.APG == nil {
		return nil, fmt.Errorf("diag: cost-model analysis needs the common plan")
	}
	sat, unsat := in.satisfactoryRuns(), in.unsatisfactoryRuns()
	observed := 1.0
	if m := meanDuration(sat); m > 0 {
		observed = float64(meanDuration(unsat)) / float64(m)
	}

	var out []CostModelImpact
	for _, cause := range res.Causes {
		if cause.Kind != symptoms.CauseDataProperty || cause.Category == symptoms.Low {
			continue
		}
		table := cause.Subject
		tbl, ok := in.Cat.Table(table)
		if !ok {
			continue
		}
		base := in.Opt.CostPlan(res.APG.Plan, in.Stats, in.Params)
		grown := in.Stats.Clone()
		grown.Rows[table] = tbl.Rows // actual cardinality replaces the stale snapshot
		after := in.Opt.CostPlan(res.APG.Plan, grown, in.Params)
		predicted := after / base
		item := CostModelImpact{
			Cause:           cause,
			PredictedFactor: predicted,
			ObservedFactor:  observed,
		}
		if observed > 1 {
			item.Explains = predicted > 1.05
		}
		out = append(out, item)
	}
	if out == nil {
		return nil, nil
	}
	return out, nil
}

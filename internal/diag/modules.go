package diag

import (
	"context"
	"fmt"
	"sync"

	"diads/internal/apg"
	"diads/internal/pipeline"
	"diads/internal/symptoms"
)

// Blackboard keys: the module names of the DIADS pipeline, each keying
// that module's output. KeyInput holds the *Input the driver seeds.
const (
	KeyInput = "input"
	KeyPD    = "pd"
	KeyAPG   = "apg"
	KeyCO    = "co"
	KeyDA    = "da"
	KeyCR    = "cr"
	KeyFacts = "facts"
	KeySD    = "sd"
	KeyIA    = "ia"
)

// PipelineDIADS is the registry name of the paper's Figure 2 workflow.
const PipelineDIADS = "diads"

// DefaultParallelism is the engine's module-level concurrency for batch
// diagnoses: wide enough for every independent pair in today's DAG
// (DA ∥ CR) with room for modules to come.
const DefaultParallelism = 4

// NewBoard validates the input and returns a blackboard seeded with it,
// ready for any pipeline over diagnosis inputs.
func NewBoard(in *Input) (*pipeline.Blackboard, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	bb := pipeline.NewBlackboard()
	bb.Put(KeyInput, in)
	return bb, nil
}

// inputOf reads the seeded input back off the blackboard.
func inputOf(bb *pipeline.Blackboard) (*Input, error) {
	in, ok := pipeline.Get[*Input](bb, KeyInput)
	if !ok {
		return nil, fmt.Errorf("diag: blackboard has no %q (seed it with NewBoard)", KeyInput)
	}
	return in, nil
}

// mustDep reads a dependency's output; the scheduler guarantees presence
// through the dependency declarations, so absence is a programming error.
func mustDep[T any](bb *pipeline.Blackboard, key string) T {
	v, ok := pipeline.Get[T](bb, key)
	if !ok {
		panic(fmt.Sprintf("diag: module output %q missing despite dependency declaration", key))
	}
	return v
}

// DiadsPipeline returns the paper's Figure 2 workflow as a module DAG:
//
//	pd ──► apg ──► co ──► da ──┬─► facts ──► sd ──► ia
//	                    └─► cr ──┘
//
// Module PD short-circuits the drill-down when the plan changed
// (plan-change analysis is then the whole diagnosis); DA and CR are
// independent given CO and run concurrently; the APG build and the
// symptoms-database evaluation are cache-satisfiable through scheduler
// middleware when the input carries caches. The pipeline is stateless
// and shared: all per-run state lives on the blackboard.
func DiadsPipeline() *pipeline.Pipeline { return diadsPipeline() }

var diadsPipeline = sync.OnceValue(func() *pipeline.Pipeline {
	p, err := pipeline.New(PipelineDIADS,
		&pipeline.Module{Name: KeyPD, Run: runPD},
		&pipeline.Module{Name: KeyAPG, Deps: []string{KeyPD}, Run: runAPG, Cache: apgCacheSpec()},
		&pipeline.Module{Name: KeyCO, Deps: []string{KeyAPG}, Run: runCO},
		&pipeline.Module{Name: KeyDA, Deps: []string{KeyAPG, KeyCO}, Run: runDA},
		&pipeline.Module{Name: KeyCR, Deps: []string{KeyAPG, KeyCO}, Run: runCR},
		&pipeline.Module{Name: KeyFacts, Deps: []string{KeyPD, KeyAPG, KeyCO, KeyDA, KeyCR}, Run: runFacts},
		&pipeline.Module{Name: KeySD, Deps: []string{KeyAPG, KeyFacts}, Run: runSD, Cache: sdCacheSpec()},
		&pipeline.Module{Name: KeyIA, Deps: []string{KeyAPG, KeyCO, KeySD}, Run: runIA},
	)
	if err != nil {
		panic(err)
	}
	return p
})

// runPD executes Module PD. A changed plan halts the pipeline: the
// drill-down modules are meaningless without a common plan.
func runPD(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	pd, err := PlanDiffing(in)
	if err != nil {
		return nil, err
	}
	if pd.Changed {
		return pipeline.Halt{Out: pd}, nil
	}
	return pd, nil
}

// runAPG builds the Annotated Plan Graph of the common plan.
func runAPG(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	pd := mustDep[*PDResult](bb, KeyPD)
	return apg.Build(pd.CommonPlan, in.Cfg, in.Cat, in.Server)
}

// apgCacheSpec caches built APGs by (cache scope, plan signature) when
// the input carries an APG cache (the online service shares one across
// workers; the scope keeps fleet instances' topologies apart).
func apgCacheSpec() *pipeline.CacheSpec {
	return &pipeline.CacheSpec{
		Key: func(bb *pipeline.Blackboard) (string, bool) {
			in, err := inputOf(bb)
			if err != nil || in.APGCache == nil {
				return "", false
			}
			return in.CacheScope + "|" + mustDep[*PDResult](bb, KeyPD).CommonPlan.Signature(), true
		},
		Get: func(bb *pipeline.Blackboard, key string) (any, bool) {
			in, err := inputOf(bb)
			if err != nil {
				return nil, false
			}
			g, ok := in.APGCache.Get(key)
			if !ok {
				return nil, false
			}
			return g, true
		},
		Put: func(bb *pipeline.Blackboard, key string, v any) {
			in, err := inputOf(bb)
			if err != nil {
				return
			}
			in.APGCache.Put(key, v.(*apg.APG))
		},
	}
}

// runCO executes Module CO over the common plan.
func runCO(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	return CorrelatedOperators(in, mustDep[*apg.APG](bb, KeyAPG).Plan)
}

// runDA executes Module DA; independent of Module CR given CO.
func runDA(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	return DependencyAnalysis(in, mustDep[*apg.APG](bb, KeyAPG), mustDep[*COResult](bb, KeyCO))
}

// runCR executes Module CR; independent of Module DA given CO.
func runCR(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	return CorrelatedRecordCounts(in, mustDep[*apg.APG](bb, KeyAPG).Plan, mustDep[*COResult](bb, KeyCO))
}

// runFacts assembles the fact base all downstream reasoning reads.
func runFacts(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	return BuildFacts(in,
		mustDep[*apg.APG](bb, KeyAPG),
		mustDep[*PDResult](bb, KeyPD),
		mustDep[*COResult](bb, KeyCO),
		mustDep[*DAResult](bb, KeyDA),
		mustDep[*CRResult](bb, KeyCR)), nil
}

// runSD evaluates the symptoms database. Without one the diagnosis still
// carries the facts — the paper notes DIADS usefully narrows the search
// space even when the database is missing or incomplete.
func runSD(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	if in.SymDB == nil {
		return []symptoms.CauseInstance(nil), nil
	}
	g := mustDep[*apg.APG](bb, KeyAPG)
	facts := mustDep[*symptoms.FactBase](bb, KeyFacts)
	return in.SymDB.Evaluate(facts, Bindings(in, g)), nil
}

// sdCacheSpec caches symptoms-database evaluations by (cache scope, plan
// signature, fact-base fingerprint, SymDB version) when the input
// carries an SD cache. The version term makes installing a mined entry
// into a live shared database invalidate prior evaluations instead of
// hiding the new entry behind stale cache hits.
func sdCacheSpec() *pipeline.CacheSpec {
	return &pipeline.CacheSpec{
		Key: func(bb *pipeline.Blackboard) (string, bool) {
			in, err := inputOf(bb)
			if err != nil || in.SDCache == nil || in.SymDB == nil {
				return "", false
			}
			g := mustDep[*apg.APG](bb, KeyAPG)
			facts := mustDep[*symptoms.FactBase](bb, KeyFacts)
			key := fmt.Sprintf("%s|%s/%s@v%d",
				in.CacheScope, g.Plan.Signature(), facts.Fingerprint(), in.SymDB.Version())
			return key, true
		},
		Get: func(bb *pipeline.Blackboard, key string) (any, bool) {
			in, err := inputOf(bb)
			if err != nil {
				return nil, false
			}
			causes, ok := in.SDCache.Get(key)
			if !ok {
				return nil, false
			}
			return causes, true
		},
		Put: func(bb *pipeline.Blackboard, key string, v any) {
			in, err := inputOf(bb)
			if err != nil {
				return
			}
			in.SDCache.Put(key, v.([]symptoms.CauseInstance))
		},
	}
}

// runIA executes Module IA over the medium- and high-confidence causes.
func runIA(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
	in, err := inputOf(bb)
	if err != nil {
		return nil, err
	}
	return ImpactAnalysis(in,
		mustDep[*apg.APG](bb, KeyAPG),
		mustDep[*COResult](bb, KeyCO),
		mustDep[[]symptoms.CauseInstance](bb, KeySD))
}

// fillResult copies whatever module outputs exist on the blackboard into
// the Result — partial boards (interactive steps, plan-change halts)
// fill only what ran.
func fillResult(res *Result, bb *pipeline.Blackboard) {
	if v, ok := pipeline.Get[*PDResult](bb, KeyPD); ok {
		res.PD = v
	}
	if v, ok := pipeline.Get[*apg.APG](bb, KeyAPG); ok {
		res.APG = v
	}
	if v, ok := pipeline.Get[*COResult](bb, KeyCO); ok {
		res.CO = v
	}
	if v, ok := pipeline.Get[*DAResult](bb, KeyDA); ok {
		res.DA = v
	}
	if v, ok := pipeline.Get[*CRResult](bb, KeyCR); ok {
		res.CR = v
	}
	if v, ok := pipeline.Get[*symptoms.FactBase](bb, KeyFacts); ok {
		res.Facts = v
	}
	if v, ok := pipeline.Get[[]symptoms.CauseInstance](bb, KeySD); ok {
		res.Causes = v
	}
	if v, ok := pipeline.Get[*IAResult](bb, KeyIA); ok {
		res.IA = v
	}
}

package diag

import (
	"context"
	"fmt"
	"strings"

	"diads/internal/apg"
	"diads/internal/pipeline"
	"diads/internal/symptoms"
)

// Result is the complete output of one diagnosis.
type Result struct {
	Query string
	PD    *PDResult
	APG   *apg.APG
	CO    *COResult
	DA    *DAResult
	CR    *CRResult
	Facts *symptoms.FactBase
	// Causes are the symptoms-database hypotheses, sorted by confidence.
	Causes []symptoms.CauseInstance
	IA     *IAResult
	// Trace is the engine's per-module execution record: wall time,
	// cache hit/miss, and skip/short-circuit decisions. It never feeds
	// Render — reports stay byte-deterministic per seed.
	Trace *pipeline.Trace
}

// TopCause returns the highest-confidence cause, breaking ties by impact
// score, or false if no cause reached medium confidence.
func (r *Result) TopCause() (ImpactItem, bool) {
	if r.IA != nil && len(r.IA.Items) > 0 {
		return r.IA.Items[0], true
	}
	return ImpactItem{}, false
}

// RunConfig tunes how the engine executes the DAG.
type RunConfig struct {
	// MaxParallel caps concurrently-executing modules. 0 means
	// DefaultParallelism; 1 or any negative value forces sequential
	// execution (the modes are byte-identical in their Results —
	// modules are pure functions of the blackboard).
	MaxParallel int
	// OnModuleStart, when non-nil, observes each module launch (tests
	// use it to cancel deterministically mid-pipeline).
	OnModuleStart func(module string)
}

func (c RunConfig) options() pipeline.Options {
	maxPar := c.MaxParallel
	switch {
	case maxPar == 0:
		maxPar = DefaultParallelism
	case maxPar < 0:
		maxPar = 1 // "no parallelism", never the engine's unbounded mode
	}
	return pipeline.Options{MaxParallel: maxPar, OnStart: c.OnModuleStart}
}

// Workflow runs the diagnosis modules, either batch (Run) or one module
// at a time — the paper's interactive mode, where the administrator can
// inspect and edit each module's result (e.g. prune the COS) before the
// next module consumes it. Both modes execute through the module-DAG
// engine: batch runs schedule independent modules (DA ∥ CR)
// concurrently, interactive steps enforce ordering from the DAG's
// dependency declarations.
type Workflow struct {
	In  *Input
	Res *Result

	bb    *pipeline.Blackboard
	steps []pipeline.ModuleTrace
}

// NewWorkflow validates the input and prepares a workflow.
func NewWorkflow(in *Input) (*Workflow, error) {
	bb, err := NewBoard(in)
	if err != nil {
		return nil, err
	}
	return &Workflow{In: in, Res: &Result{Query: in.Query}, bb: bb}, nil
}

// Run executes the full batch workflow of Figure 2: PD first; if the plan
// changed, plan-change analysis is the diagnosis. Otherwise CO runs
// against the common plan, DA and CR run concurrently, SD maps symptoms
// to causes, and IA scores their impact.
func (w *Workflow) Run() (*Result, error) {
	return w.RunContext(context.Background())
}

// RunContext is Run with cancellation: the engine stops scheduling
// modules once the context is canceled, so a worker goroutine servicing
// a diagnosis job can be shut down mid-workflow. Workflows share no
// mutable state — each run operates on its own blackboard, and the Input
// is only read — so RunContext is safe to invoke from many goroutines
// over the same Input.
func (w *Workflow) RunContext(ctx context.Context) (*Result, error) {
	return w.RunWith(ctx, RunConfig{})
}

// RunWith is RunContext with engine configuration. The batch run always
// starts from a fresh blackboard: earlier interactive steps are re-run,
// exactly as the step-list workflow re-ran them.
func (w *Workflow) RunWith(ctx context.Context, cfg RunConfig) (*Result, error) {
	bb, err := NewBoard(w.In)
	if err != nil {
		return nil, err
	}
	trace, err := DiadsPipeline().Run(ctx, bb, cfg.options())
	if err != nil {
		return nil, err
	}
	trace.TraceID = w.In.TraceID
	w.bb = bb
	fillResult(w.Res, bb)
	w.Res.Trace = trace
	return w.Res, nil
}

// step executes one DAG module against the workflow's blackboard,
// recording its trace and folding its output into the Result. Dependency
// declarations enforce module ordering — running DA before CO fails with
// the missing dependency, replacing the hand-rolled nil checks of the
// step-list workflow.
func (w *Workflow) step(name string) error {
	mt, err := DiadsPipeline().RunModule(context.Background(), name, w.bb)
	// One entry per module: a retried step (e.g. after an out-of-order
	// attempt failed on its dependencies) replaces its earlier record.
	replaced := false
	for i := range w.steps {
		if w.steps[i].Module == name {
			w.steps[i], replaced = mt, true
			break
		}
	}
	if !replaced {
		w.steps = append(w.steps, mt)
	}
	if err != nil {
		return err
	}
	fillResult(w.Res, w.bb)
	return nil
}

// Trace returns the interactive steps executed so far as a trace (batch
// runs record theirs on Result.Trace). Total is the accumulated wall
// time of the steps.
func (w *Workflow) Trace() *pipeline.Trace {
	t := &pipeline.Trace{
		Pipeline: PipelineDIADS,
		Modules:  append([]pipeline.ModuleTrace(nil), w.steps...),
	}
	for _, mt := range t.Modules {
		t.Total += mt.Wall
	}
	return t
}

// RunPD executes Module PD and, when the plan is unchanged, builds the
// APG of the common plan for the downstream modules.
func (w *Workflow) RunPD() error {
	if err := w.step(KeyPD); err != nil {
		return err
	}
	if w.Res.PD.Changed {
		// The plan-change short circuit: no common plan, no APG, and
		// every drill-down module stays disabled.
		return nil
	}
	return w.step(KeyAPG)
}

// RunCO executes Module CO. RunPD must have run and found no plan change.
func (w *Workflow) RunCO() error { return w.step(KeyCO) }

// OverrideCOS replaces the correlated operator set — the interactive
// mode's edit hook between CO and DA.
func (w *Workflow) OverrideCOS(cos []int) error {
	if w.Res.CO == nil {
		return fmt.Errorf("diag: run Module CO before overriding its result")
	}
	w.Res.CO.COS = append([]int(nil), cos...)
	return nil
}

// RunDA executes Module DA. RunCO must have run.
func (w *Workflow) RunDA() error { return w.step(KeyDA) }

// RunCR executes Module CR. RunCO must have run.
func (w *Workflow) RunCR() error { return w.step(KeyCR) }

// RunSD builds the fact base from the module outputs and evaluates the
// symptoms database.
func (w *Workflow) RunSD() error {
	if err := w.step(KeyFacts); err != nil {
		return err
	}
	return w.step(KeySD)
}

// RunIA executes Module IA over the medium- and high-confidence causes.
func (w *Workflow) RunIA() error { return w.step(KeyIA) }

// Diagnose is the one-call batch entry point.
func Diagnose(in *Input) (*Result, error) {
	return DiagnoseContext(context.Background(), in)
}

// DiagnoseContext is the re-entrant entry point the online service's
// worker goroutines use: one call per job, cancelable at module
// granularity, with any caches configured on the Input shared safely
// across calls.
func DiagnoseContext(ctx context.Context, in *Input) (*Result, error) {
	return DiagnoseWith(ctx, in, RunConfig{})
}

// DiagnoseWith is DiagnoseContext with engine configuration —
// benchmarks use it to compare sequential and concurrent execution.
func DiagnoseWith(ctx context.Context, in *Input, cfg RunConfig) (*Result, error) {
	w, err := NewWorkflow(in)
	if err != nil {
		return nil, err
	}
	return w.RunWith(ctx, cfg)
}

// ToIncident converts a diagnosis into a confirmed incident for the
// self-evolving symptoms-database loop (Section 7): once the
// administrator confirms the root cause, the incident's facts feed the
// miner, which proposes new codebook entries for expert review.
func (r *Result) ToIncident(confirmedKind, subject string) (symptoms.Incident, error) {
	if r.Facts == nil {
		return symptoms.Incident{}, fmt.Errorf("diag: diagnosis has no facts (plan-change short circuit?)")
	}
	return symptoms.Incident{
		Facts:     r.Facts,
		CauseKind: confirmedKind,
		Subject:   subject,
	}, nil
}

// Render formats the diagnosis as the report an administrator reads.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIADS diagnosis for query %s\n", r.Query)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 40))
	if r.PD == nil {
		return b.String()
	}
	if r.PD.Changed {
		b.WriteString("Module PD: plan CHANGED between satisfactory and unsatisfactory runs\n")
		for _, d := range r.PD.Differences {
			fmt.Fprintf(&b, "  - %s\n", d)
		}
		b.WriteString("Plan-change analysis:\n")
		if len(r.PD.Causes) == 0 {
			b.WriteString("  no candidate configuration/schema changes found in the log\n")
		}
		for _, c := range r.PD.Causes {
			marker := " "
			if c.Explains {
				marker = "*"
			}
			fmt.Fprintf(&b, "  %s %s %s: %s\n", marker, c.Event.T.Clock(), c.Event.Kind, c.Detail)
		}
		return b.String()
	}
	b.WriteString("Module PD: same plan in satisfactory and unsatisfactory runs\n")
	if r.CO != nil {
		ops := make([]string, len(r.CO.COS))
		for i, id := range r.CO.COS {
			ops[i] = fmt.Sprintf("O%d(%.2f)", id, r.CO.ScoreOf(id))
		}
		fmt.Fprintf(&b, "Module CO: correlated operator set = {%s}\n", strings.Join(ops, ", "))
	}
	if r.DA != nil {
		fmt.Fprintf(&b, "Module DA: %d correlated component metrics across %v\n",
			len(r.DA.CCS), r.DA.Components())
	}
	if r.CR != nil {
		if len(r.CR.CRS) == 0 {
			b.WriteString("Module CR: record counts unchanged (data properties stable)\n")
		} else {
			fmt.Fprintf(&b, "Module CR: record-count changes on operators %v\n", r.CR.CRS)
		}
	}
	if len(r.Causes) > 0 {
		b.WriteString("Module SD: root-cause confidence\n")
		for _, c := range r.Causes {
			if c.Category == symptoms.Low {
				continue
			}
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if r.IA != nil {
		b.WriteString("Module IA: impact scores\n")
		for _, item := range r.IA.Items {
			fmt.Fprintf(&b, "  %-55s impact=%5.1f%% ops=%v\n",
				item.Cause.String(), item.Score, item.Ops)
		}
	}
	return b.String()
}

package diag

import (
	"context"
	"fmt"
	"strings"

	"diads/internal/apg"
	"diads/internal/symptoms"
)

// Result is the complete output of one diagnosis.
type Result struct {
	Query string
	PD    *PDResult
	APG   *apg.APG
	CO    *COResult
	DA    *DAResult
	CR    *CRResult
	Facts *symptoms.FactBase
	// Causes are the symptoms-database hypotheses, sorted by confidence.
	Causes []symptoms.CauseInstance
	IA     *IAResult
}

// TopCause returns the highest-confidence cause, breaking ties by impact
// score, or false if no cause reached medium confidence.
func (r *Result) TopCause() (ImpactItem, bool) {
	if r.IA != nil && len(r.IA.Items) > 0 {
		return r.IA.Items[0], true
	}
	return ImpactItem{}, false
}

// Workflow runs the diagnosis modules, either batch (Run) or one module
// at a time — the paper's interactive mode, where the administrator can
// inspect and edit each module's result (e.g. prune the COS) before the
// next module consumes it.
type Workflow struct {
	In  *Input
	Res *Result
}

// NewWorkflow validates the input and prepares a workflow.
func NewWorkflow(in *Input) (*Workflow, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	return &Workflow{In: in, Res: &Result{Query: in.Query}}, nil
}

// Run executes the full batch workflow of Figure 2: PD first; if the plan
// changed, plan-change analysis is the diagnosis. Otherwise CO, DA, CR
// run against the common plan, SD maps symptoms to causes, and IA scores
// their impact.
func (w *Workflow) Run() (*Result, error) {
	return w.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context is checked between
// modules, so a worker goroutine servicing a diagnosis job can be shut
// down mid-workflow. Workflows share no mutable state — each call
// operates on its own Result, and the Input is only read — so RunContext
// is safe to invoke from many goroutines over the same Input.
func (w *Workflow) RunContext(ctx context.Context) (*Result, error) {
	steps := []func() error{w.RunPD, w.RunCO, w.RunDA, w.RunCR, w.RunSD, w.RunIA}
	for i, step := range steps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("diag: workflow canceled: %w", err)
		}
		if err := step(); err != nil {
			return nil, err
		}
		if i == 0 && w.Res.PD.Changed {
			return w.Res, nil
		}
	}
	return w.Res, nil
}

// RunPD executes Module PD and, when the plan is unchanged, builds the
// APG of the common plan for the downstream modules.
func (w *Workflow) RunPD() error {
	pd, err := PlanDiffing(w.In)
	if err != nil {
		return err
	}
	w.Res.PD = pd
	if !pd.Changed {
		build := func() (*apg.APG, error) {
			return apg.Build(pd.CommonPlan, w.In.Cfg, w.In.Cat, w.In.Server)
		}
		var g *apg.APG
		if w.In.APGCache != nil {
			g, err = w.In.APGCache.GetOrCompute(pd.CommonPlan.Signature(), build)
		} else {
			g, err = build()
		}
		if err != nil {
			return err
		}
		w.Res.APG = g
	}
	return nil
}

// RunCO executes Module CO. RunPD must have run and found no plan change.
func (w *Workflow) RunCO() error {
	if w.Res.APG == nil {
		return fmt.Errorf("diag: Module CO requires Module PD to find a common plan first")
	}
	co, err := CorrelatedOperators(w.In, w.Res.APG.Plan)
	if err != nil {
		return err
	}
	w.Res.CO = co
	return nil
}

// OverrideCOS replaces the correlated operator set — the interactive
// mode's edit hook between CO and DA.
func (w *Workflow) OverrideCOS(cos []int) error {
	if w.Res.CO == nil {
		return fmt.Errorf("diag: run Module CO before overriding its result")
	}
	w.Res.CO.COS = append([]int(nil), cos...)
	return nil
}

// RunDA executes Module DA. RunCO must have run.
func (w *Workflow) RunDA() error {
	if w.Res.CO == nil {
		return fmt.Errorf("diag: Module DA requires Module CO's result")
	}
	da, err := DependencyAnalysis(w.In, w.Res.APG, w.Res.CO)
	if err != nil {
		return err
	}
	w.Res.DA = da
	return nil
}

// RunCR executes Module CR. RunCO must have run.
func (w *Workflow) RunCR() error {
	if w.Res.CO == nil {
		return fmt.Errorf("diag: Module CR requires Module CO's result")
	}
	cr, err := CorrelatedRecordCounts(w.In, w.Res.APG.Plan, w.Res.CO)
	if err != nil {
		return err
	}
	w.Res.CR = cr
	return nil
}

// RunSD builds the fact base from the module outputs and evaluates the
// symptoms database. Without a symptoms database it still records the
// facts — the paper notes DIADS usefully narrows the search space even
// when the database is missing or incomplete.
func (w *Workflow) RunSD() error {
	if w.Res.DA == nil || w.Res.CR == nil {
		return fmt.Errorf("diag: Module SD requires Modules DA and CR")
	}
	w.Res.Facts = BuildFacts(w.In, w.Res.APG, w.Res.PD, w.Res.CO, w.Res.DA, w.Res.CR)
	if w.In.SymDB != nil {
		evaluate := func() ([]symptoms.CauseInstance, error) {
			return w.In.SymDB.Evaluate(w.Res.Facts, Bindings(w.In, w.Res.APG)), nil
		}
		if w.In.SDCache != nil {
			key := w.Res.APG.Plan.Signature() + "/" + w.Res.Facts.Fingerprint()
			w.Res.Causes, _ = w.In.SDCache.GetOrCompute(key, evaluate)
		} else {
			w.Res.Causes, _ = evaluate()
		}
	}
	return nil
}

// RunIA executes Module IA over the medium- and high-confidence causes.
func (w *Workflow) RunIA() error {
	if w.Res.Facts == nil {
		return fmt.Errorf("diag: Module IA requires Module SD")
	}
	ia, err := ImpactAnalysis(w.In, w.Res.APG, w.Res.CO, w.Res.Causes)
	if err != nil {
		return err
	}
	w.Res.IA = ia
	return nil
}

// Diagnose is the one-call batch entry point.
func Diagnose(in *Input) (*Result, error) {
	return DiagnoseContext(context.Background(), in)
}

// DiagnoseContext is the re-entrant entry point the online service's
// worker goroutines use: one call per job, cancelable between modules,
// with any caches configured on the Input shared safely across calls.
func DiagnoseContext(ctx context.Context, in *Input) (*Result, error) {
	w, err := NewWorkflow(in)
	if err != nil {
		return nil, err
	}
	return w.RunContext(ctx)
}

// ToIncident converts a diagnosis into a confirmed incident for the
// self-evolving symptoms-database loop (Section 7): once the
// administrator confirms the root cause, the incident's facts feed the
// miner, which proposes new codebook entries for expert review.
func (r *Result) ToIncident(confirmedKind, subject string) (symptoms.Incident, error) {
	if r.Facts == nil {
		return symptoms.Incident{}, fmt.Errorf("diag: diagnosis has no facts (plan-change short circuit?)")
	}
	return symptoms.Incident{
		Facts:     r.Facts,
		CauseKind: confirmedKind,
		Subject:   subject,
	}, nil
}

// Render formats the diagnosis as the report an administrator reads.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIADS diagnosis for query %s\n", r.Query)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 40))
	if r.PD == nil {
		return b.String()
	}
	if r.PD.Changed {
		b.WriteString("Module PD: plan CHANGED between satisfactory and unsatisfactory runs\n")
		for _, d := range r.PD.Differences {
			fmt.Fprintf(&b, "  - %s\n", d)
		}
		b.WriteString("Plan-change analysis:\n")
		if len(r.PD.Causes) == 0 {
			b.WriteString("  no candidate configuration/schema changes found in the log\n")
		}
		for _, c := range r.PD.Causes {
			marker := " "
			if c.Explains {
				marker = "*"
			}
			fmt.Fprintf(&b, "  %s %s %s: %s\n", marker, c.Event.T.Clock(), c.Event.Kind, c.Detail)
		}
		return b.String()
	}
	b.WriteString("Module PD: same plan in satisfactory and unsatisfactory runs\n")
	if r.CO != nil {
		ops := make([]string, len(r.CO.COS))
		for i, id := range r.CO.COS {
			ops[i] = fmt.Sprintf("O%d(%.2f)", id, r.CO.ScoreOf(id))
		}
		fmt.Fprintf(&b, "Module CO: correlated operator set = {%s}\n", strings.Join(ops, ", "))
	}
	if r.DA != nil {
		fmt.Fprintf(&b, "Module DA: %d correlated component metrics across %v\n",
			len(r.DA.CCS), r.DA.Components())
	}
	if r.CR != nil {
		if len(r.CR.CRS) == 0 {
			b.WriteString("Module CR: record counts unchanged (data properties stable)\n")
		} else {
			fmt.Fprintf(&b, "Module CR: record-count changes on operators %v\n", r.CR.CRS)
		}
	}
	if len(r.Causes) > 0 {
		b.WriteString("Module SD: root-cause confidence\n")
		for _, c := range r.Causes {
			if c.Category == symptoms.Low {
				continue
			}
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if r.IA != nil {
		b.WriteString("Module IA: impact scores\n")
		for _, item := range r.IA.Items {
			fmt.Fprintf(&b, "  %-55s impact=%5.1f%% ops=%v\n",
				item.Cause.String(), item.Score, item.Ops)
		}
	}
	return b.String()
}

package diag

import (
	"strings"
	"testing"

	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/faults"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

// scenarioRig builds a Figure 1 testbed with `runs` Q2 executions; the
// caller injects faults before calling simulate.
func scenarioRig(t testing.TB, seed int64, runs int) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: runs},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs)*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	return tb
}

// horizonOf returns the end of run schedule windows for a rig with the
// given run count.
func horizonOf(runs int) simtime.Time {
	return simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs)*30*simtime.Minute)
}

// faultMidpoint returns a fault onset that splits the schedule in half.
func faultMidpoint(runs int) simtime.Time {
	return simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs/2)*30*simtime.Minute) - simtime.Time(5*simtime.Minute)
}

// inputFor assembles a diagnosis input from a simulated testbed with
// adaptive labels.
func inputFor(tb *testbed.Testbed) *Input {
	runs := tb.RunsFor("Q2")
	return &Input{
		Query:        "Q2",
		Runs:         runs,
		Satisfactory: LabelAdaptive(runs, 1.6),
		Store:        tb.Store,
		Cfg:          tb.Cfg,
		Cat:          tb.Cat,
		Opt:          tb.Opt,
		Params:       tb.Params,
		Stats:        tb.Stats,
		Server:       testbed.ServerDB,
		SymDB:        symptoms.Builtin(),
	}
}

// runScenario1 injects the paper's first scenario: volume V' carved from
// P1, mapped to another host, with its workload contending against V1.
func runScenario1(t testing.TB, seed int64, runs int) *testbed.Testbed {
	t.Helper()
	tb := scenarioRig(t, seed, runs)
	fault := &faults.SANMisconfiguration{
		At:        faultMidpoint(runs),
		Until:     horizonOf(runs),
		Pool:      testbed.PoolP1,
		NewVolume: "vol-Vp",
		Host:      testbed.ServerApp1,
		ReadIOPS:  450,
		WriteIOPS: 120,
	}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestScenario1EndToEnd(t *testing.T) {
	tb := runScenario1(t, 11, 16)
	in := inputFor(tb)
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}

	// Module PD: same plan in both regimes.
	if res.PD.Changed {
		t.Fatalf("scenario 1 must not involve a plan change")
	}

	// Module CO: both V1 leaves in the COS, most V2 leaves out.
	for _, id := range []int{8, 22} {
		if !res.CO.InCOS(id) {
			t.Errorf("O%d (V1 leaf) should be in the COS; score %.3f", id, res.CO.ScoreOf(id))
		}
	}
	v2Leaves := []int{10, 13, 15, 19, 23, 25}
	v2InCOS := 0
	for _, id := range v2Leaves {
		if res.CO.InCOS(id) {
			v2InCOS++
		}
	}
	if v2InCOS > 2 {
		t.Errorf("most V2 leaves should stay out of the COS, got %d in", v2InCOS)
	}
	// Event propagation: the ancestors inflate too.
	for _, id := range []int{2, 3, 6, 7, 17, 18, 20, 21} {
		if !res.CO.InCOS(id) {
			t.Errorf("ancestor O%d should be in the COS; score %.3f", id, res.CO.ScoreOf(id))
		}
	}

	// Module DA: V1 metrics anomalous, V2's not.
	v1Max := res.DA.ScoreOf(string(testbed.VolV1), "writeTime")
	if v1Max < 0.8 {
		t.Errorf("V1 writeTime anomaly should exceed 0.8, got %.3f", v1Max)
	}
	if s := res.DA.ScoreOf(string(testbed.VolV2), "writeTime"); s > 0.8 {
		t.Errorf("V2 writeTime should stay calm, got %.3f", s)
	}

	// Module CR: no data-property change.
	if len(res.CR.CRS) != 0 {
		t.Errorf("record counts should be stable, CRS=%v", res.CR.CRS)
	}

	// Module SD: SAN misconfiguration on V1 is the top, high-confidence
	// cause.
	top, ok := res.TopCause()
	if !ok {
		t.Fatal("no cause identified")
	}
	if top.Cause.Kind != symptoms.CauseSANMisconfig || top.Cause.Subject != string(testbed.VolV1) {
		t.Fatalf("top cause: got %v, want SAN misconfiguration on vol-V1\n%s", top.Cause, res.Render())
	}
	if top.Cause.Category != symptoms.High {
		t.Fatalf("scenario 1 should reach high confidence: %v", top.Cause)
	}

	// Module IA: the paper reports a 99.8%% impact score; ours must be
	// dominant (> 80%).
	if top.Score < 80 {
		t.Fatalf("impact score should dominate, got %.1f%%\n%s", top.Score, res.Render())
	}

	// V2 causes stay low-confidence and out of the IA items.
	for _, item := range res.IA.Items {
		if item.Cause.Subject == string(testbed.VolV2) {
			t.Errorf("V2 cause should not reach impact analysis: %v", item.Cause)
		}
	}

	// The report renders the essentials.
	report := res.Render()
	for _, want := range []string{"Module PD", "Module CO", "san-misconfig-contention", "impact"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScenario3DataPropertyChange(t *testing.T) {
	tb := scenarioRig(t, 12, 16)
	fault := &faults.DataPropertyChange{
		At:     faultMidpoint(16),
		Table:  dbsys.TPartsupp,
		Factor: 1.8,
	}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	in := inputFor(tb)
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PD.Changed {
		t.Fatalf("stale statistics keep the plan stable in scenario 3")
	}
	// CR flags the partsupp operators.
	if len(res.CR.CRS) == 0 {
		t.Fatalf("CR should flag record-count changes\n%s", res.Render())
	}
	top, ok := res.TopCause()
	if !ok {
		t.Fatal("no cause identified")
	}
	if top.Cause.Kind != symptoms.CauseDataProperty || top.Cause.Subject != dbsys.TPartsupp {
		t.Fatalf("top cause: got %v, want data-property-change on partsupp\n%s", top.Cause, res.Render())
	}
	// IA rules out volume contention as a root cause: any volume-
	// contention hypothesis must rank below the data-property cause.
	for _, item := range res.IA.Items {
		if item.Cause.Kind == symptoms.CauseSANMisconfig && item.Cause.Category == symptoms.High {
			t.Errorf("no SAN misconfiguration should reach high confidence: %v", item.Cause)
		}
	}
}

func TestScenario5LockContention(t *testing.T) {
	runs := 16
	tb := scenarioRig(t, 13, runs)
	// Exclusive locks held during the unsatisfactory half's run windows.
	var holds []simtime.Interval
	for i := runs / 2; i < runs; i++ {
		start := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(i)*30*simtime.Minute)
		holds = append(holds, simtime.NewInterval(start.Add(-time30s()), start.Add(90)))
	}
	fault := &faults.TableLockContention{Table: dbsys.TPartsupp, Holds: holds, Holder: "txn-batch"}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.TopCause()
	if !ok {
		t.Fatal("no cause identified")
	}
	if top.Cause.Kind != symptoms.CauseLockContention || top.Cause.Subject != dbsys.TPartsupp {
		t.Fatalf("top cause: got %v, want lock contention on partsupp\n%s", top.Cause, res.Render())
	}
	// Volume contention, if hypothesized at all, has low impact — the
	// paper's scenario 5 outcome.
	for _, item := range res.IA.Items {
		if item.Cause.Kind == symptoms.CauseSANMisconfig || item.Cause.Kind == symptoms.CauseExternalLoad {
			if item.Score > 50 {
				t.Errorf("volume contention should have low impact, got %.1f%% for %v",
					item.Score, item.Cause)
			}
		}
	}
}

func TestPlanRegressionViaPD(t *testing.T) {
	runs := 12
	tb := scenarioRig(t, 14, runs)
	fault := &faults.IndexDrop{At: faultMidpoint(runs), Index: dbsys.IdxPartsuppPart}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PD.Changed {
		t.Fatalf("PD should detect the plan change")
	}
	var explained bool
	for _, c := range res.PD.Causes {
		if c.Explains && c.Event.Kind == "IndexDropped" {
			explained = true
		}
	}
	if !explained {
		t.Fatalf("PD should attribute the change to the index drop:\n%s", res.Render())
	}
	if len(res.PD.Differences) == 0 {
		t.Fatalf("PD should report structural differences")
	}
}

func time30s() simtime.Duration { return 30 * simtime.Second }

func TestLabelHelpers(t *testing.T) {
	runs := []*exec.RunRecord{
		{RunID: "a", Start: 0, Stop: 100},
		{RunID: "b", Start: 1000, Stop: 1100},
		{RunID: "c", Start: 2000, Stop: 2500},
	}
	byDur := LabelByDuration(runs, 200)
	if !byDur["a"] || !byDur["b"] || byDur["c"] {
		t.Fatalf("LabelByDuration wrong: %v", byDur)
	}
	byWin := LabelByWindow(runs, simtime.NewInterval(1500, 2500))
	if !byWin["a"] || !byWin["b"] || byWin["c"] {
		t.Fatalf("LabelByWindow wrong: %v", byWin)
	}
}

func TestValidation(t *testing.T) {
	in := &Input{Query: "Q2"}
	if _, err := NewWorkflow(in); err == nil {
		t.Fatalf("empty input should fail validation")
	}
}

func TestInteractiveCOSOverride(t *testing.T) {
	tb := runScenario1(t, 15, 12)
	in := inputFor(tb)
	w, err := NewWorkflow(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunPD(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunCO(); err != nil {
		t.Fatal(err)
	}
	// The administrator prunes the COS down to the two V1 leaves.
	if err := w.OverrideCOS([]int{8, 22}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunDA(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunCR(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunSD(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunIA(); err != nil {
		t.Fatal(err)
	}
	top, ok := w.Res.TopCause()
	if !ok || top.Cause.Kind != symptoms.CauseSANMisconfig {
		t.Fatalf("diagnosis with pruned COS should still find the cause: %v", top.Cause)
	}
	// Module ordering is enforced.
	w2, _ := NewWorkflow(in)
	if err := w2.RunDA(); err == nil {
		t.Fatalf("DA before CO should fail")
	}
}

func TestDiagnosisWithoutSymptomsDB(t *testing.T) {
	// The paper: "even when a symptoms database is not available, DIADS
	// correctly narrows down the search space".
	tb := runScenario1(t, 16, 12)
	in := inputFor(tb)
	in.SymDB = nil
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 0 {
		t.Fatalf("no causes expected without a symptoms DB")
	}
	// But the narrowing happened: COS has the V1 leaves, DA has V1
	// metrics.
	if !res.CO.InCOS(8) || !res.CO.InCOS(22) {
		t.Fatalf("COS narrowing missing")
	}
	var v1Anomalous bool
	for _, m := range res.DA.CCS {
		if m.Component == string(testbed.VolV1) {
			v1Anomalous = true
		}
	}
	if !v1Anomalous {
		t.Fatalf("DA should still flag V1 metrics")
	}
}

package diag

import (
	"context"
	"errors"
	"sync"
	"testing"

	"diads/internal/apg"
	"diads/internal/cache"
	"diads/internal/dbsys"
	"diads/internal/faults"
	"diads/internal/pipeline"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// planRegressionRig injects an index drop so the optimizer changes the
// plan mid-schedule — the Module PD short-circuit scenario.
func planRegressionRig(t testing.TB, seed int64, runs int) *testbed.Testbed {
	t.Helper()
	tb := scenarioRig(t, seed, runs)
	if err := faults.Inject(tb, &faults.IndexDrop{At: faultMidpoint(runs), Index: dbsys.IdxPartsuppPart}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestBatchTraceRecordsEveryModule checks that a batch diagnosis carries
// the engine's per-module trace with every DAG node executed.
func TestBatchTraceRecordsEveryModule(t *testing.T) {
	tb := runScenario1(t, 21, 12)
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("batch diagnosis should carry a trace")
	}
	if res.Trace.Pipeline != PipelineDIADS {
		t.Fatalf("trace pipeline = %q", res.Trace.Pipeline)
	}
	for _, name := range []string{KeyPD, KeyAPG, KeyCO, KeyDA, KeyCR, KeyFacts, KeySD, KeyIA} {
		mt := res.Trace.Module(name)
		if mt == nil {
			t.Fatalf("trace missing module %s", name)
		}
		if mt.Status != pipeline.StatusRan {
			t.Errorf("module %s status = %s, want ran", name, mt.Status)
		}
	}
}

// TestPlanChangeShortCircuitsTrace checks that a plan change halts the
// DAG at Module PD and the trace records the drill-down as skipped.
func TestPlanChangeShortCircuitsTrace(t *testing.T) {
	tb := planRegressionRig(t, 22, 12)
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PD.Changed {
		t.Fatal("scenario should change the plan")
	}
	if mt := res.Trace.Module(KeyPD); mt.Status != pipeline.StatusRan || mt.Note != "short-circuit" {
		t.Fatalf("pd trace: %+v", mt)
	}
	for _, name := range []string{KeyAPG, KeyCO, KeyDA, KeyCR, KeyFacts, KeySD, KeyIA} {
		if mt := res.Trace.Module(name); mt.Status != pipeline.StatusSkipped {
			t.Errorf("module %s should be skipped after the plan change, got %s", name, mt.Status)
		}
	}
}

// TestSchedulerLevelCaches checks that the APG and SD caches are
// consulted by the scheduler, visible as cache hits in the trace.
func TestSchedulerLevelCaches(t *testing.T) {
	tb := runScenario1(t, 23, 12)
	in := inputFor(tb)
	in.APGCache = cache.New[string, *apg.APG](4)
	in.SDCache = cache.New[string, []symptoms.CauseInstance](4)

	first, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{KeyAPG, KeySD} {
		if mt := first.Trace.Module(name); mt.Cache != pipeline.CacheMiss {
			t.Errorf("first run %s cache = %q, want miss", name, mt.Cache)
		}
	}

	second, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{KeyAPG, KeySD} {
		mt := second.Trace.Module(name)
		if mt.Status != pipeline.StatusCacheHit || mt.Cache != pipeline.CacheHit {
			t.Errorf("second run %s should be a cache hit, got %+v", name, mt)
		}
	}
	if first.Render() != second.Render() {
		t.Fatal("cache-satisfied diagnosis must render identically")
	}
}

// TestDiagnosisCancellationMidPipeline cancels the context while DA and
// CR are in flight; the run must surface context.Canceled.
func TestDiagnosisCancellationMidPipeline(t *testing.T) {
	tb := runScenario1(t, 24, 12)
	in := inputFor(tb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := DiagnoseWith(ctx, in, RunConfig{
		MaxParallel: 4,
		OnModuleStart: func(m string) {
			if m == KeyCR { // DA launched first (topological order); both now in flight
				once.Do(cancel)
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestPreCanceledDiagnosis mirrors the old workflow's guarantee that a
// canceled worker context stops the diagnosis before any module runs.
func TestPreCanceledDiagnosis(t *testing.T) {
	tb := runScenario1(t, 25, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DiagnoseContext(ctx, inputFor(tb)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSequentialAndConcurrentEnginesAgree diagnoses the same input with
// MaxParallel 1 and 8 and demands byte-identical reports (the
// experiments package repeats this across all nine scenarios).
func TestSequentialAndConcurrentEnginesAgree(t *testing.T) {
	tb := runScenario1(t, 26, 12)
	in := inputFor(tb)
	seq, err := DiagnoseWith(context.Background(), in, RunConfig{MaxParallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := DiagnoseWith(context.Background(), in, RunConfig{MaxParallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != conc.Render() {
		t.Fatalf("sequential and concurrent engines disagree:\n--- seq ---\n%s\n--- conc ---\n%s",
			seq.Render(), conc.Render())
	}
}

// TestInteractiveStepsRecordTrace drives the interactive mode with an
// edit hook between CO and DA and checks the per-step trace.
func TestInteractiveStepsRecordTrace(t *testing.T) {
	tb := runScenario1(t, 27, 12)
	w, err := NewWorkflow(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []func() error{w.RunPD, w.RunCO} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.OverrideCOS([]int{8, 22}); err != nil {
		t.Fatal(err)
	}
	for _, step := range []func() error{w.RunDA, w.RunCR, w.RunSD, w.RunIA} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	trace := w.Trace()
	// pd+apg, co, da, cr, facts+sd, ia = 8 steps.
	if len(trace.Modules) != 8 {
		t.Fatalf("interactive trace has %d steps, want 8", len(trace.Modules))
	}
	if mt := trace.Module(KeyDA); mt == nil || mt.Status != pipeline.StatusRan {
		t.Fatalf("da step trace: %+v", mt)
	}
	// The edit hook reached DA: only the two V1 leaves were analyzed.
	if got := len(w.Res.CO.COS); got != 2 {
		t.Fatalf("DA saw COS of size %d, want the pruned 2", got)
	}
}

package diag

import (
	"strings"
	"testing"

	"diads/internal/dbsys"
	"diads/internal/faults"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func TestCostModelAnalysisConfirmsDataPropertyChange(t *testing.T) {
	tb := scenarioRig(t, 41, 16)
	fault := &faults.DataPropertyChange{At: faultMidpoint(16), Table: dbsys.TPartsupp, Factor: 1.8}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	in := inputFor(tb)
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	items, err := CostModelAnalysis(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatalf("cost-model IA should cover the data-property cause\n%s", res.Render())
	}
	item := items[0]
	if item.PredictedFactor <= 1.05 {
		t.Errorf("1.8x growth should predict a cost increase: %v", item)
	}
	if !item.Explains {
		t.Errorf("cost model should directionally confirm the cause: %v", item)
	}
	if item.ObservedFactor <= item.PredictedFactor {
		t.Errorf("observed slowdown includes cache effects the cost model lacks; expected observed > predicted: %v", item)
	}
	if !strings.Contains(item.String(), "cost model predicts") {
		t.Errorf("render wrong: %v", item)
	}
}

func TestCostModelAnalysisSkipsOtherCauses(t *testing.T) {
	tb := runScenario1(t, 42, 12)
	in := inputFor(tb)
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	items, err := CostModelAnalysis(in, res)
	if err != nil {
		t.Fatal(err)
	}
	// Scenario 1 has no data-property cause above low confidence.
	if len(items) != 0 {
		t.Fatalf("no cost-model items expected for pure SAN contention: %v", items)
	}
}

func TestSelfEvolvingLoopMinesConfirmedIncidents(t *testing.T) {
	var miner symptoms.Miner
	for seed := int64(50); seed < 53; seed++ {
		tb := runScenario1(t, seed, 12)
		res, err := Diagnose(inputFor(tb))
		if err != nil {
			t.Fatal(err)
		}
		inc, err := res.ToIncident(symptoms.CauseSANMisconfig, string(testbed.VolV1))
		if err != nil {
			t.Fatal(err)
		}
		miner.AddIncident(inc)
	}
	// Healthy background: diagnose a fault-free testbed against a window
	// split to obtain facts without anomalies.
	tb := scenarioRig(t, 53, 12)
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	in := inputFor(tb)
	in.Satisfactory = LabelByWindow(runs, simtime.NewInterval(runs[8].Start, runs[11].Stop))
	res, err := Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	miner.AddBackground(res.Facts)

	cands := miner.Propose(3)
	if len(cands) != 1 {
		t.Fatalf("want one mined candidate, got %d", len(cands))
	}
	rendered := cands[0].Render()
	// The mined entry should key on V1-side symptoms that healthy
	// periods lack.
	if !strings.Contains(rendered, "vol-V1") && !strings.Contains(rendered, "pool-P1") {
		t.Fatalf("mined entry should reference the V1 side:\n%s", rendered)
	}
}

func TestDiagnosisWithConcurrentQueries(t *testing.T) {
	// Robustness: Q2 is diagnosed while other report queries (Q6, Q14)
	// run on the same testbed — their activity lands in the monitoring
	// data as background noise.
	tb := scenarioRig(t, 44, 16)
	tb.Schedules = append(tb.Schedules,
		workload.QuerySchedule{Query: "Q6", Start: simtime.Time(20 * simtime.Minute),
			Period: 45 * simtime.Minute, Count: 10},
		workload.QuerySchedule{Query: "Q14", Start: simtime.Time(25 * simtime.Minute),
			Period: 60 * simtime.Minute, Count: 8},
	)
	fault := &faults.SANMisconfiguration{
		At:        faultMidpoint(16),
		Until:     horizonOf(16),
		Pool:      testbed.PoolP1,
		NewVolume: "vol-Vp",
		Host:      testbed.ServerApp1,
		ReadIOPS:  450,
		WriteIOPS: 120,
	}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	if len(tb.RunsFor("Q6")) != 10 || len(tb.RunsFor("Q14")) != 8 {
		t.Fatalf("concurrent schedules incomplete")
	}
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.TopCause()
	if !ok || top.Cause.Kind != symptoms.CauseSANMisconfig || top.Cause.Subject != string(testbed.VolV1) {
		t.Fatalf("diagnosis should survive concurrent queries: %v\n%s", top.Cause, res.Render())
	}
}

func TestPDAttributesParamChange(t *testing.T) {
	tb := scenarioRig(t, 45, 12)
	fault := &faults.ParamChange{At: faultMidpoint(12), Param: dbsys.ParamEnableIndexScan, Value: 0}
	if err := faults.Inject(tb, fault); err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(inputFor(tb))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PD.Changed {
		t.Fatalf("disabling index scans should change the plan")
	}
	var explained bool
	for _, c := range res.PD.Causes {
		if c.Explains && c.Event.Kind == "ParamChanged" {
			explained = true
		}
	}
	if !explained {
		t.Fatalf("param change should be attributed:\n%s", res.Render())
	}
}

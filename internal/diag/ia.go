package diag

import (
	"sort"

	"diads/internal/apg"
	"diads/internal/exec"
	"diads/internal/plan"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/topology"
)

// ImpactItem ties one root-cause hypothesis to the share of the query
// slowdown it explains.
type ImpactItem struct {
	Cause symptoms.CauseInstance
	// Score is the percentage of the extra plan running time explained by
	// the cause (the paper's impact score; 99.8% in scenario 1).
	Score float64
	// Ops lists the operators attributed to the cause.
	Ops []int
}

// IAResult is Module IA's output, sorted by confidence then impact.
type IAResult struct {
	Items []ImpactItem
	// ExtraPlanTime is the mean slowdown being explained.
	ExtraPlanTime simtime.Duration
}

// ImpactAnalysis implements Module IA using the paper's "inverse
// dependency analysis": for each root cause R it finds the components
// comp(R) affected by R, then the operators op(R) whose performance
// depends on those components, and scores R by the percentage of the
// plan's extra running time contributed by op(R)'s extra running time
// (Section 4.1).
//
// Only each operator's own (exclusive) time enters the sums, so ancestors
// do not double-count their children; lock-wait time is attributed to
// lock causes and excluded from volume causes, which is how a locking
// problem with spurious volume symptoms gets separated (scenario 5).
func ImpactAnalysis(in *Input, g *apg.APG, co *COResult, causes []symptoms.CauseInstance) (*IAResult, error) {
	sat, unsat := runsOnPlan(in.satisfactoryRuns(), g.Plan), runsOnPlan(in.unsatisfactoryRuns(), g.Plan)
	res := &IAResult{}
	extraPlan := meanDuration(unsat) - meanDuration(sat)
	res.ExtraPlanTime = extraPlan
	if extraPlan <= 0 {
		extraPlan = simtime.Duration(1e-9) // nothing to explain; scores ~0
	}

	own := ownTimeDeltas(g.Plan, sat, unsat)
	lockDelta := lockWaitDeltas(g.Plan, sat, unsat)

	for _, cause := range causes {
		if cause.Category == symptoms.Low {
			continue
		}
		ops := operatorsFor(in, g, co, cause)
		var extra float64
		for _, id := range ops {
			switch cause.Kind {
			case symptoms.CauseLockContention:
				extra += lockDelta[id]
			case symptoms.CauseSANMisconfig, symptoms.CauseExternalLoad,
				symptoms.CauseRAIDRebuild, symptoms.CauseDiskFailure:
				extra += own[id] - lockDelta[id]
			default:
				extra += own[id]
			}
		}
		score := 100 * extra / float64(extraPlan)
		if score < 0 {
			score = 0
		}
		if score > 100 {
			score = 100
		}
		res.Items = append(res.Items, ImpactItem{Cause: cause, Score: score, Ops: ops})
	}
	sort.SliceStable(res.Items, func(i, j int) bool {
		if res.Items[i].Cause.Confidence != res.Items[j].Cause.Confidence {
			return res.Items[i].Cause.Confidence > res.Items[j].Cause.Confidence
		}
		return res.Items[i].Score > res.Items[j].Score
	})
	return res, nil
}

// operatorsFor computes op(R): the COS leaf operators whose dependency
// paths touch the components affected by the cause. CPU saturation
// affects every correlated operator.
func operatorsFor(in *Input, g *apg.APG, co *COResult, cause symptoms.CauseInstance) []int {
	var out []int
	switch cause.Kind {
	case symptoms.CauseSANMisconfig, symptoms.CauseExternalLoad:
		vol := topology.ID(cause.Subject)
		// The cause's subject volume affects the leaves reading any
		// volume sharing its disks (including itself).
		affected := map[topology.ID]bool{vol: true}
		for _, s := range in.Cfg.SharingVolumes(vol) {
			affected[s] = true
		}
		for _, leaf := range g.Plan.Leaves() {
			if affected[g.VolumeOf(leaf.ID)] && co.InCOS(leaf.ID) {
				out = append(out, leaf.ID)
			}
		}
	case symptoms.CauseRAIDRebuild, symptoms.CauseDiskFailure:
		pool := topology.ID(cause.Subject)
		for _, leaf := range g.Plan.Leaves() {
			if in.Cfg.PoolOf(g.VolumeOf(leaf.ID)) == pool && co.InCOS(leaf.ID) {
				out = append(out, leaf.ID)
			}
		}
	case symptoms.CauseDataProperty, symptoms.CauseLockContention:
		table := cause.Subject
		for _, leaf := range g.Plan.LeavesOnTable(table) {
			if co.InCOS(leaf.ID) {
				out = append(out, leaf.ID)
			}
		}
	case symptoms.CauseCPUSaturation:
		out = append(out, co.COS...)
	default:
		// Unknown causes claim the leaves in the COS.
		for _, leaf := range g.Plan.Leaves() {
			if co.InCOS(leaf.ID) {
				out = append(out, leaf.ID)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ownTimeDeltas computes, per operator, the change in mean own
// (exclusive) running time between satisfactory and unsatisfactory runs.
func ownTimeDeltas(p *plan.Plan, sat, unsat []*exec.RunRecord) map[int]float64 {
	out := make(map[int]float64, p.NumOperators())
	for _, n := range p.Nodes() {
		out[n.ID] = meanOwn(unsat, p, n.ID) - meanOwn(sat, p, n.ID)
	}
	return out
}

// meanOwn averages an operator's exclusive time: its interval minus its
// children's (and attached subplans') intervals.
func meanOwn(runs []*exec.RunRecord, p *plan.Plan, id int) float64 {
	if len(runs) == 0 {
		return 0
	}
	n, ok := p.Node(id)
	if !ok {
		return 0
	}
	var sum float64
	for _, r := range runs {
		op := r.Op(id)
		if op == nil {
			continue
		}
		own := float64(op.Stop.Sub(op.Start))
		for _, ch := range n.Children {
			if c := r.Op(ch.ID); c != nil {
				own -= float64(c.Stop.Sub(c.Start))
			}
		}
		for _, s := range n.SubPlans {
			if c := r.Op(s.ID); c != nil {
				own -= float64(c.Stop.Sub(c.Start))
			}
		}
		sum += own
	}
	return sum / float64(len(runs))
}

// lockWaitDeltas computes per-operator change in mean lock-wait time.
func lockWaitDeltas(p *plan.Plan, sat, unsat []*exec.RunRecord) map[int]float64 {
	mean := func(runs []*exec.RunRecord, id int) float64 {
		if len(runs) == 0 {
			return 0
		}
		var sum float64
		for _, r := range runs {
			if op := r.Op(id); op != nil {
				sum += float64(op.LockWait)
			}
		}
		return sum / float64(len(runs))
	}
	out := make(map[int]float64, p.NumOperators())
	for _, n := range p.Nodes() {
		out[n.ID] = mean(unsat, n.ID) - mean(sat, n.ID)
	}
	return out
}

func meanDuration(runs []*exec.RunRecord) simtime.Duration {
	if len(runs) == 0 {
		return 0
	}
	var sum simtime.Duration
	for _, r := range runs {
		sum += r.Duration()
	}
	return sum / simtime.Duration(len(runs))
}

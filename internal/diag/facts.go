package diag

import (
	"fmt"

	"diads/internal/apg"
	"diads/internal/metrics"
	"diads/internal/symptoms"
	"diads/internal/topology"
)

// BuildFacts converts the workflow's module outputs, the configuration
// change log, and the plan's structure into the fact base Module SD
// evaluates the symptoms database against. Fact names follow the
// conventions the built-in database references (see symptoms.Builtin).
func BuildFacts(in *Input, g *apg.APG, pd *PDResult, co *COResult, da *DAResult, cr *CRResult) *symptoms.FactBase {
	fb := symptoms.NewFactBase()

	if pd != nil && pd.Changed {
		fb.Add("plan-changed", 1)
	}
	if unsat := in.unsatisfactoryRuns(); len(unsat) > 0 {
		fb.AddTimed("first-unsat-run", 1, unsat[0].Start)
	}

	if co != nil {
		for _, s := range co.Scores {
			fb.Add(fmt.Sprintf("op-anomaly:O%d", s.ID), s.Score)
		}
		addCOSStructureFacts(fb, g, co)
	}

	if da != nil {
		for _, s := range da.Scores {
			fb.Add(fmt.Sprintf("metric-anomaly:%s:%s", s.Component, s.Metric), s.Score)
			fb.Add("component-anomaly:"+s.Component, s.Score)
		}
		addDerivedDAFacts(fb, in, da)
	}

	if cr != nil {
		//lint:allow mapiter FactBase.Add is a keyed max-merge, commutative across entries
		for table, score := range cr.TableScores {
			fb.Add("record-anomaly:"+table, score)
		}
	}

	addEventFacts(fb, in)
	addCPULevelFact(fb, in)
	return fb
}

// addCPULevelFact records the absolute CPU utilization level during the
// unsatisfactory runs (0..1). Anomaly scores alone cannot distinguish
// "CPU is a bit higher because runs last longer" from genuine saturation;
// the level can.
func addCPULevelFact(fb *symptoms.FactBase, in *Input) {
	vals := perRunMeans(in.Store, string(in.Server), metrics.SrvCPUUsagePct, in.unsatisfactoryRuns())
	if len(vals) == 0 {
		return
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	fb.Add("cpu-level:"+string(in.Server), sum/float64(len(vals))/100)
}

// addCOSStructureFacts derives the structural COS facts: per-volume and
// per-pool leaf fractions, per-table leaf maxima, and the interior share.
func addCOSStructureFacts(fb *symptoms.FactBase, g *apg.APG, co *COResult) {
	p := g.Plan
	// Per-volume: what fraction of the volume's leaf operators are in
	// the COS? (The paper's "only one out of 7 leaf operators using V2".)
	var anyFrac float64
	poolFrac := map[topology.ID]float64{}
	for _, vol := range g.Volumes() {
		leaves := g.LeavesOnVolume(vol)
		if len(leaves) == 0 {
			continue
		}
		inCOS := 0
		for _, id := range leaves {
			if co.InCOS(id) {
				inCOS++
			}
		}
		frac := float64(inCOS) / float64(len(leaves))
		fb.Add("cos-leaf-frac:"+string(vol), frac)
		if frac > anyFrac {
			anyFrac = frac
		}
		pool := g.Cfg.PoolOf(vol)
		if frac > poolFrac[pool] {
			poolFrac[pool] = frac
		}
	}
	fb.Add("cos-leaf-frac-any", anyFrac)
	//lint:allow mapiter FactBase.Add is a keyed max-merge, commutative across entries
	for pool, frac := range poolFrac {
		fb.Add("cos-leaf-frac-pool:"+string(pool), frac)
	}

	// Per-table: the highest anomaly score among the table's leaves.
	for _, table := range p.Tables() {
		var max float64
		for _, leaf := range p.LeavesOnTable(table) {
			if s := co.ScoreOf(leaf.ID); s > max {
				max = s
			}
		}
		fb.Add("cos-table:"+table, max)
	}

	// Interior share of the COS (a CPU-pressure hint).
	if len(co.COS) > 0 {
		interior := 0
		for _, id := range co.COS {
			if n, ok := p.Node(id); ok && !n.IsLeaf() {
				interior++
			}
		}
		fb.Add("cos-interior-frac", float64(interior)/float64(len(co.COS)))
	}
}

// addDerivedDAFacts lifts component-level DA scores into the aggregate
// facts the symptoms database references.
func addDerivedDAFacts(fb *symptoms.FactBase, in *Input, da *DAResult) {
	// Per-volume: the strongest total-I/O anomaly among the *other*
	// volumes of its pool. External contention shows up here; a database
	// whose own I/O grew does not.
	volLoad := map[topology.ID]float64{}
	for _, s := range da.Scores {
		if s.Metric != metrics.StTotalIOs {
			continue
		}
		if comp, ok := in.Cfg.Get(topology.ID(s.Component)); ok && comp.Kind == topology.KindVolume {
			volLoad[topology.ID(s.Component)] = s.Score
		}
	}
	//lint:allow mapiter SharingVolumes is a pure topology query and the per-volume facts are keyed by vol
	for vol := range volLoad {
		var max float64
		for _, sib := range in.Cfg.SharingVolumes(vol) {
			if sc, ok := volLoad[sib]; ok && sc > max {
				max = sc
			}
		}
		fb.Add("other-volume-load-increase:"+string(vol), max)
	}

	for _, s := range da.Scores {
		comp, ok := in.Cfg.Get(topology.ID(s.Component))
		if !ok {
			// Database pseudo-component.
			switch {
			case s.Component == apg.DBComponent && s.Metric == metrics.DBLockWaitTime:
				fb.Add("lock-anomaly:db", s.Score)
			case s.Component == apg.DBComponent && s.Metric == metrics.DBLocksHeld:
				fb.Add("locks-held-high", s.Score)
			case s.Component == apg.DBComponent && s.Metric == metrics.DBBlocksRead:
				fb.Add("buffer-miss-anomaly", s.Score)
			}
			continue
		}
		switch comp.Kind {
		case topology.KindPool:
			if s.Metric == metrics.StTotalIOs {
				fb.Add("pool-load-increase:"+s.Component, s.Score)
			}
		case topology.KindDisk:
			pool := in.Cfg.PoolOf(topology.ID(s.Component))
			if pool != "" {
				fb.Add("disk-anomaly-in-pool:"+string(pool), s.Score)
			}
		case topology.KindServer:
			if s.Metric == metrics.SrvCPUUsagePct {
				fb.Add("cpu-anomaly:"+s.Component, s.Score)
			}
		}
	}
}

// addEventFacts records configuration and system events as timed facts,
// plus the derived pool-level facts (a volume created in pool P, a LUN
// mapping added for a volume of pool P).
func addEventFacts(fb *symptoms.FactBase, in *Input) {
	for _, ev := range in.Cfg.Log.All() {
		fb.AddTimed(fmt.Sprintf("event:%s:%s", ev.Kind, ev.Subject), 1, ev.T)
		switch ev.Kind {
		case topology.EvVolumeCreated:
			if pool := in.Cfg.PoolOf(ev.Subject); pool != "" {
				fb.AddTimed("new-volume-in-pool:"+string(pool), 1, ev.T)
			}
		case topology.EvLUNMapped, topology.EvZoneCreated:
			if pool := in.Cfg.PoolOf(ev.Subject); pool != "" {
				fb.AddTimed("new-mapping-in-pool:"+string(pool), 1, ev.T)
			}
		case topology.EvRAIDRebuildStart:
			fb.AddTimed("raid-rebuild:"+string(ev.Subject), 1, ev.T)
		case topology.EvDiskFailed:
			if pool := in.Cfg.PoolOf(ev.Subject); pool != "" {
				fb.AddTimed("disk-failed-in-pool:"+string(pool), 1, ev.T)
			}
		case topology.EvDMLBatch:
			fb.AddTimed("dml-event:"+string(ev.Subject), 1, ev.T)
		}
	}
}

// Bindings enumerates the subjects the symptoms database entries are
// instantiated against: every volume on the plan's dependency paths (and
// their disk-sharing neighbours), every pool those volumes belong to,
// every base table of the plan, and the database server.
func Bindings(in *Input, g *apg.APG) []symptoms.Binding {
	var out []symptoms.Binding
	seenVol := map[topology.ID]bool{}
	seenPool := map[topology.ID]bool{}
	addVolume := func(vol topology.ID) {
		if seenVol[vol] {
			return
		}
		seenVol[vol] = true
		pool := in.Cfg.PoolOf(vol)
		out = append(out, symptoms.Binding{
			Scope:   symptoms.ScopeVolume,
			Subject: string(vol),
			Vars:    map[string]string{"$V": string(vol), "$P": string(pool)},
		})
		if pool != "" && !seenPool[pool] {
			seenPool[pool] = true
			out = append(out, symptoms.Binding{
				Scope:   symptoms.ScopePool,
				Subject: string(pool),
				Vars:    map[string]string{"$P": string(pool)},
			})
		}
	}
	for _, vol := range g.Volumes() {
		addVolume(vol)
		for _, neighbour := range in.Cfg.SharingVolumes(vol) {
			addVolume(neighbour)
		}
	}
	for _, table := range g.Plan.Tables() {
		out = append(out, symptoms.Binding{
			Scope:   symptoms.ScopeTable,
			Subject: table,
			Vars:    map[string]string{"$T": table},
		})
	}
	out = append(out, symptoms.Binding{
		Scope:   symptoms.ScopeServer,
		Subject: string(in.Server),
		Vars:    map[string]string{"$S": string(in.Server)},
	})
	out = append(out, symptoms.Binding{
		Scope:   symptoms.ScopeGlobal,
		Subject: in.Query,
		Vars:    map[string]string{},
	})
	return out
}

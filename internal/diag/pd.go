package diag

import (
	"fmt"
	"strings"

	"diads/internal/exec"
	"diads/internal/plan"
	"diads/internal/topology"
)

// PlanChangeCause is one candidate explanation for a plan change: a
// configuration or schema event between the satisfactory and
// unsatisfactory runs, tested by replaying the optimizer with and without
// the change.
type PlanChangeCause struct {
	Event    topology.Event
	Explains bool
	Detail   string
}

// PDResult is Module PD's output.
type PDResult struct {
	// Changed reports whether the unsatisfactory runs used a different
	// plan than the satisfactory ones.
	Changed bool
	// SatSig and UnsatSig are the plan signatures of the two regimes.
	SatSig, UnsatSig string
	// Differences describes the structural changes when Changed.
	Differences []plan.Difference
	// Causes lists the candidate events and whether replaying each one
	// through the optimizer reproduces the change.
	Causes []PlanChangeCause
	// CommonPlan is the plan shared by both regimes when !Changed; the
	// remaining modules analyze it.
	CommonPlan *plan.Plan
	// SatPlan and UnsatPlan are representatives of each regime.
	SatPlan, UnsatPlan *plan.Plan
}

// PlanDiffing implements Module PD: it compares the plans used in
// satisfactory and unsatisfactory runs; if they differ, it pinpoints the
// cause of the plan change by replaying each schema or configuration
// change that occurred between the runs and checking whether it could
// have caused the change (Section 4.1).
func PlanDiffing(in *Input) (*PDResult, error) {
	sat, unsat := in.satisfactoryRuns(), in.unsatisfactoryRuns()
	res := &PDResult{
		SatSig:    dominantSig(sat),
		UnsatSig:  dominantSig(unsat),
		SatPlan:   planWithSig(sat, dominantSig(sat)),
		UnsatPlan: planWithSig(unsat, dominantSig(unsat)),
	}
	if res.SatSig == res.UnsatSig {
		res.CommonPlan = res.UnsatPlan
		return res, nil
	}
	res.Changed = true
	res.Differences = plan.Diff(res.SatPlan, res.UnsatPlan)

	lastSat := sat[len(sat)-1]
	firstUnsat := unsat[0]
	for _, ev := range in.Cfg.Log.Between(lastSat.Start, firstUnsat.Start) {
		switch ev.Kind {
		case topology.EvIndexDropped, topology.EvIndexCreated:
			res.Causes = append(res.Causes, replayIndexEvent(in, ev, res))
		case topology.EvParamChanged:
			res.Causes = append(res.Causes, replayParamEvent(in, ev, res))
		case topology.EvStatsUpdated, topology.EvDMLBatch:
			res.Causes = append(res.Causes, PlanChangeCause{
				Event:  ev,
				Detail: "statistics-related event; replay requires before/after snapshots",
			})
		}
	}
	return res, nil
}

// dominantSig returns the plan signature used by the majority of runs
// (ties broken toward the latest run).
func dominantSig(runs []*exec.RunRecord) string {
	if len(runs) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, r := range runs {
		counts[r.PlanSig]++
	}
	best, bestN := runs[len(runs)-1].PlanSig, 0
	for _, r := range runs {
		if c := counts[r.PlanSig]; c > bestN || (c == bestN && r.PlanSig == best) {
			best, bestN = r.PlanSig, c
		}
	}
	return best
}

// planWithSig returns a run's plan carrying the given signature.
func planWithSig(runs []*exec.RunRecord, sig string) *plan.Plan {
	for _, r := range runs {
		if r.PlanSig == sig {
			return r.Plan
		}
	}
	if len(runs) > 0 {
		return runs[0].Plan
	}
	return nil
}

// replayIndexEvent tests whether an index drop/creation explains the plan
// change by toggling the index and re-running the optimizer.
func replayIndexEvent(in *Input, ev topology.Event, res *PDResult) PlanChangeCause {
	idx := string(ev.Subject)
	cause := PlanChangeCause{Event: ev}

	toggleBack := func() {}
	if ev.Kind == topology.EvIndexDropped {
		if !in.Cat.RestoreIndex(idx) {
			cause.Detail = fmt.Sprintf("unknown index %q", idx)
			return cause
		}
		toggleBack = func() { in.Cat.DropIndex(idx) }
	} else {
		if !in.Cat.DropIndex(idx) {
			cause.Detail = fmt.Sprintf("unknown index %q", idx)
			return cause
		}
		toggleBack = func() { in.Cat.RestoreIndex(idx) }
	}
	before, errB := in.Opt.PlanQuery(in.Query, in.Stats, in.Params)
	toggleBack()
	after, errA := in.Opt.PlanQuery(in.Query, in.Stats, in.Params)
	if errB != nil || errA != nil {
		cause.Detail = "optimizer replay failed"
		return cause
	}
	cause.Explains = before.Signature() == res.SatSig && after.Signature() == res.UnsatSig
	if cause.Explains {
		cause.Detail = fmt.Sprintf("replaying %s of %s reproduces the plan change", ev.Kind, idx)
	} else {
		cause.Detail = fmt.Sprintf("replaying %s of %s does not reproduce the change", ev.Kind, idx)
	}
	return cause
}

// replayParamEvent tests whether a parameter change explains the plan
// change by re-planning under the old and new values.
func replayParamEvent(in *Input, ev topology.Event, res *PDResult) PlanChangeCause {
	cause := PlanChangeCause{Event: ev}
	name := string(ev.Subject)
	var oldV, newV float64
	// Detail format: "name: old -> new" (written by the testbed).
	detail := strings.TrimPrefix(ev.Detail, name+": ")
	if _, err := fmt.Sscanf(detail, "%g -> %g", &oldV, &newV); err != nil {
		cause.Detail = fmt.Sprintf("cannot parse parameter change %q", ev.Detail)
		return cause
	}
	pOld := in.Params.Clone()
	pOld.Set(name, oldV)
	pNew := in.Params.Clone()
	pNew.Set(name, newV)
	before, errB := in.Opt.PlanQuery(in.Query, in.Stats, pOld)
	after, errA := in.Opt.PlanQuery(in.Query, in.Stats, pNew)
	if errB != nil || errA != nil {
		cause.Detail = "optimizer replay failed"
		return cause
	}
	cause.Explains = before.Signature() == res.SatSig && after.Signature() == res.UnsatSig
	if cause.Explains {
		cause.Detail = fmt.Sprintf("changing %s from %g to %g reproduces the plan change", name, oldV, newV)
	} else {
		cause.Detail = fmt.Sprintf("changing %s from %g to %g does not reproduce the change", name, oldV, newV)
	}
	return cause
}

package diag

import (
	"sort"

	"diads/internal/apg"
	"diads/internal/exec"
	"diads/internal/kde"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// MetricScore is one (component, metric) anomaly score.
type MetricScore struct {
	Component string
	Metric    metrics.Metric
	Score     float64
}

// DAResult is Module DA's output.
type DAResult struct {
	// Scores holds every evaluated (component, metric) pair, sorted by
	// component then metric.
	Scores []MetricScore
	// CCS is the correlated component set: the pairs whose score exceeds
	// the threshold.
	CCS []MetricScore
}

// ScoreOf returns the anomaly score for a (component, metric) pair.
func (r *DAResult) ScoreOf(component string, metric metrics.Metric) float64 {
	for _, s := range r.Scores {
		if s.Component == component && s.Metric == metric {
			return s.Score
		}
	}
	return 0
}

// Components returns the distinct components present in the CCS, sorted.
func (r *DAResult) Components() []string {
	seen := map[string]bool{}
	for _, s := range r.CCS {
		seen[s.Component] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// minSamplesForKDE is the minimum satisfactory sample count for a metric
// series to be scored; fewer samples make density estimates meaningless.
const minSamplesForKDE = 4

// DependencyAnalysis implements Module DA: it generates dependency paths
// for the operators in the COS and prunes them by correlating component
// performance metrics with the runs' behaviour. A component is in the
// correlated component set only if (i) it lies on the dependency path of
// a correlated operator and (ii) at least one of its performance metrics
// is significantly anomalous during the unsatisfactory runs (Section
// 4.1).
//
// Both inner and outer dependency paths contribute candidate components:
// the outer path is how a misconfigured volume sharing V1's disks enters
// the analysis.
func DependencyAnalysis(in *Input, g *apg.APG, co *COResult) (*DAResult, error) {
	res := &DAResult{}
	comps := candidateComponents(g, co)
	sat, unsat := in.satisfactoryRuns(), in.unsatisfactoryRuns()
	threshold := in.threshold()

	for _, comp := range comps {
		c := string(comp)
		for _, m := range in.Store.MetricsFor(c) {
			satVals := perRunMeans(in.Store, c, m, sat)
			unsatVals := perRunMeans(in.Store, c, m, unsat)
			if len(satVals) < minSamplesForKDE || len(unsatVals) == 0 {
				continue
			}
			score, err := kde.AnomalyScore(satVals, unsatVals)
			if err != nil {
				continue
			}
			ms := MetricScore{Component: c, Metric: m, Score: score}
			res.Scores = append(res.Scores, ms)
			if score > threshold {
				res.CCS = append(res.CCS, ms)
			}
		}
	}
	sort.Slice(res.Scores, func(i, j int) bool {
		if res.Scores[i].Component != res.Scores[j].Component {
			return res.Scores[i].Component < res.Scores[j].Component
		}
		return res.Scores[i].Metric < res.Scores[j].Metric
	})
	sort.Slice(res.CCS, func(i, j int) bool {
		if res.CCS[i].Component != res.CCS[j].Component {
			return res.CCS[i].Component < res.CCS[j].Component
		}
		return res.CCS[i].Metric < res.CCS[j].Metric
	})
	return res, nil
}

// candidateComponents collects the components on the dependency paths of
// the correlated operators: the inner paths, the outer paths (volumes
// sharing disks), and — because outer-path volumes matter precisely when
// disks are shared — every volume of the pools those paths traverse.
func candidateComponents(g *apg.APG, co *COResult) []topology.ID {
	seen := map[topology.ID]bool{}
	var out []topology.ID
	add := func(id topology.ID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, opID := range co.COS {
		dp := g.DependencyPath(opID)
		for _, id := range dp.Inner {
			add(id)
		}
		for _, id := range dp.Outer {
			add(id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProbeMetricScore computes the anomaly score for one (component,
// metric) pair directly from the monitoring store, independent of Module
// DA's dependency-path pruning. The Table 2 reproduction uses it to
// report scores for volumes DA legitimately pruned away.
func ProbeMetricScore(in *Input, component string, metric metrics.Metric) (float64, error) {
	satVals := perRunMeans(in.Store, component, metric, in.satisfactoryRuns())
	unsatVals := perRunMeans(in.Store, component, metric, in.unsatisfactoryRuns())
	if len(satVals) < minSamplesForKDE || len(unsatVals) == 0 {
		return 0, kde.ErrNoSamples
	}
	return kde.AnomalyScore(satVals, unsatVals)
}

// perRunMeans computes one observation per run: the mean of the metric
// over the run's evidence window (metrics.ReadWindow — the run's span
// padded by the monitoring interval, so coarse series contribute their
// nearest samples). Runs whose windows contain no samples are skipped.
func perRunMeans(store *metrics.Store, component string, metric metrics.Metric, runs []*exec.RunRecord) []float64 {
	var out []float64
	for _, r := range runs {
		win := metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop))
		mean, n := store.WindowMean(component, metric, win)
		if n == 0 {
			continue
		}
		out = append(out, mean)
	}
	return out
}

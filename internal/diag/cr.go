package diag

import (
	"sort"

	"diads/internal/exec"
	"diads/internal/kde"
	"diads/internal/plan"
)

// CRResult is Module CR's output.
type CRResult struct {
	// Scores holds record-count anomaly scores for the operators in the
	// COS, ordered by ID.
	Scores []OperatorScore
	// CRS lists the operators whose record counts changed significantly —
	// evidence of a data-property change.
	CRS []int
	// TableScores aggregates the per-operator scores to the base tables
	// of the leaf operators involved (max score per table).
	TableScores map[string]float64
}

// CorrelatedRecordCounts implements Module CR: it checks whether the
// change in performance of the correlated operators correlates with their
// record counts; significant correlations mean the data properties
// changed between the satisfactory and unsatisfactory runs (Section 4.1).
func CorrelatedRecordCounts(in *Input, p *plan.Plan, co *COResult) (*CRResult, error) {
	sat, unsat := runsOnPlan(in.satisfactoryRuns(), p), runsOnPlan(in.unsatisfactoryRuns(), p)
	res := &CRResult{TableScores: make(map[string]float64)}
	threshold := in.threshold()
	for _, opID := range co.COS {
		node, ok := p.Node(opID)
		if !ok {
			continue
		}
		satCounts := actualRowCounts(sat, opID)
		unsatCounts := actualRowCounts(unsat, opID)
		score, err := kde.AnomalyScore(satCounts, unsatCounts)
		if err != nil {
			continue
		}
		res.Scores = append(res.Scores, OperatorScore{
			ID: opID, Type: node.Type, Table: node.Table, Score: score,
		})
		if score > threshold {
			res.CRS = append(res.CRS, opID)
		}
		if node.IsLeaf() && score > res.TableScores[node.Table] {
			res.TableScores[node.Table] = score
		}
	}
	sort.Ints(res.CRS)
	return res, nil
}

// actualRowCounts extracts one operator's actual record counts per run.
func actualRowCounts(runs []*exec.RunRecord, opID int) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		if op := r.Op(opID); op != nil {
			out = append(out, op.ActRows)
		}
	}
	return out
}

package diag

import (
	"sort"

	"diads/internal/exec"
	"diads/internal/kde"
	"diads/internal/plan"
)

// OperatorScore is one operator's anomaly score.
type OperatorScore struct {
	ID    int
	Type  plan.OpType
	Table string
	Score float64
}

// COResult is Module CO's output: per-operator anomaly scores and the
// correlated operator set.
type COResult struct {
	// Scores holds every analyzed operator, ordered by ID.
	Scores []OperatorScore
	// COS lists the IDs of operators whose anomaly score exceeds the
	// threshold — the correlated operator set.
	COS []int
}

// InCOS reports whether the operator is in the correlated operator set.
func (r *COResult) InCOS(id int) bool {
	for _, x := range r.COS {
		if x == id {
			return true
		}
	}
	return false
}

// ScoreOf returns the operator's anomaly score (0 if not analyzed).
func (r *COResult) ScoreOf(id int) float64 {
	for _, s := range r.Scores {
		if s.ID == id {
			return s.Score
		}
	}
	return 0
}

// CorrelatedOperators implements Module CO: it learns, with kernel
// density estimation, the distribution of each operator's running time
// across the satisfactory runs of plan P, and scores the unsatisfactory
// observations with prob(S <= u). Operators scoring above the threshold
// form the correlated operator set whose performance change best explains
// P's slowdown (Section 4.1).
//
// The root operator is excluded: its running time is the plan's total
// running time t(P), so it carries no additional signal.
func CorrelatedOperators(in *Input, p *plan.Plan) (*COResult, error) {
	sat, unsat := runsOnPlan(in.satisfactoryRuns(), p), runsOnPlan(in.unsatisfactoryRuns(), p)
	res := &COResult{}
	threshold := in.threshold()
	for _, n := range p.Nodes() {
		if n.ID == p.Root.ID {
			continue
		}
		satTimes := recordedTimes(sat, n.ID)
		unsatTimes := recordedTimes(unsat, n.ID)
		score, err := kde.AnomalyScore(satTimes, unsatTimes)
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, OperatorScore{
			ID: n.ID, Type: n.Type, Table: n.Table, Score: score,
		})
		if score > threshold {
			res.COS = append(res.COS, n.ID)
		}
	}
	sort.Ints(res.COS)
	return res, nil
}

// runsOnPlan filters runs to those executing the given plan.
func runsOnPlan(runs []*exec.RunRecord, p *plan.Plan) []*exec.RunRecord {
	sig := p.Signature()
	var out []*exec.RunRecord
	for _, r := range runs {
		if r.PlanSig == sig {
			out = append(out, r)
		}
	}
	return out
}

// recordedTimes extracts one operator's recorded running times.
func recordedTimes(runs []*exec.RunRecord, opID int) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		if op := r.Op(opID); op != nil {
			out = append(out, float64(op.Recorded))
		}
	}
	return out
}

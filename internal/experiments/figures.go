package experiments

import (
	"fmt"
	"strings"

	"diads/internal/apg"
	"diads/internal/console"
	"diads/internal/diag"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/topology"
)

// Figure1Result reproduces Figure 1: the Annotated Plan Graph for TPC-H
// Query 2 over the Figure 1 SAN.
type Figure1Result struct {
	APG       *apg.APG
	Operators int
	Leaves    int
	V1Leaves  []int
	V2Leaves  []int
	Rendering string
}

// Figure1 builds the testbed, runs Q2 once, and constructs its APG.
func Figure1(seed int64) (*Figure1Result, error) {
	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	p := sc.Testbed.Runs[0].Plan
	g, err := apg.Build(p, sc.Testbed.Cfg, sc.Testbed.Cat, testbed.ServerDB)
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		APG:       g,
		Operators: p.NumOperators(),
		Leaves:    len(p.Leaves()),
		V1Leaves:  g.LeavesOnVolume(testbed.VolV1),
		V2Leaves:  g.LeavesOnVolume(testbed.VolV2),
		Rendering: g.Render(),
	}, nil
}

// Render formats the figure reproduction summary.
func (f *Figure1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: Annotated Plan Graph\n")
	fmt.Fprintf(&b, "operators=%d (paper: 25)  leaves=%d (paper: 9)\n", f.Operators, f.Leaves)
	fmt.Fprintf(&b, "V1 leaves=%v  V2 leaves=%v\n\n", f.V1Leaves, f.V2Leaves)
	b.WriteString(f.Rendering)
	return b.String()
}

// Figure3Result reproduces Figure 3, the query-selection screen.
type Figure3Result struct {
	Screen string
	Rows   int
}

// Figure3 renders the query-selection screen for scenario 1's runs.
func Figure3(seed int64) (*Figure3Result, error) {
	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	screen := console.QueryScreen(sc.Input.Runs, sc.Input.Satisfactory)
	return &Figure3Result{Screen: screen, Rows: len(sc.Input.Runs)}, nil
}

// Render returns the screen.
func (f *Figure3Result) Render() string { return "Figure 3: query selection screen\n" + f.Screen }

// Figure4Result reproduces Figure 4, the catalog of collected metrics.
type Figure4Result struct {
	Catalog map[metrics.Layer][]metrics.Metric
}

// Figure4 enumerates the monitoring catalog.
func Figure4() *Figure4Result {
	return &Figure4Result{Catalog: metrics.Catalog()}
}

// Render formats the catalog in Figure 4's four-column layout (stacked).
func (f *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: Performance metrics collected by DIADS\n")
	for _, layer := range metrics.Layers() {
		fmt.Fprintf(&b, "\n%s Metrics:\n", layer)
		for _, m := range f.Catalog[layer] {
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	return b.String()
}

// Figure5Result reproduces Figure 5, the deployment diagram, as a
// topology dump.
type Figure5Result struct {
	Rendering string
}

// Figure5 renders the testbed deployment: servers, fabric, subsystem,
// pools, volumes, and the monitoring/diagnosis components.
func Figure5(seed int64) (*Figure5Result, error) {
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 5: DIADS setup\n\n")
	b.WriteString("TPC-H queries -> PostgreSQL-like engine (srv-db) -> SAN fabric -> IBM DS6000-like subsystem\n")
	b.WriteString("monitoring -> management-tool time-series store -> DIADS diagnosis workflow\n\n")
	for _, kind := range []topology.Kind{topology.KindServer, topology.KindSwitch, topology.KindSubsystem} {
		for _, id := range tb.Cfg.All(kind) {
			fmt.Fprintf(&b, "  %s\n", tb.Cfg.MustGet(id))
		}
	}
	for _, pool := range tb.Cfg.All(topology.KindPool) {
		disks := tb.Cfg.ChildrenOfKind(pool, topology.KindDisk)
		fmt.Fprintf(&b, "  %s: %d disks, volumes %v\n",
			tb.Cfg.MustGet(pool).Name, len(disks), tb.Cfg.VolumesInPool(pool))
	}
	return &Figure5Result{Rendering: b.String()}, nil
}

// Render returns the deployment dump.
func (f *Figure5Result) Render() string { return f.Rendering }

// Figure6Result reproduces Figure 6, the APG visualization screen with
// volume V1's metrics during a run.
type Figure6Result struct {
	Screen string
}

// Figure6 renders the APG screen for an unsatisfactory scenario-1 run,
// focused on volume V1 — the paper's example shows V1's metrics from
// 12:05pm till 1:30pm with their unsatisfactory categorization.
func Figure6(seed int64) (*Figure6Result, error) {
	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	g, err := apg.Build(sc.Testbed.Runs[0].Plan, sc.Testbed.Cfg, sc.Testbed.Cat, testbed.ServerDB)
	if err != nil {
		return nil, err
	}
	unsat := sc.Input.UnsatRuns()
	if len(unsat) == 0 {
		return nil, fmt.Errorf("experiments: scenario 1 produced no unsatisfactory runs")
	}
	var windows []simtime.Interval
	for _, r := range unsat {
		windows = append(windows, metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop)))
	}
	screen := console.APGScreen(g, sc.Testbed.Store, unsat[0], string(testbed.VolV1), windows)
	return &Figure6Result{Screen: screen}, nil
}

// Render returns the screen.
func (f *Figure6Result) Render() string { return "Figure 6: APG visualization screen\n" + f.Screen }

// Figure7Result reproduces Figure 7, the workflow screen after Module CO.
type Figure7Result struct {
	Screen string
}

// Figure7 runs the workflow interactively up to Module CO and renders the
// screen, as the paper's screenshot shows.
func Figure7(seed int64) (*Figure7Result, error) {
	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	w, err := diag.NewWorkflow(sc.Input)
	if err != nil {
		return nil, err
	}
	if err := w.RunPD(); err != nil {
		return nil, err
	}
	if err := w.RunCO(); err != nil {
		return nil, err
	}
	return &Figure7Result{Screen: console.WorkflowScreen(w)}, nil
}

// Render returns the screen.
func (f *Figure7Result) Render() string {
	return "Figure 7: interactive workflow screen (after Module CO)\n" + f.Screen
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// OnlineResult is the outcome of the online-pipeline scenario: a
// multi-query workload streamed through the monitor and the concurrent
// diagnosis service while a SAN misconfiguration degrades one query.
type OnlineResult struct {
	// Onset is when the fault was injected; FirstDetection when the
	// monitor emitted its first event (zero if never).
	Onset          simtime.Time
	FirstDetection simtime.Time
	Detected       bool
	// DetectionLag is FirstDetection - Onset.
	DetectionLag simtime.Duration
	// Events counts monitor events; Alerts the metric-watcher alerts on
	// the victim volume.
	Events int
	Alerts int
	// FalsePositives counts events for queries the fault does not touch.
	FalsePositives int
	// Incidents is the final ranked registry.
	Incidents []service.Incident
	// Correct reports whether the top incident matches the injected
	// fault (SAN misconfiguration on V1, victim query Q2).
	Correct bool
	// Monitor and Service are the pipeline's lifetime counters.
	Monitor monitor.Stats
	Service service.Stats
}

// Render formats the study like the paper's tables. The output is
// byte-deterministic per seed and independent of the streaming chunk
// size: like fleet.Report.Render, it carries no cache counters (cache
// hit/miss totals depend on worker interleaving and on how many events a
// chunk boundary releases at once; read them from Service).
func (r *OnlineResult) Render() string {
	var b strings.Builder
	b.WriteString("Online monitoring & concurrent diagnosis\n")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	fmt.Fprintf(&b, "fault onset          %s\n", r.Onset.Clock())
	if r.Detected {
		fmt.Fprintf(&b, "first detection      %s (lag %s)\n", r.FirstDetection.Clock(), r.DetectionLag)
	} else {
		b.WriteString("first detection      never\n")
	}
	fmt.Fprintf(&b, "slowdown events      %d (false positives: %d)\n", r.Events, r.FalsePositives)
	fmt.Fprintf(&b, "metric alerts (V1)   %d\n", r.Alerts)
	fmt.Fprintf(&b, "diagnoses            %d completed, %d failed\n", r.Service.Completed, r.Service.Failed)
	fmt.Fprintf(&b, "top incident correct %v\n", r.Correct)
	if len(r.Incidents) > 0 {
		top := r.Incidents[0]
		fmt.Fprintf(&b, "top incident         %s %s(%s) — %d events, impact %.1fs\n",
			top.Query, top.Kind, top.Subject, top.Events, top.EstImpact())
	}
	return b.String()
}

// Online runs the end-to-end online scenario: Q2 (on the V1 volume), Q6,
// and Q14 (both on V2) execute on staggered periods; mid-timeline a SAN
// misconfiguration carves V' from pool P1 and loads it from another
// host, degrading only Q2. Runs stream through the monitor via the
// engine's completion hook, events feed the service's worker pool
// between simulation chunks, and the final registry must rank the
// misconfiguration on V1 as the top incident.
func Online(seed int64) (*OnlineResult, error) {
	return OnlineWithChunk(seed, 30*simtime.Minute)
}

// OnlineWithChunk is Online with an explicit simulation chunk — the
// monitoring lag and event-release granularity. A chunk of 0 plays the
// whole timeline as one batch chunk. The result's Render output is
// byte-identical for every chunk size: the evidence-window contract
// (metrics.ReadWindow, the gate's watermark, grid-aligned emission)
// guarantees a diagnosis never depends on when its event was released.
func OnlineWithChunk(seed int64, chunk simtime.Duration) (*OnlineResult, error) {
	env, err := BuildOnline(OnlineSpec{Seed: seed})
	if err != nil {
		return nil, err
	}
	tb, mon, onset := env.Testbed, env.Monitor, env.Onset

	watcher := monitor.NewWatcher(tb.Store, monitor.Config{MinRuns: 12, MinFactor: 1.3})
	watcher.Watch(string(testbed.VolV1), metrics.VolReadTime)

	svc := service.New(service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}, service.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	res := &OnlineResult{Onset: onset}
	gate := &monitor.Gate{}
	drain := func(now simtime.Time) error {
		for {
			select {
			case ev := <-mon.Events():
				res.Events++
				if !res.Detected {
					res.Detected = true
					res.FirstDetection = ev.At
					res.DetectionLag = ev.At.Sub(onset)
				}
				if ev.Query != "Q2" {
					res.FalsePositives++
				}
				gate.Add(ev)
			default:
				// Submit only events whose windows the emitted metrics
				// fully cover, keeping diagnoses deterministic.
				for _, ev := range gate.Release(now) {
					if err := svc.Submit(ev); err != nil &&
						err != service.ErrDuplicate && err != service.ErrBackpressure {
						return err
					}
				}
				res.Alerts += len(watcher.Poll())
				return nil
			}
		}
	}
	if err := tb.SimulateStream(chunk, drain); err != nil {
		return nil, err
	}
	svc.Wait()
	svc.Stop()

	res.Incidents = svc.Registry().Incidents()
	res.Monitor = mon.Stats()
	res.Service = svc.Stats()
	if len(res.Incidents) > 0 {
		top := res.Incidents[0]
		res.Correct = top.Query == "Q2" &&
			top.Kind == symptoms.CauseSANMisconfig &&
			top.Subject == string(testbed.VolV1)
	}
	return res, nil
}

package experiments

import (
	"testing"

	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/simtime"
)

// TestFleetRetentionParity pins the evidence-horizon contract end to
// end: a fleet run with retention on — barrier-time truncation of every
// instance's metric store, SAN timelines, and run history to its low
// watermark, plus the hibernate/rehydrate instance lifecycle under a
// tight resident cap — must render a report byte-identical to the
// retention-off twin of the same seed, across shard counts and chunk
// sizes. Truncation anchors prefix sums to the series origin, low
// watermarks bound every window a future diagnosis can read, and cached
// artifacts are pure functions of instance state; this sweep is where
// all three claims meet the whole pipeline, learning loop included.
func TestFleetRetentionParity(t *testing.T) {
	// A short monitor history ring advances the low watermark within the
	// 12-run timeline, and 16-sample segments let the store free evidence
	// behind it; neither knob affects values, and both twins share them.
	base := FleetSpec{
		Seed: testSeed, Instances: 8, Degraded: 6, Runs: 12,
		Monitor:      monitor.Config{History: 6},
		StoreSegment: 16,
	}
	want, _, err := RunFleetSpec(base)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario must exercise the machinery retention could perturb:
	// detections, learning installs, cross-instance transfers.
	if len(want.Learning.Installed) == 0 || want.Learning.Transfers == 0 {
		t.Fatalf("parity scenario did not exercise symptom learning:\n%s", want.Render())
	}

	cases := []struct {
		name string
		mod  func(*FleetSpec)
	}{
		{"shards-1", func(s *FleetSpec) { s.Shards = 1 }},
		{"shards-2", func(s *FleetSpec) { s.Shards = 2 }},
		{"shards-4", func(s *FleetSpec) { s.Shards = 4 }},
		{"shards-8", func(s *FleetSpec) { s.Shards = 8 }},
		{"chunk-5min", func(s *FleetSpec) { s.Chunk = 5 * simtime.Minute }},
		{"chunk-30min-shards-4", func(s *FleetSpec) {
			s.Chunk = 30 * simtime.Minute
			s.Shards = 4
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := base
			spec.Retention = true
			// A cap of 1 resident per shard forces the hibernate →
			// rehydrate cycle on nearly every barrier, the harshest
			// lifecycle schedule.
			spec.ResidentCap = 1
			c.mod(&spec)
			before := metrics.TruncatedTotal()
			rep, _, err := RunFleetSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			if metrics.TruncatedTotal() == before {
				t.Error("retention-enabled run truncated nothing; the parity check is vacuous")
			}
			if rep.Render() != want.Render() {
				t.Errorf("retention changed the fleet report\n--- retention off ---\n%s\n--- %s ---\n%s",
					want.Render(), c.name, rep.Render())
			}
		})
	}
}

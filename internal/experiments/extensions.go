package experiments

import (
	"fmt"
	"strings"

	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/faults"
	"diads/internal/selfheal"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/whatif"
)

// WhatIfResult is the Section 7 what-if extension study: predicted vs
// observed impact of adding a workload to each pool.
type WhatIfResult struct {
	PredictedP1 whatif.Prediction
	PredictedP2 whatif.Prediction
	// ObservedP1 is the measured slowdown factor when the P1 workload is
	// actually applied (scenario 1's fault).
	ObservedP1 float64
}

// WhatIf predicts the impact of the scenario-1 workload on each pool and
// compares the P1 prediction against the measured outcome.
func WhatIf(seed int64) (*WhatIfResult, error) {
	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	sat, unsat := sc.Input.SatRuns(), sc.Input.UnsatRuns()
	if len(sat) == 0 || len(unsat) == 0 {
		return nil, fmt.Errorf("experiments: scenario 1 labels degenerate")
	}
	an := &whatif.Analyzer{
		Cfg: sc.Testbed.Cfg, SAN: sc.Testbed.SAN, Cat: sc.Testbed.Cat,
		Opt: sc.Testbed.Opt, Params: sc.Testbed.Params, Stats: sc.Testbed.Stats,
		Baseline: sat[0],
		// Evaluate storage state before the fault so predictions are
		// proactive.
		At: sat[0].Start,
	}
	// What the misconfigured workload would do on each pool. These use
	// the same IOPS as the injected fault.
	p1, err := an.AddWorkload(testbed.VolV3, 450, 120)
	if err != nil {
		return nil, err
	}
	p2, err := an.AddWorkload(testbed.VolV4, 450, 120)
	if err != nil {
		return nil, err
	}
	observed := meanDuration(unsat) / meanDuration(sat)
	return &WhatIfResult{PredictedP1: p1, PredictedP2: p2, ObservedP1: observed}, nil
}

// meanDuration averages run durations in seconds.
func meanDuration(runs []*exec.RunRecord) float64 {
	if len(runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range runs {
		sum += float64(r.Duration())
	}
	return sum / float64(len(runs))
}

// Render formats the study.
func (r *WhatIfResult) Render() string {
	var b strings.Builder
	b.WriteString("What-if analysis (Section 7 extension)\n")
	fmt.Fprintf(&b, "P1-side: %s\n", r.PredictedP1)
	fmt.Fprintf(&b, "P2-side: %s\n", r.PredictedP2)
	fmt.Fprintf(&b, "observed slowdown when the P1 workload really ran: %.2fx\n", r.ObservedP1)
	return b.String()
}

// SelfHealResult is the Section 7 self-healing study: diagnose a plan
// regression, plan its remedy, apply it, and verify recovery.
type SelfHealResult struct {
	Cause       string
	Remedy      string
	HealthyMean float64
	BrokenMean  float64
	HealedMean  float64
	Recovered   bool
	Verdict     string
}

// SelfHeal runs the plan-regression scenario, diagnoses it, applies the
// planned remedy (recreating the index) to a continuation environment,
// and verifies recovery by re-running the query.
func SelfHeal(seed int64) (*SelfHealResult, error) {
	sc, err := Build(SPlanRegression, seed)
	if err != nil {
		return nil, err
	}
	res, err := diag.Diagnose(sc.Input)
	if err != nil {
		return nil, err
	}
	if !res.PD.Changed {
		return nil, fmt.Errorf("experiments: plan regression not detected")
	}
	var subject string
	for _, c := range res.PD.Causes {
		if c.Explains {
			subject = string(c.Event.Subject)
		}
	}
	if subject == "" {
		return nil, fmt.Errorf("experiments: plan change not attributed")
	}
	// PD short-circuits before Module SD, so build the cause instance the
	// attribution implies.
	remedy, err := selfheal.Plan(symptoms.CauseInstance{
		Kind: symptoms.CausePlanRegression, Subject: subject,
		Confidence: 100, Category: symptoms.High,
	})
	if err != nil {
		return nil, err
	}

	out := &SelfHealResult{
		Cause:  "plan-regression(" + subject + ")",
		Remedy: remedy.Description,
	}
	sat, unsat := sc.Input.SatRuns(), sc.Input.UnsatRuns()
	out.HealthyMean = meanDuration(sat)
	out.BrokenMean = meanDuration(unsat)

	// Continuation environment: same seed and faults, plus the remedy
	// applied after the fault; the healed runs must recover.
	healed, err := newScenarioTestbed(seed)
	if err != nil {
		return nil, err
	}
	if err := faults.Inject(healed, &faults.IndexDrop{At: faultOnset(), Index: subject}); err != nil {
		return nil, err
	}
	if err := healed.Simulate(); err != nil {
		return nil, err
	}
	if err := remedy.Apply(healed); err != nil {
		return nil, err
	}
	// Re-run the query three times in the healed environment.
	var healedDur []float64
	post := scheduleHorizon().Add(10 * simtime.Minute)
	for i := 0; i < 3; i++ {
		p, err := healed.Opt.PlanQuery("Q2", healed.Stats, healed.Params)
		if err != nil {
			return nil, err
		}
		rec, err := healed.Engine.Run(p, post.Add(simtime.Duration(i)*30*simtime.Minute),
			fmt.Sprintf("run-healed-%d", i))
		if err != nil {
			return nil, err
		}
		healedDur = append(healedDur, float64(rec.Duration()))
	}
	var sum float64
	for _, d := range healedDur {
		sum += d
	}
	out.HealedMean = sum / float64(len(healedDur))
	out.Recovered, out.Verdict = selfheal.Verify(out.HealthyMean, out.HealedMean, 0.35)
	return out, nil
}

// Render formats the study.
func (r *SelfHealResult) Render() string {
	var b strings.Builder
	b.WriteString("Self-healing (Section 7 extension)\n")
	fmt.Fprintf(&b, "cause:   %s\n", r.Cause)
	fmt.Fprintf(&b, "remedy:  %s\n", r.Remedy)
	fmt.Fprintf(&b, "mean durations: healthy=%.1fs broken=%.1fs healed=%.1fs\n",
		r.HealthyMean, r.BrokenMean, r.HealedMean)
	fmt.Fprintf(&b, "recovered=%v (%s)\n", r.Recovered, r.Verdict)
	return b.String()
}

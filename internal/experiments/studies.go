package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"diads/internal/baseline"
	"diads/internal/diag"
	"diads/internal/pipeline"
	"diads/internal/pipelines"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// KDERobustnessResult reproduces the Section 5 observation that KDE "can
// produce accurate results with few tens of samples, and is more robust
// to noise" than model-based correlation analysis.
type KDERobustnessResult struct {
	SampleCounts []int
	// Accuracy[scorer][i] is the detection accuracy at SampleCounts[i].
	Accuracy map[string][]float64
	// NoiseLevels and NoiseAccuracy sweep monitoring noise at 20 samples.
	NoiseLevels   []float64
	NoiseAccuracy map[string][]float64
}

// KDERobustness sweeps sample counts and noise levels over synthetic
// detection trials for KDE and the correlation baselines.
func KDERobustness(seed int64) *KDERobustnessResult {
	scorers := []baseline.AnomalyScorer{
		baseline.KDEScorer{},
		baseline.GaussianScorer{},
		baseline.ThresholdCorrScorer{},
	}
	res := &KDERobustnessResult{
		SampleCounts:  []int{8, 12, 20, 30, 50, 100},
		Accuracy:      make(map[string][]float64),
		NoiseLevels:   []float64{0.05, 0.15, 0.25, 0.35, 0.5},
		NoiseAccuracy: make(map[string][]float64),
	}
	for i, n := range res.SampleCounts {
		rnd := simtime.NewRand(seed, fmt.Sprintf("robust-samples-%d", i))
		trials := baseline.MakeTrials(rnd, 300, n, 3.0, 0.25, 0.08)
		for _, s := range scorers {
			res.Accuracy[s.Name()] = append(res.Accuracy[s.Name()],
				baseline.Accuracy(s, trials, 0.8))
		}
	}
	for i, sigma := range res.NoiseLevels {
		rnd := simtime.NewRand(seed, fmt.Sprintf("robust-noise-%d", i))
		trials := baseline.MakeTrials(rnd, 300, 20, 3.0, sigma, 0.08)
		for _, s := range scorers {
			res.NoiseAccuracy[s.Name()] = append(res.NoiseAccuracy[s.Name()],
				baseline.Accuracy(s, trials, 0.8))
		}
	}
	return res
}

// Render formats the two sweeps as series.
func (r *KDERobustnessResult) Render() string {
	var b strings.Builder
	b.WriteString("KDE robustness (Section 5 observation): detection accuracy\n\n")
	b.WriteString("By satisfactory-sample count (noise sigma 0.25, 8% outliers):\n")
	fmt.Fprintf(&b, "%-24s", "samples")
	for _, n := range r.SampleCounts {
		fmt.Fprintf(&b, "%8d", n)
	}
	b.WriteString("\n")
	for _, s := range sortedSeries(r.Accuracy) {
		fmt.Fprintf(&b, "%-24s", s.name)
		for _, a := range s.accs {
			fmt.Fprintf(&b, "%8.3f", a)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nBy noise level (20 satisfactory samples):\n")
	fmt.Fprintf(&b, "%-24s", "noise sigma")
	for _, s := range r.NoiseLevels {
		fmt.Fprintf(&b, "%8.2f", s)
	}
	b.WriteString("\n")
	for _, s := range sortedSeries(r.NoiseAccuracy) {
		fmt.Fprintf(&b, "%-24s", s.name)
		for _, a := range s.accs {
			fmt.Fprintf(&b, "%8.3f", a)
		}
		b.WriteString("\n")
	}
	return b.String()
}

type namedSeries struct {
	name string
	accs []float64
}

// sortedSeries yields map entries in deterministic name order: the
// known scorers first, in presentation order, then any others sorted by
// name. (Copying into a second map does not order iteration.)
func sortedSeries(m map[string][]float64) []namedSeries {
	ordered := make([]namedSeries, 0, len(m))
	seen := make(map[string]bool, len(m))
	for _, name := range []string{"KDE", "Gaussian-model", "Threshold-correlation"} {
		if v, ok := m[name]; ok {
			ordered = append(ordered, namedSeries{name, v})
			seen[name] = true
		}
	}
	rest := make([]string, 0, len(m))
	for name := range m {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		ordered = append(ordered, namedSeries{name, m[name]})
	}
	return ordered
}

// BaselinesResult reproduces the Section 5 narrative comparing DIADS with
// SAN-only and database-only tools on scenario 1 plus the bursty V2 load.
type BaselinesResult struct {
	DIADSCause   string
	DIADSCorrect bool
	SANOnly      *baseline.Report
	DBOnly       *baseline.Report
	// SANOnlyFlagsV2Side reports the SAN-only tool's characteristic
	// mistake: implicating the V2-side pool.
	SANOnlyFlagsV2Side bool
	// DBOnlyGenerics counts the DB-only tool's generic false positives.
	DBOnlyGenerics int
}

// Baselines runs all three tools on the scenario-1 variant.
func Baselines(seed int64) (*BaselinesResult, error) {
	sc, err := buildScenario1WithV2Burst(seed)
	if err != nil {
		return nil, err
	}
	res, err := diag.Diagnose(sc.Input)
	if err != nil {
		return nil, err
	}
	out := &BaselinesResult{}
	if top, ok := res.TopCause(); ok {
		out.DIADSCause = top.Cause.String()
		out.DIADSCorrect = top.Cause.Kind == symptoms.CauseSANMisconfig &&
			top.Cause.Subject == string(testbed.VolV1)
	}
	// The silo tools run through the same pipeline registry and engine
	// as the full workflow — they are strategies, not special cases.
	if out.SANOnly, err = runSilo(baseline.PipelineSANOnly, sc.Input); err != nil {
		return nil, err
	}
	if out.DBOnly, err = runSilo(baseline.PipelineDBOnly, sc.Input); err != nil {
		return nil, err
	}
	for _, f := range out.SANOnly.Findings {
		if f.Subject == string(testbed.VolV2) || f.Subject == string(testbed.VolV4) {
			out.SANOnlyFlagsV2Side = true
		}
	}
	for _, f := range out.DBOnly.Findings {
		if f.Subject == "buffer pool setting" || f.Subject == "execution plan choice" {
			out.DBOnlyGenerics++
		}
	}
	return out, nil
}

// runSilo executes a silo baseline through the pipeline registry and
// extracts its report from the blackboard.
func runSilo(name string, in *diag.Input) (*baseline.Report, error) {
	bb, _, err := pipelines.Run(context.Background(), name, in)
	if err != nil {
		return nil, err
	}
	rep, ok := pipeline.Get[*baseline.Report](bb, baseline.KeyReport)
	if !ok {
		return nil, fmt.Errorf("experiments: pipeline %s produced no report", name)
	}
	return rep, nil
}

// Render formats the comparison.
func (r *BaselinesResult) Render() string {
	var b strings.Builder
	b.WriteString("Baseline comparison on scenario 1 + bursty V2 load (Section 5 narrative)\n\n")
	fmt.Fprintf(&b, "DIADS: %s (correct=%v)\n\n", r.DIADSCause, r.DIADSCorrect)
	b.WriteString(r.SANOnly.String())
	fmt.Fprintf(&b, "  -> flags V2-side volumes: %v (its characteristic mistake)\n\n", r.SANOnlyFlagsV2Side)
	b.WriteString(r.DBOnly.String())
	fmt.Fprintf(&b, "  -> generic database false positives: %d\n", r.DBOnlyGenerics)
	return b.String()
}

// IncompleteSDResult reproduces the Section 5 observation that DIADS
// "produces good results even when the symptoms database is incomplete".
type IncompleteSDResult struct {
	// FullCause is the diagnosis with the complete database.
	FullCause string
	// WithoutEntryTop is the top cause after removing the matching entry.
	WithoutEntryTop string
	// NarrowedOperators and NarrowedComponents show what DIADS still
	// pinpoints with no database at all.
	NarrowedOperators  []int
	NarrowedComponents []string
}

// IncompleteSymptomsDB diagnoses scenario 1 with the full database, with
// the misconfiguration entry removed, and with no database.
func IncompleteSymptomsDB(seed int64) (*IncompleteSDResult, error) {
	out := &IncompleteSDResult{}

	sc, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	res, err := diag.Diagnose(sc.Input)
	if err != nil {
		return nil, err
	}
	if top, ok := res.TopCause(); ok {
		out.FullCause = top.Cause.String()
	}

	sc2, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	db := symptoms.Builtin()
	db.Remove(symptoms.CauseSANMisconfig)
	sc2.Input.SymDB = db
	res2, err := diag.Diagnose(sc2.Input)
	if err != nil {
		return nil, err
	}
	if top, ok := res2.TopCause(); ok {
		out.WithoutEntryTop = top.Cause.String()
	}

	sc3, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	sc3.Input.SymDB = nil
	res3, err := diag.Diagnose(sc3.Input)
	if err != nil {
		return nil, err
	}
	out.NarrowedOperators = res3.CO.COS
	out.NarrowedComponents = res3.DA.Components()
	return out, nil
}

// Render formats the ablation.
func (r *IncompleteSDResult) Render() string {
	var b strings.Builder
	b.WriteString("Incomplete symptoms database (Section 5 observation)\n")
	fmt.Fprintf(&b, "full database:          %s\n", r.FullCause)
	fmt.Fprintf(&b, "entry removed:          %s\n", r.WithoutEntryTop)
	fmt.Fprintf(&b, "no database, narrowed to operators %v\n", r.NarrowedOperators)
	fmt.Fprintf(&b, "                    and components %v\n", r.NarrowedComponents)
	return b.String()
}

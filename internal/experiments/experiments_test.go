package experiments

import (
	"strings"
	"testing"

	"diads/internal/symptoms"
)

const testSeed = 400

func TestTable1AllScenariosDiagnosedCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 run is slow")
	}
	res, err := Table1(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table 1 has 5 scenarios, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Correct {
			t.Errorf("scenario %d (%s) misdiagnosed: %s", row.Scenario, row.Title, row.TopCause)
		}
	}
	if !res.AllCorrect() {
		t.Errorf("AllCorrect should hold:\n%s", res.Render())
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Errorf("render missing title")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	res, err := Table2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table 2 has 4 rows, got %d", len(res.Rows))
	}
	get := func(vol string, metric string, burst bool) float64 {
		for _, r := range res.Rows {
			if r.Volume == vol && string(r.Metric) == metric {
				if burst {
					return r.WithV2Burst
				}
				return r.NoContention
			}
		}
		t.Fatalf("row %s/%s missing", vol, metric)
		return 0
	}
	// Shape assertions mirroring the paper's table:
	// V1 metrics anomalous in both columns.
	for _, burst := range []bool{false, true} {
		if s := get("vol-V1", "writeIO", burst); s < 0.8 {
			t.Errorf("V1 writeIO should stay anomalous (burst=%v): %.3f", burst, s)
		}
		if s := get("vol-V1", "writeTime", burst); s < 0.8 {
			t.Errorf("V1 writeTime should stay anomalous (burst=%v): %.3f", burst, s)
		}
	}
	// V2 writeTime calm without the burst, anomalous with it.
	if s := get("vol-V2", "writeTime", false); s > 0.8 {
		t.Errorf("V2 writeTime without burst should be calm: %.3f", s)
	}
	if s := get("vol-V2", "writeTime", true); s < 0.8 {
		t.Errorf("V2 writeTime with burst should rise: %.3f", s)
	}
	// V2 writeIO rises with the burst.
	if get("vol-V2", "writeIO", true) < get("vol-V2", "writeIO", false) {
		t.Errorf("V2 writeIO should rise with the burst")
	}
}

func TestFigure1APGShape(t *testing.T) {
	res, err := Figure1(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operators != 25 || res.Leaves != 9 {
		t.Fatalf("Figure 1 shape: %d ops / %d leaves", res.Operators, res.Leaves)
	}
	if len(res.V1Leaves) != 2 || len(res.V2Leaves) != 7 {
		t.Fatalf("volume mapping: V1=%v V2=%v", res.V1Leaves, res.V2Leaves)
	}
	if !strings.Contains(res.Render(), "paper: 25") {
		t.Fatalf("render missing paper reference")
	}
}

func TestFigure3QueryScreen(t *testing.T) {
	res, err := Figure3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != scenarioRuns {
		t.Fatalf("rows: %d", res.Rows)
	}
	for _, want := range []string{"Query Selection", "Duration", "Unsat", "[x]", "run-Q2-001"} {
		if !strings.Contains(res.Screen, want) {
			t.Fatalf("screen missing %q:\n%s", want, res.Screen)
		}
	}
}

func TestFigure4Catalog(t *testing.T) {
	res := Figure4()
	r := res.Render()
	for _, want := range []string{"Database Metrics", "Server Metrics", "Network Metrics",
		"Storage Metrics", "CPU Usage (%ge)", "CRC Errors", "Sequential Read Requests"} {
		if !strings.Contains(r, want) {
			t.Fatalf("Figure 4 render missing %q", want)
		}
	}
}

func TestFigure5Deployment(t *testing.T) {
	res, err := Figure5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DS6000", "P1", "P2", "srv-db"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Figure 5 missing %q", want)
		}
	}
}

func TestFigure6APGScreen(t *testing.T) {
	res, err := Figure6(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"APG Visualization", "vol-V1", "writeTime", "[x]"} {
		if !strings.Contains(res.Screen, want) {
			t.Fatalf("Figure 6 screen missing %q", want)
		}
	}
}

func TestFigure7WorkflowScreen(t *testing.T) {
	res, err := Figure7(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// After Module CO: PD and CO executed, DA next, the rest disabled.
	for _, want := range []string{"[PD*]", "[CO*]", "[DA ]", "(CR )", "correlated operator set"} {
		if !strings.Contains(res.Screen, want) {
			t.Fatalf("Figure 7 screen missing %q:\n%s", want, res.Screen)
		}
	}
}

func TestKDERobustnessShape(t *testing.T) {
	res := KDERobustness(testSeed)
	kdeAccs := res.Accuracy["KDE"]
	gaussAccs := res.Accuracy["Gaussian-model"]
	if len(kdeAccs) != len(res.SampleCounts) {
		t.Fatalf("missing KDE series")
	}
	// KDE accurate with few tens of samples.
	if kdeAccs[1] < 0.85 { // 12 samples
		t.Errorf("KDE at 12 samples: %.3f", kdeAccs[1])
	}
	// KDE at least as good as the parametric baseline at small n.
	if kdeAccs[0] < gaussAccs[0] {
		t.Errorf("KDE (%.3f) should not lose to Gaussian (%.3f) at 8 samples",
			kdeAccs[0], gaussAccs[0])
	}
	// Noise sweep: KDE stays above the baseline at high noise.
	n := len(res.NoiseLevels) - 1
	if res.NoiseAccuracy["KDE"][n] < res.NoiseAccuracy["Gaussian-model"][n] {
		t.Errorf("KDE should stay more robust at the highest noise level")
	}
	if !strings.Contains(res.Render(), "KDE robustness") {
		t.Errorf("render missing title")
	}
}

func TestBaselinesNarrative(t *testing.T) {
	res, err := Baselines(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DIADSCorrect {
		t.Errorf("DIADS should diagnose the variant correctly: %s", res.DIADSCause)
	}
	if !res.SANOnlyFlagsV2Side {
		t.Errorf("SAN-only should flag the V2 side (its characteristic mistake)")
	}
	if res.DBOnlyGenerics != 2 {
		t.Errorf("DB-only should emit 2 generic false positives, got %d", res.DBOnlyGenerics)
	}
}

func TestIncompleteSymptomsDB(t *testing.T) {
	res, err := IncompleteSymptomsDB(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.FullCause, symptoms.CauseSANMisconfig) {
		t.Errorf("full DB should find the misconfiguration: %s", res.FullCause)
	}
	// With the entry removed a related (volume-contention) hypothesis
	// still surfaces.
	if res.WithoutEntryTop == "" {
		t.Errorf("without the entry some cause should still surface")
	}
	// With no DB at all, the search space is still narrowed to the V1
	// leaves and components.
	foundO8 := false
	for _, id := range res.NarrowedOperators {
		if id == 8 {
			foundO8 = true
		}
	}
	if !foundO8 {
		t.Errorf("narrowed operators should include O8: %v", res.NarrowedOperators)
	}
	foundV1 := false
	for _, c := range res.NarrowedComponents {
		if c == "vol-V1" {
			foundV1 = true
		}
	}
	if !foundV1 {
		t.Errorf("narrowed components should include vol-V1: %v", res.NarrowedComponents)
	}
}

func TestAblationsShowModuleValue(t *testing.T) {
	res, err := Ablations(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TopIsCorrect {
		t.Errorf("full workflow should be correct")
	}
	// DA restricts candidates to dependency paths of correlated
	// operators; scoring everything can only find at least as many
	// anomalous metrics (ties happen when noise pulls a V2 leaf into the
	// COS, putting its whole path on the candidate list).
	if res.NoDAHighMetrics < res.WithDAHighMetrics {
		t.Errorf("DA pruning should never add anomalous metrics: %d -> %d",
			res.NoDAHighMetrics, res.WithDAHighMetrics)
	}
	// Lower thresholds admit more operators.
	if res.ThresholdSweep[0.5] < res.ThresholdSweep[0.9] {
		t.Errorf("threshold sweep not monotone: %v", res.ThresholdSweep)
	}
}

func TestWhatIfPredictions(t *testing.T) {
	res, err := WhatIf(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Adding the workload to P1 (the query's partsupp pool) must predict
	// a clearly larger slowdown than adding it to P2 (more spindles, less
	// critical data).
	if res.PredictedP1.SlowdownFactor <= res.PredictedP2.SlowdownFactor {
		t.Errorf("P1 prediction (%.2f) should exceed P2 (%.2f)",
			res.PredictedP1.SlowdownFactor, res.PredictedP2.SlowdownFactor)
	}
	if res.PredictedP1.SlowdownFactor < 1.2 {
		t.Errorf("P1 prediction should be a material slowdown: %.2f", res.PredictedP1.SlowdownFactor)
	}
	// Prediction and observation agree in direction and rough magnitude.
	if res.ObservedP1 < 1.2 {
		t.Errorf("observed slowdown missing: %.2f", res.ObservedP1)
	}
	ratio := res.PredictedP1.SlowdownFactor / res.ObservedP1
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("prediction off by more than 3x: predicted %.2f observed %.2f",
			res.PredictedP1.SlowdownFactor, res.ObservedP1)
	}
}

func TestSelfHealRecovers(t *testing.T) {
	res, err := SelfHeal(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Remedy, "recreate index") {
		t.Errorf("remedy should recreate the index: %s", res.Remedy)
	}
	if res.BrokenMean < res.HealthyMean*1.5 {
		t.Errorf("broken runs should be clearly slower: healthy=%.1f broken=%.1f",
			res.HealthyMean, res.BrokenMean)
	}
	if !res.Recovered {
		t.Errorf("healed runs should recover: %s", res.Verdict)
	}
}

func TestExtraScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []ScenarioID{SCPUSaturation, SDiskFailure, SRAIDRebuild} {
		sc, err := Build(id, testSeed+int64(id)*7)
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		res, correct, err := sc.Diagnose()
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		if !correct {
			top, _ := res.TopCause()
			t.Errorf("scenario %d (%s) misdiagnosed: got %v, want %s(%s)\n%s",
				id, sc.Title, top.Cause, sc.ExpectedKind, sc.ExpectedSubject, res.Render())
		}
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	if _, err := Build(ScenarioID(99), 1); err == nil {
		t.Fatalf("unknown scenario should error")
	}
}

func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	res, err := SeedRobustness(testSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Diagnosis should be right in the large majority of seeds; a noisy
	// miss in one scenario/seed is tolerated, systematic failure is not.
	if res.MinAccuracy() < 0.75 {
		t.Fatalf("diagnosis unstable across seeds:\n%s", res.Render())
	}
}

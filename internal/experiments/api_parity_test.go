package experiments

import (
	"net/http/httptest"
	"testing"

	"diads/internal/api"
	"diads/internal/telemetry"
)

// TestAPIIdleParity pins the serving surface's determinism contract:
// an idle API listener must not perturb the simulated pipeline. The
// online and fleet reports must be byte-identical whether or not an
// api.Node is mounted and serving beside them — the node owns its own
// per-tenant environments and its sequential trace counter, and none of
// that state may leak into a simulation that never posts to it. This is
// the same side-channel discipline TestTelemetryOnOffParity enforces
// for the metrics layer, extended to the HTTP subsystem.
func TestAPIIdleParity(t *testing.T) {
	run := func(listen bool) (string, string) {
		var node *api.Node
		var hs *httptest.Server
		if listen {
			node = api.New(api.Config{Seed: testSeed})
			tsrv := telemetry.NewServer("127.0.0.1:0", nil, nil)
			node.Mount(tsrv)
			hs = httptest.NewServer(tsrv.Handler())
			// Exercise the surface so the listener is genuinely live,
			// not just constructed: a scrape and a query both hit the
			// shared registry and the node's read paths.
			for _, path := range []string{"/metrics", "/readyz", "/v1/incidents", "/v1/candidates"} {
				resp, err := hs.Client().Get(hs.URL + path)
				if err != nil {
					t.Fatalf("GET %s: %v", path, err)
				}
				resp.Body.Close()
			}
		}
		on, err := Online(testSeed)
		if err != nil {
			t.Fatalf("online (listen=%v): %v", listen, err)
		}
		rep, _, err := RunFleetSpec(FleetSpec{
			Seed: testSeed, Instances: 3, Degraded: 2, Runs: 10,
		})
		if err != nil {
			t.Fatalf("fleet (listen=%v): %v", listen, err)
		}
		if listen {
			hs.Close()
			node.Shutdown()
		}
		return on.Render(), rep.Render()
	}

	onlineIdle, fleetIdle := run(true)
	onlineBare, fleetBare := run(false)
	if onlineIdle != onlineBare {
		t.Errorf("online report differs with an idle listener\n--- listener ---\n%s\n--- bare ---\n%s",
			onlineIdle, onlineBare)
	}
	if fleetIdle != fleetBare {
		t.Errorf("fleet report differs with an idle listener\n--- listener ---\n%s\n--- bare ---\n%s",
			fleetIdle, fleetBare)
	}
}

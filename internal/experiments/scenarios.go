// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (Section 5) plus the ablations and
// extension studies DESIGN.md indexes. Each experiment returns a value
// with the measured results and a Render method producing the same rows
// the paper reports.
package experiments

import (
	"fmt"

	"diads/internal/dbsys"
	"diads/internal/diag"
	"diads/internal/faults"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

// ScenarioID identifies one experimental scenario.
type ScenarioID int

// The paper's five Table 1 scenarios plus the extension scenarios this
// reproduction adds.
const (
	S1SANMisconfig ScenarioID = iota + 1
	S2TwoPoolContention
	S3DataPropertyChange
	S4ConcurrentDBAndSAN
	S5LockingWithNoise
	SPlanRegression
	SCPUSaturation
	SDiskFailure
	SRAIDRebuild
)

// scenarioRuns is the schedule length used by the scenarios.
const scenarioRuns = 16

// Scenario is one constructed, simulated, and labeled problem scenario.
type Scenario struct {
	ID          ScenarioID
	Title       string
	Description string
	Testbed     *testbed.Testbed
	Input       *diag.Input
	// ExpectedKind and ExpectedSubject name the ground-truth root cause.
	ExpectedKind    string
	ExpectedSubject string
	// AlsoKind and AlsoSubject name a second concurrent ground-truth
	// cause (scenario 4); both must be identified with high confidence.
	AlsoKind    string
	AlsoSubject string
	// CriticalModule names the module the paper highlights for the
	// scenario (Table 1's right column).
	CriticalModule string
}

// scheduleHorizon returns the end of the default scenario schedule.
func scheduleHorizon() simtime.Time {
	return simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(scenarioRuns)*30*simtime.Minute)
}

// faultOnset returns the scenario fault onset: just before the second
// half of the schedule.
func faultOnset() simtime.Time {
	//lint:allow readwindow fault onset placement (just before a run), not an evidence read window
	return simtime.Time(10*simtime.Minute) +
		simtime.Time(simtime.Duration(scenarioRuns/2)*30*simtime.Minute) -
		simtime.Time(5*simtime.Minute)
}

// newScenarioTestbed builds the Figure 1 testbed with the scenario
// schedule.
func newScenarioTestbed(seed int64) (*testbed.Testbed, error) {
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: scenarioRuns},
	}
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, scheduleHorizon())
	}
	return tb, nil
}

// lockHolds builds exclusive-lock windows overlapping the second-half
// runs.
func lockHolds() []simtime.Interval {
	var holds []simtime.Interval
	for i := scenarioRuns / 2; i < scenarioRuns; i++ {
		start := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(i)*30*simtime.Minute)
		holds = append(holds, simtime.NewInterval(start.Add(-30*simtime.Second), start.Add(90)))
	}
	return holds
}

// Build constructs, simulates, and labels a scenario.
func Build(id ScenarioID, seed int64) (*Scenario, error) {
	tb, err := newScenarioTestbed(seed)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{ID: id, Testbed: tb}
	onset, horizon := faultOnset(), scheduleHorizon()

	misconfig := &faults.SANMisconfiguration{
		At: onset, Until: horizon, Pool: testbed.PoolP1,
		NewVolume: "vol-Vp", Host: testbed.ServerApp1,
		ReadIOPS: 450, WriteIOPS: 120,
	}
	v2Burst := &faults.ExternalVolumeLoad{
		LoadName: "wl-v2-burst", Volume: testbed.VolV4,
		Window:   simtime.NewInterval(onset, horizon),
		ReadIOPS: 260, WriteIOPS: 120, DutyCycle: 0.35, Period: 10 * simtime.Minute,
	}

	switch id {
	case S1SANMisconfig:
		sc.Title = "SAN misconfiguration causing contention in V1"
		sc.Description = "volume V' carved from P1, zoned and LUN-mapped to another host whose workload contends with V1"
		sc.CriticalModule = "SD maps symptoms to the misconfiguration; identified symptoms pinpoint the correct volume"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseSANMisconfig, string(testbed.VolV1)
		err = faults.Inject(tb, misconfig)
	case S2TwoPoolContention:
		sc.Title = "External contention on both pools; only P1's affects the query"
		sc.Description = "heavy external workload on V3 (P1) plus bursty load on V4 (P2) that barely touches the query"
		sc.CriticalModule = "DA prunes the unrelated symptoms and events for volume V2"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseExternalLoad, string(testbed.VolV1)
		err = faults.Inject(tb,
			&faults.ExternalVolumeLoad{
				LoadName: "wl-v1-heavy", Volume: testbed.VolV3,
				Window:   simtime.NewInterval(onset, horizon),
				ReadIOPS: 450, WriteIOPS: 120, DutyCycle: 1,
			},
			v2Burst,
		)
	case S3DataPropertyChange:
		sc.Title = "SQL DML causes a subtle change in data properties"
		sc.Description = "bulk DML grows partsupp; extra I/O propagates to the SAN as apparent volume contention"
		sc.CriticalModule = "CR identifies the record-count symptoms; IA rules out volume contention as root cause"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseDataProperty, dbsys.TPartsupp
		err = faults.Inject(tb, &faults.DataPropertyChange{At: onset, Table: dbsys.TPartsupp, Factor: 1.8})
	case S4ConcurrentDBAndSAN:
		sc.Title = "Concurrent DB (data properties) and SAN (misconfiguration) problems"
		sc.Description = "partsupp grows at the same time V' contends with V1"
		sc.CriticalModule = "Both problems identified; IA ranks them"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseSANMisconfig, string(testbed.VolV1)
		sc.AlsoKind, sc.AlsoSubject = symptoms.CauseDataProperty, dbsys.TPartsupp
		err = faults.Inject(tb, misconfig,
			&faults.DataPropertyChange{At: onset, Table: dbsys.TPartsupp, Factor: 1.6})
	case S5LockingWithNoise:
		sc.Title = "DB locking problem with spurious volume-contention symptoms"
		sc.Description = "a batch transaction holds exclusive partsupp locks during runs; bursty V4 noise mimics contention"
		sc.CriticalModule = "IA identifies volume contention as low impact"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseLockContention, dbsys.TPartsupp
		err = faults.Inject(tb,
			&faults.TableLockContention{Table: dbsys.TPartsupp, Holds: lockHolds(), Holder: "txn-batch"},
			v2Burst,
		)
	case SPlanRegression:
		sc.Title = "Plan regression after an index drop"
		sc.Description = "partsupp_partkey_idx dropped by a maintenance script; the optimizer falls back to scans"
		sc.CriticalModule = "PD detects the change and plan-change analysis pinpoints the drop"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CausePlanRegression, dbsys.IdxPartsuppPart
		err = faults.Inject(tb, &faults.IndexDrop{At: onset, Index: dbsys.IdxPartsuppPart})
	case SCPUSaturation:
		sc.Title = "Database server CPU saturation"
		sc.Description = "a competing process saturates the DB server's CPU"
		sc.CriticalModule = "DA correlates server CPU; domain knowledge separates saturation from propagation"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseCPUSaturation, string(testbed.ServerDB)
		err = faults.Inject(tb, &faults.CPUSaturation{
			Server: testbed.ServerDB,
			Window: simtime.NewInterval(onset, horizon), Load: 0.83,
		})
	case SDiskFailure:
		sc.Title = "Disk failure in pool P1"
		sc.Description = "disk-3 fails; survivors absorb its load while the rebuild adds traffic"
		sc.CriticalModule = "SD matches the failure event; DA sees the pool's disks degrade"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseDiskFailure, string(testbed.PoolP1)
		err = faults.Inject(tb, &faults.DiskFailure{
			Disk: "disk-3", Window: simtime.NewInterval(onset, horizon), RebuildIntensity: 0.45,
		})
	case SRAIDRebuild:
		sc.Title = "RAID rebuild interference in pool P1"
		sc.Description = "a rebuild steals bandwidth from P1's disks"
		sc.CriticalModule = "SD matches the rebuild event with its temporal condition"
		sc.ExpectedKind, sc.ExpectedSubject = symptoms.CauseRAIDRebuild, string(testbed.PoolP1)
		err = faults.Inject(tb, &faults.RAIDRebuild{
			Pool: testbed.PoolP1, Window: simtime.NewInterval(onset, horizon), Intensity: 0.55,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown scenario %d", id)
	}
	if err != nil {
		return nil, err
	}
	if err := tb.Simulate(); err != nil {
		return nil, err
	}
	runs := tb.RunsFor("Q2")
	sc.Input = &diag.Input{
		Query: "Q2", Runs: runs, Satisfactory: diag.LabelAdaptive(runs, 1.6),
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}
	return sc, nil
}

// Diagnose runs the workflow on the scenario and reports whether the top
// cause matches the ground truth.
func (sc *Scenario) Diagnose() (*diag.Result, bool, error) {
	res, err := diag.Diagnose(sc.Input)
	if err != nil {
		return nil, false, err
	}
	return res, sc.Correct(res), nil
}

// Correct reports whether the diagnosis identified the scenario's ground
// truth.
func (sc *Scenario) Correct(res *diag.Result) bool {
	if sc.ExpectedKind == symptoms.CausePlanRegression {
		if !res.PD.Changed {
			return false
		}
		for _, c := range res.PD.Causes {
			if c.Explains && string(c.Event.Subject) == sc.ExpectedSubject {
				return true
			}
		}
		return false
	}
	if sc.AlsoKind != "" {
		// Concurrent problems: both causes must be identified with high
		// confidence; Module IA ranks them.
		return hasHighCause(res, sc.ExpectedKind, sc.ExpectedSubject) &&
			hasHighCause(res, sc.AlsoKind, sc.AlsoSubject)
	}
	top, ok := res.TopCause()
	if !ok {
		return false
	}
	return top.Cause.Kind == sc.ExpectedKind && top.Cause.Subject == sc.ExpectedSubject
}

// hasHighCause reports whether the diagnosis contains the cause at high
// confidence.
func hasHighCause(res *diag.Result, kind, subject string) bool {
	for _, c := range res.Causes {
		if c.Kind == kind && c.Subject == subject && c.Category == symptoms.High {
			return true
		}
	}
	return false
}

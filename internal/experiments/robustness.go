package experiments

import (
	"fmt"
	"strings"
)

// SeedRobustnessResult measures diagnosis accuracy across repeated
// simulations with different seeds — an aggregate the paper's single-run
// demonstrations do not report, added here because a simulator makes it
// cheap.
type SeedRobustnessResult struct {
	Seeds int
	// Accuracy maps scenario ID to the fraction of seeds diagnosed
	// correctly.
	Accuracy map[ScenarioID]float64
	// Failures lists scenario/seed pairs that misdiagnosed.
	Failures []string
}

// SeedRobustness diagnoses each Table 1 scenario across `seeds`
// independent simulations.
func SeedRobustness(baseSeed int64, seeds int) (*SeedRobustnessResult, error) {
	res := &SeedRobustnessResult{
		Seeds:    seeds,
		Accuracy: make(map[ScenarioID]float64),
	}
	for _, id := range []ScenarioID{
		S1SANMisconfig, S2TwoPoolContention, S3DataPropertyChange,
		S4ConcurrentDBAndSAN, S5LockingWithNoise,
	} {
		correct := 0
		for s := 0; s < seeds; s++ {
			seed := baseSeed + int64(id)*1000 + int64(s)
			sc, err := Build(id, seed)
			if err != nil {
				return nil, err
			}
			_, ok, err := sc.Diagnose()
			if err != nil {
				return nil, err
			}
			if ok {
				correct++
			} else {
				res.Failures = append(res.Failures,
					fmt.Sprintf("scenario %d seed %d", id, seed))
			}
		}
		res.Accuracy[id] = float64(correct) / float64(seeds)
	}
	return res, nil
}

// MinAccuracy returns the lowest per-scenario accuracy.
func (r *SeedRobustnessResult) MinAccuracy() float64 {
	min := 1.0
	for _, a := range r.Accuracy {
		if a < min {
			min = a
		}
	}
	return min
}

// Render formats the study.
func (r *SeedRobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed robustness: diagnosis accuracy over %d seeds per scenario\n", r.Seeds)
	for _, id := range []ScenarioID{
		S1SANMisconfig, S2TwoPoolContention, S3DataPropertyChange,
		S4ConcurrentDBAndSAN, S5LockingWithNoise,
	} {
		fmt.Fprintf(&b, "  scenario %d: %.0f%%\n", id, 100*r.Accuracy[id])
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "  failures: %s\n", strings.Join(r.Failures, "; "))
	}
	return b.String()
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"diads/internal/fleet"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// fleetStagger offsets consecutive instances' schedules: independent
// production databases never run their batch windows in phase, and the
// stagger is what lets early instances confirm incidents (and author
// mined symptoms) before later instances diagnose theirs.
const fleetStagger = 3 * simtime.Minute

// fleetSeedStride separates the instances' randomness streams.
const fleetSeedStride = 1_000_003

// fleetSharedSubjects lists the components of the shared pool P1 that
// the degraded instances sit on: incidents on these subjects correlate
// across instances.
func fleetSharedSubjects() []string {
	out := []string{
		string(testbed.PoolP1), string(testbed.VolV1), string(testbed.VolV3), "vol-Vp",
	}
	for i := 1; i <= 4; i++ {
		out = append(out, fmt.Sprintf("disk-%d", i))
	}
	return out
}

// FleetResult is the outcome of the fleet scenario: N instances streamed
// concurrently through one shared diagnosis service while a misconfigured
// shared SAN pool degrades the first Degraded of them, with the
// cross-instance symptom-learning loop measured against a learning-off
// baseline run of the same seed.
type FleetResult struct {
	Seed      int64
	Instances int
	Degraded  int
	// Onsets are the per-instance fault onsets (staggered schedules).
	Onsets []simtime.Time
	// Report is the learning-enabled run; Baseline the learning-off
	// twin (nil when the comparison is skipped).
	Report   *fleet.Report
	Baseline *fleet.Report
	// Lags are the detection lags of the degraded instances that
	// detected (first event minus their own onset), in instance order.
	Lags []simtime.Duration
	// Correct reports whether the top-ranked fleet incident is the
	// shared-pool misconfiguration on V1 spanning every degraded
	// instance and only those.
	Correct bool
}

// Fleet runs the canonical fleet scenario: 8 instances, 6 attached to
// the misconfigured shared pool, with the learning loop on, plus a
// learning-off baseline of the same seed for the before/after.
func Fleet(seed int64) (*FleetResult, error) {
	return FleetN(seed, 8, 6, true)
}

// FleetN runs the fleet scenario with explicit sizing. baseline controls
// whether the learning-off twin runs too.
func FleetN(seed int64, instances, degraded int, baseline bool) (*FleetResult, error) {
	if instances < 1 || degraded < 1 || degraded > instances {
		return nil, fmt.Errorf("experiments: fleet needs 1 <= degraded <= instances, got %d/%d",
			degraded, instances)
	}
	res := &FleetResult{Seed: seed, Instances: instances, Degraded: degraded}
	spec := FleetSpec{Seed: seed, Instances: instances, Degraded: degraded}
	rep, onsets, err := RunFleetSpec(spec)
	if err != nil {
		return nil, err
	}
	res.Report, res.Onsets = rep, onsets
	if baseline {
		spec.LearnOff = true
		res.Baseline, _, err = RunFleetSpec(spec)
		if err != nil {
			return nil, err
		}
	}
	for i, ir := range rep.Instances {
		if i < degraded && ir.Detected {
			res.Lags = append(res.Lags, ir.FirstDetection.Sub(onsets[i]))
		}
	}
	if g := rep.SharedGroup(); g != nil && len(rep.Groups) > 0 {
		top := &rep.Groups[0]
		res.Correct = top == rep.SharedGroup() &&
			g.Kind == symptoms.CauseSANMisconfig &&
			g.Subject == string(testbed.VolV1) &&
			len(g.Parts) == degraded
	}
	return res, nil
}

// FleetSpec parameterizes a single fleet run. Tests and benchmarks use
// it to sweep concurrency settings (which must never change results)
// and instance counts.
type FleetSpec struct {
	Seed      int64
	Instances int
	Degraded  int
	// Runs is the per-instance Q2 schedule length (default 16).
	Runs int
	// Chunk is the simulation chunk and barrier granularity (0 = the
	// fleet default of 10 minutes).
	Chunk simtime.Duration
	// MaxStreams caps concurrently-simulating instances (0 = all);
	// Workers sizes each shard service's pool (0 = service default).
	MaxStreams int
	Workers    int
	// Shards partitions the instances into independent
	// coordinator+service shards (0 = 1). Like MaxStreams and Workers,
	// sharding must never change results — only wall time.
	Shards int
	// LearnOff disables the symptom-learning loop.
	LearnOff bool
	// SymDB overrides the fleet-shared symptoms database (nil =
	// symptoms.Builtin()). cmd/diadsd passes a database extended with
	// entries learned — and persisted to the admin DSL — in earlier runs.
	SymDB *symptoms.DB
	// OperatorReview switches the learning loop's adoption gate from
	// auto-accept-on-validation to an operator ack, scripted here:
	// validated candidates whose kind appears in AckKinds are accepted,
	// every other validated candidate is rejected as "operator
	// rejected". With an empty AckKinds list, validated candidates stay
	// pending (rendered in the report for a human to adopt by hand).
	OperatorReview bool
	AckKinds       []string
	// SelfObserver, when non-nil, is threaded to the fleet's shared
	// service so the dogfood loop can watch the run's own diagnosis
	// latency.
	SelfObserver service.SelfObserver
	// Retention turns on barrier-time evidence truncation and the
	// hibernate/rehydrate instance lifecycle; ResidentCap bounds each
	// shard's resident instances (0 = unlimited). Like the concurrency
	// knobs, neither may change results — the retention-parity sweep
	// pins reports byte-identical against a retention-off twin.
	Retention   bool
	ResidentCap int
	// Monitor tunes each instance's detector (zero value = defaults);
	// StoreSegment overrides each instance store's segment granularity
	// (0 = default). The retention sweep uses both to make truncation
	// fire within test-scale timelines.
	Monitor      monitor.Config
	StoreSegment int
}

// RunFleetSpec builds the instances from the shared online-scenario
// builder and streams them through a fleet, returning the report and the
// per-instance fault onsets.
func RunFleetSpec(spec FleetSpec) (*fleet.Report, []simtime.Time, error) {
	insts := make([]fleet.Instance, 0, spec.Instances)
	onsets := make([]simtime.Time, 0, spec.Instances)
	for i := 0; i < spec.Instances; i++ {
		env, err := BuildOnline(OnlineSpec{
			Seed:         spec.Seed + int64(i)*fleetSeedStride,
			Runs:         spec.Runs,
			Offset:       simtime.Duration(i) * fleetStagger,
			NoFault:      i >= spec.Degraded,
			Monitor:      spec.Monitor,
			StoreSegment: spec.StoreSegment,
		})
		if err != nil {
			return nil, nil, err
		}
		insts = append(insts, fleet.Instance{
			ID:      fmt.Sprintf("inst-%d", i),
			Testbed: env.Testbed,
			Monitor: env.Monitor,
			Shared:  i < spec.Degraded,
		})
		onsets = append(onsets, env.Onset)
	}
	learn := fleet.LearnConfig{Disabled: spec.LearnOff}
	if spec.OperatorReview {
		learn.Review = fleet.ReviewOperator
		if len(spec.AckKinds) > 0 {
			acked := make(map[string]bool, len(spec.AckKinds))
			for _, k := range spec.AckKinds {
				acked[k] = true
			}
			learn.Reviewer = func(c symptoms.CandidateEntry, _ symptoms.Validation) bool {
				return acked[c.CauseKind]
			}
		}
	}
	symdb := spec.SymDB
	if symdb == nil {
		symdb = symptoms.Builtin()
	}
	fl, err := fleet.New(fleet.Config{
		SymDB:          symdb,
		SharedSubjects: fleetSharedSubjects(),
		Chunk:          spec.Chunk,
		MaxStreams:     spec.MaxStreams,
		Shards:         spec.Shards,
		Service:        service.Config{Workers: spec.Workers},
		Learn:          learn,
		SelfObserver:   spec.SelfObserver,
		Retention:      spec.Retention,
		ResidentCap:    spec.ResidentCap,
	}, insts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := fl.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	return rep, onsets, nil
}

// Render formats the study like the paper's tables, followed by the
// fleet report itself. The output is byte-deterministic per seed.
func (r *FleetResult) Render() string {
	var b strings.Builder
	b.WriteString("Fleet: multi-instance diagnosis & cross-instance symptom learning\n")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	fmt.Fprintf(&b, "instances            %d (%d on the misconfigured shared pool)\n",
		r.Instances, r.Degraded)
	if len(r.Onsets) > 0 {
		fmt.Fprintf(&b, "fault onsets         %s .. %s (staggered)\n",
			r.Onsets[0].Clock(), r.Onsets[r.Degraded-1].Clock())
	}
	if len(r.Lags) > 0 {
		var sum, max simtime.Duration
		for _, l := range r.Lags {
			sum += l
			if l > max {
				max = l
			}
		}
		fmt.Fprintf(&b, "detection            %d/%d degraded instances, lag mean %s max %s\n",
			len(r.Lags), r.Degraded, sum/simtime.Duration(len(r.Lags)), max)
	} else {
		b.WriteString("detection            none\n")
	}
	fmt.Fprintf(&b, "dedup                %d of %d submissions suppressed\n",
		r.Report.Stats.Deduped, r.Report.Stats.Submitted)
	fmt.Fprintf(&b, "correlated incident  correct %v\n", r.Correct)
	after := r.Report.Learning
	if r.Baseline != nil {
		fmt.Fprintf(&b, "symptom transfer     before: %d applications — after: %d on %d instances\n",
			r.Baseline.Learning.Transfers, after.Transfers, len(after.TransferInstances))
	} else {
		fmt.Fprintf(&b, "symptom transfer     %d applications on %d instances\n",
			after.Transfers, len(after.TransferInstances))
	}
	b.WriteString("\n")
	b.WriteString(r.Report.Render())
	return b.String()
}

package experiments

import (
	"fmt"

	"diads/internal/faults"
	"diads/internal/monitor"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/workload"
)

// OnlineSpec parameterizes the shared online-scenario assembly: the
// Figure 1 testbed under the three-query workload (Q2 on the V1 volume;
// Q6 and Q14 on V2) with the SAN misconfiguration injected mid-timeline
// and a monitor wired to the engine's completion hook. experiments.Online,
// cmd/diadsd, and the fleet builder all construct their instances from
// it, so the wiring cannot drift between them again.
type OnlineSpec struct {
	// Seed drives all of the instance's randomness.
	Seed int64
	// Runs is the number of Q2 occurrences (minimum 2; default 16). Q6
	// and Q14 scale along at 3/2 and 6/5 of it.
	Runs int
	// Offset shifts every schedule start. The fleet staggers its
	// instances' workloads with it, the way independent production
	// databases never run their batch windows in phase.
	Offset simtime.Duration
	// NoFault skips the SAN misconfiguration: the instance runs healthy.
	// The fleet uses it for instances not attached to the degraded
	// shared pool.
	NoFault bool
	// Monitor tunes online detection (zero value = defaults).
	Monitor monitor.Config
	// StoreSegment overrides the metric store's segment granularity
	// (0 = the store default). Retention sweeps shrink it so truncation
	// fires within test-scale timelines; segmentation never affects
	// values.
	StoreSegment int
}

// OnlineEnv is one assembled online-scenario instance: the testbed with
// schedules, loads, and (unless NoFault) the fault injected, and a
// monitor already attached to the engine's OnRunComplete hook.
type OnlineEnv struct {
	Testbed *testbed.Testbed
	Monitor *monitor.Monitor
	// Onset is when the SAN misconfiguration strikes (meaningful only
	// when the fault is injected); Horizon is the end of the schedule.
	Onset   simtime.Time
	Horizon simtime.Time
}

// BuildOnline assembles one online-scenario instance from the spec.
func BuildOnline(spec OnlineSpec) (*OnlineEnv, error) {
	runs := spec.Runs
	if runs == 0 {
		runs = scenarioRuns
	}
	if runs < 2 {
		return nil, fmt.Errorf("experiments: online scenario needs at least 2 runs, got %d", runs)
	}
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(spec.Seed))
	if err != nil {
		return nil, err
	}
	if spec.StoreSegment > 0 {
		tb.Store.SetSegmentSize(spec.StoreSegment)
	}
	start := simtime.Time(10 * simtime.Minute).Add(spec.Offset)
	horizon := start.Add(simtime.Duration(runs) * 30 * simtime.Minute)
	onset := start.Add(simtime.Duration(runs/2)*30*simtime.Minute - 5*simtime.Minute)
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: start, Period: 30 * simtime.Minute, Count: runs},
		{Query: "Q6", Start: start.Add(2 * simtime.Minute), Period: 20 * simtime.Minute, Count: 3 * runs / 2},
		{Query: "Q14", Start: start.Add(4 * simtime.Minute), Period: 25 * simtime.Minute, Count: 6 * runs / 5},
	}
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if !spec.NoFault {
		if err := faults.Inject(tb, &faults.SANMisconfiguration{
			At: onset, Until: horizon, Pool: testbed.PoolP1,
			NewVolume: "vol-Vp", Host: testbed.ServerApp1,
			ReadIOPS: 450, WriteIOPS: 120,
		}); err != nil {
			return nil, err
		}
	}
	mon := monitor.New(spec.Monitor)
	tb.Engine.OnRunComplete = mon.Observe
	return &OnlineEnv{Testbed: tb, Monitor: mon, Onset: onset, Horizon: horizon}, nil
}

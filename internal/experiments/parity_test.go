package experiments

import (
	"context"
	"testing"

	"diads/internal/baseline"
	"diads/internal/diag"
	"diads/internal/pipeline"
	"diads/internal/pipelines"
)

// TestEngineParityAcrossScenarios is the refactor's acceptance bar:
// for every scenario, concurrent DA ∥ CR execution must produce a
// Result whose Render() output is byte-identical to the sequential
// engine's (determinism preserved per internal/simtime rules).
func TestEngineParityAcrossScenarios(t *testing.T) {
	for id := S1SANMisconfig; id <= SRAIDRebuild; id++ {
		sc, err := Build(id, 700+int64(id))
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		seq, err := diag.DiagnoseWith(context.Background(), sc.Input, diag.RunConfig{MaxParallel: 1})
		if err != nil {
			t.Fatalf("scenario %d sequential: %v", id, err)
		}
		conc, err := diag.DiagnoseWith(context.Background(), sc.Input, diag.RunConfig{MaxParallel: 8})
		if err != nil {
			t.Fatalf("scenario %d concurrent: %v", id, err)
		}
		if seq.Render() != conc.Render() {
			t.Errorf("scenario %d: sequential and concurrent reports differ\n--- seq ---\n%s\n--- conc ---\n%s",
				id, seq.Render(), conc.Render())
		}
	}
}

// TestSiloPipelinesMatchDirectTools checks that the baselines registered
// in the pipeline registry produce exactly the reports of the direct
// silo functions — running through the engine changes nothing about the
// comparisons.
func TestSiloPipelinesMatchDirectTools(t *testing.T) {
	sc, err := buildScenario1WithV2Burst(808)
	if err != nil {
		t.Fatal(err)
	}
	for name, direct := range map[string]func(*diag.Input) (*baseline.Report, error){
		baseline.PipelineSANOnly: baseline.SANOnly,
		baseline.PipelineDBOnly:  baseline.DBOnly,
	} {
		want, err := direct(sc.Input)
		if err != nil {
			t.Fatal(err)
		}
		bb, trace, err := pipelines.Run(context.Background(), name, sc.Input)
		if err != nil {
			t.Fatalf("pipeline %s: %v", name, err)
		}
		got, ok := pipeline.Get[*baseline.Report](bb, baseline.KeyReport)
		if !ok {
			t.Fatalf("pipeline %s produced no report", name)
		}
		if got.String() != want.String() {
			t.Errorf("pipeline %s report differs from the direct tool\n--- pipeline ---\n%s\n--- direct ---\n%s",
				name, got, want)
		}
		if mt := trace.Module(baseline.KeyReport); mt == nil || mt.Status != pipeline.StatusRan {
			t.Errorf("pipeline %s trace: %+v", name, mt)
		}
	}

	// The registry catalogs every strategy.
	names := pipelines.Registry().Names()
	want := map[string]bool{diag.PipelineDIADS: true, baseline.PipelineSANOnly: true, baseline.PipelineDBOnly: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("registry missing pipelines %v (have %v)", want, names)
	}

	if _, _, err := pipelines.Run(context.Background(), "no-such-strategy", sc.Input); err == nil {
		t.Error("unknown pipeline name should error")
	}
}

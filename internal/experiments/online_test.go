package experiments

import (
	"strings"
	"testing"

	"diads/internal/symptoms"
	"diads/internal/testbed"
)

func TestOnlinePipelineEndToEnd(t *testing.T) {
	res, err := Online(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("monitor never detected the injected SAN misconfiguration")
	}
	if res.DetectionLag <= 0 || res.FirstDetection < res.Onset {
		t.Errorf("detection at %v precedes onset %v", res.FirstDetection, res.Onset)
	}
	if res.FalsePositives != 0 {
		t.Errorf("%d events for queries the fault does not touch", res.FalsePositives)
	}
	if res.Events == 0 || res.Service.Completed == 0 {
		t.Fatalf("pipeline idle: %d events, %d diagnoses", res.Events, res.Service.Completed)
	}
	if res.Service.Failed != 0 {
		t.Errorf("%d diagnoses failed", res.Service.Failed)
	}
	// Cache effectiveness is asserted on Stats, never on Render: hit
	// counts depend on worker interleaving and release batching.
	if res.Service.APG.Hits == 0 {
		t.Error("APG cache never hit despite repeated same-plan diagnoses")
	}
	if res.Monitor.Dropped != 0 {
		t.Errorf("%d events dropped with an idle consumer", res.Monitor.Dropped)
	}
	if len(res.Incidents) == 0 {
		t.Fatal("no incidents registered")
	}
	top := res.Incidents[0]
	if !res.Correct {
		t.Errorf("top incident = %s %s(%s), want Q2 %s(%s)",
			top.Query, top.Kind, top.Subject,
			symptoms.CauseSANMisconfig, testbed.VolV1)
	}
	if res.Alerts == 0 {
		t.Error("metric watcher saw no degradation on the victim volume")
	}
	for _, want := range []string{"first detection", "slowdown events", "top incident correct true"} {
		if !strings.Contains(res.Render(), want) {
			t.Errorf("render missing %q:\n%s", want, res.Render())
		}
	}
}

package experiments

import (
	"strings"
	"testing"

	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// TestFleetScenarioEndToEnd runs the canonical 8-instance fleet scenario
// and checks the acceptance criteria: concurrent streaming with the
// shared-pool fault folded into one correlated cross-instance incident,
// and a symptom mined from some instances' confirmed incidents applied
// during other instances' diagnoses within the same run (measured
// against the learning-off baseline).
func TestFleetScenarioEndToEnd(t *testing.T) {
	res, err := Fleet(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if res.Instances != 8 || res.Degraded != 6 {
		t.Fatalf("scenario sizing = %d/%d, want 8 instances with 6 degraded",
			res.Instances, res.Degraded)
	}
	if !res.Correct {
		t.Errorf("correlated incident incorrect:\n%s", rep.Render())
	}
	if len(res.Lags) != res.Degraded {
		t.Errorf("detection on %d/%d degraded instances", len(res.Lags), res.Degraded)
	}
	for i, lag := range res.Lags {
		if lag <= 0 {
			t.Errorf("instance %d: detection lag %v, want > 0", i, lag)
		}
	}
	st := rep.Stats
	if st.Completed == 0 || st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("service: %+v — want diagnoses completed with none failed or shed", st)
	}
	if st.APG.Hits == 0 {
		t.Errorf("shared APG cache never hit across %d same-plan diagnoses", st.Completed)
	}

	// One correlated incident, not six per-instance ones.
	sharedGroups := 0
	for _, g := range rep.Groups {
		if g.Shared {
			sharedGroups++
		}
	}
	if sharedGroups != 1 {
		t.Errorf("shared groups = %d, want exactly 1:\n%s", sharedGroups, rep.Render())
	}
	g := rep.SharedGroup()
	if g == nil || g.Kind != symptoms.CauseSANMisconfig || g.Subject != string(testbed.VolV1) {
		t.Fatalf("shared group = %+v, want %s(%s)", g, symptoms.CauseSANMisconfig, testbed.VolV1)
	}

	// The learning loop closed: an entry was mined from confirmed
	// incidents on some (author) instances and applied during
	// diagnoses on other instances in the same run.
	learn := rep.Learning
	if len(learn.Installed) == 0 {
		t.Fatal("no mined entry was installed into the shared symptoms database")
	}
	if learn.Transfers == 0 || len(learn.TransferInstances) == 0 {
		t.Fatalf("no cross-instance symptom transfer:\n%s", rep.Render())
	}
	authors := make(map[string]bool)
	for _, e := range learn.Installed {
		if len(e.Sources) == 0 {
			t.Errorf("installed entry %s has no author instances", e.Kind)
		}
		for _, s := range e.Sources {
			authors[s] = true
		}
	}
	for _, inst := range learn.TransferInstances {
		if authors[inst] {
			t.Errorf("instance %s counted as both author and transfer beneficiary", inst)
		}
	}
	// The before/after: without the learning loop, nothing transfers.
	if res.Baseline == nil {
		t.Fatal("baseline (learning-off) run missing")
	}
	if res.Baseline.Learning.Transfers != 0 || len(res.Baseline.Learning.Installed) != 0 {
		t.Errorf("learning-off baseline mined or transferred: %+v", res.Baseline.Learning)
	}

	out := res.Render()
	for _, want := range []string{
		"correlated incident  correct true",
		"symptom transfer     before: 0 applications",
		"fleet incidents — 8 instances (6 on the shared pool)",
		symptoms.CauseSANMisconfig + symptoms.MinedSuffix,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"testing"

	"diads/internal/telemetry"
)

// TestTelemetryOnOffParity pins the side-channel contract of the
// telemetry layer: every rendered report must be byte-identical with
// instruments and spans enabled (the default) and with the whole layer
// switched off. If any instrument reading ever leaked into a diagnosis
// or a report, the disabled run would differ — wall-clock histograms and
// trace rings are the only state the layer owns, and none of it may flow
// back.
func TestTelemetryOnOffParity(t *testing.T) {
	reg, tracer := telemetry.Default(), telemetry.DefaultTracer()
	run := func(enabled bool) (string, string) {
		reg.SetEnabled(enabled)
		tracer.SetEnabled(enabled)
		defer reg.SetEnabled(true)
		defer tracer.SetEnabled(true)

		on, err := Online(testSeed)
		if err != nil {
			t.Fatalf("online (telemetry=%v): %v", enabled, err)
		}
		rep, _, err := RunFleetSpec(FleetSpec{
			Seed: testSeed, Instances: 3, Degraded: 2, Runs: 10,
		})
		if err != nil {
			t.Fatalf("fleet (telemetry=%v): %v", enabled, err)
		}
		return on.Render(), rep.Render()
	}

	onlineOn, fleetOn := run(true)
	onlineOff, fleetOff := run(false)
	if onlineOn != onlineOff {
		t.Errorf("online report differs with telemetry off\n--- on ---\n%s\n--- off ---\n%s",
			onlineOn, onlineOff)
	}
	if fleetOn != fleetOff {
		t.Errorf("fleet report differs with telemetry off\n--- on ---\n%s\n--- off ---\n%s",
			fleetOn, fleetOff)
	}
}

package experiments

import (
	"math"
	"strings"
	"testing"

	"diads/internal/monitor"
	"diads/internal/simtime"
	"diads/internal/symptoms"
)

// TestOnlineChunkSizeDeterminism pins the evidence-window contract end to
// end: the online scenario's report must be byte-identical whether the
// simulation streams in 1-minute chunks, 5-minute chunks, the canonical
// 30-minute chunks, or one single batch chunk. Before the contract, a
// released event's diagnosis could read metric windows the emission
// watermark had not covered, so sub-4-minute chunks produced different
// reports than batch runs.
func TestOnlineChunkSizeDeterminism(t *testing.T) {
	base, err := OnlineWithChunk(testSeed, 0) // batch: the whole timeline as one chunk
	if err != nil {
		t.Fatal(err)
	}
	if !base.Correct || base.Events == 0 {
		t.Fatalf("batch run did not exercise the pipeline:\n%s", base.Render())
	}
	for _, chunk := range []simtime.Duration{
		simtime.Minute, // shorter than the monitor-interval padding: the racy regime
		5 * simtime.Minute,
		30 * simtime.Minute,
	} {
		res, err := OnlineWithChunk(testSeed, chunk)
		if err != nil {
			t.Fatalf("chunk %v: %v", chunk, err)
		}
		if res.Render() != base.Render() {
			t.Errorf("chunk %v report differs from batch\n--- batch ---\n%s\n--- chunk %v ---\n%s",
				chunk, base.Render(), chunk, res.Render())
		}
	}
}

// TestFleetChunkSizeDeterminism is the fleet-scale version: with the
// coordinator processing released events in evidence-time waves, the
// grouped fleet report — including the symptom-learning counters, the
// part of the report most sensitive to when diagnoses happen relative to
// mined-entry installs — must be byte-identical across chunk sizes.
func TestFleetChunkSizeDeterminism(t *testing.T) {
	spec := FleetSpec{Seed: testSeed, Instances: 4, Degraded: 3, Runs: 12}
	spec.Chunk = 48 * simtime.Hour // beyond the horizon: one barrier, the batch extreme
	base, _, err := RunFleetSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must exercise the learning loop, or wave ordering goes
	// untested: an entry mined from early instances' confirmations has to
	// transfer to a later instance's diagnoses in every chunking.
	if len(base.Learning.Installed) == 0 || base.Learning.Transfers == 0 {
		t.Fatalf("sweep scenario did not exercise symptom learning:\n%s", base.Render())
	}
	for _, chunk := range []simtime.Duration{
		simtime.Minute,
		5 * simtime.Minute,
		10 * simtime.Minute, // the fleet default
	} {
		spec.Chunk = chunk
		rep, _, err := RunFleetSpec(spec)
		if err != nil {
			t.Fatalf("chunk %v: %v", chunk, err)
		}
		if rep.Render() != base.Render() {
			t.Errorf("chunk %v fleet report differs from batch\n--- batch ---\n%s\n--- chunk %v ---\n%s",
				chunk, base.Render(), chunk, rep.Render())
		}
	}
}

// TestFleetValidationReviewDeterminism extends the determinism sweep to
// the full candidate lifecycle: a fleet run with healthy-corpus
// validation and the operator review gate enabled (a scripted operator
// acks the expected mined kind) must stay byte-identical across chunk
// sizes and across MaxStreams/worker settings. The corpus is built from
// quiet-window probes and low-confidence diagnoses captured mid-run, so
// this is the part of the report most sensitive to scheduling — pinned
// here so validation can never reintroduce the chunk-size race.
func TestFleetValidationReviewDeterminism(t *testing.T) {
	mined := symptoms.CauseSANMisconfig + symptoms.MinedSuffix
	base := FleetSpec{
		Seed: testSeed, Instances: 4, Degraded: 3, Runs: 12,
		OperatorReview: true, AckKinds: []string{mined},
	}
	spec := base
	spec.Chunk = 48 * simtime.Hour // one barrier: the batch extreme
	want, _, err := RunFleetSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	lr := want.Learning
	// The sweep must exercise the whole gate: healthy evidence captured,
	// an incident held out, the acked entry installed and transferring.
	if lr.Healthy == 0 || lr.HeldOut == 0 {
		t.Fatalf("no validation evidence accrued:\n%s", want.Render())
	}
	if len(lr.Installed) == 0 || lr.Transfers == 0 {
		t.Fatalf("review gate never admitted the acked entry:\n%s", want.Render())
	}
	for _, ie := range lr.Installed {
		// The regression the healthy corpus exists to prevent: facts
		// present during normal operation (the pseudo-labeled probe
		// always carries first-unsat-run) must not survive as
		// "discriminative" conditions.
		if rendered := ie.Entry.Render(); strings.Contains(rendered, "first-unsat-run") {
			t.Errorf("installed entry %s encodes an always-present fact:\n%s", ie.Kind, rendered)
		}
	}
	for _, c := range []struct {
		name string
		mod  func(*FleetSpec)
	}{
		{"chunk-1min", func(s *FleetSpec) { s.Chunk = simtime.Minute }},
		{"chunk-5min", func(s *FleetSpec) { s.Chunk = 5 * simtime.Minute }},
		{"chunk-10min-serial", func(s *FleetSpec) {
			s.Chunk = 10 * simtime.Minute
			s.MaxStreams, s.Workers = 1, 1
		}},
	} {
		spec := base
		c.mod(&spec)
		rep, _, err := RunFleetSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Render() != want.Render() {
			t.Errorf("%s: validated+reviewed fleet report diverged\n--- batch ---\n%s\n--- %s ---\n%s",
				c.name, want.Render(), c.name, rep.Render())
		}
	}
}

// TestShortChunkReleaseRespectsReadWindows reproduces the original
// watermark/read-window race and pins its fix. With 3-minute chunks —
// shorter than the monitor-interval padding — the old gate (which
// compared a window ending at rec.Stop + 1min against the watermark)
// released events whose 5-minute-padded metric read windows the emission
// watermark had not covered yet. The new gate must never release an
// event before the watermark reaches its ReadWindow's end, and the
// scenario must actually exhibit at least one event the old contract
// would have released early, or the regression test is vacuous.
func TestShortChunkReleaseRespectsReadWindows(t *testing.T) {
	env, err := BuildOnline(OnlineSpec{Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 3 * simtime.Minute
	gate := &monitor.Gate{}
	type release struct {
		ev monitor.SlowdownEvent
		at simtime.Time // the watermark that released it
	}
	var releases []release
	err = env.Testbed.SimulateStream(chunk, func(now simtime.Time) error {
		for {
			select {
			case ev := <-env.Monitor.Events():
				gate.Add(ev)
			default:
				for _, ev := range gate.Release(now) {
					releases = append(releases, release{ev: ev, at: now})
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(releases) == 0 {
		t.Fatal("scenario emitted no slowdown events")
	}
	if gate.Pending() != 0 {
		t.Errorf("%d events never released; the final chunk's watermark should cover everything", gate.Pending())
	}
	raced := false
	for _, r := range releases {
		if r.ev.ReadWindow.End > r.at {
			t.Errorf("event %s released at watermark %v before its read window %v closed",
				r.ev.RunID, r.at, r.ev.ReadWindow)
		}
		// Where the old contract would have released this event: the first
		// chunk boundary at or past Window.End + 1min.
		oldEnd := float64(r.ev.Window.End.Add(simtime.Minute))
		oldRelease := simtime.Time(math.Ceil(oldEnd/float64(chunk)) * float64(chunk))
		if oldRelease < r.ev.ReadWindow.End {
			raced = true
		}
	}
	if !raced {
		t.Error("no event would have raced under the old contract; the regression scenario lost its teeth")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"diads/internal/diag"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// AblationResult measures what each workflow stage contributes on the
// noisy scenario-1 variant: how many false-positive hypotheses survive
// with and without dependency-analysis pruning, symptoms-database
// evidence weighting, and impact analysis.
type AblationResult struct {
	// FullHighCauses is the number of high-confidence causes with the
	// complete workflow (ideally 1: the true cause).
	FullHighCauses int
	// TopIsCorrect reports whether the full workflow's top cause matches
	// the ground truth.
	TopIsCorrect bool
	// NoDAHighMetrics counts component metrics that look anomalous
	// without dependency-path pruning (every monitored component scored).
	NoDAHighMetrics int
	// WithDAHighMetrics counts the CCS size with pruning.
	WithDAHighMetrics int
	// ThresholdSweep maps the CO threshold to the COS size, showing how
	// the paper's 0.8 balances sensitivity and noise.
	ThresholdSweep map[float64]int
}

// Ablations runs the workflow variants on scenario 1 with the V2 burst.
func Ablations(seed int64) (*AblationResult, error) {
	sc, err := buildScenario1WithV2Burst(seed)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{ThresholdSweep: make(map[float64]int)}

	res, err := diag.Diagnose(sc.Input)
	if err != nil {
		return nil, err
	}
	for _, c := range res.Causes {
		if c.Category == symptoms.High {
			out.FullHighCauses++
		}
	}
	if top, ok := res.TopCause(); ok {
		out.TopIsCorrect = top.Cause.Kind == symptoms.CauseSANMisconfig &&
			top.Cause.Subject == string(testbed.VolV1)
	}
	out.WithDAHighMetrics = len(res.DA.CCS)

	// Without DA's dependency-path restriction: score every component in
	// the store against the run windows.
	threshold := sc.Input.Threshold0()
	for _, comp := range sc.Input.Store.Components() {
		for _, m := range sc.Input.Store.MetricsFor(comp) {
			if s, err := diag.ProbeMetricScore(sc.Input, comp, m); err == nil && s > threshold {
				out.NoDAHighMetrics++
			}
		}
	}

	// CO threshold sweep.
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		sc2, err := buildScenario1WithV2Burst(seed)
		if err != nil {
			return nil, err
		}
		sc2.Input.Threshold = th
		w, err := diag.NewWorkflow(sc2.Input)
		if err != nil {
			return nil, err
		}
		if err := w.RunPD(); err != nil {
			return nil, err
		}
		if err := w.RunCO(); err != nil {
			return nil, err
		}
		out.ThresholdSweep[th] = len(w.Res.CO.COS)
	}
	return out, nil
}

// Render formats the ablation study.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations (design-choice checks)\n")
	fmt.Fprintf(&b, "full workflow: %d high-confidence cause(s), top correct=%v\n",
		r.FullHighCauses, r.TopIsCorrect)
	fmt.Fprintf(&b, "anomalous metrics without DA pruning: %d; with pruning (CCS): %d\n",
		r.NoDAHighMetrics, r.WithDAHighMetrics)
	b.WriteString("CO threshold sweep (threshold -> COS size):\n")
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		fmt.Fprintf(&b, "  %.2f -> %d operators\n", th, r.ThresholdSweep[th])
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"diads/internal/diag"
	"diads/internal/faults"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

// Table1Row is one scenario's outcome in the Table 1 reproduction.
type Table1Row struct {
	Scenario   ScenarioID
	Title      string
	ModuleRole string
	TopCause   string
	Correct    bool
}

// Table1Result reproduces Table 1: the five experimental settings of
// increasing complexity, each diagnosed end to end.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the paper's five scenarios. DIADS must diagnose the root
// cause correctly in all of them.
func Table1(seed int64) (*Table1Result, error) {
	res := &Table1Result{}
	for _, id := range []ScenarioID{
		S1SANMisconfig, S2TwoPoolContention, S3DataPropertyChange,
		S4ConcurrentDBAndSAN, S5LockingWithNoise,
	} {
		sc, err := Build(id, seed+int64(id))
		if err != nil {
			return nil, err
		}
		diagRes, correct, err := sc.Diagnose()
		if err != nil {
			return nil, err
		}
		top := "none"
		if item, ok := diagRes.TopCause(); ok {
			top = item.Cause.String()
		} else if diagRes.PD.Changed {
			top = "plan change"
		}
		res.Rows = append(res.Rows, Table1Row{
			Scenario:   id,
			Title:      sc.Title,
			ModuleRole: sc.CriticalModule,
			TopCause:   top,
			Correct:    correct,
		})
	}
	return res, nil
}

// AllCorrect reports whether every scenario was diagnosed correctly.
func (t *Table1Result) AllCorrect() bool {
	for _, r := range t.Rows {
		if !r.Correct {
			return false
		}
	}
	return true
}

// Render formats the table like the paper's Table 1.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: Experimental settings of increasing complexity used to evaluate DIADS\n")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, r := range t.Rows {
		status := "OK"
		if !r.Correct {
			status = "MISSED"
		}
		fmt.Fprintf(&b, "%d. %-62s [%s]\n", r.Scenario, r.Title, status)
		fmt.Fprintf(&b, "   critical module role: %s\n", r.ModuleRole)
		fmt.Fprintf(&b, "   diagnosis: %s\n", r.TopCause)
	}
	return b.String()
}

// Table2Row is one (volume, metric) row of the Table 2 reproduction.
type Table2Row struct {
	Volume        string
	Metric        metrics.Metric
	NoContention  float64 // anomaly score without contention in V2
	WithV2Burst   float64 // anomaly score with bursty contention in V2
	PaperBaseline float64 // the paper's reported value, column 2
	PaperBurst    float64 // the paper's reported value, column 3
}

// Table2Result reproduces Table 2: anomaly scores computed during
// dependency analysis for performance metrics from volumes V1 and V2,
// in the base scenario 1 and in its variant with extra bursty load on V2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs scenario 1 and its V2-burst variant, then reports Module
// DA's anomaly scores for the four volume metrics the paper tabulates.
func Table2(seed int64) (*Table2Result, error) {
	base, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	baseRes, err := diag.Diagnose(base.Input)
	if err != nil {
		return nil, err
	}

	variant, err := Build(S1SANMisconfig, seed)
	if err != nil {
		return nil, err
	}
	// Recreate the variant testbed with the extra V2-side burst: a fresh
	// build is needed because a testbed simulates once.
	variant, err = buildScenario1WithV2Burst(seed)
	if err != nil {
		return nil, err
	}
	variantRes, err := diag.Diagnose(variant.Input)
	if err != nil {
		return nil, err
	}

	paper := map[string][2]float64{
		"vol-V1/writeIO":   {0.894, 0.894},
		"vol-V1/writeTime": {0.823, 0.823},
		"vol-V2/writeIO":   {0.063, 0.512},
		"vol-V2/writeTime": {0.479, 0.879},
	}
	res := &Table2Result{}
	for _, vol := range []string{string(testbed.VolV1), string(testbed.VolV2)} {
		for _, m := range []metrics.Metric{metrics.VolWriteIO, metrics.VolWriteTime} {
			key := vol + "/" + string(m)
			res.Rows = append(res.Rows, Table2Row{
				Volume:        vol,
				Metric:        m,
				NoContention:  scoreOrProbe(baseRes, base.Input, vol, m),
				WithV2Burst:   scoreOrProbe(variantRes, variant.Input, vol, m),
				PaperBaseline: paper[key][0],
				PaperBurst:    paper[key][1],
			})
		}
	}
	return res, nil
}

// scoreOrProbe returns Module DA's score for the pair; if DA did not
// evaluate the component (it was not on any correlated operator's
// dependency path), the score is probed directly so the table always has
// all four rows, exactly as the paper reports scores for V2 even when V2
// is not implicated.
func scoreOrProbe(res *diag.Result, in *diag.Input, component string, m metrics.Metric) float64 {
	if s := res.DA.ScoreOf(component, m); s > 0 {
		return s
	}
	//lint:allow errdiscard a failed probe degrades to a zero score, matching the paper's table shape
	s, _ := diag.ProbeMetricScore(in, component, m)
	return s
}

// buildScenario1WithV2Burst constructs scenario 1 plus the paper's "extra
// I/O load on Volume V2 in a bursty manner" robustness variant.
func buildScenario1WithV2Burst(seed int64) (*Scenario, error) {
	tb, err := newScenarioTestbed(seed)
	if err != nil {
		return nil, err
	}
	onset, horizon := faultOnset(), scheduleHorizon()
	err = faults.Inject(tb,
		&faults.SANMisconfiguration{
			At: onset, Until: horizon, Pool: testbed.PoolP1,
			NewVolume: "vol-Vp", Host: testbed.ServerApp1,
			ReadIOPS: 450, WriteIOPS: 120,
		},
		&faults.ExternalVolumeLoad{
			LoadName: "wl-v2-burst", Volume: testbed.VolV4,
			Window:   simtime.NewInterval(onset, horizon),
			ReadIOPS: 260, WriteIOPS: 160, DutyCycle: 0.35, Period: 10 * simtime.Minute,
		},
	)
	if err != nil {
		return nil, err
	}
	if err := tb.Simulate(); err != nil {
		return nil, err
	}
	runs := tb.RunsFor("Q2")
	return &Scenario{
		ID: S1SANMisconfig, Title: "scenario 1 + bursty V2 load",
		Testbed:      tb,
		ExpectedKind: symptoms.CauseSANMisconfig, ExpectedSubject: string(testbed.VolV1),
		Input: &diag.Input{
			Query: "Q2", Runs: runs, Satisfactory: diag.LabelAdaptive(runs, 1.6),
			Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
			Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
			SymDB: symptoms.Builtin(),
		},
	}, nil
}

// Render formats the table like the paper's Table 2.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: Anomaly scores computed during dependency analysis (paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-22s %-28s %-28s\n", "Volume, Perf. Metric",
		"Score (no contention in V2)", "Score (contention in V2)")
	b.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %7.3f  (paper %.3f)%10.3f  (paper %.3f)\n",
			r.Volume+", "+string(r.Metric), r.NoContention, r.PaperBaseline,
			r.WithV2Burst, r.PaperBurst)
	}
	return b.String()
}

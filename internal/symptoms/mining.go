package symptoms

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's Section 7 proposes a self-evolving symptoms database:
// "machine learning techniques contributing towards identifying potential
// symptoms which can be checked by an expert and added to the symptoms
// database. Considering that a symptoms database may never be complete,
// this provides a self-evolving mechanism."
//
// Miner implements that loop: it accumulates the fact bases of diagnosed
// incidents together with the confirmed root cause, and proposes
// candidate entries — the facts that recur across an incident class but
// are absent from quiet periods — for an expert to review.

// Incident is one diagnosed episode: its facts and the confirmed cause.
type Incident struct {
	Facts *FactBase
	// CauseKind and Subject record the expert-confirmed root cause.
	CauseKind string
	Subject   string
}

// MinedSuffix marks cause kinds proposed by the miner rather than
// authored by an expert. Downstream consumers treat mined causes as
// corroborating evidence: the incident registry never files an incident
// under a mined kind, but the fleet layer counts a mined entry scoring
// high in another instance's diagnosis as a successful symptom transfer.
const MinedSuffix = "-mined"

// IsMined reports whether a cause kind was produced by the miner.
func IsMined(kind string) bool { return strings.HasSuffix(kind, MinedSuffix) }

// BaseKind strips the mined suffix, recovering the expert-confirmed
// cause kind a mined entry corroborates.
func BaseKind(kind string) string { return strings.TrimSuffix(kind, MinedSuffix) }

// Miner accumulates incidents and proposes codebook entries.
type Miner struct {
	incidents []Incident
	// Background holds fact bases from healthy periods, used to filter
	// out facts that are always present.
	background []*FactBase
}

// AddIncident records a confirmed incident.
func (m *Miner) AddIncident(inc Incident) { m.incidents = append(m.incidents, inc) }

// AddBackground records a healthy-period fact base.
func (m *Miner) AddBackground(fb *FactBase) { m.background = append(m.background, fb) }

// CandidateEntry is a proposed codebook entry awaiting validation and
// review.
type CandidateEntry struct {
	CauseKind string
	// Conditions are the proposed condition expressions with suggested
	// weights (normalized to 100).
	Conditions []Condition
	// Support is how many incidents of the class exhibit every proposed
	// condition.
	Support int
	// Incidents is the class size.
	Incidents int
	// Skipped counts discriminative facts dropped because their names do
	// not survive the condition DSL (delimiters in a metric name, say) —
	// the miner skips them rather than proposing an unparseable entry.
	Skipped int
}

// Entry converts the candidate into an installable database entry. The
// conditions reference concrete fact names (not templates), so the entry
// is global-scoped: it is evaluated once per diagnosis and fires wherever
// the mined symptom combination recurs — the mechanism that transfers
// diagnosis knowledge from one fleet instance to another.
func (c CandidateEntry) Entry() Entry {
	return Entry{
		Kind:       c.CauseKind,
		Scope:      ScopeGlobal,
		Fix:        fmt.Sprintf("mined from %d confirmed incidents; review before adopting", c.Support),
		Conditions: c.Conditions,
	}
}

// Render formats the candidate in the administrator-editable DSL, ready
// to paste into the database once reviewed. The body below the comment
// line is exactly Entry().Render(), so an accepted candidate reloads
// through Parse.
func (c CandidateEntry) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# mined from %d/%d incidents — review before adopting\n", c.Support, c.Incidents)
	if c.Skipped > 0 {
		fmt.Fprintf(&b, "# %d facts skipped: names not expressible in the condition DSL\n", c.Skipped)
	}
	b.WriteString(c.Entry().Render())
	return b.String()
}

// minedScoreThreshold is the fact score above which a fact counts as
// "present" during mining.
const minedScoreThreshold = 0.8

// Propose mines candidate entries: for each cause kind with at least
// minIncidents confirmed incidents, the facts that are present
// (score >= 0.8) in every incident of the class but in no background
// period become the conditions of a candidate entry.
func (m *Miner) Propose(minIncidents int) []CandidateEntry {
	byKind := make(map[string][]Incident)
	for _, inc := range m.incidents {
		byKind[inc.CauseKind] = append(byKind[inc.CauseKind], inc)
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	var out []CandidateEntry
	for _, kind := range kinds {
		class := byKind[kind]
		if len(class) < minIncidents {
			continue
		}
		common := m.commonFacts(class)
		discriminative := m.filterBackground(common)
		if len(discriminative) == 0 {
			continue
		}
		cand := CandidateEntry{
			CauseKind: kind + MinedSuffix,
			Support:   len(class),
			Incidents: len(class),
		}
		// Fact names are data, not code: one with a DSL delimiter in it
		// must not panic the caller mid-proposal. Unparseable names are
		// skipped and counted; weights normalize over what survives.
		var exprs []Expr
		for _, name := range discriminative {
			expr, err := ParseExpr(fmt.Sprintf("ge(%s, %g)", name, minedScoreThreshold))
			if err != nil {
				cand.Skipped++
				continue
			}
			exprs = append(exprs, expr)
		}
		if len(exprs) == 0 {
			continue
		}
		weight := 100.0 / float64(len(exprs))
		for _, expr := range exprs {
			cand.Conditions = append(cand.Conditions, Condition{Weight: weight, Expr: expr})
		}
		out = append(out, cand)
	}
	return out
}

// commonFacts returns fact names present in every incident of the class,
// sorted.
func (m *Miner) commonFacts(class []Incident) []string {
	counts := make(map[string]int)
	for _, inc := range class {
		for _, f := range inc.Facts.All() {
			if f.Score >= minedScoreThreshold {
				counts[f.Name]++
			}
		}
	}
	var out []string
	for name, n := range counts {
		if n == len(class) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// filterBackground drops facts that also appear in any healthy period —
// they carry no diagnostic signal.
func (m *Miner) filterBackground(names []string) []string {
	var out []string
	for _, name := range names {
		inBackground := false
		for _, fb := range m.background {
			if fb.MaxScore(name) >= minedScoreThreshold {
				inBackground = true
				break
			}
		}
		if !inBackground {
			out = append(out, name)
		}
	}
	return out
}

package symptoms

import (
	"strings"
	"testing"
)

// mineCandidate builds a candidate through the real mining path so
// validator tests exercise the same conditions production does.
func mineCandidate(t *testing.T, m *Miner, kind string) CandidateEntry {
	t.Helper()
	cands := m.Propose(2)
	for _, c := range cands {
		if c.CauseKind == kind+MinedSuffix {
			return c
		}
	}
	t.Fatalf("no candidate mined for %q (got %d candidates)", kind, len(cands))
	return CandidateEntry{}
}

func factBase(scores map[string]float64) *FactBase {
	fb := NewFactBase()
	for name, s := range scores {
		fb.Add(name, s)
	}
	return fb
}

func TestValidatorDefersWithoutEvidence(t *testing.T) {
	var m Miner
	for i := 0; i < 2; i++ {
		m.AddIncident(Incident{
			Facts:     factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.95}),
			CauseKind: "cause-x",
		})
	}
	cand := mineCandidate(t, &m, "cause-x")

	var v Validator
	val := v.Validate(cand)
	if val.Verdict != VerdictDefer || !strings.Contains(val.Reason, "healthy corpus") {
		t.Fatalf("empty validator should defer on the corpus, got %s (%s)", val.Verdict, val.Reason)
	}
	v.AddHealthy(factBase(map[string]float64{"unrelated": 0.9}))
	val = v.Validate(cand)
	if val.Verdict != VerdictDefer || !strings.Contains(val.Reason, "held-out") {
		t.Fatalf("validator without hold-out should defer on it, got %s (%s)", val.Verdict, val.Reason)
	}
}

func TestValidatorPassesDiscriminativeCandidate(t *testing.T) {
	var m Miner
	for i := 0; i < 2; i++ {
		m.AddIncident(Incident{
			Facts:     factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.95}),
			CauseKind: "cause-x",
		})
	}
	cand := mineCandidate(t, &m, "cause-x")

	var v Validator
	v.AddHealthy(factBase(map[string]float64{"fact-a": 0.1, "other": 0.9}))
	v.AddHoldout(Incident{
		Facts:     factBase(map[string]float64{"fact-a": 0.85, "fact-b": 0.9}),
		CauseKind: "cause-x",
	})
	val := v.Validate(cand)
	if val.Verdict != VerdictPass {
		t.Fatalf("discriminative candidate should pass, got %s (%s)", val.Verdict, val.Reason)
	}
	if val.Healthy != 1 || val.FalsePositives != 0 || val.Holdout != 1 || val.HoldoutHigh != 1 {
		t.Fatalf("counts wrong: %+v", val)
	}
	if len(val.Conditions) != 2 {
		t.Fatalf("want per-condition records for both conditions, got %d", len(val.Conditions))
	}
}

func TestValidatorRejectsBackgroundCondition(t *testing.T) {
	var m Miner
	for i := 0; i < 2; i++ {
		m.AddIncident(Incident{
			Facts:     factBase(map[string]float64{"fact-a": 0.9, "always-on": 0.95}),
			CauseKind: "cause-x",
		})
	}
	cand := mineCandidate(t, &m, "cause-x")

	var v Validator
	// The healthy period also exhibits always-on: the condition is
	// background, not a symptom.
	v.AddHealthy(factBase(map[string]float64{"always-on": 0.92}))
	v.AddHoldout(Incident{
		Facts:     factBase(map[string]float64{"fact-a": 0.9, "always-on": 0.95}),
		CauseKind: "cause-x",
	})
	val := v.Validate(cand)
	if val.Verdict != VerdictReject {
		t.Fatalf("background condition should reject, got %s", val.Verdict)
	}
	if !strings.Contains(val.Reason, "always-on") {
		t.Fatalf("reason should name the offending condition: %q", val.Reason)
	}
	hits := 0
	for _, c := range val.Conditions {
		if strings.Contains(c.Expr, "always-on") {
			hits = c.HealthyHits
		}
	}
	if hits != 1 {
		t.Fatalf("per-condition healthy hits = %d, want 1", hits)
	}
}

func TestValidatorCountsEntryFalsePositives(t *testing.T) {
	var m Miner
	for i := 0; i < 2; i++ {
		m.AddIncident(Incident{
			Facts:     factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.95}),
			CauseKind: "cause-x",
		})
	}
	cand := mineCandidate(t, &m, "cause-x")

	var v Validator
	// A healthy base exhibiting the full symptom combination: the entry
	// scores 100 — a false positive, not merely a background condition.
	v.AddHealthy(factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.9}))
	v.AddHoldout(Incident{
		Facts:     factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.9}),
		CauseKind: "cause-x",
	})
	val := v.Validate(cand)
	if val.Verdict != VerdictReject || val.FalsePositives != 1 {
		t.Fatalf("want reject with 1 false positive, got %s fp=%d", val.Verdict, val.FalsePositives)
	}
	if !strings.Contains(val.Reason, "false positives") {
		t.Fatalf("reason should cite the false-positive rate: %q", val.Reason)
	}
}

func TestValidatorRejectsOnHoldoutMiss(t *testing.T) {
	var m Miner
	for i := 0; i < 2; i++ {
		m.AddIncident(Incident{
			Facts:     factBase(map[string]float64{"fact-a": 0.9, "fact-b": 0.95}),
			CauseKind: "cause-x",
		})
	}
	cand := mineCandidate(t, &m, "cause-x")

	var v Validator
	v.AddHealthy(factBase(map[string]float64{"other": 0.9}))
	// The held-out confirmed incident lacks fact-b: the candidate
	// overfits the incidents it was mined from.
	v.AddHoldout(Incident{
		Facts:     factBase(map[string]float64{"fact-a": 0.9}),
		CauseKind: "cause-x",
	})
	val := v.Validate(cand)
	if val.Verdict != VerdictReject || val.HoldoutHigh != 0 {
		t.Fatalf("want reject with 0/1 hold-out high, got %s high=%d", val.Verdict, val.HoldoutHigh)
	}
	misses := 0
	for _, c := range val.Conditions {
		if strings.Contains(c.Expr, "fact-b") {
			misses = c.HoldoutMisses
		}
	}
	if misses != 1 {
		t.Fatalf("per-condition holdout misses = %d, want 1", misses)
	}
}

func TestValidatorDedupsHealthyBases(t *testing.T) {
	var v Validator
	fb := factBase(map[string]float64{"a": 0.5})
	if !v.AddHealthy(fb) {
		t.Fatal("first add should be new")
	}
	if v.AddHealthy(factBase(map[string]float64{"a": 0.5})) {
		t.Fatal("identical base should be deduplicated")
	}
	if v.HealthyCount() != 1 {
		t.Fatalf("corpus size = %d, want 1", v.HealthyCount())
	}
}

// Package symptoms implements the paper's symptoms database (Module SD):
// a collection of root-cause entries in the Codebook-inspired format
// Cond1 & Cond2 & ... & Condz, where each condition asserts the presence
// or absence of a symptom, carries a weight (weights per entry sum to
// 100%), and symptoms are written in a small expression language over a
// base set of facts — including temporal conditions such as "the volume
// was created before the first unsatisfactory run".
//
// The diagnosis workflow turns module outputs (correlated operators,
// metric anomaly scores, record-count anomalies, configuration events)
// into facts; the database maps those symptoms to semantically meaningful
// root causes with confidence scores, categorized high (>= 80%), medium
// (>= 50%), and low.
package symptoms

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"diads/internal/simtime"
)

// Fact is one base symptom: a named observation with a score in [0, 1]
// and, where meaningful, a timestamp (for temporal conditions).
type Fact struct {
	Name  string
	Score float64
	T     simtime.Time
	HasT  bool
}

// FactBase is a set of facts queryable by glob-like patterns.
type FactBase struct {
	facts map[string]Fact
}

// NewFactBase returns an empty fact base.
func NewFactBase() *FactBase {
	return &FactBase{facts: make(map[string]Fact)}
}

// Add records a fact with a score and no timestamp. Re-adding a name
// keeps the higher score.
func (fb *FactBase) Add(name string, score float64) {
	if old, ok := fb.facts[name]; ok && old.Score >= score {
		return
	}
	fb.facts[name] = Fact{Name: name, Score: score}
}

// AddTimed records a fact with a score and timestamp. Re-adding keeps the
// earliest timestamp and the higher score.
func (fb *FactBase) AddTimed(name string, score float64, t simtime.Time) {
	if old, ok := fb.facts[name]; ok {
		if old.HasT && old.T < t {
			t = old.T
		}
		if old.Score > score {
			score = old.Score
		}
	}
	fb.facts[name] = Fact{Name: name, Score: score, T: t, HasT: true}
}

// Match returns the facts whose names match the pattern. Patterns are
// colon-separated segments; a segment of "*" matches any single segment,
// and a trailing "*" segment matches any remaining segments.
func (fb *FactBase) Match(pattern string) []Fact {
	if literalPattern(pattern) {
		if f, ok := fb.facts[pattern]; ok {
			return []Fact{f}
		}
		return nil
	}
	var out []Fact
	//lint:allow mapiter MatchPattern is a pure string matcher and the result is sorted below
	for name, f := range fb.facts {
		if MatchPattern(pattern, name) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MaxScore returns the highest score among matching facts (0 if none).
// The maximum is order-independent, so the scan needs neither the sorted
// copy Match builds nor any allocation — this is the innermost call of
// both symptom evaluation and the miner's background filter.
func (fb *FactBase) MaxScore(pattern string) float64 {
	if literalPattern(pattern) {
		return fb.facts[pattern].Score
	}
	var max float64
	//lint:allow mapiter MatchPattern is a pure string matcher and max is commutative
	for name, f := range fb.facts {
		if f.Score > max && MatchPattern(pattern, name) {
			max = f.Score
		}
	}
	return max
}

// Exists reports whether any fact matches the pattern with score > 0.
func (fb *FactBase) Exists(pattern string) bool {
	if literalPattern(pattern) {
		return fb.facts[pattern].Score > 0
	}
	//lint:allow mapiter MatchPattern is a pure string matcher and the constant result is order-free
	for name, f := range fb.facts {
		if f.Score > 0 && MatchPattern(pattern, name) {
			return true
		}
	}
	return false
}

// EarliestT returns the earliest timestamp among matching timed facts.
func (fb *FactBase) EarliestT(pattern string) (simtime.Time, bool) {
	if literalPattern(pattern) {
		f, ok := fb.facts[pattern]
		return f.T, ok && f.HasT
	}
	var best simtime.Time
	found := false
	//lint:allow mapiter MatchPattern is a pure string matcher and min-over-entries is commutative
	for name, f := range fb.facts {
		if !f.HasT || !MatchPattern(pattern, name) {
			continue
		}
		if !found || f.T < best {
			best = f.T
			found = true
		}
	}
	return best, found
}

// All returns every fact sorted by name.
func (fb *FactBase) All() []Fact {
	out := make([]Fact, 0, len(fb.facts))
	for _, f := range fb.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of facts.
func (fb *FactBase) Len() int { return len(fb.facts) }

// Fingerprint returns a stable digest of the fact base: two bases with
// the same facts (names, scores, timestamps) produce the same string.
// The concurrent diagnosis service keys cached symptoms-database
// evaluations by it, so re-diagnosing an identical window skips
// re-evaluating every entry.
func (fb *FactBase) Fingerprint() string {
	h := fnv.New64a()
	for _, f := range fb.All() {
		fmt.Fprintf(h, "%s=%.9g@%.9g;%t|", f.Name, f.Score, float64(f.T), f.HasT)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String implements fmt.Stringer, listing facts one per line.
func (fb *FactBase) String() string {
	var b strings.Builder
	for _, f := range fb.All() {
		if f.HasT {
			fmt.Fprintf(&b, "%-45s score=%.3f t=%s\n", f.Name, f.Score, f.T.Clock())
		} else {
			fmt.Fprintf(&b, "%-45s score=%.3f\n", f.Name, f.Score)
		}
	}
	return b.String()
}

// literalPattern reports whether a pattern has no wildcard segment, in
// which case matching degenerates to string equality and fact lookup is
// a direct map access. (A '*' embedded in a longer segment is a literal
// character, not a wildcard, so the only false negatives here are
// patterns with a literal-'*' segment — they just take the general path.)
func literalPattern(pattern string) bool {
	return !strings.Contains(pattern, "*")
}

// MatchPattern reports whether a colon-segmented glob pattern matches a
// fact name. It walks both strings segment by segment without splitting,
// so the per-call cost is one pass and zero allocations — it sits inside
// every symptoms-database evaluation and miner background scan.
func MatchPattern(pattern, name string) bool {
	nameDone := false // name has no segments left
	for {
		pi := strings.IndexByte(pattern, ':')
		lastP := pi < 0
		var p string
		if lastP {
			p = pattern
		} else {
			p, pattern = pattern[:pi], pattern[pi+1:]
		}
		if p == "*" && lastP {
			return true // trailing * matches the rest (even empty)
		}
		if nameDone {
			return false
		}
		ni := strings.IndexByte(name, ':')
		var n string
		if ni < 0 {
			n, nameDone = name, true
		} else {
			n, name = name[:ni], name[ni+1:]
		}
		if p != "*" && p != n {
			return false
		}
		if lastP {
			return nameDone // both must run out of segments together
		}
	}
}

package symptoms

import (
	"strings"
	"testing"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"plan-changed", "plan-changed", true},
		{"plan-changed", "plan-change", false},
		{"metric-anomaly:vol-V1:writeTime", "metric-anomaly:vol-V1:writeTime", true},
		{"metric-anomaly:vol-V1:*", "metric-anomaly:vol-V1:writeTime", true},
		{"metric-anomaly:vol-V1:*", "metric-anomaly:vol-V2:writeTime", false},
		{"metric-anomaly:*:writeTime", "metric-anomaly:vol-V2:writeTime", true},
		{"metric-anomaly:*", "metric-anomaly:vol-V2:writeTime", true},
		{"metric-anomaly:*", "record-anomaly:partsupp", false},
		{"event:*:vol-Vp", "event:VolumeCreated:vol-Vp", true},
		{"a:b", "a:b:c", false},
		{"a:b:c", "a:b", false},
	}
	for _, c := range cases {
		if got := MatchPattern(c.pattern, c.name); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestFactBaseScoresAndTimes(t *testing.T) {
	fb := NewFactBase()
	fb.Add("metric-anomaly:vol-V1:writeIO", 0.894)
	fb.Add("metric-anomaly:vol-V1:writeTime", 0.823)
	fb.Add("metric-anomaly:vol-V2:writeIO", 0.063)
	fb.AddTimed("event:VolumeCreated:vol-Vp", 1, 500)
	fb.AddTimed("first-unsat-run", 1, 900)

	if got := fb.MaxScore("metric-anomaly:vol-V1:*"); got != 0.894 {
		t.Fatalf("MaxScore: %v", got)
	}
	if !fb.Exists("event:VolumeCreated:*") {
		t.Fatalf("Exists failed")
	}
	if fb.Exists("event:ZoneCreated:*") {
		t.Fatalf("Exists false positive")
	}
	tm, ok := fb.EarliestT("event:*")
	if !ok || tm != 500 {
		t.Fatalf("EarliestT: %v %v", tm, ok)
	}
	// Re-adding keeps higher score and earlier time.
	fb.AddTimed("event:VolumeCreated:vol-Vp", 0.5, 300)
	f := fb.Match("event:VolumeCreated:vol-Vp")[0]
	if f.Score != 1 || f.T != 300 {
		t.Fatalf("merge semantics: %+v", f)
	}
	fb.Add("metric-anomaly:vol-V1:writeIO", 0.5)
	if got := fb.MaxScore("metric-anomaly:vol-V1:writeIO"); got != 0.894 {
		t.Fatalf("Add should keep the higher score, got %v", got)
	}
}

func TestExprEvaluation(t *testing.T) {
	fb := NewFactBase()
	fb.Add("metric-anomaly:vol-V1:writeTime", 0.85)
	fb.Add("cos-leaf-frac:vol-V1", 1.0)
	fb.AddTimed("new-volume-in-pool:pool-P1", 1, 100)
	fb.AddTimed("first-unsat-run", 1, 200)

	bind := map[string]string{"$V": "vol-V1", "$P": "pool-P1"}
	cases := []struct {
		src  string
		want bool
	}{
		{"exists(new-volume-in-pool:$P)", true},
		{"exists(new-volume-in-pool:pool-P2)", false},
		{"ge(metric-anomaly:$V:*, 0.8)", true},
		{"ge(metric-anomaly:$V:*, 0.9)", false},
		{"not(exists(record-anomaly:*))", true},
		{"and(exists(new-volume-in-pool:$P), ge(cos-leaf-frac:$V, 0.5))", true},
		{"or(exists(nope), exists(new-volume-in-pool:$P))", true},
		{"before(new-volume-in-pool:$P, first-unsat-run)", true},
		{"before(first-unsat-run, new-volume-in-pool:$P)", false},
		{"before(missing-fact, first-unsat-run)", false},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := e.Eval(fb, bind); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "bogus(x)", "exists()", "ge(a)", "ge(a, b)", "exists(a) trailing",
		"and(exists(a)", "not()",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestCategorize(t *testing.T) {
	if Categorize(80) != High || Categorize(95) != High {
		t.Fatalf("high boundary wrong")
	}
	if Categorize(79.9) != Medium || Categorize(50) != Medium {
		t.Fatalf("medium boundary wrong")
	}
	if Categorize(49.9) != Low || Categorize(0) != Low {
		t.Fatalf("low boundary wrong")
	}
}

func TestDBWeightsValidation(t *testing.T) {
	db := NewDB()
	err := db.Add(Entry{
		Kind: "x", Scope: ScopeGlobal,
		Conditions: []Condition{{Weight: 50, Expr: MustParseExpr("exists(a)")}},
	})
	if err == nil {
		t.Fatalf("weights != 100 should be rejected")
	}
}

func TestBuiltinParsesAndScoresScenario1(t *testing.T) {
	db := Builtin()
	if len(db.Entries()) != 9 {
		t.Fatalf("builtin should have 9 entries, got %d", len(db.Entries()))
	}

	// Scenario 1 facts: misconfiguration events on P1, V1 metric + leaf
	// anomalies, no record-count anomaly.
	fb := NewFactBase()
	fb.AddTimed("new-volume-in-pool:pool-P1", 1, 100)
	fb.AddTimed("new-mapping-in-pool:pool-P1", 1, 120)
	fb.AddTimed("first-unsat-run", 1, 500)
	fb.Add("metric-anomaly:vol-V1:writeIO", 0.894)
	fb.Add("metric-anomaly:vol-V1:writeTime", 0.823)
	fb.Add("metric-anomaly:vol-V2:writeTime", 0.479)
	fb.Add("cos-leaf-frac:vol-V1", 1.0)
	fb.Add("cos-leaf-frac:vol-V2", 1.0/7)
	fb.Add("pool-load-increase:pool-P1", 0.9)
	fb.Add("cos-table:partsupp", 0.95)

	bindings := []Binding{
		{Scope: ScopeVolume, Subject: "vol-V1", Vars: map[string]string{"$V": "vol-V1", "$P": "pool-P1"}},
		{Scope: ScopeVolume, Subject: "vol-V2", Vars: map[string]string{"$V": "vol-V2", "$P": "pool-P2"}},
		{Scope: ScopeTable, Subject: "partsupp", Vars: map[string]string{"$T": "partsupp"}},
		{Scope: ScopeGlobal, Subject: "Q2", Vars: map[string]string{}},
	}
	causes := db.Evaluate(fb, bindings)
	if len(causes) == 0 {
		t.Fatal("no causes evaluated")
	}
	top := causes[0]
	if top.Kind != CauseSANMisconfig || top.Subject != "vol-V1" {
		t.Fatalf("top cause should be SAN misconfiguration on V1, got %v", top)
	}
	if top.Category != High {
		t.Fatalf("scenario 1 should be high confidence, got %v", top)
	}
	// The alternative explanation (external workload on V1) stays below
	// high because the new-volume event refutes it.
	for _, c := range causes {
		if c.Kind == CauseExternalLoad && c.Subject == "vol-V1" && c.Category == High {
			t.Fatalf("external-workload should not reach high when a misconfig event exists: %v", c)
		}
		if c.Subject == "vol-V2" && c.Category != Low {
			t.Fatalf("V2 causes should be low: %v", c)
		}
	}
}

func TestParseRoundTripFixAndRemove(t *testing.T) {
	src := `
# comment
cause test-cause scope=volume fix="do the thing" {
  60: exists(a:$V)
  40: not(exists(b))
}
`
	db, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := db.Entries()[0]
	if e.Fix != "do the thing" || e.Scope != ScopeVolume || len(e.Conditions) != 2 {
		t.Fatalf("parsed entry wrong: %+v", e)
	}
	if n := db.Remove("test-cause"); n != 1 {
		t.Fatalf("Remove: %d", n)
	}
	if len(db.Entries()) != 0 {
		t.Fatalf("entry not removed")
	}
}

// TestRenderParsesQuotedFixStrings pins the Render→Parse round trip
// for fix strings carrying the DSL's own delimiters: quotes and
// backslashes are escaped on render and unescaped on parse, so a
// hand-edited learned file cannot be silently corrupted on re-save.
func TestRenderParsesQuotedFixStrings(t *testing.T) {
	hostile := `say "hi" \ there`
	e := Entry{
		Kind: "quoted", Scope: ScopeGlobal, Fix: hostile,
		Conditions: []Condition{{Weight: 100, Expr: MustParseExpr("ge(x, 0.8)")}},
	}
	db, err := Parse(e.Render())
	if err != nil {
		t.Fatalf("rendered entry does not parse: %v\n%s", err, e.Render())
	}
	if got := db.Entries()[0].Fix; got != hostile {
		t.Fatalf("fix round trip = %q, want %q", got, hostile)
	}
	// Newlines cannot live in the line-based format; they degrade to
	// spaces rather than breaking the block structure.
	e.Fix = "line one\nline two"
	db, err = Parse(e.Render())
	if err != nil {
		t.Fatalf("newline fix broke parsing: %v", err)
	}
	if got := db.Entries()[0].Fix; got != "line one line two" {
		t.Fatalf("newline fix = %q", got)
	}
	if _, err := Parse(`cause x scope=global fix="dangling\` + "\n" + `{` + "\n}"); err == nil {
		t.Fatal("dangling escape should be rejected")
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, src := range []string{
		"cause x {",                       // missing scope
		"cause x scope=bogus {\n}",        // bad scope
		"nonsense",                        // no cause
		"cause x scope=global {\n  abc\n", // no weight
		"cause x scope=global\n",          // missing brace
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", strings.Split(src, "\n")[0])
		}
	}
}

func TestEvaluateDeterministicOrder(t *testing.T) {
	db := Builtin()
	fb := NewFactBase()
	bindings := []Binding{
		{Scope: ScopeVolume, Subject: "vol-V1", Vars: map[string]string{"$V": "vol-V1", "$P": "pool-P1"}},
		{Scope: ScopeVolume, Subject: "vol-V2", Vars: map[string]string{"$V": "vol-V2", "$P": "pool-P2"}},
	}
	a := db.Evaluate(fb, bindings)
	b := db.Evaluate(fb, bindings)
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Subject != b[i].Subject {
			t.Fatalf("evaluation order not deterministic")
		}
	}
}

package symptoms

// Root-cause kind names used by the built-in database and referenced by
// the experiments' ground truth.
const (
	CauseSANMisconfig   = "san-misconfig-contention"
	CauseExternalLoad   = "external-workload-contention"
	CauseDataProperty   = "data-property-change"
	CauseLockContention = "lock-contention"
	CauseRAIDRebuild    = "raid-rebuild-interference"
	CauseDiskFailure    = "disk-failure-degradation"
	CauseCPUSaturation  = "cpu-saturation"
	CausePlanRegression = "plan-regression"
	CauseBufferPool     = "buffer-pool-misconfiguration"
)

// builtinSrc is the in-house symptoms database for query slowdowns, in
// the administrator-editable text format. Fact names are produced by the
// diagnosis workflow (see diag.BuildFacts).
const builtinSrc = `
# --- SAN misconfiguration: a new volume carved into the pool of a volume
# the query depends on, zoned/mapped to another host whose workload now
# contends for the same disks (Table 1, scenario 1).
cause san-misconfig-contention scope=volume fix="migrate the newly created volume to a different pool" {
  25: exists(new-volume-in-pool:$P)
  15: exists(new-mapping-in-pool:$P)
  40: and(ge(metric-anomaly:$V:*, 0.8), ge(cos-leaf-frac:$V, 0.5))
  10: before(new-volume-in-pool:$P, first-unsat-run)
  10: not(exists(record-anomaly:*))
}

# --- External workload contention without a configuration change
# (Table 1, scenario 2). The load increase must show on a *different*
# volume of the pool: a database whose own I/O grew (data-property
# change) raises pool load through its own volume and must not match.
cause external-workload-contention scope=volume fix="throttle or reschedule the external workload" {
  40: and(ge(metric-anomaly:$V:*, 0.8), ge(cos-leaf-frac:$V, 0.5))
  20: and(ge(other-volume-load-increase:$V, 0.8), ge(cos-leaf-frac:$V, 0.5))
  25: not(exists(new-volume-in-pool:$P))
  5: ge(pool-load-increase:$P, 0.8)
  10: not(exists(record-anomaly:*))
}

# --- Data-property change: DML shifted table cardinality/distribution;
# record counts moved, plan did not (Table 1, scenario 3).
cause data-property-change scope=table fix="run ANALYZE to refresh optimizer statistics" {
  35: ge(record-anomaly:$T, 0.8)
  20: exists(dml-event:$T)
  20: ge(cos-table:$T, 0.8)
  15: not(exists(plan-changed))
  10: before(dml-event:$T, first-unsat-run)
}

# --- Table lock contention (Table 1, scenario 5).
cause lock-contention scope=table fix="reschedule the conflicting batch transaction" {
  35: ge(lock-anomaly:db, 0.8)
  25: ge(locks-held-high, 0.8)
  25: ge(cos-table:$T, 0.8)
  15: not(exists(record-anomaly:$T))
}

# --- RAID rebuild stealing disk bandwidth in a pool.
cause raid-rebuild-interference scope=pool fix="lower the rebuild priority" {
  40: exists(raid-rebuild:$P)
  25: ge(disk-anomaly-in-pool:$P, 0.8)
  20: ge(cos-leaf-frac-pool:$P, 0.5)
  15: before(raid-rebuild:$P, first-unsat-run)
}

# --- Disk failure degrading a pool.
cause disk-failure-degradation scope=pool fix="replace the failed disk" {
  60: exists(disk-failed-in-pool:$P)
  20: ge(disk-anomaly-in-pool:$P, 0.8)
  20: ge(cos-leaf-frac-pool:$P, 0.5)
}

# --- Database server CPU saturation. The level condition is the key
# piece of domain knowledge: queries running longer always raise average
# CPU a little (event propagation), but saturation means CPU is actually
# high during the slow runs.
cause cpu-saturation scope=server fix="move the competing process off the database server" {
  25: ge(cpu-anomaly:$S, 0.8)
  40: ge(cpu-level:$S, 0.5)
  20: ge(cos-interior-frac, 0.5)
  15: not(ge(pool-load-increase:*, 0.8))
}

# --- The execution plan itself changed; Module PD attributes the cause.
cause plan-regression scope=global fix="apply plan-change analysis and revert the causing change" {
  100: exists(plan-changed)
}

# --- Buffer pool misconfiguration (the classic database-only-tool
# hypothesis; kept so incomplete-knowledge comparisons are fair). Extra
# block reads only implicate the cache when the data volume itself did
# not grow and no volume-level contention explains them.
cause buffer-pool-misconfiguration scope=global fix="increase shared_buffers" {
  45: ge(buffer-miss-anomaly, 0.8)
  15: ge(cos-leaf-frac-any, 0.5)
  20: not(exists(record-anomaly:*))
  20: not(ge(metric-anomaly:*, 0.8))
}
`

// Builtin returns the in-house symptoms database developed for query
// slowdowns, equivalent to the one the paper's prototype used.
func Builtin() *DB { return MustParse(builtinSrc) }

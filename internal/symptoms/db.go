package symptoms

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scope declares which template bindings an entry expects.
type Scope string

// Entry scopes: the workflow instantiates volume-scoped entries once per
// volume on the plan's dependency paths (binding $V and $P), table-scoped
// entries once per plan table ($T), pool entries per pool ($P), server
// entries per server ($S), and global entries once.
const (
	ScopeVolume Scope = "volume"
	ScopeTable  Scope = "table"
	ScopePool   Scope = "pool"
	ScopeServer Scope = "server"
	ScopeGlobal Scope = "global"
)

// Condition is one weighted presence/absence condition of an entry.
type Condition struct {
	Weight float64
	Expr   Expr
}

// Entry is one root-cause entry: its conditions' weights sum to 100.
type Entry struct {
	// Kind names the root cause, e.g. "san-misconfig-contention".
	Kind string
	// Scope selects the bindings the entry is instantiated with.
	Scope Scope
	// Fix optionally describes the remediation, enabling the self-healing
	// extension of Section 7.
	Fix        string
	Conditions []Condition
}

// Render formats the entry in the administrator-editable DSL accepted by
// Parse. Rendering and re-parsing round-trips the entry (kind, scope,
// fix, weights, condition expressions), which is what lets knowledge
// learned at runtime — mined entries installed by the fleet's learning
// loop — persist across runs as ordinary database text.
func (e Entry) Render() string {
	var b strings.Builder
	b.WriteString("cause " + e.Kind + " scope=" + string(e.Scope))
	if e.Fix != "" {
		b.WriteString(` fix="` + escapeFix(e.Fix) + `"`)
	}
	b.WriteString(" {\n")
	for _, c := range e.Conditions {
		fmt.Fprintf(&b, "  %g: %s\n", c.Weight, c.Expr)
	}
	b.WriteString("}\n")
	return b.String()
}

// Category is the paper's three-way confidence classification.
type Category string

// Confidence categories (Section 4.1, Module SD).
const (
	High   Category = "high"   // score >= 80
	Medium Category = "medium" // 80 > score >= 50
	Low    Category = "low"    // score < 50
)

// Categorize maps a confidence score to its category.
func Categorize(score float64) Category {
	switch {
	case score >= 80:
		return High
	case score >= 50:
		return Medium
	default:
		return Low
	}
}

// CauseInstance is an evaluated root-cause hypothesis: an entry bound to a
// concrete subject.
type CauseInstance struct {
	Kind       string
	Subject    string
	Confidence float64
	Category   Category
	Fix        string
	// TrueConditions lists the conditions that held, for explanations.
	TrueConditions []string
}

// String implements fmt.Stringer.
func (c CauseInstance) String() string {
	return fmt.Sprintf("%s(%s) confidence=%.0f%% [%s]", c.Kind, c.Subject, c.Confidence, c.Category)
}

// DB is a symptoms database. Reads are safe for concurrent use;
// mutations (Add, Remove) must be externally synchronized with readers —
// the fleet layer installs mined entries only while its diagnosis
// service is quiescent.
type DB struct {
	entries []Entry
	version int
}

// NewDB returns an empty symptoms database.
func NewDB(entries ...Entry) *DB { return &DB{entries: entries} }

// Add appends an entry after validating that its weights sum to 100.
func (db *DB) Add(e Entry) error {
	var sum float64
	for _, c := range e.Conditions {
		sum += c.Weight
	}
	if len(e.Conditions) == 0 || sum < 99.5 || sum > 100.5 {
		return fmt.Errorf("symptoms: entry %q weights sum to %.1f, want 100", e.Kind, sum)
	}
	db.entries = append(db.entries, e)
	db.version++
	return nil
}

// Entries returns the entries.
func (db *DB) Entries() []Entry { return db.entries }

// Render formats the whole database in the DSL accepted by Parse, one
// entry per block in database order. Parse(db.Render()) reconstructs an
// equivalent database — the persistence format for learned entries.
func (db *DB) Render() string {
	var b strings.Builder
	for i, e := range db.entries {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(e.Render())
	}
	return b.String()
}

// Version counts the mutations the database has seen. Caches of
// evaluation results key on it so installing or removing an entry
// (the fleet's symptom-learning loop grows the shared database mid-run)
// invalidates stale evaluations instead of silently hiding new entries.
func (db *DB) Version() int { return db.version }

// Remove deletes all entries of the given kind, reporting how many were
// removed. It supports the paper's incomplete-symptoms-database
// experiments.
func (db *DB) Remove(kind string) int {
	var kept []Entry
	removed := 0
	for _, e := range db.entries {
		if e.Kind == kind {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	db.entries = kept
	if removed > 0 {
		db.version++
	}
	return removed
}

// Binding supplies the template variables for one entry instantiation.
type Binding struct {
	Scope   Scope
	Subject string
	Vars    map[string]string
}

// Evaluate scores every entry against the fact base for each binding of
// its scope, returning cause instances sorted by confidence (descending),
// with ties broken by kind then subject for determinism.
func (db *DB) Evaluate(fb *FactBase, bindings []Binding) []CauseInstance {
	var out []CauseInstance
	for _, e := range db.entries {
		for _, b := range bindings {
			if b.Scope != e.Scope {
				continue
			}
			var score float64
			var trueConds []string
			for _, c := range e.Conditions {
				if c.Expr.Eval(fb, b.Vars) {
					score += c.Weight
					trueConds = append(trueConds, c.Expr.String())
				}
			}
			out = append(out, CauseInstance{
				Kind:           e.Kind,
				Subject:        b.Subject,
				Confidence:     score,
				Category:       Categorize(score),
				Fix:            e.Fix,
				TrueConditions: trueConds,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

// Parse reads entries from the text format administrators author:
//
//	cause san-misconfig-contention scope=volume fix="migrate the new volume" {
//	  25: exists(new-volume-in-pool:$P)
//	  20: ge(metric-anomaly:$V:*, 0.8)
//	  ...
//	}
//
// Lines starting with '#' are comments.
func Parse(src string) (*DB, error) {
	db := NewDB()
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			i++
			continue
		}
		if !strings.HasPrefix(line, "cause ") {
			return nil, fmt.Errorf("symptoms: line %d: expected 'cause', got %q", i+1, line)
		}
		header := strings.TrimSuffix(strings.TrimPrefix(line, "cause "), "{")
		entry, err := parseHeader(header)
		if err != nil {
			return nil, fmt.Errorf("symptoms: line %d: %w", i+1, err)
		}
		if !strings.HasSuffix(line, "{") {
			return nil, fmt.Errorf("symptoms: line %d: entry header must end with '{'", i+1)
		}
		i++
		for i < len(lines) {
			body := strings.TrimSpace(lines[i])
			if body == "" || strings.HasPrefix(body, "#") {
				i++
				continue
			}
			if body == "}" {
				i++
				break
			}
			colon := strings.Index(body, ":")
			if colon < 0 {
				return nil, fmt.Errorf("symptoms: line %d: expected 'weight: expr'", i+1)
			}
			w, err := strconv.ParseFloat(strings.TrimSpace(body[:colon]), 64)
			if err != nil {
				return nil, fmt.Errorf("symptoms: line %d: bad weight: %w", i+1, err)
			}
			expr, err := ParseExpr(strings.TrimSpace(body[colon+1:]))
			if err != nil {
				return nil, fmt.Errorf("symptoms: line %d: %w", i+1, err)
			}
			entry.Conditions = append(entry.Conditions, Condition{Weight: w, Expr: expr})
			i++
		}
		if err := db.Add(entry); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// escapeFix makes a fix string representable inside the DSL's
// double-quoted form: backslashes and quotes are escaped, newlines
// (unrepresentable in the line-based format) become spaces.
func escapeFix(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", " ")
}

// unquoteFix scans a fix string starting just past its opening quote,
// honoring backslash escapes, and returns the unescaped text plus the
// number of input bytes consumed (through the closing quote).
func unquoteFix(tail string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(tail); i++ {
		switch c := tail[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(tail) {
				return "", 0, fmt.Errorf("dangling escape in fix string")
			}
			i++
			b.WriteByte(tail[i])
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated fix string")
}

// parseHeader parses `<kind> scope=<scope> [fix="..."]`.
func parseHeader(header string) (Entry, error) {
	e := Entry{}
	rest := strings.TrimSpace(header)
	// Extract fix="..." first since it may contain spaces.
	if idx := strings.Index(rest, `fix="`); idx >= 0 {
		tail := rest[idx+len(`fix="`):]
		fix, consumed, err := unquoteFix(tail)
		if err != nil {
			return e, err
		}
		e.Fix = fix
		rest = strings.TrimSpace(rest[:idx] + tail[consumed:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return e, fmt.Errorf("entry header needs kind and scope, got %q", header)
	}
	e.Kind = fields[0]
	for _, f := range fields[1:] {
		if strings.HasPrefix(f, "scope=") {
			e.Scope = Scope(strings.TrimPrefix(f, "scope="))
		}
	}
	switch e.Scope {
	case ScopeVolume, ScopeTable, ScopePool, ScopeServer, ScopeGlobal:
	default:
		return e, fmt.Errorf("entry %q has invalid scope %q", e.Kind, e.Scope)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for the built-in database.
func MustParse(src string) *DB {
	db, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return db
}

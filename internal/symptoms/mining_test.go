package symptoms

import (
	"strings"
	"testing"
)

// incidentFacts builds a fact base resembling a V1-contention incident.
func incidentFacts(extra ...string) *FactBase {
	fb := NewFactBase()
	fb.Add("metric-anomaly:vol-V1:writeTime", 0.95)
	fb.Add("cos-leaf-frac:vol-V1", 1.0)
	fb.Add("pool-load-increase:pool-P1", 0.9)
	for _, name := range extra {
		fb.Add(name, 0.9)
	}
	return fb
}

func backgroundFacts() *FactBase {
	fb := NewFactBase()
	// Always-on facts that carry no signal.
	fb.Add("pool-load-increase:pool-P1", 0.92)
	return fb
}

func TestMinerProposesDiscriminativeEntry(t *testing.T) {
	var m Miner
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{
			Facts:     incidentFacts(),
			CauseKind: "mystery-contention",
			Subject:   "vol-V1",
		})
	}
	m.AddBackground(backgroundFacts())

	cands := m.Propose(3)
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(cands))
	}
	c := cands[0]
	if c.CauseKind != "mystery-contention-mined" || c.Support != 3 {
		t.Fatalf("candidate wrong: %+v", c)
	}
	// The background-present fact must be filtered out.
	rendered := c.Render()
	if strings.Contains(rendered, "pool-load-increase") {
		t.Fatalf("background fact should be filtered:\n%s", rendered)
	}
	for _, want := range []string{"metric-anomaly:vol-V1:writeTime", "cos-leaf-frac:vol-V1"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("candidate missing %q:\n%s", want, rendered)
		}
	}
	// Weights sum to 100 and the rendered entry parses back.
	var sum float64
	for _, cond := range c.Conditions {
		sum += cond.Weight
	}
	if sum < 99.5 || sum > 100.5 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Strip the comment line; the DSL parser takes the rest.
	lines := strings.SplitN(rendered, "\n", 2)
	if _, err := Parse(lines[1]); err != nil {
		t.Fatalf("mined entry does not parse: %v\n%s", err, rendered)
	}
}

func TestMinerRequiresSupport(t *testing.T) {
	var m Miner
	m.AddIncident(Incident{Facts: incidentFacts(), CauseKind: "rare-cause"})
	if cands := m.Propose(3); len(cands) != 0 {
		t.Fatalf("one incident should not support a proposal: %v", cands)
	}
}

func TestMinerRequiresConsistency(t *testing.T) {
	var m Miner
	// Incidents of the same class with disjoint facts: nothing common.
	fb1 := NewFactBase()
	fb1.Add("fact-a", 0.9)
	fb2 := NewFactBase()
	fb2.Add("fact-b", 0.9)
	fb3 := NewFactBase()
	fb3.Add("fact-c", 0.9)
	for _, fb := range []*FactBase{fb1, fb2, fb3} {
		m.AddIncident(Incident{Facts: fb, CauseKind: "inconsistent"})
	}
	if cands := m.Propose(3); len(cands) != 0 {
		t.Fatalf("disjoint incidents should yield no proposal: %v", cands)
	}
}

// TestMinerSkipsHostileFactNames pins that a fact name carrying DSL
// delimiters is data, not code: Propose must not panic (the old
// MustParseExpr path took the whole fleet coordinator down
// mid-learnStep), and the unparseable names are skipped and counted
// while the rest of the candidate survives with renormalized weights.
func TestMinerSkipsHostileFactNames(t *testing.T) {
	var m Miner
	hostile := []string{"evil)name", "trailing, 0.9) or(x"}
	for i := 0; i < 3; i++ {
		fb := NewFactBase()
		fb.Add("fact-good", 0.9)
		fb.Add("fact-also-good", 0.95)
		for _, name := range hostile {
			fb.Add(name, 0.9)
		}
		m.AddIncident(Incident{Facts: fb, CauseKind: "hostile"})
	}
	cands := m.Propose(3)
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(cands))
	}
	c := cands[0]
	if c.Skipped != len(hostile) {
		t.Fatalf("skipped = %d, want %d", c.Skipped, len(hostile))
	}
	if len(c.Conditions) != 2 {
		t.Fatalf("conditions = %d, want the 2 parseable facts", len(c.Conditions))
	}
	var sum float64
	for _, cond := range c.Conditions {
		sum += cond.Weight
	}
	if sum < 99.5 || sum > 100.5 {
		t.Fatalf("weights renormalize over survivors, sum = %v", sum)
	}
	if !strings.Contains(c.Render(), "2 facts skipped") {
		t.Fatalf("render should surface the skip count:\n%s", c.Render())
	}

	// All facts hostile: no candidate rather than a panic or an empty,
	// uninstallable entry.
	var m2 Miner
	for i := 0; i < 3; i++ {
		fb := NewFactBase()
		fb.Add("evil)only", 0.9)
		m2.AddIncident(Incident{Facts: fb, CauseKind: "all-hostile"})
	}
	if cands := m2.Propose(3); len(cands) != 0 {
		t.Fatalf("all-hostile class should propose nothing, got %v", cands)
	}
}

// TestCandidateRenderParseRoundTrip pins that every installable
// candidate is reloadable: CandidateEntry.Render() → Parse reconstructs
// the entry with the same kind (mined suffix intact), global scope, and
// weights summing to 100 — the contract that lets learned entries
// persist across runs as DSL text.
func TestCandidateRenderParseRoundTrip(t *testing.T) {
	var m Miner
	for i := 0; i < 3; i++ {
		fb := NewFactBase()
		fb.Add("metric-anomaly:vol-V1:writeTime", 0.95)
		fb.Add("cos-leaf-frac:vol-V1", 1.0)
		fb.Add("pool-load-increase:pool-P1", 0.9)
		m.AddIncident(Incident{Facts: fb, CauseKind: "round-trip"})
	}
	cands := m.Propose(3)
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(cands))
	}
	c := cands[0]

	db, err := Parse(c.Render())
	if err != nil {
		t.Fatalf("rendered candidate does not parse: %v\n%s", err, c.Render())
	}
	entries := db.Entries()
	if len(entries) != 1 {
		t.Fatalf("round trip produced %d entries, want 1", len(entries))
	}
	got, want := entries[0], c.Entry()
	if got.Kind != want.Kind || !IsMined(got.Kind) {
		t.Errorf("kind = %q, want mined %q", got.Kind, want.Kind)
	}
	if got.Scope != ScopeGlobal {
		t.Errorf("scope = %q, want global", got.Scope)
	}
	if got.Fix != want.Fix {
		t.Errorf("fix = %q, want %q", got.Fix, want.Fix)
	}
	if len(got.Conditions) != len(want.Conditions) {
		t.Fatalf("conditions = %d, want %d", len(got.Conditions), len(want.Conditions))
	}
	for i := range got.Conditions {
		if got.Conditions[i].Weight != want.Conditions[i].Weight {
			t.Errorf("condition %d weight = %v, want %v (must survive %%g formatting exactly)",
				i, got.Conditions[i].Weight, want.Conditions[i].Weight)
		}
		if got.Conditions[i].Expr.String() != want.Conditions[i].Expr.String() {
			t.Errorf("condition %d expr = %q, want %q",
				i, got.Conditions[i].Expr, want.Conditions[i].Expr)
		}
	}
}

// TestDBRenderParseRoundTrip pins the database-level persistence
// format, including the built-in entries' scopes, fixes, and every
// expression form (exists, ge, not, and, or, before).
func TestDBRenderParseRoundTrip(t *testing.T) {
	orig := Builtin()
	db, err := Parse(orig.Render())
	if err != nil {
		t.Fatalf("Builtin().Render() does not parse: %v", err)
	}
	a, b := orig.Entries(), db.Entries()
	if len(a) != len(b) {
		t.Fatalf("round trip produced %d entries, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Scope != b[i].Scope || a[i].Fix != b[i].Fix {
			t.Errorf("entry %d header drifted: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Render() != b[i].Render() {
			t.Errorf("entry %s not fixed-point under render/parse:\n%s\nvs\n%s",
				a[i].Kind, a[i].Render(), b[i].Render())
		}
	}
}

func TestMinerSeparatesClasses(t *testing.T) {
	var m Miner
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{Facts: incidentFacts(), CauseKind: "class-a"})
	}
	lockFacts := func() *FactBase {
		fb := NewFactBase()
		fb.Add("lock-anomaly:db", 0.95)
		fb.Add("cos-table:partsupp", 0.9)
		return fb
	}
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{Facts: lockFacts(), CauseKind: "class-b"})
	}
	cands := m.Propose(3)
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	// Deterministic order by kind.
	if cands[0].CauseKind != "class-a-mined" || cands[1].CauseKind != "class-b-mined" {
		t.Fatalf("candidate order: %v, %v", cands[0].CauseKind, cands[1].CauseKind)
	}
	if strings.Contains(cands[1].Render(), "vol-V1") {
		t.Fatalf("class-b candidate should not carry class-a facts")
	}
}

package symptoms

import (
	"strings"
	"testing"
)

// incidentFacts builds a fact base resembling a V1-contention incident.
func incidentFacts(extra ...string) *FactBase {
	fb := NewFactBase()
	fb.Add("metric-anomaly:vol-V1:writeTime", 0.95)
	fb.Add("cos-leaf-frac:vol-V1", 1.0)
	fb.Add("pool-load-increase:pool-P1", 0.9)
	for _, name := range extra {
		fb.Add(name, 0.9)
	}
	return fb
}

func backgroundFacts() *FactBase {
	fb := NewFactBase()
	// Always-on facts that carry no signal.
	fb.Add("pool-load-increase:pool-P1", 0.92)
	return fb
}

func TestMinerProposesDiscriminativeEntry(t *testing.T) {
	var m Miner
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{
			Facts:     incidentFacts(),
			CauseKind: "mystery-contention",
			Subject:   "vol-V1",
		})
	}
	m.AddBackground(backgroundFacts())

	cands := m.Propose(3)
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(cands))
	}
	c := cands[0]
	if c.CauseKind != "mystery-contention-mined" || c.Support != 3 {
		t.Fatalf("candidate wrong: %+v", c)
	}
	// The background-present fact must be filtered out.
	rendered := c.Render()
	if strings.Contains(rendered, "pool-load-increase") {
		t.Fatalf("background fact should be filtered:\n%s", rendered)
	}
	for _, want := range []string{"metric-anomaly:vol-V1:writeTime", "cos-leaf-frac:vol-V1"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("candidate missing %q:\n%s", want, rendered)
		}
	}
	// Weights sum to 100 and the rendered entry parses back.
	var sum float64
	for _, cond := range c.Conditions {
		sum += cond.Weight
	}
	if sum < 99.5 || sum > 100.5 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Strip the comment line; the DSL parser takes the rest.
	lines := strings.SplitN(rendered, "\n", 2)
	if _, err := Parse(lines[1]); err != nil {
		t.Fatalf("mined entry does not parse: %v\n%s", err, rendered)
	}
}

func TestMinerRequiresSupport(t *testing.T) {
	var m Miner
	m.AddIncident(Incident{Facts: incidentFacts(), CauseKind: "rare-cause"})
	if cands := m.Propose(3); len(cands) != 0 {
		t.Fatalf("one incident should not support a proposal: %v", cands)
	}
}

func TestMinerRequiresConsistency(t *testing.T) {
	var m Miner
	// Incidents of the same class with disjoint facts: nothing common.
	fb1 := NewFactBase()
	fb1.Add("fact-a", 0.9)
	fb2 := NewFactBase()
	fb2.Add("fact-b", 0.9)
	fb3 := NewFactBase()
	fb3.Add("fact-c", 0.9)
	for _, fb := range []*FactBase{fb1, fb2, fb3} {
		m.AddIncident(Incident{Facts: fb, CauseKind: "inconsistent"})
	}
	if cands := m.Propose(3); len(cands) != 0 {
		t.Fatalf("disjoint incidents should yield no proposal: %v", cands)
	}
}

func TestMinerSeparatesClasses(t *testing.T) {
	var m Miner
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{Facts: incidentFacts(), CauseKind: "class-a"})
	}
	lockFacts := func() *FactBase {
		fb := NewFactBase()
		fb.Add("lock-anomaly:db", 0.95)
		fb.Add("cos-table:partsupp", 0.9)
		return fb
	}
	for i := 0; i < 3; i++ {
		m.AddIncident(Incident{Facts: lockFacts(), CauseKind: "class-b"})
	}
	cands := m.Propose(3)
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	// Deterministic order by kind.
	if cands[0].CauseKind != "class-a-mined" || cands[1].CauseKind != "class-b-mined" {
		t.Fatalf("candidate order: %v, %v", cands[0].CauseKind, cands[1].CauseKind)
	}
	if strings.Contains(cands[1].Render(), "vol-V1") {
		t.Fatalf("class-b candidate should not carry class-a facts")
	}
}

package symptoms

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's Section 7 has mined candidates "checked by an expert"
// before they join the symptoms database. Validator is the automated
// half of that check: before a candidate is installed (or even shown to
// an operator), it is replayed against a corpus of healthy-period fact
// bases — where it must never fire — and against held-out confirmed
// incidents of its cause class — where it must still score High. A
// candidate that encodes always-present facts as "discriminative"
// conditions fails the healthy replay; one that overfits the incidents
// it was mined from fails the hold-out replay. Codebook correlation
// (Yemini et al.) makes the same point: a codebook entry is only
// trustworthy when its symptoms distinguish the problem from baseline
// behavior.

// Verdict is the outcome of validating one candidate.
type Verdict string

const (
	// VerdictPass: the candidate survived both replays and is safe to
	// install (or hand to the operator for the final ack).
	VerdictPass Verdict = "pass"
	// VerdictReject: a replay failed; the reason names the evidence.
	VerdictReject Verdict = "reject"
	// VerdictDefer: the validator does not yet hold enough evidence
	// (healthy corpus or held-out incidents below the minimums); the
	// candidate stays pending and is re-validated as evidence accrues.
	VerdictDefer Verdict = "defer"
)

// ConditionCheck is one condition's replay record — the per-condition
// reason trail of a Validation.
type ConditionCheck struct {
	Expr   string
	Weight float64
	// HealthyHits counts healthy-period fact bases on which the
	// condition held. Any hit means the condition is not discriminative:
	// it asserts something that is also true when nothing is wrong.
	HealthyHits int
	// HoldoutMisses counts held-out incidents of the candidate's class
	// on which the condition did NOT hold — evidence of overfitting to
	// the mined incidents.
	HoldoutMisses int
}

// Validation is the typed report of one candidate's validation.
type Validation struct {
	Kind    string
	Verdict Verdict
	// Reason explains a reject or defer; empty on pass.
	Reason string
	// Healthy is the corpus size replayed; FalsePositives counts the
	// healthy fact bases on which the whole entry scored High — the
	// false-positive rate that must be 0.
	Healthy        int
	FalsePositives int
	// Holdout is the number of held-out incidents replayed; HoldoutHigh
	// how many still scored High.
	Holdout     int
	HoldoutHigh int
	// Conditions is the per-condition replay record, in entry order.
	Conditions []ConditionCheck
}

// Validator replays candidate entries against evidence of normal
// operation. It is not safe for concurrent use; the fleet layer drives
// it from its single coordinator under the fleet mutex.
type Validator struct {
	// MinHealthy is the healthy-corpus size required before a candidate
	// can be validated at all (default 1): with no picture of normal
	// operation, "discriminative" is unfalsifiable.
	MinHealthy int
	// MinHoldout is the number of held-out confirmed incidents of the
	// candidate's class required before validation (default 1).
	MinHoldout int

	// healthy is the corpus, deduplicated by fingerprint so the same
	// quiet period captured twice carries no extra weight.
	healthy map[string]*FactBase
	// holdout maps a base (unmined) cause kind to its held-out
	// confirmed incidents.
	holdout map[string][]Incident
}

// AddHealthy records a healthy-period fact base, reporting whether it
// was new (false when an identical base was already in the corpus).
func (v *Validator) AddHealthy(fb *FactBase) bool {
	if fb == nil {
		return false
	}
	if v.healthy == nil {
		v.healthy = make(map[string]*FactBase)
	}
	fp := fb.Fingerprint()
	if _, ok := v.healthy[fp]; ok {
		return false
	}
	v.healthy[fp] = fb
	return true
}

// AddHoldout records a confirmed incident withheld from mining, to be
// replayed against candidates of its cause kind.
func (v *Validator) AddHoldout(inc Incident) {
	if v.holdout == nil {
		v.holdout = make(map[string][]Incident)
	}
	v.holdout[inc.CauseKind] = append(v.holdout[inc.CauseKind], inc)
}

// HealthyCount returns the corpus size.
func (v *Validator) HealthyCount() int { return len(v.healthy) }

// HoldoutCount returns the held-out incidents recorded for a base kind.
func (v *Validator) HoldoutCount(kind string) int { return len(v.holdout[kind]) }

func (v *Validator) minHealthy() int {
	if v.MinHealthy > 0 {
		return v.MinHealthy
	}
	return 1
}

func (v *Validator) minHoldout() int {
	if v.MinHoldout > 0 {
		return v.MinHoldout
	}
	return 1
}

// bases returns the corpus in fingerprint order, so every replay walks
// it deterministically.
func (v *Validator) bases() []*FactBase {
	fps := make([]string, 0, len(v.healthy))
	for fp := range v.healthy {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	out := make([]*FactBase, len(fps))
	for i, fp := range fps {
		out[i] = v.healthy[fp]
	}
	return out
}

// scoreOn evaluates the candidate's conditions against a fact base
// (mined conditions reference concrete fact names, so no bindings).
func scoreOn(conds []Condition, fb *FactBase) float64 {
	var score float64
	for _, c := range conds {
		if c.Expr.Eval(fb, nil) {
			score += c.Weight
		}
	}
	return score
}

// Validate replays the candidate and returns the report. The verdict is
// deterministic in the validator's contents: every count is an
// order-independent aggregate and the corpus is walked in fingerprint
// order.
func (v *Validator) Validate(c CandidateEntry) Validation {
	out := Validation{
		Kind:    c.CauseKind,
		Healthy: len(v.healthy),
	}
	holdout := v.holdout[BaseKind(c.CauseKind)]
	out.Holdout = len(holdout)
	for _, cond := range c.Conditions {
		out.Conditions = append(out.Conditions, ConditionCheck{
			Expr: cond.Expr.String(), Weight: cond.Weight,
		})
	}

	if out.Healthy < v.minHealthy() {
		out.Verdict = VerdictDefer
		out.Reason = fmt.Sprintf("awaiting healthy corpus (%d/%d fact bases)",
			out.Healthy, v.minHealthy())
		return out
	}
	if out.Holdout < v.minHoldout() {
		out.Verdict = VerdictDefer
		out.Reason = fmt.Sprintf("awaiting held-out incidents (%d/%d)",
			out.Holdout, v.minHoldout())
		return out
	}

	// Healthy replay: the entry must never reach High, and no single
	// condition may hold — a condition true during normal operation is
	// background, not a symptom.
	for _, fb := range v.bases() {
		if Categorize(scoreOn(c.Conditions, fb)) == High {
			out.FalsePositives++
		}
		for i, cond := range c.Conditions {
			if cond.Expr.Eval(fb, nil) {
				out.Conditions[i].HealthyHits++
			}
		}
	}
	// Hold-out replay: the entry must still score High on confirmed
	// incidents it was not mined from.
	for _, inc := range holdout {
		if Categorize(scoreOn(c.Conditions, inc.Facts)) == High {
			out.HoldoutHigh++
		}
		for i, cond := range c.Conditions {
			if !cond.Expr.Eval(inc.Facts, nil) {
				out.Conditions[i].HoldoutMisses++
			}
		}
	}

	if out.FalsePositives > 0 {
		out.Verdict = VerdictReject
		out.Reason = fmt.Sprintf("healthy-corpus false positives: %d/%d", out.FalsePositives, out.Healthy)
		return out
	}
	if names := out.backgroundConditions(); len(names) > 0 {
		out.Verdict = VerdictReject
		out.Reason = fmt.Sprintf("conditions hold during healthy periods: %s",
			strings.Join(names, ", "))
		return out
	}
	if out.HoldoutHigh < out.Holdout {
		out.Verdict = VerdictReject
		out.Reason = fmt.Sprintf("held-out incident replay: %d/%d below high confidence",
			out.Holdout-out.HoldoutHigh, out.Holdout)
		return out
	}
	out.Verdict = VerdictPass
	return out
}

// backgroundConditions lists the conditions that held on at least one
// healthy fact base, in entry order.
func (v Validation) backgroundConditions() []string {
	var out []string
	for _, c := range v.Conditions {
		if c.HealthyHits > 0 {
			out = append(out, c.Expr)
		}
	}
	return out
}

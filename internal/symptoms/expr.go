package symptoms

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expr is a parsed symptom expression, evaluated against a fact base with
// template bindings ($V, $P, $T, $S) substituted into patterns.
type Expr interface {
	Eval(fb *FactBase, bind map[string]string) bool
	String() string
}

// existsExpr: exists(pattern) — some matching fact has score > 0.
type existsExpr struct{ pattern string }

func (e existsExpr) Eval(fb *FactBase, bind map[string]string) bool {
	return fb.Exists(substitute(e.pattern, bind))
}
func (e existsExpr) String() string { return fmt.Sprintf("exists(%s)", e.pattern) }

// geExpr: ge(pattern, c) — the max score among matching facts is >= c.
type geExpr struct {
	pattern string
	c       float64
}

func (e geExpr) Eval(fb *FactBase, bind map[string]string) bool {
	return fb.MaxScore(substitute(e.pattern, bind)) >= e.c
}
func (e geExpr) String() string { return fmt.Sprintf("ge(%s, %g)", e.pattern, e.c) }

// notExpr: not(expr).
type notExpr struct{ inner Expr }

func (e notExpr) Eval(fb *FactBase, bind map[string]string) bool {
	return !e.inner.Eval(fb, bind)
}
func (e notExpr) String() string { return fmt.Sprintf("not(%s)", e.inner) }

// andExpr: and(e1, e2, ...).
type andExpr struct{ args []Expr }

func (e andExpr) Eval(fb *FactBase, bind map[string]string) bool {
	for _, a := range e.args {
		if !a.Eval(fb, bind) {
			return false
		}
	}
	return true
}
func (e andExpr) String() string { return "and(" + joinExprs(e.args) + ")" }

// orExpr: or(e1, e2, ...).
type orExpr struct{ args []Expr }

func (e orExpr) Eval(fb *FactBase, bind map[string]string) bool {
	for _, a := range e.args {
		if a.Eval(fb, bind) {
			return true
		}
	}
	return false
}
func (e orExpr) String() string { return "or(" + joinExprs(e.args) + ")" }

// beforeExpr: before(p1, p2) — the earliest timed fact matching p1
// precedes the earliest timed fact matching p2 (both must exist). This is
// the paper's "complex symptoms with temporal properties".
type beforeExpr struct{ p1, p2 string }

func (e beforeExpr) Eval(fb *FactBase, bind map[string]string) bool {
	t1, ok1 := fb.EarliestT(substitute(e.p1, bind))
	t2, ok2 := fb.EarliestT(substitute(e.p2, bind))
	return ok1 && ok2 && t1 < t2
}
func (e beforeExpr) String() string { return fmt.Sprintf("before(%s, %s)", e.p1, e.p2) }

func joinExprs(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// substitute replaces $-prefixed template variables in a pattern.
// Variables apply longest-first so a binding for $V cannot mangle an
// occurrence of $VOL, and ties break lexicographically so the result
// never depends on map iteration order.
func substitute(pattern string, bind map[string]string) string {
	if !strings.Contains(pattern, "$") {
		return pattern
	}
	keys := make([]string, 0, len(bind))
	for k := range bind {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) > len(keys[j])
		}
		return keys[i] < keys[j]
	})
	out := pattern
	for _, k := range keys {
		out = strings.ReplaceAll(out, k, bind[k])
	}
	return out
}

// ParseExpr parses one symptom expression, e.g.
//
//	ge(metric-anomaly:$V:*, 0.8)
//	and(exists(new-volume-in-pool:$P), not(exists(record-anomaly:*)))
//	before(event:VolumeCreated:*, first-unsat-run)
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	e, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("symptoms: parsing %q: %w", src, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("symptoms: parsing %q: trailing input at %d", src, p.pos)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics; for built-in entries.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// maxExprDepth bounds expression nesting so hostile input (a long
// not(not(not(... chain) fails with an error instead of exhausting the
// goroutine stack. Built-in and mined expressions nest two or three deep.
const maxExprDepth = 64

type exprParser struct {
	src   string
	pos   int
	depth int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// ident reads a function name or pattern token.
func (p *exprParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *exprParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *exprParser) parse() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, fmt.Errorf("expression nested deeper than %d at offset %d", maxExprDepth, p.pos)
	}
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("empty expression at offset %d", p.pos)
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	switch name {
	case "exists":
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return existsExpr{pattern: pat}, nil
	case "ge":
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		p.skipSpace()
		num := p.ident()
		c, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q", num)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return geExpr{pattern: pat, c: c}, nil
	case "not":
		inner, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	case "and", "or":
		var args []Expr
		for {
			arg, err := p.parse()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if name == "and" {
			return andExpr{args: args}, nil
		}
		return orExpr{args: args}, nil
	case "before":
		p1, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		p2, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return beforeExpr{p1: p1, p2: p2}, nil
	default:
		return nil, fmt.Errorf("unknown function %q", name)
	}
}

// pattern reads a fact pattern: everything up to the next ',' or ')'.
// Fact names may contain spaces (metric names like "Blocks Read"), so the
// pattern token is delimiter-terminated rather than space-terminated.
func (p *exprParser) pattern() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ',' && p.src[p.pos] != ')' {
		p.pos++
	}
	pat := strings.TrimRight(p.src[start:p.pos], " \t")
	if pat == "" {
		return "", fmt.Errorf("empty pattern at offset %d", start)
	}
	return pat, nil
}

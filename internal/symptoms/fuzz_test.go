package symptoms

import (
	"strings"
	"testing"
)

// FuzzParseExpr hammers the condition-expression parser with hostile
// input. ParseExpr must never panic (hostile fact names already bit the
// fleet coordinator once, via Miner.Propose), must refuse pathological
// nesting instead of overflowing the stack, and any expression it
// accepts must round-trip: String() re-parses to an identical
// rendering — the property Parse and validation reports rely on when
// they serialize expressions back out.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"exists(new-volume-in-pool:$P)",
		"ge(metric-anomaly:$V:*, 0.8)",
		"and(ge(metric-anomaly:$V:*, 0.8), ge(cos-leaf-frac:$V, 0.5))",
		"or(exists(a), exists(b), exists(c))",
		"not(exists(record-anomaly:*))",
		"before(new-volume-in-pool:$P, first-unsat-run)",
		"ge(lock-anomaly:db, 0.8)",
		"exists(metric with spaces:$S)",
		"and(exists(a)", // unterminated
		"ge(x, nope)",   // bad threshold
		"frob(a)",       // unknown function
		"",
		strings.Repeat("not(", 80) + "exists(a)" + strings.Repeat(")", 80),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		rendered := e.String()
		e2, err := ParseExpr(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if got := e2.String(); got != rendered {
			t.Fatalf("round-trip not stable: %q -> %q -> %q", src, rendered, got)
		}
	})
}

// TestParseExprDepthLimit pins the anti-stack-overflow guard the fuzz
// target depends on: nesting past maxExprDepth is an error, nesting at
// the limit still parses.
func TestParseExprDepthLimit(t *testing.T) {
	deep := strings.Repeat("not(", maxExprDepth) + "exists(a)" + strings.Repeat(")", maxExprDepth)
	if _, err := ParseExpr(deep); err == nil ||
		!strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("depth %d should exceed the limit: %v", maxExprDepth+1, err)
	}
	ok := strings.Repeat("not(", maxExprDepth-1) + "exists(a)" + strings.Repeat(")", maxExprDepth-1)
	if _, err := ParseExpr(ok); err != nil {
		t.Fatalf("depth %d should parse: %v", maxExprDepth, err)
	}
}

package dbsys

import (
	"sort"
	"sync"

	"diads/internal/simtime"
)

// LockMode distinguishes shared from exclusive table locks.
type LockMode int

// Lock modes.
const (
	LockShared LockMode = iota
	LockExclusive
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	if m == LockExclusive {
		return "EXCLUSIVE"
	}
	return "SHARED"
}

// Hold is one table lock held over an interval by some transaction.
type Hold struct {
	Table  string
	Iv     simtime.Interval
	Mode   LockMode
	Holder string
}

// LockManager models table-level lock contention: external transactions
// register holds, and query execution asks how long a read arriving at
// time t must wait. It is safe for concurrent use.
type LockManager struct {
	mu    sync.RWMutex
	holds []Hold
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager { return &LockManager{} }

// AddHold registers an external lock hold.
func (lm *LockManager) AddHold(h Hold) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.holds = append(lm.holds, h)
}

// WaitTime returns how long a shared (read) lock request on table arriving
// at time t waits: until the last conflicting exclusive hold covering t
// releases. Readers do not conflict with shared holds.
func (lm *LockManager) WaitTime(table string, t simtime.Time) simtime.Duration {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	var wait simtime.Duration
	for _, h := range lm.holds {
		if h.Table != table || h.Mode != LockExclusive {
			continue
		}
		if h.Iv.Contains(t) {
			if w := h.Iv.End.Sub(t); w > wait {
				wait = w
			}
		}
	}
	return wait
}

// HeldAt returns the number of locks held on any table at time t.
func (lm *LockManager) HeldAt(t simtime.Time) int {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	n := 0
	for _, h := range lm.holds {
		if h.Iv.Contains(t) {
			n++
		}
	}
	return n
}

// Holds returns all registered holds sorted by start time.
func (lm *LockManager) Holds() []Hold {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	out := make([]Hold, len(lm.holds))
	copy(out, lm.holds)
	sort.Slice(out, func(i, j int) bool { return out[i].Iv.Start < out[j].Iv.Start })
	return out
}

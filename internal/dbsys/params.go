package dbsys

import (
	"fmt"
	"sort"
	"sync"
)

// Well-known configuration parameter names (PostgreSQL-flavoured).
const (
	ParamWorkMemKB          = "work_mem"
	ParamRandomPageCost     = "random_page_cost"
	ParamSeqPageCost        = "seq_page_cost"
	ParamCPUTupleCost       = "cpu_tuple_cost"
	ParamEffectiveCacheMB   = "effective_cache_size"
	ParamSharedBuffersMB    = "shared_buffers"
	ParamEnableIndexScan    = "enable_indexscan"
	ParamEnableHashJoin     = "enable_hashjoin"
	ParamEnableMergeJoin    = "enable_mergejoin"
	ParamEnableNestLoop     = "enable_nestloop"
	ParamEnableSort         = "enable_sort"
	ParamStatsTargetPerCent = "default_statistics_target"
)

// Params is the database configuration: a set of named numeric parameters
// (booleans are 0/1). The optimizer's plan choice is sensitive to several
// of them, which is what lets Module PD attribute plan changes to
// parameter changes. Params is safe for concurrent use.
type Params struct {
	mu     sync.RWMutex
	values map[string]float64
}

// DefaultParams returns PostgreSQL-like defaults.
func DefaultParams() *Params {
	return &Params{values: map[string]float64{
		ParamWorkMemKB:          4096,
		ParamRandomPageCost:     4.0,
		ParamSeqPageCost:        1.0,
		ParamCPUTupleCost:       0.01,
		ParamEffectiveCacheMB:   1024,
		ParamSharedBuffersMB:    256,
		ParamEnableIndexScan:    1,
		ParamEnableHashJoin:     1,
		ParamEnableMergeJoin:    1,
		ParamEnableNestLoop:     1,
		ParamEnableSort:         1,
		ParamStatsTargetPerCent: 100,
	}}
}

// Get returns the value of a parameter; unknown parameters read as 0.
func (p *Params) Get(name string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.values[name]
}

// Bool interprets a parameter as a flag.
func (p *Params) Bool(name string) bool { return p.Get(name) != 0 }

// Set changes a parameter and returns its previous value.
func (p *Params) Set(name string, v float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.values[name]
	p.values[name] = v
	return old
}

// Clone returns an independent copy; Module PD replays candidate changes
// against clones to test whether a parameter change explains a plan
// change.
func (p *Params) Clone() *Params {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp := &Params{values: make(map[string]float64, len(p.values))}
	for k, v := range p.values {
		cp.values[k] = v
	}
	return cp
}

// Names returns the parameter names, sorted.
func (p *Params) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.values))
	for k := range p.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String implements fmt.Stringer.
func (p *Params) String() string {
	var b []byte
	for i, n := range p.Names() {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%g", n, p.Get(n))...)
	}
	return string(b)
}

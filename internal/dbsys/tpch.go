package dbsys

import "diads/internal/topology"

// TPC-H table names used throughout the reproduction.
const (
	TPart     = "part"
	TSupplier = "supplier"
	TPartsupp = "partsupp"
	TCustomer = "customer"
	TOrders   = "orders"
	TLineitem = "lineitem"
	TNation   = "nation"
	TRegion   = "region"
)

// Index names for the TPC-H catalog.
const (
	IdxPartKey        = "part_pkey"
	IdxPartType       = "part_type_idx"
	IdxSupplierKey    = "supplier_pkey"
	IdxPartsuppPart   = "partsupp_partkey_idx"
	IdxPartsuppSupp   = "partsupp_suppkey_idx"
	IdxNationKey      = "nation_pkey"
	IdxRegionKey      = "region_pkey"
	IdxOrdersKey      = "orders_pkey"
	IdxLineitemOrder  = "lineitem_orderkey_idx"
	IdxCustomerKey    = "customer_pkey"
	IdxOrdersCustomer = "orders_custkey_idx"
)

// Tablespace names: ts_partsupp lives on volume V1, ts_main on V2,
// matching the Figure 1 layout where the query's two "victim" leaf
// operators read V1 and the remaining seven read V2.
const (
	TSPartsupp = "ts_partsupp"
	TSMain     = "ts_main"
)

// NewTPCHCatalog builds a TPC-H catalog at the given scale factor with
// tablespaces mapped to the two SAN volumes. Row widths follow the TPC-H
// specification's average tuple sizes.
func NewTPCHCatalog(scale float64, volV1, volV2 topology.ID) *Catalog {
	c := NewCatalog()
	c.AddTablespace(TSPartsupp, volV1, SystemManaged)
	c.AddTablespace(TSMain, volV2, SystemManaged)

	rows := func(base float64) int64 {
		n := int64(base * scale)
		if n < 1 {
			n = 1
		}
		return n
	}
	mustAdd := func(err error) {
		if err != nil {
			panic(err) // static schema; failure is a programming error
		}
	}
	mustAdd(c.AddTable(TPart, TSMain, rows(200_000), 155))
	mustAdd(c.AddTable(TSupplier, TSMain, rows(10_000), 159))
	mustAdd(c.AddTable(TPartsupp, TSPartsupp, rows(800_000), 144))
	mustAdd(c.AddTable(TCustomer, TSMain, rows(150_000), 179))
	mustAdd(c.AddTable(TOrders, TSMain, rows(1_500_000), 104))
	mustAdd(c.AddTable(TLineitem, TSMain, rows(6_000_000), 112))
	mustAdd(c.AddTable(TNation, TSMain, 25, 128))
	mustAdd(c.AddTable(TRegion, TSMain, 5, 124))

	mustAdd(c.AddIndex(IdxPartKey, TPart, "p_partkey", 1.0))
	mustAdd(c.AddIndex(IdxPartType, TPart, "p_type", 0.2))
	mustAdd(c.AddIndex(IdxSupplierKey, TSupplier, "s_suppkey", 1.0))
	mustAdd(c.AddIndex(IdxPartsuppPart, TPartsupp, "ps_partkey", 0.9))
	mustAdd(c.AddIndex(IdxPartsuppSupp, TPartsupp, "ps_suppkey", 0.1))
	mustAdd(c.AddIndex(IdxNationKey, TNation, "n_nationkey", 1.0))
	mustAdd(c.AddIndex(IdxRegionKey, TRegion, "r_regionkey", 1.0))
	mustAdd(c.AddIndex(IdxOrdersKey, TOrders, "o_orderkey", 1.0))
	mustAdd(c.AddIndex(IdxLineitemOrder, TLineitem, "l_orderkey", 0.95))
	mustAdd(c.AddIndex(IdxCustomerKey, TCustomer, "c_custkey", 1.0))
	mustAdd(c.AddIndex(IdxOrdersCustomer, TOrders, "o_custkey", 0.3))
	return c
}

package dbsys

import "math"

// CacheModel approximates the database buffer cache: per-table hit ratios
// derived from the ratio of cache capacity to table working-set size. Hot
// small relations (nation, region) hit nearly always; large relations
// (partsupp, lineitem) mostly miss, sending their reads to the SAN — which
// is what makes their leaf operators sensitive to storage contention.
type CacheModel struct {
	// SizeMB is the buffer cache capacity.
	SizeMB float64
	// MaxHit bounds the achievable hit ratio (checkpoints and scans always
	// cause some misses).
	MaxHit float64
}

// NewCacheModel returns a cache model with the given capacity.
func NewCacheModel(sizeMB float64) *CacheModel {
	return &CacheModel{SizeMB: sizeMB, MaxHit: 0.995}
}

// HitRatio returns the expected buffer hit ratio for reads of the table.
// Index-order access (indexed=true) concentrates on hot pages and enjoys a
// higher effective ratio than full scans of the same relation.
func (cm *CacheModel) HitRatio(t *Table, indexed bool) float64 {
	if cm.SizeMB <= 0 {
		return 0
	}
	tableMB := float64(t.Pages()) * PageSizeKB / 1024
	if tableMB <= 0 {
		return cm.MaxHit
	}
	ratio := cm.SizeMB / tableMB
	if indexed {
		// Index traversals revisit upper-level pages constantly.
		ratio *= 3
	}
	h := 1 - math.Exp(-ratio)
	return math.Min(h, cm.MaxHit)
}

// MissRatio is 1 - HitRatio.
func (cm *CacheModel) MissRatio(t *Table, indexed bool) float64 {
	return 1 - cm.HitRatio(t, indexed)
}

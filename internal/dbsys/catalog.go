// Package dbsys is the database-system substrate of the DIADS
// reproduction: a TPC-H catalog with tablespace-to-SAN-volume mappings,
// optimizer-visible statistics (which can go stale), PostgreSQL-style
// configuration parameters, a buffer-cache model, and a table lock
// manager. The execution simulator (internal/exec) and the optimizer
// (internal/opt) both run against this substrate.
package dbsys

import (
	"fmt"
	"sort"
	"sync"

	"diads/internal/topology"
)

// PageSizeKB is the database page size.
const PageSizeKB = 8

// StorageMode distinguishes the two tablespace configurations the paper
// describes in Section 3.1.2.
type StorageMode string

// Tablespace storage modes.
const (
	SystemManaged   StorageMode = "SMS" // file system on a SAN volume
	DatabaseManaged StorageMode = "DMS" // raw SAN volume
)

// Tablespace maps database storage to a SAN volume.
type Tablespace struct {
	Name   string
	Volume topology.ID
	Mode   StorageMode
}

// Table describes one relation and its current (actual) data properties.
type Table struct {
	Name       string
	Tablespace string
	Rows       int64
	RowWidthB  int
}

// Pages returns the number of heap pages the table occupies.
func (t *Table) Pages() int64 {
	bytesPerPage := int64(PageSizeKB * 1024)
	total := t.Rows * int64(t.RowWidthB)
	p := total / bytesPerPage
	if total%bytesPerPage != 0 || p == 0 {
		p++
	}
	return p
}

// Index describes a secondary or primary index.
type Index struct {
	Name    string
	Table   string
	Column  string
	Dropped bool
	// Correlation in [0,1]: 1 means heap fetches through this index are
	// fully sequential, 0 fully random.
	Correlation float64
}

// Catalog is the database schema plus actual data properties. It is safe
// for concurrent use.
type Catalog struct {
	mu          sync.RWMutex
	tables      map[string]*Table
	indexes     map[string]*Index
	tablespaces map[string]*Tablespace
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:      make(map[string]*Table),
		indexes:     make(map[string]*Index),
		tablespaces: make(map[string]*Tablespace),
	}
}

// AddTablespace registers a tablespace on a SAN volume.
func (c *Catalog) AddTablespace(name string, volume topology.ID, mode StorageMode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tablespaces[name] = &Tablespace{Name: name, Volume: volume, Mode: mode}
}

// AddTable registers a table.
func (c *Catalog) AddTable(name, tablespace string, rows int64, rowWidthB int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tablespaces[tablespace]; !ok {
		return fmt.Errorf("dbsys: table %q references unknown tablespace %q", name, tablespace)
	}
	c.tables[name] = &Table{Name: name, Tablespace: tablespace, Rows: rows, RowWidthB: rowWidthB}
	return nil
}

// AddIndex registers an index.
func (c *Catalog) AddIndex(name, table, column string, correlation float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[table]; !ok {
		return fmt.Errorf("dbsys: index %q references unknown table %q", name, table)
	}
	c.indexes[name] = &Index{Name: name, Table: table, Column: column, Correlation: correlation}
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, false
	}
	cp := *t
	return &cp, true
}

// MustTable returns the named table or panics.
func (c *Catalog) MustTable(name string) *Table {
	t, ok := c.Table(name)
	if !ok {
		panic(fmt.Sprintf("dbsys: unknown table %q", name))
	}
	return t
}

// Index returns the named index.
func (c *Catalog) Index(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	if !ok {
		return nil, false
	}
	cp := *ix
	return &cp, true
}

// IndexOn returns a usable (non-dropped) index on table.column, if any.
func (c *Catalog) IndexOn(table, column string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ix := c.indexes[n]
		if ix.Table == table && ix.Column == column && !ix.Dropped {
			cp := *ix
			return &cp, true
		}
	}
	return nil, false
}

// DropIndex marks an index dropped; it reports whether the index existed.
func (c *Catalog) DropIndex(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[name]
	if !ok {
		return false
	}
	ix.Dropped = true
	return true
}

// RestoreIndex clears the dropped flag; it reports whether the index
// existed.
func (c *Catalog) RestoreIndex(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[name]
	if !ok {
		return false
	}
	ix.Dropped = false
	return true
}

// SetRows changes a table's actual cardinality (a data-property change;
// the optimizer's statistics snapshot does not see it until re-analyzed).
func (c *Catalog) SetRows(table string, rows int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("dbsys: unknown table %q", table)
	}
	t.Rows = rows
	return nil
}

// ScaleRows multiplies a table's actual cardinality by factor.
func (c *Catalog) ScaleRows(table string, factor float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("dbsys: unknown table %q", table)
	}
	t.Rows = int64(float64(t.Rows) * factor)
	return nil
}

// VolumeOf returns the SAN volume holding the table's tablespace.
func (c *Catalog) VolumeOf(table string) (topology.ID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return "", fmt.Errorf("dbsys: unknown table %q", table)
	}
	ts, ok := c.tablespaces[t.Tablespace]
	if !ok {
		return "", fmt.Errorf("dbsys: table %q has unknown tablespace %q", table, t.Tablespace)
	}
	return ts.Volume, nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Tablespaces returns all tablespaces, sorted by name.
func (c *Catalog) Tablespaces() []Tablespace {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Tablespace, 0, len(c.tablespaces))
	for _, ts := range c.tablespaces {
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot captures the optimizer-visible statistics: per-table row counts
// as of "ANALYZE time". A data-property change after the snapshot leaves
// the optimizer estimating from stale numbers, which is how estimated and
// actual record counts diverge.
func (c *Catalog) Snapshot() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{Rows: make(map[string]int64, len(c.tables))}
	for n, t := range c.tables {
		s.Rows[n] = t.Rows
	}
	return s
}

// Stats is an optimizer-visible statistics snapshot.
type Stats struct {
	Rows map[string]int64
}

// RowsOf returns the snapshot cardinality for a table (0 if absent).
func (s Stats) RowsOf(table string) int64 { return s.Rows[table] }

// Clone returns a deep copy of the snapshot.
func (s Stats) Clone() Stats {
	out := Stats{Rows: make(map[string]int64, len(s.Rows))}
	for k, v := range s.Rows {
		out.Rows[k] = v
	}
	return out
}

package dbsys

import (
	"math"
	"testing"
	"testing/quick"

	"diads/internal/simtime"
)

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	return NewTPCHCatalog(0.1, "vol-V1", "vol-V2")
}

func TestTPCHCatalogShape(t *testing.T) {
	c := newTestCatalog(t)
	if got := len(c.Tables()); got != 8 {
		t.Fatalf("TPC-H has 8 tables, got %d", got)
	}
	ps := c.MustTable(TPartsupp)
	if ps.Rows != 80_000 {
		t.Fatalf("partsupp rows at SF 0.1: %d", ps.Rows)
	}
	if v, err := c.VolumeOf(TPartsupp); err != nil || v != "vol-V1" {
		t.Fatalf("partsupp volume: %v %v", v, err)
	}
	for _, tb := range []string{TPart, TSupplier, TNation, TRegion} {
		if v, err := c.VolumeOf(tb); err != nil || v != "vol-V2" {
			t.Fatalf("%s volume: %v %v", tb, v, err)
		}
	}
	// Small tables still occupy at least one page.
	if p := c.MustTable(TRegion).Pages(); p < 1 {
		t.Fatalf("region pages: %d", p)
	}
}

func TestIndexLookupAndDrop(t *testing.T) {
	c := newTestCatalog(t)
	ix, ok := c.IndexOn(TPartsupp, "ps_partkey")
	if !ok || ix.Name != IdxPartsuppPart {
		t.Fatalf("IndexOn(partsupp.ps_partkey): %v %v", ix, ok)
	}
	if !c.DropIndex(IdxPartsuppPart) {
		t.Fatalf("drop failed")
	}
	if _, ok := c.IndexOn(TPartsupp, "ps_partkey"); ok {
		t.Fatalf("dropped index should be invisible")
	}
	if !c.RestoreIndex(IdxPartsuppPart) {
		t.Fatalf("restore failed")
	}
	if _, ok := c.IndexOn(TPartsupp, "ps_partkey"); !ok {
		t.Fatalf("restored index should be visible")
	}
	if c.DropIndex("no_such_index") {
		t.Fatalf("dropping unknown index should report false")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := newTestCatalog(t)
	snap := c.Snapshot()
	before := snap.RowsOf(TPartsupp)
	if err := c.ScaleRows(TPartsupp, 2.0); err != nil {
		t.Fatal(err)
	}
	if snap.RowsOf(TPartsupp) != before {
		t.Fatalf("snapshot must not see later data-property changes")
	}
	if c.MustTable(TPartsupp).Rows != 2*before {
		t.Fatalf("actual rows should double")
	}
	clone := snap.Clone()
	clone.Rows[TPartsupp] = 7
	if snap.RowsOf(TPartsupp) == 7 {
		t.Fatalf("Clone must be independent")
	}
}

func TestCatalogErrors(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable("t", "nope", 10, 100); err == nil {
		t.Fatalf("unknown tablespace should fail")
	}
	c.AddTablespace("ts", "vol-x", DatabaseManaged)
	if err := c.AddTable("t", "ts", 10, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex("ix", "missing", "c", 1); err == nil {
		t.Fatalf("index on unknown table should fail")
	}
	if _, err := c.VolumeOf("missing"); err == nil {
		t.Fatalf("VolumeOf unknown table should fail")
	}
	if err := c.SetRows("missing", 5); err == nil {
		t.Fatalf("SetRows unknown table should fail")
	}
}

func TestParamsDefaultsAndClone(t *testing.T) {
	p := DefaultParams()
	if p.Get(ParamRandomPageCost) != 4.0 {
		t.Fatalf("random_page_cost default: %v", p.Get(ParamRandomPageCost))
	}
	if !p.Bool(ParamEnableIndexScan) {
		t.Fatalf("enable_indexscan should default on")
	}
	cl := p.Clone()
	cl.Set(ParamRandomPageCost, 1.1)
	if p.Get(ParamRandomPageCost) != 4.0 {
		t.Fatalf("Clone must not alias")
	}
	if old := p.Set(ParamWorkMemKB, 65536); old != 4096 {
		t.Fatalf("Set should return previous value, got %v", old)
	}
}

func TestCacheModelBehaviour(t *testing.T) {
	cm := NewCacheModel(16) // partsupp at SF 0.1 is ~11MB; 16MB forces misses
	c := newTestCatalog(t)
	small := c.MustTable(TRegion)
	big := c.MustTable(TPartsupp)
	hs := cm.HitRatio(small, false)
	hb := cm.HitRatio(big, false)
	if hs <= hb {
		t.Fatalf("small table should cache better: region=%v partsupp=%v", hs, hb)
	}
	if hs < 0.9 {
		t.Fatalf("tiny table should be nearly always cached: %v", hs)
	}
	if hb > 0.9 {
		t.Fatalf("large table should mostly miss at 256MB: %v", hb)
	}
	if idx := cm.HitRatio(big, true); idx <= hb {
		t.Fatalf("index access should cache better than scans: %v vs %v", idx, hb)
	}
	if got := cm.MissRatio(big, false); math.Abs(got-(1-hb)) > 1e-12 {
		t.Fatalf("MissRatio inconsistent")
	}
	zero := NewCacheModel(0)
	if zero.HitRatio(big, false) != 0 {
		t.Fatalf("zero cache should never hit")
	}
}

func TestCacheHitRatioBounds(t *testing.T) {
	cm := NewCacheModel(512)
	f := func(rows int64, width int, indexed bool) bool {
		if rows <= 0 {
			rows = -rows + 1
		}
		if width <= 0 {
			width = -width + 1
		}
		if rows > 1<<40 || width > 1<<20 {
			return true
		}
		tb := &Table{Name: "x", Rows: rows, RowWidthB: width}
		h := cm.HitRatio(tb, indexed)
		return h >= 0 && h <= cm.MaxHit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockManagerWaits(t *testing.T) {
	lm := NewLockManager()
	lm.AddHold(Hold{Table: TPartsupp, Iv: simtime.NewInterval(100, 200), Mode: LockExclusive, Holder: "txn-1"})
	lm.AddHold(Hold{Table: TPart, Iv: simtime.NewInterval(100, 300), Mode: LockShared, Holder: "txn-2"})

	if w := lm.WaitTime(TPartsupp, 150); w != 50 {
		t.Fatalf("reader at t=150 should wait 50s, got %v", w)
	}
	if w := lm.WaitTime(TPartsupp, 250); w != 0 {
		t.Fatalf("no wait after release, got %v", w)
	}
	if w := lm.WaitTime(TPart, 150); w != 0 {
		t.Fatalf("shared holds must not block readers, got %v", w)
	}
	if w := lm.WaitTime("other", 150); w != 0 {
		t.Fatalf("unrelated table should not wait, got %v", w)
	}
	if n := lm.HeldAt(150); n != 2 {
		t.Fatalf("HeldAt(150): %d", n)
	}
	if n := lm.HeldAt(250); n != 1 {
		t.Fatalf("HeldAt(250): %d", n)
	}
}

func TestLockManagerOverlappingExclusives(t *testing.T) {
	lm := NewLockManager()
	lm.AddHold(Hold{Table: TPartsupp, Iv: simtime.NewInterval(0, 100), Mode: LockExclusive, Holder: "a"})
	lm.AddHold(Hold{Table: TPartsupp, Iv: simtime.NewInterval(50, 300), Mode: LockExclusive, Holder: "b"})
	if w := lm.WaitTime(TPartsupp, 60); w != 240 {
		t.Fatalf("should wait for the longest conflicting hold: %v", w)
	}
	holds := lm.Holds()
	if len(holds) != 2 || holds[0].Holder != "a" {
		t.Fatalf("Holds ordering: %+v", holds)
	}
}

func TestTablePages(t *testing.T) {
	tb := &Table{Rows: 1000, RowWidthB: 100}
	// 100KB of data over 8KB pages -> 13 pages.
	if p := tb.Pages(); p != 13 {
		t.Fatalf("Pages: got %d, want 13", p)
	}
	empty := &Table{Rows: 0, RowWidthB: 100}
	if p := empty.Pages(); p != 1 {
		t.Fatalf("empty table should still have 1 page, got %d", p)
	}
}

// Package kde implements Gaussian kernel density estimation, the
// statistical machinery of the paper's Modules CO, DA, and CR. DIADS
// learns the probability density of an observable (operator running time,
// component performance metric, record count) from the satisfactory runs
// and scores unsatisfactory observations by the estimated
// prob(S <= u): values near 1 mean the observation sits far above the
// satisfactory range — an anomaly.
//
// The paper chose KDE over heavier models (e.g. Bayesian networks)
// because it "can produce accurate results with few tens of samples, and
// is more robust to noise"; experiment E14 reproduces that comparison.
package kde

import (
	"errors"
	"math"
	"sort"
)

// ErrNoSamples is returned when an estimator is built from no data.
var ErrNoSamples = errors.New("kde: no samples")

// Estimator is a one-dimensional Gaussian KDE.
type Estimator struct {
	samples []float64
	h       float64
}

// NewEstimator fits a KDE to the samples using Silverman's rule of thumb
// with the robust scale estimate min(stddev, IQR/1.34). Degenerate sample
// sets (all equal) get a tiny positive bandwidth so the CDF behaves as a
// step function.
func NewEstimator(samples []float64) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)

	n := float64(len(s))
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= n
	variance := 0.0
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	sd := 0.0
	if len(s) > 1 {
		sd = math.Sqrt(variance / (n - 1))
	}
	iqr := quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
	scale := sd
	if r := iqr / 1.34; r > 0 && (scale == 0 || r < scale) {
		scale = r
	}
	h := 1.06 * scale * math.Pow(n, -0.2)
	if h <= 0 {
		h = math.Max(1e-12, 1e-6*math.Abs(mean))
	}
	return &Estimator{samples: s, h: h}, nil
}

// Bandwidth returns the fitted kernel bandwidth.
func (e *Estimator) Bandwidth() float64 { return e.h }

// N returns the number of fitted samples.
func (e *Estimator) N() int { return len(e.samples) }

// Density returns the estimated probability density at x.
func (e *Estimator) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range e.samples {
		z := (x - xi) / e.h
		sum += math.Exp(-0.5*z*z) * invSqrt2Pi
	}
	return sum / (float64(len(e.samples)) * e.h)
}

// CDF returns the paper's anomaly score prob(S <= u): the integral of the
// estimated density up to u.
func (e *Estimator) CDF(u float64) float64 {
	var sum float64
	for _, xi := range e.samples {
		sum += stdNormalCDF((u - xi) / e.h)
	}
	return sum / float64(len(e.samples))
}

// stdNormalCDF is the standard normal CDF.
func stdNormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// quantileSorted returns the q-quantile of sorted data by linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// AnomalyScore fits a KDE to the satisfactory observations and returns the
// mean prob(S <= u) over the unsatisfactory observations — the per-object
// anomaly score Modules CO, DA, and CR threshold. It returns an error if
// either sample set is empty.
func AnomalyScore(satisfactory, unsatisfactory []float64) (float64, error) {
	if len(unsatisfactory) == 0 {
		return 0, ErrNoSamples
	}
	est, err := NewEstimator(satisfactory)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, u := range unsatisfactory {
		sum += est.CDF(u)
	}
	return sum / float64(len(unsatisfactory)), nil
}

// DefaultThreshold is the anomaly-score threshold the paper uses for
// Module CO (operators with score > 0.8 join the correlated operator set).
const DefaultThreshold = 0.8

package kde

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"diads/internal/simtime"
)

func TestEmptySamplesRejected(t *testing.T) {
	if _, err := NewEstimator(nil); err != ErrNoSamples {
		t.Fatalf("want ErrNoSamples, got %v", err)
	}
	if _, err := AnomalyScore(nil, []float64{1}); err == nil {
		t.Fatalf("empty satisfactory set should error")
	}
	if _, err := AnomalyScore([]float64{1}, nil); err == nil {
		t.Fatalf("empty unsatisfactory set should error")
	}
}

func TestCDFBasicShape(t *testing.T) {
	rnd := simtime.NewRand(1, "kde")
	samples := make([]float64, 40)
	for i := range samples {
		samples[i] = rnd.Gaussian(100, 10)
	}
	est, err := NewEstimator(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.CDF(100); math.Abs(got-0.5) > 0.12 {
		t.Fatalf("CDF at mean should be ~0.5, got %v", got)
	}
	if got := est.CDF(160); got < 0.99 {
		t.Fatalf("CDF far above range should approach 1, got %v", got)
	}
	if got := est.CDF(40); got > 0.01 {
		t.Fatalf("CDF far below range should approach 0, got %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var samples []float64
		for _, v := range raw {
			if !math.IsNaN(v) && math.Abs(v) < 1e6 {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 || math.IsNaN(a) || math.IsNaN(b) ||
			math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		est, err := NewEstimator(samples)
		if err != nil {
			return false
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		cl, ch := est.CDF(lo), est.CDF(hi)
		return cl <= ch+1e-12 && cl >= -1e-12 && ch <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	samples := []float64{1, 2, 2.5, 3, 5, 5.5, 6}
	est, err := NewEstimator(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric integration over a wide range.
	lo, hi := -20.0, 30.0
	steps := 20000
	dx := (hi - lo) / float64(steps)
	var integral float64
	for i := 0; i < steps; i++ {
		integral += est.Density(lo+(float64(i)+0.5)*dx) * dx
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("density should integrate to ~1, got %v", integral)
	}
}

func TestDegenerateSamples(t *testing.T) {
	est, err := NewEstimator([]float64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if est.Bandwidth() <= 0 {
		t.Fatalf("bandwidth must stay positive, got %v", est.Bandwidth())
	}
	if got := est.CDF(8); got < 0.999 {
		t.Fatalf("value above a constant sample should score ~1, got %v", got)
	}
	if got := est.CDF(6); got > 0.001 {
		t.Fatalf("value below a constant sample should score ~0, got %v", got)
	}
}

func TestAnomalyScoreSeparatesRegimes(t *testing.T) {
	rnd := simtime.NewRand(2, "kde2")
	sat := make([]float64, 30)
	for i := range sat {
		sat[i] = rnd.Gaussian(10, 1)
	}
	// Unsatisfactory observations 5x the satisfactory mean.
	unsat := []float64{48, 52, 50}
	score, err := AnomalyScore(sat, unsat)
	if err != nil {
		t.Fatal(err)
	}
	if score <= DefaultThreshold {
		t.Fatalf("clear slowdown should exceed the 0.8 threshold, got %v", score)
	}
	// Unsatisfactory observations drawn from the same regime score low.
	same := []float64{9.5, 10.2, 10.0}
	score2, err := AnomalyScore(sat, same)
	if err != nil {
		t.Fatal(err)
	}
	if score2 > DefaultThreshold {
		t.Fatalf("unchanged behaviour should not be anomalous, got %v", score2)
	}
}

func TestAnomalyScoreWithFewSamples(t *testing.T) {
	// The paper's observation: KDE works with few tens of samples. Even
	// with 10 satisfactory runs a 3x slowdown must be detected.
	rnd := simtime.NewRand(3, "kde3")
	sat := make([]float64, 10)
	for i := range sat {
		sat[i] = rnd.Gaussian(20, 2)
	}
	score, err := AnomalyScore(sat, []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.95 {
		t.Fatalf("3x slowdown with 10 samples should score near 1, got %v", score)
	}
}

func TestBandwidthShrinksWithSampleCount(t *testing.T) {
	rnd := simtime.NewRand(4, "kde4")
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rnd.Gaussian(0, 1)
	}
	for i := range large {
		large[i] = rnd.Gaussian(0, 1)
	}
	es, _ := NewEstimator(small)
	el, _ := NewEstimator(large)
	if el.Bandwidth() >= es.Bandwidth() {
		t.Fatalf("bandwidth should shrink with more samples: %v vs %v",
			es.Bandwidth(), el.Bandwidth())
	}
}

func TestRobustScaleAgainstOutliers(t *testing.T) {
	// One wild outlier in the satisfactory set must not blow up the
	// bandwidth so far that a genuine anomaly goes unnoticed.
	sat := []float64{10, 10.5, 9.8, 10.2, 9.9, 10.1, 10.3, 9.7, 10.0, 500}
	score, err := AnomalyScore(sat, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.8 {
		t.Fatalf("outlier-robust scale should keep 4x slowdown detectable, got %v", score)
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	sort.Float64s(s)
	if q := quantileSorted(s, 0.5); q != 3 {
		t.Fatalf("median: %v", q)
	}
	if q := quantileSorted(s, 0); q != 1 {
		t.Fatalf("min: %v", q)
	}
	if q := quantileSorted(s, 1); q != 5 {
		t.Fatalf("max: %v", q)
	}
	if q := quantileSorted([]float64{42}, 0.75); q != 42 {
		t.Fatalf("singleton: %v", q)
	}
}

func TestEstimatorDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	est, _ := NewEstimator(in)
	in[0] = 1000
	if got := est.CDF(10); got < 0.99 {
		t.Fatalf("estimator must copy its input; CDF(10)=%v", got)
	}
}

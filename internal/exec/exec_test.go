package exec

import (
	"math"
	"testing"

	"diads/internal/dbsys"
	"diads/internal/opt"
	"diads/internal/plan"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// newRig assembles a full execution environment over the Figure 1 SAN.
func newRig(t testing.TB, seed int64) (*Engine, *plan.Plan) {
	t.Helper()
	cfg := topology.New()
	steps := []error{
		cfg.AddServer("srv-db", "db", nil),
		cfg.AddSubsystem("ss-1", "DS6000", "IBM"),
		cfg.AddPool("pool-P1", "ss-1", "P1", "RAID5"),
		cfg.AddPool("pool-P2", "ss-1", "P2", "RAID5"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []topology.ID{"disk-1", "disk-2", "disk-3", "disk-4"} {
		if err := cfg.AddDisk(d, "pool-P1", string(d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []topology.ID{"disk-5", "disk-6", "disk-7", "disk-8", "disk-9", "disk-10"} {
		if err := cfg.AddDisk(d, "pool-P2", string(d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []struct{ id, pool topology.ID }{
		{"vol-V1", "pool-P1"}, {"vol-Vp", "pool-P1"}, {"vol-V2", "pool-P2"},
	} {
		if err := cfg.AddVolume(v.id, v.pool, string(v.id), 100); err != nil {
			t.Fatal(err)
		}
	}
	cat := dbsys.NewTPCHCatalog(1.0, "vol-V1", "vol-V2")
	stats := cat.Snapshot()
	params := dbsys.DefaultParams()
	o := opt.New(cat)
	q2, err := o.PlanQuery("Q2", stats, params)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{
		Cat:        cat,
		Params:     params,
		Cache:      dbsys.NewCacheModel(32),
		Locks:      dbsys.NewLockManager(),
		SAN:        sanperf.NewModel(cfg, sanperf.DefaultDiskParams()),
		Server:     "srv-db",
		StatsBase:  stats,
		CPULoad:    sanperf.NewTimeline(),
		Rnd:        simtime.NewRand(seed, "exec"),
		NoiseSigma: 0.05,
		TableNoise: map[string]float64{dbsys.TPart: 0.3},
	}
	return eng, q2
}

func TestRunProducesCompleteRecord(t *testing.T) {
	eng, q2 := newRig(t, 1)
	rec, err := eng.Run(q2, 1000, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 25 {
		t.Fatalf("want 25 OpRuns, got %d", len(rec.Ops))
	}
	if rec.Duration() <= 0 {
		t.Fatalf("nonpositive duration %v", rec.Duration())
	}
	// The root's recorded (inclusive) time equals the run duration.
	root := rec.Op(1)
	if math.Abs(float64(root.Recorded-rec.Duration())) > 1e-9 {
		t.Fatalf("root recorded %v != duration %v", root.Recorded, rec.Duration())
	}
	// Plausible magnitude: seconds to a few minutes, not micro or hours.
	if rec.Duration() < 1 || rec.Duration() > 1800 {
		t.Fatalf("implausible baseline duration %v", rec.Duration())
	}
	if rec.IdxScans == 0 || rec.SeqScans == 0 {
		t.Fatalf("scan counters not populated: idx=%d seq=%d", rec.IdxScans, rec.SeqScans)
	}
	if rec.PhysIO <= 0 || rec.CacheHit <= 0 {
		t.Fatalf("I/O accounting missing: phys=%v hit=%v", rec.PhysIO, rec.CacheHit)
	}
}

func TestIntervalNesting(t *testing.T) {
	eng, q2 := newRig(t, 2)
	rec, err := eng.Run(q2, 0, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	// Every operator's interval lies within its parent's.
	for _, n := range q2.Nodes() {
		if n.ID == 1 {
			continue
		}
		op := rec.Op(n.ID)
		parent := rec.Op(q2.ParentID(n.ID))
		if op.Start < parent.Start || op.Stop > parent.Stop+1e-9 {
			t.Fatalf("O%d [%v,%v] escapes parent O%d [%v,%v]",
				n.ID, op.Start, op.Stop, parent.ID, parent.Start, parent.Stop)
		}
	}
}

func TestV1ContentionInflatesTheRightOperators(t *testing.T) {
	baseEng, q2 := newRig(t, 3)
	base, err := baseEng.Run(q2, 1000, "base")
	if err != nil {
		t.Fatal(err)
	}

	hotEng, q2hot := newRig(t, 3)
	// External workload on V' (same pool as V1) during the run window.
	hotEng.SAN.AddLoad(sanperf.Load{
		Volume: "vol-Vp", Iv: simtime.NewInterval(0, 100000),
		ReadIOPS: 450, WriteIOPS: 100, Source: "wl-contention",
	})
	hot, err := hotEng.Run(q2hot, 1000, "hot")
	if err != nil {
		t.Fatal(err)
	}

	if ratio := float64(hot.Duration()) / float64(base.Duration()); ratio < 1.5 {
		t.Fatalf("V1 contention should slow the query substantially, got %.2fx", ratio)
	}
	// The V1 leaves (O8, O22) inflate strongly.
	for _, id := range []int{8, 22} {
		r := float64(hot.Op(id).Recorded) / float64(base.Op(id).Recorded)
		if r < 2 {
			t.Errorf("O%d should inflate under V1 contention, got %.2fx", id, r)
		}
	}
	// Their inclusive ancestors inflate too (event propagation).
	for _, id := range []int{2, 3, 6, 7, 17, 18, 20, 21} {
		r := float64(hot.Op(id).Recorded) / float64(base.Op(id).Recorded)
		if r < 1.5 {
			t.Errorf("ancestor O%d should inherit the slowdown, got %.2fx", id, r)
		}
	}
	// V2 leaves stay calm (within noise).
	for _, id := range []int{10, 13, 15, 19, 23, 25} {
		r := float64(hot.Op(id).Recorded) / float64(base.Op(id).Recorded)
		if r > 1.3 {
			t.Errorf("V2 leaf O%d should not inflate, got %.2fx", id, r)
		}
	}
	// Blocking-build nodes record own time only and stay calm.
	for _, id := range []int{5, 16, 24} {
		r := float64(hot.Op(id).Recorded) / float64(base.Op(id).Recorded)
		if r > 1.3 {
			t.Errorf("blocking node O%d should record stable own time, got %.2fx", id, r)
		}
	}
}

func TestLockWaitDelaysPartsuppLeaves(t *testing.T) {
	eng, q2 := newRig(t, 4)
	base, _ := eng.Run(q2, 1000, "base")

	eng2, q22 := newRig(t, 4)
	eng2.Locks.AddHold(dbsys.Hold{
		Table: dbsys.TPartsupp,
		Iv:    simtime.NewInterval(0, 1200),
		Mode:  dbsys.LockExclusive, Holder: "txn-batch",
	})
	locked, _ := eng2.Run(q22, 1000, "locked")
	if locked.LockWait <= 0 {
		t.Fatalf("lock wait not recorded")
	}
	if locked.Duration() <= base.Duration() {
		t.Fatalf("lock contention should extend the run: %v vs %v", locked.Duration(), base.Duration())
	}
	if base.LockWait != 0 {
		t.Fatalf("baseline should have no lock wait")
	}
}

func TestDataPropertyChangeShiftsActualRows(t *testing.T) {
	eng, q2 := newRig(t, 5)
	before, _ := eng.Run(q2, 0, "before")
	if err := eng.Cat.ScaleRows(dbsys.TPartsupp, 1.6); err != nil {
		t.Fatal(err)
	}
	after, _ := eng.Run(q2, 10000, "after")

	// Actual record counts on partsupp operators grow; estimates do not.
	for _, id := range []int{8, 22} {
		if after.Op(id).ActRows <= before.Op(id).ActRows*1.3 {
			t.Errorf("O%d actual rows should grow ~1.6x: %v -> %v",
				id, before.Op(id).ActRows, after.Op(id).ActRows)
		}
		if after.Op(id).EstRows != before.Op(id).EstRows {
			t.Errorf("O%d estimates should stay stale", id)
		}
	}
	// And the run gets slower (more I/O).
	if after.Duration() <= before.Duration() {
		t.Errorf("grown table should slow the run: %v -> %v", before.Duration(), after.Duration())
	}
}

func TestCPUContentionSlowsRun(t *testing.T) {
	eng, q2 := newRig(t, 6)
	base, _ := eng.Run(q2, 1000, "base")
	eng2, q22 := newRig(t, 6)
	eng2.CPULoad.Add("cpu", simtime.NewInterval(0, 100000), 0.8, "cpu-hog")
	slow, _ := eng2.Run(q22, 1000, "slow")
	if slow.Duration() <= base.Duration() {
		t.Fatalf("CPU load should slow the run: %v vs %v", base.Duration(), slow.Duration())
	}
}

func TestDeterminism(t *testing.T) {
	engA, q2a := newRig(t, 7)
	engB, q2b := newRig(t, 7)
	ra, _ := engA.Run(q2a, 500, "r")
	rb, _ := engB.Run(q2b, 500, "r")
	if ra.Duration() != rb.Duration() {
		t.Fatalf("same seed must reproduce identical runs: %v vs %v", ra.Duration(), rb.Duration())
	}
	for id := range ra.Ops {
		if ra.Op(id).Recorded != rb.Op(id).Recorded {
			t.Fatalf("O%d differs across identical runs", id)
		}
	}
}

func TestFeedBackLoadAppearsInSANModel(t *testing.T) {
	eng, q2 := newRig(t, 8)
	eng.RecordLoad = true
	rec, _ := eng.Run(q2, 1000, "run-load")
	mid := rec.Op(8).Start.Add(rec.Op(8).Stop.Sub(rec.Op(8).Start) / 2)
	if iops := eng.SAN.VolumeReadIOPS("vol-V1", mid); iops <= 0 {
		t.Fatalf("query I/O should appear as V1 load during O8, got %v", iops)
	}
	// Without RecordLoad nothing is fed back.
	eng2, q22 := newRig(t, 8)
	rec2, _ := eng2.Run(q22, 1000, "run-noload")
	mid2 := rec2.Op(8).Start.Add(rec2.Op(8).Stop.Sub(rec2.Op(8).Start) / 2)
	if iops := eng2.SAN.VolumeReadIOPS("vol-V1", mid2); iops != 0 {
		t.Fatalf("no feedback expected, got %v", iops)
	}
}

func TestNoiseSpreadsRunTimes(t *testing.T) {
	eng, q2 := newRig(t, 9)
	var durs []float64
	for i := 0; i < 10; i++ {
		rec, _ := eng.Run(q2, simtime.Time(i*3600), "r")
		durs = append(durs, float64(rec.Duration()))
	}
	min, max := durs[0], durs[0]
	for _, d := range durs {
		min = math.Min(min, d)
		max = math.Max(max, d)
	}
	if max/min < 1.01 {
		t.Fatalf("noise should spread run times: min=%v max=%v", min, max)
	}
	if max/min > 2.0 {
		t.Fatalf("noise too violent for satisfactory-run modelling: min=%v max=%v", min, max)
	}
}

func TestOtherQueriesExecute(t *testing.T) {
	eng, _ := newRig(t, 10)
	for _, build := range []func() *plan.Plan{plan.BuildQ6, plan.BuildQ14, plan.BuildQ5} {
		p := build()
		plan.EstimateInto(p, eng.StatsBase.RowsOf)
		rec, err := eng.Run(p, 0, "r-"+p.Query)
		if err != nil {
			t.Fatalf("%s: %v", p.Query, err)
		}
		if rec.Duration() <= 0 {
			t.Fatalf("%s: nonpositive duration", p.Query)
		}
	}
}

// Package exec simulates query execution against the database and SAN
// substrates. For every run of a plan it produces the exact signal the
// paper's DIADS prototype collected from its instrumented PostgreSQL:
// per-operator start/stop times and record counts (estimated and actual),
// plus database-level counters (buffer hits, blocks read, lock waits).
//
// Timing model. Operators are scheduled depth-first with a running time
// cursor: a node's children execute sequentially inside its interval and
// its own work follows them, so ancestor intervals cover descendant
// intervals. Leaf I/O times come from the SAN performance model evaluated
// at the simulated moment the leaf runs, which is how storage contention
// during a run inflates exactly the leaf operators reading the contended
// volume — and, through interval nesting, their ancestors ("event
// propagation" in the paper). Blocking build operators (Hash, Materialize,
// Aggregate) record their own build cost only; everything else records
// inclusive elapsed time.
package exec

import (
	"fmt"
	"math"
	"sort"

	"diads/internal/dbsys"
	"diads/internal/plan"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// CPU cost coefficients, in seconds per row processed.
const (
	cpuTuple   = 2.0e-6
	cpuCompare = 2.0e-6 // per comparison in sorts
	cpuJoinRow = 1.5e-6
	cpuHashRow = 1.5e-6
	cpuAggRow  = 1.0e-6
	cpuMatRow  = 0.5e-6
)

// warmLoopMissFactor is the fraction of the cold-cache miss ratio that
// repeated executions of a subplan leaf still pay: the first loop faults
// pages in, later loops mostly hit.
const warmLoopMissFactor = 0.25

// Engine executes plans against the substrates.
type Engine struct {
	Cat    *dbsys.Catalog
	Params *dbsys.Params
	Cache  *dbsys.CacheModel
	Locks  *dbsys.LockManager
	SAN    *sanperf.Model
	// Server is the database server component in the SAN topology.
	Server topology.ID
	// StatsBase is the statistics snapshot current at "ANALYZE time";
	// AbsRows leaves scale with actual growth relative to it.
	StatsBase dbsys.Stats
	// CPULoad carries external CPU utilization (0..1) on the server under
	// key "cpu"; query CPU work slows by 1/(1-load).
	CPULoad *sanperf.Timeline
	// Rnd drives measurement noise.
	Rnd *simtime.Rand
	// NoiseSigma is the base log-normal sigma applied to each operator's
	// own time.
	NoiseSigma float64
	// TableNoise adds per-table extra noise sigma for leaf operators
	// (e.g. the CPU-cache-sensitive part index scan of the paper's O4
	// false positive).
	TableNoise map[string]float64
	// RecordLoad controls whether runs feed their own I/O back into the
	// SAN model so volume metrics reflect query activity.
	RecordLoad bool
	// OnRunComplete, when non-nil, is invoked synchronously with every
	// completed run record, after its load feedback has been applied. It
	// is the streaming tap the online monitor attaches to; the callback
	// must not retain the engine's locks (it receives only the record)
	// and should return quickly since it runs on the execution path.
	OnRunComplete func(*RunRecord)
}

// OpRun is the monitoring data for one operator in one run.
type OpRun struct {
	ID       int
	Type     plan.OpType
	Table    string
	Start    simtime.Time
	Stop     simtime.Time
	Recorded simtime.Duration // the t(Oi) DIADS analyzes
	ActRows  float64
	EstRows  float64
	PhysIO   float64
	CacheHit float64
	IOTime   simtime.Duration
	LockWait simtime.Duration
}

// RunRecord is the monitoring data for one complete run of a plan.
type RunRecord struct {
	Query    string
	RunID    string
	PlanSig  string
	Plan     *plan.Plan
	Start    simtime.Time
	Stop     simtime.Time
	Ops      map[int]*OpRun
	PhysIO   float64
	CacheHit float64
	LockWait simtime.Duration
	SeqScans int
	IdxScans int
}

// Duration returns the total run time t(P).
func (r *RunRecord) Duration() simtime.Duration { return r.Stop.Sub(r.Start) }

// Window returns the run's execution interval [Start, Stop).
func (r *RunRecord) Window() simtime.Interval { return simtime.NewInterval(r.Start, r.Stop) }

// EndsBefore reports whether the run completed strictly before the
// evidence horizon. This is the retention predicate for run histories:
// a record that ends before the low watermark can never appear in a
// future slowdown event's snapshot (event windows start at remembered
// runs, all of which begin at or after the unpadded watermark), so it
// may be dropped. Consumers holding their own pointers — the monitor's
// history ring, already-minted events — are unaffected by a holder
// trimming its slice.
func (r *RunRecord) EndsBefore(horizon simtime.Time) bool { return r.Stop < horizon }

// Op returns the OpRun for the given operator ID.
func (r *RunRecord) Op(id int) *OpRun { return r.Ops[id] }

// opsByID returns the run's operators in ascending ID order. Ops is a
// map, and both the float accumulations and the fed-back SAN load
// segments must visit operators in a run-independent order.
func (r *RunRecord) opsByID() []*OpRun {
	ids := make([]int, 0, len(r.Ops))
	for id := range r.Ops {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ops := make([]*OpRun, len(ids))
	for i, id := range ids {
		ops[i] = r.Ops[id]
	}
	return ops
}

// Run executes p starting at start and returns its monitoring record.
func (e *Engine) Run(p *plan.Plan, start simtime.Time, runID string) (*RunRecord, error) {
	if len(p.Nodes()) == 0 {
		return nil, fmt.Errorf("exec: empty plan %q", p.Query)
	}
	actual := plan.Cardinality(p, e.actualRows, e.absScale)

	rec := &RunRecord{
		Query:   p.Query,
		RunID:   runID,
		PlanSig: p.Signature(),
		Plan:    p,
		Start:   start,
		Ops:     make(map[int]*OpRun, len(p.Nodes())),
	}

	cursor := start
	var walk func(n *plan.Node) simtime.Duration
	walk = func(n *plan.Node) simtime.Duration {
		op := &OpRun{
			ID:      n.ID,
			Type:    n.Type,
			Table:   n.Table,
			Start:   cursor,
			ActRows: actual.Total[n.ID],
			EstRows: n.EstRows,
		}
		rec.Ops[n.ID] = op

		var childTotal simtime.Duration
		for _, ch := range n.Children {
			childTotal += walk(ch)
		}
		for _, s := range n.SubPlans {
			childTotal += walk(s)
		}

		own := e.ownTime(n, actual, cursor, op, rec)
		own = simtime.Duration(e.noisy(float64(own), n))
		cursor = cursor.Add(own)

		op.Stop = cursor
		inclusive := childTotal + own
		if n.Type.IsBlockingBuild() {
			op.Recorded = own
		} else {
			op.Recorded = inclusive
		}
		return inclusive
	}
	total := walk(p.Root)
	rec.Stop = start.Add(total)

	for _, op := range rec.opsByID() {
		rec.PhysIO += op.PhysIO
		rec.CacheHit += op.CacheHit
		rec.LockWait += op.LockWait
	}
	if e.RecordLoad {
		e.feedBackLoad(rec)
	}
	if e.OnRunComplete != nil {
		e.OnRunComplete(rec)
	}
	return rec, nil
}

// actualRows reads live table cardinality from the catalog.
func (e *Engine) actualRows(table string) int64 {
	t, ok := e.Cat.Table(table)
	if !ok {
		return 0
	}
	return t.Rows
}

// absScale is actual rows / statistics-snapshot rows, the growth factor
// applied to fixed-fanout (AbsRows) leaves.
func (e *Engine) absScale(table string) float64 {
	base := e.StatsBase.RowsOf(table)
	if base <= 0 {
		return 1
	}
	return float64(e.actualRows(table)) / float64(base)
}

// cpuFactor is the slowdown of CPU work from external server load.
func (e *Engine) cpuFactor(t simtime.Time) float64 {
	if e.CPULoad == nil {
		return 1
	}
	load := math.Min(e.CPULoad.At("cpu", t), 0.85)
	if load <= 0 {
		return 1
	}
	return 1 / (1 - load)
}

// noisy applies measurement noise to an operator's own time.
func (e *Engine) noisy(sec float64, n *plan.Node) float64 {
	if e.Rnd == nil || sec <= 0 {
		return sec
	}
	sigma := e.NoiseSigma
	if n.IsLeaf() && e.TableNoise != nil {
		sigma += e.TableNoise[n.Table]
	}
	if sigma <= 0 {
		return sec
	}
	return e.Rnd.Jitter(sec, sigma)
}

// ownTime computes the operator's own work duration at time t, filling in
// the op's I/O accounting.
func (e *Engine) ownTime(n *plan.Node, cards plan.Cardinalities, t simtime.Time, op *OpRun, rec *RunRecord) simtime.Duration {
	cf := e.cpuFactor(t)
	loops := cards.Loops[n.ID]
	switch n.Type {
	case plan.OpSeqScan:
		rec.SeqScans++
		return e.seqScanTime(n, t, cf, loops, op)
	case plan.OpIndexScan:
		rec.IdxScans++
		return e.indexScanTime(n, cards, t, cf, op)
	case plan.OpSort:
		rows := cards.Total[n.ID]
		per := math.Log2(rows/math.Max(1, loops) + 2)
		return simtime.Duration(rows * per * cpuCompare * cf)
	case plan.OpHash:
		return simtime.Duration(cards.Total[n.ID] * cpuHashRow * cf)
	case plan.OpMaterialize:
		return simtime.Duration(cards.Total[n.ID] * cpuMatRow * cf)
	case plan.OpAggregate:
		var in float64
		for _, ch := range n.Children {
			in += cards.Total[ch.ID]
		}
		return simtime.Duration(in * cpuAggRow * cf)
	case plan.OpHashJoin, plan.OpMergeJoin, plan.OpNestedLoop:
		var in float64
		for _, ch := range n.Children {
			in += cards.Total[ch.ID]
		}
		return simtime.Duration(in * cpuJoinRow * cf)
	default: // Limit
		return simtime.Duration(cards.Total[n.ID] * cpuTuple * cf * 0.1)
	}
}

// seqScanTime models a full relation scan: every page read sequentially,
// misses going to the SAN.
func (e *Engine) seqScanTime(n *plan.Node, t simtime.Time, cf, loops float64, op *OpRun) simtime.Duration {
	tbl, ok := e.Cat.Table(n.Table)
	if !ok {
		return 0
	}
	vol, err := e.Cat.VolumeOf(n.Table)
	if err != nil {
		return 0
	}
	miss := e.Cache.MissRatio(tbl, false)
	pages := float64(tbl.Pages())
	if loops > 1 {
		// Repeated scans enjoy warm caches for the re-reads.
		pages = pages * (1 + warmLoopMissFactor*(loops-1))
	}
	physIO := pages * miss
	resp := float64(e.SAN.ReadResponse(vol, t, true))
	ioTime := physIO * resp
	cpuTime := float64(tbl.Rows) * loops * cpuTuple * cf
	wait := e.Locks.WaitTime(n.Table, t)

	op.PhysIO += physIO
	op.CacheHit += pages - physIO
	op.IOTime += simtime.Duration(ioTime)
	op.LockWait += wait
	return simtime.Duration(ioTime+cpuTime) + wait
}

// indexScanTime models an index lookup: a B-tree descent plus heap
// fetches, with randomness governed by the index's correlation and cache
// warm-up across loops.
func (e *Engine) indexScanTime(n *plan.Node, cards plan.Cardinalities, t simtime.Time, cf float64, op *OpRun) simtime.Duration {
	tbl, ok := e.Cat.Table(n.Table)
	if !ok {
		return 0
	}
	vol, err := e.Cat.VolumeOf(n.Table)
	if err != nil {
		return 0
	}
	loops := math.Max(1, cards.Loops[n.ID])
	matches := cards.Total[n.ID] // across all loops
	miss := e.Cache.MissRatio(tbl, true)
	// Warm-up: only the first loop pays the full miss ratio.
	effMiss := miss * (warmLoopMissFactor + (1-warmLoopMissFactor)/loops)

	corr := 0.5
	if ix, ok := e.Cat.Index(n.Index); ok {
		corr = ix.Correlation
	}
	descents := loops * math.Log2(float64(tbl.Pages())+2) * 0.1 * effMiss
	fetches := matches*effMiss + descents
	randFrac := 1 - corr
	respRand := float64(e.SAN.ReadResponse(vol, t, false))
	respSeq := float64(e.SAN.ReadResponse(vol, t, true))
	ioTime := fetches * (randFrac*respRand + (1-randFrac)*respSeq)
	cpuTime := matches * cpuTuple * cf
	wait := e.Locks.WaitTime(n.Table, t)

	op.PhysIO += fetches
	op.CacheHit += matches - matches*effMiss
	op.IOTime += simtime.Duration(ioTime)
	op.LockWait += wait
	return simtime.Duration(ioTime+cpuTime) + wait
}

// feedBackLoad converts the run's leaf I/O into SAN load segments so the
// monitoring series show the query's own activity on its volumes.
func (e *Engine) feedBackLoad(rec *RunRecord) {
	for _, op := range rec.opsByID() {
		if op.PhysIO <= 0 || op.Table == "" {
			continue
		}
		vol, err := e.Cat.VolumeOf(op.Table)
		if err != nil {
			continue
		}
		dur := op.Stop.Sub(op.Start)
		if dur <= 0 {
			continue
		}
		iops := op.PhysIO / float64(dur)
		// Sequentiality of the fed-back load mirrors the access pattern:
		// full scans are sequential; index fetches are sequential to the
		// extent of the index's correlation.
		seq := 1.0
		if op.Type == plan.OpIndexScan {
			seq = 0.5
			if n, ok := rec.Plan.Node(op.ID); ok {
				if ix, found := e.Cat.Index(n.Index); found {
					seq = ix.Correlation
				}
			}
		}
		e.SAN.AddLoad(sanperf.Load{
			Volume:   vol,
			Iv:       simtime.NewInterval(op.Start, op.Stop),
			ReadIOPS: iops,
			SeqFrac:  seq,
			Source:   rec.RunID,
		})
	}
}

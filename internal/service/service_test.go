package service

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"diads/internal/diag"
	"diads/internal/faults"
	"diads/internal/monitor"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
	"diads/internal/workload"
)

// slowdownRig simulates the scenario-1 testbed (SAN misconfiguration
// degrading Q2) through a monitor and returns the environment plus the
// emitted events.
func slowdownRig(t *testing.T, seed int64) (Env, []monitor.SlowdownEvent) {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	start := simtime.Time(10 * simtime.Minute)
	horizon := start.Add(runs * 30 * simtime.Minute)
	onset := start.Add(runs/2*30*simtime.Minute - 5*simtime.Minute)
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: start, Period: 30 * simtime.Minute, Count: runs},
	}
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if err := faults.Inject(tb, &faults.SANMisconfiguration{
		At: onset, Until: horizon, Pool: testbed.PoolP1,
		NewVolume: "vol-Vp", Host: testbed.ServerApp1,
		ReadIOPS: 450, WriteIOPS: 120,
	}); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{})
	tb.Engine.OnRunComplete = mon.Observe
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	var evs []monitor.SlowdownEvent
	for {
		select {
		case ev := <-mon.Events():
			evs = append(evs, ev)
		default:
			if len(evs) == 0 {
				t.Fatal("monitor emitted no events for an injected fault")
			}
			return Env{
				Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
				Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
				SymDB: symptoms.Builtin(),
			}, evs
		}
	}
}

func TestServiceDiagnosesEventsConcurrently(t *testing.T) {
	env, evs := slowdownRig(t, 42)
	svc := New(env, Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	for _, ev := range evs {
		if err := svc.Submit(ev); err != nil {
			t.Fatalf("submit %s: %v", ev.RunID, err)
		}
	}
	svc.Wait()
	svc.Stop()

	st := svc.Stats()
	if st.Completed != int64(len(evs)) || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", st.Completed, st.Failed, len(evs))
	}
	if st.APG.Hits == 0 {
		t.Errorf("APG cache never hit across %d same-plan diagnoses", len(evs))
	}
	incs := svc.Registry().Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents registered")
	}
	top := incs[0]
	if top.Kind != symptoms.CauseSANMisconfig || top.Subject != string(testbed.VolV1) {
		t.Errorf("top incident = %s(%s), want %s(%s)",
			top.Kind, top.Subject, symptoms.CauseSANMisconfig, testbed.VolV1)
	}
	if top.Events != len(evs) {
		t.Errorf("top incident aggregated %d events, want %d", top.Events, len(evs))
	}
	if top.EstImpact() <= 0 {
		t.Errorf("estimated impact = %.2f, want > 0", top.EstImpact())
	}

	// Every diagnosis ran through the DAG engine: the incident carries a
	// per-module trace, and the service aggregated module stats — with
	// the APG cache hits visible at module granularity.
	if top.Trace == nil || top.Trace.Module("da") == nil {
		t.Fatalf("incident should carry the workflow trace, got %+v", top.Trace)
	}
	mods := svc.ModuleStats()
	if len(mods) == 0 {
		t.Fatal("service recorded no module stats")
	}
	byName := map[string]ModuleStat{}
	for _, m := range mods {
		byName[m.Module] = m
	}
	if got := byName["ia"].Runs; got != int64(len(evs)) {
		t.Errorf("module ia ran %d times, want %d", got, len(evs))
	}
	if byName["apg"].CacheHits == 0 {
		t.Errorf("module apg recorded no scheduler-level cache hits: %+v", byName["apg"])
	}
}

// TestServiceCapturesLowConfidenceFactBases pins the OnHealthy hook:
// a diagnosis that identifies nothing (no plan change, no cause above
// low confidence) hands its fact base over as healthy-period evidence,
// while confident diagnoses never do.
func TestServiceCapturesLowConfidenceFactBases(t *testing.T) {
	env, evs := slowdownRig(t, 44)

	run := func(env Env) ([]*symptoms.FactBase, Stats) {
		svc := New(env, Config{Workers: 2})
		var mu sync.Mutex
		var healthy []*symptoms.FactBase
		svc.OnHealthy = func(_ monitor.SlowdownEvent, fb *symptoms.FactBase) {
			mu.Lock()
			defer mu.Unlock()
			healthy = append(healthy, fb)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		svc.Start(ctx)
		for _, ev := range evs {
			if err := svc.Submit(ev); err != nil {
				t.Fatalf("submit %s: %v", ev.RunID, err)
			}
		}
		svc.Wait()
		svc.Stop()
		return healthy, svc.Stats()
	}

	// With the built-in database the fault diagnoses confidently:
	// nothing is healthy-period evidence.
	healthy, st := run(env)
	if len(healthy) != 0 {
		t.Fatalf("confident diagnoses must not be captured as healthy, got %d", len(healthy))
	}
	if st.Completed != int64(len(evs)) {
		t.Fatalf("completed=%d, want %d", st.Completed, len(evs))
	}

	// With an empty database every diagnosis stays below low
	// confidence: each completed diagnosis's facts reach the hook.
	empty := env
	empty.SymDB = symptoms.NewDB()
	healthy, st = run(empty)
	if int64(len(healthy)) != st.Completed || st.Completed == 0 {
		t.Fatalf("captured %d healthy bases from %d low-confidence diagnoses",
			len(healthy), st.Completed)
	}
	for _, fb := range healthy {
		if fb == nil || fb.Len() == 0 {
			t.Fatal("captured fact base is empty")
		}
	}
}

func TestSubmitDeduplicatesAndExertsBackpressure(t *testing.T) {
	env, evs := slowdownRig(t, 43)
	ev := evs[0]

	// No workers started: jobs stay queued, so duplicates and overflow
	// are observable deterministically.
	svc := New(env, Config{Workers: 1, Queue: 1})
	if err := svc.Submit(ev); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := svc.Submit(ev); err != ErrDuplicate {
		t.Errorf("duplicate submit = %v, want ErrDuplicate", err)
	}
	other := ev
	other.ReadWindow = simtime.NewInterval(ev.ReadWindow.Start, ev.ReadWindow.End.Add(simtime.Minute))
	if err := svc.Submit(other); err != ErrBackpressure {
		t.Errorf("overflow submit = %v, want ErrBackpressure", err)
	}
	st := svc.Stats()
	if st.Deduped != 1 || st.Rejected != 1 {
		t.Errorf("deduped=%d rejected=%d, want 1/1", st.Deduped, st.Rejected)
	}

	// After the queue drains, the same window is served from the result
	// cache and still counts the recurrence in the registry.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	svc.Wait()
	if err := svc.Submit(ev); err != ErrDuplicate {
		t.Errorf("cached re-submit = %v, want ErrDuplicate", err)
	}
	svc.Stop()
	if err := svc.Submit(ev); err != ErrStopped {
		t.Errorf("submit after stop = %v, want ErrStopped", err)
	}
	incs := svc.Registry().Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents")
	}
	if incs[0].Events != 2 {
		t.Errorf("events = %d, want 2 (diagnosis + cached recurrence)", incs[0].Events)
	}
}

// TestSubmitDedupKeyUsesExactWindowBounds pins the dedup key to the
// event's exact simtime read-window bounds (regression for the key
// converting bounds to a separate float64 representation): events whose
// read windows differ by any amount — even sub-second — are distinct
// jobs, and only a bit-for-bit identical window dedups.
func TestSubmitDedupKeyUsesExactWindowBounds(t *testing.T) {
	env, evs := slowdownRig(t, 47)
	ev := evs[0]

	// No workers started: jobs stay queued, so dedup is observable
	// deterministically.
	svc := New(env, Config{Workers: 1, Queue: 8})
	if err := svc.Submit(ev); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	shifted := ev
	shifted.ReadWindow.End = shifted.ReadWindow.End.Add(simtime.Duration(1e-3))
	if err := svc.Submit(shifted); err != nil {
		t.Fatalf("a sub-second window shift must be a distinct job, got %v", err)
	}
	if err := svc.Submit(shifted); err != ErrDuplicate {
		t.Errorf("bit-identical window must dedup, got %v", err)
	}
	if st := svc.Stats(); st.Submitted != 3 || st.Deduped != 1 {
		t.Errorf("submitted=%d deduped=%d, want 3/1", st.Submitted, st.Deduped)
	}
}

func TestServiceContextCancelStopsWorkers(t *testing.T) {
	env, evs := slowdownRig(t, 44)
	svc := New(env, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	svc.Start(ctx)
	for _, ev := range evs {
		_ = svc.Submit(ev)
	}
	cancel()
	svc.Stop() // must return despite canceled workers

	// Cancellation abandons queued jobs, so Wait must not hang on them
	// and further Submits must be refused.
	done := make(chan struct{})
	go func() { svc.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait deadlocked on jobs abandoned by cancellation")
	}
	if err := svc.Submit(evs[0]); err != ErrStopped {
		t.Errorf("submit after cancel = %v, want ErrStopped", err)
	}
}

func TestSubmitStopRaceDoesNotPanic(t *testing.T) {
	env, evs := slowdownRig(t, 45)
	for round := 0; round < 20; round++ {
		svc := New(env, Config{Workers: 1})
		ctx, cancel := context.WithCancel(context.Background())
		svc.Start(ctx)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, ev := range evs {
				ev.ReadWindow.End = ev.ReadWindow.End.Add(simtime.Duration(i)) // distinct keys
				_ = svc.Submit(ev)                                             // must never panic on closed channel
			}
		}()
		svc.Stop()
		wg.Wait()
		cancel()
	}
}

// TestRegistryRankingDeterministicTies pins the ranking's total order:
// incidents with equal estimated impact and recency must sort by the
// stable (instance, query, kind, subject) identity, never by map or
// completion order — fleet-level grouping is built on this.
func TestRegistryRankingDeterministicTies(t *testing.T) {
	mk := func(instance, query, kind, subject string) (*diag.Result, monitor.SlowdownEvent) {
		ci := symptoms.CauseInstance{Kind: kind, Subject: subject, Confidence: 90, Category: symptoms.High}
		res := &diag.Result{
			Query:  query,
			PD:     &diag.PDResult{},
			Causes: []symptoms.CauseInstance{ci},
			IA:     &diag.IAResult{Items: []diag.ImpactItem{{Cause: ci, Score: 50}}},
		}
		ev := monitor.SlowdownEvent{
			Instance: instance, Query: query, RunID: "r", At: 100,
			Duration: 120, Baseline: 60,
			Window: simtime.NewInterval(0, 100),
		}
		return res, ev
	}
	// Four incidents with identical impact (60s extra × 50%) and
	// identical LastSeen, differing only in identity fields.
	type rec struct{ instance, query, kind, subject string }
	recs := []rec{
		{"inst-1", "Q2", "cause-a", "vol-V1"},
		{"inst-0", "Q2", "cause-a", "vol-V2"},
		{"inst-0", "Q2", "cause-a", "vol-V1"},
		{"inst-0", "Q2", "cause-b", "vol-V1"},
	}
	want := []rec{
		{"inst-0", "Q2", "cause-a", "vol-V1"},
		{"inst-0", "Q2", "cause-a", "vol-V2"},
		{"inst-0", "Q2", "cause-b", "vol-V1"},
		{"inst-1", "Q2", "cause-a", "vol-V1"},
	}
	// Record in several insertion orders; the ranking must not move.
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		reg := NewRegistry()
		for _, i := range order {
			r := recs[i]
			res, ev := mk(r.instance, r.query, r.kind, r.subject)
			reg.Record(ev, res)
		}
		incs := reg.Incidents()
		if len(incs) != len(want) {
			t.Fatalf("order %v: incidents = %d, want %d", order, len(incs), len(want))
		}
		for i, w := range want {
			got := rec{incs[i].Instance, incs[i].Query, incs[i].Kind, incs[i].Subject}
			if got != w {
				t.Errorf("order %v: rank %d = %+v, want %+v", order, i+1, got, w)
			}
		}
	}
}

// TestRegistryIgnoresMinedCausesForIdentity pins that mined entries
// (symptom-learning proposals) corroborate but never name incidents:
// their global-scope subject is the query, not a component.
func TestRegistryIgnoresMinedCausesForIdentity(t *testing.T) {
	mined := symptoms.CauseInstance{
		Kind: "cause-a" + symptoms.MinedSuffix, Subject: "Q2",
		Confidence: 100, Category: symptoms.High,
	}
	base := symptoms.CauseInstance{
		Kind: "cause-a", Subject: "vol-V1", Confidence: 90, Category: symptoms.High,
	}
	res := &diag.Result{
		Query:  "Q2",
		PD:     &diag.PDResult{},
		Causes: []symptoms.CauseInstance{mined, base},
		IA: &diag.IAResult{Items: []diag.ImpactItem{
			{Cause: mined, Score: 80}, {Cause: base, Score: 70},
		}},
	}
	ev := monitor.SlowdownEvent{
		Query: "Q2", RunID: "r", At: 100, Duration: 120, Baseline: 60,
		Window: simtime.NewInterval(0, 100),
	}
	reg := NewRegistry()
	reg.Record(ev, res)
	incs := reg.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	if incs[0].Kind != "cause-a" || incs[0].Subject != "vol-V1" {
		t.Errorf("incident filed under %s(%s), want cause-a(vol-V1)",
			incs[0].Kind, incs[0].Subject)
	}
}

// TestServiceRoutesInstancesToTheirEnvironments pins fleet routing: the
// same (query, window) from two instances are distinct jobs diagnosed
// against their own environments, and an unregistered instance fails
// rather than silently using another instance's environment.
func TestServiceRoutesInstancesToTheirEnvironments(t *testing.T) {
	env, evs := slowdownRig(t, 46)
	svc := New(env, Config{Workers: 2})
	svc.AddInstance("inst-a", env)
	svc.AddInstance("inst-b", env)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	evA, evB, evX := evs[0], evs[0], evs[0]
	evA.Instance, evB.Instance, evX.Instance = "inst-a", "inst-b", "inst-unknown"
	if err := svc.Submit(evA); err != nil {
		t.Fatalf("submit inst-a: %v", err)
	}
	if err := svc.Submit(evB); err != nil {
		t.Fatalf("same window, different instance must not dedup: %v", err)
	}
	if err := svc.Submit(evA); err != ErrDuplicate {
		t.Errorf("same instance and window = %v, want ErrDuplicate", err)
	}
	if err := svc.Submit(evX); err != nil {
		t.Fatalf("submit unknown instance: %v", err)
	}
	svc.Wait()
	svc.Stop()

	st := svc.Stats()
	if st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 2 completed (a, b) and 1 failed (unknown)",
			st.Completed, st.Failed)
	}
	incs := svc.Registry().Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want one per instance", len(incs))
	}
	for _, inc := range incs {
		if inc.Instance != "inst-a" && inc.Instance != "inst-b" {
			t.Errorf("incident instance = %q", inc.Instance)
		}
	}
	if !strings.Contains(svc.Registry().Render(), "inst-a/Q2") {
		t.Errorf("render should show instance-qualified queries:\n%s", svc.Registry().Render())
	}
}

func TestRegistryRanksByEstimatedImpact(t *testing.T) {
	reg := NewRegistry()
	mk := func(query, kind, subject string, conf, impact float64) (*diag.Result, monitor.SlowdownEvent) {
		ci := symptoms.CauseInstance{Kind: kind, Subject: subject, Confidence: conf, Category: symptoms.High}
		res := &diag.Result{
			Query:  query,
			PD:     &diag.PDResult{},
			Causes: []symptoms.CauseInstance{ci},
			IA:     &diag.IAResult{Items: []diag.ImpactItem{{Cause: ci, Score: impact}}},
		}
		ev := monitor.SlowdownEvent{
			Query: query, RunID: "r", At: 100,
			Duration: 120, Baseline: 60,
			Window: simtime.NewInterval(0, 100),
		}
		return res, ev
	}

	resA, evA := mk("Q2", "cause-a", "vol-V1", 90, 100) // 60s extra × 100%
	resB, evB := mk("Q6", "cause-b", "vol-V2", 90, 10)  // 60s extra × 10%
	reg.Record(evB, resB)
	reg.Record(evA, resA)
	reg.Record(evA, resA) // recurrence doubles A's magnitude

	incs := reg.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2", len(incs))
	}
	if incs[0].Kind != "cause-a" {
		t.Errorf("top = %s, want cause-a (bigger impact)", incs[0].Kind)
	}
	if incs[0].Events != 2 || incs[0].TotalExtra != 120 {
		t.Errorf("aggregation: events=%d extra=%v, want 2/120s", incs[0].Events, incs[0].TotalExtra)
	}
	if got := incs[0].EstImpact(); got != 120 {
		t.Errorf("EstImpact = %.1f, want 120", got)
	}
	rendered := reg.Render()
	for _, want := range []string{"cause-a(vol-V1)", "cause-b(vol-V2)", "rank"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

// TestTraceIDThreadsDetectionToDiagnosis pins the observability story:
// the monitor's deterministic trace ID rides the event into the service,
// comes out on the diagnosis's pipeline trace, and ties together the
// queue-wait, diagnosis, and per-module spans on the default tracer. It
// also covers the typed Stats snapshot (queue depth included) and the
// self-observer hook.
func TestTraceIDThreadsDetectionToDiagnosis(t *testing.T) {
	env, evs := slowdownRig(t, 42)
	ev := evs[0]
	if ev.TraceID == "" {
		t.Fatal("monitor emitted an event without a trace ID")
	}
	if want := ev.Query + "/" + ev.RunID + "/" + string(ev.Kind); ev.TraceID != want {
		t.Errorf("trace ID = %q, want deterministic %q", ev.TraceID, want)
	}

	var observed []time.Duration
	var obsMu sync.Mutex
	svc := New(env, Config{Workers: 1})
	svc.Self = selfObserverFunc(func(query string, wall time.Duration) {
		obsMu.Lock()
		observed = append(observed, wall)
		obsMu.Unlock()
		if query != ev.Query {
			t.Errorf("self observer saw query %q, want %q", query, ev.Query)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	if err := svc.Submit(ev); err != nil {
		t.Fatalf("submit: %v", err)
	}
	svc.Wait()
	svc.Stop()

	st := svc.Stats()
	if st.Completed != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want 1 completed, empty queue", st)
	}
	obsMu.Lock()
	n := len(observed)
	obsMu.Unlock()
	if n != 1 {
		t.Fatalf("self observer saw %d diagnoses, want 1", n)
	}

	incs := svc.Registry().Incidents()
	if len(incs) == 0 || incs[0].Trace == nil {
		t.Fatal("no incident trace")
	}
	if incs[0].Trace.TraceID != ev.TraceID {
		t.Errorf("pipeline trace ID = %q, want %q", incs[0].Trace.TraceID, ev.TraceID)
	}

	spans := telemetry.DefaultTracer().Trace(ev.TraceID)
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"service.submit", "service.queue_wait", "service.diagnose", "module.pd", "module.ia"} {
		if !names[want] {
			t.Errorf("trace %s missing span %s (got %v)", ev.TraceID, want, names)
		}
	}
}

// selfObserverFunc adapts a function to the SelfObserver interface.
type selfObserverFunc func(query string, wall time.Duration)

func (f selfObserverFunc) ObserveDiagnosis(query string, wall time.Duration) { f(query, wall) }

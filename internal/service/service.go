// Package service turns the monitor's SlowdownEvents into diagnoses at
// fleet scale: a bounded worker pool drains a job queue with
// backpressure, in-flight jobs are deduplicated per (query, window),
// built Annotated Plan Graphs and symptoms-database evaluations are
// LRU-cached so repeated diagnoses of the same plan are near-free, and
// completed diagnoses feed a results registry that ranks open incidents
// by estimated impact (Module IA's score weighted by the slowdown each
// incident explains).
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diads/internal/apg"
	"diads/internal/cache"
	"diads/internal/dbsys"
	"diads/internal/diag"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/opt"
	"diads/internal/pipeline"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/topology"
)

// Submit errors.
var (
	// ErrBackpressure reports a full job queue: the caller should shed
	// or retry later; the event is counted as rejected.
	ErrBackpressure = errors.New("service: job queue full")
	// ErrDuplicate reports that an equivalent job is already queued,
	// running, or freshly diagnosed.
	ErrDuplicate = errors.New("service: duplicate job for (query, window)")
	// ErrStopped reports a Submit after Stop.
	ErrStopped = errors.New("service: stopped")
)

// Env is the diagnosis environment shared by every job: the monitoring
// store and the configuration state diag.Input requires. It is read-only
// from the service's perspective.
type Env struct {
	Store  *metrics.Store
	Cfg    *topology.Config
	Cat    *dbsys.Catalog
	Opt    *opt.Optimizer
	Params *dbsys.Params
	Stats  dbsys.Stats
	Server topology.ID
	SymDB  *symptoms.DB
	// Threshold overrides the anomaly-score threshold (0 = default).
	Threshold float64
}

// Config tunes the service.
type Config struct {
	// Workers is the pool size (default 4).
	Workers int
	// Queue is the job queue depth before Submit reports backpressure
	// (default 64).
	Queue int
	// APGCacheSize bounds the shared APG cache (default 32 plans).
	APGCacheSize int
	// SDCacheSize bounds the symptoms-evaluation cache (default 128).
	SDCacheSize int
	// ResultCacheSize bounds the completed-diagnosis cache that absorbs
	// re-submissions of an already-diagnosed (query, window) (default 128).
	ResultCacheSize int
	// ShardLabel, when non-empty, labels this service's scrape-time
	// callback metrics (queue depth, cache counters) with {"shard": v}.
	// A sharded fleet constructs one service per shard; without the
	// label, each registration would replace the previous shard's series.
	// Standalone services leave it empty and keep the unlabeled series.
	ShardLabel string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.APGCacheSize <= 0 {
		c.APGCacheSize = 32
	}
	if c.SDCacheSize <= 0 {
		c.SDCacheSize = 128
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 128
	}
	return c
}

// jobKey identifies a diagnosis job for deduplication: same instance,
// same query, same evidence read window. The window bounds are kept as
// simtime values, not converted to a different numeric type — dedup
// identity must be exactly the event's window, never an alias of it.
type jobKey struct {
	instance string
	query    string
	window   simtime.Interval // the event's evidence read window
}

// pendingStripes fans the dedup set out over independently locked
// stripes, so concurrent Submits for different keys stop serializing on
// one service-wide mutex (the contention the inst=8 bench exposed).
const pendingStripes = 16

type pendingStripe struct {
	mu sync.Mutex
	m  map[jobKey]bool
}

// stripe hashes the key (FNV-1a, inline so the hot path allocates
// nothing) onto its dedup stripe.
func (k jobKey) stripe() int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.instance); i++ {
		h = (h ^ uint64(k.instance[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("a","bc") != ("ab","c")
	for i := 0; i < len(k.query); i++ {
		h = (h ^ uint64(k.query[i])) * prime64
	}
	h = (h ^ math.Float64bits(float64(k.window.Start))) * prime64
	h = (h ^ math.Float64bits(float64(k.window.End))) * prime64
	return int(h % pendingStripes)
}

type job struct {
	key jobKey
	ev  monitor.SlowdownEvent
	// enqueued is the wall-clock instant Submit placed the job on the
	// queue; the dequeuing worker turns it into the queue-wait histogram
	// and span. Observational only — simulation time is untouched.
	enqueued time.Time
}

// Stats is the service's typed lifetime snapshot: counters, cache
// effectiveness, and the instantaneous queue depth. It is the one
// structure both the console summary and the /metrics exposition are
// derived from.
type Stats struct {
	Submitted  int64 // Submit calls
	Deduped    int64 // suppressed as queued/running/cached duplicates
	Rejected   int64 // shed under backpressure
	Completed  int64 // diagnoses finished
	Failed     int64 // diagnoses that returned an error
	QueueDepth int   // jobs currently waiting in the queue
	APG        cache.CacheStats
	SD         cache.CacheStats
	Results    cache.CacheStats
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf(
		"submitted=%d deduped=%d rejected=%d completed=%d failed=%d apg-cache=%d/%d sd-cache=%d/%d",
		s.Submitted, s.Deduped, s.Rejected, s.Completed, s.Failed,
		s.APG.Hits, s.APG.Hits+s.APG.Misses, s.SD.Hits, s.SD.Hits+s.SD.Misses)
}

// SelfObserver receives the wall time of every completed diagnosis.
// The dogfood loop (telemetry/selfmon) implements it: diadsd's own
// per-diagnosis latencies become a monitored workload, watched by its
// own monitor, so the diagnoser can raise a SlowdownEvent about itself.
type SelfObserver interface {
	ObserveDiagnosis(query string, wall time.Duration)
}

// serviceTelemetry bundles the service's shared instruments. Every
// service in the process (one per fleet in fleet mode) increments the
// same families on the default registry, so /metrics aggregates the
// whole process.
type serviceTelemetry struct {
	submitted *telemetry.Counter
	deduped   *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	queueWait *telemetry.Histogram
	diagWall  *telemetry.Histogram
}

func newServiceTelemetry() serviceTelemetry {
	reg := telemetry.Default()
	outcomes := func(outcome string) *telemetry.Counter {
		return reg.Counter("diads_service_jobs_total",
			"Diagnosis jobs by submit/run outcome.",
			telemetry.Labels{"outcome": outcome})
	}
	return serviceTelemetry{
		submitted: outcomes("submitted"),
		deduped:   outcomes("deduped"),
		rejected:  outcomes("rejected"),
		completed: outcomes("completed"),
		failed:    outcomes("failed"),
		queueWait: reg.Histogram("diads_service_queue_wait_seconds",
			"Wall time a job spent queued between Submit and worker dequeue.",
			nil, nil),
		diagWall: reg.Histogram("diads_service_diagnosis_wall_seconds",
			"Wall time of one complete diagnosis workflow.",
			nil, nil),
	}
}

// Service is the concurrent diagnosis engine. Construct with New, Start
// it, Submit events, and Stop (or cancel the context) to drain.
type Service struct {
	cfg Config
	env Env
	// envs holds per-instance diagnosis environments, keyed by
	// SlowdownEvent.Instance; events without an instance tag use env.
	// envmu guards it so AddInstance may run while the pool is serving —
	// the HTTP ingest path registers tenants on first contact.
	envmu sync.RWMutex
	envs  map[string]Env

	// OnDiagnosis, when non-nil, observes every completed diagnosis
	// (called from worker goroutines after the registry is updated). The
	// fleet layer hangs its symptom-transfer accounting on it. Set it
	// before Start.
	OnDiagnosis func(ev monitor.SlowdownEvent, res *diag.Result)

	// OnHealthy, when non-nil, observes the fact base of every completed
	// diagnosis that found nothing: no plan change and no cause above low
	// confidence. Such a diagnosis is a snapshot of ordinary operation —
	// facts that fire without an identifiable problem — and the fleet
	// layer feeds these bases to the symptom miner's background filter
	// and the candidate validator's healthy corpus. Called from worker
	// goroutines; set it before Start.
	OnHealthy func(ev monitor.SlowdownEvent, facts *symptoms.FactBase)

	// Self, when non-nil, observes every completed diagnosis's wall time
	// (called from worker goroutines). The dogfood loop hangs off it. Set
	// it before Start.
	Self SelfObserver

	jobs chan job
	quit chan struct{} // closed by Stop; retires the ctx watcher
	// sendMu serializes enqueues against Stop's close of the jobs
	// channel: Submit sends under the read lock, Stop closes under the
	// write lock after flipping stopped, so no send can hit a closed
	// channel. Reads share the lock, so Submits never contend with each
	// other here.
	sendMu  sync.RWMutex
	stopped atomic.Bool
	// pending is the striped queued-or-running dedup set; inflight
	// counts its members so Wait does not have to sweep the stripes.
	pending  [pendingStripes]pendingStripe
	inflight atomic.Int64
	idleMu   sync.Mutex
	idle     sync.Cond // signaled under idleMu when inflight drains to 0

	apgs    *cache.LRU[string, *apg.APG]
	sd      *cache.LRU[string, []symptoms.CauseInstance]
	results *cache.LRU[jobKey, *diag.Result]
	reg     *Registry

	modmu    sync.Mutex
	modstats map[string]*ModuleStat
	modorder []string

	wg sync.WaitGroup

	tel serviceTelemetry

	submitted, deduped, rejected, completed, failed atomic.Int64
}

// New returns a service over the environment.
func New(env Env, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		env:      env,
		jobs:     make(chan job, cfg.Queue),
		quit:     make(chan struct{}),
		apgs:     cache.New[string, *apg.APG](cfg.APGCacheSize),
		sd:       cache.New[string, []symptoms.CauseInstance](cfg.SDCacheSize),
		results:  cache.New[jobKey, *diag.Result](cfg.ResultCacheSize),
		reg:      NewRegistry(),
		modstats: make(map[string]*ModuleStat),
		tel:      newServiceTelemetry(),
	}
	for i := range s.pending {
		s.pending[i].m = make(map[jobKey]bool)
	}
	s.idle.L = &s.idleMu
	s.registerFuncs()
	return s
}

// registerFuncs installs the scrape-time callbacks: instantaneous queue
// depth and the shared caches' lifetime hit/miss/eviction totals (the
// counters PR 4 dropped from OnlineResult.Render re-surface here).
// Re-registering replaces the callback for a given (name, labels)
// series, so the newest service owns it — tests and restarting daemons
// construct many services. A sharded fleet sets Config.ShardLabel so
// each shard's service keeps its own series instead of replacing its
// siblings'; standalone services keep the unlabeled series the
// telemetry smoke test requires.
func (s *Service) registerFuncs() {
	reg := telemetry.Default()
	var shard telemetry.Labels
	if s.cfg.ShardLabel != "" {
		shard = telemetry.Labels{"shard": s.cfg.ShardLabel}
	}
	reg.GaugeFunc("diads_service_queue_depth",
		"Diagnosis jobs currently waiting in the queue.",
		shard, func() float64 { return float64(len(s.jobs)) })
	caches := map[string]func() cache.CacheStats{
		"apg":    s.apgs.Stats,
		"sd":     s.sd.Stats,
		"result": s.results.Stats,
	}
	for name, statsOf := range caches {
		labels := telemetry.Labels{"cache": name}
		if s.cfg.ShardLabel != "" {
			labels["shard"] = s.cfg.ShardLabel
		}
		statsOf := statsOf
		reg.CounterFunc("diads_cache_hits_total",
			"Shared diagnosis-cache hits.", labels,
			func() float64 { return float64(statsOf().Hits) })
		reg.CounterFunc("diads_cache_misses_total",
			"Shared diagnosis-cache misses.", labels,
			func() float64 { return float64(statsOf().Misses) })
		reg.CounterFunc("diads_cache_evictions_total",
			"Shared diagnosis-cache evictions.", labels,
			func() float64 { return float64(statsOf().Evictions) })
	}
}

// AddInstance registers a per-instance diagnosis environment: events
// tagged with the instance ID diagnose against it instead of the default
// environment. Safe to call while the service is running (the HTTP
// ingest path registers tenant instances on first contact); events for
// unregistered instances fail their diagnosis (counted in Stats.Failed).
func (s *Service) AddInstance(id string, env Env) {
	s.envmu.Lock()
	defer s.envmu.Unlock()
	if s.envs == nil {
		s.envs = make(map[string]Env)
	}
	s.envs[id] = env
}

// RemoveInstance unregisters a per-instance environment and purges the
// instance's scoped entries from the shared APG/SD/result caches — the
// dehydrate half of the instance lifecycle (fleet hibernation, HTTP
// tenant idle-out). Safe to call while the service is running, but the
// caller must guarantee no job for the instance is queued or in flight
// (the fleet removes only parked instances with empty gates; the API's
// single intake worker removes only idle instances), or subsequent
// diagnoses fail with an unknown environment. Removal changes memory
// only: cached artifacts are pure functions of instance state, so a
// later re-registration recomputes identical values.
func (s *Service) RemoveInstance(id string) {
	if id == "" {
		return
	}
	s.envmu.Lock()
	delete(s.envs, id)
	s.envmu.Unlock()
	prefix := id + "|" // diag cache keys are CacheScope + "|" + artifact identity
	s.apgs.RemoveIf(func(k string) bool { return strings.HasPrefix(k, prefix) })
	s.sd.RemoveIf(func(k string) bool { return strings.HasPrefix(k, prefix) })
	s.results.RemoveIf(func(k jobKey) bool { return k.instance == id })
}

// HasInstance reports whether a per-instance environment is registered.
func (s *Service) HasInstance(id string) bool {
	s.envmu.RLock()
	defer s.envmu.RUnlock()
	_, ok := s.envs[id]
	return ok
}

// envFor resolves the environment an event diagnoses against.
func (s *Service) envFor(instance string) (Env, bool) {
	if instance == "" {
		return s.env, true
	}
	s.envmu.RLock()
	env, ok := s.envs[instance]
	s.envmu.RUnlock()
	return env, ok
}

// Registry exposes the ranked-incident registry.
func (s *Service) Registry() *Registry { return s.reg }

// Stats returns the lifetime counters, including cache effectiveness.
func (s *Service) Stats() Stats {
	return Stats{
		Submitted:  s.submitted.Load(),
		Deduped:    s.deduped.Load(),
		Rejected:   s.rejected.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		QueueDepth: len(s.jobs),
		APG:        s.apgs.Stats(),
		SD:         s.sd.Stats(),
		Results:    s.results.Stats(),
	}
}

// Start launches the worker pool. Workers exit when the context is
// canceled or Stop closes the queue. Canceling the context abandons any
// still-queued jobs: they are dropped from the pending set so Wait does
// not block on work nothing will ever run.
func (s *Service) Start(ctx context.Context) {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
	go func() {
		select {
		case <-ctx.Done():
			s.stopped.Store(true)
			s.drainPending()
		case <-s.quit:
		}
	}()
}

// Stop closes the queue and waits for in-flight diagnoses to finish.
// Submit returns ErrStopped afterwards. Jobs still queued when the
// workers exit (possible when the start context was canceled) are
// abandoned and removed from the pending set so Wait cannot block on
// them.
func (s *Service) Stop() {
	if !s.stopped.Swap(true) {
		close(s.quit)
		// The write lock excludes every in-flight Submit send; any
		// Submit arriving after sees stopped and never reaches the
		// channel, so the close below cannot race a send.
		s.sendMu.Lock()
		close(s.jobs)
		s.sendMu.Unlock()
	}
	s.wg.Wait()
	s.drainPending()
}

// drainPending abandons every queued-or-running reservation: stripes are
// cleared and the inflight count settled so Wait cannot block on work
// nothing will ever run. Workers racing a drain are harmless — finish's
// membership check makes the decrement exactly-once per key.
func (s *Service) drainPending() {
	for i := range s.pending {
		st := &s.pending[i]
		st.mu.Lock()
		n := len(st.m)
		clear(st.m)
		st.mu.Unlock()
		if n > 0 && s.inflight.Add(int64(-n)) <= 0 {
			s.idleMu.Lock()
			s.idle.Broadcast()
			s.idleMu.Unlock()
		}
	}
}

// finish releases a key's queued-or-running reservation. The membership
// check keeps the inflight decrement exactly-once when a worker's
// deferred finish races drainPending.
func (s *Service) finish(key jobKey) {
	st := &s.pending[key.stripe()]
	st.mu.Lock()
	was := st.m[key]
	delete(st.m, key)
	st.mu.Unlock()
	if !was {
		return
	}
	if s.inflight.Add(-1) == 0 {
		s.idleMu.Lock()
		s.idle.Broadcast()
		s.idleMu.Unlock()
	}
}

// Wait blocks until every currently queued job has been diagnosed. It is
// a quiescence barrier for drivers that interleave submission and
// reporting; new Submits remain allowed.
func (s *Service) Wait() {
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	for s.inflight.Load() > 0 {
		s.idle.Wait()
	}
}

// Submit enqueues a diagnosis job for the event. It never blocks: a full
// queue returns ErrBackpressure, an already-pending or already-diagnosed
// (query, window) returns ErrDuplicate (bumping the incident's
// recurrence when a cached result exists). The hot path takes only the
// key's dedup stripe and a shared read lock — no service-wide mutex.
func (s *Service) Submit(ev monitor.SlowdownEvent) error {
	s.submitted.Add(1)
	s.tel.submitted.Inc()
	key := jobKey{instance: ev.Instance, query: ev.Query, window: ev.ReadWindow}

	if s.stopped.Load() {
		return ErrStopped
	}
	// Reserve the key first, then consult the result cache. The
	// reservation makes concurrent same-key Submits mutually exclusive,
	// and because run() caches the result before releasing its
	// reservation, a reservation acquired here after a completed run is
	// guaranteed to see that run's cached result below.
	st := &s.pending[key.stripe()]
	st.mu.Lock()
	if st.m[key] {
		st.mu.Unlock()
		s.deduped.Add(1)
		s.tel.deduped.Inc()
		s.span(ev.TraceID, "service.submit", attr("outcome", "deduped-pending"))
		return ErrDuplicate
	}
	st.m[key] = true
	s.inflight.Add(1)
	st.mu.Unlock()

	if res, ok := s.results.Get(key); ok {
		s.finish(key)
		s.deduped.Add(1)
		s.tel.deduped.Inc()
		s.span(ev.TraceID, "service.submit", attr("outcome", "deduped-cached"))
		s.reg.Record(ev, res) // recurrence of a known incident
		return ErrDuplicate
	}

	// Send under the read lock so the enqueue cannot race Stop's close:
	// Stop flips stopped before taking the write lock, so once we hold
	// the read lock a false stopped check proves the channel is open.
	s.sendMu.RLock()
	if s.stopped.Load() {
		s.sendMu.RUnlock()
		s.finish(key)
		return ErrStopped
	}
	select {
	case s.jobs <- job{key: key, ev: ev, enqueued: time.Now()}:
		s.sendMu.RUnlock()
		s.span(ev.TraceID, "service.submit", attr("outcome", "enqueued"))
		return nil
	default:
		s.sendMu.RUnlock()
		s.finish(key)
		s.rejected.Add(1)
		s.tel.rejected.Inc()
		s.span(ev.TraceID, "service.submit", attr("outcome", "rejected"))
		return ErrBackpressure
	}
}

// span records a zero-duration marker span on the default tracer.
func (s *Service) span(traceID, name string, attrs ...telemetry.Attr) {
	telemetry.DefaultTracer().Record(telemetry.Span{
		TraceID: traceID, Name: name, Start: time.Now(), Attrs: attrs,
	})
}

func attr(k, v string) telemetry.Attr { return telemetry.Attr{Key: k, Value: v} }

// worker drains the queue until shutdown.
func (s *Service) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-s.jobs:
			if !ok {
				return
			}
			s.run(ctx, j)
		}
	}
}

// run executes one diagnosis job. The deferred finish releases the
// dedup reservation only after every code path below — in particular
// after results.Put — so Submit's reserve-then-lookup ordering holds.
func (s *Service) run(ctx context.Context, j job) {
	defer s.finish(j.key)

	wait := time.Since(j.enqueued)
	s.tel.queueWait.Observe(wait.Seconds())
	telemetry.DefaultTracer().Record(telemetry.Span{
		TraceID: j.ev.TraceID, Name: "service.queue_wait",
		Start: j.enqueued, Duration: wait,
	})

	env, ok := s.envFor(j.ev.Instance)
	if !ok {
		s.failed.Add(1)
		s.tel.failed.Inc()
		return
	}
	in := &diag.Input{
		Query:        j.ev.Query,
		Runs:         j.ev.Runs,
		Satisfactory: j.ev.Satisfactory,
		Store:        env.Store,
		Cfg:          env.Cfg,
		Cat:          env.Cat,
		Opt:          env.Opt,
		Params:       env.Params,
		Stats:        env.Stats,
		Server:       env.Server,
		SymDB:        env.SymDB,
		Threshold:    env.Threshold,
		APGCache:     s.apgs,
		SDCache:      s.sd,
		CacheScope:   j.ev.Instance,
		TraceID:      j.ev.TraceID,
	}
	diagSpan := telemetry.DefaultTracer().Start(j.ev.TraceID, "service.diagnose")
	res, err := diag.DiagnoseContext(ctx, in)
	if err != nil {
		diagSpan.End(attr("outcome", "failed"), attr("error", err.Error()))
		s.failed.Add(1)
		s.tel.failed.Inc()
		return
	}
	wall := time.Since(diagSpan.StartedAt())
	diagSpan.End(attr("outcome", "completed"), attr("query", j.ev.Query))
	s.tel.diagWall.Observe(wall.Seconds())
	s.spanModules(j.ev.TraceID, res.Trace)
	s.recordTrace(res.Trace)
	s.results.Put(j.key, res)
	s.reg.Record(j.ev, res)
	s.completed.Add(1)
	s.tel.completed.Inc()
	if s.Self != nil {
		s.Self.ObserveDiagnosis(j.ev.Query, wall)
	}
	if s.OnDiagnosis != nil {
		s.OnDiagnosis(j.ev, res)
	}
	if s.OnHealthy != nil && res.Facts != nil {
		if kind, _, _, _ := topCauseOf(res); kind == "" {
			s.OnHealthy(j.ev, res.Facts)
		}
	}
}

// spanModules turns the workflow's per-module trace into spans under the
// event's trace ID, so /traces shows detection, queueing, and every
// module of the resulting diagnosis as one story.
func (s *Service) spanModules(traceID string, t *pipeline.Trace) {
	if t == nil {
		return
	}
	for _, mt := range t.Modules {
		telemetry.DefaultTracer().Record(telemetry.Span{
			TraceID: traceID, Name: "module." + mt.Module,
			Start: time.Now(), Duration: mt.Wall,
			Attrs: []telemetry.Attr{{Key: "status", Value: string(mt.Status)}},
		})
	}
}

// ModuleStat aggregates one workflow module's behavior across every
// diagnosis the service completed.
type ModuleStat struct {
	Module    string
	Runs      int64 // times the module executed
	CacheHits int64 // times the scheduler satisfied it from a cache
	Skipped   int64 // times a short circuit skipped it (plan changes)
	Wall      time.Duration
}

// recordTrace folds one diagnosis's trace into the per-module totals.
func (s *Service) recordTrace(t *pipeline.Trace) {
	if t == nil {
		return
	}
	s.modmu.Lock()
	defer s.modmu.Unlock()
	for _, mt := range t.Modules {
		st := s.modstats[mt.Module]
		if st == nil {
			st = &ModuleStat{Module: mt.Module}
			s.modstats[mt.Module] = st
			s.modorder = append(s.modorder, mt.Module)
		}
		switch mt.Status {
		case pipeline.StatusRan:
			st.Runs++
		case pipeline.StatusCacheHit:
			st.CacheHits++
		case pipeline.StatusSkipped:
			st.Skipped++
		}
		st.Wall += mt.Wall
	}
}

// ModuleStats returns the per-module aggregates in pipeline order — the
// fleet-level view of where diagnosis time goes and what the caches
// absorb.
func (s *Service) ModuleStats() []ModuleStat {
	s.modmu.Lock()
	defer s.modmu.Unlock()
	out := make([]ModuleStat, 0, len(s.modorder))
	for _, name := range s.modorder {
		out = append(out, *s.modstats[name])
	}
	return out
}

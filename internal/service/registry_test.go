package service

import (
	"reflect"
	"testing"

	"diads/internal/simtime"
)

// TestSortIncidentsFullTieBreak is the merge regression test for the
// sharded fleet: SortIncidents must be a total order over the full
// incident identity — impact, recency, then instance, query, kind,
// subject — so concatenating per-shard registries and sorting yields
// one ranking no matter how the incidents were partitioned. Each
// adjacent pair below ties on every key before the one that separates
// it, covering the whole chain (the registry's own tie test never
// varies the query).
func TestSortIncidentsFullTieBreak(t *testing.T) {
	mk := func(inst, query, kind, subject string, extra simtime.Duration, last simtime.Time) Incident {
		return Incident{
			Instance: inst, Query: query, Kind: kind, Subject: subject,
			ImpactPct: 100, TotalExtra: extra, LastSeen: last,
		}
	}
	want := []Incident{
		mk("i1", "Q2", "k1", "s1", 20, 100), // impact 20s beats everything below
		mk("i1", "Q2", "k1", "s1", 10, 200), // impact ties: most recent first
		mk("i0", "Q9", "k9", "s9", 10, 100), // recency ties: instance ascending
		mk("i1", "Q1", "k9", "s9", 10, 100), // instance ties: query ascending
		mk("i1", "Q2", "k0", "s9", 10, 100), // query ties: kind ascending
		mk("i1", "Q2", "k1", "s0", 10, 100), // kind ties: subject ascending
		mk("i1", "Q2", "k1", "s1", 10, 100),
	}
	// Sort every rotation of the expected order, simulating different
	// shard partitions of the same incidents; a total order must
	// reproduce the identical ranking each time.
	for rot := 0; rot < len(want); rot++ {
		in := make([]Incident, 0, len(want))
		in = append(in, want[rot:]...)
		in = append(in, want[:rot]...)
		SortIncidents(in)
		if !reflect.DeepEqual(in, want) {
			t.Fatalf("rotation %d: merged ranking diverged\n got: %+v\nwant: %+v", rot, in, want)
		}
	}
}

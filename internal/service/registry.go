package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"diads/internal/diag"
	"diads/internal/monitor"
	"diads/internal/pipeline"
	"diads/internal/simtime"
	"diads/internal/symptoms"
)

// PlanChangeKind is the synthetic cause kind of incidents whose diagnosis
// found a plan change (Module PD short-circuits before Module SD runs).
const PlanChangeKind = "plan-change"

// Incident is one open problem: a root cause aggregated across every
// diagnosis that identified it for a query.
type Incident struct {
	// Instance names the fleet instance the incident belongs to; empty
	// in single-instance deployments.
	Instance string
	Query    string
	// Kind and Subject name the root cause (PlanChangeKind for plan
	// regressions, otherwise a symptoms-database cause kind).
	Kind    string
	Subject string
	// Confidence is the latest diagnosis's confidence (percent).
	Confidence float64
	// ImpactPct is the latest Module IA impact score (percent of the
	// extra plan time explained).
	ImpactPct float64
	// TotalExtra accumulates the per-event slowdown (duration minus
	// baseline), the magnitude the incident has cost so far.
	TotalExtra simtime.Duration
	// Events counts the slowdown events attributed to the incident.
	Events int
	// FirstSeen and LastSeen bound the incident's lifetime.
	FirstSeen, LastSeen simtime.Time
	// Window is the latest diagnosis window.
	Window simtime.Interval
	// Result is the latest full diagnosis.
	Result *diag.Result
	// Trace is the latest diagnosis's per-module execution trace (wall
	// time, cache hits, short-circuit decisions) — the observability the
	// console's workflow-timing panel renders per incident.
	Trace *pipeline.Trace
}

// EstImpact is the incident's ranking key: the cumulative slowdown
// seconds the cause explains (Module IA's share of each event's extra
// running time).
func (inc *Incident) EstImpact() float64 {
	share := inc.ImpactPct / 100
	if inc.Kind == PlanChangeKind {
		share = 1 // the plan change explains the whole regression
	}
	return share * inc.TotalExtra.Seconds()
}

// incidentKey groups diagnoses into incidents.
type incidentKey struct {
	instance, query, kind, subject string
}

// Registry aggregates diagnoses into ranked open incidents. All methods
// are safe for concurrent use by the service's workers.
type Registry struct {
	mu   sync.Mutex
	open map[incidentKey]*Incident
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{open: make(map[incidentKey]*Incident)}
}

// Record folds one diagnosis into the registry: the top-ranked cause (or
// the plan change) becomes or updates an incident.
func (r *Registry) Record(ev monitor.SlowdownEvent, res *diag.Result) {
	if res == nil || res.PD == nil {
		return
	}
	kind, subject, confidence, impact := topCauseOf(res)
	if kind == "" {
		return // nothing above low confidence; not an incident
	}
	extra := ev.Duration - ev.Baseline
	if extra < 0 {
		extra = 0
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	k := incidentKey{instance: ev.Instance, query: ev.Query, kind: kind, subject: subject}
	inc := r.open[k]
	if inc == nil {
		inc = &Incident{
			Instance: ev.Instance, Query: ev.Query, Kind: kind, Subject: subject,
			FirstSeen: ev.At,
		}
		r.open[k] = inc
	}
	inc.TotalExtra += extra
	inc.Events++
	if ev.At < inc.FirstSeen {
		inc.FirstSeen = ev.At
	}
	// "Latest" fields follow the event latest in simulated time, not the
	// diagnosis that happened to complete last — concurrent workers may
	// finish out of order, and incident state must stay deterministic
	// per seed.
	if ev.At >= inc.LastSeen {
		inc.Confidence = confidence
		inc.ImpactPct = impact
		inc.LastSeen = ev.At
		inc.Window = ev.Window
		inc.Result = res
		inc.Trace = res.Trace
	}
}

// topCauseOf extracts the leading root cause of a diagnosis. Mined
// symptoms-database entries (kinds with symptoms.MinedSuffix) never name
// an incident: they are corroborating evidence pending expert adoption,
// and their global-scope subject is the query, not a component — filing
// under them would both misname the subject and fork a second incident
// for a cause the expert-authored entry already tracks.
func topCauseOf(res *diag.Result) (kind, subject string, confidence, impact float64) {
	if res.PD.Changed {
		subj := "plan"
		for _, c := range res.PD.Causes {
			if c.Explains {
				subj = string(c.Event.Subject)
				break
			}
		}
		return PlanChangeKind, subj, 100, 100
	}
	if res.IA != nil {
		for _, item := range res.IA.Items {
			if symptoms.IsMined(item.Cause.Kind) {
				continue
			}
			return item.Cause.Kind, item.Cause.Subject, item.Cause.Confidence, item.Score
		}
	}
	// Fall back to the raw SD ranking when IA produced no items.
	for _, c := range res.Causes {
		if c.Category != symptoms.Low && !symptoms.IsMined(c.Kind) {
			return c.Kind, c.Subject, c.Confidence, 0
		}
	}
	return "", "", 0, 0
}

// Incidents returns the open incidents ranked by estimated impact
// (descending), ties broken by recency then the full stable identity
// (instance, query, kind, subject). The tie-break chain covers every
// field of the incident key, so the ranking is a total order independent
// of map iteration and diagnosis completion order — fleet-level grouping
// built on top of it must never flutter between runs.
func (r *Registry) Incidents() []Incident {
	r.mu.Lock()
	out := make([]Incident, 0, len(r.open))
	for _, inc := range r.open {
		out = append(out, *inc)
	}
	r.mu.Unlock()
	SortIncidents(out)
	return out
}

// SortIncidents sorts incidents into the registry's ranking order:
// estimated impact descending, ties broken by recency then the full
// stable identity (instance, query, kind, subject). It is exported so
// the sharded fleet can merge per-shard registries into one fleet-wide
// ranking under exactly the contract Incidents guarantees — concatenate,
// sort, and the result is byte-stable regardless of which shard each
// incident came from.
func SortIncidents(out []Incident) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstImpact() != out[j].EstImpact() {
			return out[i].EstImpact() > out[j].EstImpact()
		}
		if out[i].LastSeen != out[j].LastSeen {
			return out[i].LastSeen > out[j].LastSeen
		}
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Subject < out[j].Subject
	})
}

// Len returns the number of open incidents.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Render formats the ranked incident report an operator reads.
func (r *Registry) Render() string {
	incs := r.Incidents()
	var b strings.Builder
	b.WriteString("open incidents (ranked by estimated impact)\n")
	b.WriteString(strings.Repeat("=", 78) + "\n")
	if len(incs) == 0 {
		b.WriteString("  none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-4s %-5s %-36s %-14s %6s %6s %9s\n",
		"rank", "query", "cause(subject)", "last seen", "events", "conf%", "impact(s)")
	for i, inc := range incs {
		q := inc.Query
		if inc.Instance != "" {
			q = inc.Instance + "/" + inc.Query
		}
		fmt.Fprintf(&b, "  %-4d %-5s %-36s %-14s %6d %6.0f %9.1f\n",
			i+1, q, fmt.Sprintf("%s(%s)", inc.Kind, inc.Subject),
			inc.LastSeen.Clock(), inc.Events, inc.Confidence, inc.EstImpact())
	}
	return b.String()
}

// Package selfheal implements the proactive-diagnosis/self-healing
// extension of Section 7: symptoms-database entries carry fixes, and once
// the workflow identifies a root cause, the corresponding remedy can be
// planned and verified. Because the fix may be needed in the database
// layer, the storage layer, or both, the remedy registry spans both —
// which is exactly the capability the paper argues an integrated tool
// enables.
package selfheal

import (
	"fmt"

	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/topology"
)

// Remedy is a planned fix for an identified root cause.
type Remedy struct {
	Cause       symptoms.CauseInstance
	Description string
	// Layer is "database", "storage", or "both".
	Layer string
	// Apply mutates a testbed under construction so the healed
	// environment can be simulated and verified.
	Apply func(tb *testbed.Testbed) error
}

// Plan maps an identified cause to its remedy. It returns an error for
// causes without an automated fix.
func Plan(cause symptoms.CauseInstance) (*Remedy, error) {
	switch cause.Kind {
	case symptoms.CauseSANMisconfig:
		victim := topology.ID(cause.Subject)
		return &Remedy{
			Cause:       cause,
			Description: "migrate the newly created volume out of " + cause.Subject + "'s pool",
			Layer:       "storage",
			Apply: func(tb *testbed.Testbed) error {
				// In the healed environment the contending workload's
				// volume lives in the other pool; remove its load from
				// the victim's pool by not re-creating it there. The
				// verification harness re-runs the scenario with the
				// fault redirected.
				_ = victim
				return nil
			},
		}, nil
	case symptoms.CauseExternalLoad:
		return &Remedy{
			Cause:       cause,
			Description: "throttle or reschedule the external workload contending with " + cause.Subject,
			Layer:       "storage",
			Apply:       func(*testbed.Testbed) error { return nil },
		}, nil
	case symptoms.CauseDataProperty:
		table := cause.Subject
		return &Remedy{
			Cause:       cause,
			Description: "ANALYZE " + table + " to refresh optimizer statistics",
			Layer:       "database",
			Apply: func(tb *testbed.Testbed) error {
				// Refresh the statistics snapshot: the optimizer and the
				// record-count estimates see the new data properties.
				tb.Stats = tb.Cat.Snapshot()
				tb.Engine.StatsBase = tb.Stats
				tb.Cfg.Log.Record(topology.Event{
					Kind: topology.EvStatsUpdated, Subject: topology.ID(table),
					Detail: "ANALYZE refreshed statistics",
				})
				return nil
			},
		}, nil
	case symptoms.CauseLockContention:
		return &Remedy{
			Cause:       cause,
			Description: "reschedule the batch transaction locking " + cause.Subject,
			Layer:       "database",
			Apply:       func(*testbed.Testbed) error { return nil },
		}, nil
	case symptoms.CausePlanRegression:
		idx := cause.Subject
		return &Remedy{
			Cause:       cause,
			Description: "recreate index " + idx,
			Layer:       "database",
			Apply: func(tb *testbed.Testbed) error {
				if !tb.Cat.RestoreIndex(idx) {
					return fmt.Errorf("selfheal: cannot restore index %q", idx)
				}
				tb.Cfg.Log.Record(topology.Event{
					Kind: topology.EvIndexCreated, Subject: topology.ID(idx),
					Detail: "index recreated by self-healing",
				})
				return nil
			},
		}, nil
	case symptoms.CauseCPUSaturation:
		return &Remedy{
			Cause:       cause,
			Description: "move the competing process off " + cause.Subject,
			Layer:       "database",
			Apply:       func(*testbed.Testbed) error { return nil },
		}, nil
	case symptoms.CauseDiskFailure:
		return &Remedy{
			Cause:       cause,
			Description: "replace the failed disk in " + cause.Subject,
			Layer:       "storage",
			Apply:       func(*testbed.Testbed) error { return nil },
		}, nil
	case symptoms.CauseRAIDRebuild:
		return &Remedy{
			Cause:       cause,
			Description: "lower the rebuild priority in " + cause.Subject,
			Layer:       "storage",
			Apply:       func(*testbed.Testbed) error { return nil },
		}, nil
	default:
		return nil, fmt.Errorf("selfheal: no automated remedy for cause %q", cause.Kind)
	}
}

// Verify checks a heal by comparing mean run durations: healed runs must
// recover to within tolerance of the healthy baseline.
func Verify(healthyMean, healedMean float64, tolerance float64) (bool, string) {
	if healthyMean <= 0 {
		return false, "no healthy baseline"
	}
	ratio := healedMean / healthyMean
	ok := ratio <= 1+tolerance
	return ok, fmt.Sprintf("healed/healthy duration ratio %.2f (tolerance %.2f)", ratio, 1+tolerance)
}

// Severity orders remedies: database-layer fixes are usually cheaper to
// apply than storage migrations, so ties in confidence prefer them.
func Severity(r *Remedy) int {
	switch r.Layer {
	case "database":
		return 0
	case "storage":
		return 1
	default:
		return 2
	}
}

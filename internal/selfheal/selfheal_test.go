package selfheal

import (
	"strings"
	"testing"

	"diads/internal/dbsys"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

func cause(kind, subject string) symptoms.CauseInstance {
	return symptoms.CauseInstance{
		Kind: kind, Subject: subject, Confidence: 95, Category: symptoms.High,
	}
}

func TestPlanCoversEveryBuiltinCause(t *testing.T) {
	for _, kind := range []string{
		symptoms.CauseSANMisconfig, symptoms.CauseExternalLoad,
		symptoms.CauseDataProperty, symptoms.CauseLockContention,
		symptoms.CausePlanRegression, symptoms.CauseCPUSaturation,
		symptoms.CauseDiskFailure, symptoms.CauseRAIDRebuild,
	} {
		r, err := Plan(cause(kind, "subject"))
		if err != nil {
			t.Errorf("no remedy for %s: %v", kind, err)
			continue
		}
		if r.Description == "" || r.Layer == "" || r.Apply == nil {
			t.Errorf("incomplete remedy for %s: %+v", kind, r)
		}
	}
	if _, err := Plan(cause("unknown-cause", "x")); err == nil {
		t.Fatalf("unknown cause should have no remedy")
	}
}

func TestPlanRegressionRemedyRestoresIndex(t *testing.T) {
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Cat.DropIndex(dbsys.IdxPartsuppPart) {
		t.Fatal("drop failed")
	}
	r, err := Plan(cause(symptoms.CausePlanRegression, dbsys.IdxPartsuppPart))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Description, "recreate") {
		t.Fatalf("remedy description: %s", r.Description)
	}
	if err := r.Apply(tb); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Cat.IndexOn(dbsys.TPartsupp, "ps_partkey"); !ok {
		t.Fatalf("index should be restored")
	}
	if evs := tb.Cfg.Log.OfKind("IndexCreated"); len(evs) != 1 {
		t.Fatalf("heal should log the index recreation")
	}
	// Applying against a missing index fails loudly.
	r2, _ := Plan(cause(symptoms.CausePlanRegression, "no_such_index"))
	if err := r2.Apply(tb); err == nil {
		t.Fatalf("restoring an unknown index should fail")
	}
}

func TestDataPropertyRemedyRefreshesStats(t *testing.T) {
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(72))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Cat.ScaleRows(dbsys.TPartsupp, 2.0); err != nil {
		t.Fatal(err)
	}
	staleRows := tb.Stats.RowsOf(dbsys.TPartsupp)
	r, err := Plan(cause(symptoms.CauseDataProperty, dbsys.TPartsupp))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Stats.RowsOf(dbsys.TPartsupp) != 2*staleRows {
		t.Fatalf("ANALYZE remedy should refresh statistics: %d vs stale %d",
			tb.Stats.RowsOf(dbsys.TPartsupp), staleRows)
	}
	if tb.Engine.StatsBase.RowsOf(dbsys.TPartsupp) != 2*staleRows {
		t.Fatalf("engine's stats base should refresh too")
	}
}

func TestVerify(t *testing.T) {
	if ok, _ := Verify(10, 11, 0.2); !ok {
		t.Fatalf("10%% over baseline within 20%% tolerance should pass")
	}
	if ok, _ := Verify(10, 14, 0.2); ok {
		t.Fatalf("40%% over baseline should fail at 20%% tolerance")
	}
	if ok, msg := Verify(0, 5, 0.2); ok || msg == "" {
		t.Fatalf("no baseline should fail with a message")
	}
}

func TestSeverityOrdering(t *testing.T) {
	db, _ := Plan(cause(symptoms.CauseLockContention, "t"))
	st, _ := Plan(cause(symptoms.CauseSANMisconfig, "v"))
	if Severity(db) >= Severity(st) {
		t.Fatalf("database fixes should order before storage fixes")
	}
}

package sanperf

import (
	"math"
	"testing"

	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// buildSAN creates two pools with volumes: P1{V1, Vp} (4 disks),
// P2{V2} (6 disks), mirroring the Figure 1 layout.
func buildSAN(t testing.TB) *topology.Config {
	t.Helper()
	c := topology.New()
	steps := []error{
		c.AddServer("srv-db", "db", nil),
		c.AddSubsystem("ss-1", "DS6000", "IBM"),
		c.AddPool("pool-P1", "ss-1", "P1", "RAID5"),
		c.AddPool("pool-P2", "ss-1", "P2", "RAID5"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []topology.ID{"disk-1", "disk-2", "disk-3", "disk-4"} {
		if err := c.AddDisk(d, "pool-P1", string(d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []topology.ID{"disk-5", "disk-6", "disk-7", "disk-8", "disk-9", "disk-10"} {
		if err := c.AddDisk(d, "pool-P2", string(d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []struct {
		id   topology.ID
		pool topology.ID
	}{{"vol-V1", "pool-P1"}, {"vol-Vp", "pool-P1"}, {"vol-V2", "pool-P2"}} {
		if err := c.AddVolume(v.id, v.pool, string(v.id), 100); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestTimelineSumAndMean(t *testing.T) {
	tl := NewTimeline()
	tl.Add("k", simtime.NewInterval(0, 100), 5, "a")
	tl.Add("k", simtime.NewInterval(50, 150), 3, "b")
	if got := tl.At("k", 25); got != 5 {
		t.Fatalf("At(25): %v", got)
	}
	if got := tl.At("k", 75); got != 8 {
		t.Fatalf("At(75): %v", got)
	}
	if got := tl.At("k", 125); got != 3 {
		t.Fatalf("At(125): %v", got)
	}
	if got := tl.At("k", 200); got != 0 {
		t.Fatalf("At(200): %v", got)
	}
	// Mean over [0,100): 5 everywhere + 3 over half = 6.5.
	if got := tl.MeanOver("k", simtime.NewInterval(0, 100)); math.Abs(got-6.5) > 1e-9 {
		t.Fatalf("MeanOver: %v", got)
	}
	src := tl.SourcesAt("k", 75)
	if len(src) != 2 || src[0] != "a" || src[1] != "b" {
		t.Fatalf("SourcesAt: %v", src)
	}
}

func TestTimelineIgnoresEmptySegments(t *testing.T) {
	tl := NewTimeline()
	tl.Add("k", simtime.NewInterval(10, 10), 5, "a") // zero length
	tl.Add("k", simtime.NewInterval(0, 10), 0, "a")  // zero value
	if len(tl.Segments("k")) != 0 {
		t.Fatalf("empty segments should be dropped")
	}
}

func TestSharedDiskContention(t *testing.T) {
	// The central causal mechanism of scenario 1: load on V' (same pool as
	// V1) slows V1's reads but leaves V2 untouched.
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	iv := simtime.NewInterval(1000, 2000)

	baseV1 := m.ReadResponse("vol-V1", 1500, false)
	baseV2 := m.ReadResponse("vol-V2", 1500, false)

	m.AddLoad(Load{Volume: "vol-Vp", Iv: iv, ReadIOPS: 300, WriteIOPS: 150, Source: "wl-external"})

	hotV1 := m.ReadResponse("vol-V1", 1500, false)
	hotV2 := m.ReadResponse("vol-V2", 1500, false)

	if hotV1 <= baseV1 {
		t.Fatalf("V1 response should rise under V' load: %v -> %v", baseV1, hotV1)
	}
	if float64(hotV1)/float64(baseV1) < 1.5 {
		t.Fatalf("V1 should slow substantially, got factor %.2f", float64(hotV1)/float64(baseV1))
	}
	if hotV2 != baseV2 {
		t.Fatalf("V2 (other pool) must be unaffected: %v -> %v", baseV2, hotV2)
	}
	// Outside the load window V1 recovers.
	if after := m.ReadResponse("vol-V1", 2500, false); after != baseV1 {
		t.Fatalf("V1 should recover after the load window: %v vs %v", after, baseV1)
	}
}

func TestQueueFactorSaturates(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	iv := simtime.NewInterval(0, 100)
	// Overwhelming load must produce a finite response.
	m.AddLoad(Load{Volume: "vol-V1", Iv: iv, ReadIOPS: 1e9, Source: "flood"})
	r := m.ReadResponse("vol-V1", 50, false)
	if math.IsInf(float64(r), 0) || math.IsNaN(float64(r)) {
		t.Fatalf("response must saturate, got %v", r)
	}
	maxFactor := 1 / (1 - DefaultDiskParams().MaxUtil)
	want := float64(DefaultDiskParams().RandomReadService) * maxFactor
	if math.Abs(float64(r)-want) > 1e-9 {
		t.Fatalf("saturated response: got %v, want %v", float64(r), want)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	if m.ReadResponse("vol-V1", 0, true) >= m.ReadResponse("vol-V1", 0, false) {
		t.Fatalf("sequential reads should be cheaper")
	}
}

func TestDiskFailureShiftsLoad(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	iv := simtime.NewInterval(0, 1000)
	m.AddLoad(Load{Volume: "vol-V1", Iv: iv, ReadIOPS: 200, Source: "steady"})
	before := m.DiskUtilization("disk-1", 500)
	m.FailDisk("disk-4", simtime.NewInterval(400, 600), "fault")
	during := m.DiskUtilization("disk-1", 500)
	after := m.DiskUtilization("disk-1", 700)
	if during <= before {
		t.Fatalf("surviving disks must absorb load: %v -> %v", before, during)
	}
	if math.Abs(after-before) > 1e-12 {
		t.Fatalf("utilization should recover after outage: %v vs %v", after, before)
	}
	if got := m.DiskUtilization("disk-4", 500); got != 1 {
		t.Fatalf("failed disk utilization should read 1, got %v", got)
	}
}

func TestRAIDRebuildUtilization(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	m.AddDiskUtilization("disk-2", simtime.NewInterval(100, 200), 0.5, "rebuild")
	if got := m.DiskUtilization("disk-2", 150); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rebuild util: %v", got)
	}
	if got := m.DiskUtilization("disk-2", 250); got != 0 {
		t.Fatalf("rebuild should end: %v", got)
	}
}

func TestResponseMonotoneInLoad(t *testing.T) {
	// Property: adding load never decreases any volume's response time.
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	iv := simtime.NewInterval(0, 1000)
	rnd := simtime.NewRand(3, "monotone")
	prev := m.ReadResponse("vol-V1", 500, false)
	for i := 0; i < 50; i++ {
		m.AddLoad(Load{
			Volume:   "vol-Vp",
			Iv:       iv,
			ReadIOPS: rnd.Float64() * 20,
			Source:   "inc",
		})
		cur := m.ReadResponse("vol-V1", 500, false)
		if cur < prev {
			t.Fatalf("response decreased after adding load: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestContributorsAt(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	m.AddLoad(Load{Volume: "vol-Vp", Iv: simtime.NewInterval(0, 100), ReadIOPS: 10, Source: "wl-x"})
	m.AddDiskUtilization("disk-1", simtime.NewInterval(0, 100), 0.1, "rebuild-1")
	got := m.ContributorsAt("vol-V1", 50)
	if len(got) != 2 {
		t.Fatalf("contributors: %v", got)
	}
}

func TestEmitMetricsProducesSeries(t *testing.T) {
	cfg := buildSAN(t)
	m := NewModel(cfg, DefaultDiskParams())
	iv := simtime.NewInterval(0, simtime.Time(time30min()))
	m.AddLoad(Load{Volume: "vol-V1", Iv: iv, ReadIOPS: 100, WriteIOPS: 40, Source: "q"})
	store := metrics.NewStore()
	sp := metrics.NewSampler(0, 0)
	m.EmitMetrics(store, sp, iv)

	rio := store.Series("vol-V1", metrics.VolReadIO)
	if len(rio) != 6 {
		t.Fatalf("readIO samples: %d", len(rio))
	}
	if math.Abs(rio[0].V-100) > 1e-9 {
		t.Fatalf("readIO value: %v", rio[0].V)
	}
	wt := store.Series("vol-V1", metrics.VolWriteTime)
	if len(wt) == 0 || wt[0].V <= 0 {
		t.Fatalf("writeTime missing or nonpositive: %v", wt)
	}
	// Disk series exist for pool P1 disks.
	if len(store.Series("disk-1", metrics.StPhysReadOps)) == 0 {
		t.Fatalf("disk metrics missing")
	}
	// Pool and subsystem aggregates exist.
	if len(store.Series("pool-P1", metrics.StTotalIOs)) == 0 {
		t.Fatalf("pool metrics missing")
	}
	if len(store.Series("ss-1", metrics.StTotalIOs)) == 0 {
		t.Fatalf("subsystem metrics missing")
	}
}

func time30min() simtime.Duration { return 30 * simtime.Minute }

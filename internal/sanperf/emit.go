package sanperf

import (
	"sort"

	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// I/O transfer sizes used to derive byte-rate metrics from IOPS.
const (
	randomIOKB     = 16
	sequentialIOKB = 64
)

// poolAt keys a pool-level memo entry at one sampling instant.
type poolAt struct {
	pool topology.ID
	t    simtime.Time
}

// poolWin keys a pool-level memo entry for one averaging window.
type poolWin struct {
	pool       topology.ID
	start, end simtime.Time
}

// activePool is a memoized activeDisksOf result.
type activePool struct {
	disks     []topology.ID
	allFailed bool
}

// poolRW holds a pool's volume-summed mean IOPS over one window.
type poolRW struct {
	read, write float64
}

// emitMemo caches pool-level intermediates across the series of one
// EmitMetrics call. Every series samples the same time grid, so without
// the memo each (pool, instant) utilization is recomputed once per
// volume series and each pool demand once per disk series. The memoized
// methods mirror their Model counterparts operation for operation —
// including float accumulation order — so they replay the exact values
// the unmemoized queries would produce. The memo lives for one
// EmitMetrics call on one goroutine (the Sampler contract is already
// single-goroutine), so no locking.
type emitMemo struct {
	m      *Model
	active map[poolAt]activePool
	demand map[poolAt]float64 // volumeDemand over the active set
	util   map[poolAt]float64 // PoolUtilization
	rw     map[poolWin]poolRW // per-volume MeanOver sums
}

func newEmitMemo(m *Model) *emitMemo {
	return &emitMemo{
		m:      m,
		active: make(map[poolAt]activePool),
		demand: make(map[poolAt]float64),
		util:   make(map[poolAt]float64),
		rw:     make(map[poolWin]poolRW),
	}
}

func (em *emitMemo) activeDisks(pool topology.ID, t simtime.Time) activePool {
	k := poolAt{pool, t}
	if a, ok := em.active[k]; ok {
		return a
	}
	disks, allFailed := em.m.activeDisksOf(pool, t)
	a := activePool{disks, allFailed}
	em.active[k] = a
	return a
}

func (em *emitMemo) volumeDemand(pool topology.ID, t simtime.Time, n float64) float64 {
	k := poolAt{pool, t}
	if d, ok := em.demand[k]; ok {
		return d
	}
	d := em.m.volumeDemand(pool, t, n)
	em.demand[k] = d
	return d
}

// poolUtilization mirrors Model.PoolUtilization.
func (em *emitMemo) poolUtilization(pool topology.ID, t simtime.Time) float64 {
	k := poolAt{pool, t}
	if u, ok := em.util[k]; ok {
		return u
	}
	var u float64
	a := em.activeDisks(pool, t)
	switch {
	case len(a.disks) == 0:
		u = 0
	case a.allFailed:
		u = 1
	default:
		n := float64(len(a.disks))
		share := em.volumeDemand(pool, t, n)
		var sum float64
		for _, d := range a.disks {
			sum += share + em.m.diskUtil.At(diskKey(d), t)
		}
		u = sum / n
	}
	em.util[k] = u
	return u
}

// diskUtilization mirrors Model.DiskUtilization.
func (em *emitMemo) diskUtilization(disk topology.ID, t simtime.Time) float64 {
	m := em.m
	pool := m.cfg.Parent(disk)
	if pool == "" {
		return 0
	}
	if !m.diskActive(disk, t) {
		return 1
	}
	a := em.activeDisks(pool, t)
	n := float64(len(a.disks))
	if n == 0 {
		return 1
	}
	return em.volumeDemand(pool, t, n) + m.diskUtil.At(diskKey(disk), t)
}

// readResponse mirrors Model.ReadResponse.
func (em *emitMemo) readResponse(vol topology.ID, t simtime.Time, sequential bool) simtime.Duration {
	m := em.m
	svc := m.params.RandomReadService
	if sequential {
		svc = m.params.SequentialReadService
	}
	pool := m.cfg.PoolOf(vol)
	if pool == "" {
		return svc
	}
	return simtime.Duration(float64(svc) * m.queueFactor(em.poolUtilization(pool, t)))
}

// writeResponse mirrors Model.WriteResponse.
func (em *emitMemo) writeResponse(vol topology.ID, t simtime.Time) simtime.Duration {
	m := em.m
	pool := m.cfg.PoolOf(vol)
	if pool == "" {
		return m.params.WriteService
	}
	return simtime.Duration(float64(m.params.WriteService) * m.queueFactor(em.poolUtilization(pool, t)))
}

// poolIOPS sums the pool volumes' mean read and write IOPS over w, each
// accumulated in volume order exactly as the per-metric loops did.
func (em *emitMemo) poolIOPS(pool topology.ID, w simtime.Interval) poolRW {
	k := poolWin{pool, w.Start, w.End}
	if v, ok := em.rw[k]; ok {
		return v
	}
	var v poolRW
	m := em.m
	for _, vol := range m.cfg.VolumesInPool(pool) {
		v.read += m.reads.MeanOver(volKey(vol), w)
		v.write += m.writes.MeanOver(volKey(vol), w)
	}
	em.rw[k] = v
	return v
}

// meanPoolWriteIOPS mirrors Model.MeanPoolWriteIOPS.
func (em *emitMemo) meanPoolWriteIOPS(vol topology.ID, w simtime.Interval) float64 {
	pool := em.m.cfg.PoolOf(vol)
	if pool == "" {
		return em.m.MeanWriteIOPS(vol, w)
	}
	return em.poolIOPS(pool, w).write
}

// EmitMetrics samples the model's ground-truth behaviour over iv and
// records the monitoring series a storage management tool would collect:
// per-volume rates and response times (including the writeIO/writeTime
// metrics of the paper's Table 2), per-disk physical I/O, and per-pool and
// per-subsystem aggregates.
//
// Rate metrics (IOPS, bytes) use exact interval averages, so even bursts
// much shorter than the monitoring interval contribute their share —
// smeared, exactly as the paper's "noisy data" challenge describes.
// Response-time metrics are integrated numerically, so sub-interval blips
// can be missed entirely, another realistic monitoring inaccuracy.
func (m *Model) EmitMetrics(store *metrics.Store, sp *metrics.Sampler, iv simtime.Interval) {
	cfg := m.cfg
	em := newEmitMemo(m)
	for _, vol := range cfg.All(topology.KindVolume) {
		vol := vol
		comp := string(vol)
		sp.RecordWindowMean(store, comp, metrics.VolReadIO, iv, func(w simtime.Interval) float64 {
			return m.MeanReadIOPS(vol, w)
		})
		// writeIO is reported at the array-site level, as the DS6000's
		// rank counters do: every write landing on the volume's backing
		// disks counts, including other volumes of the pool. This is why
		// the paper's Table 2 shows V1's writeIO anomalous under V'
		// contention although the database itself writes nothing to V1.
		sp.RecordWindowMean(store, comp, metrics.VolWriteIO, iv, func(w simtime.Interval) float64 {
			return em.meanPoolWriteIOPS(vol, w)
		})
		sp.RecordWindowMean(store, comp, metrics.StContaminatingWr, iv, func(w simtime.Interval) float64 {
			return em.meanPoolWriteIOPS(vol, w) - m.MeanWriteIOPS(vol, w)
		})
		sp.Record(store, comp, metrics.VolReadTime, iv, func(t simtime.Time) float64 {
			return float64(em.readResponse(vol, t, false)) * 1000 // ms
		})
		sp.Record(store, comp, metrics.VolWriteTime, iv, func(t simtime.Time) float64 {
			return float64(em.writeResponse(vol, t)) * 1000 // ms
		})
		sp.RecordWindowMean(store, comp, metrics.StBytesRead, iv, func(w simtime.Interval) float64 {
			seq := m.MeanSeqReadIOPS(vol, w)
			rnd := m.MeanReadIOPS(vol, w) - seq
			return seq*sequentialIOKB + rnd*randomIOKB // KB/s
		})
		sp.RecordWindowMean(store, comp, metrics.StBytesWritten, iv, func(w simtime.Interval) float64 {
			return m.MeanWriteIOPS(vol, w) * randomIOKB
		})
		sp.RecordWindowMean(store, comp, metrics.StSeqReadRequests, iv, func(w simtime.Interval) float64 {
			return m.MeanSeqReadIOPS(vol, w)
		})
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			return m.MeanReadIOPS(vol, w) + m.MeanWriteIOPS(vol, w)
		})
	}
	for _, disk := range cfg.All(topology.KindDisk) {
		disk := disk
		comp := string(disk)
		pool := cfg.Parent(disk)
		share := func(w simtime.Interval, read bool) float64 {
			mid := w.Start.Add(w.Length() / 2)
			n := float64(len(em.activeDisks(pool, mid).disks))
			if n == 0 || !m.diskActive(disk, mid) {
				return 0
			}
			rw := em.poolIOPS(pool, w)
			if read {
				return rw.read / n
			}
			return rw.write / n
		}
		sp.RecordWindowMean(store, comp, metrics.StPhysReadOps, iv, func(w simtime.Interval) float64 {
			return share(w, true)
		})
		sp.RecordWindowMean(store, comp, metrics.StPhysWriteOps, iv, func(w simtime.Interval) float64 {
			return share(w, false)
		})
		sp.Record(store, comp, metrics.StPhysReadTime, iv, func(t simtime.Time) float64 {
			return float64(m.params.RandomReadService) * m.queueFactor(em.diskUtilization(disk, t)) * 1000
		})
		sp.Record(store, comp, metrics.StPhysWriteTime, iv, func(t simtime.Time) float64 {
			return float64(m.params.WriteService) * m.queueFactor(em.diskUtilization(disk, t)) * 1000
		})
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			return share(w, true) + share(w, false)
		})
	}
	for _, pool := range cfg.All(topology.KindPool) {
		pool := pool
		comp := string(pool)
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			var sum float64
			for _, v := range cfg.VolumesInPool(pool) {
				sum += m.MeanReadIOPS(v, w) + m.MeanWriteIOPS(v, w)
			}
			return sum
		})
	}
	for _, ss := range cfg.All(topology.KindSubsystem) {
		ss := ss
		comp := string(ss)
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			var sum float64
			for _, pool := range cfg.ChildrenOfKind(ss, topology.KindPool) {
				for _, v := range cfg.VolumesInPool(pool) {
					sum += m.MeanReadIOPS(v, w) + m.MeanWriteIOPS(v, w)
				}
			}
			return sum
		})
	}
}

// EmitNetworkMetrics records FC-port traffic series for the ports on the
// route from server to each volume it is mapped to. Traffic is derived
// from the volumes' byte rates; error counters stay at zero unless faults
// add them elsewhere.
func (m *Model) EmitNetworkMetrics(store *metrics.Store, sp *metrics.Sampler, iv simtime.Interval, server topology.ID) {
	cfg := m.cfg
	perPort := make(map[topology.ID][]topology.ID) // port -> volumes routed through it
	for _, vol := range cfg.All(topology.KindVolume) {
		if !cfg.LUNVisible(vol, server) {
			continue
		}
		route, err := cfg.FabricRoute(server, vol)
		if err != nil {
			continue
		}
		for _, id := range route {
			if comp, ok := cfg.Get(id); ok && comp.Kind == topology.KindPort {
				perPort[id] = append(perPort[id], vol)
			}
		}
	}
	ports := make([]topology.ID, 0, len(perPort))
	for port := range perPort {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for _, port := range ports {
		port, vols := port, perPort[port]
		comp := string(port)
		traffic := func(w simtime.Interval) float64 {
			var kb float64
			for _, v := range vols {
				seq := m.MeanSeqReadIOPS(v, w)
				rnd := m.MeanReadIOPS(v, w) - seq
				kb += seq*sequentialIOKB + rnd*randomIOKB
				kb += m.MeanWriteIOPS(v, w) * randomIOKB
			}
			return kb
		}
		sp.RecordWindowMean(store, comp, metrics.NetBytesTransmitted, iv, traffic)
		sp.RecordWindowMean(store, comp, metrics.NetBytesReceived, iv, traffic)
		sp.RecordWindowMean(store, comp, metrics.NetPacketsTransmitted, iv, func(w simtime.Interval) float64 {
			return traffic(w) / 2 // 2KB frames
		})
		sp.Record(store, comp, metrics.NetErrorFrames, iv, func(simtime.Time) float64 { return 0 })
		sp.Record(store, comp, metrics.NetCRCErrors, iv, func(simtime.Time) float64 { return 0 })
	}
}

package sanperf

import (
	"sort"

	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// I/O transfer sizes used to derive byte-rate metrics from IOPS.
const (
	randomIOKB     = 16
	sequentialIOKB = 64
)

// EmitMetrics samples the model's ground-truth behaviour over iv and
// records the monitoring series a storage management tool would collect:
// per-volume rates and response times (including the writeIO/writeTime
// metrics of the paper's Table 2), per-disk physical I/O, and per-pool and
// per-subsystem aggregates.
//
// Rate metrics (IOPS, bytes) use exact interval averages, so even bursts
// much shorter than the monitoring interval contribute their share —
// smeared, exactly as the paper's "noisy data" challenge describes.
// Response-time metrics are integrated numerically, so sub-interval blips
// can be missed entirely, another realistic monitoring inaccuracy.
func (m *Model) EmitMetrics(store *metrics.Store, sp *metrics.Sampler, iv simtime.Interval) {
	cfg := m.cfg
	for _, vol := range cfg.All(topology.KindVolume) {
		vol := vol
		comp := string(vol)
		sp.RecordWindowMean(store, comp, metrics.VolReadIO, iv, func(w simtime.Interval) float64 {
			return m.MeanReadIOPS(vol, w)
		})
		// writeIO is reported at the array-site level, as the DS6000's
		// rank counters do: every write landing on the volume's backing
		// disks counts, including other volumes of the pool. This is why
		// the paper's Table 2 shows V1's writeIO anomalous under V'
		// contention although the database itself writes nothing to V1.
		sp.RecordWindowMean(store, comp, metrics.VolWriteIO, iv, func(w simtime.Interval) float64 {
			return m.MeanPoolWriteIOPS(vol, w)
		})
		sp.RecordWindowMean(store, comp, metrics.StContaminatingWr, iv, func(w simtime.Interval) float64 {
			return m.MeanPoolWriteIOPS(vol, w) - m.MeanWriteIOPS(vol, w)
		})
		sp.Record(store, comp, metrics.VolReadTime, iv, func(t simtime.Time) float64 {
			return float64(m.ReadResponse(vol, t, false)) * 1000 // ms
		})
		sp.Record(store, comp, metrics.VolWriteTime, iv, func(t simtime.Time) float64 {
			return float64(m.WriteResponse(vol, t)) * 1000 // ms
		})
		sp.RecordWindowMean(store, comp, metrics.StBytesRead, iv, func(w simtime.Interval) float64 {
			seq := m.MeanSeqReadIOPS(vol, w)
			rnd := m.MeanReadIOPS(vol, w) - seq
			return seq*sequentialIOKB + rnd*randomIOKB // KB/s
		})
		sp.RecordWindowMean(store, comp, metrics.StBytesWritten, iv, func(w simtime.Interval) float64 {
			return m.MeanWriteIOPS(vol, w) * randomIOKB
		})
		sp.RecordWindowMean(store, comp, metrics.StSeqReadRequests, iv, func(w simtime.Interval) float64 {
			return m.MeanSeqReadIOPS(vol, w)
		})
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			return m.MeanReadIOPS(vol, w) + m.MeanWriteIOPS(vol, w)
		})
	}
	for _, disk := range cfg.All(topology.KindDisk) {
		disk := disk
		comp := string(disk)
		pool := cfg.Parent(disk)
		share := func(w simtime.Interval, read bool) float64 {
			mid := w.Start.Add(w.Length() / 2)
			n := float64(len(m.activeDisks(pool, mid)))
			if n == 0 || !m.diskActive(disk, mid) {
				return 0
			}
			var sum float64
			for _, v := range cfg.VolumesInPool(pool) {
				if read {
					sum += m.MeanReadIOPS(v, w)
				} else {
					sum += m.MeanWriteIOPS(v, w)
				}
			}
			return sum / n
		}
		sp.RecordWindowMean(store, comp, metrics.StPhysReadOps, iv, func(w simtime.Interval) float64 {
			return share(w, true)
		})
		sp.RecordWindowMean(store, comp, metrics.StPhysWriteOps, iv, func(w simtime.Interval) float64 {
			return share(w, false)
		})
		sp.Record(store, comp, metrics.StPhysReadTime, iv, func(t simtime.Time) float64 {
			return float64(m.params.RandomReadService) * m.queueFactor(m.DiskUtilization(disk, t)) * 1000
		})
		sp.Record(store, comp, metrics.StPhysWriteTime, iv, func(t simtime.Time) float64 {
			return float64(m.params.WriteService) * m.queueFactor(m.DiskUtilization(disk, t)) * 1000
		})
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			return share(w, true) + share(w, false)
		})
	}
	for _, pool := range cfg.All(topology.KindPool) {
		pool := pool
		comp := string(pool)
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			var sum float64
			for _, v := range cfg.VolumesInPool(pool) {
				sum += m.MeanReadIOPS(v, w) + m.MeanWriteIOPS(v, w)
			}
			return sum
		})
	}
	for _, ss := range cfg.All(topology.KindSubsystem) {
		ss := ss
		comp := string(ss)
		sp.RecordWindowMean(store, comp, metrics.StTotalIOs, iv, func(w simtime.Interval) float64 {
			var sum float64
			for _, pool := range cfg.ChildrenOfKind(ss, topology.KindPool) {
				for _, v := range cfg.VolumesInPool(pool) {
					sum += m.MeanReadIOPS(v, w) + m.MeanWriteIOPS(v, w)
				}
			}
			return sum
		})
	}
}

// EmitNetworkMetrics records FC-port traffic series for the ports on the
// route from server to each volume it is mapped to. Traffic is derived
// from the volumes' byte rates; error counters stay at zero unless faults
// add them elsewhere.
func (m *Model) EmitNetworkMetrics(store *metrics.Store, sp *metrics.Sampler, iv simtime.Interval, server topology.ID) {
	cfg := m.cfg
	perPort := make(map[topology.ID][]topology.ID) // port -> volumes routed through it
	for _, vol := range cfg.All(topology.KindVolume) {
		if !cfg.LUNVisible(vol, server) {
			continue
		}
		route, err := cfg.FabricRoute(server, vol)
		if err != nil {
			continue
		}
		for _, id := range route {
			if comp, ok := cfg.Get(id); ok && comp.Kind == topology.KindPort {
				perPort[id] = append(perPort[id], vol)
			}
		}
	}
	ports := make([]topology.ID, 0, len(perPort))
	for port := range perPort {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for _, port := range ports {
		port, vols := port, perPort[port]
		comp := string(port)
		traffic := func(w simtime.Interval) float64 {
			var kb float64
			for _, v := range vols {
				seq := m.MeanSeqReadIOPS(v, w)
				rnd := m.MeanReadIOPS(v, w) - seq
				kb += seq*sequentialIOKB + rnd*randomIOKB
				kb += m.MeanWriteIOPS(v, w) * randomIOKB
			}
			return kb
		}
		sp.RecordWindowMean(store, comp, metrics.NetBytesTransmitted, iv, traffic)
		sp.RecordWindowMean(store, comp, metrics.NetBytesReceived, iv, traffic)
		sp.RecordWindowMean(store, comp, metrics.NetPacketsTransmitted, iv, func(w simtime.Interval) float64 {
			return traffic(w) / 2 // 2KB frames
		})
		sp.Record(store, comp, metrics.NetErrorFrames, iv, func(simtime.Time) float64 { return 0 })
		sp.Record(store, comp, metrics.NetCRCErrors, iv, func(simtime.Time) float64 { return 0 })
	}
}

// Package sanperf models the performance side of the SAN: how concurrent
// loads on volumes translate into disk utilization and I/O response times.
//
// The model is analytic rather than discrete-event: every load source
// (database query runs, external application workloads, RAID rebuilds)
// contributes piecewise-constant load segments to a timeline, and response
// times follow an M/M/1-style utilization law over the disks a volume
// stripes across. This reproduces the causal structure the paper's
// diagnosis scenarios depend on — most importantly that two volumes carved
// from the same pool contend for the same spindles, so a misconfigured
// volume V' degrades V1 without touching V2.
package sanperf

import (
	"sort"
	"sync"

	"diads/internal/simtime"
)

// Segment is one piecewise-constant load contribution.
type Segment struct {
	Iv     simtime.Interval
	V      float64
	Source string // who contributes this load (workload, query run, fault)
}

// Timeline accumulates named piecewise-constant quantities. The value of a
// key at time t is the sum of all segments active at t. It is safe for
// concurrent use.
type Timeline struct {
	mu   sync.RWMutex
	segs map[string][]Segment
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{segs: make(map[string][]Segment)}
}

// Add contributes a segment of value v to key over iv.
func (tl *Timeline) Add(key string, iv simtime.Interval, v float64, source string) {
	if iv.Length() <= 0 || v == 0 {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.segs[key] = append(tl.segs[key], Segment{Iv: iv, V: v, Source: source})
}

// At returns the summed value of key at time t.
func (tl *Timeline) At(key string, t simtime.Time) float64 {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	var sum float64
	for _, s := range tl.segs[key] {
		if s.Iv.Contains(t) {
			sum += s.V
		}
	}
	return sum
}

// MeanOver returns the time-average of key over iv.
func (tl *Timeline) MeanOver(key string, iv simtime.Interval) float64 {
	if iv.Length() <= 0 {
		return tl.At(key, iv.Start)
	}
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	var weighted float64
	for _, s := range tl.segs[key] {
		weighted += s.V * float64(s.Iv.Overlap(iv))
	}
	return weighted / float64(iv.Length())
}

// Truncate drops segments whose intervals end at or before the horizon
// and returns how many were dropped. Reads at or above the horizon are
// bit-identical afterwards: intervals are half-open, so a dropped
// segment neither Contains any t >= before nor Overlaps any interval
// starting there — its contribution to every surviving accumulation was
// exactly zero. Keys left without segments are removed.
func (tl *Timeline) Truncate(before simtime.Time) int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	n := 0
	//lint:allow mapiter kept is loop-local and every map write/delete is keyed by the loop key
	for k, segs := range tl.segs {
		kept := segs[:0]
		for _, s := range segs {
			if s.Iv.End > before {
				kept = append(kept, s)
			}
		}
		n += len(segs) - len(kept)
		if len(kept) == 0 {
			delete(tl.segs, k)
			continue
		}
		// Reallocate when truncation freed a meaningful fraction, so the
		// dropped tail's backing array does not stay pinned.
		if cap(segs) > 2*len(kept) {
			kept = append(make([]Segment, 0, len(kept)), kept...)
		}
		tl.segs[k] = kept
	}
	return n
}

// SourcesAt returns the distinct sources contributing to key at t, sorted.
func (tl *Timeline) SourcesAt(key string, t simtime.Time) []string {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	seen := make(map[string]bool)
	for _, s := range tl.segs[key] {
		if s.Iv.Contains(t) && s.Source != "" {
			seen[s.Source] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Segments returns a copy of the segments recorded under key.
func (tl *Timeline) Segments(key string) []Segment {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	out := make([]Segment, len(tl.segs[key]))
	copy(out, tl.segs[key])
	return out
}

// Keys returns all keys with at least one segment, sorted.
func (tl *Timeline) Keys() []string {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	out := make([]string, 0, len(tl.segs))
	for k := range tl.segs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package sanperf

import (
	"fmt"
	"math"

	"diads/internal/simtime"
	"diads/internal/topology"
)

// DiskParams characterize one class of physical disk.
type DiskParams struct {
	// RandomReadService is the service time of one random read I/O.
	RandomReadService simtime.Duration
	// SequentialReadService is the service time of one sequential read.
	SequentialReadService simtime.Duration
	// WriteService is the service time of one (cached) write.
	WriteService simtime.Duration
	// MaxUtil caps the utilization used in the queueing law; beyond it the
	// model saturates rather than diverging.
	MaxUtil float64
}

// DefaultDiskParams returns parameters resembling an enterprise 15k-RPM FC
// disk behind a controller write cache.
func DefaultDiskParams() DiskParams {
	return DiskParams{
		RandomReadService:     simtime.Duration(0.006), // 6 ms
		SequentialReadService: simtime.Duration(0.0008),
		WriteService:          simtime.Duration(0.002),
		MaxUtil:               0.92,
	}
}

// Load describes an I/O load applied to a volume over an interval.
type Load struct {
	Volume    topology.ID
	Iv        simtime.Interval
	ReadIOPS  float64
	WriteIOPS float64
	// SeqFrac is the fraction of reads that are sequential.
	SeqFrac float64
	// Source names the contributor (workload id, query run id, fault id).
	Source string
}

// Model is the SAN performance model. All mutating methods may be called
// in any order before queries; queries are pure functions of the recorded
// load state.
type Model struct {
	cfg    *topology.Config
	params DiskParams

	reads    *Timeline // key: volKey(vol) — read IOPS
	writes   *Timeline // key: volKey(vol) — write IOPS
	seqReads *Timeline // key: volKey(vol) — sequential read IOPS
	diskUtil *Timeline // key: diskKey(disk) — extra utilization fraction
	outage   *Timeline // key: diskKey(disk) — 1 while disk out of service
}

// NewModel returns a performance model over the given SAN configuration.
func NewModel(cfg *topology.Config, params DiskParams) *Model {
	return &Model{
		cfg:      cfg,
		params:   params,
		reads:    NewTimeline(),
		writes:   NewTimeline(),
		seqReads: NewTimeline(),
		diskUtil: NewTimeline(),
		outage:   NewTimeline(),
	}
}

// Config returns the SAN configuration the model operates over.
func (m *Model) Config() *topology.Config { return m.cfg }

// Params returns the disk parameters.
func (m *Model) Params() DiskParams { return m.params }

// Timeline keys are the component IDs themselves: each metric lives in its
// own Timeline, so volume and disk IDs cannot collide and the conversion
// stays allocation-free on the query path.
func volKey(v topology.ID) string  { return string(v) }
func diskKey(d topology.ID) string { return string(d) }

// AddLoad applies an I/O load to a volume.
func (m *Model) AddLoad(l Load) {
	m.reads.Add(volKey(l.Volume), l.Iv, l.ReadIOPS, l.Source)
	m.writes.Add(volKey(l.Volume), l.Iv, l.WriteIOPS, l.Source)
	m.seqReads.Add(volKey(l.Volume), l.Iv, l.ReadIOPS*l.SeqFrac, l.Source)
}

// AddDiskUtilization applies direct extra utilization to a disk, e.g. the
// background traffic of a RAID rebuild.
func (m *Model) AddDiskUtilization(disk topology.ID, iv simtime.Interval, util float64, source string) {
	m.diskUtil.Add(diskKey(disk), iv, util, source)
}

// FailDisk takes a disk out of service for iv: the remaining pool disks
// absorb its share of the load.
func (m *Model) FailDisk(disk topology.ID, iv simtime.Interval, source string) {
	m.outage.Add(diskKey(disk), iv, 1, source)
}

// Truncate drops load, utilization, and outage segments that end at or
// before the horizon, returning how many were dropped. Queries at or
// after the horizon — instantaneous or window means — are bit-identical
// afterwards (see Timeline.Truncate); callers must therefore never emit
// or diagnose below the horizon again, which the evidence low-watermark
// contract guarantees.
func (m *Model) Truncate(before simtime.Time) int {
	n := m.reads.Truncate(before)
	n += m.writes.Truncate(before)
	n += m.seqReads.Truncate(before)
	n += m.diskUtil.Truncate(before)
	n += m.outage.Truncate(before)
	return n
}

// diskActive reports whether the disk is in service at t.
func (m *Model) diskActive(disk topology.ID, t simtime.Time) bool {
	return m.outage.At(diskKey(disk), t) == 0
}

// activeDisks returns the in-service disks of a pool at t. If every disk
// failed it returns the full set to avoid division by zero; the pool is
// then fully saturated anyway.
func (m *Model) activeDisks(pool topology.ID, t simtime.Time) []topology.ID {
	disks, _ := m.activeDisksOf(pool, t)
	return disks
}

// activeDisksOf is activeDisks plus a flag for the every-disk-failed
// fallback, so callers need not re-probe the outage timeline per disk.
func (m *Model) activeDisksOf(pool topology.ID, t simtime.Time) ([]topology.ID, bool) {
	disks := m.cfg.ChildrenOfKind(pool, topology.KindDisk)
	var active []topology.ID
	for _, d := range disks {
		if m.diskActive(d, t) {
			active = append(active, d)
		}
	}
	if len(active) == 0 {
		return disks, true
	}
	return active, false
}

// VolumeReadIOPS returns the total read IOPS applied to vol at t.
func (m *Model) VolumeReadIOPS(vol topology.ID, t simtime.Time) float64 {
	return m.reads.At(volKey(vol), t)
}

// VolumeWriteIOPS returns the total write IOPS applied to vol at t.
func (m *Model) VolumeWriteIOPS(vol topology.ID, t simtime.Time) float64 {
	return m.writes.At(volKey(vol), t)
}

// MeanReadIOPS returns the exact time-average read IOPS on vol over iv.
// Rate metrics are linear in the load segments, so monitoring-interval
// averages can be computed exactly even for bursts much shorter than the
// monitoring interval.
func (m *Model) MeanReadIOPS(vol topology.ID, iv simtime.Interval) float64 {
	return m.reads.MeanOver(volKey(vol), iv)
}

// MeanWriteIOPS returns the exact time-average write IOPS on vol over iv.
func (m *Model) MeanWriteIOPS(vol topology.ID, iv simtime.Interval) float64 {
	return m.writes.MeanOver(volKey(vol), iv)
}

// MeanSeqReadIOPS returns the exact time-average sequential-read IOPS on
// vol over iv.
func (m *Model) MeanSeqReadIOPS(vol topology.ID, iv simtime.Interval) float64 {
	return m.seqReads.MeanOver(volKey(vol), iv)
}

// MeanPoolWriteIOPS returns the time-average write IOPS landing on vol's
// backing disks: the writes of every volume in its pool. This is the
// array-site ("rank") view a storage controller reports per volume.
func (m *Model) MeanPoolWriteIOPS(vol topology.ID, iv simtime.Interval) float64 {
	pool := m.cfg.PoolOf(vol)
	if pool == "" {
		return m.MeanWriteIOPS(vol, iv)
	}
	var sum float64
	for _, v := range m.cfg.VolumesInPool(pool) {
		sum += m.writes.MeanOver(volKey(v), iv)
	}
	return sum
}

// volumeSeqFrac returns the sequential fraction of vol's reads at t.
// r is the volume's read IOPS at t, passed in so callers that already
// queried the read timeline don't pay for a second lookup.
func (m *Model) volumeSeqFrac(vol topology.ID, t simtime.Time, r float64) float64 {
	if r <= 0 {
		return 0
	}
	f := m.seqReads.At(volKey(vol), t) / r
	return math.Min(1, math.Max(0, f))
}

// volumeDemand returns the per-disk service demand of the pool's volumes
// at t when their load spreads across n in-service disks. Every active
// disk of a pool shares this term; only direct disk load differs per disk.
func (m *Model) volumeDemand(pool topology.ID, t simtime.Time, n float64) float64 {
	var demand float64 // busy seconds per second
	for _, vol := range m.cfg.VolumesInPool(pool) {
		r := m.reads.At(volKey(vol), t)
		w := m.writes.At(volKey(vol), t)
		seq := m.volumeSeqFrac(vol, t, r)
		readSvc := float64(m.params.RandomReadService)*(1-seq) +
			float64(m.params.SequentialReadService)*seq
		demand += (r*readSvc + w*float64(m.params.WriteService)) / n
	}
	return demand
}

// DiskUtilization returns the utilization of one disk at t: the summed
// service demand of every volume striping across it, plus direct disk
// load, adjusted for failed siblings.
func (m *Model) DiskUtilization(disk topology.ID, t simtime.Time) float64 {
	pool := m.cfg.Parent(disk)
	if pool == "" {
		return 0
	}
	if !m.diskActive(disk, t) {
		return 1
	}
	n := float64(len(m.activeDisks(pool, t)))
	if n == 0 {
		return 1
	}
	return m.volumeDemand(pool, t, n) + m.diskUtil.At(diskKey(disk), t)
}

// PoolUtilization returns the mean utilization across a pool's in-service
// disks at t. The shared volume-demand term is computed once for the pool
// rather than once per disk, so the cost is O(disks + volumes) instead of
// O(disks × volumes); per-disk results match DiskUtilization exactly.
func (m *Model) PoolUtilization(pool topology.ID, t simtime.Time) float64 {
	disks, allFailed := m.activeDisksOf(pool, t)
	if len(disks) == 0 {
		return 0
	}
	if allFailed {
		// Every disk reports utilization 1, so the mean is exactly 1.
		return 1
	}
	n := float64(len(disks))
	share := m.volumeDemand(pool, t, n)
	var sum float64
	for _, d := range disks {
		sum += share + m.diskUtil.At(diskKey(d), t)
	}
	return sum / n
}

// queueFactor converts utilization into the M/M/1 response multiplier
// 1/(1-rho), saturating at MaxUtil.
func (m *Model) queueFactor(util float64) float64 {
	rho := math.Min(util, m.params.MaxUtil)
	if rho < 0 {
		rho = 0
	}
	return 1 / (1 - rho)
}

// ReadResponse returns the expected response time of one read I/O against
// vol at t. sequential selects the sequential service time.
func (m *Model) ReadResponse(vol topology.ID, t simtime.Time, sequential bool) simtime.Duration {
	svc := m.params.RandomReadService
	if sequential {
		svc = m.params.SequentialReadService
	}
	pool := m.cfg.PoolOf(vol)
	if pool == "" {
		return svc
	}
	return simtime.Duration(float64(svc) * m.queueFactor(m.PoolUtilization(pool, t)))
}

// WriteResponse returns the expected response time of one write I/O
// against vol at t.
func (m *Model) WriteResponse(vol topology.ID, t simtime.Time) simtime.Duration {
	pool := m.cfg.PoolOf(vol)
	if pool == "" {
		return m.params.WriteService
	}
	return simtime.Duration(float64(m.params.WriteService) * m.queueFactor(m.PoolUtilization(pool, t)))
}

// ContributorsAt names the load sources active on a volume's pool at t —
// the ground truth a diagnosis should recover.
func (m *Model) ContributorsAt(vol topology.ID, t simtime.Time) []string {
	pool := m.cfg.PoolOf(vol)
	seen := make(map[string]bool)
	var out []string
	addAll := func(ss []string) {
		for _, s := range ss {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	for _, v := range m.cfg.VolumesInPool(pool) {
		addAll(m.reads.SourcesAt(volKey(v), t))
		addAll(m.writes.SourcesAt(volKey(v), t))
	}
	for _, d := range m.cfg.ChildrenOfKind(pool, topology.KindDisk) {
		addAll(m.diskUtil.SourcesAt(diskKey(d), t))
	}
	return out
}

// String implements fmt.Stringer with a compact summary.
func (m *Model) String() string {
	return fmt.Sprintf("sanperf.Model(%d volumes, %d disks)",
		len(m.cfg.All(topology.KindVolume)), len(m.cfg.All(topology.KindDisk)))
}

// Package baseline implements the silo diagnosis tools the paper
// contrasts DIADS against in Section 5: a SAN-only tool that sees volume
// metrics but no query structure, and a database-only tool that sees
// operator slowdowns but no SAN topology. It also provides the
// correlation-based analyzer (a stand-in for heavier models such as
// Bayesian networks) used to reproduce the paper's observation that KDE
// is more accurate with few samples and more robust to noise.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"diads/internal/diag"
	"diads/internal/kde"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// Finding is one hypothesis produced by a silo tool.
type Finding struct {
	Subject string
	Detail  string
	Score   float64
}

// Report is a silo tool's output, ordered by score.
type Report struct {
	Tool     string
	Findings []Finding
}

// String implements fmt.Stringer.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s findings:\n", r.Tool)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %-28s score=%.2f  %s\n", f.Subject, f.Score, f.Detail)
	}
	return b.String()
}

// SANOnly diagnoses using only SAN monitoring data: it scores every
// volume's I/O metrics across the satisfactory/unsatisfactory windows and
// reports the loaded volumes — without operator-level evidence it cannot
// tell which volume actually hurt the query, and it weights busier
// volumes higher ("the tool may give more importance to V2 because most
// of the data is on V2").
func SANOnly(in *diag.Input) (*Report, error) {
	rep := &Report{Tool: "SAN-only"}
	sat, unsat := satUnsatWindows(in)
	for _, vol := range in.Cfg.All(topology.KindVolume) {
		c := string(vol)
		var best float64
		var bestMetric metrics.Metric
		for _, m := range []metrics.Metric{metrics.VolReadIO, metrics.VolWriteIO,
			metrics.VolReadTime, metrics.VolWriteTime, metrics.StTotalIOs} {
			score, ok := windowScore(in.Store, c, m, sat, unsat)
			if ok && score > best {
				best = score
				bestMetric = m
			}
		}
		if best > in.Threshold0() {
			// Busier volumes are weighted up: the tool ranks by anomaly
			// times current load share, its characteristic mistake.
			load := meanOver(in.Store, c, metrics.StTotalIOs, unsat)
			rep.Findings = append(rep.Findings, Finding{
				Subject: c,
				Detail:  fmt.Sprintf("anomalous %s; current load %.0f IO/s", bestMetric, load),
				Score:   best * (1 + load/500),
			})
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool { return rep.Findings[i].Score > rep.Findings[j].Score })
	return rep, nil
}

// DBOnly diagnoses using only database monitoring: operator slowdowns and
// database counters. It pinpoints slow operators but, blind to the SAN,
// falls back on generic database hypotheses — "several false positives
// like a suboptimal buffer pool setting or a suboptimal choice of
// execution plan".
func DBOnly(in *diag.Input) (*Report, error) {
	rep := &Report{Tool: "DB-only"}
	sat, unsat := in.SatRuns(), in.UnsatRuns()
	if len(sat) == 0 || len(unsat) == 0 {
		return nil, fmt.Errorf("baseline: need labeled runs")
	}
	p := unsat[0].Plan
	for _, n := range p.Nodes() {
		if n.ID == p.Root.ID {
			continue
		}
		var satT, unsatT []float64
		for _, r := range sat {
			if op := r.Op(n.ID); op != nil {
				satT = append(satT, float64(op.Recorded))
			}
		}
		for _, r := range unsat {
			if op := r.Op(n.ID); op != nil {
				unsatT = append(unsatT, float64(op.Recorded))
			}
		}
		score, err := kde.AnomalyScore(satT, unsatT)
		if err != nil || score <= in.Threshold0() {
			continue
		}
		rep.Findings = append(rep.Findings, Finding{
			Subject: fmt.Sprintf("operator O%d (%s)", n.ID, n.Type),
			Detail:  "running time anomalous",
			Score:   score,
		})
	}
	// Generic database-level hypotheses: without SAN visibility every
	// slow-I/O signature looks like a cache or plan problem.
	if len(rep.Findings) > 0 {
		rep.Findings = append(rep.Findings,
			Finding{Subject: "buffer pool setting", Detail: "suboptimal shared_buffers suspected", Score: 0.85},
			Finding{Subject: "execution plan choice", Detail: "suboptimal plan suspected", Score: 0.82},
		)
	}
	sort.Slice(rep.Findings, func(i, j int) bool { return rep.Findings[i].Score > rep.Findings[j].Score })
	return rep, nil
}

// satUnsatWindows returns the runs' evidence windows (metrics.ReadWindow)
// for both labels.
func satUnsatWindows(in *diag.Input) (sat, unsat []simtime.Interval) {
	for _, r := range in.SatRuns() {
		sat = append(sat, metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop)))
	}
	for _, r := range in.UnsatRuns() {
		unsat = append(unsat, metrics.ReadWindow(simtime.NewInterval(r.Start, r.Stop)))
	}
	return sat, unsat
}

// windowScore computes a KDE anomaly score from per-window means.
func windowScore(store *metrics.Store, component string, m metrics.Metric, sat, unsat []simtime.Interval) (float64, bool) {
	var satVals, unsatVals []float64
	for _, iv := range sat {
		if mean, n := store.WindowMean(component, m, iv); n > 0 {
			satVals = append(satVals, mean)
		}
	}
	for _, iv := range unsat {
		if mean, n := store.WindowMean(component, m, iv); n > 0 {
			unsatVals = append(unsatVals, mean)
		}
	}
	if len(satVals) < 4 || len(unsatVals) == 0 {
		return 0, false
	}
	score, err := kde.AnomalyScore(satVals, unsatVals)
	if err != nil {
		return 0, false
	}
	return score, true
}

// meanOver averages a metric over a set of windows.
func meanOver(store *metrics.Store, component string, m metrics.Metric, windows []simtime.Interval) float64 {
	var sum float64
	var n int
	for _, iv := range windows {
		if mean, k := store.WindowMean(component, m, iv); k > 0 {
			sum += mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

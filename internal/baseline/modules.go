package baseline

import (
	"context"
	"fmt"

	"diads/internal/diag"
	"diads/internal/pipeline"
)

// KeyReport is the blackboard key (and module name) under which a silo
// pipeline stores its *Report.
const KeyReport = "report"

// Silo pipeline registry names.
const (
	PipelineSANOnly = "san-only"
	PipelineDBOnly  = "db-only"
)

// SANOnlyPipeline returns the SAN-only silo tool as a pipeline over the
// shared diagnosis blackboard, so it registers and runs through the same
// engine as the full DIADS DAG.
func SANOnlyPipeline() *pipeline.Pipeline { return siloPipeline(PipelineSANOnly, SANOnly) }

// DBOnlyPipeline returns the database-only silo tool as a pipeline.
func DBOnlyPipeline() *pipeline.Pipeline { return siloPipeline(PipelineDBOnly, DBOnly) }

// siloPipeline wraps a silo analyzer as a single-module DAG reading the
// seeded diag.Input and producing a Report.
func siloPipeline(name string, tool func(*diag.Input) (*Report, error)) *pipeline.Pipeline {
	m := &pipeline.Module{
		Name: KeyReport,
		Run: func(ctx context.Context, bb *pipeline.Blackboard) (any, error) {
			in, ok := pipeline.Get[*diag.Input](bb, diag.KeyInput)
			if !ok {
				return nil, fmt.Errorf("baseline: blackboard has no %q (seed it with diag.NewBoard)", diag.KeyInput)
			}
			return tool(in)
		},
	}
	p, err := pipeline.New(name, m)
	if err != nil {
		panic(err) // static construction; unreachable
	}
	return p
}

package baseline

import (
	"strings"
	"testing"

	"diads/internal/diag"
	"diads/internal/faults"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

// scenario1WithV2Burst reproduces the paper's robustness variant: V1
// contention from the misconfigured V', plus bursty extra load on V2 that
// barely affects the query.
func scenario1WithV2Burst(t testing.TB, seed int64) (*testbed.Testbed, *diag.Input) {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	runs := 16
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: runs},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs)*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	mid := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs/2)*30*simtime.Minute) - simtime.Time(5*simtime.Minute)
	err = faults.Inject(tb,
		&faults.SANMisconfiguration{
			At: mid, Until: horizon, Pool: testbed.PoolP1,
			NewVolume: "vol-Vp", Host: testbed.ServerApp1,
			ReadIOPS: 450, WriteIOPS: 120,
		},
		&faults.ExternalVolumeLoad{
			LoadName: "wl-v2-burst", Volume: testbed.VolV4,
			Window:   simtime.NewInterval(mid, horizon),
			ReadIOPS: 260, WriteIOPS: 120, DutyCycle: 0.35, Period: 10 * simtime.Minute,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	rs := tb.RunsFor("Q2")
	return tb, &diag.Input{
		Query: "Q2", Runs: rs, Satisfactory: diag.LabelAdaptive(rs, 1.6),
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}
}

func TestSANOnlyFlagsBothVolumes(t *testing.T) {
	_, in := scenario1WithV2Burst(t, 21)
	rep, err := SANOnly(in)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, f := range rep.Findings {
		found[f.Subject] = true
	}
	// The SAN-only tool flags volumes in both pools — it cannot separate
	// the true cause from the bystander burst.
	if !found[string(testbed.VolV1)] && !found["vol-Vp"] {
		t.Fatalf("SAN-only should flag P1 volumes: %v", rep)
	}
	if !found[string(testbed.VolV4)] && !found[string(testbed.VolV2)] {
		t.Fatalf("SAN-only should also flag P2 volumes (its mistake): %v", rep)
	}
}

func TestDBOnlyEmitsGenericFalsePositives(t *testing.T) {
	_, in := scenario1WithV2Burst(t, 22)
	rep, err := DBOnly(in)
	if err != nil {
		t.Fatal(err)
	}
	var ops, generic int
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Subject, "operator") {
			ops++
		}
		if f.Subject == "buffer pool setting" || f.Subject == "execution plan choice" {
			generic++
		}
	}
	if ops == 0 {
		t.Fatalf("DB-only should pinpoint slow operators: %v", rep)
	}
	if generic != 2 {
		t.Fatalf("DB-only should emit its generic hypotheses: %v", rep)
	}
}

func TestDIADSBeatsSilosOnScenario1Variant(t *testing.T) {
	_, in := scenario1WithV2Burst(t, 23)
	res, err := diag.Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.TopCause()
	if !ok {
		t.Fatal("no cause")
	}
	if top.Cause.Kind != symptoms.CauseSANMisconfig || top.Cause.Subject != string(testbed.VolV1) {
		t.Fatalf("DIADS should still pin V1's misconfiguration: %v\n%s", top.Cause, res.Render())
	}
	// V2-side causes stay below high confidence despite the burst.
	for _, c := range res.Causes {
		if (c.Subject == string(testbed.VolV2) || c.Subject == string(testbed.VolV4)) &&
			c.Category == symptoms.High {
			t.Errorf("V2-side cause should not reach high: %v", c)
		}
	}
}

func TestKDEBeatsGaussianWithFewSamples(t *testing.T) {
	// The paper: "KDE can produce accurate results with few tens of
	// samples, and is more robust to noise".
	rnd := simtime.NewRand(7, "trials")
	trials := MakeTrials(rnd, 200, 12, 3.0, 0.25, 0.08)
	kdeAcc := Accuracy(KDEScorer{}, trials, 0.8)
	gaussAcc := Accuracy(GaussianScorer{}, trials, 0.8)
	if kdeAcc < 0.85 {
		t.Fatalf("KDE accuracy too low with 12 samples: %.2f", kdeAcc)
	}
	if kdeAcc <= gaussAcc {
		t.Fatalf("KDE (%.2f) should beat the Gaussian baseline (%.2f) on noisy few-sample data",
			kdeAcc, gaussAcc)
	}
}

func TestScorersConvergeWithManySamples(t *testing.T) {
	rnd := simtime.NewRand(8, "trials-large")
	trials := MakeTrials(rnd, 200, 200, 3.0, 0.1, 0)
	for _, s := range []AnomalyScorer{KDEScorer{}, GaussianScorer{}, ThresholdCorrScorer{}} {
		if acc := Accuracy(s, trials, 0.8); acc < 0.9 {
			t.Errorf("%s should be accurate with clean plentiful data, got %.2f", s.Name(), acc)
		}
	}
}

func TestThresholdCorrUnstableWithFewSamples(t *testing.T) {
	rnd := simtime.NewRand(9, "trials-thr")
	few := MakeTrials(rnd, 200, 8, 2.0, 0.3, 0.1)
	kdeAcc := Accuracy(KDEScorer{}, few, 0.8)
	thrAcc := Accuracy(ThresholdCorrScorer{}, few, 0.8)
	if kdeAcc <= thrAcc {
		t.Fatalf("KDE (%.2f) should beat threshold correlation (%.2f) on few noisy samples",
			kdeAcc, thrAcc)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if Accuracy(KDEScorer{}, nil, 0.8) != 0 {
		t.Fatalf("no trials should yield 0")
	}
	if _, err := (GaussianScorer{}).Score(nil, []float64{1}); err == nil {
		t.Fatalf("empty sat should error")
	}
	if _, err := (ThresholdCorrScorer{}).Score([]float64{1}, nil); err == nil {
		t.Fatalf("empty unsat should error")
	}
}

package baseline

import (
	"math"

	"diads/internal/kde"
	"diads/internal/simtime"
)

// AnomalyScorer scores how anomalous unsatisfactory observations are
// relative to satisfactory ones, on [0, 1]. DIADS's KDE and the
// correlation baseline both satisfy it so experiments can sweep them
// interchangeably.
type AnomalyScorer interface {
	Name() string
	Score(sat, unsat []float64) (float64, error)
}

// KDEScorer adapts the paper's kernel density estimation.
type KDEScorer struct{}

// Name implements AnomalyScorer.
func (KDEScorer) Name() string { return "KDE" }

// Score implements AnomalyScorer.
func (KDEScorer) Score(sat, unsat []float64) (float64, error) {
	return kde.AnomalyScore(sat, unsat)
}

// GaussianScorer is the parametric baseline standing in for heavier
// model-based correlation analysis (the paper cites Bayesian networks):
// it fits a single Gaussian to the satisfactory sample — a strong
// distributional assumption — and scores unsatisfactory observations by
// the fitted CDF. With few samples the variance estimate is unstable, and
// a single outlier in the training data inflates sigma enough to mask
// real anomalies; both effects are what the paper's observation about
// KDE's robustness refers to.
type GaussianScorer struct{}

// Name implements AnomalyScorer.
func (GaussianScorer) Name() string { return "Gaussian-model" }

// Score implements AnomalyScorer.
func (GaussianScorer) Score(sat, unsat []float64) (float64, error) {
	if len(sat) == 0 || len(unsat) == 0 {
		return 0, kde.ErrNoSamples
	}
	var mean float64
	for _, v := range sat {
		mean += v
	}
	mean /= float64(len(sat))
	var variance float64
	for _, v := range sat {
		variance += (v - mean) * (v - mean)
	}
	// Maximum-likelihood variance: biased low for tiny n, blown up by
	// outliers — deliberately the naive estimator.
	variance /= float64(len(sat))
	sigma := math.Sqrt(variance)
	if sigma == 0 {
		sigma = math.Max(1e-12, 1e-6*math.Abs(mean))
	}
	var sum float64
	for _, u := range unsat {
		z := (u - mean) / sigma
		sum += 0.5 * (1 + math.Erf(z/math.Sqrt2))
	}
	return sum / float64(len(unsat)), nil
}

// ThresholdCorrScorer is a rank-correlation style baseline: the fraction
// of unsatisfactory observations exceeding the satisfactory maximum. It
// needs many samples before its 0/1 steps stabilize.
type ThresholdCorrScorer struct{}

// Name implements AnomalyScorer.
func (ThresholdCorrScorer) Name() string { return "Threshold-correlation" }

// Score implements AnomalyScorer.
func (ThresholdCorrScorer) Score(sat, unsat []float64) (float64, error) {
	if len(sat) == 0 || len(unsat) == 0 {
		return 0, kde.ErrNoSamples
	}
	max := sat[0]
	for _, v := range sat {
		if v > max {
			max = v
		}
	}
	exceed := 0
	for _, u := range unsat {
		if u > max {
			exceed++
		}
	}
	return float64(exceed) / float64(len(unsat)), nil
}

// DetectionTrial is one synthetic detection problem: satisfactory
// observations from a healthy regime and unsatisfactory ones either from
// the same regime (label false) or a slowed regime (label true).
type DetectionTrial struct {
	Sat     []float64
	Unsat   []float64
	Anomaly bool
}

// Accuracy evaluates a scorer over trials at the given threshold,
// returning the fraction of correct detections.
func Accuracy(s AnomalyScorer, trials []DetectionTrial, threshold float64) float64 {
	if len(trials) == 0 {
		return 0
	}
	correct := 0
	for _, tr := range trials {
		score, err := s.Score(tr.Sat, tr.Unsat)
		if err != nil {
			continue
		}
		if (score > threshold) == tr.Anomaly {
			correct++
		}
	}
	return float64(correct) / float64(len(trials))
}

// MakeTrials generates detection problems with the given satisfactory
// sample count, slowdown factor for anomalous trials, and noise level.
// Half the trials are anomalous. Outliers contaminate the satisfactory
// samples at the given rate, reproducing noisy production monitoring.
func MakeTrials(rnd *simtime.Rand, n, satSamples int, slowdown, noiseSigma, outlierRate float64) []DetectionTrial {
	trials := make([]DetectionTrial, 0, n)
	for i := 0; i < n; i++ {
		base := 10 + 5*rnd.Float64()
		sat := make([]float64, satSamples)
		for j := range sat {
			sat[j] = rnd.Jitter(base, noiseSigma)
			if rnd.Float64() < outlierRate {
				sat[j] *= 3 + 5*rnd.Float64()
			}
		}
		anomaly := i%2 == 0
		level := base
		if anomaly {
			level = base * slowdown
		}
		unsat := make([]float64, 3)
		for j := range unsat {
			unsat[j] = rnd.Jitter(level, noiseSigma)
		}
		trials = append(trials, DetectionTrial{Sat: sat, Unsat: unsat, Anomaly: anomaly})
	}
	return trials
}

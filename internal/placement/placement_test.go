package placement

import (
	"testing"

	"diads/internal/dbsys"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func planner(t *testing.T, loadP1 bool) *Planner {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(81))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 3},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(3*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if loadP1 {
		tb.SAN.AddLoad(sanperf.Load{
			Volume: testbed.VolV3, Iv: simtime.NewInterval(0, horizon),
			ReadIOPS: 400, WriteIOPS: 100, Source: "wl-p1",
		})
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	run := tb.RunsFor("Q2")[1]
	return &Planner{Cfg: tb.Cfg, SAN: tb.SAN, Cat: tb.Cat, Baseline: run, At: run.Start}
}

func TestRankPrefersWiderIdlePool(t *testing.T) {
	p := planner(t, false)
	best, err := p.Best(dbsys.TPartsupp)
	if err != nil {
		t.Fatal(err)
	}
	// Both pools near idle: P2's six spindles beat P1's four.
	if best.Pool != testbed.PoolP2 {
		t.Fatalf("idle SAN should prefer the wider pool, got %v", best)
	}
}

func TestRankAvoidsLoadedPool(t *testing.T) {
	p := planner(t, true)
	opts, err := p.Rank(dbsys.TPartsupp)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2 {
		t.Fatalf("two pools expected: %v", opts)
	}
	if opts[0].Pool != testbed.PoolP2 {
		t.Fatalf("loaded P1 should rank last: %v", opts)
	}
	// Moving partsupp off the loaded pool predicts a material speedup.
	var p1, p2 float64
	for _, o := range opts {
		switch o.Pool {
		case testbed.PoolP1:
			p1 = o.PredictedSeconds
		case testbed.PoolP2:
			p2 = o.PredictedSeconds
		}
	}
	if p2 >= p1 {
		t.Fatalf("P2 placement should predict faster runs: P1=%.2fs P2=%.2fs", p1, p2)
	}
}

func TestRankErrors(t *testing.T) {
	p := planner(t, false)
	if _, err := p.Rank("no-such-table"); err == nil {
		t.Fatalf("unknown table should error")
	}
}

func TestPredictionsArePositive(t *testing.T) {
	p := planner(t, true)
	for _, table := range []string{dbsys.TPartsupp, dbsys.TPart, dbsys.TSupplier} {
		opts, err := p.Rank(table)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range opts {
			if o.PredictedSeconds <= 0 {
				t.Errorf("nonpositive prediction: %v", o)
			}
		}
	}
}

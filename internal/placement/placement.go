// Package placement implements the Section 7 "Integrated Database and
// SAN Planning" extension: using the APG's end-to-end view, it evaluates
// candidate tablespace-to-pool placements for a query workload and ranks
// them by predicted query time — "decisions like the choice of storage
// required for given database workloads ... can be intelligently made
// using these techniques".
package placement

import (
	"fmt"
	"math"
	"sort"

	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// Option is one candidate placement: a table assigned to a pool.
type Option struct {
	Table string
	Pool  topology.ID
	// PredictedSeconds is the predicted query duration under this
	// placement.
	PredictedSeconds float64
}

// String implements fmt.Stringer.
func (o Option) String() string {
	return fmt.Sprintf("%s -> %s: predicted %.2fs", o.Table, o.Pool, o.PredictedSeconds)
}

// Planner ranks placements of one table's tablespace across the SAN's
// pools for a given baseline run of the query.
type Planner struct {
	Cfg      *topology.Config
	SAN      *sanperf.Model
	Cat      *dbsys.Catalog
	Baseline *exec.RunRecord
	// At is the representative time for storage state.
	At simtime.Time
}

// Rank evaluates placing the table in each pool of the SAN and returns
// the options sorted by predicted query time (best first).
//
// The prediction rescales the baseline run's leaf I/O times: leaves on
// the moved table see the destination pool's response time instead of
// the current one; other leaves are unchanged. Queue effects of the
// moved load itself are second-order for a single query and ignored.
func (p *Planner) Rank(table string) ([]Option, error) {
	if _, ok := p.Cat.Table(table); !ok {
		return nil, fmt.Errorf("placement: unknown table %q", table)
	}
	currentVol, err := p.Cat.VolumeOf(table)
	if err != nil {
		return nil, err
	}
	currentPool := p.Cfg.PoolOf(currentVol)
	base := float64(p.Baseline.Duration())

	pools := p.Cfg.All(topology.KindPool)
	if len(pools) == 0 {
		return nil, fmt.Errorf("placement: SAN has no pools")
	}
	var out []Option
	for _, pool := range pools {
		factor := p.poolFactor(pool) / p.poolFactor(currentPool)
		var delta float64
		for _, n := range p.Baseline.Plan.LeavesOnTable(table) {
			op := p.Baseline.Op(n.ID)
			if op == nil {
				continue
			}
			delta += float64(op.IOTime) * (factor - 1)
		}
		out = append(out, Option{
			Table:            table,
			Pool:             pool,
			PredictedSeconds: math.Max(0, base+delta),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PredictedSeconds != out[j].PredictedSeconds {
			return out[i].PredictedSeconds < out[j].PredictedSeconds
		}
		return out[i].Pool < out[j].Pool
	})
	return out, nil
}

// poolFactor is the pool's current I/O response multiplier: queueing
// delay over a hypothetical idle pool, normalized per spindle count so a
// wider pool is preferred even when both are idle.
func (p *Planner) poolFactor(pool topology.ID) float64 {
	disks := len(p.Cfg.ChildrenOfKind(pool, topology.KindDisk))
	if disks == 0 {
		return math.Inf(1)
	}
	rho := p.SAN.PoolUtilization(pool, p.At)
	rho = math.Min(rho, p.SAN.Params().MaxUtil)
	// Queue factor divided by a mild spindle-count bonus: striping over
	// more disks shortens per-IO service under concurrency.
	return (1 / (1 - rho)) / math.Sqrt(float64(disks))
}

// Best returns the top-ranked option.
func (p *Planner) Best(table string) (Option, error) {
	opts, err := p.Rank(table)
	if err != nil {
		return Option{}, err
	}
	return opts[0], nil
}

// Package pipelines assembles the registry of every diagnosis strategy:
// the paper's Figure 2 workflow ("diads", a module DAG with the
// plan-change short circuit and concurrent DA ∥ CR) and the Section 5
// silo baselines ("san-only", "db-only"), all running over the same
// blackboard through the same engine. Adding a strategy is a
// registration here, not a workflow rewrite; the package exists apart
// from internal/diag so strategies may depend on diag without cycles.
package pipelines

import (
	"context"
	"fmt"
	"sync"

	"diads/internal/baseline"
	"diads/internal/diag"
	"diads/internal/pipeline"
)

// Registry returns the shared registry of diagnosis pipelines.
func Registry() *pipeline.Registry { return registry() }

var registry = sync.OnceValue(func() *pipeline.Registry {
	r := pipeline.NewRegistry()
	for _, p := range []*pipeline.Pipeline{
		diag.DiadsPipeline(),
		baseline.SANOnlyPipeline(),
		baseline.DBOnlyPipeline(),
	} {
		if err := r.Register(p); err != nil {
			panic(err) // static construction; unreachable
		}
	}
	return r
})

// Run executes the named pipeline over the input with the concurrent
// engine and returns the blackboard of module outputs plus the run's
// trace. Callers read the outputs they care about with pipeline.Get
// (e.g. baseline.KeyReport for the silo tools; for "diads" prefer
// diag.Diagnose, which assembles a Result).
func Run(ctx context.Context, name string, in *diag.Input) (*pipeline.Blackboard, *pipeline.Trace, error) {
	p, ok := Registry().Get(name)
	if !ok {
		return nil, nil, fmt.Errorf("pipelines: unknown pipeline %q (have %v)", name, Registry().Names())
	}
	bb, err := diag.NewBoard(in)
	if err != nil {
		return nil, nil, err
	}
	trace, err := p.Run(ctx, bb, pipeline.Options{MaxParallel: diag.DefaultParallelism})
	if err != nil {
		return nil, trace, err
	}
	return bb, trace, nil
}

package api

import (
	"fmt"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/plan"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// Wire types: the JSON bodies of the ingest routes. Times and durations
// are simulated seconds (float64), matching simtime's representation,
// so a real system posts whatever clock it monitors under and the
// evidence-window arithmetic is exact.

// WireSample is one monitored observation of a metric on a component.
type WireSample struct {
	Component string  `json:"component"`
	Metric    string  `json:"metric"`
	T         float64 `json:"t"`
	V         float64 `json:"v"`
}

// SampleBatch is the body of POST /v1/ingest/samples. Samples are
// applied in time order (the batch is sorted before appending); the
// instance's ingest watermark advances to the latest sample time, so a
// batch must contain every series' samples up to its watermark — the
// watermark asserts "all evidence up to T has been posted", and gated
// diagnoses are released against it.
type SampleBatch struct {
	Tenant   string       `json:"tenant"`
	Instance string       `json:"instance"`
	Samples  []WireSample `json:"samples"`
	// Watermark, when set, overrides the implied watermark (the latest
	// sample time). Use it to advance the watermark past a quiet period
	// with an empty or partial batch.
	Watermark *float64 `json:"watermark,omitempty"`
}

// WireOp is one operator's monitoring row in a posted run — the
// per-operator signal the paper's instrumented PostgreSQL collected.
// IDs refer to nodes of the server-side plan reconstructed for the
// run's query (the optimizer is deterministic, so a client running the
// same catalog sees identical node IDs).
type WireOp struct {
	ID       int     `json:"id"`
	Type     string  `json:"type"`
	Table    string  `json:"table,omitempty"`
	Start    float64 `json:"start"`
	Stop     float64 `json:"stop"`
	Recorded float64 `json:"recorded"`
	ActRows  float64 `json:"act_rows"`
	EstRows  float64 `json:"est_rows"`
	PhysIO   float64 `json:"phys_io"`
	CacheHit float64 `json:"cache_hit"`
	IOTime   float64 `json:"io_time"`
	LockWait float64 `json:"lock_wait"`
}

// WireRun is one completed query run.
type WireRun struct {
	Query    string   `json:"query"`
	RunID    string   `json:"run_id"`
	Start    float64  `json:"start"`
	Stop     float64  `json:"stop"`
	PhysIO   float64  `json:"phys_io"`
	CacheHit float64  `json:"cache_hit"`
	LockWait float64  `json:"lock_wait"`
	SeqScans int      `json:"seq_scans"`
	IdxScans int      `json:"idx_scans"`
	Ops      []WireOp `json:"ops"`
}

// RunBatch is the body of POST /v1/ingest/runs. Runs flow through the
// instance's monitor exactly like simulator output: baselines update,
// detections gate on the ingest watermark, released events submit to
// the diagnosis pool.
type RunBatch struct {
	Tenant   string    `json:"tenant"`
	Instance string    `json:"instance"`
	Runs     []WireRun `json:"runs"`
}

// WireEvent is one configuration change or system event. Kind names a
// topology.EventKind; the mutation kinds (VolumeCreated, ZoneCreated,
// LUNMapped, ZoneDeleted) also apply their change to the instance's
// topology so diagnosis sees the post-change configuration, and every
// kind lands in the change log Module SD reads.
type WireEvent struct {
	T       float64 `json:"t"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	Detail  string  `json:"detail,omitempty"`
	// Mutation parameters, by kind: VolumeCreated reads Pool, Name,
	// SizeGB; ZoneCreated reads Name and Ports; LUNMapped reads Server
	// (the volume is Subject); ZoneDeleted reads Name.
	Pool   string   `json:"pool,omitempty"`
	Name   string   `json:"name,omitempty"`
	SizeGB int      `json:"size_gb,omitempty"`
	Ports  []string `json:"ports,omitempty"`
	Server string   `json:"server,omitempty"`
}

// EventBatch is the body of POST /v1/ingest/events.
type EventBatch struct {
	Tenant   string      `json:"tenant"`
	Instance string      `json:"instance"`
	Events   []WireEvent `json:"events"`
}

// IngestReply acknowledges an accepted ingest batch (HTTP 202): the
// batch is queued for ordered application, not yet applied.
type IngestReply struct {
	Accepted int `json:"accepted"`
	// QueueDepth is the intake queue depth after enqueueing, the
	// client-visible backpressure signal short of a 429.
	QueueDepth int `json:"queue_depth"`
}

// ErrorReply is the body of every non-2xx response.
type ErrorReply struct {
	Error string `json:"error"`
}

// runRecord converts a posted run to the monitor's record form, wiring
// the given reconstructed plan in.
func (wr *WireRun) runRecord(p *plan.Plan) *exec.RunRecord {
	rec := &exec.RunRecord{
		Query:    wr.Query,
		RunID:    wr.RunID,
		PlanSig:  p.Signature(),
		Plan:     p,
		Start:    simtime.Time(wr.Start),
		Stop:     simtime.Time(wr.Stop),
		Ops:      make(map[int]*exec.OpRun, len(wr.Ops)),
		PhysIO:   wr.PhysIO,
		CacheHit: wr.CacheHit,
		LockWait: simtime.Duration(wr.LockWait),
		SeqScans: wr.SeqScans,
		IdxScans: wr.IdxScans,
	}
	for _, op := range wr.Ops {
		rec.Ops[op.ID] = &exec.OpRun{
			ID:       op.ID,
			Type:     plan.OpType(op.Type),
			Table:    op.Table,
			Start:    simtime.Time(op.Start),
			Stop:     simtime.Time(op.Stop),
			Recorded: simtime.Duration(op.Recorded),
			ActRows:  op.ActRows,
			EstRows:  op.EstRows,
			PhysIO:   op.PhysIO,
			CacheHit: op.CacheHit,
			IOTime:   simtime.Duration(op.IOTime),
			LockWait: simtime.Duration(op.LockWait),
		}
	}
	return rec
}

// validate rejects runs the monitor cannot use before they reach the
// ordered intake worker, so bad batches fail at the request with a 400
// instead of silently corrupting an instance's baseline.
func (wr *WireRun) validate() error {
	if wr.Query == "" {
		return fmt.Errorf("run missing query")
	}
	if wr.RunID == "" {
		return fmt.Errorf("run %s missing run_id", wr.Query)
	}
	if wr.Stop < wr.Start {
		return fmt.Errorf("run %s/%s: stop %v before start %v", wr.Query, wr.RunID, wr.Stop, wr.Start)
	}
	return nil
}

func (ws *WireSample) validate() error {
	if ws.Component == "" || ws.Metric == "" {
		return fmt.Errorf("sample missing component or metric")
	}
	return nil
}

// WireSampleOf converts a store sample back to wire form — the helper
// the example client and tests use to serialize simulator output.
func WireSampleOf(component string, metric metrics.Metric, s metrics.Sample) WireSample {
	return WireSample{Component: component, Metric: string(metric), T: float64(s.T), V: s.V}
}

// WireRunOf converts an executed run record to wire form.
func WireRunOf(rec *exec.RunRecord) WireRun {
	wr := WireRun{
		Query:    rec.Query,
		RunID:    rec.RunID,
		Start:    float64(rec.Start),
		Stop:     float64(rec.Stop),
		PhysIO:   rec.PhysIO,
		CacheHit: rec.CacheHit,
		LockWait: float64(rec.LockWait),
		SeqScans: rec.SeqScans,
		IdxScans: rec.IdxScans,
	}
	ids := make([]int, 0, len(rec.Ops))
	for id := range rec.Ops {
		ids = append(ids, id)
	}
	// Deterministic op order so serialized batches are byte-stable.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		op := rec.Ops[id]
		wr.Ops = append(wr.Ops, WireOp{
			ID:       op.ID,
			Type:     string(op.Type),
			Table:    op.Table,
			Start:    float64(op.Start),
			Stop:     float64(op.Stop),
			Recorded: float64(op.Recorded),
			ActRows:  op.ActRows,
			EstRows:  op.EstRows,
			PhysIO:   op.PhysIO,
			CacheHit: op.CacheHit,
			IOTime:   float64(op.IOTime),
			LockWait: float64(op.LockWait),
		})
	}
	return wr
}

// WireEventOf converts a logged topology event to wire form. Mutation
// parameters are not recoverable from the log entry; callers replaying
// mutations fill them in.
func WireEventOf(e topology.Event) WireEvent {
	return WireEvent{
		T:       float64(e.T),
		Kind:    string(e.Kind),
		Subject: string(e.Subject),
		Detail:  e.Detail,
	}
}

package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"

	"diads/internal/fleet"
	"diads/internal/pipeline"
	"diads/internal/service"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
)

// Handler builds the /v1/ route tree, every route wrapped in the
// timeout/metrics/tracing middleware. Mount it under "/v1/" (Mount does
// this against a telemetry server) or drive it directly in tests.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, n.wrap(name, h))
	}
	route("POST /v1/ingest/samples", "ingest_samples", n.handleIngestSamples)
	route("POST /v1/ingest/runs", "ingest_runs", n.handleIngestRuns)
	route("POST /v1/ingest/events", "ingest_events", n.handleIngestEvents)
	route("GET /v1/incidents", "incidents", n.handleIncidents)
	route("GET /v1/incidents/{id}", "incident", n.handleIncident)
	route("GET /v1/candidates", "candidates", n.handleCandidates)
	route("GET /v1/modules", "modules", n.handleModules)
	route("POST /v1/candidates/{kind}/ack", "candidate_ack", n.handleResolve(true))
	route("POST /v1/candidates/{kind}/reject", "candidate_reject", n.handleResolve(false))
	return mux
}

// statusWriter captures the response code for the outcome metric.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap applies the middleware stack: a per-request timeout (503 on
// expiry), per-route latency and outcome counters on the default
// registry, and a request trace ID recorded as a span and handed to
// the handler via the request context — ingest threads it through to
// the diagnosis trace, so /traces tells one story from POST to module.
func (n *Node) wrap(name string, h http.HandlerFunc) http.Handler {
	reg := n.tel.reg
	latency := reg.Histogram("diads_api_request_seconds",
		"Wall time of one API request, by route.",
		telemetry.Labels{"route": name}, nil)
	outcome := func(code int) *telemetry.Counter {
		return reg.Counter("diads_api_requests_total",
			"API requests, by route and status code.",
			telemetry.Labels{"route": name, "code": strconv.Itoa(code)})
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := r.Header.Get("X-Diads-Trace")
		if traceID == "" {
			traceID = n.nextTraceID()
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(withTraceID(r.Context(), traceID)))
		wall := time.Since(start)
		latency.Observe(wall.Seconds())
		outcome(sw.code).Inc()
		telemetry.DefaultTracer().Record(telemetry.Span{
			TraceID: traceID, Name: "api." + name,
			Start: start, Duration: wall,
			Attrs: []telemetry.Attr{{Key: "code", Value: strconv.Itoa(sw.code)}},
		})
	})
	return http.TimeoutHandler(inner, n.cfg.Timeout, `{"error":"request timed out"}`)
}

type traceKey struct{}

func withTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

func traceIDFrom(r *http.Request) string {
	if v, ok := r.Context().Value(traceKey{}).(string); ok {
		return v
	}
	return ""
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the request body strictly (unknown fields are
// errors — they are almost always a misspelled contract).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// acceptIngest enqueues a parsed batch, mapping queue states to the
// backpressure contract: 202 queued, 429 + Retry-After full, 503
// draining.
func (n *Node) acceptIngest(w http.ResponseWriter, j intakeJob, accepted int) {
	err := n.enqueue(j)
	switch {
	case errors.Is(err, errDraining):
		n.tel.rejected[reasonDraining].Inc()
		writeError(w, http.StatusServiceUnavailable, "draining; not accepting ingest")
	case errors.Is(err, errBackpressure):
		n.tel.rejected[reasonBackpressure].Inc()
		w.Header().Set("Retry-After", strconv.Itoa(n.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "intake queue full; retry after %ds", n.cfg.RetryAfter)
	default:
		n.tel.batches.Inc()
		writeJSON(w, http.StatusAccepted, IngestReply{Accepted: accepted, QueueDepth: len(n.intake)})
	}
}

func (n *Node) handleIngestSamples(w http.ResponseWriter, r *http.Request) {
	var b SampleBatch
	if err := decodeBody(r, &b); err != nil {
		writeError(w, http.StatusBadRequest, "parsing batch: %v", err)
		return
	}
	if b.Instance == "" {
		writeError(w, http.StatusBadRequest, "batch missing instance")
		return
	}
	for i := range b.Samples {
		if err := b.Samples[i].validate(); err != nil {
			writeError(w, http.StatusBadRequest, "sample %d: %v", i, err)
			return
		}
	}
	n.acceptIngest(w, intakeJob{samples: &b, traceID: traceIDFrom(r)}, len(b.Samples))
}

func (n *Node) handleIngestRuns(w http.ResponseWriter, r *http.Request) {
	var b RunBatch
	if err := decodeBody(r, &b); err != nil {
		writeError(w, http.StatusBadRequest, "parsing batch: %v", err)
		return
	}
	if b.Instance == "" {
		writeError(w, http.StatusBadRequest, "batch missing instance")
		return
	}
	for i := range b.Runs {
		if err := b.Runs[i].validate(); err != nil {
			writeError(w, http.StatusBadRequest, "run %d: %v", i, err)
			return
		}
	}
	n.acceptIngest(w, intakeJob{runs: &b, traceID: traceIDFrom(r)}, len(b.Runs))
}

func (n *Node) handleIngestEvents(w http.ResponseWriter, r *http.Request) {
	var b EventBatch
	if err := decodeBody(r, &b); err != nil {
		writeError(w, http.StatusBadRequest, "parsing batch: %v", err)
		return
	}
	if b.Instance == "" {
		writeError(w, http.StatusBadRequest, "batch missing instance")
		return
	}
	n.acceptIngest(w, intakeJob{events: &b, traceID: traceIDFrom(r)}, len(b.Events))
}

// IncidentView is the query-route rendering of one open incident — the
// registry row the console's ranked panel shows, plus a stable ID for
// the detail route.
type IncidentView struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	Instance   string  `json:"instance,omitempty"`
	Query      string  `json:"query"`
	Kind       string  `json:"kind"`
	Subject    string  `json:"subject"`
	Confidence float64 `json:"confidence"`
	ImpactPct  float64 `json:"impact_pct"`
	EstImpact  float64 `json:"est_impact_seconds"`
	Events     int     `json:"events"`
	FirstSeen  float64 `json:"first_seen"`
	LastSeen   float64 `json:"last_seen"`
	TraceID    string  `json:"trace_id,omitempty"`
}

// incidentID derives the stable detail-route ID: FNV-1a over the
// incident's full identity. Deterministic per seed, single URL segment.
func incidentID(inc *service.Incident) string {
	h := fnv.New64a()
	for _, s := range []string{inc.Instance, inc.Query, inc.Kind, inc.Subject} {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

func (n *Node) incidentView(inc *service.Incident) IncidentView {
	tenant, bare := fleet.SplitScoped(inc.Instance)
	v := IncidentView{
		ID:         incidentID(inc),
		Tenant:     tenant,
		Instance:   bare,
		Query:      inc.Query,
		Kind:       inc.Kind,
		Subject:    inc.Subject,
		Confidence: inc.Confidence,
		ImpactPct:  inc.ImpactPct,
		EstImpact:  inc.EstImpact(),
		Events:     inc.Events,
		FirstSeen:  float64(inc.FirstSeen),
		LastSeen:   float64(inc.LastSeen),
	}
	if inc.Trace != nil {
		v.TraceID = inc.Trace.TraceID
	}
	return v
}

func (n *Node) handleIncidents(w http.ResponseWriter, r *http.Request) {
	incs := n.svc.Registry().Incidents()
	tenant := r.URL.Query().Get("tenant")
	out := make([]IncidentView, 0, len(incs))
	for i := range incs {
		t, _ := fleet.SplitScoped(incs[i].Instance)
		if tenant != "" && t != tenant {
			continue
		}
		out = append(out, n.incidentView(&incs[i]))
	}
	writeJSON(w, http.StatusOK, map[string]any{"incidents": out})
}

// CauseView is one ranked cause inside an incident detail.
type CauseView struct {
	Kind       string  `json:"kind"`
	Subject    string  `json:"subject"`
	Confidence float64 `json:"confidence"`
	Category   string  `json:"category"`
}

// ModuleTimingView is one workflow module's timing in a diagnosis trace.
type ModuleTimingView struct {
	Module string  `json:"module"`
	Status string  `json:"status"`
	WallMS float64 `json:"wall_ms"`
}

func (n *Node) handleIncident(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	incs := n.svc.Registry().Incidents()
	for i := range incs {
		inc := &incs[i]
		if incidentID(inc) != id {
			continue
		}
		detail := map[string]any{"incident": n.incidentView(inc)}
		if inc.Result != nil {
			causes := make([]CauseView, 0, len(inc.Result.Causes))
			for _, c := range inc.Result.Causes {
				causes = append(causes, CauseView{
					Kind: c.Kind, Subject: c.Subject,
					Confidence: c.Confidence, Category: string(c.Category),
				})
			}
			detail["causes"] = causes
		}
		if inc.Trace != nil {
			detail["modules"] = moduleTimings(inc.Trace)
		}
		writeJSON(w, http.StatusOK, detail)
		return
	}
	writeError(w, http.StatusNotFound, "no incident %q", id)
}

func moduleTimings(t *pipeline.Trace) []ModuleTimingView {
	out := make([]ModuleTimingView, 0, len(t.Modules))
	for _, mt := range t.Modules {
		out = append(out, ModuleTimingView{
			Module: mt.Module,
			Status: string(mt.Status),
			WallMS: float64(mt.Wall.Microseconds()) / 1e3,
		})
	}
	return out
}

// CandidateView is one mined-symptom candidate in the lifecycle.
type CandidateView struct {
	Kind      string `json:"kind"`
	State     string `json:"state,omitempty"`
	Support   int    `json:"support,omitempty"`
	Incidents int    `json:"incidents,omitempty"`
	Rendered  string `json:"rendered,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Verdict   string `json:"verdict,omitempty"`
}

func (n *Node) handleCandidates(w http.ResponseWriter, _ *http.Request) {
	st := n.learner.Stats()
	pending := make([]CandidateView, 0, len(st.Pending))
	for _, c := range st.Pending {
		pending = append(pending, CandidateView{
			Kind: c.Kind, State: c.State, Support: c.Support,
			Incidents: c.Incidents, Rendered: c.Rendered,
			Verdict: string(c.Validation.Verdict),
		})
	}
	installed := make([]CandidateView, 0, len(st.Installed))
	for _, e := range st.Installed {
		installed = append(installed, CandidateView{
			Kind: e.Kind, Rendered: e.Entry.Render(),
			Verdict: string(e.Validation.Verdict),
		})
	}
	rejected := make([]CandidateView, 0, len(st.Rejected))
	for _, rj := range st.Rejected {
		rejected = append(rejected, CandidateView{Kind: rj.Kind, Reason: rj.Reason})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"confirmed": st.Confirmed,
		"held_out":  st.HeldOut,
		"healthy":   st.Healthy,
		"pending":   pending,
		"installed": installed,
		"rejected":  rejected,
	})
}

func (n *Node) handleModules(w http.ResponseWriter, _ *http.Request) {
	stats := n.svc.ModuleStats()
	type row struct {
		Module    string  `json:"module"`
		Runs      int64   `json:"runs"`
		CacheHits int64   `json:"cache_hits"`
		Skipped   int64   `json:"skipped"`
		WallMS    float64 `json:"wall_ms"`
	}
	out := make([]row, 0, len(stats))
	for _, st := range stats {
		out = append(out, row{
			Module: st.Module, Runs: st.Runs, CacheHits: st.CacheHits,
			Skipped: st.Skipped, WallMS: float64(st.Wall.Microseconds()) / 1e3,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"modules": out})
}

// handleResolve settles a pending candidate: ack installs a validated
// candidate (never overriding a failed validation), reject retires it.
func (n *Node) handleResolve(accept bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		kind := r.PathValue("kind")
		if !symptoms.IsMined(kind) {
			// Operators see the bare cause kind in the console; accept
			// both spellings of a mined kind.
			kind += symptoms.MinedSuffix
		}
		if err := n.learner.Resolve(kind, accept); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		action := "rejected"
		if accept {
			action = "installed"
		}
		writeJSON(w, http.StatusOK, map[string]string{"kind": kind, "result": action})
	}
}

// Package api is diadsd's serving surface: an HTTP subsystem that lets
// a real system — not just the built-in simulator — feed the DIADS
// pipeline and read its verdicts. It exposes three route families on
// the telemetry listener:
//
//   - ingest: POST /v1/ingest/samples, /v1/ingest/runs, and
//     /v1/ingest/events accept batched monitoring data scoped to a
//     (tenant, instance) pair. Runs flow through a per-instance
//     monitor exactly like simulator output; samples land in the
//     instance's metrics store and advance its ingest watermark, which
//     releases gated detections into the shared diagnosis pool; events
//     mutate the instance's topology and land in the change log.
//   - query: GET /v1/incidents, /v1/incidents/{id}, /v1/candidates,
//     and /v1/modules render the same snapshots the console panels
//     use — the ranked incident registry, the symptom-learning
//     candidate lifecycle, and per-module workflow timings.
//   - operator: POST /v1/candidates/{kind}/ack and .../reject settle
//     validated mined-symptom candidates, the ack the ReviewOperator
//     policy waits for.
//
// Ingest is backpressured like the diagnosis pool itself: accepted
// batches enter a bounded intake queue drained by one ordered worker
// (per-batch ordering is what makes watermarks meaningful), and a full
// queue answers 429 with Retry-After rather than blocking or buffering
// unboundedly — the snowball regime where the diagnoser's own slowdown
// amplifies load is exactly what the paper's monitor exists to catch.
package api

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diads/internal/diag"
	"diads/internal/fleet"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/plan"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
	"diads/internal/topology"
)

// Config tunes the serving node.
type Config struct {
	// Seed drives tenant-environment construction (each tenant instance
	// gets a Figure 1 topology and catalog built from it, with an empty
	// metrics store the tenant fills by posting samples).
	Seed int64
	// QueueDepth bounds the ingest intake queue (default 64, the
	// diagnosis pool's own default).
	QueueDepth int
	// Timeout bounds each request's handling time (default 10s).
	Timeout time.Duration
	// RetryAfter is the Retry-After hint on 429 responses, in seconds
	// (default 1).
	RetryAfter int
	// Service tunes the shared diagnosis pool.
	Service service.Config
	// Monitor tunes each instance's slowdown detector.
	Monitor monitor.Config
	// Learn tunes the mined-symptom candidate lifecycle. The operator
	// routes presume ReviewOperator with no Reviewer — validated
	// candidates pend until acked over HTTP — so New forces that policy.
	Learn fleet.LearnConfig
	// SymDB is the shared symptoms database (nil means the built-in
	// expert entries). Mined installs land here, so pass the same DB
	// that -learned persistence renders.
	SymDB *symptoms.DB
	// IdleBatches is the idle horizon of the instance lifecycle: an
	// instance untouched by this many subsequently-applied ingest
	// batches (and with no gated detections) is evicted — its serving
	// environment, metric store, and monitor baselines page out, and a
	// returning tenant rebuilds from scratch on next contact. The
	// horizon is counted in applied batches, not wall time, so eviction
	// is a deterministic function of the ingest stream. 0 disables
	// eviction (the pre-lifecycle behavior: instances accrete forever,
	// which under tenant churn is a leak). Registry incidents survive
	// eviction; only ingest state pages out.
	IdleBatches int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.SymDB == nil {
		c.SymDB = symptoms.Builtin()
	}
	c.Learn.Review = fleet.ReviewOperator
	c.Learn.Reviewer = nil
	return c
}

// instance is the per-(tenant, instance) serving state: a Figure 1
// environment whose store is filled by posted samples, a monitor whose
// baselines are fed by posted runs, and the watermark gate between
// them. Only the intake worker touches the mutable parts, so there is
// no locking here.
type instance struct {
	id   string // scoped "tenant/instance"
	tb   *testbed.Testbed
	mon  *monitor.Monitor
	gate *monitor.Gate
	// watermark is the instance's ingest watermark: every sample with
	// T <= watermark has been posted.
	watermark simtime.Time
	// lastSeq is the intake sequence of the last batch that touched the
	// instance — the idle-eviction clock.
	lastSeq int64
	// plans caches the reconstructed plan per query.
	plans map[string]*plan.Plan
}

// intakeJob is one accepted ingest batch awaiting ordered application.
// Exactly one of the batch fields is set; done is the Quiesce sentinel.
type intakeJob struct {
	samples *SampleBatch
	runs    *RunBatch
	events  *EventBatch
	traceID string
	done    chan struct{}
	// block stalls the worker until closed — how tests hold the queue
	// full deterministically to observe backpressure.
	block chan struct{}
}

// Node is the serving node: the shared diagnosis service, the learner
// behind the operator routes, the per-instance ingest state, and the
// intake queue. Construct with New, attach to a telemetry server with
// Mount (or drive Handler directly in tests), and Shutdown to drain.
type Node struct {
	cfg     Config
	svc     *service.Service
	learner *fleet.Learner

	mu        sync.Mutex
	instances map[string]*instance

	intake chan intakeJob
	// batchSeq counts applied ingest batches; worker-owned, the
	// evidence-free clock idle eviction runs on.
	batchSeq int64
	// sendMu serializes intake enqueues against Shutdown's close, the
	// service pool's send-vs-close pattern: handlers send under the read
	// lock, Shutdown flips draining before taking the write lock to
	// close, so no send can hit a closed channel.
	sendMu   sync.RWMutex
	draining atomic.Bool
	ingested atomic.Bool // any watermark advanced yet (readiness)
	workerWG sync.WaitGroup

	traceSeq atomic.Int64

	tel nodeTelemetry
}

// nodeTelemetry is the api layer's instrument set on the default
// registry — the diads_api_* families the CI smoke validates.
type nodeTelemetry struct {
	reg      *telemetry.Registry
	batches  *telemetry.Counter
	rejected map[string]*telemetry.Counter
	applyErr *telemetry.Counter
	released *telemetry.Counter
	evicted  *telemetry.Counter
}

func newNodeTelemetry(n *Node) nodeTelemetry {
	reg := telemetry.Default()
	rejected := func(reason string) *telemetry.Counter {
		return reg.Counter("diads_api_ingest_rejected_total",
			"Ingest batches shed, by reason.",
			telemetry.Labels{"reason": reason})
	}
	reg.GaugeFunc("diads_api_ingest_queue_depth",
		"Ingest batches waiting in the intake queue.",
		nil, func() float64 { return float64(len(n.intake)) })
	reg.GaugeFunc("diads_api_instances_resident",
		"Tenant instances currently resident (serving state built, not evicted).",
		nil, func() float64 { return float64(n.InstanceCount()) })
	return nodeTelemetry{
		reg: reg,
		batches: reg.Counter("diads_api_ingest_batches_total",
			"Ingest batches accepted into the intake queue.", nil),
		rejected: map[string]*telemetry.Counter{
			reasonBackpressure: rejected(reasonBackpressure),
			reasonDraining:     rejected(reasonDraining),
		},
		applyErr: reg.Counter("diads_api_ingest_errors_total",
			"Ingest batch items the intake worker could not apply.", nil),
		released: reg.Counter("diads_api_events_released_total",
			"Gated slowdown events released to the diagnosis pool by watermark advances.", nil),
		evicted: reg.Counter("diads_api_instances_evicted_total",
			"Tenant instances paged out by the idle-eviction lifecycle.", nil),
	}
}

const (
	reasonBackpressure = "backpressure"
	reasonDraining     = "draining"
)

// New builds the node and starts its diagnosis pool and intake worker.
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:       cfg,
		learner:   fleet.NewLearner(cfg.Learn, cfg.SymDB),
		instances: make(map[string]*instance),
		intake:    make(chan intakeJob, cfg.QueueDepth),
	}
	n.tel = newNodeTelemetry(n)
	n.svc = service.New(service.Env{}, cfg.Service)
	// The candidate lifecycle hangs off the diagnosis pool: every
	// completed diagnosis refreshes the learner with the current
	// incident set, every healthy diagnosis grows its background
	// corpus — the fleet's epoch-exchange flow, minus the epochs (the
	// serving surface has no global evidence clock; the Learner's own
	// mutex keeps it consistent).
	n.svc.OnDiagnosis = func(monitor.SlowdownEvent, *diag.Result) {
		n.learner.Observe(n.svc.Registry().Incidents())
	}
	n.svc.OnHealthy = func(_ monitor.SlowdownEvent, fb *symptoms.FactBase) {
		n.learner.AddHealthy(fb)
	}
	n.svc.Start(context.Background())
	n.workerWG.Add(1)
	go n.worker()
	return n
}

// Service exposes the diagnosis pool (for Wait in drivers and tests).
func (n *Node) Service() *service.Service { return n.svc }

// Learner exposes the candidate lifecycle (for -learned persistence).
func (n *Node) Learner() *fleet.Learner { return n.learner }

// Ready implements the /readyz contract: ready once any instance's
// ingest watermark has advanced, and never while draining.
func (n *Node) Ready() (bool, string) {
	if n.draining.Load() {
		return false, "draining"
	}
	if !n.ingested.Load() {
		return false, "no ingest watermark yet"
	}
	return true, ""
}

// Mount attaches the /v1/ route tree and readiness probe to the
// telemetry server.
func (n *Node) Mount(srv *telemetry.Server) {
	srv.Mount("/v1/", n.Handler())
	srv.SetReady(n.Ready)
}

// Shutdown drains the node: ingest starts answering 503, the intake
// queue is drained by the worker, and in-flight diagnoses complete.
// The diagnosis pool stays Submittable throughout (events released by
// the final batches still diagnose); it is stopped at the end.
func (n *Node) Shutdown() {
	if n.draining.Swap(true) {
		return
	}
	n.sendMu.Lock()
	close(n.intake)
	n.sendMu.Unlock()
	n.workerWG.Wait()
	n.svc.Wait()
	n.svc.Stop()
}

// Quiesce blocks until every batch accepted so far has been applied and
// every diagnosis it triggered has completed — the deterministic
// settle point tests and the example client use instead of polling.
// Unlike ingest it waits out a full queue (the sentinel must land
// behind the batches it settles); draining is still an error.
func (n *Node) Quiesce() error {
	done := make(chan struct{})
	for {
		err := n.enqueue(intakeJob{done: done})
		if err == nil {
			break
		}
		if errors.Is(err, errDraining) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	n.svc.Wait()
	return nil
}

// enqueue places a job on the intake queue without blocking.
func (n *Node) enqueue(j intakeJob) error {
	if n.draining.Load() {
		return errDraining
	}
	n.sendMu.RLock()
	defer n.sendMu.RUnlock()
	if n.draining.Load() {
		return errDraining
	}
	select {
	case n.intake <- j:
		return nil
	default:
		return errBackpressure
	}
}

var (
	errBackpressure = fmt.Errorf("api: intake queue full")
	errDraining     = fmt.Errorf("api: draining")
)

// worker is the single ordered intake drain: batches apply in arrival
// order, which is what lets a client reason "events before runs before
// the watermark that releases them" across separate POSTs.
func (n *Node) worker() {
	defer n.workerWG.Done()
	for j := range n.intake {
		switch {
		case j.block != nil:
			<-j.block
		case j.done != nil:
			close(j.done)
		case j.samples != nil:
			n.batchSeq++
			n.applySamples(j.samples, j.traceID)
			n.sweepIdle()
		case j.runs != nil:
			n.batchSeq++
			n.applyRuns(j.runs, j.traceID)
			n.sweepIdle()
		case j.events != nil:
			n.batchSeq++
			n.applyEvents(j.events, j.traceID)
			n.sweepIdle()
		}
	}
}

// sweepIdle evicts instances the idle horizon has passed: untouched for
// IdleBatches applied batches and holding no gated detections. It runs
// on the intake worker after every applied batch, so eviction order and
// timing are a deterministic function of the ingest stream. The pool is
// settled first (Wait) so no queued diagnosis loses its environment
// mid-flight; eviction then removes the serving env and the instance's
// scoped cache entries from the shared service and drops the serving
// state for the garbage collector.
func (n *Node) sweepIdle() {
	h := int64(n.cfg.IdleBatches)
	if h <= 0 {
		return
	}
	var victims []*instance
	n.mu.Lock()
	for _, in := range n.instances {
		if n.batchSeq-in.lastSeq >= h && in.gate.Pending() == 0 {
			victims = append(victims, in)
		}
	}
	n.mu.Unlock()
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	n.svc.Wait()
	for _, in := range victims {
		n.svc.RemoveInstance(in.id)
		n.mu.Lock()
		delete(n.instances, in.id)
		n.mu.Unlock()
		n.tel.evicted.Inc()
	}
}

// InstanceCount reports the resident tenant instances — the bound the
// idle lifecycle maintains under churn.
func (n *Node) InstanceCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.instances)
}

// instanceFor returns (building on first contact) the serving state for
// the scoped instance. Only the intake worker calls it with build=true;
// query handlers pass build=false and get nil for unknown instances.
func (n *Node) instanceFor(tenant, inst string, build bool) (*instance, error) {
	id := fleet.ScopedInstance(tenant, inst)
	n.mu.Lock()
	in := n.instances[id]
	n.mu.Unlock()
	if in != nil || !build {
		if in != nil && build {
			in.lastSeq = n.batchSeq // intake worker touching the instance
		}
		return in, nil
	}
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(n.cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("api: building environment for %s: %w", id, err)
	}
	in = &instance{
		id:      id,
		tb:      tb,
		mon:     monitor.New(n.cfg.Monitor),
		gate:    &monitor.Gate{},
		lastSeq: n.batchSeq,
		plans:   make(map[string]*plan.Plan),
	}
	// Detections gate on the ingest watermark; the sink tags the event
	// with the scoped instance so dedup, incidents, and learning stay
	// per-tenant. Synchronous and lossless — the intake worker is the
	// only caller of Observe, and the gate absorbs any rate.
	in.mon.SetSink(func(ev monitor.SlowdownEvent) {
		ev.Instance = in.id
		in.gate.Add(ev)
	})
	n.svc.AddInstance(id, service.Env{
		Store:  tb.Store,
		Cfg:    tb.Cfg,
		Cat:    tb.Cat,
		Opt:    tb.Opt,
		Params: tb.Params,
		Stats:  tb.Stats,
		Server: testbed.ServerDB,
		SymDB:  n.cfg.SymDB,
	})
	n.mu.Lock()
	n.instances[id] = in
	n.mu.Unlock()
	return in, nil
}

// applySamples lands a sample batch in the instance's store and
// advances its watermark, releasing any gated detections it covers.
func (n *Node) applySamples(b *SampleBatch, traceID string) {
	in, err := n.instanceFor(b.Tenant, b.Instance, true)
	if err != nil {
		n.tel.applyErr.Inc()
		return
	}
	// Sort by time so interleaved series in one batch cannot trip the
	// store's per-series ordering check.
	sort.SliceStable(b.Samples, func(i, j int) bool { return b.Samples[i].T < b.Samples[j].T })
	high := in.watermark
	for i := range b.Samples {
		s := &b.Samples[i]
		err := in.tb.Store.Append(s.Component, metrics.Metric(s.Metric),
			metrics.Sample{T: simtime.Time(s.T), V: s.V})
		if err != nil {
			n.tel.applyErr.Inc()
			continue
		}
		if simtime.Time(s.T) > high {
			high = simtime.Time(s.T)
		}
	}
	if b.Watermark != nil && simtime.Time(*b.Watermark) > high {
		high = simtime.Time(*b.Watermark)
	}
	if high > in.watermark {
		in.watermark = high
		n.ingested.Store(true)
		n.release(in, traceID)
	}
}

// release submits every gated detection the watermark now covers.
// Duplicates are expected (recurring incidents); pool backpressure
// sheds the event, counted by the service's own rejected metric — the
// evidence stays in the store, so a later recurrence re-detects.
func (n *Node) release(in *instance, traceID string) {
	for _, ev := range in.gate.Release(in.watermark) {
		n.tel.released.Inc()
		telemetry.DefaultTracer().Record(telemetry.Span{
			TraceID: ev.TraceID, Name: "api.ingest.release",
			Start: time.Now(),
			Attrs: []telemetry.Attr{
				{Key: "instance", Value: in.id},
				{Key: "request", Value: traceID},
			},
		})
		//lint:allow errdiscard backpressure sheds the event by design; Stats.Rejected counts it and re-detection recovers
		_ = n.svc.Submit(ev)
	}
}

// applyRuns replays a run batch through the instance's monitor. The
// run's plan is reconstructed with the instance's own optimizer —
// deterministic, so node IDs match a client compiled against the same
// catalog — and cached per query.
func (n *Node) applyRuns(b *RunBatch, traceID string) {
	in, err := n.instanceFor(b.Tenant, b.Instance, true)
	if err != nil {
		n.tel.applyErr.Inc()
		return
	}
	for i := range b.Runs {
		wr := &b.Runs[i]
		p := in.plans[wr.Query]
		if p == nil {
			p, err = in.tb.Opt.PlanQuery(wr.Query, in.tb.Stats, in.tb.Params)
			if err != nil {
				n.tel.applyErr.Inc()
				continue
			}
			in.plans[wr.Query] = p
		}
		in.mon.Observe(wr.runRecord(p))
	}
	_ = traceID
}

// applyEvents applies configuration events to the instance's topology
// and change log. Mutation kinds change the config (so facts like
// new-volume-in-pool bind during diagnosis); every event is logged.
func (n *Node) applyEvents(b *EventBatch, traceID string) {
	in, err := n.instanceFor(b.Tenant, b.Instance, true)
	if err != nil {
		n.tel.applyErr.Inc()
		return
	}
	cfg := in.tb.Cfg
	for i := range b.Events {
		e := &b.Events[i]
		subject := topology.ID(e.Subject)
		switch topology.EventKind(e.Kind) {
		case topology.EvVolumeCreated:
			if err := cfg.AddVolume(subject, topology.ID(e.Pool), e.Name, e.SizeGB); err != nil {
				n.tel.applyErr.Inc()
				continue
			}
		case topology.EvZoneCreated:
			if len(e.Ports) > 0 {
				ports := make([]topology.ID, len(e.Ports))
				for i, p := range e.Ports {
					ports[i] = topology.ID(p)
				}
				if err := cfg.AddZone(e.Name, ports...); err != nil {
					n.tel.applyErr.Inc()
					continue
				}
			}
		case topology.EvZoneDeleted:
			cfg.RemoveZone(e.Name)
		case topology.EvLUNMapped:
			if e.Server != "" {
				if err := cfg.MapLUN(subject, topology.ID(e.Server)); err != nil {
					n.tel.applyErr.Inc()
					continue
				}
			}
		}
		cfg.Log.Record(topology.Event{
			T:       simtime.Time(e.T),
			Kind:    topology.EventKind(e.Kind),
			Subject: subject,
			Detail:  e.Detail,
		})
	}
	_ = traceID
}

// nextTraceID mints a request trace ID. Sequential, not random: the
// serving surface must introduce no entropy a diagnosis could pick up.
func (n *Node) nextTraceID() string {
	return "api/req-" + strconv.FormatInt(n.traceSeq.Add(1), 10)
}

package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"diads/internal/experiments"
	"diads/internal/fleet"
	"diads/internal/metrics"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
)

const testSeed = 11

// postJSON posts v to url and returns the response with its body read.
func postJSON(t *testing.T, client *http.Client, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

// simulateClient runs the online SAN-misconfiguration scenario locally —
// the "real system" whose monitoring we serialize over the wire.
func simulateClient(t *testing.T, seed int64, runs int) *experiments.OnlineEnv {
	t.Helper()
	env, err := experiments.BuildOnline(experiments.OnlineSpec{Seed: seed, Runs: runs})
	if err != nil {
		t.Fatalf("building online env: %v", err)
	}
	env.Testbed.Engine.OnRunComplete = nil // runs travel over the wire instead
	if err := env.Testbed.Simulate(); err != nil {
		t.Fatalf("simulating: %v", err)
	}
	return env
}

// faultEvents is the wire form of the SAN misconfiguration's
// configuration events: what a real storage-management stack would post
// when an operator carves V' from the victim pool.
func faultEvents(onset simtime.Time) []WireEvent {
	at := float64(onset)
	return []WireEvent{
		{T: at, Kind: "VolumeCreated", Subject: "vol-Vp", Detail: "volume V' created in pool-P1",
			Pool: string(testbed.PoolP1), Name: "V'", SizeGB: 80},
		{T: at + 30, Kind: "ZoneCreated", Subject: "vol-Vp", Detail: "zoning for host srv-app1"},
		{T: at + 60, Kind: "LUNMapped", Subject: "vol-Vp", Detail: "LUN mapped to host srv-app1",
			Server: string(testbed.ServerApp1)},
		{T: at + 120, Kind: "WorkloadStarted", Subject: "vol-Vp", Detail: "external workload started on V'"},
	}
}

// storeSamples serializes every series of the client store, globally
// sorted by time — the posting order the watermark contract requires
// (a watermark advance asserts every series is complete up to it).
func storeSamples(tb *testbed.Testbed) []WireSample {
	var out []WireSample
	for _, k := range tb.Store.Keys() {
		for _, s := range tb.Store.Series(k.Component, k.Metric) {
			out = append(out, WireSampleOf(k.Component, k.Metric, s))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// TestEndToEndIngestDiagnosis is the tentpole acceptance test: a
// diagnosed incident produced entirely from externally POSTed data —
// no simulator on the serving side — retrievable from /v1/incidents,
// with its trace visible in /traces.
func TestEndToEndIngestDiagnosis(t *testing.T) {
	env := simulateClient(t, testSeed, 16)
	tb := env.Testbed

	node := New(Config{Seed: testSeed})
	defer node.Shutdown()
	tsrv := telemetry.NewServer("127.0.0.1:0", nil, nil)
	node.Mount(tsrv)
	hs := httptest.NewServer(tsrv.Handler())
	defer hs.Close()
	client := hs.Client()

	// Not ready before the first watermark advance.
	if resp := getJSON(t, client, hs.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ingest = %d, want 503", resp.StatusCode)
	}

	// 1. Configuration events (the misconfiguration as a real
	// storage-management stack would report it).
	resp, body := postJSON(t, client, hs.URL+"/v1/ingest/events", EventBatch{
		Tenant: "acme", Instance: "db-1", Events: faultEvents(env.Onset),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("events: %d %s", resp.StatusCode, body)
	}

	// 2. Run records, batched like a monitoring agent would flush them.
	runs := make([]WireRun, 0, len(tb.Runs))
	for _, rec := range tb.Runs {
		runs = append(runs, WireRunOf(rec))
	}
	const runChunk = 16
	for i := 0; i < len(runs); i += runChunk {
		end := min(i+runChunk, len(runs))
		resp, body = postJSON(t, client, hs.URL+"/v1/ingest/runs", RunBatch{
			Tenant: "acme", Instance: "db-1", Runs: runs[i:end],
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("runs[%d:%d]: %d %s", i, end, resp.StatusCode, body)
		}
	}

	// 3. Metric samples; the final batch carries an explicit watermark
	// past every gated event's read window.
	samples := storeSamples(tb)
	if len(samples) == 0 {
		t.Fatal("client store produced no samples")
	}
	final := float64(env.Horizon.Add(2 * metrics.DefaultMonitorInterval))
	const sampleChunk = 4096
	for i := 0; i < len(samples); i += sampleChunk {
		end := min(i+sampleChunk, len(samples))
		b := SampleBatch{Tenant: "acme", Instance: "db-1", Samples: samples[i:end]}
		if end == len(samples) {
			b.Watermark = &final
		}
		resp, body = postJSON(t, client, hs.URL+"/v1/ingest/samples", b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("samples[%d:%d]: %d %s", i, end, resp.StatusCode, body)
		}
	}

	if err := node.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	// Ready now.
	if resp := getJSON(t, client, hs.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after ingest = %d, want 200", resp.StatusCode)
	}

	// The injected slowdown must surface as a diagnosed incident.
	var list struct {
		Incidents []IncidentView `json:"incidents"`
	}
	getJSON(t, client, hs.URL+"/v1/incidents", &list)
	if len(list.Incidents) == 0 {
		t.Fatalf("no incidents after ingest; service stats: %+v", node.Service().Stats())
	}
	var hit *IncidentView
	for i := range list.Incidents {
		inc := &list.Incidents[i]
		if inc.Kind == symptoms.CauseSANMisconfig && inc.Tenant == "acme" && inc.Instance == "db-1" {
			hit = inc
			break
		}
	}
	if hit == nil {
		t.Fatalf("no %s incident for acme/db-1 in %+v", symptoms.CauseSANMisconfig, list.Incidents)
	}
	if hit.Subject != string(testbed.VolV1) {
		t.Errorf("incident subject = %q, want %q", hit.Subject, testbed.VolV1)
	}

	// Detail route by stable ID.
	var detail struct {
		Incident IncidentView `json:"incident"`
		Causes   []CauseView  `json:"causes"`
	}
	if resp := getJSON(t, client, hs.URL+"/v1/incidents/"+hit.ID, &detail); resp.StatusCode != http.StatusOK {
		t.Fatalf("incident detail = %d", resp.StatusCode)
	}
	if len(detail.Causes) == 0 {
		t.Error("incident detail has no causes")
	}

	// The diagnosis trace is visible in /traces under the event's ID.
	if hit.TraceID == "" {
		t.Fatal("incident carries no trace ID")
	}
	var traces struct {
		Spans []telemetry.Span `json:"spans"`
	}
	getJSON(t, client, hs.URL+"/traces?trace="+hit.TraceID, &traces)
	var sawRelease, sawDiagnose bool
	for _, sp := range traces.Spans {
		switch sp.Name {
		case "api.ingest.release":
			sawRelease = true
		case "service.diagnose":
			sawDiagnose = true
		}
	}
	if !sawRelease || !sawDiagnose {
		t.Errorf("trace %s missing spans (release=%v diagnose=%v): %+v",
			hit.TraceID, sawRelease, sawDiagnose, traces.Spans)
	}

	// Module timings flow through the query route.
	var mods struct {
		Modules []struct {
			Module string `json:"module"`
			Runs   int64  `json:"runs"`
		} `json:"modules"`
	}
	getJSON(t, client, hs.URL+"/v1/modules", &mods)
	if len(mods.Modules) == 0 {
		t.Error("no module stats after diagnoses")
	}

	// The exposition stays valid and carries the api families.
	expo := telemetry.Default().Exposition()
	if err := telemetry.ValidateExposition(expo); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, fam := range []string{
		"diads_api_requests_total",
		"diads_api_request_seconds",
		"diads_api_ingest_batches_total",
		"diads_api_ingest_queue_depth",
		"diads_api_events_released_total",
	} {
		if !bytes.Contains(expo, []byte(fam)) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestIngestBackpressure pins the bounded-queue contract: with the
// intake worker stalled, the queue fills to exactly its depth, the next
// batch gets 429 + Retry-After, and the rejection is counted.
func TestIngestBackpressure(t *testing.T) {
	node := New(Config{Seed: testSeed, QueueDepth: 4})
	defer node.Shutdown()
	hs := httptest.NewServer(node.Handler())
	defer hs.Close()
	client := hs.Client()

	before := node.tel.rejected[reasonBackpressure].Value()

	// Stall the worker on a block job, then fill the queue.
	block := make(chan struct{})
	if err := node.enqueue(intakeJob{block: block}); err != nil {
		t.Fatalf("enqueue block: %v", err)
	}
	batch := SampleBatch{Tenant: "t", Instance: "i", Samples: []WireSample{
		{Component: "c", Metric: "m", T: 1, V: 1},
	}}
	accepted := 0
	var got429 bool
	for i := 0; i < node.cfg.QueueDepth+8; i++ {
		resp, body := postJSON(t, client, hs.URL+"/v1/ingest/samples", batch)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			if !strings.Contains(string(body), "queue full") {
				t.Errorf("429 body: %s", body)
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}
	}
	if !got429 {
		t.Fatal("flood never hit backpressure")
	}
	if accepted != node.cfg.QueueDepth {
		t.Errorf("accepted %d batches with a stalled worker, want exactly %d (bounded queue)",
			accepted, node.cfg.QueueDepth)
	}
	if after := node.tel.rejected[reasonBackpressure].Value(); after <= before {
		t.Errorf("rejection counter did not move: %v -> %v", before, after)
	}

	close(block)
	if err := node.Quiesce(); err != nil {
		t.Fatalf("quiesce after unblock: %v", err)
	}
	if err := telemetry.ValidateExposition(telemetry.Default().Exposition()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestShutdownUnderLoad drains the node while a client floods it: every
// in-flight batch either lands or is refused with 429/503, Shutdown
// returns, and afterwards ingest is firmly 503 and the node not ready.
func TestShutdownUnderLoad(t *testing.T) {
	node := New(Config{Seed: testSeed, QueueDepth: 8})
	hs := httptest.NewServer(node.Handler())
	defer hs.Close()
	client := hs.Client()

	batch := SampleBatch{Tenant: "t", Instance: "i", Samples: []WireSample{
		{Component: "c", Metric: "m", T: 1, V: 1},
	}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(batch)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(hs.URL+"/v1/ingest/samples", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server closing is fine
				}
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("flood got status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}

	node.Shutdown() // must drain and return despite the flood
	close(stop)
	wg.Wait()

	if ok, reason := node.Ready(); ok || reason != "draining" {
		t.Errorf("Ready after Shutdown = %v %q, want draining", ok, reason)
	}
	resp, body := postJSON(t, client, hs.URL+"/v1/ingest/samples", batch)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after shutdown = %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("503 body should say draining: %s", body)
	}
	// Idempotent.
	node.Shutdown()
}

// TestIdleEvictionBoundsInstances pins the instance lifecycle's leak
// fix: under tenant churn (every batch from a fresh tenant) the
// resident-instance map stays bounded by the idle horizon instead of
// accreting one environment per tenant forever, evictions are counted,
// and an evicted tenant that returns is rebuilt transparently.
func TestIdleEvictionBoundsInstances(t *testing.T) {
	const (
		idle    = 8
		tenants = 40
	)
	node := New(Config{Seed: testSeed, IdleBatches: idle})
	defer node.Shutdown()
	hs := httptest.NewServer(node.Handler())
	defer hs.Close()
	client := hs.Client()

	evictedBefore := node.tel.evicted.Value()
	post := func(tenant string) {
		t.Helper()
		batch := SampleBatch{Tenant: tenant, Instance: "db", Samples: []WireSample{
			{Component: "c", Metric: "m", T: 1, V: 1},
		}}
		for {
			resp, body := postJSON(t, client, hs.URL+"/v1/ingest/samples", batch)
			switch resp.StatusCode {
			case http.StatusAccepted:
				return
			case http.StatusTooManyRequests:
				continue // intake momentarily full; the worker drains it
			default:
				t.Fatalf("samples for %s: %d %s", tenant, resp.StatusCode, body)
			}
		}
	}
	for i := 0; i < tenants; i++ {
		post(fmt.Sprintf("tenant-%d", i))
	}
	if err := node.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	if got := node.InstanceCount(); got > idle {
		t.Fatalf("resident instances after churn = %d, want <= %d (idle horizon)", got, idle)
	}
	wantEvicted := int64(tenants - idle)
	if got := node.tel.evicted.Value() - evictedBefore; got < wantEvicted {
		t.Errorf("evictions = %d, want >= %d", got, wantEvicted)
	}

	// A returning evicted tenant is rebuilt on next contact.
	post("tenant-0")
	if err := node.Quiesce(); err != nil {
		t.Fatalf("quiesce after return: %v", err)
	}
	n := node
	n.mu.Lock()
	_, resident := n.instances["tenant-0/db"]
	n.mu.Unlock()
	if !resident {
		t.Error("returning tenant-0 was not rebuilt")
	}

	if err := telemetry.ValidateExposition(telemetry.Default().Exposition()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestOperatorRoutes pins the review-gate wiring: resolving a kind with
// no pending candidate is a 409 with the learner's reason, for both the
// bare and mined spellings.
func TestOperatorRoutes(t *testing.T) {
	node := New(Config{Seed: testSeed})
	defer node.Shutdown()
	hs := httptest.NewServer(node.Handler())
	defer hs.Close()
	client := hs.Client()

	for _, kind := range []string{"nothing-pending", "nothing-pending" + symptoms.MinedSuffix} {
		resp, body := postJSON(t, client, hs.URL+"/v1/candidates/"+kind+"/ack", struct{}{})
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("ack %s = %d %s, want 409", kind, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "no pending candidate") {
			t.Errorf("ack body: %s", body)
		}
	}
	var cands struct {
		Pending []CandidateView `json:"pending"`
	}
	if resp := getJSON(t, client, hs.URL+"/v1/candidates", &cands); resp.StatusCode != http.StatusOK {
		t.Fatalf("candidates = %d", resp.StatusCode)
	}
}

// TestIngestValidation pins the 400 contract: malformed bodies and
// unusable batches fail at the request, before the intake queue.
func TestIngestValidation(t *testing.T) {
	node := New(Config{Seed: testSeed})
	defer node.Shutdown()
	hs := httptest.NewServer(node.Handler())
	defer hs.Close()
	client := hs.Client()

	cases := []struct {
		url  string
		body string
	}{
		{"/v1/ingest/samples", `{not json`},
		{"/v1/ingest/samples", `{"tenant":"t","samples":[]}`},                                                        // missing instance
		{"/v1/ingest/samples", `{"tenant":"t","instance":"i","samples":[{"metric":"m","t":1,"v":1}]}`},               // missing component
		{"/v1/ingest/samples", `{"tenant":"t","instance":"i","bogus":1}`},                                            // unknown field
		{"/v1/ingest/runs", `{"tenant":"t","instance":"i","runs":[{"query":"Q2"}]}`},                                 // missing run_id
		{"/v1/ingest/runs", `{"tenant":"t","instance":"i","runs":[{"query":"Q2","run_id":"r","start":5,"stop":1}]}`}, // stop < start
		{"/v1/ingest/events", `{"tenant":"t","events":[]}`},                                                          // missing instance
	}
	for _, c := range cases {
		resp, err := client.Post(hs.URL+c.url, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("POST %s: %v", c.url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s = %d, want 400", c.url, c.body, resp.StatusCode)
		}
	}
}

// TestScopedInstance pins the tenant-scoping helpers.
func TestScopedInstance(t *testing.T) {
	if got := fleet.ScopedInstance("acme", "db-1"); got != "acme/db-1" {
		t.Errorf("ScopedInstance = %q", got)
	}
	if got := fleet.ScopedInstance("", "db-1"); got != "db-1" {
		t.Errorf("unscoped = %q", got)
	}
	tenant, inst := fleet.SplitScoped("acme/db-1")
	if tenant != "acme" || inst != "db-1" {
		t.Errorf("SplitScoped = %q %q", tenant, inst)
	}
	tenant, inst = fleet.SplitScoped("bare")
	if tenant != "" || inst != "bare" {
		t.Errorf("SplitScoped bare = %q %q", tenant, inst)
	}
	// Instance names may contain the separator; tenants may not.
	tenant, inst = fleet.SplitScoped("acme/db/replica-1")
	if tenant != "acme" || inst != "db/replica-1" {
		t.Errorf("SplitScoped nested = %q %q", tenant, inst)
	}
	_ = service.ErrBackpressure // the pool semantics ingest mirrors
}

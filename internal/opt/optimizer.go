// Package opt implements the cost-based query optimizer substrate. DIADS
// itself never optimizes queries, but Module PD needs an optimizer to
// (a) detect that the plan executed for a query changed between
// satisfactory and unsatisfactory runs and (b) replay candidate
// configuration/schema changes to pinpoint which one caused the change
// ("plan-change analysis"). Module IA's cost-model implementation also
// reuses the cost functions here.
package opt

import (
	"fmt"
	"math"

	"diads/internal/dbsys"
	"diads/internal/plan"
)

// Optimizer chooses execution plans from catalog statistics and
// configuration parameters, PostgreSQL-style.
type Optimizer struct {
	// Cat supplies index availability; statistics come from the snapshot
	// passed to each call so that PD can replay historical states.
	Cat *dbsys.Catalog
}

// New returns an optimizer over the given catalog.
func New(cat *dbsys.Catalog) *Optimizer { return &Optimizer{Cat: cat} }

// PlanQuery chooses the cheapest plan for the named query under the given
// statistics snapshot and parameters. Supported queries: Q2 (with access
// path and join strategy enumeration), Q5, Q6, Q14 (fixed shapes).
func (o *Optimizer) PlanQuery(query string, stats dbsys.Stats, params *dbsys.Params) (*plan.Plan, error) {
	switch query {
	case "Q2":
		return o.planQ2(stats, params), nil
	case "Q5":
		p := plan.BuildQ5()
		plan.EstimateInto(p, stats.RowsOf)
		return p, nil
	case "Q6":
		p := plan.BuildQ6()
		plan.EstimateInto(p, stats.RowsOf)
		return p, nil
	case "Q14":
		p := plan.BuildQ14()
		plan.EstimateInto(p, stats.RowsOf)
		return p, nil
	default:
		return nil, fmt.Errorf("opt: unknown query %q", query)
	}
}

// planQ2 enumerates the Q2 decision points and picks the cheapest
// combination.
func (o *Optimizer) planQ2(stats dbsys.Stats, params *dbsys.Params) *plan.Plan {
	indexEnabled := params.Bool(dbsys.ParamEnableIndexScan)

	accessAlternatives := func(table, column string) []plan.AccessSpec {
		alts := []plan.AccessSpec{{Type: plan.OpSeqScan}}
		if indexEnabled {
			if ix, ok := o.Cat.IndexOn(table, column); ok {
				alts = append([]plan.AccessSpec{{Type: plan.OpIndexScan, Index: ix.Name}}, alts...)
			}
		}
		return alts
	}

	partAlts := accessAlternatives(dbsys.TPart, "p_type")
	psAlts := accessAlternatives(dbsys.TPartsupp, "ps_partkey")
	// Tiny-table lookups are not worth enumerating: use the index when
	// it is available and allowed, else a sequential scan.
	nationAccess := accessAlternatives(dbsys.TNation, "n_nationkey")[0]
	supplierAccess := accessAlternatives(dbsys.TSupplier, "s_suppkey")[0]
	joins := []plan.OpType{}
	if params.Bool(dbsys.ParamEnableHashJoin) {
		joins = append(joins, plan.OpHashJoin)
	}
	if params.Bool(dbsys.ParamEnableNestLoop) || len(joins) == 0 {
		joins = append(joins, plan.OpNestedLoop)
	}

	var best *plan.Plan
	bestCost := math.Inf(1)
	for _, pa := range partAlts {
		for _, ma := range psAlts {
			for _, sa := range psAlts {
				for _, j := range joins {
					cand := plan.BuildQ2(plan.Q2Choices{
						PartAccess:        pa,
						PartsuppAccess:    ma,
						SubPartsuppAccess: sa,
						SubNationAccess:   nationAccess,
						SubSupplierAccess: supplierAccess,
						MainJoin:          j,
					})
					cost := o.CostPlan(cand, stats, params)
					if cost < bestCost {
						bestCost = cost
						best = cand
					}
				}
			}
		}
	}
	plan.EstimateInto(best, stats.RowsOf)
	return best
}

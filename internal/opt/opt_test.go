package opt

import (
	"testing"

	"diads/internal/dbsys"
	"diads/internal/plan"
)

func setup(t *testing.T) (*Optimizer, dbsys.Stats, *dbsys.Params) {
	t.Helper()
	cat := dbsys.NewTPCHCatalog(1.0, "vol-V1", "vol-V2")
	return New(cat), cat.Snapshot(), dbsys.DefaultParams()
}

func TestQ2DefaultPlanMatchesFigure1(t *testing.T) {
	o, stats, params := setup(t)
	p, err := o.PlanQuery("Q2", stats, params)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumOperators() != 25 || len(p.Leaves()) != 9 {
		t.Fatalf("default Q2 plan should be the 25-op/9-leaf Figure 1 shape, got %d/%d:\n%s",
			p.NumOperators(), len(p.Leaves()), p.Render())
	}
	// Both partsupp reads use the partkey index.
	for _, l := range p.LeavesOnTable(dbsys.TPartsupp) {
		if l.Type != plan.OpIndexScan || l.Index != dbsys.IdxPartsuppPart {
			t.Fatalf("partsupp leaf O%d: got %s/%s", l.ID, l.Type, l.Index)
		}
	}
	// O4 is the part index scan, as in Figure 1.
	if o4 := p.MustNode(4); o4.Type != plan.OpIndexScan || o4.Index != dbsys.IdxPartType {
		t.Fatalf("O4 should be an index scan on part: got %s/%s", o4.Type, o4.Index)
	}
	// Estimates are populated.
	if p.MustNode(4).EstRows <= 0 {
		t.Fatalf("EstRows not populated on O4")
	}
}

func TestDroppingIndexChangesPlan(t *testing.T) {
	o, stats, params := setup(t)
	before, _ := o.PlanQuery("Q2", stats, params)
	if !o.Cat.DropIndex(dbsys.IdxPartsuppPart) {
		t.Fatal("drop failed")
	}
	after, _ := o.PlanQuery("Q2", stats, params)
	if before.Signature() == after.Signature() {
		t.Fatalf("dropping the partsupp index must change the plan")
	}
	for _, l := range after.LeavesOnTable(dbsys.TPartsupp) {
		if l.Type != plan.OpSeqScan {
			t.Fatalf("without the index partsupp must be seq-scanned, got %s", l.Type)
		}
	}
	o.Cat.RestoreIndex(dbsys.IdxPartsuppPart)
	restored, _ := o.PlanQuery("Q2", stats, params)
	if restored.Signature() != before.Signature() {
		t.Fatalf("restoring the index should restore the plan")
	}
}

func TestRandomPageCostFlipsAccessPath(t *testing.T) {
	o, stats, params := setup(t)
	before, _ := o.PlanQuery("Q2", stats, params)
	params.Set(dbsys.ParamRandomPageCost, 40)
	after, _ := o.PlanQuery("Q2", stats, params)
	if before.Signature() == after.Signature() {
		t.Fatalf("a 10x random_page_cost increase should flip at least one access path")
	}
	// The weakly-correlated part index loses first.
	if o4 := after.MustNode(4); o4.Type != plan.OpSeqScan {
		t.Fatalf("part access should flip to seq scan at rpc=40:\n%s", after.Render())
	}
	// At an extreme setting even the highly-correlated partsupp index
	// loses to a full scan.
	params.Set(dbsys.ParamRandomPageCost, 100)
	extreme, _ := o.PlanQuery("Q2", stats, params)
	main := extreme.LeavesOnTable(dbsys.TPartsupp)[0]
	if main.Type != plan.OpSeqScan {
		t.Fatalf("main partsupp access should flip to seq scan at rpc=100:\n%s", extreme.Render())
	}
}

func TestDisablingIndexScansForcesSeqScans(t *testing.T) {
	o, stats, params := setup(t)
	params.Set(dbsys.ParamEnableIndexScan, 0)
	p, _ := o.PlanQuery("Q2", stats, params)
	for _, l := range p.Leaves() {
		if l.Type == plan.OpIndexScan {
			t.Fatalf("enable_indexscan=0 must eliminate index scans:\n%s", p.Render())
		}
	}
}

func TestDisablingHashJoinSwitchesStrategy(t *testing.T) {
	o, stats, params := setup(t)
	params.Set(dbsys.ParamEnableHashJoin, 0)
	p, _ := o.PlanQuery("Q2", stats, params)
	if p.MustNode(3).Type == plan.OpHashJoin {
		t.Fatalf("enable_hashjoin=0 must avoid hash join at the top:\n%s", p.Render())
	}
}

func TestCostMonotoneInTableSize(t *testing.T) {
	o, stats, params := setup(t)
	p, _ := o.PlanQuery("Q2", stats, params)
	base := o.CostPlan(p, stats, params)
	grown := stats.Clone()
	grown.Rows[dbsys.TPartsupp] *= 2
	if o.CostPlan(p, grown, params) <= base {
		t.Fatalf("doubling partsupp should raise the plan's cost")
	}
}

func TestCostPositiveForAllQueries(t *testing.T) {
	o, stats, params := setup(t)
	for _, q := range []string{"Q2", "Q5", "Q6", "Q14"} {
		p, err := o.PlanQuery(q, stats, params)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if c := o.CostPlan(p, stats, params); c <= 0 {
			t.Fatalf("%s: nonpositive cost %v", q, c)
		}
	}
}

func TestUnknownQueryRejected(t *testing.T) {
	o, stats, params := setup(t)
	if _, err := o.PlanQuery("Q99", stats, params); err == nil {
		t.Fatalf("unknown query should error")
	}
}

func TestStaleStatsStillPickIndexPlan(t *testing.T) {
	// A data-property change (partsupp doubles) without re-ANALYZE leaves
	// the optimizer choosing from the old snapshot: the plan must stay
	// identical — that is why scenario 3's Module PD reports "no plan
	// change" while record counts shift.
	o, stats, params := setup(t)
	before, _ := o.PlanQuery("Q2", stats, params)
	if err := o.Cat.ScaleRows(dbsys.TPartsupp, 2.0); err != nil {
		t.Fatal(err)
	}
	after, _ := o.PlanQuery("Q2", stats, params) // same stale snapshot
	if before.Signature() != after.Signature() {
		t.Fatalf("stale statistics must keep the plan unchanged")
	}
}

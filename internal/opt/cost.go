package opt

import (
	"math"

	"diads/internal/dbsys"
	"diads/internal/plan"
)

// CostPlan returns the optimizer's cost for a plan under a statistics
// snapshot and parameter set, in abstract page-fetch units. The shape of
// the model follows PostgreSQL's: sequential and random page costs for
// I/O, a per-tuple CPU cost, n-log-n sorts, and nested-loop probe costs
// that grow with the product of input cardinalities.
func (o *Optimizer) CostPlan(p *plan.Plan, stats dbsys.Stats, params *dbsys.Params) float64 {
	seqCost := params.Get(dbsys.ParamSeqPageCost)
	randCost := params.Get(dbsys.ParamRandomPageCost)
	cpuTuple := params.Get(dbsys.ParamCPUTupleCost)

	cards := plan.Cardinality(p, stats.RowsOf, func(string) float64 { return 1 })

	pagesOf := func(table string) float64 {
		rows := stats.RowsOf(table)
		t, ok := o.Cat.Table(table)
		width := 128
		if ok {
			width = t.RowWidthB
		}
		pages := float64(rows) * float64(width) / float64(dbsys.PageSizeKB*1024)
		return math.Max(1, pages)
	}

	var cost func(n *plan.Node) float64
	cost = func(n *plan.Node) float64 {
		rows := cards.RowsPerExec[n.ID]
		var own float64
		switch n.Type {
		case plan.OpSeqScan:
			own = pagesOf(n.Table)*seqCost + float64(stats.RowsOf(n.Table))*cpuTuple
		case plan.OpIndexScan:
			corr := 0.5
			if ix, ok := o.Cat.Index(n.Index); ok {
				corr = ix.Correlation
			}
			descent := math.Log2(pagesOf(n.Table) + 2)
			perFetch := randCost*(1-corr) + seqCost*corr
			own = descent + rows*perFetch + rows*cpuTuple
		case plan.OpSort:
			n2 := rows + 2
			own = 2 * n2 * math.Log2(n2) * cpuTuple
		case plan.OpHash:
			own = rows * cpuTuple * 1.5
		case plan.OpHashJoin, plan.OpMergeJoin:
			var inputs float64
			for _, ch := range n.Children {
				inputs += cards.RowsPerExec[ch.ID]
			}
			own = inputs * cpuTuple
		case plan.OpNestedLoop:
			outer := cards.RowsPerExec[n.Children[0].ID]
			var inner float64
			if len(n.Children) > 1 {
				inner = cards.RowsPerExec[n.Children[1].ID]
			}
			// Each outer row probes the inner; the probe touches the
			// inner's rows unless it is a parameterized (AbsRows) lookup.
			own = outer * math.Max(1, inner) * cpuTuple
		case plan.OpAggregate:
			var inputs float64
			for _, ch := range n.Children {
				inputs += cards.RowsPerExec[ch.ID]
			}
			own = inputs * cpuTuple
		case plan.OpMaterialize:
			own = rows * cpuTuple * 0.5
		case plan.OpLimit:
			own = 0
		}

		total := own
		for _, ch := range n.Children {
			total += cost(ch)
		}
		for _, s := range n.SubPlans {
			subLoops := 1.0
			if len(n.Children) > 0 {
				subLoops = math.Max(1, cards.RowsPerExec[n.Children[0].ID])
			}
			total += cost(s) * subLoops
		}
		return total
	}
	return cost(p.Root)
}

package console

import (
	"strings"
	"testing"

	"diads/internal/apg"
	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/fleet"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/workload"
)

func simulated(t *testing.T) (*testbed.Testbed, *diag.Input) {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 5},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(5*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	labels := diag.LabelByWindow(runs, simtime.NewInterval(runs[3].Start, horizon))
	in := &diag.Input{
		Query: "Q2", Runs: runs, Satisfactory: labels,
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: symptoms.Builtin(),
	}
	return tb, in
}

func TestQueryScreenColumnsAndMarks(t *testing.T) {
	_, in := simulated(t)
	s := QueryScreen(in.Runs, in.Satisfactory)
	for _, want := range []string{"Run", "Query", "Plan", "Start time", "End time",
		"Duration", "Unsat", "[x]", "[ ]", "run-Q2-001", "[APG]", "[Workflow]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("query screen missing %q:\n%s", want, s)
		}
	}
	// Rows are time-ordered even if input is shuffled.
	shuffled := []*exec.RunRecord{in.Runs[3], in.Runs[0], in.Runs[2]}
	s2 := QueryScreen(shuffled, in.Satisfactory)
	if strings.Index(s2, "run-Q2-001") > strings.Index(s2, "run-Q2-003") {
		t.Fatalf("rows should be time ordered:\n%s", s2)
	}
}

func TestAPGScreenShowsMetricsTable(t *testing.T) {
	tb, in := simulated(t)
	g, err := apg.Build(tb.Runs[0].Plan, tb.Cfg, tb.Cat, testbed.ServerDB)
	if err != nil {
		t.Fatal(err)
	}
	run := tb.Runs[4]
	windows := []simtime.Interval{simtime.NewInterval(run.Start.Add(-300), run.Stop.Add(300))}
	s := APGScreen(g, in.Store, run, string(testbed.VolV1), windows)
	for _, want := range []string{"APG Visualization", "vol-V1", "Time", "Metric", "Value",
		"Unsat", "readIO"} {
		if !strings.Contains(s, want) {
			t.Fatalf("APG screen missing %q", want)
		}
	}
	// Unknown component degrades gracefully.
	s2 := APGScreen(g, in.Store, run, "no-such-component", nil)
	if !strings.Contains(s2, "no metrics recorded") {
		t.Fatalf("missing-component handling wrong:\n%s", s2)
	}
}

func TestWorkflowScreenProgressMarkers(t *testing.T) {
	_, in := simulated(t)
	w, err := diag.NewWorkflow(in)
	if err != nil {
		t.Fatal(err)
	}
	s0 := WorkflowScreen(w)
	if !strings.Contains(s0, "[PD ]") || !strings.Contains(s0, "(CO )") {
		t.Fatalf("initial screen wrong:\n%s", s0)
	}
	if err := w.RunPD(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunCO(); err != nil {
		t.Fatal(err)
	}
	s1 := WorkflowScreen(w)
	for _, want := range []string{"[PD*]", "[CO*]", "[DA ]", "(SD )", "correlated operator set"} {
		if !strings.Contains(s1, want) {
			t.Fatalf("post-CO screen missing %q:\n%s", want, s1)
		}
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := WorkflowScreen(w)
	if !strings.Contains(s2, "[IA*]") || !strings.Contains(s2, "Module IA") {
		t.Fatalf("final screen missing IA results:\n%s", s2)
	}
}

func TestPlanScreen(t *testing.T) {
	tb, _ := simulated(t)
	s := PlanScreen(tb.Runs[0].Plan)
	if !strings.Contains(s, "signature") || !strings.Contains(s, "O25") {
		t.Fatalf("plan screen wrong:\n%s", s)
	}
}

func TestTimingPanelRendersTrace(t *testing.T) {
	_, in := simulated(t)
	res, err := diag.Diagnose(in)
	if err != nil {
		t.Fatal(err)
	}
	s := TimingPanel(res.Trace)
	for _, want := range []string{"Workflow Timing", "pipeline diads", "module", "status", "wall", "cache",
		"pd", "apg", "co", "da", "cr", "sd", "ia", "ran"} {
		if !strings.Contains(s, want) {
			t.Fatalf("timing panel missing %q:\n%s", want, s)
		}
	}
	if s2 := TimingPanel(nil); !strings.Contains(s2, "no trace") {
		t.Fatalf("nil trace panel wrong:\n%s", s2)
	}
}

func TestFleetPanelRendersGroupedView(t *testing.T) {
	rep := &fleet.Report{
		Instances: []fleet.InstanceReport{
			{ID: "inst-0", Shared: true, Events: 4, Detected: true,
				FirstDetection: simtime.Time(100 * simtime.Minute), Incidents: 1},
			{ID: "inst-1", Shared: true, Events: 3, Detected: true,
				FirstDetection: simtime.Time(105 * simtime.Minute), Incidents: 1, Transfers: 2},
			{ID: "inst-2"},
		},
		Groups: []fleet.GroupedIncident{{
			Kind: symptoms.CauseSANMisconfig, Subject: string(testbed.VolV1), Shared: true,
			Queries: []string{"Q2"}, TotalImpact: 120, Events: 7,
			Parts: []fleet.IncidentPart{
				{Instance: "inst-0", Query: "Q2", Events: 4, Confidence: 95, Impact: 70},
				{Instance: "inst-1", Query: "Q2", Events: 3, Confidence: 90, Impact: 50},
			},
		}},
		Learning: fleet.LearnStats{
			Confirmed: 2,
			Installed: []fleet.InstalledEntry{
				{Kind: symptoms.CauseSANMisconfig + symptoms.MinedSuffix, Sources: []string{"inst-0"}},
			},
			Transfers:         2,
			TransferInstances: []string{"inst-1"},
		},
	}
	out := FleetPanel(rep)
	for _, want := range []string{
		"DIADS — Fleet",
		"san-misconfig-contention(vol-V1)",
		"inst-0",
		"shared",
		"transfers",
		"acting on:",
		"across 2 instances",
		"mined from inst-0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet panel missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(FleetPanel(nil), "no fleet report") {
		t.Error("nil report should render a placeholder")
	}
}

func TestCandidatesPanelRendersLifecycle(t *testing.T) {
	mined := symptoms.CauseSANMisconfig + symptoms.MinedSuffix
	st := fleet.LearnStats{
		Confirmed: 4, HeldOut: 2, Healthy: 3,
		Installed: []fleet.InstalledEntry{{
			Kind: mined, Sources: []string{"inst-0", "inst-1"},
			Validation: symptoms.Validation{
				Kind: mined, Verdict: symptoms.VerdictPass,
				Healthy: 3, Holdout: 2, HoldoutHigh: 2,
			},
		}},
		Pending: []fleet.PendingCandidate{{
			Kind:     "lock-contention" + symptoms.MinedSuffix,
			State:    "validated — awaiting operator review",
			Rendered: "# mined from 2/2 incidents — review before adopting\ncause lock-contention-mined scope=global {\n  100: ge(lock-anomaly:db, 0.8)\n}\n",
		}},
		Rejected: []fleet.RejectedCandidate{{
			Kind:   "noise-mined",
			Reason: "conditions hold during healthy periods: ge(ambient, 0.8)",
			Validation: symptoms.Validation{
				Conditions: []symptoms.ConditionCheck{{Expr: "ge(ambient, 0.8)", HealthyHits: 3}},
			},
		}},
	}
	out := CandidatesPanel(st)
	for _, want := range []string{
		"DIADS — Mined Candidates",
		"confirmed=4 held-out=2 healthy-corpus=3",
		"installed " + mined + " (mined from inst-0 inst-1)",
		"healthy replay 3 bases / 0 false positives, hold-out 2/2 high",
		"pending lock-contention-mined — validated — awaiting operator review",
		"cause lock-contention-mined scope=global {", // the DSL the operator acks
		"rejected noise-mined — conditions hold during healthy periods",
		"healthy-hits=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("candidates panel missing %q:\n%s", want, out)
		}
	}
	if empty := CandidatesPanel(fleet.LearnStats{}); !strings.Contains(empty, "no candidates proposed") {
		t.Errorf("empty lifecycle should render a placeholder:\n%s", empty)
	}
}

// Package console renders DIADS's user interface as deterministic text
// screens: the query-selection table (Figure 3), the APG visualization
// with per-component time-series (Figure 6), and the interactive workflow
// screen (Figure 7). The paper's prototype drew these as a Java GUI; the
// content and columns are preserved.
package console

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"diads/internal/apg"
	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/fleet"
	"diads/internal/metrics"
	"diads/internal/pipeline"
	"diads/internal/plan"
	"diads/internal/simtime"
)

// QueryScreen renders the query-selection screen (Figure 3): one row per
// query execution with its plan, start/end times, duration, and the
// administrator's unsatisfactory mark.
func QueryScreen(runs []*exec.RunRecord, satisfactory map[string]bool) string {
	ordered := make([]*exec.RunRecord, len(runs))
	copy(ordered, runs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })

	var b strings.Builder
	b.WriteString("DIADS — Query Selection\n")
	fmt.Fprintf(&b, "%-14s %-6s %-10s %-12s %-12s %-10s %-6s\n",
		"Run", "Query", "Plan", "Start time", "End time", "Duration", "Unsat")
	b.WriteString(strings.Repeat("-", 76) + "\n")
	for _, r := range ordered {
		mark := "[ ]"
		if sat, ok := satisfactory[r.RunID]; ok && !sat {
			mark = "[x]"
		}
		fmt.Fprintf(&b, "%-14s %-6s %-10s %-12s %-12s %-10s %-6s\n",
			r.RunID, r.Query, r.PlanSig[:8], r.Start.Clock(), r.Stop.Clock(),
			r.Duration().String(), mark)
	}
	b.WriteString("\n[APG] view annotated plan graph    [Workflow] invoke diagnosis workflow\n")
	return b.String()
}

// APGScreen renders the APG visualization screen (Figure 6): the APG
// structure as a tree on the left, and the time-series performance
// metrics of one selected component on the right, with each measurement's
// unsatisfactory categorization.
func APGScreen(g *apg.APG, store *metrics.Store, run *exec.RunRecord, component string, unsatWindows []simtime.Interval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIADS — APG Visualization (run %s)\n\n", run.RunID)
	b.WriteString(g.Render())

	fmt.Fprintf(&b, "\nPerformance metrics for component %q:\n", component)
	ms := store.MetricsFor(component)
	if len(ms) == 0 {
		b.WriteString("  (no metrics recorded)\n")
		return b.String()
	}
	// Double evidence-window padding: the screen shows the surrounding
	// context, one monitoring interval beyond what the diagnosis reads.
	win := metrics.ReadWindow(metrics.ReadWindow(simtime.NewInterval(run.Start, run.Stop)))
	fmt.Fprintf(&b, "%-12s %-32s %12s  %-6s\n", "Time", "Metric", "Value", "Unsat")
	b.WriteString(strings.Repeat("-", 68) + "\n")
	for _, m := range ms {
		for _, s := range store.Window(component, m, win) {
			mark := "[ ]"
			for _, uw := range unsatWindows {
				if uw.Contains(s.T) {
					mark = "[x]"
				}
			}
			fmt.Fprintf(&b, "%-12s %-32s %12.3f  %s\n", s.T.Clock(), m, s.V, mark)
		}
	}
	return b.String()
}

// WorkflowScreen renders the interactive workflow screen (Figure 7): the
// module buttons across the top — executed modules enabled, pending ones
// disabled — and the result panel of the last executed module.
func WorkflowScreen(w *diag.Workflow) string {
	var b strings.Builder
	b.WriteString("DIADS — Diagnosis Workflow\n\n")

	type module struct {
		name string
		done bool
	}
	res := w.Res
	modules := []module{
		{"PD", res.PD != nil},
		{"CO", res.CO != nil},
		{"DA", res.DA != nil},
		{"CR", res.CR != nil},
		{"SD", res.Facts != nil},
		{"IA", res.IA != nil},
	}
	ready := true
	for _, m := range modules {
		switch {
		case m.done:
			fmt.Fprintf(&b, "[%s*] ", m.name)
		case ready:
			fmt.Fprintf(&b, "[%s ] ", m.name)
			ready = false
		default:
			fmt.Fprintf(&b, "(%s ) ", m.name)
		}
		if m.done {
			ready = true
		}
	}
	b.WriteString("   (* executed, [] next, () disabled)\n\n")
	b.WriteString("Result panel:\n")
	switch {
	case res.IA != nil:
		b.WriteString("Module IA — root causes and impact:\n")
		for _, item := range res.IA.Items {
			fmt.Fprintf(&b, "  %-55s impact=%5.1f%%\n", item.Cause.String(), item.Score)
		}
	case res.Facts != nil:
		b.WriteString("Module SD — cause confidence:\n")
		for _, c := range res.Causes {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	case res.CR != nil:
		fmt.Fprintf(&b, "Module CR — record-count anomalies on operators %v\n", res.CR.CRS)
	case res.DA != nil:
		fmt.Fprintf(&b, "Module DA — %d correlated component metrics\n", len(res.DA.CCS))
		for _, s := range res.DA.CCS {
			fmt.Fprintf(&b, "  %-14s %-30s score=%.3f\n", s.Component, s.Metric, s.Score)
		}
	case res.CO != nil:
		b.WriteString("Module CO — correlated operator set:\n")
		for _, id := range res.CO.COS {
			n, _ := res.APG.Plan.Node(id)
			label := ""
			if n != nil {
				label = n.Label()
			}
			fmt.Fprintf(&b, "  O%-3d %-40s score=%.3f\n", id, label, res.CO.ScoreOf(id))
		}
	case res.PD != nil:
		if res.PD.Changed {
			b.WriteString("Module PD — plan changed; see plan-change analysis\n")
		} else {
			b.WriteString("Module PD — same plan in both regimes\n")
		}
	default:
		b.WriteString("(no module executed yet)\n")
	}
	return b.String()
}

// TimingPanel renders the workflow-timing panel: one row per module of
// the diagnosis DAG with its status, measured wall time, and cache
// outcome. The online service records a trace per incident; the panel is
// the screen an operator reads to see where a diagnosis spent its time
// and what the caches absorbed. (Wall times are measured, so this panel
// — unlike the diagnosis report — is not byte-deterministic per seed.)
func TimingPanel(t *pipeline.Trace) string {
	var b strings.Builder
	b.WriteString("DIADS — Workflow Timing\n")
	if t == nil {
		b.WriteString("  (no trace recorded)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "pipeline %s, total %s\n\n", t.Pipeline, t.Total.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-8s %-8s %12s  %-5s %s\n", "module", "status", "wall", "cache", "note")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	for _, m := range t.Modules {
		wall := "-"
		if m.Status == pipeline.StatusRan || m.Status == pipeline.StatusCacheHit ||
			m.Status == pipeline.StatusFailed {
			wall = m.Wall.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-8s %-8s %12s  %-5s %s\n", m.Module, m.Status, wall, m.Cache, m.Note)
	}
	return b.String()
}

// FleetPanel renders the fleet operations screen: the correlated
// incident view (cross-instance groups with per-instance breakdown),
// the instance roster, and the symptom-learning summary. Unlike the
// timing panel it is byte-deterministic per seed — the report carries
// no wall-clock measurements.
func FleetPanel(rep *fleet.Report) string {
	var b strings.Builder
	b.WriteString("DIADS — Fleet\n\n")
	if rep == nil {
		b.WriteString("  (no fleet report)\n")
		return b.String()
	}
	b.WriteString(rep.Render())
	if g := rep.SharedGroup(); g != nil {
		fmt.Fprintf(&b, "\nacting on: %s(%s) — one shared-infrastructure incident across %d instances\n",
			g.Kind, g.Subject, len(g.Parts))
	}
	return b.String()
}

// CandidatesPanel renders the mined-candidate review screen: the
// evidence the learning loop has accumulated, the entries it installed,
// the candidates still in flight (with their admin-DSL rendering, ready
// for an operator to ack or paste into the database), and the rejected
// ones with the validation reasons. Byte-deterministic per seed — it
// renders only lifecycle state, never wall-clock or cache counters.
func CandidatesPanel(st fleet.LearnStats) string {
	var b strings.Builder
	b.WriteString("DIADS — Mined Candidates\n\n")
	fmt.Fprintf(&b, "evidence: confirmed=%d held-out=%d healthy-corpus=%d\n",
		st.Confirmed, st.HeldOut, st.Healthy)
	if len(st.Installed)+len(st.Pending)+len(st.Rejected) == 0 {
		b.WriteString("  (no candidates proposed)\n")
		return b.String()
	}
	for _, e := range st.Installed {
		fmt.Fprintf(&b, "\ninstalled %s (mined from %s)\n", e.Kind, strings.Join(e.Sources, " "))
		fmt.Fprintf(&b, "  healthy replay %d bases / %d false positives, hold-out %d/%d high\n",
			e.Validation.Healthy, e.Validation.FalsePositives,
			e.Validation.HoldoutHigh, e.Validation.Holdout)
	}
	for _, p := range st.Pending {
		fmt.Fprintf(&b, "\npending %s — %s\n", p.Kind, p.State)
		for _, line := range strings.Split(strings.TrimRight(p.Rendered, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	for _, r := range st.Rejected {
		fmt.Fprintf(&b, "\nrejected %s — %s\n", r.Kind, r.Reason)
		for _, c := range r.Validation.Conditions {
			if c.HealthyHits > 0 || c.HoldoutMisses > 0 {
				fmt.Fprintf(&b, "  %-50s healthy-hits=%d holdout-misses=%d\n",
					c.Expr, c.HealthyHits, c.HoldoutMisses)
			}
		}
	}
	return b.String()
}

// PlanScreen renders a plan as the pop-up the query screen shows when the
// plan cell is clicked.
func PlanScreen(p *plan.Plan) string {
	return fmt.Sprintf("Plan %s (signature %s)\n%s", p.Query, p.Signature(), p.Render())
}

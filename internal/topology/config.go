package topology

import (
	"fmt"
	"sort"
)

// Zone is a named set of FC ports allowed to communicate, the first of the
// two access-control mechanisms the paper describes.
type Zone struct {
	Name    string
	Members []ID // port IDs
}

// contains reports whether the zone includes the port.
func (z Zone) contains(p ID) bool {
	for _, m := range z.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Config is the SAN configuration database: every component, their
// containment and fabric connectivity, zoning, LUN mapping, and the
// change log. The zero value is not usable; call New.
type Config struct {
	components map[ID]*Component
	// parent maps a contained component to its container (port→HBA,
	// HBA→server, port→switch, pool→subsystem, disk→pool, volume→pool).
	parent map[ID]ID
	// children is the inverse of parent, kept sorted for determinism.
	children map[ID][]ID
	// fabric holds undirected port-to-port cable links.
	fabric map[ID][]ID
	// zones lists the zoning configuration.
	zones []Zone
	// lunMap maps volume → servers permitted to access it.
	lunMap map[ID][]ID
	// Log is the configuration change log and system event stream.
	Log EventLog
}

// New returns an empty SAN configuration.
func New() *Config {
	return &Config{
		components: make(map[ID]*Component),
		parent:     make(map[ID]ID),
		children:   make(map[ID][]ID),
		fabric:     make(map[ID][]ID),
		lunMap:     make(map[ID][]ID),
	}
}

// add registers a component, or returns an error if the ID is taken.
func (c *Config) add(comp *Component) error {
	if comp.ID == "" {
		return fmt.Errorf("topology: component with empty ID")
	}
	if _, ok := c.components[comp.ID]; ok {
		return fmt.Errorf("topology: duplicate component ID %q", comp.ID)
	}
	c.components[comp.ID] = comp
	return nil
}

// attach records containment of child under parent.
func (c *Config) attach(parent, child ID) {
	c.parent[child] = parent
	c.children[parent] = append(c.children[parent], child)
	sort.Slice(c.children[parent], func(i, j int) bool {
		return c.children[parent][i] < c.children[parent][j]
	})
}

// mustExist panics if id is unknown; used by builder methods whose callers
// construct topologies programmatically, where a dangling reference is a
// programming error.
func (c *Config) mustExist(id ID, want Kind) *Component {
	comp, ok := c.components[id]
	if !ok {
		panic(fmt.Sprintf("topology: unknown component %q", id))
	}
	if comp.Kind != want {
		panic(fmt.Sprintf("topology: %q is a %s, want %s", id, comp.Kind, want))
	}
	return comp
}

// AddServer registers a server.
func (c *Config) AddServer(id ID, name string, attrs map[string]string) error {
	return c.add(&Component{ID: id, Kind: KindServer, Name: name, Attrs: attrs})
}

// AddHBA registers a host bus adapter on a server.
func (c *Config) AddHBA(id ID, server ID, name string) error {
	c.mustExist(server, KindServer)
	if err := c.add(&Component{ID: id, Kind: KindHBA, Name: name}); err != nil {
		return err
	}
	c.attach(server, id)
	return nil
}

// AddSwitch registers an FC switch. Role is recorded as an attribute
// ("edge" or "core").
func (c *Config) AddSwitch(id ID, name, role string) error {
	return c.add(&Component{ID: id, Kind: KindSwitch, Name: name,
		Attrs: map[string]string{"role": role}})
}

// AddSubsystem registers a storage subsystem (controller).
func (c *Config) AddSubsystem(id ID, name, model string) error {
	return c.add(&Component{ID: id, Kind: KindSubsystem, Name: name,
		Attrs: map[string]string{"model": model}})
}

// AddPort registers an FC port on an HBA, switch, or subsystem.
func (c *Config) AddPort(id ID, owner ID, name string) error {
	ownerComp, ok := c.components[owner]
	if !ok {
		return fmt.Errorf("topology: port %q: unknown owner %q", id, owner)
	}
	switch ownerComp.Kind {
	case KindHBA, KindSwitch, KindSubsystem:
	default:
		return fmt.Errorf("topology: port %q: owner %q is a %s", id, owner, ownerComp.Kind)
	}
	if err := c.add(&Component{ID: id, Kind: KindPort, Name: name}); err != nil {
		return err
	}
	c.attach(owner, id)
	return nil
}

// AddPool registers a storage pool inside a subsystem.
func (c *Config) AddPool(id ID, subsystem ID, name, raid string) error {
	c.mustExist(subsystem, KindSubsystem)
	if err := c.add(&Component{ID: id, Kind: KindPool, Name: name,
		Attrs: map[string]string{"raid": raid}}); err != nil {
		return err
	}
	c.attach(subsystem, id)
	return nil
}

// AddDisk registers a physical disk inside a pool.
func (c *Config) AddDisk(id ID, pool ID, name string) error {
	c.mustExist(pool, KindPool)
	if err := c.add(&Component{ID: id, Kind: KindDisk, Name: name}); err != nil {
		return err
	}
	c.attach(pool, id)
	return nil
}

// AddVolume carves a storage volume out of a pool. Its data stripes across
// every disk of the pool.
func (c *Config) AddVolume(id ID, pool ID, name string, sizeGB int) error {
	c.mustExist(pool, KindPool)
	if err := c.add(&Component{ID: id, Kind: KindVolume, Name: name,
		Attrs: map[string]string{"sizeGB": fmt.Sprint(sizeGB)}}); err != nil {
		return err
	}
	c.attach(pool, id)
	return nil
}

// Cable records an undirected fabric link between two ports.
func (c *Config) Cable(a, b ID) error {
	for _, p := range []ID{a, b} {
		comp, ok := c.components[p]
		if !ok || comp.Kind != KindPort {
			return fmt.Errorf("topology: cable endpoint %q is not a port", p)
		}
	}
	c.fabric[a] = append(c.fabric[a], b)
	c.fabric[b] = append(c.fabric[b], a)
	return nil
}

// AddZone installs a zone over the given port IDs.
func (c *Config) AddZone(name string, ports ...ID) error {
	for _, p := range ports {
		comp, ok := c.components[p]
		if !ok || comp.Kind != KindPort {
			return fmt.Errorf("topology: zone %q member %q is not a port", name, p)
		}
	}
	c.zones = append(c.zones, Zone{Name: name, Members: append([]ID(nil), ports...)})
	return nil
}

// RemoveZone deletes a zone by name; it reports whether one was removed.
func (c *Config) RemoveZone(name string) bool {
	for i, z := range c.zones {
		if z.Name == name {
			c.zones = append(c.zones[:i], c.zones[i+1:]...)
			return true
		}
	}
	return false
}

// MapLUN grants a server access to a volume (LUN mapping/masking).
func (c *Config) MapLUN(volume, server ID) error {
	c.mustExist(volume, KindVolume)
	c.mustExist(server, KindServer)
	c.lunMap[volume] = append(c.lunMap[volume], server)
	return nil
}

// Zoned reports whether two ports share at least one zone.
func (c *Config) Zoned(a, b ID) bool {
	for _, z := range c.zones {
		if z.contains(a) && z.contains(b) {
			return true
		}
	}
	return false
}

// LUNVisible reports whether the server may access the volume.
func (c *Config) LUNVisible(volume, server ID) bool {
	for _, s := range c.lunMap[volume] {
		if s == server {
			return true
		}
	}
	return false
}

// Get returns the component with the given ID, if present.
func (c *Config) Get(id ID) (*Component, bool) {
	comp, ok := c.components[id]
	return comp, ok
}

// MustGet returns the component or panics; for simulator-internal lookups.
func (c *Config) MustGet(id ID) *Component {
	comp, ok := c.components[id]
	if !ok {
		panic(fmt.Sprintf("topology: unknown component %q", id))
	}
	return comp
}

// Parent returns the container of id ("" if none).
func (c *Config) Parent(id ID) ID { return c.parent[id] }

// Children returns the components contained in id, sorted by ID.
func (c *Config) Children(id ID) []ID {
	out := make([]ID, len(c.children[id]))
	copy(out, c.children[id])
	return out
}

// ChildrenOfKind returns id's children of the given kind, sorted by ID.
func (c *Config) ChildrenOfKind(id ID, kind Kind) []ID {
	var out []ID
	for _, ch := range c.children[id] {
		if c.components[ch].Kind == kind {
			out = append(out, ch)
		}
	}
	return out
}

// All returns every component of the given kind, sorted by ID.
func (c *Config) All(kind Kind) []ID {
	var out []ID
	for id, comp := range c.components {
		if comp.Kind == kind {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PoolOf returns the pool containing a volume or disk.
func (c *Config) PoolOf(id ID) ID {
	p := c.parent[id]
	if p == "" {
		return ""
	}
	if comp, ok := c.components[p]; ok && comp.Kind == KindPool {
		return p
	}
	return ""
}

// DisksOf returns the disks a volume stripes across (all disks of its
// pool), sorted by ID.
func (c *Config) DisksOf(volume ID) []ID {
	pool := c.PoolOf(volume)
	if pool == "" {
		return nil
	}
	return c.ChildrenOfKind(pool, KindDisk)
}

// VolumesInPool returns the volumes carved from a pool, sorted by ID.
func (c *Config) VolumesInPool(pool ID) []ID {
	return c.ChildrenOfKind(pool, KindVolume)
}

// SharingVolumes returns the other volumes that share disks with volume
// (i.e. the rest of its pool), the core of the paper's outer dependency
// path example.
func (c *Config) SharingVolumes(volume ID) []ID {
	var out []ID
	for _, v := range c.VolumesInPool(c.PoolOf(volume)) {
		if v != volume {
			out = append(out, v)
		}
	}
	return out
}

// ServersMappedTo returns the servers with LUN access to the volume.
func (c *Config) ServersMappedTo(volume ID) []ID {
	out := make([]ID, len(c.lunMap[volume]))
	copy(out, c.lunMap[volume])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: every pool has at least one disk,
// every volume belongs to a pool, every cable endpoint exists, and every
// zone member exists. It returns the first violation found.
func (c *Config) Validate() error {
	for _, pool := range c.All(KindPool) {
		if len(c.ChildrenOfKind(pool, KindDisk)) == 0 {
			return fmt.Errorf("topology: pool %q has no disks", pool)
		}
	}
	for _, vol := range c.All(KindVolume) {
		if c.PoolOf(vol) == "" {
			return fmt.Errorf("topology: volume %q has no pool", vol)
		}
	}
	for _, z := range c.zones {
		for _, m := range z.Members {
			if _, ok := c.components[m]; !ok {
				return fmt.Errorf("topology: zone %q references unknown port %q", z.Name, m)
			}
		}
	}
	return nil
}

// Zones returns a copy of the zoning configuration.
func (c *Config) Zones() []Zone {
	out := make([]Zone, len(c.zones))
	copy(out, c.zones)
	return out
}

// Package topology models the configuration side of a Storage Area
// Network as the paper describes it (Section 3.1.1): servers with HBAs and
// FC ports, a fabric of edge and core switches, storage subsystems
// containing pools carved into volumes that stripe across disks, plus the
// two access-control mechanisms (zoning and LUN mapping/masking) and a
// timestamped configuration change log.
//
// It is the stand-in for the configuration database of a storage
// management tool such as IBM TotalStorage Productivity Center, which the
// original DIADS prototype queried to construct Annotated Plan Graphs.
package topology

import "fmt"

// ID uniquely identifies a component in the SAN configuration.
type ID string

// Kind classifies SAN components, covering both the physical and logical
// entities of the paper's integrated taxonomy.
type Kind int

// Component kinds.
const (
	KindServer Kind = iota
	KindHBA
	KindPort // an FC port on a server HBA, switch, or subsystem
	KindSwitch
	KindSubsystem
	KindPool
	KindVolume
	KindDisk
)

var kindNames = map[Kind]string{
	KindServer:    "Server",
	KindHBA:       "HBA",
	KindPort:      "Port",
	KindSwitch:    "FCSwitch",
	KindSubsystem: "StorageSubsystem",
	KindPool:      "Pool",
	KindVolume:    "Volume",
	KindDisk:      "Disk",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Component is one physical or logical SAN entity.
type Component struct {
	ID   ID
	Kind Kind
	Name string
	// Attrs carries free-form configuration attributes (RAID level,
	// capacity, model, role) used by screens and symptoms.
	Attrs map[string]string
}

// Attr returns the named attribute or "".
func (c *Component) Attr(key string) string {
	if c.Attrs == nil {
		return ""
	}
	return c.Attrs[key]
}

// String implements fmt.Stringer.
func (c *Component) String() string {
	return fmt.Sprintf("%s %s(%s)", c.Kind, c.Name, c.ID)
}

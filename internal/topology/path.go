package topology

import (
	"fmt"
	"sort"
)

// Route is the ordered list of components an I/O traverses from a server
// to the subsystem hosting a volume: server, HBA, ports, switches, and the
// subsystem itself.
type Route []ID

// FabricRoute computes the component path from server to the subsystem
// that hosts volume, honouring cabling and zoning. It returns an error if
// the server has no LUN visibility to the volume or no zoned path exists.
//
// The search runs breadth-first over ports: from each server HBA port,
// across cables, through switch ports (traffic crosses a switch between
// any two of its ports), to a subsystem port that shares a zone with the
// originating HBA port.
func (c *Config) FabricRoute(server, volume ID) (Route, error) {
	c.mustExist(server, KindServer)
	c.mustExist(volume, KindVolume)
	if !c.LUNVisible(volume, server) {
		return nil, fmt.Errorf("topology: volume %q not LUN-mapped to server %q", volume, server)
	}
	pool := c.PoolOf(volume)
	subsystem := c.parent[pool]
	if subsystem == "" {
		return nil, fmt.Errorf("topology: volume %q has no subsystem", volume)
	}

	for _, hba := range c.ChildrenOfKind(server, KindHBA) {
		for _, srcPort := range c.ChildrenOfKind(hba, KindPort) {
			if path := c.bfsPorts(srcPort, subsystem); path != nil {
				route := Route{server, hba}
				route = append(route, path...)
				route = append(route, subsystem)
				return route, nil
			}
		}
	}
	return nil, fmt.Errorf("topology: no zoned fabric path from %q to subsystem %q for volume %q",
		server, subsystem, volume)
}

// bfsPorts searches from srcPort to any port of the target subsystem that
// is zoned with srcPort. It returns the port/switch path including both
// endpoints, or nil.
func (c *Config) bfsPorts(srcPort ID, subsystem ID) []ID {
	type queued struct {
		port ID
		prev int // index into visitOrder, -1 for root
	}
	var order []queued
	seen := map[ID]bool{srcPort: true}
	order = append(order, queued{port: srcPort, prev: -1})

	reconstruct := func(i int) []ID {
		var rev []ID
		for ; i >= 0; i = order[i].prev {
			rev = append(rev, order[i].port)
		}
		ports := make([]ID, 0, len(rev))
		for j := len(rev) - 1; j >= 0; j-- {
			ports = append(ports, rev[j])
		}
		// Insert each switch once, between the entry and exit port that
		// belong to it, so routes read server, hba, port, switch, port,
		// ..., subsystemPort.
		var path []ID
		for j, p := range ports {
			path = append(path, p)
			owner := c.parent[p]
			if owner != "" && c.components[owner].Kind == KindSwitch &&
				j+1 < len(ports) && c.parent[ports[j+1]] == owner {
				path = append(path, owner)
			}
		}
		return path
	}

	for head := 0; head < len(order); head++ {
		cur := order[head].port
		owner := c.parent[cur]
		// Success: a subsystem port zoned with the source HBA port.
		if owner == subsystem && c.Zoned(srcPort, cur) {
			return reconstruct(head)
		}
		// Expand along cables.
		neighbors := append([]ID(nil), c.fabric[cur]...)
		// Expand across the owning switch to its sibling ports.
		if owner != "" && c.components[owner].Kind == KindSwitch {
			neighbors = append(neighbors, c.ChildrenOfKind(owner, KindPort)...)
		}
		sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
		for _, nb := range neighbors {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, queued{port: nb, prev: head})
			}
		}
	}
	return nil
}

// DependencyPath is the set of components whose performance can affect an
// I/O consumer, split as the paper does into the inner path (direct
// effect) and outer path (indirect, through shared components).
type DependencyPath struct {
	// Inner lists components on the direct I/O path: server, HBA, ports,
	// switches, subsystem, pool, volume, and the volume's disks.
	Inner []ID
	// Outer lists components that influence the inner path indirectly:
	// the other volumes sharing the pool's disks.
	Outer []ID
}

// Contains reports whether id is on either path.
func (d DependencyPath) Contains(id ID) bool {
	for _, x := range d.Inner {
		if x == id {
			return true
		}
	}
	for _, x := range d.Outer {
		if x == id {
			return true
		}
	}
	return false
}

// VolumeDependencyPath computes the inner and outer dependency paths for
// I/O issued by server against volume, per Section 3 of the paper: the
// inner path for the Index Scan O23 example is the server, HBA, FC
// switches, storage subsystem, pool P2, volume V2, and disks 5-10; the
// outer path is the volumes sharing those disks.
func (c *Config) VolumeDependencyPath(server, volume ID) (DependencyPath, error) {
	route, err := c.FabricRoute(server, volume)
	if err != nil {
		return DependencyPath{}, err
	}
	inner := append([]ID(nil), route...)
	pool := c.PoolOf(volume)
	inner = append(inner, pool, volume)
	inner = append(inner, c.DisksOf(volume)...)
	return DependencyPath{
		Inner: inner,
		Outer: c.SharingVolumes(volume),
	}, nil
}

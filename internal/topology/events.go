package topology

import (
	"fmt"
	"sort"
	"sync"

	"diads/internal/simtime"
)

// EventKind classifies entries in the configuration change log and the
// system event stream. Database-side configuration events (index drops,
// parameter changes) share the log because DIADS reasons about both layers
// together.
type EventKind string

// Configuration and system events.
const (
	EvVolumeCreated      EventKind = "VolumeCreated"
	EvVolumeDeleted      EventKind = "VolumeDeleted"
	EvZoneCreated        EventKind = "ZoneCreated"
	EvZoneDeleted        EventKind = "ZoneDeleted"
	EvLUNMapped          EventKind = "LUNMapped"
	EvLUNUnmapped        EventKind = "LUNUnmapped"
	EvDiskFailed         EventKind = "DiskFailed"
	EvRAIDRebuildStart   EventKind = "RAIDRebuildStarted"
	EvRAIDRebuildDone    EventKind = "RAIDRebuildCompleted"
	EvWorkloadStarted    EventKind = "WorkloadStarted"
	EvWorkloadStopped    EventKind = "WorkloadStopped"
	EvVolumePerfDegraded EventKind = "VolumePerfDegraded" // user-defined trigger
	EvHighSubsystemLoad  EventKind = "HighSubsystemLoad"  // user-defined trigger
	// Database-layer configuration events.
	EvIndexCreated EventKind = "IndexCreated"
	EvIndexDropped EventKind = "IndexDropped"
	EvParamChanged EventKind = "ParamChanged"
	EvStatsUpdated EventKind = "StatsUpdated"
	EvDMLBatch     EventKind = "DMLBatch"
)

// Event is one timestamped configuration change or system event.
type Event struct {
	T       simtime.Time
	Kind    EventKind
	Subject ID     // the component (or database object id) concerned
	Detail  string // human-readable specifics
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %-20s %-12s %s", e.T.Clock(), e.Kind, e.Subject, e.Detail)
}

// EventLog is an append-only, time-ordered record of events. It is safe
// for concurrent use.
type EventLog struct {
	mu     sync.RWMutex
	events []Event
}

// Record appends an event. Events may be recorded out of order; queries
// sort lazily.
func (l *EventLog) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// All returns every event in time order.
func (l *EventLog) All() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Window returns events with timestamps in iv, in time order.
func (l *EventLog) Window(iv simtime.Interval) []Event {
	var out []Event
	for _, e := range l.All() {
		if iv.Contains(e.T) {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns events of the given kind, in time order.
func (l *EventLog) OfKind(kind EventKind) []Event {
	var out []Event
	for _, e := range l.All() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Between returns events strictly after t0 and at or before t1, the
// candidate causes Module PD considers when a plan changes between two
// runs.
func (l *EventLog) Between(t0, t1 simtime.Time) []Event {
	var out []Event
	for _, e := range l.All() {
		if e.T > t0 && e.T <= t1 {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

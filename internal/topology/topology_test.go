package topology

import (
	"testing"

	"diads/internal/simtime"
)

// buildTestSAN constructs a miniature of the paper's Figure 1 environment:
// a DB server with one HBA and two ports, an edge and a core switch, one
// subsystem with pools P1 (disks 1-4) and P2 (disks 5-10), volumes V1, V2
// plus bystanders V3, V4.
func buildTestSAN(t *testing.T) *Config {
	t.Helper()
	c := New()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(c.AddServer("srv-db", "dbserver", map[string]string{"os": "RedHat Linux"}))
	check(c.AddHBA("hba-1", "srv-db", "qla2340"))
	check(c.AddPort("hba-1-p0", "hba-1", "hba port 0"))
	check(c.AddSwitch("sw-edge", "edge1", "edge"))
	check(c.AddPort("sw-edge-p0", "sw-edge", "edge p0"))
	check(c.AddPort("sw-edge-p1", "sw-edge", "edge p1"))
	check(c.AddSwitch("sw-core", "core1", "core"))
	check(c.AddPort("sw-core-p0", "sw-core", "core p0"))
	check(c.AddPort("sw-core-p1", "sw-core", "core p1"))
	check(c.AddSubsystem("ss-1", "DS6000", "IBM DS6000"))
	check(c.AddPort("ss-1-p0", "ss-1", "controller port 0"))
	check(c.AddPool("pool-P1", "ss-1", "P1", "RAID5"))
	check(c.AddPool("pool-P2", "ss-1", "P2", "RAID5"))
	for _, d := range []string{"disk-1", "disk-2", "disk-3", "disk-4"} {
		check(c.AddDisk(ID(d), "pool-P1", d))
	}
	for _, d := range []string{"disk-5", "disk-6", "disk-7", "disk-8", "disk-9", "disk-10"} {
		check(c.AddDisk(ID(d), "pool-P2", d))
	}
	check(c.AddVolume("vol-V1", "pool-P1", "V1", 100))
	check(c.AddVolume("vol-V3", "pool-P1", "V3", 50))
	check(c.AddVolume("vol-V2", "pool-P2", "V2", 200))
	check(c.AddVolume("vol-V4", "pool-P2", "V4", 50))
	check(c.Cable("hba-1-p0", "sw-edge-p0"))
	check(c.Cable("sw-edge-p1", "sw-core-p0"))
	check(c.Cable("sw-core-p1", "ss-1-p0"))
	check(c.AddZone("z-db", "hba-1-p0", "ss-1-p0"))
	check(c.MapLUN("vol-V1", "srv-db"))
	check(c.MapLUN("vol-V2", "srv-db"))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFabricRoute(t *testing.T) {
	c := buildTestSAN(t)
	route, err := c.FabricRoute("srv-db", "vol-V1")
	if err != nil {
		t.Fatal(err)
	}
	want := []ID{"srv-db", "hba-1", "hba-1-p0", "sw-edge-p0", "sw-edge",
		"sw-edge-p1", "sw-core-p0", "sw-core", "sw-core-p1", "ss-1-p0", "ss-1"}
	if len(route) != len(want) {
		t.Fatalf("route length: got %d (%v), want %d", len(route), route, len(want))
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route[%d]: got %q, want %q (full: %v)", i, route[i], want[i], route)
		}
	}
}

func TestFabricRouteRequiresLUNMapping(t *testing.T) {
	c := buildTestSAN(t)
	if _, err := c.FabricRoute("srv-db", "vol-V3"); err == nil {
		t.Fatalf("V3 is not mapped to srv-db; route should fail")
	}
}

func TestFabricRouteRequiresZoning(t *testing.T) {
	c := buildTestSAN(t)
	c.RemoveZone("z-db")
	if _, err := c.FabricRoute("srv-db", "vol-V1"); err == nil {
		t.Fatalf("without zoning the route should fail")
	}
}

func TestVolumeDependencyPath(t *testing.T) {
	c := buildTestSAN(t)
	dp, err := c.VolumeDependencyPath("srv-db", "vol-V2")
	if err != nil {
		t.Fatal(err)
	}
	// Inner path must include the pool, the volume, and disks 5-10 —
	// the paper's O23 example.
	for _, id := range []ID{"pool-P2", "vol-V2", "disk-5", "disk-10", "srv-db", "ss-1"} {
		if !dp.Contains(id) {
			t.Errorf("inner path missing %q: %v", id, dp.Inner)
		}
	}
	// Outer path: V4 shares P2's disks.
	if len(dp.Outer) != 1 || dp.Outer[0] != "vol-V4" {
		t.Errorf("outer path: got %v, want [vol-V4]", dp.Outer)
	}
	// Disks of the other pool must not appear.
	if dp.Contains("disk-1") {
		t.Errorf("P1 disk leaked into V2's dependency path")
	}
}

func TestSharingVolumes(t *testing.T) {
	c := buildTestSAN(t)
	sh := c.SharingVolumes("vol-V1")
	if len(sh) != 1 || sh[0] != "vol-V3" {
		t.Fatalf("SharingVolumes(V1): got %v", sh)
	}
}

func TestDisksOf(t *testing.T) {
	c := buildTestSAN(t)
	d1 := c.DisksOf("vol-V1")
	if len(d1) != 4 {
		t.Fatalf("V1 disks: got %v", d1)
	}
	d2 := c.DisksOf("vol-V2")
	if len(d2) != 6 {
		t.Fatalf("V2 disks: got %v", d2)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	c := New()
	if err := c.AddServer("x", "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddServer("x", "b", nil); err == nil {
		t.Fatalf("duplicate ID should be rejected")
	}
}

func TestValidateCatchesEmptyPool(t *testing.T) {
	c := New()
	if err := c.AddSubsystem("ss", "s", "m"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPool("p", "ss", "P", "RAID5"); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatalf("pool without disks should fail validation")
	}
}

func TestEventLogOrderingAndQueries(t *testing.T) {
	var l EventLog
	l.Record(Event{T: 300, Kind: EvZoneCreated, Subject: "z2"})
	l.Record(Event{T: 100, Kind: EvVolumeCreated, Subject: "vol-Vp"})
	l.Record(Event{T: 200, Kind: EvLUNMapped, Subject: "vol-Vp"})
	all := l.All()
	if len(all) != 3 || all[0].Kind != EvVolumeCreated || all[2].Kind != EvZoneCreated {
		t.Fatalf("events not time-ordered: %v", all)
	}
	if got := l.Window(simtime.NewInterval(150, 301)); len(got) != 2 {
		t.Fatalf("window query: got %d events", len(got))
	}
	if got := l.OfKind(EvLUNMapped); len(got) != 1 || got[0].Subject != "vol-Vp" {
		t.Fatalf("OfKind: %v", got)
	}
	if got := l.Between(100, 300); len(got) != 2 {
		t.Fatalf("Between(100,300] should exclude t=100: %v", got)
	}
}

func TestZonedAndLUNVisible(t *testing.T) {
	c := buildTestSAN(t)
	if !c.Zoned("hba-1-p0", "ss-1-p0") {
		t.Fatalf("ports in same zone should be Zoned")
	}
	if c.Zoned("hba-1-p0", "sw-edge-p0") {
		t.Fatalf("unzoned ports reported as zoned")
	}
	if !c.LUNVisible("vol-V1", "srv-db") || c.LUNVisible("vol-V3", "srv-db") {
		t.Fatalf("LUN visibility wrong")
	}
}

func TestRouteSurvivesNewVolumeOnSharedPool(t *testing.T) {
	// The scenario-1 misconfiguration: a new volume V' carved from P1 and
	// mapped to another host must not disturb the DB server's route, but
	// must appear in V1's outer dependency path.
	c := buildTestSAN(t)
	if err := c.AddServer("srv-other", "other", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVolume("vol-Vp", "pool-P1", "V'", 80); err != nil {
		t.Fatal(err)
	}
	if err := c.MapLUN("vol-Vp", "srv-other"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FabricRoute("srv-db", "vol-V1"); err != nil {
		t.Fatal(err)
	}
	dp, err := c.VolumeDependencyPath("srv-db", "vol-V1")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range dp.Outer {
		if v == "vol-Vp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("V' should be on V1's outer dependency path: %v", dp.Outer)
	}
}

package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds, in seconds: they span the
// sub-millisecond module walls of a cached diagnosis up to multi-second
// fleet waves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Writes are lock-free atomics; Snapshot assembles
// a consistent-enough view for scraping (bucket counts and the total may
// momentarily disagree by in-flight observations, which the exposition
// tolerates by rendering the +Inf bucket as the total).
type Histogram struct {
	enabled *atomic.Bool
	bounds  []float64      // sorted upper bounds, +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(enabled *atomic.Bool, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		enabled: enabled,
		bounds:  bounds,
		counts:  make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.enabled.Load() {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sumBits.Load())
}

// Snapshot captures the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    bitsFloat(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts, with the final entry counting observations
// above the last bound.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank. Values in the overflow
// bucket are attributed to the last finite bound — the estimate is a
// floor there, which is the standard fixed-bucket trade-off. Returns 0
// with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		frac := (target - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

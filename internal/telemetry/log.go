package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger builds the daemon's structured event logger: JSON for
// machine consumption (one event per line, ready for a log pipeline) or
// a compact text form for a human console. The text form drops the
// timestamp attribute — the simulation carries its own clock and the
// console reads better without a wall-clock prefix; JSON keeps it.
func NewLogger(w io.Writer, jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(_ []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	})
	return slog.New(h)
}

package telemetry

import (
	"fmt"
	"strings"
)

// RenderSnapshot formats a registry snapshot for the console — the same
// data /metrics serves, rendered for a human. cmd/diadsd prints it at
// the end of a run instead of hand-assembled printf blocks, so the
// console summary and the scrape surface can never drift: both are pure
// functions of one Snapshot.
func RenderSnapshot(snaps []MetricSnapshot) string {
	var b strings.Builder
	b.WriteString("telemetry snapshot\n")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	if len(snaps) == 0 {
		b.WriteString("  no metrics registered\n")
		return b.String()
	}
	for _, ms := range snaps {
		for _, ss := range ms.Series {
			name := ms.Name
			if block := labelBlock(ss.Labels, "", ""); block != "" {
				name += block
			}
			if ss.Hist != nil {
				h := ss.Hist
				fmt.Fprintf(&b, "  %-9s %-58s count=%d sum=%.4gs p50=%.4gs p95=%.4gs p99=%.4gs\n",
					ms.Kind, name, h.Count, h.Sum,
					h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
				continue
			}
			fmt.Fprintf(&b, "  %-9s %-58s %s\n", ms.Kind, name, formatValue(ss.Value))
		}
	}
	return b.String()
}

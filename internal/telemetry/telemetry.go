// Package telemetry is the self-observation layer of the reproduction:
// a dependency-free metrics registry (atomic counters, gauges,
// fixed-bucket histograms with quantile snapshots), a bounded span
// tracer that follows one trace ID from detection through diagnosis,
// a hand-rolled Prometheus text exposition (plus a validator for it),
// and a small HTTP server exposing /metrics, /healthz, /traces, and
// /debug/pprof while the daemon runs.
//
// Telemetry is a pure side channel: instruments are written from the
// hot paths with atomics only, nothing in the package is ever read back
// into a diagnosis or a rendered report, and the whole layer can be
// switched off (SetEnabled) without changing a single output byte —
// which is what the telemetry on/off parity regression pins.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for the exposition.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Labels attaches dimensions to one series of a family (e.g. the module
// name on a wall-time histogram). Every distinct label set is its own
// series.
type Labels map[string]string

// canonical renders labels as a stable identity string: keys sorted,
// k="v" pairs joined by commas. The empty label set canonicalizes to "".
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// clone copies the label set so callers cannot mutate registered series.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically-increasing atomic counter.
type Counter struct {
	enabled *atomic.Bool
	v       atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || !c.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	enabled *atomic.Bool
	bits    atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// seriesEntry is one (family, label set) series.
type seriesEntry struct {
	labels Labels
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // CounterFunc / GaugeFunc callback
}

// family groups every series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*seriesEntry // by canonical labels
	order  []string                // canonical labels in registration order
}

// Registry holds metric families and hands out instruments. All methods
// are safe for concurrent use; instrument writes are lock-free.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	fams    map[string]*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{fams: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every layer instruments
// against. cmd/diadsd serves it on /metrics.
func Default() *Registry { return defaultRegistry }

// SetEnabled switches instrument writes on or off. Disabled instruments
// are no-ops, which is how the telemetry on/off parity regression proves
// the layer is a pure side channel.
func (r *Registry) SetEnabled(v bool) { r.enabled.Store(v) }

// Enabled reports whether instrument writes are recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset drops every registered family. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fams = make(map[string]*family)
}

// lookup returns (creating if needed) the series entry for
// (name, labels), enforcing one kind per family.
func (r *Registry) lookup(name, help string, kind Kind, labels Labels) *seriesEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*seriesEntry)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := labels.canonical()
	se := f.series[key]
	if se == nil {
		se = &seriesEntry{labels: labels.clone()}
		f.series[key] = se
		f.order = append(f.order, key)
	}
	return se
}

// Counter returns the counter for (name, labels), creating it on first
// use. Repeated calls with the same identity return the same instrument.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	se := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if se.ctr == nil {
		se.ctr = &Counter{enabled: &r.enabled}
	}
	return se.ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	se := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if se.gauge == nil {
		se.gauge = &Gauge{enabled: &r.enabled}
	}
	return se.gauge
}

// CounterFunc registers a callback-backed counter series (e.g. a cache's
// lifetime hit total read at scrape time). Re-registering the same
// identity replaces the callback — the latest live object wins, which is
// what a daemon restarting its service expects.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	se := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	se.fn = fn
}

// GaugeFunc registers a callback-backed gauge series (e.g. current queue
// depth). Re-registering the same identity replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	se := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	se.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (nil bounds = DefBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	se := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if se.hist == nil {
		se.hist = newHistogram(&r.enabled, bounds)
	}
	return se.hist
}

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	Labels Labels
	// Value holds counter and gauge readings.
	Value float64
	// Hist holds the histogram state (nil for counters and gauges).
	Hist *HistogramSnapshot
}

// MetricSnapshot is one family's state at snapshot time.
type MetricSnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot captures every family in deterministic order (families sorted
// by name, series by canonical labels). Callback-backed series are read
// outside the registry lock, so scrape-time callbacks may take their own
// locks without ordering against the registry's.
func (r *Registry) Snapshot() []MetricSnapshot {
	type pendingFn struct {
		fam, ser int
		fn       func() float64
	}
	var pend []pendingFn

	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			se := f.series[key]
			ss := SeriesSnapshot{Labels: se.labels.clone()}
			switch {
			case se.fn != nil:
				pend = append(pend, pendingFn{fam: len(out), ser: len(ms.Series), fn: se.fn})
			case se.ctr != nil:
				ss.Value = float64(se.ctr.Value())
			case se.gauge != nil:
				ss.Value = se.gauge.Value()
			case se.hist != nil:
				snap := se.hist.Snapshot()
				ss.Hist = &snap
			}
			ms.Series = append(ms.Series, ss)
		}
		out = append(out, ms)
	}
	r.mu.Unlock()

	for _, p := range pend {
		out[p.fam].Series[p.ser].Value = p.fn()
	}
	return out
}

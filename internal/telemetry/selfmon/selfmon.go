// Package selfmon closes the dogfood loop: the diagnoser's own
// per-diagnosis wall times become a monitored workload. Every completed
// diagnosis the service reports (through service.SelfObserver) is turned
// into a synthetic run record on a logical clock, written into a
// metrics.Store time series, and fed to a dedicated monitor.Monitor —
// the same Page-Hinkley/threshold detector that watches simulated
// queries. When diadsd's diagnosis latency degrades (a cold cache, a
// saturated worker pool, an overgrown symptoms database), the monitor
// raises an ordinary SlowdownEvent about diadsd itself, surfaced through
// Drain for the daemon to log and count.
//
// The loop is strictly observational: it reads wall-clock durations and
// writes only into its own store and monitor. Nothing here touches
// simulation time, diagnosis inputs, or report rendering, so enabling
// self-monitoring cannot move a single output byte.
package selfmon

import (
	"fmt"
	"sync"
	"time"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/monitor"
	"diads/internal/simtime"
	"diads/internal/telemetry"
)

// SelfMetric is the store series every observation appends to, one
// series per observed query on the SelfComponent.
const SelfMetric = metrics.Metric("Diagnosis Wall Time")

// SelfComponent is the store component the series hang off — the
// diagnoser itself, as if it were one more monitored deployment.
const SelfComponent = "diadsd"

// Config tunes the self-monitor.
type Config struct {
	// Step is the logical-clock spacing between observed diagnoses
	// (default 1 minute). The dogfood timeline is synthetic: observation
	// order provides the axis, Step the spacing.
	Step simtime.Duration
	// Monitor tunes the detector watching the latency stream. The zero
	// value uses monitor defaults (6-run arming, 3-sigma + 1.4x
	// threshold, Page-Hinkley drift detection).
	Monitor monitor.Config
}

// SelfMonitor implements service.SelfObserver. Safe for concurrent use —
// service workers call ObserveDiagnosis from many goroutines.
type SelfMonitor struct {
	cfg   Config
	store *metrics.Store
	mon   *monitor.Monitor

	mu    sync.Mutex
	clock simtime.Time
	seq   int

	observed *telemetry.Counter
	detected *telemetry.Counter
}

// New returns a self-monitor with its own store and monitor.
func New(cfg Config) *SelfMonitor {
	if cfg.Step <= 0 {
		cfg.Step = simtime.Minute
	}
	reg := telemetry.Default()
	return &SelfMonitor{
		cfg:   cfg,
		store: metrics.NewStore(),
		mon:   monitor.New(cfg.Monitor),
		observed: reg.Counter("diads_self_diagnoses_observed_total",
			"Completed diagnoses observed by the dogfood self-monitor.", nil),
		detected: reg.Counter("diads_self_slowdown_events_total",
			"Slowdown events the self-monitor raised about diadsd's own diagnosis latency.", nil),
	}
}

// ObserveDiagnosis ingests one completed diagnosis's wall time: it
// appends a sample to the self store and feeds a synthetic run record to
// the self monitor. The record's timeline is the logical clock — starts
// and stops are strictly monotonic regardless of how wall times
// fluctuate, so the store's in-order append invariant always holds.
func (s *SelfMonitor) ObserveDiagnosis(query string, wall time.Duration) {
	if s == nil {
		return
	}
	s.observed.Inc()
	d := simtime.Duration(wall.Seconds())
	if d <= 0 {
		d = simtime.Duration(1e-9)
	}

	s.mu.Lock()
	s.seq++
	start := s.clock
	stop := start.Add(d)
	s.clock = stop.Add(s.cfg.Step)
	runID := fmt.Sprintf("self-%06d", s.seq)
	s.mu.Unlock()

	s.store.MustAppend(SelfComponent, SelfMetric, metrics.Sample{T: stop, V: wall.Seconds()})
	s.mon.Observe(&exec.RunRecord{
		Query: "self:" + query,
		RunID: runID,
		Start: start,
		Stop:  stop,
	})
}

// Drain returns (and consumes) the self-monitor's pending slowdown
// events — diadsd's diagnoses of itself — bumping the detected counter.
func (s *SelfMonitor) Drain() []monitor.SlowdownEvent {
	var out []monitor.SlowdownEvent
	for {
		select {
		case ev := <-s.mon.Events():
			s.detected.Inc()
			out = append(out, ev)
		default:
			return out
		}
	}
}

// Store exposes the self store (the diagnosis wall-time series).
func (s *SelfMonitor) Store() *metrics.Store { return s.store }

// Monitor exposes the underlying detector.
func (s *SelfMonitor) Monitor() *monitor.Monitor { return s.mon }

// Stats returns the detector's lifetime counters.
func (s *SelfMonitor) Stats() monitor.Stats { return s.mon.Stats() }

package selfmon

import (
	"testing"
	"time"

	"diads/internal/monitor"
)

// TestDogfoodRaisesSlowdownEvent pins the loop the package exists for:
// steady diagnosis latency establishes a baseline, one inflated
// diagnosis raises an ordinary SlowdownEvent about diadsd itself.
func TestDogfoodRaisesSlowdownEvent(t *testing.T) {
	sm := New(Config{})
	for i := 0; i < 10; i++ {
		sm.ObserveDiagnosis("Q2", 10*time.Millisecond)
	}
	if evs := sm.Drain(); len(evs) != 0 {
		t.Fatalf("steady latency raised %d events, want 0: %v", len(evs), evs)
	}

	sm.ObserveDiagnosis("Q2", 200*time.Millisecond)
	evs := sm.Drain()
	if len(evs) != 1 {
		t.Fatalf("inflated latency raised %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Query != "self:Q2" {
		t.Errorf("event query = %q, want self:Q2", ev.Query)
	}
	if ev.Kind != monitor.KindThreshold {
		t.Errorf("event kind = %q, want %q", ev.Kind, monitor.KindThreshold)
	}
	if ev.Factor < 2 {
		t.Errorf("event factor = %.2f, want a clear inflation (>= 2)", ev.Factor)
	}
	if ev.TraceID == "" {
		t.Error("event has no trace ID")
	}

	if st := sm.Stats(); st.Observed != 11 || st.Events != 1 {
		t.Errorf("self-monitor stats = %+v, want 11 observed / 1 event", st)
	}
}

// TestSelfStoreSeries pins the metrics side of the loop: every
// observation lands in the self store's wall-time series in time order.
func TestSelfStoreSeries(t *testing.T) {
	sm := New(Config{})
	walls := []time.Duration{
		5 * time.Millisecond, 7 * time.Millisecond, 300 * time.Millisecond,
	}
	for _, w := range walls {
		sm.ObserveDiagnosis("Q7", w)
	}
	samples := sm.Store().Series(SelfComponent, SelfMetric)
	if len(samples) != len(walls) {
		t.Fatalf("store has %d samples, want %d", len(samples), len(walls))
	}
	for i, s := range samples {
		if want := walls[i].Seconds(); s.V != want {
			t.Errorf("sample %d = %v, want %v", i, s.V, want)
		}
		if i > 0 && s.T <= samples[i-1].T {
			t.Errorf("sample %d out of time order: %v after %v", i, s.T, samples[i-1].T)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerEndpoints drives the scrape surface through httptest:
// /metrics must serve valid exposition with the right content type,
// /healthz must answer ok, /traces must serve the span ring with its
// filters, and the pprof index must exist.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("diads_up_total", "h", nil).Inc()
	tr := NewTracer(8)
	tr.Record(Span{TraceID: "q/r/threshold", Name: "service.submit"})
	tr.Record(Span{TraceID: "other", Name: "module.pd"})

	ts := httptest.NewServer(NewServer("unused", reg, tr).Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, b.String()
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Errorf("/metrics serves invalid exposition: %v", err)
	}
	if !strings.Contains(body, "diads_up_total 1") {
		t.Errorf("/metrics missing the registered counter:\n%s", body)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Errorf("/healthz body = %q (err %v)", body, err)
	}

	_, body = get("/traces")
	var traces struct {
		Total int64  `json:"total_recorded"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces body not JSON: %v\n%s", err, body)
	}
	if traces.Total != 2 || len(traces.Spans) != 2 {
		t.Errorf("/traces = %d total / %d spans, want 2/2", traces.Total, len(traces.Spans))
	}

	_, body = get("/traces?trace=other")
	if err := json.Unmarshal([]byte(body), &traces); err != nil || len(traces.Spans) != 1 {
		t.Errorf("/traces?trace=other returned %d spans, want 1 (err %v)", len(traces.Spans), err)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the daemon's scrape surface: /metrics in Prometheus text
// format, /healthz, /traces (recent spans as JSON), and the standard
// /debug/pprof profiles — all on one small listener that lives beside
// the simulation without touching it.
type Server struct {
	reg    *Registry
	tracer *Tracer
	srv    *http.Server
	ln     net.Listener
	start  time.Time
}

// NewServer assembles a server over the registry and tracer (nil means
// the package defaults).
func NewServer(addr string, reg *Registry, tracer *Tracer) *Server {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	s := &Server{reg: reg, tracer: tracer, start: time.Now()}
	s.srv = &http.Server{
		Addr:         addr,
		Handler:      s.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 70 * time.Second, // pprof profiles block up to their ?seconds
	}
	return s
}

// Handler returns the route mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds the listener and serves in the background, returning the
// bound address (useful with a ":0" port).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.srv.Addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", s.srv.Addr, err)
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.reg.Exposition())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	var spans []Span
	if id := r.URL.Query().Get("trace"); id != "" {
		spans = s.tracer.Trace(id)
	} else {
		spans = s.tracer.Recent(n)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"total_recorded": s.tracer.Total(),
		"spans":          spans,
	})
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server is the daemon's scrape surface: /metrics in Prometheus text
// format, /healthz (liveness), /readyz (readiness), /traces (recent
// spans as JSON), and the standard /debug/pprof profiles — all on one
// small listener that lives beside the simulation without touching it.
// Other subsystems share the listener by mounting their own route
// trees with Mount (the HTTP API mounts /v1/ here), so the daemon has
// exactly one serving mux.
//
// Liveness and readiness are split so load balancers can rotate
// instances safely: /healthz answers "the process is up" and never
// goes false while the listener is alive, while /readyz answers "send
// traffic here" — false until the serving surface has seen its first
// ingest watermark advance, and false again while the daemon drains
// for shutdown (see SetReady).
type Server struct {
	reg    *Registry
	tracer *Tracer
	srv    *http.Server
	ln     net.Listener
	start  time.Time

	mu     sync.Mutex
	mounts map[string]http.Handler
	ready  func() (bool, string)
}

// NewServer assembles a server over the registry and tracer (nil means
// the package defaults).
func NewServer(addr string, reg *Registry, tracer *Tracer) *Server {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	s := &Server{reg: reg, tracer: tracer, start: time.Now(),
		mounts: make(map[string]http.Handler)}
	s.srv = &http.Server{
		Addr:         addr,
		Handler:      s.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 70 * time.Second, // pprof profiles block up to their ?seconds
	}
	return s
}

// Mount attaches a handler under the given mux pattern (e.g. "/v1/"),
// sharing the telemetry listener. Call before Start; patterns must not
// collide with the built-in telemetry routes.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mounts[pattern] = h
	s.srv.Handler = s.Handler()
}

// SetReady installs the readiness probe behind /readyz. The callback
// reports whether the instance should receive traffic and, when not,
// why (rendered in the JSON body). Without a callback /readyz mirrors
// /healthz — a process with no gated serving surface is ready the
// moment it is alive.
func (s *Server) SetReady(fn func() (ok bool, reason string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready = fn
}

// Handler returns the route mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range s.mounts {
		mux.Handle(pattern, h)
	}
	return mux
}

// Start binds the listener and serves in the background, returning the
// bound address (useful with a ":0" port).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.srv.Addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", s.srv.Addr, err)
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.reg.Exposition())
}

// handleHealthz is the liveness probe: alive as long as the listener
// answers. Rotation decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the readiness probe: 200 only while the instance
// should receive traffic (503 otherwise, with the reason in the body).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.ready
	s.mu.Unlock()
	ok, reason := true, ""
	if fn != nil {
		ok, reason = fn()
	}
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ready":  ok,
		"reason": reason,
	})
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	var spans []Span
	if id := r.URL.Query().Get("trace"); id != "" {
		spans = s.tracer.Trace(id)
	} else {
		spans = s.tracer.Recent(n)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"total_recorded": s.tracer.Total(),
		"spans":          spans,
	})
}

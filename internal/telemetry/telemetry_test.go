package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// instrument creation races lookup, writes race Snapshot — and checks
// the totals. Run under -race, this is the lock-discipline regression.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("c_total", "h", Labels{"g": "shared"}).Inc()
				reg.Gauge("g_now", "h", nil).Set(float64(i))
				reg.Histogram("h_seconds", "h", nil, nil).Observe(0.01)
				if i%50 == 0 {
					reg.Snapshot() // scrapes race writes
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("c_total", "h", Labels{"g": "shared"}).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := reg.Histogram("h_seconds", "h", nil, nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if want := float64(goroutines*perG) * 0.01; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestRegistryKindMismatchPanics pins the one-kind-per-family contract.
func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "h", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "h", nil)
}

// TestRegistryDisabled proves disabled instruments are no-ops — the
// mechanism behind the telemetry on/off byte-parity regression.
func TestRegistryDisabled(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "h", nil)
	g := reg.Gauge("g_now", "h", nil)
	h := reg.Histogram("h_seconds", "h", nil, nil)
	reg.SetEnabled(false)
	c.Inc()
	g.Set(42)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled instruments recorded: counter=%d gauge=%v hist=%d",
			c.Value(), g.Value(), h.Count())
	}
	reg.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

// TestHistogramQuantiles pins quantile estimation: exact values for a
// known distribution, interpolation inside buckets, overflow flooring.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "h", nil, []float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 of uniform(0,1] = %v, want 0.5 (linear interpolation)", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p100 = %v, want 1.0", got)
	}

	// Spread across buckets: 50 in (0,1], 30 in (1,2], 20 in (2,4].
	h2 := reg.Histogram("h2", "h", nil, []float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h2.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h2.Observe(3)
	}
	s2 := h2.Snapshot()
	// rank 80 closes the (1,2] bucket exactly.
	if got := s2.Quantile(0.8); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p80 = %v, want 2.0", got)
	}
	// rank 90 is halfway through the (2,4] bucket.
	if got := s2.Quantile(0.9); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("p90 = %v, want 3.0", got)
	}

	// Overflow: values beyond the last bound floor to it.
	h3 := reg.Histogram("h3", "h", nil, []float64{1})
	h3.Observe(100)
	if got := h3.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want last finite bound 1", got)
	}

	// Empty histogram.
	h4 := reg.Histogram("h4", "h", nil, nil)
	if got := h4.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty-histogram quantile = %v, want 0", got)
	}
}

// TestExpositionValid renders a populated registry and validates it with
// the package's own checker, then pins key lines.
func TestExpositionValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("diads_test_total", "Things counted.", Labels{"kind": "a"}).Add(3)
	reg.Gauge("diads_depth", "Depth.", nil).Set(2.5)
	reg.Histogram("diads_wall_seconds", "Walls.", Labels{"m": "pd"}, []float64{0.1, 1}).Observe(0.05)
	reg.GaugeFunc("diads_fn", "Callback.", nil, func() float64 { return 7 })

	data := reg.Exposition()
	if err := ValidateExposition(data); err != nil {
		t.Fatalf("own exposition failed validation: %v\n%s", err, data)
	}
	for _, want := range []string{
		"# TYPE diads_test_total counter",
		`diads_test_total{kind="a"} 3`,
		"diads_depth 2.5",
		`diads_wall_seconds_bucket{m="pd",le="0.1"} 1`,
		`diads_wall_seconds_bucket{m="pd",le="+Inf"} 1`,
		`diads_wall_seconds_sum{m="pd"} 0.05`,
		`diads_wall_seconds_count{m="pd"} 1`,
		"diads_fn 7",
	} {
		if !bytes.Contains(data, []byte(want+"\n")) {
			t.Errorf("exposition missing %q:\n%s", want, data)
		}
	}
}

// TestValidateExpositionRejects pins the validator's failure modes.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty", ""},
		{"no trailing newline", "# TYPE a counter\na 1"},
		{"no samples", "# TYPE a counter\n"},
		{"sample without TYPE", "a 1\n"},
		{"bad type", "# TYPE a widget\na 1\n"},
		{"duplicate TYPE", "# TYPE a counter\na 1\n# TYPE a counter\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"bare histogram sample", "# TYPE a histogram\na 1\n"},
		{"bucket missing le", "# TYPE a histogram\na_bucket{x=\"1\"} 1\n"},
		{"bad label name", "# TYPE a counter\na{0x=\"1\"} 1\n"},
		{"bad timestamp", "# TYPE a counter\na 1 nope\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.body)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.body)
		}
	}

	good := "# HELP a Help text.\n# TYPE a counter\na{x=\"y\"} 1 1712000000\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v", err)
	}
}

// TestTracerRing pins the bounded ring: capacity eviction, oldest-first
// order, per-trace filtering, and the disabled no-op.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{TraceID: "t", Name: string(rune('a' + i))})
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	if got[0].Name != "c" || got[3].Name != "f" {
		t.Errorf("ring order = %v..%v, want c..f", got[0].Name, got[3].Name)
	}
	if n := len(tr.Recent(2)); n != 2 {
		t.Errorf("Recent(2) returned %d", n)
	}

	tr.Record(Span{TraceID: "other", Name: "x"})
	if n := len(tr.Trace("other")); n != 1 {
		t.Errorf("Trace(other) returned %d spans, want 1", n)
	}

	tr.SetEnabled(false)
	tr.Record(Span{TraceID: "t", Name: "dropped"})
	if tr.Total() != 7 {
		t.Errorf("disabled tracer recorded; total = %d, want 7", tr.Total())
	}
}

// TestRenderSnapshotSharesExpositionData pins the no-drift property: the
// console render and the exposition are both pure functions of one
// snapshot, so every series name in one appears in the other.
func TestRenderSnapshotSharesExpositionData(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("diads_a_total", "h", Labels{"k": "v"}).Inc()
	reg.Histogram("diads_b_seconds", "h", nil, nil).Observe(0.2)
	out := RenderSnapshot(reg.Snapshot())
	for _, want := range []string{`diads_a_total{k="v"}`, "diads_b_seconds", "p95="} {
		if !strings.Contains(out, want) {
			t.Errorf("console render missing %q:\n%s", want, out)
		}
	}
}

package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exposition renders the registry in the Prometheus text format
// (version 0.0.4), hand-rolled so the daemon stays dependency-free.
func (r *Registry) Exposition() []byte {
	var buf bytes.Buffer
	WriteExposition(&buf, r.Snapshot())
	return buf.Bytes()
}

// WriteExposition renders a snapshot as Prometheus text exposition.
// Families come out sorted by name (the order Snapshot produces), each
// with one # HELP and # TYPE line; histogram series expand into
// cumulative _bucket{le=...} lines plus _sum and _count.
func WriteExposition(w io.Writer, snaps []MetricSnapshot) {
	for _, ms := range snaps {
		if ms.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", ms.Name, escapeHelp(ms.Help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", ms.Name, ms.Kind)
		for _, ss := range ms.Series {
			if ss.Hist != nil {
				writeHistSeries(w, ms.Name, ss)
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", ms.Name, labelBlock(ss.Labels, "", ""), formatValue(ss.Value))
		}
	}
}

// writeHistSeries renders one histogram series.
func writeHistSeries(w io.Writer, name string, ss SeriesSnapshot) {
	h := ss.Hist
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelBlock(ss.Labels, "le", formatValue(bound)), cum)
	}
	// The +Inf bucket equals the total count by definition; using Count
	// keeps the exposition self-consistent even if an observation landed
	// between the bucket reads and the count read.
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelBlock(ss.Labels, "le", "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelBlock(ss.Labels, "", ""), formatValue(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelBlock(ss.Labels, "", ""), h.Count)
}

// labelBlock renders {k="v",...} with keys sorted, optionally appending
// one extra pair (the histogram's le). Empty label sets render as "".
func labelBlock(labels Labels, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus text format expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition: HELP/TYPE comments name valid metrics with known types,
// sample lines parse (name, optional label block, float value, optional
// timestamp), every sample belongs to a family whose # TYPE was declared
// first, and histogram families only emit _bucket/_sum/_count suffixes
// with _bucket carrying an le label. The CI smoke job runs it against a
// live daemon's /metrics.
func ValidateExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("exposition: empty body")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("exposition: missing trailing newline")
	}
	types := make(map[string]string)
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("exposition line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types); err != nil {
			return fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("exposition: no sample lines")
	}
	return nil
}

func validateComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

func validateSample(line string, types map[string]string) error {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("sample does not start with a metric name: %q", line)
	}
	name := rest[:i]
	rest = rest[i:]

	family, suffix := name, ""
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && types[base] == "histogram" {
			family, suffix = base, s
			break
		}
	}
	typ, declared := types[family]
	if !declared {
		return fmt.Errorf("sample %s has no preceding # TYPE", name)
	}
	if typ == "histogram" && suffix == "" {
		return fmt.Errorf("histogram %s sample must use _bucket/_sum/_count", family)
	}

	var labels map[string]string
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label block: %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return err
		}
		rest = rest[end+1:]
	}
	if suffix == "_bucket" {
		if _, ok := labels["le"]; !ok {
			return fmt.Errorf("histogram bucket sample %s missing le label", name)
		}
	}

	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	if !validFloat(fields[0]) {
		return fmt.Errorf("malformed sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("malformed sample timestamp %q", fields[1])
		}
	}
	return nil
}

// parseLabels parses the inside of a {..} block.
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for s != "" {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label value for %s not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				val.WriteByte(s[i+1])
				i++
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validFloat(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN", "Nan":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed step of a trace. A trace follows one slowdown event
// end to end: the monitor mints the trace ID when it builds the event,
// the service records submit-outcome, queue-wait, and diagnosis spans
// under it, each pipeline module's wall time becomes a span, and the
// fleet coordinator spans its evidence-time waves.
type Span struct {
	TraceID  string        `json:"trace_id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer is a bounded ring of finished spans: recording never blocks and
// never grows without bound; old spans fall off. It is a diagnostic
// window (served on /traces), not a durable log.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	buf     []Span
	next    int
	filled  bool
	total   int64
}

// NewTracer returns a tracer retaining up to capacity spans
// (default 512).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 512
	}
	t := &Tracer{buf: make([]Span, capacity)}
	t.enabled.Store(true)
	return t
}

var defaultTracer = NewTracer(0)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// SetEnabled switches span recording on or off.
func (t *Tracer) SetEnabled(v bool) { t.enabled.Store(v) }

// Record stores one finished span.
func (t *Tracer) Record(s Span) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.filled = true
	}
	t.total++
	t.mu.Unlock()
}

// Start begins a span; call End on the result to record it.
func (t *Tracer) Start(traceID, name string) *ActiveSpan {
	return &ActiveSpan{t: t, span: Span{TraceID: traceID, Name: name, Start: time.Now()}}
}

// ActiveSpan is an in-flight span returned by Start.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartedAt returns the span's start instant.
func (a *ActiveSpan) StartedAt() time.Time { return a.span.Start }

// End finishes the span with the given attributes and records it.
func (a *ActiveSpan) End(attrs ...Attr) {
	a.span.Duration = time.Since(a.span.Start)
	a.span.Attrs = attrs
	a.t.Record(a.span)
}

// Total returns the number of spans ever recorded (including those that
// have fallen off the ring).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n retained spans, oldest first.
func (t *Tracer) Recent(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ordered []Span
	if t.filled {
		ordered = append(ordered, t.buf[t.next:]...)
		ordered = append(ordered, t.buf[:t.next]...)
	} else {
		ordered = append(ordered, t.buf[:t.next]...)
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Trace returns the retained spans of one trace ID, oldest first.
func (t *Tracer) Trace(id string) []Span {
	all := t.Recent(0)
	var out []Span
	for _, s := range all {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

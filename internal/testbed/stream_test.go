package testbed

import (
	"testing"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/workload"
)

func newStreamTestbed(t *testing.T) *Testbed {
	t.Helper()
	conf := DefaultConfig(7)
	tb, err := NewFigure1(conf)
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 6},
		{Query: "Q6", Start: simtime.Time(15 * simtime.Minute), Period: 45 * simtime.Minute, Count: 4},
	}
	end := simtime.Time(4 * simtime.Hour)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, end)
	}
	return tb
}

func TestSimulateStreamMatchesBatchShape(t *testing.T) {
	batch := newStreamTestbed(t)
	if err := batch.Simulate(); err != nil {
		t.Fatal(err)
	}
	stream := newStreamTestbed(t)
	var chunkTimes []simtime.Time
	if err := stream.SimulateStream(30*simtime.Minute, func(now simtime.Time) error {
		chunkTimes = append(chunkTimes, now)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if len(stream.Runs) != len(batch.Runs) {
		t.Fatalf("stream ran %d queries, batch %d", len(stream.Runs), len(batch.Runs))
	}
	for i := range stream.Runs {
		if stream.Runs[i].RunID != batch.Runs[i].RunID {
			t.Fatalf("run %d: %s vs %s", i, stream.Runs[i].RunID, batch.Runs[i].RunID)
		}
	}
	if stream.Horizon != batch.Horizon {
		t.Errorf("horizon %v vs %v", stream.Horizon, batch.Horizon)
	}
	// Chunk-aligned emission must produce the same series shapes
	// (counts and timestamps; values differ only by the RNG draw order).
	for _, k := range batch.Store.Keys() {
		b := batch.Store.Series(k.Component, k.Metric)
		s := stream.Store.Series(k.Component, k.Metric)
		if len(b) != len(s) {
			t.Errorf("%s: %d samples streamed, %d batch", k, len(s), len(b))
			continue
		}
		for i := range b {
			if b[i].T != s[i].T {
				t.Errorf("%s sample %d at %v, batch %v", k, i, s[i].T, b[i].T)
				break
			}
		}
	}
	if len(chunkTimes) == 0 {
		t.Fatal("onChunk never called")
	}
	for i := 1; i < len(chunkTimes); i++ {
		if chunkTimes[i] <= chunkTimes[i-1] {
			t.Fatalf("chunk boundaries not increasing: %v", chunkTimes)
		}
	}
	if last := chunkTimes[len(chunkTimes)-1]; last != stream.Horizon.End {
		t.Errorf("last chunk at %v, horizon end %v", last, stream.Horizon.End)
	}
}

func TestSimulateStreamDeliversRunsViaHook(t *testing.T) {
	tb := newStreamTestbed(t)
	var streamed []string
	sawBeforeChunk := make(map[string]simtime.Time)
	tb.Engine.OnRunComplete = func(rec *exec.RunRecord) {
		streamed = append(streamed, rec.RunID)
		sawBeforeChunk[rec.RunID] = rec.Stop
	}
	var lastChunk simtime.Time
	if err := tb.SimulateStream(30*simtime.Minute, func(now simtime.Time) error {
		lastChunk = now
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(tb.Runs) {
		t.Fatalf("hook saw %d runs, testbed recorded %d", len(streamed), len(tb.Runs))
	}
	if lastChunk != tb.Horizon.End {
		t.Errorf("final chunk %v, horizon end %v", lastChunk, tb.Horizon.End)
	}
	// Monitoring lags execution: samples never precede their chunk, so
	// the store must end exactly at the horizon.
	var latest simtime.Time
	for _, k := range tb.Store.Keys() {
		if smp, ok := tb.Store.Latest(k.Component, k.Metric); ok && smp.T > latest {
			latest = smp.T
		}
	}
	if latest > tb.Horizon.End {
		t.Errorf("samples at %v beyond horizon %v", latest, tb.Horizon.End)
	}
}

func TestSimulateStreamOnlyOnce(t *testing.T) {
	tb := newStreamTestbed(t)
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	if err := tb.SimulateStream(30*simtime.Minute, nil); err == nil {
		t.Fatal("second simulation accepted")
	}
}

func TestBatchSimulateStillEmitsDBMetrics(t *testing.T) {
	tb := newStreamTestbed(t)
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []metrics.Metric{metrics.DBBlocksRead, metrics.DBBufferHits, metrics.DBLocksHeld} {
		if len(tb.Store.Series(DBInstance, m)) == 0 {
			t.Errorf("no %s samples", m)
		}
	}
}

// Package testbed assembles the full experimental environment of the
// paper's Figure 1 — the SAN topology, the TPC-H database on volumes V1
// and V2, the monitoring pipeline, and the workload schedule — and
// simulates its timeline, producing the run history and monitoring store
// that DIADS diagnoses.
package testbed

import (
	"fmt"

	"diads/internal/dbsys"
	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/opt"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
	"diads/internal/workload"
)

// Well-known component IDs of the Figure 1 environment.
const (
	ServerDB   topology.ID = "srv-db"
	ServerApp1 topology.ID = "srv-app1"
	ServerApp2 topology.ID = "srv-app2"
	Subsystem  topology.ID = "ss-1"
	PoolP1     topology.ID = "pool-P1"
	PoolP2     topology.ID = "pool-P2"
	VolV1      topology.ID = "vol-V1"
	VolV2      topology.ID = "vol-V2"
	VolV3      topology.ID = "vol-V3"
	VolV4      topology.ID = "vol-V4"
	DBInstance             = "db-RepDB" // monitoring component for DB metrics
)

// Config tunes testbed construction.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale is the TPC-H scale factor.
	Scale float64
	// CacheMB is the database buffer cache size.
	CacheMB float64
	// MonitorNoise is the log-normal sigma of monitoring samples.
	MonitorNoise float64
	// OpNoise is the base log-normal sigma on operator times.
	OpNoise float64
	// PartNoise is extra noise on part leaf operators (the O4 false
	// positive source).
	PartNoise float64
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Scale:        1.0,
		CacheMB:      32,
		MonitorNoise: 0.05,
		OpNoise:      0.06,
		PartNoise:    0.30,
	}
}

// Testbed is the assembled environment.
type Testbed struct {
	Conf    Config
	Cfg     *topology.Config
	SAN     *sanperf.Model
	Cat     *dbsys.Catalog
	Params  *dbsys.Params
	Cache   *dbsys.CacheModel
	Locks   *dbsys.LockManager
	CPULoad *sanperf.Timeline
	Opt     *opt.Optimizer
	Engine  *exec.Engine
	Store   *metrics.Store
	Sampler *metrics.Sampler
	Stats   dbsys.Stats

	// Schedules lists the periodic queries to run.
	Schedules []workload.QuerySchedule
	// Loads lists external SAN workloads.
	Loads []workload.ExternalLoad
	// DMLs, IndexDrops, and ParamChanges are applied chronologically
	// during Simulate, interleaved with query runs.
	DMLs         []workload.DMLBatch
	IndexDrops   []workload.ScheduledIndexDrop
	ParamChanges []workload.ScheduledParamChange

	// Runs is the run history after Simulate.
	Runs []*exec.RunRecord
	// Horizon is the simulated interval after Simulate.
	Horizon simtime.Interval

	// dbAct accumulates per-run database activity rates as runs
	// complete, so metrics can be emitted incrementally during
	// SimulateStream.
	dbAct *sanperf.Timeline

	// lastActivity caches the latest run Stop so the monitoring-horizon
	// end survives Retain trimming the Runs slice.
	lastActivity simtime.Time

	simulated bool
}

// Retain drops evidence strictly below the horizon across the testbed's
// unbounded state: the metric store (whole segments), the SAN model's
// load/utilization/outage segments, the CPU and database-activity
// timelines, and run records that ended before the horizon. Every
// surviving read — window aggregates, instantaneous model queries,
// future metric emission — is bit-identical afterwards, so retention is
// invisible to diagnosis as long as the horizon is the evidence low
// watermark (monitor warm-up, open-event read windows; see
// monitor.Monitor.LowWatermark). Callers must not read below the
// horizon again: streaming drivers call Retain between chunks with
// horizons at or below the emission watermark.
func (tb *Testbed) Retain(horizon simtime.Time) {
	tb.Store.Truncate(horizon)
	tb.SAN.Truncate(horizon)
	tb.CPULoad.Truncate(horizon)
	tb.dbAct.Truncate(horizon)
	kept := tb.Runs[:0]
	for _, r := range tb.Runs {
		if !r.EndsBefore(horizon) {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(tb.Runs); i++ {
		tb.Runs[i] = nil
	}
	if cap(tb.Runs) > 2*len(kept) {
		kept = append(make([]*exec.RunRecord, 0, len(kept)), kept...)
	}
	tb.Runs = kept
}

// NewFigure1 builds the paper's Figure 1 environment: the DB server plus
// two application servers, an edge/core FC fabric, one storage subsystem
// with pool P1 (disks 1-4, volumes V1 and V3) and pool P2 (disks 5-10,
// volumes V2 and V4), TPC-H with partsupp on V1 and everything else on
// V2, and a default schedule of Q2 every 30 minutes.
func NewFigure1(conf Config) (*Testbed, error) {
	cfg := topology.New()
	b := &builder{cfg: cfg}
	b.server(ServerDB, "RedHat Linux DB Server", map[string]string{"os": "RHEL", "role": "database"})
	b.server(ServerApp1, "App Server 1", map[string]string{"role": "application"})
	b.server(ServerApp2, "App Server 2", map[string]string{"role": "application"})
	b.hba("hba-db-1", ServerDB, "QLA2340 #1")
	b.hba("hba-app1-1", ServerApp1, "HBA")
	b.hba("hba-app2-1", ServerApp2, "HBA")
	b.port("hba-db-1-p0", "hba-db-1", "db hba port 0")
	b.port("hba-app1-1-p0", "hba-app1-1", "app1 hba port 0")
	b.port("hba-app2-1-p0", "hba-app2-1", "app2 hba port 0")
	b.fcswitch("sw-edge-1", "EdgeSwitch1", "edge")
	b.fcswitch("sw-core-1", "CoreSwitch1", "core")
	for i := 0; i < 4; i++ {
		b.port(topology.ID(fmt.Sprintf("sw-edge-1-p%d", i)), "sw-edge-1", fmt.Sprintf("edge port %d", i))
		b.port(topology.ID(fmt.Sprintf("sw-core-1-p%d", i)), "sw-core-1", fmt.Sprintf("core port %d", i))
	}
	b.subsystem(Subsystem, "IBM DS6000", "DS6000")
	b.port("ss-1-p0", Subsystem, "controller port 0")
	b.port("ss-1-p1", Subsystem, "controller port 1")
	b.pool(PoolP1, Subsystem, "P1", "RAID5")
	b.pool(PoolP2, Subsystem, "P2", "RAID5")
	for i := 1; i <= 4; i++ {
		b.disk(topology.ID(fmt.Sprintf("disk-%d", i)), PoolP1)
	}
	for i := 5; i <= 10; i++ {
		b.disk(topology.ID(fmt.Sprintf("disk-%d", i)), PoolP2)
	}
	b.volume(VolV1, PoolP1, "V1", 100)
	b.volume(VolV3, PoolP1, "V3", 50)
	b.volume(VolV2, PoolP2, "V2", 200)
	b.volume(VolV4, PoolP2, "V4", 50)

	b.cable("hba-db-1-p0", "sw-edge-1-p0")
	b.cable("hba-app1-1-p0", "sw-edge-1-p1")
	b.cable("hba-app2-1-p0", "sw-edge-1-p2")
	b.cable("sw-edge-1-p3", "sw-core-1-p0")
	b.cable("sw-core-1-p1", "ss-1-p0")
	b.cable("sw-core-1-p2", "ss-1-p1")

	b.zone("z-db", "hba-db-1-p0", "ss-1-p0")
	b.zone("z-app1", "hba-app1-1-p0", "ss-1-p1")
	b.zone("z-app2", "hba-app2-1-p0", "ss-1-p1")
	b.lun(VolV1, ServerDB)
	b.lun(VolV2, ServerDB)
	b.lun(VolV3, ServerApp1)
	b.lun(VolV4, ServerApp2)
	if b.err != nil {
		return nil, fmt.Errorf("testbed: building Figure 1 topology: %w", b.err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	cat := dbsys.NewTPCHCatalog(conf.Scale, VolV1, VolV2)
	stats := cat.Snapshot()
	params := dbsys.DefaultParams()
	san := sanperf.NewModel(cfg, sanperf.DefaultDiskParams())
	locks := dbsys.NewLockManager()
	cpu := sanperf.NewTimeline()
	cache := dbsys.NewCacheModel(conf.CacheMB)

	tb := &Testbed{
		Conf:    conf,
		Cfg:     cfg,
		SAN:     san,
		Cat:     cat,
		Params:  params,
		Cache:   cache,
		Locks:   locks,
		CPULoad: cpu,
		Opt:     opt.New(cat),
		Store:   metrics.NewStore(),
		Sampler: metrics.NewSampler(conf.MonitorNoise, conf.Seed),
		Stats:   stats,
		dbAct:   sanperf.NewTimeline(),
	}
	tb.Engine = &exec.Engine{
		Cat:        cat,
		Params:     params,
		Cache:      cache,
		Locks:      locks,
		SAN:        san,
		Server:     ServerDB,
		StatsBase:  stats,
		CPULoad:    cpu,
		Rnd:        simtime.NewRand(conf.Seed, "exec"),
		NoiseSigma: conf.OpNoise,
		TableNoise: map[string]float64{dbsys.TPart: conf.PartNoise},
		RecordLoad: true,
	}

	// Default workload: Q2 every 30 minutes for a full day, plus light
	// background activity on the bystander volumes V3 and V4.
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 48},
	}
	tb.Loads = []workload.ExternalLoad{
		{Name: "wl-app1-V3", Volume: VolV3, Window: simtime.NewInterval(0, simtime.Time(24*simtime.Hour)),
			ReadIOPS: 15, WriteIOPS: 10, SeqFrac: 0.5, DutyCycle: 1},
		{Name: "wl-app2-V4", Volume: VolV4, Window: simtime.NewInterval(0, simtime.Time(24*simtime.Hour)),
			ReadIOPS: 25, WriteIOPS: 10, SeqFrac: 0.6, DutyCycle: 1},
	}
	return tb, nil
}

// builder collects construction errors so NewFigure1 reads linearly.
type builder struct {
	cfg *topology.Config
	err error
}

func (b *builder) keep(err error) {
	if b.err == nil && err != nil {
		b.err = err
	}
}
func (b *builder) server(id topology.ID, name string, attrs map[string]string) {
	b.keep(b.cfg.AddServer(id, name, attrs))
}
func (b *builder) hba(id, owner topology.ID, name string) { b.keep(b.cfg.AddHBA(id, owner, name)) }
func (b *builder) port(id, owner topology.ID, name string) {
	b.keep(b.cfg.AddPort(id, owner, name))
}
func (b *builder) fcswitch(id topology.ID, name, role string) {
	b.keep(b.cfg.AddSwitch(id, name, role))
}
func (b *builder) subsystem(id topology.ID, name, model string) {
	b.keep(b.cfg.AddSubsystem(id, name, model))
}
func (b *builder) pool(id, ss topology.ID, name, raid string) {
	b.keep(b.cfg.AddPool(id, ss, name, raid))
}
func (b *builder) disk(id, pool topology.ID) { b.keep(b.cfg.AddDisk(id, pool, string(id))) }
func (b *builder) volume(id, pool topology.ID, name string, gb int) {
	b.keep(b.cfg.AddVolume(id, pool, name, gb))
}
func (b *builder) cable(a, p topology.ID)              { b.keep(b.cfg.Cable(a, p)) }
func (b *builder) zone(name string, ps ...topology.ID) { b.keep(b.cfg.AddZone(name, ps...)) }
func (b *builder) lun(v, s topology.ID)                { b.keep(b.cfg.MapLUN(v, s)) }

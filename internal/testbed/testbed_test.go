package testbed

import (
	"testing"

	"diads/internal/dbsys"
	"diads/internal/metrics"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/workload"
)

func shortConfig(seed int64) Config {
	c := DefaultConfig(seed)
	return c
}

// newShortTestbed builds a Figure 1 testbed with a reduced schedule so
// unit tests stay fast.
func newShortTestbed(t testing.TB, seed int64, runs int) *Testbed {
	t.Helper()
	tb, err := NewFigure1(shortConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: runs},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(simtime.Duration(runs)*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	return tb
}

func TestFigure1TopologyShape(t *testing.T) {
	tb, err := NewFigure1(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tb.Cfg.DisksOf(VolV1)); got != 4 {
		t.Fatalf("V1 disks: %d", got)
	}
	if got := len(tb.Cfg.DisksOf(VolV2)); got != 6 {
		t.Fatalf("V2 disks: %d", got)
	}
	if v, err := tb.Cat.VolumeOf(dbsys.TPartsupp); err != nil || v != VolV1 {
		t.Fatalf("partsupp should live on V1: %v %v", v, err)
	}
	if _, err := tb.Cfg.FabricRoute(ServerDB, VolV1); err != nil {
		t.Fatalf("DB server must reach V1: %v", err)
	}
	if _, err := tb.Cfg.FabricRoute(ServerDB, VolV2); err != nil {
		t.Fatalf("DB server must reach V2: %v", err)
	}
	// Bystander volumes are reachable by their own servers only.
	if _, err := tb.Cfg.FabricRoute(ServerApp1, VolV3); err != nil {
		t.Fatalf("app1 must reach V3: %v", err)
	}
	if _, err := tb.Cfg.FabricRoute(ServerDB, VolV3); err == nil {
		t.Fatalf("DB server must not see V3")
	}
}

func TestSimulateProducesRunsAndMetrics(t *testing.T) {
	tb := newShortTestbed(t, 2, 6)
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	if len(runs) != 6 {
		t.Fatalf("want 6 runs, got %d", len(runs))
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].Start <= runs[i-1].Start {
			t.Fatalf("runs out of order")
		}
	}
	// Volume metrics exist and show query activity on V1 during runs.
	r0 := runs[0]
	win := simtime.NewInterval(r0.Start, r0.Stop.Add(5*simtime.Minute))
	if mean, n := tb.Store.WindowMean(string(VolV1), metrics.VolReadIO, win); n == 0 || mean <= 0 {
		t.Fatalf("V1 readIO during run: mean=%v n=%d", mean, n)
	}
	// DB metrics exist.
	if len(tb.Store.Series(DBInstance, metrics.DBBlocksRead)) == 0 {
		t.Fatalf("DB metrics missing")
	}
	// Server CPU metrics exist.
	if len(tb.Store.Series(string(ServerDB), metrics.SrvCPUUsagePct)) == 0 {
		t.Fatalf("server metrics missing")
	}
	// Simulate is one-shot.
	if err := tb.Simulate(); err == nil {
		t.Fatalf("second Simulate should fail")
	}
}

func TestRunsAreStableWithoutFaults(t *testing.T) {
	tb := newShortTestbed(t, 3, 8)
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	var min, max float64
	for i, r := range runs {
		d := float64(r.Duration())
		if i == 0 || d < min {
			min = d
		}
		if i == 0 || d > max {
			max = d
		}
	}
	if max/min > 1.8 {
		t.Fatalf("healthy runs should be stable: min=%.1fs max=%.1fs", min, max)
	}
}

func TestDeterministicSimulation(t *testing.T) {
	a := newShortTestbed(t, 4, 4)
	b := newShortTestbed(t, 4, 4)
	if err := a.Simulate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Simulate(); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.RunsFor("Q2"), b.RunsFor("Q2")
	for i := range ra {
		if ra[i].Duration() != rb[i].Duration() {
			t.Fatalf("run %d differs: %v vs %v", i, ra[i].Duration(), rb[i].Duration())
		}
	}
	// Monitoring series identical too.
	sa := a.Store.Series(string(VolV1), metrics.VolWriteTime)
	sb := b.Store.Series(string(VolV1), metrics.VolWriteTime)
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("series length mismatch: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestScheduledIndexDropChangesPlanMidway(t *testing.T) {
	tb := newShortTestbed(t, 5, 6)
	dropAt := simtime.Time(10*simtime.Minute) + simtime.Time(3*30*simtime.Minute) - simtime.Time(5*simtime.Minute)
	tb.IndexDrops = []workload.ScheduledIndexDrop{{T: dropAt, Index: dbsys.IdxPartsuppPart}}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	sigBefore := runs[0].PlanSig
	sigAfter := runs[len(runs)-1].PlanSig
	if sigBefore == sigAfter {
		t.Fatalf("plan should change after the index drop")
	}
	// The change log records the drop.
	if evs := tb.Cfg.Log.OfKind("IndexDropped"); len(evs) != 1 {
		t.Fatalf("IndexDropped event missing: %v", evs)
	}
	// Runs after the drop are slower (seq scans of partsupp).
	if runs[len(runs)-1].Duration() < runs[0].Duration()*2 {
		t.Fatalf("plan regression should slow runs: %v -> %v",
			runs[0].Duration(), runs[len(runs)-1].Duration())
	}
}

func TestScheduledDMLChangesRecordCounts(t *testing.T) {
	tb := newShortTestbed(t, 6, 6)
	changeAt := simtime.Time(10*simtime.Minute) + simtime.Time(3*30*simtime.Minute) - simtime.Time(5*simtime.Minute)
	tb.DMLs = []workload.DMLBatch{{T: changeAt, Table: dbsys.TPartsupp, Factor: 1.6}}
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	before, after := runs[0], runs[len(runs)-1]
	if after.Op(8).ActRows <= before.Op(8).ActRows*1.3 {
		t.Fatalf("O8 actual rows should grow: %v -> %v", before.Op(8).ActRows, after.Op(8).ActRows)
	}
	if before.PlanSig != after.PlanSig {
		t.Fatalf("plan must not change on a data-property change (stale stats)")
	}
	if evs := tb.Cfg.Log.OfKind("DMLBatch"); len(evs) != 1 {
		t.Fatalf("DMLBatch event missing")
	}
}

func TestExternalLoadSlowsOverlappingRuns(t *testing.T) {
	tb := newShortTestbed(t, 7, 8)
	// Contention on V1's pool during the second half of the schedule.
	half := simtime.Time(10*simtime.Minute) + simtime.Time(4*30*simtime.Minute)
	end := simtime.Time(10*simtime.Minute) + simtime.Time(8*30*simtime.Minute)
	tb.SAN.AddLoad(sanperf.Load{
		Volume: VolV3, Iv: simtime.NewInterval(half, end),
		ReadIOPS: 450, WriteIOPS: 100, Source: "wl-contend",
	})
	if err := tb.Simulate(); err != nil {
		t.Fatal(err)
	}
	runs := tb.RunsFor("Q2")
	early := float64(runs[0].Duration()+runs[1].Duration()) / 2
	late := float64(runs[6].Duration()+runs[7].Duration()) / 2
	if late/early < 1.5 {
		t.Fatalf("contended runs should slow: early=%.1fs late=%.1fs", early, late)
	}
}

package testbed

import (
	"fmt"
	"sort"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// cpuPerRun is the CPU utilization a running query adds on the DB server.
const cpuPerRun = 0.25

// timelineEvent is one chronological step of the simulation.
type timelineEvent struct {
	t    simtime.Time
	prio int // apply configuration changes before runs at the same time
	run  func() error
}

// Simulate plays the testbed's timeline: external loads are applied to
// the SAN model, then query runs, DML batches, index drops, and parameter
// changes execute in chronological order; finally the monitoring pipeline
// samples every component's behaviour into the metric store. Simulate may
// only be called once per testbed.
func (tb *Testbed) Simulate() error {
	if tb.simulated {
		return fmt.Errorf("testbed: already simulated")
	}
	tb.simulated = true

	var end simtime.Time
	for _, l := range tb.Loads {
		for _, seg := range l.Segments() {
			tb.SAN.AddLoad(seg)
		}
		if l.Window.End > end {
			end = l.Window.End
		}
	}

	var events []timelineEvent
	runSeq := 0
	for _, qs := range tb.Schedules {
		qs := qs
		for _, t := range qs.Times() {
			t := t
			events = append(events, timelineEvent{t: t, prio: 1, run: func() error {
				return tb.runQuery(qs.Query, t, &runSeq)
			}})
		}
	}
	for _, d := range tb.DMLs {
		d := d
		events = append(events, timelineEvent{t: d.T, prio: 0, run: func() error {
			if err := tb.Cat.ScaleRows(d.Table, d.Factor); err != nil {
				return err
			}
			tb.Cfg.Log.Record(topology.Event{
				T: d.T, Kind: topology.EvDMLBatch, Subject: topology.ID(d.Table),
				Detail: fmt.Sprintf("bulk DML scaled %s cardinality by %.2fx", d.Table, d.Factor),
			})
			return nil
		}})
	}
	for _, ix := range tb.IndexDrops {
		ix := ix
		events = append(events, timelineEvent{t: ix.T, prio: 0, run: func() error {
			if !tb.Cat.DropIndex(ix.Index) {
				return fmt.Errorf("testbed: drop of unknown index %q", ix.Index)
			}
			tb.Cfg.Log.Record(topology.Event{
				T: ix.T, Kind: topology.EvIndexDropped, Subject: topology.ID(ix.Index),
				Detail: "index dropped by maintenance script",
			})
			return nil
		}})
	}
	for _, pc := range tb.ParamChanges {
		pc := pc
		events = append(events, timelineEvent{t: pc.T, prio: 0, run: func() error {
			old := tb.Params.Set(pc.Param, pc.Value)
			tb.Cfg.Log.Record(topology.Event{
				T: pc.T, Kind: topology.EvParamChanged, Subject: topology.ID(pc.Param),
				Detail: fmt.Sprintf("%s: %g -> %g", pc.Param, old, pc.Value),
			})
			return nil
		}})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].prio < events[j].prio
	})

	for _, ev := range events {
		if err := ev.run(); err != nil {
			return err
		}
	}

	for _, r := range tb.Runs {
		if r.Stop > end {
			end = r.Stop
		}
	}
	tb.Horizon = simtime.NewInterval(0, end.Add(10*simtime.Minute))

	tb.emitMetrics()
	return nil
}

// runQuery optimizes and executes one scheduled run.
func (tb *Testbed) runQuery(query string, t simtime.Time, seq *int) error {
	p, err := tb.Opt.PlanQuery(query, tb.Stats, tb.Params)
	if err != nil {
		return err
	}
	*seq++
	runID := fmt.Sprintf("run-%s-%03d", query, *seq)
	rec, err := tb.Engine.Run(p, t, runID)
	if err != nil {
		return err
	}
	tb.Runs = append(tb.Runs, rec)
	// The run occupies the server CPU while it executes.
	tb.CPULoad.Add("cpu", simtime.NewInterval(rec.Start, rec.Stop), cpuPerRun, runID)
	return nil
}

// RunsFor returns the run history of one query in time order.
func (tb *Testbed) RunsFor(query string) []*exec.RunRecord {
	var out []*exec.RunRecord
	for _, r := range tb.Runs {
		if r.Query == query {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// emitMetrics runs the monitoring pipeline over the whole horizon.
func (tb *Testbed) emitMetrics() {
	tb.SAN.EmitMetrics(tb.Store, tb.Sampler, tb.Horizon)
	tb.SAN.EmitNetworkMetrics(tb.Store, tb.Sampler, tb.Horizon, ServerDB)

	// Server metrics: CPU from the load timeline (exact interval means, as
	// a real agent's counters would report); memory mostly flat.
	tb.Sampler.RecordWindowMean(tb.Store, string(ServerDB), metrics.SrvCPUUsagePct, tb.Horizon,
		func(w simtime.Interval) float64 {
			return 100 * minf(0.08+tb.CPULoad.MeanOver("cpu", w), 1)
		})
	tb.Sampler.Record(tb.Store, string(ServerDB), metrics.SrvPhysMemoryPct, tb.Horizon,
		func(simtime.Time) float64 { return 62 })
	tb.Sampler.Record(tb.Store, string(ServerDB), metrics.SrvProcesses, tb.Horizon,
		func(simtime.Time) float64 { return 180 })

	// Database metrics: per-run activity rates plus lock-manager state.
	dbAct := sanperf.NewTimeline()
	for _, r := range tb.Runs {
		dur := float64(r.Duration())
		if dur <= 0 {
			continue
		}
		iv := simtime.NewInterval(r.Start, r.Stop)
		dbAct.Add("blocksread", iv, r.PhysIO/dur, r.RunID)
		dbAct.Add("bufferhits", iv, r.CacheHit/dur, r.RunID)
		dbAct.Add("lockwait", iv, float64(r.LockWait)/dur, r.RunID)
		dbAct.Add("idxscans", iv, float64(r.IdxScans)/dur, r.RunID)
		dbAct.Add("seqscans", iv, float64(r.SeqScans)/dur, r.RunID)
	}
	rec := func(metric metrics.Metric, key string) {
		tb.Sampler.RecordWindowMean(tb.Store, DBInstance, metric, tb.Horizon,
			func(w simtime.Interval) float64 { return dbAct.MeanOver(key, w) })
	}
	rec(metrics.DBBlocksRead, "blocksread")
	rec(metrics.DBBufferHits, "bufferhits")
	rec(metrics.DBLockWaitTime, "lockwait")
	rec(metrics.DBIndexScans, "idxscans")
	rec(metrics.DBSequentialScans, "seqscans")
	tb.Sampler.Record(tb.Store, DBInstance, metrics.DBLocksHeld, tb.Horizon,
		func(t simtime.Time) float64 { return float64(tb.Locks.HeldAt(t)) })
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

package testbed

import (
	"fmt"
	"math"
	"sort"

	"diads/internal/exec"
	"diads/internal/metrics"
	"diads/internal/simtime"
	"diads/internal/topology"
)

// cpuPerRun is the CPU utilization a running query adds on the DB server.
const cpuPerRun = 0.25

// horizonMargin pads the monitoring horizon past the last activity. It
// is expressed in terms of the evidence-window padding and must stay
// strictly larger than one metrics.DefaultMonitorInterval: the final
// chunk's watermark is the horizon end, and an event for the very last
// run (read window ending rec.Stop + one interval) must still release
// from the gate — drivers have no separate end-of-stream flush.
//
//lint:allow readwindow emission-horizon margin sized to cover the last read window, not a read window itself
const horizonMargin = 2 * metrics.DefaultMonitorInterval

// timelineEvent is one chronological step of the simulation.
type timelineEvent struct {
	t    simtime.Time
	prio int // apply configuration changes before runs at the same time
	run  func() error
}

// Simulate plays the testbed's timeline: external loads are applied to
// the SAN model, then query runs, DML batches, index drops, and parameter
// changes execute in chronological order; finally the monitoring pipeline
// samples every component's behaviour into the metric store. Simulate may
// only be called once per testbed.
func (tb *Testbed) Simulate() error {
	return tb.SimulateStream(0, nil)
}

// SimulateStream plays the same timeline in chunks, the testbed's online
// operating mode: after all events up to each chunk boundary have
// executed, the monitoring pipeline emits the samples for that chunk
// (monitoring lags execution, as in production) and onChunk is invoked
// with the boundary time so a streaming consumer — the monitor/service
// pipeline — can poll metrics and drain slowdown events "live". Runs
// themselves stream through exec.Engine.OnRunComplete the moment they
// finish. A chunk of 0 plays the whole timeline as one chunk. Like
// Simulate, it may only be called once per testbed.
//
// Emission is aligned to the monitoring-interval grid and holds back
// incomplete intervals: each chunk emits only the monitoring intervals
// that have fully elapsed, and the trailing partial interval flushes
// with the final chunk. Two guarantees follow. First, the boundary time
// onChunk receives is a metric watermark — every sample with a
// timestamp at or before it has been emitted, and no future chunk can
// append one at or before it — which is what lets drivers pass it
// straight to monitor.Gate.Release. Second, the emitted sample set (and,
// with the sampler's per-series noise streams, every sample value) is
// byte-identical whatever the chunk size, including the single-chunk
// batch run, so diagnosis results cannot depend on chunking.
func (tb *Testbed) SimulateStream(chunk simtime.Duration, onChunk func(now simtime.Time) error) error {
	if tb.simulated {
		return fmt.Errorf("testbed: already simulated")
	}
	tb.simulated = true

	var loadEnd simtime.Time
	for _, l := range tb.Loads {
		for _, seg := range l.Segments() {
			tb.SAN.AddLoad(seg)
		}
		if l.Window.End > loadEnd {
			loadEnd = l.Window.End
		}
	}

	events := tb.timeline()

	if chunk <= 0 {
		for _, ev := range events {
			if err := ev.run(); err != nil {
				return err
			}
		}
		end := tb.activityEnd(loadEnd)
		tb.Horizon = simtime.NewInterval(0, end)
		tb.emitMetrics(tb.Horizon)
		if onChunk != nil {
			return onChunk(end)
		}
		return nil
	}

	i := 0
	var emitted simtime.Time
	for boundary := simtime.Time(chunk); ; boundary = boundary.Add(chunk) {
		for i < len(events) && events[i].t < boundary {
			if err := events[i].run(); err != nil {
				return err
			}
			i++
		}
		stop := boundary
		done := false
		if i == len(events) {
			if end := tb.activityEnd(loadEnd); end <= boundary {
				stop, done = end, true
			}
		}
		// Emit only fully-elapsed monitoring intervals; the final chunk
		// flushes the partial tail so the store matches a batch run's.
		cover := stop
		if !done {
			cover = tb.monitorGrid(stop)
		}
		if cover > emitted {
			tb.emitMetrics(simtime.NewInterval(emitted, cover))
			emitted = cover
		}
		if onChunk != nil {
			if err := onChunk(stop); err != nil {
				return err
			}
		}
		if done {
			tb.Horizon = simtime.NewInterval(0, stop)
			return nil
		}
	}
}

// timeline assembles the chronologically sorted event list.
func (tb *Testbed) timeline() []timelineEvent {
	var events []timelineEvent
	runSeq := 0
	for _, qs := range tb.Schedules {
		qs := qs
		for _, t := range qs.Times() {
			t := t
			events = append(events, timelineEvent{t: t, prio: 1, run: func() error {
				return tb.runQuery(qs.Query, t, &runSeq)
			}})
		}
	}
	for _, d := range tb.DMLs {
		d := d
		events = append(events, timelineEvent{t: d.T, prio: 0, run: func() error {
			if err := tb.Cat.ScaleRows(d.Table, d.Factor); err != nil {
				return err
			}
			tb.Cfg.Log.Record(topology.Event{
				T: d.T, Kind: topology.EvDMLBatch, Subject: topology.ID(d.Table),
				Detail: fmt.Sprintf("bulk DML scaled %s cardinality by %.2fx", d.Table, d.Factor),
			})
			return nil
		}})
	}
	for _, ix := range tb.IndexDrops {
		ix := ix
		events = append(events, timelineEvent{t: ix.T, prio: 0, run: func() error {
			if !tb.Cat.DropIndex(ix.Index) {
				return fmt.Errorf("testbed: drop of unknown index %q", ix.Index)
			}
			tb.Cfg.Log.Record(topology.Event{
				T: ix.T, Kind: topology.EvIndexDropped, Subject: topology.ID(ix.Index),
				Detail: "index dropped by maintenance script",
			})
			return nil
		}})
	}
	for _, pc := range tb.ParamChanges {
		pc := pc
		events = append(events, timelineEvent{t: pc.T, prio: 0, run: func() error {
			old := tb.Params.Set(pc.Param, pc.Value)
			tb.Cfg.Log.Record(topology.Event{
				T: pc.T, Kind: topology.EvParamChanged, Subject: topology.ID(pc.Param),
				Detail: fmt.Sprintf("%s: %g -> %g", pc.Param, old, pc.Value),
			})
			return nil
		}})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].prio < events[j].prio
	})
	return events
}

// monitorGrid floors t to the monitoring-interval grid (multiples of the
// sampler's interval from the simulation epoch): the point through which
// complete intervals can be emitted at a chunk boundary.
func (tb *Testbed) monitorGrid(t simtime.Time) simtime.Time {
	step := tb.Sampler.Interval
	if step <= 0 {
		step = metrics.DefaultMonitorInterval
	}
	return simtime.Time(math.Floor(float64(t)/float64(step)) * float64(step))
}

// activityEnd returns the monitoring horizon end: the last activity
// (external load or run) plus a margin.
func (tb *Testbed) activityEnd(loadEnd simtime.Time) simtime.Time {
	end := loadEnd
	// lastActivity, not a Runs scan: Retain may have trimmed records
	// whose Stop once defined the horizon end.
	if tb.lastActivity > end {
		end = tb.lastActivity
	}
	return end.Add(horizonMargin)
}

// runQuery optimizes and executes one scheduled run.
func (tb *Testbed) runQuery(query string, t simtime.Time, seq *int) error {
	p, err := tb.Opt.PlanQuery(query, tb.Stats, tb.Params)
	if err != nil {
		return err
	}
	*seq++
	runID := fmt.Sprintf("run-%s-%03d", query, *seq)
	rec, err := tb.Engine.Run(p, t, runID)
	if err != nil {
		return err
	}
	tb.Runs = append(tb.Runs, rec)
	if rec.Stop > tb.lastActivity {
		tb.lastActivity = rec.Stop
	}
	// The run occupies the server CPU while it executes.
	tb.CPULoad.Add("cpu", simtime.NewInterval(rec.Start, rec.Stop), cpuPerRun, runID)
	// Its activity rates become the database-level monitoring series.
	if dur := float64(rec.Duration()); dur > 0 {
		iv := simtime.NewInterval(rec.Start, rec.Stop)
		tb.dbAct.Add("blocksread", iv, rec.PhysIO/dur, runID)
		tb.dbAct.Add("bufferhits", iv, rec.CacheHit/dur, runID)
		tb.dbAct.Add("lockwait", iv, float64(rec.LockWait)/dur, runID)
		tb.dbAct.Add("idxscans", iv, float64(rec.IdxScans)/dur, runID)
		tb.dbAct.Add("seqscans", iv, float64(rec.SeqScans)/dur, runID)
	}
	return nil
}

// RunsFor returns the run history of one query in time order.
func (tb *Testbed) RunsFor(query string) []*exec.RunRecord {
	var out []*exec.RunRecord
	for _, r := range tb.Runs {
		if r.Query == query {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// emitMetrics runs the monitoring pipeline over one window. Streaming
// simulation calls it once per chunk with consecutive windows; batch
// simulation once with the full horizon. Windows must not overlap, since
// the store rejects out-of-order samples.
func (tb *Testbed) emitMetrics(iv simtime.Interval) {
	if iv.Length() <= 0 {
		return
	}
	tb.SAN.EmitMetrics(tb.Store, tb.Sampler, iv)
	tb.SAN.EmitNetworkMetrics(tb.Store, tb.Sampler, iv, ServerDB)

	// Server metrics: CPU from the load timeline (exact interval means, as
	// a real agent's counters would report); memory mostly flat.
	tb.Sampler.RecordWindowMean(tb.Store, string(ServerDB), metrics.SrvCPUUsagePct, iv,
		func(w simtime.Interval) float64 {
			return 100 * minf(0.08+tb.CPULoad.MeanOver("cpu", w), 1)
		})
	tb.Sampler.Record(tb.Store, string(ServerDB), metrics.SrvPhysMemoryPct, iv,
		func(simtime.Time) float64 { return 62 })
	tb.Sampler.Record(tb.Store, string(ServerDB), metrics.SrvProcesses, iv,
		func(simtime.Time) float64 { return 180 })

	// Database metrics: per-run activity rates plus lock-manager state.
	rec := func(metric metrics.Metric, key string) {
		tb.Sampler.RecordWindowMean(tb.Store, DBInstance, metric, iv,
			func(w simtime.Interval) float64 { return tb.dbAct.MeanOver(key, w) })
	}
	rec(metrics.DBBlocksRead, "blocksread")
	rec(metrics.DBBufferHits, "bufferhits")
	rec(metrics.DBLockWaitTime, "lockwait")
	rec(metrics.DBIndexScans, "idxscans")
	rec(metrics.DBSequentialScans, "seqscans")
	tb.Sampler.Record(tb.Store, DBInstance, metrics.DBLocksHeld, iv,
		func(t simtime.Time) float64 { return float64(tb.Locks.HeldAt(t)) })
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

package fleet

import (
	"strings"
	"sync"

	"diads/internal/service"
	"diads/internal/symptoms"
)

// ScopedInstance builds the fleet-wide instance ID for a tenant's
// database instance: "tenant/instance". The HTTP ingest path scopes
// every externally posted sample, run, and event this way, so two
// tenants naming an instance "db-1" never collide in the shared
// service's dedup keys, incident registry, or learning loop. A tenant
// ID must not itself contain "/" (SplitScoped's separator); instance
// names may. An empty tenant leaves the instance ID unscoped.
func ScopedInstance(tenant, instance string) string {
	if tenant == "" {
		return instance
	}
	return tenant + "/" + instance
}

// SplitScoped undoes ScopedInstance: it splits a fleet-wide instance ID
// at the first "/" into tenant and bare instance. IDs without a
// separator are unscoped — an empty tenant and the ID itself.
func SplitScoped(id string) (tenant, instance string) {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}

// Learner is the exported, self-locking face of the candidate
// lifecycle for drivers outside the fleet's epoch exchange — the HTTP
// serving surface in particular. The unexported learner has no locking
// of its own (the exchange drives it under its mutex at epoch seals);
// Learner adds the mutex so API handlers, the monitor's intake worker,
// and an operator's ack can interleave safely.
type Learner struct {
	mu sync.Mutex
	l  *learner
}

// NewLearner builds a standalone learner over the shared symptoms
// database.
func NewLearner(cfg LearnConfig, symdb *symptoms.DB) *Learner {
	return &Learner{l: newLearner(cfg.withDefaults(), symdb)}
}

// AddHealthy feeds one healthy-period fact base to the miner's
// background filter and the validator's corpus.
func (a *Learner) AddHealthy(fb *symptoms.FactBase) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.l.addHealthy(fb)
}

// Observe routes newly-confirmed incidents into the mining/hold-out
// split, then advances the lifecycle one step (propose → validate →
// review gate).
func (a *Learner) Observe(incs []service.Incident) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.l.observe(incs)
	a.l.step()
}

// Resolve settles a pending candidate by operator decision — accept
// installs a validated candidate into the shared database, reject
// retires it. This is the API behind POST /v1/candidates/{kind}/ack
// and .../reject.
func (a *Learner) Resolve(kind string, accept bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.l.resolve(kind, accept)
}

// Stats snapshots the lifecycle.
func (a *Learner) Stats() LearnStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.l.stats()
}

// Learner lifecycle tests live in the fleet package itself: they drive
// the candidate lifecycle — proposed → validated → installed/rejected —
// directly with synthetic incidents and healthy fact bases, without
// streaming a whole fleet.
package fleet

import (
	"strings"
	"testing"

	"diads/internal/diag"
	"diads/internal/service"
	"diads/internal/symptoms"
)

func testFacts(scores map[string]float64) *symptoms.FactBase {
	fb := symptoms.NewFactBase()
	for name, s := range scores {
		fb.Add(name, s)
	}
	return fb
}

// confirmed builds a registry incident that clears the confirmation bar.
func confirmed(instance, query, kind string, facts *symptoms.FactBase) service.Incident {
	return service.Incident{
		Instance: instance, Query: query, Kind: kind, Subject: "vol-V1",
		Confidence: 95, Events: 3,
		Result: &diag.Result{Facts: facts},
	}
}

// TestLearnerRejectsBackgroundCandidate is the regression test for the
// dead background filter: incidents whose only common fact is an
// always-present one used to become an installed entry with vacuous
// conditions (AddBackground was never called, so filterBackground was a
// no-op). Now the candidate is proposed before any healthy evidence
// exists, deferred until the corpus fills, and rejected — visibly, with
// the offending condition named — once the healthy corpus shows the
// fact is background.
func TestLearnerRejectsBackgroundCandidate(t *testing.T) {
	symdb := symptoms.NewDB()
	l := newLearner(LearnConfig{}.withDefaults(), symdb)

	ambient := map[string]float64{"ambient-load:pool-P1": 0.9}
	l.observe([]service.Incident{
		confirmed("inst-0", "Q2", "noise-cause", testFacts(ambient)),
		confirmed("inst-1", "Q2", "noise-cause", testFacts(ambient)),
	})
	l.step()
	st := l.stats()
	if len(st.Installed) != 0 {
		t.Fatalf("nothing may install before validation, got %v", st.Installed)
	}
	if len(st.Pending) != 1 || !strings.Contains(st.Pending[0].State, "healthy corpus") {
		t.Fatalf("candidate should be pending on the corpus, got %+v", st.Pending)
	}

	// Healthy corpus arrives carrying the same always-present fact;
	// a third confirmation fills the hold-out set (every 3rd is
	// withheld), unblocking validation.
	l.addHealthy(testFacts(map[string]float64{"ambient-load:pool-P1": 0.92}))
	l.observe([]service.Incident{
		confirmed("inst-2", "Q2", "noise-cause", testFacts(ambient)),
	})
	l.step()

	st = l.stats()
	if len(st.Installed) != 0 || len(st.Pending) != 0 {
		t.Fatalf("background candidate must not install or linger: %+v", st)
	}
	if len(st.Rejected) != 1 {
		t.Fatalf("want 1 rejected candidate, got %+v", st.Rejected)
	}
	rej := st.Rejected[0]
	if rej.Kind != "noise-cause"+symptoms.MinedSuffix {
		t.Errorf("rejected kind = %q", rej.Kind)
	}
	// The whole entry fires on the healthy base (its only condition is
	// the ambient fact), so the rejection cites the false-positive rate,
	// and the per-condition record pins which condition is background.
	if !strings.Contains(rej.Reason, "false positives") {
		t.Errorf("reason should cite the healthy replay: %q", rej.Reason)
	}
	found := false
	for _, c := range rej.Validation.Conditions {
		if strings.Contains(c.Expr, "ambient-load:pool-P1") && c.HealthyHits == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("per-condition record should name the background condition: %+v",
			rej.Validation.Conditions)
	}
	if len(symdb.Entries()) != 0 {
		t.Fatalf("database must stay empty, has %d entries", len(symdb.Entries()))
	}

	// The rejection is final: further steps neither retry nor duplicate.
	l.step()
	if st := l.stats(); len(st.Rejected) != 1 || len(st.Pending) != 0 {
		t.Fatalf("rejection must be recorded once and never retried: %+v", st)
	}
}

// TestLearnerBackgroundFilterFeedsMiner pins the satellite fix: healthy
// fact bases reach Miner.AddBackground (one addHealthy entry point
// feeds both the miner and the validator), so an always-present fact
// no longer survives into a mined entry's conditions.
func TestLearnerBackgroundFilterFeedsMiner(t *testing.T) {
	symdb := symptoms.NewDB()
	l := newLearner(LearnConfig{}.withDefaults(), symdb)

	// The healthy corpus is captured before the incidents confirm —
	// the quiet-window probe order in a real fleet run.
	l.addHealthy(testFacts(map[string]float64{"ambient-load:pool-P1": 0.9}))

	mixed := map[string]float64{"ambient-load:pool-P1": 0.9, "real-symptom:vol-V1": 0.95}
	l.observe([]service.Incident{
		confirmed("inst-0", "Q2", "san-contention", testFacts(mixed)),
		confirmed("inst-1", "Q2", "san-contention", testFacts(mixed)),
		confirmed("inst-2", "Q2", "san-contention", testFacts(mixed)),
	})
	l.step()

	st := l.stats()
	if len(st.Installed) != 1 {
		t.Fatalf("discriminative candidate should install, got %+v", st)
	}
	entry := st.Installed[0].Entry
	rendered := entry.Render()
	if strings.Contains(rendered, "ambient-load") {
		t.Fatalf("always-present fact survived into the installed conditions:\n%s", rendered)
	}
	if !strings.Contains(rendered, "real-symptom:vol-V1") {
		t.Fatalf("discriminative fact missing from the installed conditions:\n%s", rendered)
	}
	if st.Confirmed != 2 || st.HeldOut != 1 || st.Healthy != 1 {
		t.Fatalf("evidence counters wrong: %+v", st)
	}
}

// TestLearnerHoldoutRoutingAndAuthors pins that every third
// confirmation of a kind is withheld for validation, its instance never
// becomes an author, and transfers count exactly for non-authors.
func TestLearnerHoldoutRoutingAndAuthors(t *testing.T) {
	l := newLearner(LearnConfig{}.withDefaults(), symptoms.NewDB())
	l.addHealthy(testFacts(map[string]float64{"other": 0.9}))
	facts := map[string]float64{"real-symptom:vol-V1": 0.95}
	l.observe([]service.Incident{
		confirmed("inst-0", "Q2", "san-contention", testFacts(facts)),
		confirmed("inst-1", "Q2", "san-contention", testFacts(facts)),
		confirmed("inst-2", "Q2", "san-contention", testFacts(facts)),
	})
	l.step()

	st := l.stats()
	if len(st.Installed) != 1 {
		t.Fatalf("want an install, got %+v", st)
	}
	if got := st.Installed[0].Sources; len(got) != 2 || got[0] != "inst-0" || got[1] != "inst-1" {
		t.Fatalf("authors = %v, want the two mined instances (hold-out inst-2 excluded)", got)
	}
	kind := st.Installed[0].Kind
	if l.transferIn(kind, "inst-0") {
		t.Error("an author must not count as a transfer beneficiary")
	}
	if !l.transferIn(kind, "inst-2") {
		t.Error("the hold-out instance is a beneficiary: its high score is a transfer")
	}
	if l.transferIn("never-installed"+symptoms.MinedSuffix, "inst-5") {
		t.Error("uninstalled kinds cannot transfer")
	}
}

// TestLearnerOperatorReviewGate pins the ReviewOperator policy: a
// validated candidate waits for the operator, a rejecting reviewer
// retires it, an accepting reviewer installs it.
func TestLearnerOperatorReviewGate(t *testing.T) {
	facts := map[string]float64{"real-symptom:vol-V1": 0.95}
	seed := func(cfg LearnConfig, symdb *symptoms.DB) *learner {
		l := newLearner(cfg.withDefaults(), symdb)
		l.addHealthy(testFacts(map[string]float64{"other": 0.9}))
		l.observe([]service.Incident{
			confirmed("inst-0", "Q2", "san-contention", testFacts(facts)),
			confirmed("inst-1", "Q2", "san-contention", testFacts(facts)),
			confirmed("inst-2", "Q2", "san-contention", testFacts(facts)),
		})
		l.step()
		return l
	}

	db := symptoms.NewDB()
	l := seed(LearnConfig{Review: ReviewOperator}, db)
	st := l.stats()
	if len(st.Installed) != 0 || len(db.Entries()) != 0 {
		t.Fatalf("nothing may install without the operator's ack: %+v", st)
	}
	if len(st.Pending) != 1 || !strings.Contains(st.Pending[0].State, "awaiting operator review") {
		t.Fatalf("validated candidate should await review, got %+v", st.Pending)
	}
	if !strings.Contains(st.Pending[0].Rendered, "cause san-contention"+symptoms.MinedSuffix) {
		t.Fatalf("pending candidate must surface its DSL for the ack:\n%s", st.Pending[0].Rendered)
	}

	l = seed(LearnConfig{
		Review:   ReviewOperator,
		Reviewer: func(symptoms.CandidateEntry, symptoms.Validation) bool { return false },
	}, symptoms.NewDB())
	st = l.stats()
	if len(st.Rejected) != 1 || st.Rejected[0].Reason != "operator rejected" {
		t.Fatalf("rejecting reviewer should retire the candidate: %+v", st)
	}

	db = symptoms.NewDB()
	l = seed(LearnConfig{
		Review:   ReviewOperator,
		Reviewer: func(symptoms.CandidateEntry, symptoms.Validation) bool { return true },
	}, db)
	st = l.stats()
	if len(st.Installed) != 1 || len(db.Entries()) != 1 {
		t.Fatalf("accepting reviewer should install: %+v", st)
	}
}

// TestLearnerRecordsInstallErrorAndStopsRetrying pins the satellite
// bugfix for the silently-swallowed symdb.Add error: a candidate the
// database refuses is retired with the error as its reason, visible in
// LearnStats, and is never proposed or re-installed again.
func TestLearnerRecordsInstallErrorAndStopsRetrying(t *testing.T) {
	symdb := symptoms.NewDB()
	l := newLearner(LearnConfig{}.withDefaults(), symdb)

	// A candidate with weights that cannot sum to 100 — the database
	// must refuse it. (The miner never produces one, but install must
	// not trust that.)
	kind := "broken" + symptoms.MinedSuffix
	c := &candidate{cand: symptoms.CandidateEntry{
		CauseKind: kind,
		Conditions: []symptoms.Condition{
			{Weight: 50, Expr: symptoms.MustParseExpr("ge(x, 0.8)")},
		},
	}}
	l.pending[kind] = c
	l.pendingOrder = append(l.pendingOrder, kind)
	l.install(kind, c)

	st := l.stats()
	if len(st.Rejected) != 1 || !strings.HasPrefix(st.Rejected[0].Reason, "install:") {
		t.Fatalf("install error must be recorded with its reason: %+v", st.Rejected)
	}
	if len(symdb.Entries()) != 0 {
		t.Fatal("refused entry must not be in the database")
	}

	// The same kind re-proposed by the miner is dropped at the door.
	l.addHealthy(testFacts(map[string]float64{"other": 0.9}))
	l.observe([]service.Incident{
		confirmed("inst-0", "Q2", "broken", testFacts(map[string]float64{"x": 0.9})),
		confirmed("inst-1", "Q2", "broken", testFacts(map[string]float64{"x": 0.9})),
		confirmed("inst-2", "Q2", "broken", testFacts(map[string]float64{"x": 0.9})),
	})
	l.step()
	if st := l.stats(); len(st.Rejected) != 1 || len(st.Pending) != 0 || len(st.Installed) != 0 {
		t.Fatalf("rejected kind must never be retried: %+v", st)
	}
}

// TestLearnerSkipsPreinstalledKinds pins the reload path: mined entries
// already present in the database (persisted from an earlier run and
// reloaded through Parse) are not re-proposed, re-validated, or
// re-installed.
func TestLearnerSkipsPreinstalledKinds(t *testing.T) {
	symdb := symptoms.NewDB()
	pre := symptoms.Entry{
		Kind:  "san-contention" + symptoms.MinedSuffix,
		Scope: symptoms.ScopeGlobal,
		Conditions: []symptoms.Condition{
			{Weight: 100, Expr: symptoms.MustParseExpr("ge(real-symptom:vol-V1, 0.8)")},
		},
	}
	if err := symdb.Add(pre); err != nil {
		t.Fatal(err)
	}
	l := newLearner(LearnConfig{}.withDefaults(), symdb)
	l.addHealthy(testFacts(map[string]float64{"other": 0.9}))
	facts := map[string]float64{"real-symptom:vol-V1": 0.95}
	l.observe([]service.Incident{
		confirmed("inst-0", "Q2", "san-contention", testFacts(facts)),
		confirmed("inst-1", "Q2", "san-contention", testFacts(facts)),
		confirmed("inst-2", "Q2", "san-contention", testFacts(facts)),
	})
	l.step()
	st := l.stats()
	if len(st.Installed) != 0 || len(st.Pending) != 0 || len(st.Rejected) != 0 {
		t.Fatalf("preinstalled kind must be skipped entirely: %+v", st)
	}
	if len(symdb.Entries()) != 1 {
		t.Fatalf("database grew to %d entries, want the 1 preinstalled", len(symdb.Entries()))
	}
}

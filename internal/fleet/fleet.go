// Package fleet runs many database+SAN instances through one shared
// diagnosis pipeline — the layer above the single-instance online loop
// that the paper's symptoms-database design (Section 7) anticipates:
// diagnosis knowledge amortized across deployments.
//
// A Fleet streams N independent testbed instances concurrently, each on
// its own seed and timeline, partitioned into shards by instance hash.
// Each shard has its own coordinator goroutine and its own
// service.Service (worker pool, dedup stripes, impact registry,
// instance-scoped APG/SD caches): a shard's instances synchronize at
// chunk boundaries, and at each barrier the shard's coordinator drains
// its monitors' slowdown events, releases the ones whose evidence read
// windows the metric watermark covers, and diagnoses them in
// evidence-time waves — sorted by read-window end, with the worker pool
// settled between waves. Shards share nothing on that hot path; they
// meet only at the symptom-learning exchange, where healthy-corpus and
// confirmed-incident contributions fold into the central learner at
// deterministic evidence-time epoch seals (see exchange.go), and at the
// end-of-run merge, which concatenates the per-shard registries into
// one fleet-wide ranking.
//
// Because diagnosis state is instance-scoped throughout, because every
// cross-instance learning effect happens at an epoch seal ordered by
// evidence time alone, and because the wave order depends only on the
// event stream, a fleet run is byte-identical per seed regardless of
// MaxStreams, service worker count, simulation chunk size, or shard
// count — and diagnosis never races metric emission: instances are
// parked while their events are diagnosed.
//
// The fold back up is the fleet incident view: registry incidents whose
// subject is shared SAN infrastructure group across the instances
// attached to it, so a misconfigured shared pool degrading six of eight
// instances surfaces as one correlated fleet incident with a
// per-instance breakdown, not six unrelated ones.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
)

// Instance is one database+SAN deployment the fleet streams: an
// unsimulated testbed with a monitor attached to its engine's
// OnRunComplete hook.
type Instance struct {
	ID      string
	Testbed *testbed.Testbed
	Monitor *monitor.Monitor
	// Shared marks the instance as attached to the fleet's shared SAN
	// pool: its incidents on shared components (Config.SharedSubjects)
	// group with other attached instances' into one fleet incident.
	Shared bool
}

// Config tunes the fleet.
type Config struct {
	// SymDB is the fleet-shared symptoms database every instance
	// diagnoses against and the learning loop installs mined entries
	// into (default symptoms.Builtin()).
	SymDB *symptoms.DB
	// Chunk is the simulation chunk, the monitoring lag and the
	// coordination granularity (default 10 minutes).
	Chunk simtime.Duration
	// MaxStreams caps concurrently-simulating instances (0 = all). The
	// cap is fleet-wide — one semaphore shared across every shard's
	// instances. Coordination is barrier-synchronized, so the setting
	// changes wall time only, never results.
	MaxStreams int
	// Shards partitions the instances (by ID hash) into independent
	// coordinator+service slices (default 1; clamped to the instance
	// count). Sharding changes wall time and telemetry labels only:
	// reports are byte-identical across shard counts.
	Shards int
	// Service tunes the shared diagnosis service. Queue and cache sizes
	// of zero are raised to fleet-scale defaults generous enough that
	// no event is shed and no cache entry evicted mid-run — shedding
	// and eviction under concurrency are the two ways a fleet run could
	// lose determinism.
	Service service.Config
	// Learn tunes the cross-instance symptom-learning loop.
	Learn LearnConfig
	// SharedSubjects lists the component IDs of the shared SAN
	// infrastructure (the pool, its volumes, its disks). Incidents on
	// these subjects from Shared instances group across the fleet.
	SharedSubjects []string
	// SelfObserver, when non-nil, receives every completed diagnosis's
	// wall time from the shared service — the hook the dogfood loop
	// (telemetry/selfmon) plugs into so the fleet's diagnoser watches its
	// own latency.
	SelfObserver service.SelfObserver
	// Retention bounds per-instance memory. At each chunk barrier —
	// after the shard's diagnoses have settled and before its instances
	// resume — the coordinator truncates every instance's metric store,
	// SAN timelines, and run history to the instance's evidence low
	// watermark: the oldest time any future diagnosis can still read
	// (monitor history, gated events, buffered epoch events, each padded
	// through the one evidence-window contract). Reports are
	// byte-identical with retention on or off; only memory changes.
	Retention bool
	// ResidentCap bounds each shard's resident (non-hibernated)
	// instances when Retention is on (0 = unlimited). Past the cap,
	// instances with no gated or buffered events hibernate: their
	// service environment and instance-scoped cache entries page out,
	// and they rehydrate automatically — before any Submit — when a
	// later barrier releases an event of theirs. Cached artifacts are
	// pure functions of instance state, so the page-out/page-in cycle
	// costs recomputation only, never a result.
	ResidentCap int
}

func (c Config) withDefaults(n int) Config {
	if c.SymDB == nil {
		c.SymDB = symptoms.Builtin()
	}
	if c.Chunk <= 0 {
		c.Chunk = 10 * simtime.Minute
	}
	if c.MaxStreams <= 0 || c.MaxStreams > n {
		c.MaxStreams = n
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > n {
		c.Shards = n
	}
	if c.Service.Queue <= 0 {
		c.Service.Queue = 1024
	}
	if c.Service.ResultCacheSize <= 0 {
		c.Service.ResultCacheSize = 4096
	}
	// APGCacheSize defaults per shard in New — 64 entries per shard
	// instance, capped at apgCacheCap — so a 1000-instance fleet no
	// longer allocates an unbounded 64k-entry cache.
	if c.Service.SDCacheSize <= 0 {
		c.Service.SDCacheSize = 4096
	}
	c.Learn = c.Learn.withDefaults()
	return c
}

// apgCacheCap bounds the default per-shard APG cache regardless of how
// many instances the shard holds. Past the cap, LRU eviction is
// possible; evictions are visible via diads_cache_evictions_total and
// cost recomputation only — every cached artifact is a pure function of
// instance state, so eviction can never change a result, only wall
// time.
const apgCacheCap = 4096

// instanceState is the fleet's per-instance bookkeeping. The shard
// coordinator owns events/detected/firstDetection/hibernated (written
// only between barriers); transfers is written by service workers,
// hence atomic.
type instanceState struct {
	Instance
	gate           *monitor.Gate
	resume         chan struct{}
	events         int
	detected       bool
	firstDetection simtime.Time
	hibernated     bool
	transfers      atomic.Int64
}

// Fleet drives the instances. Construct with New, then Run once.
type Fleet struct {
	cfg       Config
	symdb     *symptoms.DB
	instances []*instanceState
	byID      map[string]*instanceState
	shared    map[string]bool
	shards    []*shard
	ex        *exchange

	failMu   sync.Mutex
	firstErr error
	cancel   context.CancelFunc

	ran bool
}

// New assembles a fleet over the instances. Instance testbeds must be
// freshly built (not yet simulated) and monitors already attached.
func New(cfg Config, instances []Instance) (*Fleet, error) {
	if len(instances) == 0 {
		return nil, errors.New("fleet: no instances")
	}
	cfg = cfg.withDefaults(len(instances))
	f := &Fleet{
		cfg:    cfg,
		symdb:  cfg.SymDB,
		byID:   make(map[string]*instanceState, len(instances)),
		shared: make(map[string]bool, len(cfg.SharedSubjects)),
	}
	for _, s := range cfg.SharedSubjects {
		f.shared[s] = true
	}
	for i, inst := range instances {
		if inst.ID == "" {
			return nil, fmt.Errorf("fleet: instance %d has no ID", i)
		}
		if inst.Testbed == nil || inst.Monitor == nil {
			return nil, fmt.Errorf("fleet: instance %q needs a testbed and a monitor", inst.ID)
		}
		if f.byID[inst.ID] != nil {
			return nil, fmt.Errorf("fleet: duplicate instance ID %q", inst.ID)
		}
		st := &instanceState{
			Instance: inst,
			gate:     &monitor.Gate{},
			resume:   make(chan struct{}, 1),
		}
		f.instances = append(f.instances, st)
		f.byID[inst.ID] = st
	}

	// Partition the instances into shards by ID hash; hash vacancies
	// collapse (the exchange needs a declaration stream from every
	// shard it tracks, so empty shards must not exist).
	groups := make([][]*instanceState, cfg.Shards)
	for _, st := range f.instances {
		gi := shardOf(st.ID, cfg.Shards)
		groups[gi] = append(groups[gi], st)
	}
	sharded := cfg.Shards > 1
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := &shard{
			id:              len(f.shards),
			f:               f,
			instances:       g,
			probed:          make(map[string]bool),
			deposited:       make(map[incidentID]bool),
			declaredThrough: -1,
		}
		svcCfg := cfg.Service
		if svcCfg.APGCacheSize <= 0 {
			size := 64 * len(g)
			if size > apgCacheCap {
				size = apgCacheCap
			}
			svcCfg.APGCacheSize = size
		}
		if sharded {
			svcCfg.ShardLabel = strconv.Itoa(sh.id)
		}
		sh.resident.Store(int64(len(g)))
		sh.svc = service.New(f.envOf(g[0]), svcCfg)
		for _, st := range g {
			sh.svc.AddInstance(st.ID, f.envOf(st))
		}
		sh.svc.OnDiagnosis = sh.onDiagnosis
		sh.svc.OnHealthy = sh.onHealthy
		sh.svc.Self = cfg.SelfObserver
		sh.initTelemetry(sharded)
		f.shards = append(f.shards, sh)
	}
	f.ex = newExchange(cfg.Learn, newLearner(cfg.Learn, cfg.SymDB), len(f.shards))
	f.registerTelemetryFuncs()
	return f, nil
}

// registerTelemetryFuncs installs scrape-time callbacks over the
// candidate lifecycle. The callbacks take the exchange lock; the
// registry invokes them outside its own lock, so scrapes never order
// against the coordinators.
func (f *Fleet) registerTelemetryFuncs() {
	reg := telemetry.Default()
	learnVal := func(read func(l *learner) float64) func() float64 {
		return func() float64 { return f.ex.read(read) }
	}
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "pending"},
		learnVal(func(l *learner) float64 { return float64(len(l.pending)) }))
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "installed"},
		learnVal(func(l *learner) float64 { return float64(len(l.installed)) }))
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "rejected"},
		learnVal(func(l *learner) float64 { return float64(len(l.rejectedList)) }))
	reg.CounterFunc("diads_fleet_incidents_confirmed_total",
		"Confirmed incidents fed to the symptom miner.",
		nil, learnVal(func(l *learner) float64 { return float64(l.confirmed) }))
	reg.CounterFunc("diads_fleet_transfers_total",
		"Cross-instance symptom transfers (mined entry scored high on a non-author).",
		nil, learnVal(func(l *learner) float64 { return float64(l.transfers) }))
	reg.GaugeFunc("diads_fleet_healthy_corpus_size",
		"Healthy-period fact bases available to the validator.",
		nil, learnVal(func(l *learner) float64 { return float64(l.validator.HealthyCount()) }))
	reg.GaugeFunc("diads_fleet_resident_instances",
		"Instances currently resident (service env registered, not hibernated).",
		nil, func() float64 {
			var n int64
			for _, sh := range f.shards {
				n += sh.resident.Load()
			}
			return float64(n)
		})
}

// envOf assembles an instance's diagnosis environment around the
// fleet-shared symptoms database.
func (f *Fleet) envOf(st *instanceState) service.Env {
	tb := st.Testbed
	return service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: f.symdb,
	}
}

// chunkMsg is one instance's arrival at a chunk boundary (or its
// completion).
type chunkMsg struct {
	idx  int
	now  simtime.Time
	done bool
	err  error
}

// Run streams every instance to the end of its timeline and returns the
// merged fleet report. It may be called once. Each shard runs its own
// coordinator; Run fans them out, waits, and merges.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	if f.ran {
		return nil, errors.New("fleet: already ran")
	}
	f.ran = true

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.cancel = cancel

	sem := make(chan struct{}, f.cfg.MaxStreams)
	var wg sync.WaitGroup
	for _, sh := range f.shards {
		sh.svc.Start(ctx)
	}
	for _, sh := range f.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(ctx, sem)
		}(sh)
	}
	wg.Wait()

	f.failMu.Lock()
	err := f.firstErr
	f.failMu.Unlock()
	if err == nil {
		// A caller-canceled context unwinds the instances with plain
		// context.Canceled errors, which fail() filters; surface the
		// cancellation itself rather than an empty report. The fleet's
		// own deferred cancel has not run yet, so a successful run
		// reads a nil cause here.
		err = context.Cause(ctx)
	}
	if err != nil {
		return nil, err
	}
	return f.report(), nil
}

// fail records the first real failure, cancels the run, and unwedges
// the learning exchange. Plain cancellations and exchange aborts are
// the unwind of an earlier failure (or of the caller's context), not a
// cause of their own.
func (f *Fleet) fail(err error) {
	if err == nil {
		return
	}
	f.failMu.Lock()
	if f.firstErr == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, errAborted) {
		f.firstErr = err
	}
	f.failMu.Unlock()
	f.cancel()
	f.ex.abort()
}

// quietFacts replays the diagnosis machinery over the event's
// satisfactory baseline, pseudo-labeling the latest healthy run as
// unsatisfactory. It returns nil when the baseline is too short to
// diagnose or the probe fails; the corpus just grows from other probes
// and low-confidence diagnoses instead.
func quietFacts(ctx context.Context, env service.Env, ev monitor.SlowdownEvent) *symptoms.FactBase {
	var sat []*exec.RunRecord
	for _, r := range ev.Runs {
		if good, labeled := ev.Satisfactory[r.RunID]; labeled && good {
			sat = append(sat, r)
		}
	}
	// The probe needs 3 satisfactory runs plus the pseudo-unsatisfactory
	// one, the workflow's floor.
	if len(sat) < 4 {
		return nil
	}
	labels := make(map[string]bool, len(sat))
	for _, r := range sat {
		labels[r.RunID] = true
	}
	labels[sat[len(sat)-1].RunID] = false
	in := &diag.Input{
		Query:        ev.Query,
		Runs:         sat,
		Satisfactory: labels,
		Store:        env.Store,
		Cfg:          env.Cfg,
		Cat:          env.Cat,
		Opt:          env.Opt,
		Params:       env.Params,
		Stats:        env.Stats,
		Server:       env.Server,
		// No SymDB: the probe wants the facts, not a diagnosis.
	}
	res, err := diag.DiagnoseContext(ctx, in)
	if err != nil || res == nil {
		return nil
	}
	return res.Facts
}

// Package fleet runs many database+SAN instances through one shared
// diagnosis pipeline — the layer above the single-instance online loop
// that the paper's symptoms-database design (Section 7) anticipates:
// diagnosis knowledge amortized across deployments.
//
// A Fleet streams N independent testbed instances concurrently, each on
// its own seed and timeline. Instances synchronize at chunk boundaries:
// between barriers they simulate in parallel, and at each barrier a
// single coordinator drains every monitor's slowdown events, releases
// the ones whose evidence read windows the metric watermark covers, and
// fans them into one shared service.Service (instance-tagged job keys,
// per-instance diagnosis environments, instance-scoped caches) in
// evidence-time waves — sorted by read-window end, with the worker pool
// settled and the symptom-learning step run between waves. Because every
// cross-instance interaction happens in that deterministic coordinator —
// never in the concurrently simulating instances — and because the wave
// order depends only on the event stream, a fleet run is byte-identical
// per seed regardless of MaxStreams, service worker count, or simulation
// chunk size, and diagnosis never races metric emission: instances are
// parked while their events are diagnosed.
//
// The fold back up is the fleet incident view: registry incidents whose
// subject is shared SAN infrastructure group across the instances
// attached to it, so a misconfigured shared pool degrading six of eight
// instances surfaces as one correlated fleet incident with a
// per-instance breakdown, not six unrelated ones.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"diads/internal/diag"
	"diads/internal/exec"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
	"diads/internal/testbed"
)

// Instance is one database+SAN deployment the fleet streams: an
// unsimulated testbed with a monitor attached to its engine's
// OnRunComplete hook.
type Instance struct {
	ID      string
	Testbed *testbed.Testbed
	Monitor *monitor.Monitor
	// Shared marks the instance as attached to the fleet's shared SAN
	// pool: its incidents on shared components (Config.SharedSubjects)
	// group with other attached instances' into one fleet incident.
	Shared bool
}

// Config tunes the fleet.
type Config struct {
	// SymDB is the fleet-shared symptoms database every instance
	// diagnoses against and the learning loop installs mined entries
	// into (default symptoms.Builtin()).
	SymDB *symptoms.DB
	// Chunk is the simulation chunk, the monitoring lag and the
	// coordination granularity (default 10 minutes).
	Chunk simtime.Duration
	// MaxStreams caps concurrently-simulating instances (0 = all).
	// Coordination is barrier-synchronized, so the setting changes wall
	// time only, never results.
	MaxStreams int
	// Service tunes the shared diagnosis service. Queue and cache sizes
	// of zero are raised to fleet-scale defaults generous enough that
	// no event is shed and no cache entry evicted mid-run — shedding
	// and eviction under concurrency are the two ways a fleet run could
	// lose determinism.
	Service service.Config
	// Learn tunes the cross-instance symptom-learning loop.
	Learn LearnConfig
	// SharedSubjects lists the component IDs of the shared SAN
	// infrastructure (the pool, its volumes, its disks). Incidents on
	// these subjects from Shared instances group across the fleet.
	SharedSubjects []string
	// SelfObserver, when non-nil, receives every completed diagnosis's
	// wall time from the shared service — the hook the dogfood loop
	// (telemetry/selfmon) plugs into so the fleet's diagnoser watches its
	// own latency.
	SelfObserver service.SelfObserver
}

func (c Config) withDefaults(n int) Config {
	if c.SymDB == nil {
		c.SymDB = symptoms.Builtin()
	}
	if c.Chunk <= 0 {
		c.Chunk = 10 * simtime.Minute
	}
	if c.MaxStreams <= 0 || c.MaxStreams > n {
		c.MaxStreams = n
	}
	if c.Service.Queue <= 0 {
		c.Service.Queue = 1024
	}
	if c.Service.ResultCacheSize <= 0 {
		c.Service.ResultCacheSize = 4096
	}
	if c.Service.APGCacheSize <= 0 {
		c.Service.APGCacheSize = 64 * n
	}
	if c.Service.SDCacheSize <= 0 {
		c.Service.SDCacheSize = 4096
	}
	c.Learn = c.Learn.withDefaults()
	return c
}

// instanceState is the fleet's per-instance bookkeeping. The coordinator
// owns events/detected/firstDetection (written only between barriers);
// transfers is written by service workers under the fleet mutex.
type instanceState struct {
	Instance
	gate           *monitor.Gate
	resume         chan struct{}
	events         int
	detected       bool
	firstDetection simtime.Time
	transfers      int
}

// Fleet drives the instances. Construct with New, then Run once.
type Fleet struct {
	cfg       Config
	symdb     *symptoms.DB
	instances []*instanceState
	byID      map[string]*instanceState
	shared    map[string]bool
	svc       *service.Service

	mu    sync.Mutex // guards learn and instanceState.transfers
	learn *learner

	tel fleetTelemetry

	// probed marks (instance, query) pairs whose quiet-window baseline
	// has been captured into the healthy corpus. Coordinator-owned.
	probed map[string]bool

	ran bool
}

// New assembles a fleet over the instances. Instance testbeds must be
// freshly built (not yet simulated) and monitors already attached.
func New(cfg Config, instances []Instance) (*Fleet, error) {
	if len(instances) == 0 {
		return nil, errors.New("fleet: no instances")
	}
	cfg = cfg.withDefaults(len(instances))
	f := &Fleet{
		cfg:    cfg,
		symdb:  cfg.SymDB,
		byID:   make(map[string]*instanceState, len(instances)),
		shared: make(map[string]bool, len(cfg.SharedSubjects)),
		learn:  newLearner(cfg.Learn, cfg.SymDB),
		probed: make(map[string]bool),
	}
	for _, s := range cfg.SharedSubjects {
		f.shared[s] = true
	}
	for i, inst := range instances {
		if inst.ID == "" {
			return nil, fmt.Errorf("fleet: instance %d has no ID", i)
		}
		if inst.Testbed == nil || inst.Monitor == nil {
			return nil, fmt.Errorf("fleet: instance %q needs a testbed and a monitor", inst.ID)
		}
		if f.byID[inst.ID] != nil {
			return nil, fmt.Errorf("fleet: duplicate instance ID %q", inst.ID)
		}
		st := &instanceState{
			Instance: inst,
			gate:     &monitor.Gate{},
			resume:   make(chan struct{}, 1),
		}
		f.instances = append(f.instances, st)
		f.byID[inst.ID] = st
	}
	f.svc = service.New(f.envOf(f.instances[0]), cfg.Service)
	for _, st := range f.instances {
		f.svc.AddInstance(st.ID, f.envOf(st))
	}
	f.svc.OnDiagnosis = f.onDiagnosis
	f.svc.OnHealthy = f.onHealthy
	f.svc.Self = cfg.SelfObserver
	f.tel = newFleetTelemetry()
	f.registerTelemetryFuncs()
	return f, nil
}

// fleetTelemetry bundles the coordinator's instruments: wave and
// learn-step latency, plus lifetime wave/event counters.
type fleetTelemetry struct {
	waves    *telemetry.Counter
	released *telemetry.Counter
	waveSec  *telemetry.Histogram
	learnSec *telemetry.Histogram
}

func newFleetTelemetry() fleetTelemetry {
	reg := telemetry.Default()
	return fleetTelemetry{
		waves: reg.Counter("diads_fleet_waves_total",
			"Evidence-time waves the coordinator dispatched.", nil),
		released: reg.Counter("diads_fleet_events_released_total",
			"Slowdown events released through the gates into waves.", nil),
		waveSec: reg.Histogram("diads_fleet_wave_seconds",
			"Wall time of one evidence-time wave: submit, settle, probes, learn step.",
			nil, nil),
		learnSec: reg.Histogram("diads_fleet_learn_step_seconds",
			"Wall time of one symptom-learning step between waves.",
			nil, nil),
	}
}

// registerTelemetryFuncs installs scrape-time callbacks over the
// candidate lifecycle. The callbacks take the fleet mutex; the registry
// invokes them outside its own lock, so scrapes never order against the
// coordinator.
func (f *Fleet) registerTelemetryFuncs() {
	reg := telemetry.Default()
	learnVal := func(read func(l *learner) float64) func() float64 {
		return func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return read(f.learn)
		}
	}
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "pending"},
		learnVal(func(l *learner) float64 { return float64(len(l.pending)) }))
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "installed"},
		learnVal(func(l *learner) float64 { return float64(len(l.installed)) }))
	reg.GaugeFunc("diads_fleet_candidates",
		"Mined symptom candidates by lifecycle state.",
		telemetry.Labels{"state": "rejected"},
		learnVal(func(l *learner) float64 { return float64(len(l.rejectedList)) }))
	reg.CounterFunc("diads_fleet_incidents_confirmed_total",
		"Confirmed incidents fed to the symptom miner.",
		nil, learnVal(func(l *learner) float64 { return float64(l.confirmed) }))
	reg.CounterFunc("diads_fleet_transfers_total",
		"Cross-instance symptom transfers (mined entry scored high on a non-author).",
		nil, learnVal(func(l *learner) float64 { return float64(l.transfers) }))
	reg.GaugeFunc("diads_fleet_healthy_corpus_size",
		"Healthy-period fact bases available to the validator.",
		nil, learnVal(func(l *learner) float64 { return float64(l.validator.HealthyCount()) }))
}

// envOf assembles an instance's diagnosis environment around the
// fleet-shared symptoms database.
func (f *Fleet) envOf(st *instanceState) service.Env {
	tb := st.Testbed
	return service.Env{
		Store: tb.Store, Cfg: tb.Cfg, Cat: tb.Cat, Opt: tb.Opt,
		Params: tb.Params, Stats: tb.Stats, Server: testbed.ServerDB,
		SymDB: f.symdb,
	}
}

// chunkMsg is one instance's arrival at a chunk boundary (or its
// completion).
type chunkMsg struct {
	idx  int
	now  simtime.Time
	done bool
	err  error
}

// Run streams every instance to the end of its timeline and returns the
// fleet report. It may be called once.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	if f.ran {
		return nil, errors.New("fleet: already ran")
	}
	f.ran = true

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.svc.Start(ctx)

	n := len(f.instances)
	barrier := make(chan chunkMsg, n)
	sem := make(chan struct{}, f.cfg.MaxStreams)
	var wg sync.WaitGroup
	for i, st := range f.instances {
		wg.Add(1)
		go func(i int, st *instanceState) {
			defer wg.Done()
			held := false
			acquire := func() error {
				select {
				case sem <- struct{}{}:
					held = true
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			release := func() {
				if held {
					<-sem
					held = false
				}
			}
			err := acquire()
			if err == nil {
				err = st.Testbed.SimulateStream(f.cfg.Chunk, func(now simtime.Time) error {
					release()
					select {
					case barrier <- chunkMsg{idx: i, now: now}:
					case <-ctx.Done():
						return ctx.Err()
					}
					select {
					case <-st.resume:
					case <-ctx.Done():
						return ctx.Err()
					}
					return acquire()
				})
			}
			release()
			barrier <- chunkMsg{idx: i, done: true, err: err}
		}(i, st)
	}

	var firstErr error
	fail := func(err error) {
		if err == nil {
			return
		}
		// Plain cancellations are the unwind of an earlier failure (or
		// of the caller's context), not a cause of their own.
		if firstErr == nil && !errors.Is(err, context.Canceled) {
			firstErr = err
		}
		cancel()
	}

	alive := n
	atBarrier := make([]bool, n)
	justDone := make([]bool, n)
	watermark := make([]simtime.Time, n)
	for alive > 0 {
		// Collect one message from every alive instance: its next chunk
		// boundary, or its completion.
		for i := range justDone {
			justDone[i] = false
		}
		arrived := 0
		for arrived < alive {
			msg := <-barrier
			if msg.done {
				alive--
				justDone[msg.idx] = true
				fail(msg.err)
				continue
			}
			atBarrier[msg.idx] = true
			watermark[msg.idx] = msg.now
			arrived++
		}
		// Every instance is now parked (or finished): drain the gates,
		// then diagnose the released events in evidence-time waves.
		// Nothing simulates while diagnoses read the metric stores.
		if firstErr == nil {
			var released []monitor.SlowdownEvent
			for i, st := range f.instances {
				w := watermark[i]
				if justDone[i] {
					// A finished instance's metrics are fully emitted
					// (including the partial tail), so everything still
					// gated can release.
					w = simtime.Time(math.MaxFloat64)
				} else if !atBarrier[i] {
					continue
				}
				released = append(released, f.collect(st, w)...)
			}
			if err := f.submitWaves(ctx, released); err != nil {
				fail(err)
			}
		}
		for i, st := range f.instances {
			if atBarrier[i] {
				atBarrier[i] = false
				st.resume <- struct{}{}
			}
		}
	}
	wg.Wait()
	f.svc.Wait()
	f.svc.Stop()
	if firstErr == nil {
		// A caller-canceled context unwinds the instances with plain
		// context.Canceled errors, which fail() filters; surface the
		// cancellation itself rather than an empty report. The fleet's
		// own deferred cancel has not run yet, so a successful run
		// reads a nil cause here.
		firstErr = context.Cause(ctx)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return f.report(), nil
}

// collect moves an instance's detected slowdowns into its gate (tagging
// them with the instance ID) and returns the events whose evidence read
// windows the instance's metric watermark covers.
func (f *Fleet) collect(st *instanceState, w simtime.Time) []monitor.SlowdownEvent {
	for {
		select {
		case ev := <-st.Monitor.Events():
			ev.Instance = st.ID
			st.events++
			if !st.detected || ev.At < st.firstDetection {
				st.detected = true
				st.firstDetection = ev.At
			}
			st.gate.Add(ev)
			continue
		default:
		}
		break
	}
	return st.gate.Release(w)
}

// submitWaves diagnoses released events in evidence-time waves: sorted by
// the end of their read windows, events sharing an end diagnose
// concurrently, then the coordinator settles the worker pool and runs the
// learning step before the next wave. Ordering by evidence time — never
// by barrier arrival — is what makes the whole fleet run chunk-size
// invariant: the interleaving of diagnoses and symptom-learning installs
// is a function of the event stream alone, so a 1-minute-chunk run and a
// single-chunk batch run produce byte-identical reports. (A coarser
// chunking merely hands the coordinator several waves at one barrier; the
// wave sequence itself does not move.)
func (f *Fleet) submitWaves(ctx context.Context, released []monitor.SlowdownEvent) error {
	sort.SliceStable(released, func(i, j int) bool {
		if released[i].ReadWindow.End != released[j].ReadWindow.End {
			return released[i].ReadWindow.End < released[j].ReadWindow.End
		}
		if released[i].Instance != released[j].Instance {
			return released[i].Instance < released[j].Instance
		}
		return released[i].RunID < released[j].RunID
	})
	for i := 0; i < len(released); {
		j := i
		for j < len(released) && released[j].ReadWindow.End == released[i].ReadWindow.End {
			j++
		}
		waveStart := time.Now()
		for _, ev := range released[i:j] {
			switch err := f.svc.Submit(ev); err {
			case nil, service.ErrDuplicate:
			case service.ErrBackpressure:
				// Shed events are counted in Stats.Rejected; the fleet's
				// default queue is sized so this never happens.
			default:
				return err
			}
		}
		f.svc.Wait()
		f.quietProbes(ctx, released[i:j])
		f.learnStep()
		waveWall := time.Since(waveStart)
		f.tel.waves.Inc()
		f.tel.released.Add(int64(j - i))
		f.tel.waveSec.Observe(waveWall.Seconds())
		telemetry.DefaultTracer().Record(telemetry.Span{
			TraceID: "fleet", Name: "fleet.wave",
			Start: waveStart, Duration: waveWall,
			Attrs: []telemetry.Attr{
				{Key: "events", Value: strconv.Itoa(j - i)},
				{Key: "window_end", Value: released[i].ReadWindow.End.Clock()},
			},
		})
		i = j
	}
	return nil
}

// quietProbes captures the quiet-window baseline of every (instance,
// query) seen in the wave, once per pair: the event's satisfactory run
// history is diagnosed as if its last healthy run had been flagged, and
// whatever facts emerge are by construction present during normal
// operation — exactly what the miner's background filter and the
// validator's healthy corpus need. Probes are derived from the event
// snapshot (not the live monitor state), so their content is a function
// of the event stream alone and fleet runs stay chunk-size invariant.
func (f *Fleet) quietProbes(ctx context.Context, wave []monitor.SlowdownEvent) {
	if f.cfg.Learn.Disabled {
		return
	}
	for _, ev := range wave {
		key := ev.Instance + "\x00" + ev.Query
		if f.probed[key] {
			continue
		}
		f.probed[key] = true
		st := f.byID[ev.Instance]
		if st == nil {
			continue
		}
		if fb := quietFacts(ctx, f.envOf(st), ev); fb != nil {
			f.mu.Lock()
			f.learn.addHealthy(fb)
			f.mu.Unlock()
		}
	}
}

// quietFacts replays the diagnosis machinery over the event's
// satisfactory baseline, pseudo-labeling the latest healthy run as
// unsatisfactory. It returns nil when the baseline is too short to
// diagnose or the probe fails; the corpus just grows from other probes
// and low-confidence diagnoses instead.
func quietFacts(ctx context.Context, env service.Env, ev monitor.SlowdownEvent) *symptoms.FactBase {
	var sat []*exec.RunRecord
	for _, r := range ev.Runs {
		if good, labeled := ev.Satisfactory[r.RunID]; labeled && good {
			sat = append(sat, r)
		}
	}
	// The probe needs 3 satisfactory runs plus the pseudo-unsatisfactory
	// one, the workflow's floor.
	if len(sat) < 4 {
		return nil
	}
	labels := make(map[string]bool, len(sat))
	for _, r := range sat {
		labels[r.RunID] = true
	}
	labels[sat[len(sat)-1].RunID] = false
	in := &diag.Input{
		Query:        ev.Query,
		Runs:         sat,
		Satisfactory: labels,
		Store:        env.Store,
		Cfg:          env.Cfg,
		Cat:          env.Cat,
		Opt:          env.Opt,
		Params:       env.Params,
		Stats:        env.Stats,
		Server:       env.Server,
		// No SymDB: the probe wants the facts, not a diagnosis.
	}
	res, err := diag.DiagnoseContext(ctx, in)
	if err != nil || res == nil {
		return nil
	}
	return res.Facts
}

// Service exposes the shared diagnosis service (registry, stats,
// per-module totals).
func (f *Fleet) Service() *service.Service { return f.svc }

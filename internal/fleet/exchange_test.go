// Exchange tests drive the epoch-seal protocol directly: epoch math,
// the all-shards-declared seal condition, and the install-visibility
// contract (an entry mined from epoch-k deposits becomes visible at the
// seal of k — between epochs, never mid-wave).
package fleet

import (
	"math"
	"sync"
	"testing"
	"time"

	"diads/internal/simtime"
	"diads/internal/symptoms"
)

func TestEpochMath(t *testing.T) {
	const e = 10 * simtime.Minute
	cases := []struct {
		t    simtime.Time
		want int64
	}{
		{0, 0},
		{1, 0},
		{simtime.Time(e), 0},         // boundary belongs below: (0, E] is epoch 0
		{simtime.Time(e) + 1, 1},     // just past the boundary
		{simtime.Time(2 * e), 1},     // (E, 2E] is epoch 1
		{simtime.Time(2*e) + 0.5, 2}, // fractional seconds round up
		{simtime.Time(37 * e), 36},   // far grid point
	}
	for _, c := range cases {
		if got := epochOf(c.t, e); got != c.want {
			t.Errorf("epochOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}

	frontiers := []struct {
		f    simtime.Time
		want int64
	}{
		{0, -1},                                    // nothing released yet
		{simtime.Time(e) - 1, -1},                  // mid-epoch-0: epoch 0 incomplete
		{simtime.Time(e), 0},                       // frontier at the boundary: epoch 0 complete
		{simtime.Time(e) + 1, 0},                   // past the boundary, epoch 1 still open
		{simtime.Time(3 * e), 2},                   // three boundaries crossed
		{simtime.Time(math.MaxFloat64), epochDone}, // all instances finished
	}
	for _, c := range frontiers {
		if got := completeThrough(c.f, e); got != c.want {
			t.Errorf("completeThrough(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

// TestExchangeSealsAtFleetMinimum pins the seal condition: an epoch's
// deposits fold into the learner only once EVERY shard has declared the
// epoch complete — one lagging shard holds the whole fold back.
func TestExchangeSealsAtFleetMinimum(t *testing.T) {
	l := newLearner(LearnConfig{}.withDefaults(), symptoms.NewDB())
	ex := newExchange(LearnConfig{}.withDefaults(), l, 2)

	ex.depositHealthy(0, testFacts(map[string]float64{"ambient:p": 0.9}))
	healthyCount := func() int {
		return int(ex.read(func(l *learner) float64 {
			return float64(l.validator.HealthyCount())
		}))
	}

	ex.declare(0, 0)
	if got := healthyCount(); got != 0 {
		t.Fatalf("epoch 0 folded with shard 1 still streaming: healthy=%d", got)
	}
	ex.declare(1, 0)
	if got := healthyCount(); got != 1 {
		t.Fatalf("epoch 0 not folded after both shards declared: healthy=%d", got)
	}
	// waitSealed on a sealed epoch returns immediately.
	if err := ex.waitSealed(0); err != nil {
		t.Fatalf("waitSealed(0) after seal: %v", err)
	}
}

// TestExchangeInstallAtSealBoundary pins the tentpole's visibility
// contract end to end: confirmations deposited under epoch k install
// into the shared database exactly when epoch k seals — a shard parked
// in waitSealed(k) observes the new database version (which the SD
// cache key respects) when it wakes for epoch k+1, and never earlier.
func TestExchangeInstallAtSealBoundary(t *testing.T) {
	symdb := symptoms.NewDB()
	l := newLearner(LearnConfig{}.withDefaults(), symdb)
	ex := newExchange(LearnConfig{}.withDefaults(), l, 2)
	v0 := symdb.Version()

	// Epoch 0: the healthy corpus arrives; both shards declare.
	ex.depositHealthy(0, testFacts(map[string]float64{"ambient:p": 0.9}))
	ex.declare(0, 0)
	ex.declare(1, 0)
	if symdb.Version() != v0 {
		t.Fatalf("healthy-only epoch bumped the database version")
	}

	// Epoch 1: three confirmations of one kind — enough to mine,
	// hold out, validate, and install at the seal.
	facts := map[string]float64{"ambient:p": 0.9, "real-symptom:vol-V1": 0.95}
	for i, inst := range []string{"inst-0", "inst-1", "inst-2"} {
		ex.depositConfirm(1, confirmation{
			waveEnd: simtime.Time(i), // distinct wave ends; order exercised below
			inc:     confirmed(inst, "Q2", "san-contention", testFacts(facts)),
		})
	}
	ex.declare(0, 1)
	if symdb.Version() != v0 {
		t.Fatalf("install happened before every shard declared epoch 1")
	}

	// Shard 1 is about to process its first epoch-2 wave: it declares 1
	// and parks in waitSealed(1). The install must be complete when the
	// wait returns.
	var wg sync.WaitGroup
	wg.Add(1)
	sawInstall := false
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		ex.declare(1, 1)
	}()
	if err := ex.waitSealed(1); err != nil {
		t.Fatalf("waitSealed(1): %v", err)
	}
	sawInstall = symdb.Version() > v0
	wg.Wait()
	if !sawInstall {
		t.Fatalf("database version unchanged after seal(1): install missed the boundary")
	}
	st := ex.stats()
	if len(st.Installed) != 1 {
		t.Fatalf("want exactly one installed entry at the seal, got %+v", st)
	}
	if got := st.Installed[0].Sources; len(got) != 2 || got[0] != "inst-0" || got[1] != "inst-1" {
		t.Fatalf("authors = %v, want the two mined instances (hold-out excluded)", got)
	}
}

// TestExchangeLateDepositFoldsNextEpoch pins the backstop: a deposit
// tagged with an already-sealed epoch folds into the next unsealed one
// instead of vanishing or mutating sealed history.
func TestExchangeLateDepositFoldsNextEpoch(t *testing.T) {
	l := newLearner(LearnConfig{}.withDefaults(), symptoms.NewDB())
	ex := newExchange(LearnConfig{}.withDefaults(), l, 1)

	ex.declare(0, 0) // seal epoch 0 empty
	ex.depositHealthy(0, testFacts(map[string]float64{"late:fact": 0.5}))
	healthy := func() int {
		return int(ex.read(func(l *learner) float64 {
			return float64(l.validator.HealthyCount())
		}))
	}
	if got := healthy(); got != 0 {
		t.Fatalf("late deposit folded into a sealed epoch: healthy=%d", got)
	}
	ex.declare(0, 1)
	if got := healthy(); got != 1 {
		t.Fatalf("late deposit lost: healthy=%d after the next seal", got)
	}
}

// TestExchangeDisabled pins that a disabled exchange is inert: deposits
// vanish, waits return instantly, transfers answer false.
func TestExchangeDisabled(t *testing.T) {
	cfg := LearnConfig{Disabled: true}.withDefaults()
	cfg.Disabled = true
	l := newLearner(cfg, symptoms.NewDB())
	ex := newExchange(cfg, l, 4)
	ex.depositHealthy(3, testFacts(map[string]float64{"x": 1}))
	ex.depositConfirm(3, confirmation{inc: confirmed("i", "Q2", "k", testFacts(map[string]float64{"x": 1}))})
	if err := ex.waitSealed(99); err != nil {
		t.Fatalf("disabled waitSealed: %v", err)
	}
	if ex.transferIn("k"+symptoms.MinedSuffix, "i") {
		t.Fatal("disabled exchange reported a transfer")
	}
	if st := ex.stats(); st.Confirmed != 0 || st.Healthy != 0 {
		t.Fatalf("disabled exchange accumulated state: %+v", st)
	}
}

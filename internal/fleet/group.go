package fleet

import (
	"fmt"
	"sort"
	"strings"

	"diads/internal/service"
	"diads/internal/simtime"
)

// IncidentPart is one instance's share of a grouped fleet incident.
type IncidentPart struct {
	Instance   string
	Query      string
	Events     int
	Confidence float64
	Impact     float64
	FirstSeen  simtime.Time
	LastSeen   simtime.Time
}

// GroupedIncident is one fleet-level problem: registry incidents folded
// across instances. Incidents whose subject is shared SAN infrastructure
// and whose instance is attached to it merge into a single correlated
// incident; everything else stays per-instance (a group of one).
type GroupedIncident struct {
	Kind    string
	Subject string
	// Shared reports whether the group correlates across instances via
	// the shared SAN infrastructure.
	Shared bool
	// Queries lists the distinct victim queries (sorted).
	Queries []string
	// Parts is the per-instance breakdown, heaviest impact first.
	Parts []IncidentPart
	// TotalImpact sums the parts' estimated impact (seconds of slowdown
	// explained); Events their attributed slowdown events.
	TotalImpact float64
	Events      int
	FirstSeen   simtime.Time
	LastSeen    simtime.Time
}

// InstanceReport is one instance's summary line.
type InstanceReport struct {
	ID     string
	Shared bool
	// Events counts the monitor's slowdown events; FirstDetection is
	// the earliest (zero if none).
	Events         int
	Detected       bool
	FirstDetection simtime.Time
	// Incidents counts the instance's open registry incidents.
	Incidents int
	// Transfers counts the instance's diagnoses corroborated by mined
	// symptoms it did not author.
	Transfers int
}

// Report is the fleet run's outcome. Render is byte-deterministic per
// seed: it carries no wall-clock times and no cache counters (cache
// hit/miss totals depend on worker interleaving; read them from Stats).
type Report struct {
	Instances []InstanceReport
	Groups    []GroupedIncident
	// Stats sums the per-shard services' lifetime counters. The cache
	// fields are scheduling-dependent; every other counter is
	// deterministic per seed under the fleet's barrier coordination.
	Stats    service.Stats
	Learning LearnStats
}

// report merges the per-shard services into the fleet view: counters
// sum, registries concatenate and re-sort under the registry's own
// ranking contract. Per-shard incident state is a function of the event
// stream alone, so the merged view is byte-identical across shard
// counts.
func (f *Fleet) report() *Report {
	rep := &Report{Learning: f.ex.stats()}
	var incs []service.Incident
	for _, sh := range f.shards {
		st := sh.svc.Stats()
		rep.Stats.Submitted += st.Submitted
		rep.Stats.Deduped += st.Deduped
		rep.Stats.Rejected += st.Rejected
		rep.Stats.Completed += st.Completed
		rep.Stats.Failed += st.Failed
		rep.Stats.QueueDepth += st.QueueDepth
		rep.Stats.APG.Hits += st.APG.Hits
		rep.Stats.APG.Misses += st.APG.Misses
		rep.Stats.APG.Evictions += st.APG.Evictions
		rep.Stats.SD.Hits += st.SD.Hits
		rep.Stats.SD.Misses += st.SD.Misses
		rep.Stats.SD.Evictions += st.SD.Evictions
		rep.Stats.Results.Hits += st.Results.Hits
		rep.Stats.Results.Misses += st.Results.Misses
		rep.Stats.Results.Evictions += st.Results.Evictions
		incs = append(incs, sh.svc.Registry().Incidents()...)
	}
	service.SortIncidents(incs)
	perInstance := make(map[string]int, len(f.instances))
	for _, inc := range incs {
		perInstance[inc.Instance]++
	}
	for _, st := range f.instances {
		rep.Instances = append(rep.Instances, InstanceReport{
			ID: st.ID, Shared: st.Shared,
			Events: st.events, Detected: st.detected, FirstDetection: st.firstDetection,
			Incidents: perInstance[st.ID],
			Transfers: int(st.transfers.Load()),
		})
	}
	rep.Groups = f.group(incs)
	return rep
}

// group merges ranked registry incidents into fleet incidents.
func (f *Fleet) group(incs []service.Incident) []GroupedIncident {
	type gkey struct{ instance, query, kind, subject string }
	byKey := make(map[gkey]*GroupedIncident)
	var order []gkey
	for _, inc := range incs {
		st := f.byID[inc.Instance]
		shared := st != nil && st.Shared && f.shared[inc.Subject]
		k := gkey{kind: inc.Kind, subject: inc.Subject}
		if !shared {
			k.instance, k.query = inc.Instance, inc.Query
		}
		g := byKey[k]
		if g == nil {
			g = &GroupedIncident{
				Kind: inc.Kind, Subject: inc.Subject, Shared: shared,
				FirstSeen: inc.FirstSeen, LastSeen: inc.LastSeen,
			}
			byKey[k] = g
			order = append(order, k)
		}
		g.TotalImpact += inc.EstImpact()
		g.Events += inc.Events
		if inc.FirstSeen < g.FirstSeen {
			g.FirstSeen = inc.FirstSeen
		}
		if inc.LastSeen > g.LastSeen {
			g.LastSeen = inc.LastSeen
		}
		g.Parts = append(g.Parts, IncidentPart{
			Instance: inc.Instance, Query: inc.Query,
			Events: inc.Events, Confidence: inc.Confidence, Impact: inc.EstImpact(),
			FirstSeen: inc.FirstSeen, LastSeen: inc.LastSeen,
		})
	}
	out := make([]GroupedIncident, 0, len(order))
	for _, k := range order {
		g := byKey[k]
		sort.Slice(g.Parts, func(i, j int) bool {
			if g.Parts[i].Impact != g.Parts[j].Impact {
				return g.Parts[i].Impact > g.Parts[j].Impact
			}
			return g.Parts[i].Instance < g.Parts[j].Instance
		})
		seen := make(map[string]bool)
		for _, p := range g.Parts {
			if !seen[p.Query] {
				seen[p.Query] = true
				g.Queries = append(g.Queries, p.Query)
			}
		}
		sort.Strings(g.Queries)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalImpact != out[j].TotalImpact {
			return out[i].TotalImpact > out[j].TotalImpact
		}
		if out[i].LastSeen != out[j].LastSeen {
			return out[i].LastSeen > out[j].LastSeen
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		// Distinct per-instance groups of the same cause: order by owner.
		return out[i].Parts[0].Instance < out[j].Parts[0].Instance
	})
	return out
}

// SharedGroup returns the top-ranked cross-instance group (nil if the
// run produced none) — the correlated fleet incident the operator acts
// on first.
func (r *Report) SharedGroup() *GroupedIncident {
	for i := range r.Groups {
		if r.Groups[i].Shared {
			return &r.Groups[i]
		}
	}
	return nil
}

// Render formats the fleet report. The output is byte-identical per
// seed across MaxStreams and service worker settings.
func (r *Report) Render() string {
	var b strings.Builder
	shared := 0
	for _, ir := range r.Instances {
		if ir.Shared {
			shared++
		}
	}
	fmt.Fprintf(&b, "fleet incidents — %d instances (%d on the shared pool)\n",
		len(r.Instances), shared)
	b.WriteString(strings.Repeat("=", 78) + "\n")
	if len(r.Groups) == 0 {
		b.WriteString("  none\n")
	} else {
		fmt.Fprintf(&b, "  %-4s %-7s %-38s %5s %6s %9s\n",
			"rank", "scope", "cause(subject)", "inst", "events", "impact(s)")
		for i, g := range r.Groups {
			scope := "local"
			if g.Shared {
				scope = "shared"
			}
			fmt.Fprintf(&b, "  %-4d %-7s %-38s %2d/%-2d %6d %9.1f\n",
				i+1, scope, fmt.Sprintf("%s(%s)", g.Kind, g.Subject),
				len(g.Parts), len(r.Instances), g.Events, g.TotalImpact)
			for _, p := range g.Parts {
				fmt.Fprintf(&b, "       %-8s %-4s events=%-3d conf=%-3.0f impact=%-7.1f %s – %s\n",
					p.Instance, p.Query, p.Events, p.Confidence, p.Impact,
					p.FirstSeen.Clock(), p.LastSeen.Clock())
			}
		}
	}
	b.WriteString("instances\n")
	fmt.Fprintf(&b, "  %-8s %-6s %6s %-15s %9s %9s\n",
		"id", "pool", "events", "first-detection", "incidents", "transfers")
	for _, ir := range r.Instances {
		pool, det := "-", "-"
		if ir.Shared {
			pool = "shared"
		}
		if ir.Detected {
			det = ir.FirstDetection.Clock()
		}
		fmt.Fprintf(&b, "  %-8s %-6s %6d %-15s %9d %9d\n",
			ir.ID, pool, ir.Events, det, ir.Incidents, ir.Transfers)
	}
	fmt.Fprintf(&b, "service: submitted=%d deduped=%d rejected=%d completed=%d failed=%d\n",
		r.Stats.Submitted, r.Stats.Deduped, r.Stats.Rejected,
		r.Stats.Completed, r.Stats.Failed)
	lr := r.Learning
	fmt.Fprintf(&b, "symptom learning: confirmed=%d held-out=%d healthy=%d installed=%d pending=%d rejected=%d transfers=%d\n",
		lr.Confirmed, lr.HeldOut, lr.Healthy,
		len(lr.Installed), len(lr.Pending), len(lr.Rejected), lr.Transfers)
	for _, e := range lr.Installed {
		fmt.Fprintf(&b, "  installed %s (mined from %s)\n",
			e.Kind, strings.Join(e.Sources, " "))
	}
	for _, p := range lr.Pending {
		fmt.Fprintf(&b, "  pending %s — %s\n", p.Kind, p.State)
	}
	for _, rej := range lr.Rejected {
		fmt.Fprintf(&b, "  rejected %s — %s\n", rej.Kind, rej.Reason)
	}
	if len(lr.TransferInstances) > 0 {
		fmt.Fprintf(&b, "  mined symptoms applied on %s\n",
			strings.Join(lr.TransferInstances, " "))
	}
	return b.String()
}

package fleet

import (
	"strings"
	"testing"

	"diads/internal/service"
	"diads/internal/symptoms"
)

// TestLearnerResolve pins the operator ack path the HTTP API drives:
// under ReviewOperator with no Reviewer a validated candidate pends,
// Resolve(kind, true) installs it, Resolve(kind, false) retires it,
// and the error cases (unknown kind, unvalidated accept, double
// resolve) all name the state.
func TestLearnerResolve(t *testing.T) {
	symdb := symptoms.NewDB()
	a := NewLearner(LearnConfig{Review: ReviewOperator}, symdb)

	// Background corpus first, then three confirmations (the third
	// fills the hold-out set) — the flow that leaves a validated
	// candidate pending under ReviewOperator.
	a.AddHealthy(testFacts(map[string]float64{"ambient-load:pool-P1": 0.9}))
	mixed := map[string]float64{"ambient-load:pool-P1": 0.9, "real-symptom:vol-V1": 0.95}
	a.Observe([]service.Incident{
		confirmed("inst-0", "Q2", "san-contention", testFacts(mixed)),
		confirmed("inst-1", "Q2", "san-contention", testFacts(mixed)),
		confirmed("inst-2", "Q2", "san-contention", testFacts(mixed)),
	})

	kind := "san-contention" + symptoms.MinedSuffix
	st := a.Stats()
	if len(st.Pending) != 1 || st.Pending[0].Kind != kind {
		t.Fatalf("want %s pending under ReviewOperator, got %+v", kind, st.Pending)
	}
	if !strings.Contains(st.Pending[0].State, "awaiting operator review") {
		t.Fatalf("pending state = %q", st.Pending[0].State)
	}

	if err := a.Resolve("no-such-kind", true); err == nil ||
		!strings.Contains(err.Error(), "no pending candidate") {
		t.Errorf("resolving unknown kind: %v", err)
	}

	if err := a.Resolve(kind, true); err != nil {
		t.Fatalf("ack of validated candidate: %v", err)
	}
	st = a.Stats()
	if len(st.Installed) != 1 || st.Installed[0].Kind != kind {
		t.Fatalf("ack did not install: %+v", st)
	}
	if len(symdb.Entries()) != 1 {
		t.Fatalf("installed entry missing from database")
	}

	if err := a.Resolve(kind, true); err == nil ||
		!strings.Contains(err.Error(), "already installed") {
		t.Errorf("double ack: %v", err)
	}
}

// TestLearnerResolveReject pins the reject arm and that an accept
// cannot override a failed or deferred validation.
func TestLearnerResolveReject(t *testing.T) {
	symdb := symptoms.NewDB()
	a := NewLearner(LearnConfig{Review: ReviewOperator}, symdb)

	// No healthy corpus yet: the candidate defers in validation.
	mixed := map[string]float64{"real-symptom:vol-V1": 0.95}
	a.Observe([]service.Incident{
		confirmed("inst-0", "Q2", "san-contention", testFacts(mixed)),
		confirmed("inst-1", "Q2", "san-contention", testFacts(mixed)),
	})
	kind := "san-contention" + symptoms.MinedSuffix
	if st := a.Stats(); len(st.Pending) != 1 {
		t.Fatalf("want a deferred candidate, got %+v", st)
	}
	if err := a.Resolve(kind, true); err == nil ||
		!strings.Contains(err.Error(), "not validated") {
		t.Fatalf("ack of unvalidated candidate must fail: %v", err)
	}

	// Reject works regardless of validation state, and is final.
	if err := a.Resolve(kind, false); err != nil {
		t.Fatalf("reject: %v", err)
	}
	st := a.Stats()
	if len(st.Rejected) != 1 || st.Rejected[0].Reason != "operator rejected" {
		t.Fatalf("reject not recorded: %+v", st.Rejected)
	}
	if err := a.Resolve(kind, false); err == nil ||
		!strings.Contains(err.Error(), "already rejected") {
		t.Errorf("double reject: %v", err)
	}
	if len(symdb.Entries()) != 0 {
		t.Fatalf("rejected candidate reached the database")
	}
}

package fleet

import (
	"context"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diads/internal/diag"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
)

// shardOf assigns an instance to a shard by FNV-1a hash of its ID. The
// assignment is load-bearing only for wall time: diagnosis state is
// instance-scoped throughout (dedup keys, caches, registry identities),
// so moving an instance between shards cannot change any result — the
// property the shard-count determinism sweep pins.
func shardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// shard is one slice of the fleet: a subset of instances, their own
// coordinator goroutine, and their own diagnosis service (worker pool,
// dedup stripes, impact registry, APG/SD caches). Shards share nothing
// on the hot path; they meet only at the learning exchange's epoch
// seals and the end-of-run report merge.
type shard struct {
	id        int
	f         *Fleet
	instances []*instanceState // fleet construction order
	svc       *service.Service

	// probed marks (instance, query) pairs whose quiet-window baseline
	// has been captured. Instance-scoped keys, so per-shard maps
	// partition the fleet-global set exactly.
	probed map[string]bool
	// deposited marks incidents already handed to the exchange, keyed
	// by registry identity (instance-scoped, so shard-local dedup is
	// fleet-exact).
	deposited map[incidentID]bool
	// buffered holds released events whose learning epoch is not yet
	// complete — chiefly the far-future tails of finished instances,
	// which release wholesale at their final barrier long before the
	// shard's frontier reaches them.
	buffered []monitor.SlowdownEvent
	// declaredThrough is the highest epoch this shard has declared to
	// the exchange.
	declaredThrough int64
	// resident counts the shard's non-hibernated instances. The
	// coordinator owns the hibernated flags; the counter is atomic only
	// so the fleet-level telemetry gauge can read it at scrape time.
	resident atomic.Int64

	waves    *telemetry.Counter
	released *telemetry.Counter
	waveSec  *telemetry.Histogram
}

// initTelemetry installs the shard's wave instruments. Sharded fleets
// label per shard so the series coexist; a single-shard fleet keeps the
// exact unlabeled families earlier PRs exposed.
func (sh *shard) initTelemetry(sharded bool) {
	var labels telemetry.Labels
	if sharded {
		labels = telemetry.Labels{"shard": strconv.Itoa(sh.id)}
	}
	reg := telemetry.Default()
	sh.waves = reg.Counter("diads_fleet_waves_total",
		"Evidence-time waves the coordinator dispatched.", labels)
	sh.released = reg.Counter("diads_fleet_events_released_total",
		"Slowdown events released through the gates into waves.", labels)
	sh.waveSec = reg.Histogram("diads_fleet_wave_seconds",
		"Wall time of one evidence-time wave: submit, settle, probes, deposits.",
		labels, nil)
}

// run is the shard's coordinator: it streams the shard's instances
// through chunk barriers, releases gated events by watermark, and
// processes complete learning epochs in evidence-time wave order. It is
// the per-shard copy of what used to be the fleet-global loop; the only
// cross-shard interactions are the shared MaxStreams semaphore and the
// learning exchange.
func (sh *shard) run(ctx context.Context, sem chan struct{}) {
	defer func() {
		// Whatever happened, release the exchange: a shard that stops
		// declaring would wedge every other shard's epoch waits.
		sh.f.ex.declare(sh.id, epochDone)
		sh.svc.Wait()
		sh.svc.Stop()
	}()

	n := len(sh.instances)
	barrier := make(chan chunkMsg, n)
	var wg sync.WaitGroup
	for i, st := range sh.instances {
		wg.Add(1)
		go func(i int, st *instanceState) {
			defer wg.Done()
			held := false
			acquire := func() error {
				select {
				case sem <- struct{}{}:
					held = true
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			release := func() {
				if held {
					<-sem
					held = false
				}
			}
			err := acquire()
			if err == nil {
				err = st.Testbed.SimulateStream(sh.f.cfg.Chunk, func(now simtime.Time) error {
					release()
					select {
					case barrier <- chunkMsg{idx: i, now: now}:
					case <-ctx.Done():
						return ctx.Err()
					}
					select {
					case <-st.resume:
					case <-ctx.Done():
						return ctx.Err()
					}
					return acquire()
				})
			}
			release()
			barrier <- chunkMsg{idx: i, done: true, err: err}
		}(i, st)
	}

	alive := n
	atBarrier := make([]bool, n)
	justDone := make([]bool, n)
	finished := make([]bool, n)
	watermark := make([]simtime.Time, n)
	for alive > 0 {
		for i := range justDone {
			justDone[i] = false
		}
		arrived := 0
		for arrived < alive {
			msg := <-barrier
			if msg.done {
				alive--
				justDone[msg.idx] = true
				finished[msg.idx] = true
				sh.f.fail(msg.err)
				continue
			}
			atBarrier[msg.idx] = true
			watermark[msg.idx] = msg.now
			arrived++
		}
		// Every shard instance is now parked (or finished): drain the
		// gates, then advance through whatever learning epochs the
		// release frontier has completed. Nothing in this shard
		// simulates while its diagnoses read the metric stores.
		if ctx.Err() == nil {
			frontier := simtime.Time(math.MaxFloat64)
			for i, st := range sh.instances {
				w := watermark[i]
				if justDone[i] {
					// A finished instance's metrics are fully emitted
					// (including the partial tail), so everything still
					// gated can release.
					w = simtime.Time(math.MaxFloat64)
				} else if !atBarrier[i] {
					continue
				}
				sh.buffered = append(sh.buffered, sh.collect(st, w)...)
				if !finished[i] && watermark[i] < frontier {
					frontier = watermark[i]
				}
			}
			if err := sh.advance(ctx, frontier); err != nil {
				sh.f.fail(err)
			} else if sh.f.cfg.Retention {
				// Every shard instance is parked or finished and every
				// submitted diagnosis has settled (per-wave Wait), so
				// this is the one point where truncating evidence and
				// paging instances out cannot race a reader.
				sh.retain()
			}
		}
		for i, st := range sh.instances {
			if atBarrier[i] {
				atBarrier[i] = false
				st.resume <- struct{}{}
			}
		}
	}
	wg.Wait()
}

// retain runs the retention pass at a barrier: every instance's
// evidence is truncated to its low watermark, and — past the resident
// cap — idle instances hibernate out of the shard's service.
//
// The low watermark is the oldest evidence time any FUTURE diagnosis of
// the instance can read, the minimum of three terms:
//
//   - Monitor.LowWatermark — events not yet minted snapshot the history
//     ring, so their read windows start no earlier than the padded
//     Start of the oldest remembered run;
//   - Gate.LowWatermark — events minted but still gated carry their
//     full ReadWindow as future evidence;
//   - the earliest ReadWindow.Start among the shard's buffered events
//     for the instance — released, but parked until their learning
//     epoch completes.
//
// An instance with no monitor history yet is skipped outright: a run in
// progress will enter the ring with a Start in the past, so no horizon
// is safe before the first observation. Because every diagnosis reads
// only inside its event's ReadWindow and run snapshots are carried in
// the events themselves, truncating to this watermark cannot change any
// result — the retention-parity sweep pins reports byte-identical with
// retention on and off.
func (sh *shard) retain() {
	// Earliest buffered evidence per instance, one pass over the buffer.
	buffered := make(map[string]simtime.Time, len(sh.instances))
	for _, ev := range sh.buffered {
		if t, ok := buffered[ev.Instance]; !ok || ev.ReadWindow.Start < t {
			buffered[ev.Instance] = ev.ReadWindow.Start
		}
	}
	for _, st := range sh.instances {
		lw, ok := st.Monitor.LowWatermark()
		if !ok {
			continue
		}
		if g, pending := st.gate.LowWatermark(); pending && g < lw {
			lw = g
		}
		if b, ok := buffered[st.ID]; ok && b < lw {
			lw = b
		}
		st.Testbed.Retain(lw)
	}
	if cap := sh.f.cfg.ResidentCap; cap > 0 {
		sh.hibernate(cap, buffered)
	}
}

// hibernate pages idle instances out of the shard's service until the
// resident count is back under the cap, in fleet construction order —
// a deterministic order over deterministic eligibility, so the
// hibernation schedule (like everything else at a barrier) is a
// function of the event stream alone. Eligible instances have no gated
// and no buffered events: nothing of theirs can be submitted before a
// future barrier, and that barrier's wave rehydrates them first.
func (sh *shard) hibernate(cap int, buffered map[string]simtime.Time) {
	for _, st := range sh.instances {
		if int(sh.resident.Load()) <= cap {
			return
		}
		if st.hibernated || st.gate.Pending() > 0 {
			continue
		}
		if _, ok := buffered[st.ID]; ok {
			continue
		}
		sh.svc.RemoveInstance(st.ID)
		st.hibernated = true
		sh.resident.Add(-1)
	}
}

// collect moves an instance's detected slowdowns into its gate (tagging
// them with the instance ID) and returns the events whose evidence read
// windows the instance's metric watermark covers.
func (sh *shard) collect(st *instanceState, w simtime.Time) []monitor.SlowdownEvent {
	for {
		select {
		case ev := <-st.Monitor.Events():
			ev.Instance = st.ID
			st.events++
			if !st.detected || ev.At < st.firstDetection {
				st.detected = true
				st.firstDetection = ev.At
			}
			st.gate.Add(ev)
			continue
		default:
		}
		break
	}
	return st.gate.Release(w)
}

// advance processes every learning epoch the frontier has completed, in
// order: wait for the previous epoch's seal, diagnose the epoch's waves,
// deposit its contributions, declare it. Events of incomplete epochs
// (released early by finished instances) stay buffered — processing one
// would mean waiting on a seal that needs this shard's own undeclarable
// epoch, the self-deadlock the buffer exists to avoid.
func (sh *shard) advance(ctx context.Context, frontier simtime.Time) error {
	epochLen := sh.f.cfg.Learn.Epoch
	d := completeThrough(frontier, epochLen)
	stop := int64(-1)
	for _, ev := range sh.buffered {
		if e := epochOf(ev.ReadWindow.End, epochLen); e > stop {
			stop = e
		}
	}
	if stop > d {
		stop = d
	}
	for e := sh.declaredThrough + 1; e <= stop; e++ {
		if err := sh.f.ex.waitSealed(e - 1); err != nil {
			return err
		}
		if err := sh.processEpoch(ctx, e); err != nil {
			return err
		}
		sh.declaredThrough = e
		sh.f.ex.declare(sh.id, e)
	}
	if d > sh.declaredThrough {
		// Epochs past the last buffered event are complete and empty;
		// declare them wholesale (d is epochDone once every instance
		// has finished).
		sh.declaredThrough = d
		sh.f.ex.declare(sh.id, d)
	}
	return nil
}

// processEpoch pulls the epoch's events out of the buffer and diagnoses
// them in evidence-time waves.
func (sh *shard) processEpoch(ctx context.Context, epoch int64) error {
	epochLen := sh.f.cfg.Learn.Epoch
	var wave []monitor.SlowdownEvent
	rest := sh.buffered[:0]
	for _, ev := range sh.buffered {
		if epochOf(ev.ReadWindow.End, epochLen) == epoch {
			wave = append(wave, ev)
		} else {
			rest = append(rest, ev)
		}
	}
	sh.buffered = rest
	return sh.submitWaves(ctx, wave)
}

// submitWaves diagnoses released events in evidence-time waves: sorted
// by the end of their read windows, events sharing an end diagnose
// concurrently, then the coordinator settles the worker pool, captures
// quiet-window probes, and deposits newly-confirmed incidents before
// the next wave. Ordering by evidence time — never by barrier arrival —
// is what makes the run chunk-size invariant: the wave sequence is a
// function of the event stream alone, so a 1-minute-chunk run and a
// single-chunk batch run produce byte-identical reports.
func (sh *shard) submitWaves(ctx context.Context, released []monitor.SlowdownEvent) error {
	sort.SliceStable(released, func(i, j int) bool {
		if released[i].ReadWindow.End != released[j].ReadWindow.End {
			return released[i].ReadWindow.End < released[j].ReadWindow.End
		}
		if released[i].Instance != released[j].Instance {
			return released[i].Instance < released[j].Instance
		}
		return released[i].RunID < released[j].RunID
	})
	// Rehydrate hibernated instances before anything is submitted: the
	// environment is a cheap pure view over the testbed, and purged
	// cache entries recompute to identical values on demand.
	for _, ev := range released {
		if st := sh.f.byID[ev.Instance]; st != nil && st.hibernated {
			sh.svc.AddInstance(st.ID, sh.f.envOf(st))
			st.hibernated = false
			sh.resident.Add(1)
		}
	}
	for i := 0; i < len(released); {
		j := i
		for j < len(released) && released[j].ReadWindow.End == released[i].ReadWindow.End {
			j++
		}
		//lint:allow walltime telemetry-only wall timing of the wave; never enters evidence
		waveStart := time.Now()
		for _, ev := range released[i:j] {
			switch err := sh.svc.Submit(ev); err {
			case nil, service.ErrDuplicate:
			case service.ErrBackpressure:
				// Shed events are counted in Stats.Rejected; the fleet's
				// default queue is sized so this never happens.
			default:
				return err
			}
		}
		sh.svc.Wait()
		sh.quietProbes(ctx, released[i:j])
		sh.depositConfirmed(released[i].ReadWindow.End)
		//lint:allow walltime telemetry-only wall timing of the wave; never enters evidence
		waveWall := time.Since(waveStart)
		sh.waves.Inc()
		sh.released.Add(int64(j - i))
		sh.waveSec.Observe(waveWall.Seconds())
		telemetry.DefaultTracer().Record(telemetry.Span{
			TraceID: "fleet", Name: "fleet.wave",
			Start: waveStart, Duration: waveWall,
			Attrs: []telemetry.Attr{
				{Key: "shard", Value: strconv.Itoa(sh.id)},
				{Key: "events", Value: strconv.Itoa(j - i)},
				{Key: "window_end", Value: released[i].ReadWindow.End.Clock()},
			},
		})
		i = j
	}
	return nil
}

// quietProbes captures the quiet-window baseline of every (instance,
// query) seen in the wave, once per pair: the event's satisfactory run
// history is diagnosed as if its last healthy run had been flagged, and
// whatever facts emerge are by construction present during normal
// operation — exactly what the miner's background filter and the
// validator's healthy corpus need. Probes are derived from the event
// snapshot (not live monitor state), so their content is a function of
// the event stream alone; they are deposited under the wave's epoch and
// fold into the learner at its seal.
func (sh *shard) quietProbes(ctx context.Context, wave []monitor.SlowdownEvent) {
	if sh.f.cfg.Learn.Disabled {
		return
	}
	epochLen := sh.f.cfg.Learn.Epoch
	for _, ev := range wave {
		key := ev.Instance + "\x00" + ev.Query
		if sh.probed[key] {
			continue
		}
		sh.probed[key] = true
		st := sh.f.byID[ev.Instance]
		if st == nil {
			continue
		}
		if fb := quietFacts(ctx, sh.f.envOf(st), ev); fb != nil {
			sh.f.ex.depositHealthy(epochOf(ev.ReadWindow.End, epochLen), fb)
		}
	}
}

// depositConfirmed scans the shard's registry after a wave and hands
// every incident that newly crossed the confirmation gate to the
// exchange, tagged with this wave's evidence end. The crossing wave is
// determined by the incident's own event stream, so the deposit key —
// and therefore the seal's fold order — is identical for every shard
// count and chunk size.
func (sh *shard) depositConfirmed(waveEnd simtime.Time) {
	if sh.f.cfg.Learn.Disabled {
		return
	}
	cfg := sh.f.cfg.Learn
	for _, inc := range sh.svc.Registry().Incidents() {
		if inc.Kind == service.PlanChangeKind || symptoms.IsMined(inc.Kind) {
			continue
		}
		if inc.Confidence < confirmConfidence || inc.Events < cfg.ConfirmEvents {
			continue
		}
		if inc.Result == nil || inc.Result.Facts == nil {
			continue
		}
		id := incidentID{inc.Instance, inc.Query, inc.Kind, inc.Subject}
		if sh.deposited[id] {
			continue
		}
		sh.deposited[id] = true
		sh.f.ex.depositConfirm(epochOf(waveEnd, cfg.Epoch),
			confirmation{waveEnd: waveEnd, inc: inc})
	}
}

// onDiagnosis observes every completed diagnosis (called from the
// shard's service workers): a mined entry scoring high in a diagnosis
// on an instance that did not author it is a successful cross-instance
// symptom transfer. Author sets are frozen at install seals and the
// counters are commutative, so worker scheduling cannot change the
// final report.
func (sh *shard) onDiagnosis(ev monitor.SlowdownEvent, res *diag.Result) {
	if sh.f.cfg.Learn.Disabled {
		return
	}
	for _, c := range res.Causes {
		if !symptoms.IsMined(c.Kind) || c.Confidence < confirmConfidence {
			continue
		}
		if sh.f.ex.transferIn(c.Kind, ev.Instance) {
			if st := sh.f.byID[ev.Instance]; st != nil {
				st.transfers.Add(1)
			}
		}
	}
}

// onHealthy receives healthy-period fact bases from low-confidence
// diagnoses; they join the epoch of the event that produced them.
func (sh *shard) onHealthy(ev monitor.SlowdownEvent, fb *symptoms.FactBase) {
	if sh.f.cfg.Learn.Disabled {
		return
	}
	sh.f.ex.depositHealthy(epochOf(ev.ReadWindow.End, sh.f.cfg.Learn.Epoch), fb)
}

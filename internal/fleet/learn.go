package fleet

import (
	"fmt"
	"sort"

	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
)

// confirmConfidence is the diagnosis confidence an incident needs before
// the fleet treats it as expert-confirmed and feeds it to the miner —
// the paper's High category boundary.
const confirmConfidence = 80

// ReviewPolicy selects how a candidate that passed validation is
// adopted — the paper's "checked by an expert" step.
type ReviewPolicy int

const (
	// ReviewAutoAccept installs a candidate as soon as it passes the
	// healthy-corpus and hold-out replays (validation stands in for the
	// expert). The default.
	ReviewAutoAccept ReviewPolicy = iota
	// ReviewOperator holds validated candidates for an operator ack:
	// LearnConfig.Reviewer decides, or — when no Reviewer is wired —
	// the candidate stays pending with its rendered DSL surfaced in
	// LearnStats (and the console candidates panel) for manual adoption.
	ReviewOperator
)

// LearnConfig tunes the cross-instance symptom-learning loop, the
// paper's Section 7 self-evolving symptoms database closed at fleet
// scale: confirmed incidents on some instances are mined into candidate
// entries, candidates are validated against healthy-period evidence and
// held-out incidents, accepted candidates are installed into the
// fleet-shared database, and subsequent diagnoses on *other* instances
// evaluate them.
type LearnConfig struct {
	// Disabled switches the loop off (the before-side of the fleet
	// experiment's before/after comparison).
	Disabled bool
	// MinIncidents is how many confirmed incidents of a cause kind the
	// miner needs before proposing an entry (default 2).
	MinIncidents int
	// ConfirmEvents is how many slowdown events an incident must
	// accumulate at high confidence before it counts as confirmed
	// (default 2) — standing in for the expert's review.
	ConfirmEvents int
	// HoldoutEvery withholds every n-th confirmed incident of a cause
	// kind from mining and gives it to the validator instead, so
	// candidates are replayed against confirmed incidents they were not
	// mined from (default 3; values below 2 are raised to 2, since
	// withholding everything would starve the miner).
	HoldoutEvery int
	// MinHealthy is the healthy-corpus size required before any
	// candidate can be validated (default 1).
	MinHealthy int
	// MinHoldout is the number of held-out incidents of a candidate's
	// class required before it can be validated (default 1).
	MinHoldout int
	// Review selects the adoption gate for validated candidates.
	Review ReviewPolicy
	// Reviewer is consulted under ReviewOperator: it sees the candidate
	// and its validation report and answers accept or reject. It is
	// called from whichever shard goroutine seals the epoch, so it must
	// be deterministic for fleet runs to stay byte-identical per seed.
	// Nil under ReviewOperator leaves validated candidates pending.
	Reviewer func(symptoms.CandidateEntry, symptoms.Validation) bool
	// Epoch is the evidence-time granularity of the learning exchange
	// (default 10 simulated minutes). Shards deposit confirmations and
	// healthy bases tagged with their epoch; the central learner folds an
	// epoch exactly once, when every shard's release frontier has passed
	// its boundary, and installs land at that seal. Epoch is a fixed
	// evidence-time grid — independent of Chunk — so chunk-size sweeps
	// stay byte-identical; changing Epoch itself changes when installs
	// become visible and therefore legitimately changes reports.
	Epoch simtime.Duration
}

func (c LearnConfig) withDefaults() LearnConfig {
	if c.MinIncidents <= 0 {
		c.MinIncidents = 2
	}
	if c.ConfirmEvents <= 0 {
		c.ConfirmEvents = 2
	}
	if c.HoldoutEvery <= 0 {
		c.HoldoutEvery = 3
	} else if c.HoldoutEvery < 2 {
		c.HoldoutEvery = 2
	}
	if c.MinHealthy <= 0 {
		c.MinHealthy = 1
	}
	if c.MinHoldout <= 0 {
		c.MinHoldout = 1
	}
	if c.Epoch <= 0 {
		c.Epoch = 10 * simtime.Minute
	}
	return c
}

// incidentID is the registry identity of a confirmed incident.
type incidentID struct {
	instance, query, kind, subject string
}

// candidate is one proposed entry in flight: the latest proposal for
// its kind plus its latest validation report.
type candidate struct {
	cand symptoms.CandidateEntry
	val  symptoms.Validation
}

// state names what the candidate is waiting for.
func (c *candidate) state() string {
	if c.val.Verdict == symptoms.VerdictPass {
		return "validated — awaiting operator review"
	}
	if c.val.Reason != "" {
		return c.val.Reason
	}
	return "proposed — awaiting validation"
}

// learner runs the candidate lifecycle — proposed → validated →
// installed/rejected — over a shared symptoms database. It has no
// locking of its own: the exchange drives it under its mutex at epoch
// seals, and tests drive it directly.
type learner struct {
	cfg       LearnConfig
	symdb     *symptoms.DB
	miner     symptoms.Miner
	validator symptoms.Validator

	// preinstalled records cause kinds already in the database when the
	// learner was built (entries learned in a previous run and reloaded
	// from the DSL); proposals for them are neither re-validated nor
	// re-installed.
	preinstalled map[string]bool

	// fed marks incidents already routed (to the miner or the hold-out
	// set).
	fed map[incidentID]bool
	// kindSeen counts confirmations per cause kind, driving the
	// hold-out rotation.
	kindSeen map[string]int
	// sources accumulates, per prospective mined kind, the instances
	// whose confirmed incidents were mined into it (hold-out incidents
	// do not make their instance an author).
	sources map[string]map[string]bool
	// authors freezes sources at install time: instances that confirmed
	// after the entry was installed are beneficiaries, not authors.
	authors map[string]map[string]bool

	// pending holds in-flight candidates by mined kind; pendingOrder
	// remembers first-proposal order for deterministic reporting.
	pending      map[string]*candidate
	pendingOrder []string
	rejected     map[string]bool
	rejectedList []RejectedCandidate
	installed    []InstalledEntry

	confirmed, heldOut int
	transfers          int
	transferredTo      map[string]bool
}

func newLearner(cfg LearnConfig, symdb *symptoms.DB) *learner {
	l := &learner{
		cfg:           cfg,
		symdb:         symdb,
		preinstalled:  make(map[string]bool),
		fed:           make(map[incidentID]bool),
		kindSeen:      make(map[string]int),
		sources:       make(map[string]map[string]bool),
		authors:       make(map[string]map[string]bool),
		pending:       make(map[string]*candidate),
		rejected:      make(map[string]bool),
		transferredTo: make(map[string]bool),
	}
	l.validator.MinHealthy = cfg.MinHealthy
	l.validator.MinHoldout = cfg.MinHoldout
	for _, e := range symdb.Entries() {
		if symptoms.IsMined(e.Kind) {
			l.preinstalled[e.Kind] = true
		}
	}
	return l
}

// addHealthy feeds a healthy-period fact base to BOTH consumers that
// need a picture of normal operation: the miner's background filter
// (so always-present facts never become proposed conditions) and the
// validator's corpus (so candidates that slipped through are rejected
// on replay). One entry point for both is what keeps the background
// filter from going dead again.
func (l *learner) addHealthy(fb *symptoms.FactBase) {
	if l.validator.AddHealthy(fb) {
		l.miner.AddBackground(fb)
	}
}

// observe routes newly-confirmed incidents: most feed the miner (their
// instances become prospective authors), every HoldoutEvery-th of a
// kind is withheld for the validator's hold-out replay.
func (l *learner) observe(incs []service.Incident) {
	for _, inc := range incs {
		if inc.Kind == service.PlanChangeKind || symptoms.IsMined(inc.Kind) {
			continue
		}
		if inc.Confidence < confirmConfidence || inc.Events < l.cfg.ConfirmEvents {
			continue
		}
		if inc.Result == nil || inc.Result.Facts == nil {
			continue
		}
		id := incidentID{inc.Instance, inc.Query, inc.Kind, inc.Subject}
		if l.fed[id] {
			continue
		}
		l.fed[id] = true
		l.kindSeen[inc.Kind]++
		mined := symptoms.Incident{
			Facts: inc.Result.Facts, CauseKind: inc.Kind, Subject: inc.Subject,
		}
		if l.kindSeen[inc.Kind]%l.cfg.HoldoutEvery == 0 {
			l.heldOut++
			l.validator.AddHoldout(mined)
			continue
		}
		l.confirmed++
		l.miner.AddIncident(mined)
		kind := inc.Kind + symptoms.MinedSuffix
		if l.sources[kind] == nil {
			l.sources[kind] = make(map[string]bool)
		}
		l.sources[kind][inc.Instance] = true
	}
}

// step advances the lifecycle: refresh proposals, validate every
// pending candidate, and pass survivors through the review gate.
func (l *learner) step() {
	for _, cand := range l.miner.Propose(l.cfg.MinIncidents) {
		kind := cand.CauseKind
		if l.preinstalled[kind] || l.authors[kind] != nil || l.rejected[kind] {
			continue
		}
		c := l.pending[kind]
		if c == nil {
			c = &candidate{}
			l.pending[kind] = c
			l.pendingOrder = append(l.pendingOrder, kind)
		}
		// Always refresh to the latest proposal: conditions shrink as
		// the background corpus grows and support rises with new
		// confirmations.
		c.cand = cand
	}
	for _, kind := range l.pendingOrder {
		c := l.pending[kind]
		if c == nil {
			continue
		}
		c.val = l.validator.Validate(c.cand)
		switch c.val.Verdict {
		case symptoms.VerdictDefer:
			// Stays pending; the state is visible in LearnStats.
		case symptoms.VerdictReject:
			l.reject(kind, c.val.Reason, c.val)
		case symptoms.VerdictPass:
			if l.cfg.Review == ReviewOperator {
				if l.cfg.Reviewer == nil {
					continue // awaiting the operator's ack
				}
				if !l.cfg.Reviewer(c.cand, c.val) {
					l.reject(kind, "operator rejected", c.val)
					continue
				}
			}
			l.install(kind, c)
		}
	}
}

// resolve settles one pending candidate by operator decision — the ack
// the ReviewOperator policy waits for when no Reviewer is wired. Accept
// installs only a candidate that has already passed validation (the
// operator cannot override the healthy-corpus/hold-out replays); reject
// retires it regardless of validation state. The error reports an
// unknown kind or an accept of an unvalidated candidate.
func (l *learner) resolve(kind string, accept bool) error {
	c := l.pending[kind]
	if c == nil {
		if l.rejected[kind] {
			return fmt.Errorf("fleet: candidate %q already rejected", kind)
		}
		for _, ie := range l.installed {
			if ie.Kind == kind {
				return fmt.Errorf("fleet: candidate %q already installed", kind)
			}
		}
		return fmt.Errorf("fleet: no pending candidate %q", kind)
	}
	if !accept {
		l.reject(kind, "operator rejected", c.val)
		return nil
	}
	if c.val.Verdict != symptoms.VerdictPass {
		return fmt.Errorf("fleet: candidate %q not validated (%s)", kind, c.state())
	}
	l.install(kind, c)
	return nil
}

// reject retires a candidate with its reason; the kind is never
// proposed, validated, or installed again this run.
func (l *learner) reject(kind, reason string, val symptoms.Validation) {
	delete(l.pending, kind)
	l.rejected[kind] = true
	l.rejectedList = append(l.rejectedList, RejectedCandidate{
		Kind: kind, Reason: reason, Validation: val,
	})
}

// install adds the candidate to the shared database, freezing its
// author set. A database rejection (the add failing) retires the
// candidate with the error as its reason instead of silently retrying
// the same failing entry every wave.
func (l *learner) install(kind string, c *candidate) {
	entry := c.cand.Entry()
	if err := l.symdb.Add(entry); err != nil {
		l.reject(kind, "install: "+err.Error(), c.val)
		return
	}
	authors := make(map[string]bool, len(l.sources[kind]))
	sorted := make([]string, 0, len(l.sources[kind]))
	for inst := range l.sources[kind] {
		authors[inst] = true
		sorted = append(sorted, inst)
	}
	sort.Strings(sorted)
	l.authors[kind] = authors
	l.installed = append(l.installed, InstalledEntry{
		Kind: kind, Sources: sorted, Entry: entry, Validation: c.val,
	})
	delete(l.pending, kind)
}

// transferIn records a mined entry of the given kind scoring high on an
// instance, reporting whether that counts as a cross-instance transfer
// (the instance did not author the entry).
func (l *learner) transferIn(kind, instance string) bool {
	authors := l.authors[kind]
	if authors == nil || authors[instance] {
		return false
	}
	l.transfers++
	l.transferredTo[instance] = true
	return true
}

// stats snapshots the lifecycle for the report.
func (l *learner) stats() LearnStats {
	out := LearnStats{
		Confirmed: l.confirmed,
		HeldOut:   l.heldOut,
		Healthy:   l.validator.HealthyCount(),
		Transfers: l.transfers,
	}
	out.Installed = append(out.Installed, l.installed...)
	for _, kind := range l.pendingOrder {
		c := l.pending[kind]
		if c == nil {
			continue
		}
		out.Pending = append(out.Pending, PendingCandidate{
			Kind:       kind,
			State:      c.state(),
			Support:    c.cand.Support,
			Incidents:  c.cand.Incidents,
			Rendered:   c.cand.Render(),
			Validation: c.val,
		})
	}
	out.Rejected = append(out.Rejected, l.rejectedList...)
	for inst := range l.transferredTo {
		out.TransferInstances = append(out.TransferInstances, inst)
	}
	sort.Strings(out.TransferInstances)
	return out
}

// InstalledEntry describes one mined entry installed into the shared
// database: the instances whose confirmed incidents authored it, the
// installable entry itself (renderable to the admin DSL for
// persistence), and the validation report that admitted it.
type InstalledEntry struct {
	Kind    string
	Sources []string
	// Entry is the installed database entry; Entry.Render() is the DSL
	// form that reloads through symptoms.Parse in a later run.
	Entry symptoms.Entry
	// Validation is the report that passed it.
	Validation symptoms.Validation
}

// PendingCandidate is a proposed entry still in flight: deferred for
// more evidence, or validated and awaiting the operator's ack.
type PendingCandidate struct {
	Kind string
	// State says what the candidate is waiting for.
	State string
	// Support/Incidents mirror the candidate's mining support.
	Support, Incidents int
	// Rendered is the candidate in the admin DSL
	// (CandidateEntry.Render) — what an operator reviews and acks.
	Rendered string
	// Validation is the latest validation report.
	Validation symptoms.Validation
}

// RejectedCandidate is a retired candidate and why.
type RejectedCandidate struct {
	Kind   string
	Reason string
	// Validation is the report behind the rejection (zero for
	// rejections that never reached validation, like install errors).
	Validation symptoms.Validation
}

// LearnStats summarizes the learning loop's run.
type LearnStats struct {
	// Confirmed counts incidents fed to the miner; HeldOut the
	// confirmed incidents withheld for the validator's hold-out replay.
	Confirmed int
	HeldOut   int
	// Healthy is the healthy-corpus size feeding the miner's background
	// filter and the validator.
	Healthy int
	// Installed lists the entries installed, in install order.
	Installed []InstalledEntry
	// Pending lists candidates still in flight, in proposal order.
	Pending []PendingCandidate
	// Rejected lists retired candidates with reasons, in
	// rejection order.
	Rejected []RejectedCandidate
	// Transfers counts diagnoses where a mined entry scored high on an
	// instance that did not author it; TransferInstances lists the
	// benefiting instances (sorted).
	Transfers         int
	TransferInstances []string
}

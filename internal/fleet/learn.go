package fleet

import (
	"sort"

	"diads/internal/diag"
	"diads/internal/monitor"
	"diads/internal/service"
	"diads/internal/symptoms"
)

// confirmConfidence is the diagnosis confidence an incident needs before
// the fleet treats it as expert-confirmed and feeds it to the miner —
// the paper's High category boundary.
const confirmConfidence = 80

// LearnConfig tunes the cross-instance symptom-learning loop, the
// paper's Section 7 self-evolving symptoms database closed at fleet
// scale: confirmed incidents on some instances are mined into candidate
// entries, accepted candidates are installed into the fleet-shared
// database, and subsequent diagnoses on *other* instances evaluate them.
type LearnConfig struct {
	// Disabled switches the loop off (the before-side of the fleet
	// experiment's before/after comparison).
	Disabled bool
	// MinIncidents is how many confirmed incidents of a cause kind the
	// miner needs before proposing an entry (default 2).
	MinIncidents int
	// ConfirmEvents is how many slowdown events an incident must
	// accumulate at high confidence before it counts as confirmed
	// (default 2) — standing in for the expert's review.
	ConfirmEvents int
}

func (c LearnConfig) withDefaults() LearnConfig {
	if c.MinIncidents <= 0 {
		c.MinIncidents = 2
	}
	if c.ConfirmEvents <= 0 {
		c.ConfirmEvents = 2
	}
	return c
}

// incidentID is the registry identity of a confirmed incident.
type incidentID struct {
	instance, query, kind, subject string
}

// learnState is the loop's accumulated knowledge. All fields are guarded
// by Fleet.mu; the coordinator mutates them only while the service is
// quiescent, so diagnosis workers always evaluate a stable database.
type learnState struct {
	miner symptoms.Miner
	// fed marks incidents already given to the miner.
	fed map[incidentID]bool
	// sources accumulates, per prospective mined kind, the instances
	// whose confirmed incidents support it.
	sources map[string]map[string]bool
	// authors freezes sources at install time: instances that confirmed
	// after the entry was installed are beneficiaries, not authors.
	authors map[string]map[string]bool
	// installedOrder lists installed mined kinds in install order.
	installedOrder []string
	confirmed      int
	transfers      int
	transferredTo  map[string]bool
}

func newLearnState() learnState {
	return learnState{
		fed:           make(map[incidentID]bool),
		sources:       make(map[string]map[string]bool),
		authors:       make(map[string]map[string]bool),
		transferredTo: make(map[string]bool),
	}
}

// learnStep runs between evidence-time waves while the service is
// quiescent: feed newly-confirmed incidents to the miner, then install
// newly-proposed candidates into the shared database. Installation bumps
// the database version, which invalidates cached symptoms evaluations,
// so the entry takes effect on the very next wave's diagnoses.
func (f *Fleet) learnStep() {
	if f.cfg.Learn.Disabled {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, inc := range f.svc.Registry().Incidents() {
		if inc.Kind == service.PlanChangeKind || symptoms.IsMined(inc.Kind) {
			continue
		}
		if inc.Confidence < confirmConfidence || inc.Events < f.cfg.Learn.ConfirmEvents {
			continue
		}
		if inc.Result == nil || inc.Result.Facts == nil {
			continue
		}
		id := incidentID{inc.Instance, inc.Query, inc.Kind, inc.Subject}
		if f.learn.fed[id] {
			continue
		}
		f.learn.fed[id] = true
		f.learn.confirmed++
		f.learn.miner.AddIncident(symptoms.Incident{
			Facts: inc.Result.Facts, CauseKind: inc.Kind, Subject: inc.Subject,
		})
		mined := inc.Kind + symptoms.MinedSuffix
		if f.learn.sources[mined] == nil {
			f.learn.sources[mined] = make(map[string]bool)
		}
		f.learn.sources[mined][inc.Instance] = true
	}
	for _, cand := range f.learn.miner.Propose(f.cfg.Learn.MinIncidents) {
		if f.learn.authors[cand.CauseKind] != nil {
			continue // already installed
		}
		if err := f.symdb.Add(cand.Entry()); err != nil {
			continue // unbalanced weights; never expected from the miner
		}
		authors := make(map[string]bool, len(f.learn.sources[cand.CauseKind]))
		for inst := range f.learn.sources[cand.CauseKind] {
			authors[inst] = true
		}
		f.learn.authors[cand.CauseKind] = authors
		f.learn.installedOrder = append(f.learn.installedOrder, cand.CauseKind)
	}
}

// onDiagnosis observes every completed diagnosis (called from service
// workers): a mined entry scoring high in a diagnosis on an instance
// that did not author it is a successful cross-instance symptom
// transfer. The counters are commutative, so concurrent completion
// order cannot change the final report.
func (f *Fleet) onDiagnosis(ev monitor.SlowdownEvent, res *diag.Result) {
	if f.cfg.Learn.Disabled {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range res.Causes {
		if !symptoms.IsMined(c.Kind) || c.Confidence < confirmConfidence {
			continue
		}
		authors := f.learn.authors[c.Kind]
		if authors == nil || authors[ev.Instance] {
			continue
		}
		f.learn.transfers++
		f.learn.transferredTo[ev.Instance] = true
		if st := f.byID[ev.Instance]; st != nil {
			st.transfers++
		}
	}
}

// InstalledEntry describes one mined entry installed into the shared
// database and the instances whose confirmed incidents authored it.
type InstalledEntry struct {
	Kind    string
	Sources []string
}

// LearnStats summarizes the learning loop's run.
type LearnStats struct {
	// Confirmed counts incidents fed to the miner.
	Confirmed int
	// Installed lists the mined entries installed, in install order.
	Installed []InstalledEntry
	// Transfers counts diagnoses where a mined entry scored high on an
	// instance that did not author it; TransferInstances lists the
	// benefiting instances (sorted).
	Transfers         int
	TransferInstances []string
}

// learnStats snapshots the loop's outcome for the report.
func (f *Fleet) learnStats() LearnStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := LearnStats{
		Confirmed: f.learn.confirmed,
		Transfers: f.learn.transfers,
	}
	for _, kind := range f.learn.installedOrder {
		e := InstalledEntry{Kind: kind}
		for inst := range f.learn.authors[kind] {
			e.Sources = append(e.Sources, inst)
		}
		sort.Strings(e.Sources)
		out.Installed = append(out.Installed, e)
	}
	for inst := range f.learn.transferredTo {
		out.TransferInstances = append(out.TransferInstances, inst)
	}
	sort.Strings(out.TransferInstances)
	return out
}

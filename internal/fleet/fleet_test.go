// Fleet tests live in an external test package so they can assemble
// realistic instances through the shared online-scenario builder in
// internal/experiments (which itself imports fleet).
package fleet_test

import (
	"testing"

	"diads/internal/experiments"
	"diads/internal/symptoms"
	"diads/internal/testbed"
)

const testSeed = 400

// TestFleetDeterministicAcrossConcurrency pins the tentpole's
// determinism contract: the grouped fleet report is byte-identical for a
// seed across repeated runs, across MaxStreams settings (how many
// instances simulate concurrently), and across service worker counts.
// Run under -race this also proves the barrier coordination is sound.
func TestFleetDeterministicAcrossConcurrency(t *testing.T) {
	base := experiments.FleetSpec{
		Seed: testSeed, Instances: 8, Degraded: 6, Runs: 12,
	}
	configs := []struct {
		name string
		spec experiments.FleetSpec
	}{
		{"concurrent", base},
		{"concurrent-again", base},
		{"sequential-streams-single-worker", func() experiments.FleetSpec {
			s := base
			s.MaxStreams, s.Workers = 1, 1
			return s
		}()},
	}
	var want string
	for _, c := range configs {
		rep, _, err := experiments.RunFleetSpec(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Stats.Rejected != 0 || rep.Stats.Failed != 0 {
			t.Fatalf("%s: rejected=%d failed=%d, want 0/0",
				c.name, rep.Stats.Rejected, rep.Stats.Failed)
		}
		got := rep.Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: report diverged from the first run\n--- want ---\n%s\n--- got ---\n%s",
				c.name, want, got)
		}
	}
}

// TestFleetDeterministicAcrossShards pins the sharded tentpole's
// contract: the merged fleet report is byte-identical for a seed across
// shard counts 1/2/4/8 and across repeated runs of the same sharded
// configuration. Under -race this also proves the shard coordinators,
// the fleet-wide stream semaphore, and the epoch-seal learning exchange
// share no unsynchronized state.
func TestFleetDeterministicAcrossShards(t *testing.T) {
	base := experiments.FleetSpec{
		Seed: testSeed, Instances: 8, Degraded: 6, Runs: 12,
	}
	var want string
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=2", 2},
		{"shards=4", 4},
		{"shards=4-again", 4},
		{"shards=8", 8},
		{"shards=8-again", 8},
	} {
		s := base
		s.Shards = cfg.shards
		rep, _, err := experiments.RunFleetSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if rep.Stats.Rejected != 0 || rep.Stats.Failed != 0 {
			t.Fatalf("%s: rejected=%d failed=%d, want 0/0",
				cfg.name, rep.Stats.Rejected, rep.Stats.Failed)
		}
		if rep.Learning.Transfers == 0 || len(rep.Learning.Installed) == 0 {
			t.Fatalf("%s: learning went dead (installed=%d transfers=%d)",
				cfg.name, len(rep.Learning.Installed), rep.Learning.Transfers)
		}
		got := rep.Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: report diverged from the shards=1 run\n--- want ---\n%s\n--- got ---\n%s",
				cfg.name, want, got)
		}
	}
}

// TestFleetGroupsSharedPoolAcrossSeeds sweeps seeds on the shared-pool
// scenario: the misconfiguration must always fold into one correlated
// cross-instance incident ranked first, spanning exactly the attached
// instances, with the healthy instances untouched.
func TestFleetGroupsSharedPoolAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rep, _, err := experiments.RunFleetSpec(experiments.FleetSpec{
			Seed: seed, Instances: 4, Degraded: 3, Runs: 12,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := rep.SharedGroup()
		if g == nil {
			t.Fatalf("seed %d: no cross-instance group\n%s", seed, rep.Render())
		}
		if len(rep.Groups) == 0 || !rep.Groups[0].Shared {
			t.Errorf("seed %d: shared incident not ranked first", seed)
		}
		if g.Kind != symptoms.CauseSANMisconfig || g.Subject != string(testbed.VolV1) {
			t.Errorf("seed %d: group = %s(%s), want %s(%s)",
				seed, g.Kind, g.Subject, symptoms.CauseSANMisconfig, testbed.VolV1)
		}
		if len(g.Parts) != 3 {
			t.Errorf("seed %d: group spans %d instances, want the 3 degraded ones",
				seed, len(g.Parts))
		}
		for _, p := range g.Parts {
			if p.Instance == "inst-3" {
				t.Errorf("seed %d: healthy instance %s in the shared group", seed, p.Instance)
			}
		}
		for _, ir := range rep.Instances[3:] {
			if ir.Events != 0 || ir.Incidents != 0 {
				t.Errorf("seed %d: healthy %s has events=%d incidents=%d",
					seed, ir.ID, ir.Events, ir.Incidents)
			}
		}
	}
}

package fleet

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"diads/internal/service"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/telemetry"
)

// errAborted unwinds exchange waiters when the fleet fails: waitSealed
// must not block forever once no shard will declare again.
var errAborted = errors.New("fleet: learning exchange aborted")

// epochOf maps an evidence time onto its learning epoch: epoch k covers
// read-window ends in (k*E, (k+1)*E]. The half-open-below shape matches
// the gates' inclusive release (End <= watermark): when a shard's
// frontier reaches the boundary (k+1)*E, every epoch-k event has been
// released, so the epoch is complete exactly at its boundary.
func epochOf(t simtime.Time, e simtime.Duration) int64 {
	k := int64(math.Ceil(float64(t)/float64(e))) - 1
	if k < 0 {
		k = 0
	}
	return k
}

// epochDone is the declaration a shard makes when nothing below any
// finite evidence time can ever arrive again (all its instances
// finished, their tails fully released).
const epochDone = math.MaxInt64

// completeThrough returns the highest epoch the frontier proves
// complete: every event with a read-window end in that epoch has been
// released. The frontier is the minimum watermark over a shard's alive
// instances (+Inf when all finished).
func completeThrough(frontier simtime.Time, e simtime.Duration) int64 {
	if float64(frontier) >= math.MaxFloat64 {
		return epochDone
	}
	k := epochOf(frontier, e)
	if float64(frontier) >= float64(k+1)*float64(e) {
		return k
	}
	return k - 1
}

// confirmation is one shard's deposit of a newly-confirmed incident:
// the incident snapshot at the evidence-time wave where it crossed the
// confirmation gate. The (waveEnd, identity) key gives the seal a total
// order over deposits that is a function of the event stream alone —
// independent of shard count, chunk size, and worker interleaving.
type confirmation struct {
	waveEnd simtime.Time
	inc     service.Incident
}

// exchange is the asynchronous symptom-learning exchange between the
// shards and the central learner. Shards deposit healthy-period fact
// bases and confirmed incidents tagged with their evidence-time epoch,
// declare epochs complete as their release frontiers pass epoch
// boundaries, and the exchange folds each epoch's deposits into the
// learner — observe, then step — exactly once, when every shard has
// declared it: the epoch's seal. Installs therefore happen at
// deterministic epoch boundaries (bumping symptoms.DB.Version, which
// the SD cache key respects), and a shard diagnoses an epoch-e wave
// only after seal(e-1), so every diagnosis sees exactly the database
// the epoch ordering dictates — never a mid-wave install.
//
// The exchange replaces the per-wave global learn barrier: shards
// synchronize once per epoch instead of once per wave, and never on
// the diagnosis hot path.
type exchange struct {
	mu       sync.Mutex
	cond     sync.Cond // signaled under mu when the seal advances
	learn    *learner
	epoch    simtime.Duration
	disabled bool

	declared []int64 // per shard, highest epoch declared complete
	sealed   int64   // highest epoch folded into the learner
	maxReq   int64   // highest epoch any deposit or waiter needs sealed
	aborted  bool

	healthy  map[int64][]*symptoms.FactBase
	confirms map[int64][]confirmation

	learnSec *telemetry.Histogram
	sealsTel *telemetry.Counter
}

func newExchange(cfg LearnConfig, l *learner, shards int) *exchange {
	ex := &exchange{
		learn:    l,
		epoch:    cfg.Epoch,
		disabled: cfg.Disabled,
		declared: make([]int64, shards),
		sealed:   -1,
		maxReq:   -1,
		healthy:  make(map[int64][]*symptoms.FactBase),
		confirms: make(map[int64][]confirmation),
	}
	ex.cond.L = &ex.mu
	for i := range ex.declared {
		ex.declared[i] = -1
	}
	reg := telemetry.Default()
	ex.learnSec = reg.Histogram("diads_fleet_learn_step_seconds",
		"Wall time of one symptom-learning epoch seal.",
		nil, nil)
	ex.sealsTel = reg.Counter("diads_fleet_epoch_seals_total",
		"Learning epochs sealed (deposits folded into the learner).", nil)
	return ex
}

// depositHealthy records a healthy-period fact base under its epoch.
// Safe from shard coordinators and service workers alike.
func (ex *exchange) depositHealthy(epoch int64, fb *symptoms.FactBase) {
	if ex.disabled || fb == nil {
		return
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if epoch <= ex.sealed {
		// A healthy base surfacing after its epoch sealed (possible only
		// through scheduling skew in the depositing worker) would make
		// learner state depend on timing; fold it into the next unsealed
		// epoch instead, which is deterministic. The coordinator protocol
		// prevents this for its own deposits; this is a backstop.
		epoch = ex.sealed + 1
	}
	ex.healthy[epoch] = append(ex.healthy[epoch], fb)
	if epoch > ex.maxReq {
		ex.maxReq = epoch
	}
}

// depositConfirm records a newly-confirmed incident under its epoch.
func (ex *exchange) depositConfirm(epoch int64, c confirmation) {
	if ex.disabled {
		return
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if epoch <= ex.sealed {
		epoch = ex.sealed + 1
	}
	ex.confirms[epoch] = append(ex.confirms[epoch], c)
	if epoch > ex.maxReq {
		ex.maxReq = epoch
	}
}

// declare marks every epoch up to e complete for the shard and seals
// whatever the fleet-wide minimum now allows. Sealing runs inline in
// whichever declare crossed the threshold; the learner state transition
// is a pure function of the deposits, so which shard's goroutine runs
// it cannot matter.
func (ex *exchange) declare(shardID int, e int64) {
	if ex.disabled {
		return
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if e > ex.declared[shardID] {
		ex.declared[shardID] = e
	}
	ex.sealLocked()
}

// waitSealed blocks until epoch e is sealed (trivially true for e < 0).
// The caller must have declared at least e already, or it would wait on
// its own missing declaration.
func (ex *exchange) waitSealed(e int64) error {
	if ex.disabled || e < 0 {
		return nil
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if e > ex.maxReq {
		ex.maxReq = e
		ex.sealLocked()
	}
	for ex.sealed < e {
		if ex.aborted {
			return errAborted
		}
		ex.cond.Wait()
	}
	return nil
}

// abort wakes every waiter with an error; called when the fleet fails.
func (ex *exchange) abort() {
	ex.mu.Lock()
	ex.aborted = true
	ex.cond.Broadcast()
	ex.mu.Unlock()
}

// sealLocked advances the seal to min(lowest declaration, highest
// requested epoch), folding each epoch's deposits into the learner in
// deposit-order-free sorted order. Requires ex.mu.
func (ex *exchange) sealLocked() {
	limit := ex.maxReq
	for _, d := range ex.declared {
		if d < limit {
			limit = d
		}
	}
	progressed := false
	for ex.sealed < limit {
		ex.sealed++
		ex.foldLocked(ex.sealed)
		progressed = true
	}
	if progressed {
		ex.cond.Broadcast()
	}
}

// foldLocked runs one epoch's learn step: healthy bases first (sorted
// by fingerprint — corpus content is a set, so any canonical order
// works), then confirmations in (waveEnd, instance, query, kind,
// subject) order — the order the event stream alone dictates — then one
// lifecycle step. Installs here bump the shared database version; no
// shard is mid-wave for any epoch <= sealed, so no diagnosis ever
// observes a half-applied install.
func (ex *exchange) foldLocked(epoch int64) {
	healthy := ex.healthy[epoch]
	confirms := ex.confirms[epoch]
	delete(ex.healthy, epoch)
	delete(ex.confirms, epoch)
	if len(healthy) == 0 && len(confirms) == 0 {
		// Nothing to fold: skip the (deterministically idempotent) step
		// so empty trailing epochs cost nothing.
		ex.sealsTel.Inc()
		return
	}
	//lint:allow walltime telemetry-only wall timing of the learn fold; never enters evidence
	start := time.Now()
	sort.Slice(healthy, func(i, j int) bool {
		return healthy[i].Fingerprint() < healthy[j].Fingerprint()
	})
	for _, fb := range healthy {
		ex.learn.addHealthy(fb)
	}
	sort.Slice(confirms, func(i, j int) bool {
		a, b := confirms[i], confirms[j]
		if a.waveEnd != b.waveEnd {
			return a.waveEnd < b.waveEnd
		}
		if a.inc.Instance != b.inc.Instance {
			return a.inc.Instance < b.inc.Instance
		}
		if a.inc.Query != b.inc.Query {
			return a.inc.Query < b.inc.Query
		}
		if a.inc.Kind != b.inc.Kind {
			return a.inc.Kind < b.inc.Kind
		}
		return a.inc.Subject < b.inc.Subject
	})
	if len(confirms) > 0 {
		incs := make([]service.Incident, len(confirms))
		for i, c := range confirms {
			incs[i] = c.inc
		}
		ex.learn.observe(incs)
	}
	ex.learn.step()
	ex.sealsTel.Inc()
	//lint:allow walltime telemetry-only wall timing of the learn fold; never enters evidence
	ex.learnSec.Observe(time.Since(start).Seconds())
}

// transferIn forwards a mined-entry hit to the learner under the
// exchange lock (called from service workers via onDiagnosis). Author
// sets are frozen at install seals, so the answer is a function of the
// diagnosis's epoch, not of worker scheduling.
func (ex *exchange) transferIn(kind, instance string) bool {
	if ex.disabled {
		return false
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.learn.transferIn(kind, instance)
}

// stats snapshots the learner's lifecycle for the report.
func (ex *exchange) stats() LearnStats {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.learn.stats()
}

// read runs fn on the learner under the exchange lock; scrape-time
// telemetry callbacks use it.
func (ex *exchange) read(fn func(l *learner) float64) float64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return fn(ex.learn)
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"diads/internal/simtime"
)

func TestCatalogMatchesFigure4(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog should have 4 layers, got %d", len(cat))
	}
	// Spot-check the metrics the paper names explicitly.
	wantStorage := []Metric{StBytesRead, StBytesWritten, StTotalIOs, VolWriteIO, VolWriteTime}
	for _, m := range wantStorage {
		if !containsMetric(cat[LayerStorage], m) {
			t.Errorf("storage layer missing %q", m)
		}
	}
	if !containsMetric(cat[LayerServer], SrvCPUUsagePct) {
		t.Errorf("server layer missing CPU usage")
	}
	if !containsMetric(cat[LayerNetwork], NetCRCErrors) {
		t.Errorf("network layer missing CRC errors")
	}
	if !containsMetric(cat[LayerDatabase], DBBufferHits) {
		t.Errorf("database layer missing buffer hits")
	}
	for _, l := range Layers() {
		if len(cat[l]) == 0 {
			t.Errorf("layer %s empty", l)
		}
	}
}

func containsMetric(ms []Metric, m Metric) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func TestStoreAppendAndWindow(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.MustAppend("vol-V1", VolWriteIO, Sample{T: simtime.Time(i * 300), V: float64(i)})
	}
	if s.Len() != 10 {
		t.Fatalf("Len: got %d", s.Len())
	}
	w := s.Window("vol-V1", VolWriteIO, simtime.NewInterval(600, 1500))
	if len(w) != 3 {
		t.Fatalf("window [600,1500): got %d samples, want 3", len(w))
	}
	if w[0].V != 2 || w[2].V != 4 {
		t.Fatalf("window content wrong: %+v", w)
	}
	mean, n := s.WindowMean("vol-V1", VolWriteIO, simtime.NewInterval(600, 1500))
	if n != 3 || mean != 3 {
		t.Fatalf("WindowMean: got mean=%v n=%d", mean, n)
	}
}

func TestStoreRejectsOutOfOrder(t *testing.T) {
	s := NewStore()
	s.MustAppend("c", VolReadIO, Sample{T: 100, V: 1})
	if err := s.Append("c", VolReadIO, Sample{T: 50, V: 2}); err == nil {
		t.Fatalf("out-of-order append should fail")
	}
}

func TestStoreEmptyWindow(t *testing.T) {
	s := NewStore()
	if w := s.Window("missing", VolReadIO, simtime.NewInterval(0, 100)); len(w) != 0 {
		t.Fatalf("missing series should yield empty window")
	}
	mean, n := s.WindowMean("missing", VolReadIO, simtime.NewInterval(0, 100))
	if mean != 0 || n != 0 {
		t.Fatalf("missing series mean should be (0,0)")
	}
}

func TestStoreKeysDeterministic(t *testing.T) {
	s := NewStore()
	s.MustAppend("b", VolReadIO, Sample{T: 1, V: 1})
	s.MustAppend("a", VolWriteIO, Sample{T: 1, V: 1})
	s.MustAppend("a", VolReadIO, Sample{T: 1, V: 1})
	keys := s.Keys()
	if len(keys) != 3 {
		t.Fatalf("got %d keys", len(keys))
	}
	if keys[0].Component != "a" || keys[0].Metric != VolReadIO {
		t.Fatalf("keys not sorted: %v", keys)
	}
	comps := s.Components()
	if len(comps) != 2 || comps[0] != "a" || comps[1] != "b" {
		t.Fatalf("Components: %v", comps)
	}
	if ms := s.MetricsFor("a"); len(ms) != 2 {
		t.Fatalf("MetricsFor(a): %v", ms)
	}
}

func TestReadWindowPadding(t *testing.T) {
	iv := simtime.NewInterval(1000, 1600)
	rw := ReadWindow(iv)
	if rw.Start != iv.Start.Add(-DefaultMonitorInterval) || rw.End != iv.End.Add(DefaultMonitorInterval) {
		t.Fatalf("ReadWindow(%v) = %v, want one monitoring interval of padding each side", iv, rw)
	}
	if rw.Length() != iv.Length()+2*DefaultMonitorInterval {
		t.Fatalf("length %v, want %v", rw.Length(), iv.Length()+2*DefaultMonitorInterval)
	}
	// A zero-length activity window still reads a full two-interval
	// evidence window around its instant.
	z := ReadWindow(simtime.NewInterval(500, 500))
	if z.Length() != 2*DefaultMonitorInterval {
		t.Fatalf("zero-length window read %v, want %v", z.Length(), 2*DefaultMonitorInterval)
	}
	if !z.Contains(500) {
		t.Fatalf("read window %v should contain its activity instant", z)
	}
	// Padding composes: the console's context view is two applications.
	if got := ReadWindow(rw); got.Length() != iv.Length()+4*DefaultMonitorInterval {
		t.Fatalf("double padding length %v", got.Length())
	}
}

func TestSamplerAveragesConstant(t *testing.T) {
	s := NewStore()
	sp := NewSampler(0, 0)
	iv := simtime.NewInterval(0, simtime.Time(30*simtime.Minute))
	sp.Record(s, "vol", VolWriteIO, iv, func(simtime.Time) float64 { return 42 })
	ser := s.Series("vol", VolWriteIO)
	if len(ser) != 6 {
		t.Fatalf("30 min / 5 min: want 6 samples, got %d", len(ser))
	}
	for _, smp := range ser {
		if math.Abs(smp.V-42) > 1e-9 {
			t.Fatalf("constant fn should average to itself, got %v", smp.V)
		}
	}
}

func TestSamplerAveragesOutBursts(t *testing.T) {
	// A 30-second burst of 100 inside a 5-minute interval of baseline 10
	// must be smeared to roughly 10 + 100*(30/300) = 19: the paper's "noisy
	// data" effect where instantaneous spikes get averaged out.
	s := NewStore()
	sp := NewSampler(0, 0)
	iv := simtime.NewInterval(0, simtime.Time(5*simtime.Minute))
	fn := func(t simtime.Time) float64 {
		if t >= 60 && t < 90 {
			return 110
		}
		return 10
	}
	sp.Record(s, "vol", VolWriteIO, iv, fn)
	ser := s.Series("vol", VolWriteIO)
	if len(ser) != 1 {
		t.Fatalf("want 1 sample, got %d", len(ser))
	}
	if math.Abs(ser[0].V-20) > 1.0 {
		t.Fatalf("burst should be averaged to ~20, got %v", ser[0].V)
	}
}

func TestSamplerNoiseIsDeterministic(t *testing.T) {
	run := func() []Sample {
		s := NewStore()
		sp := NewSampler(0.1, 5)
		iv := simtime.NewInterval(0, simtime.Time(time30()))
		sp.Record(s, "v", VolReadTime, iv, func(simtime.Time) float64 { return 5 })
		return s.Series("v", VolReadTime)
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("bad series lengths %d %d", len(a), len(b))
	}
	noisy := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give identical noisy samples")
		}
		if math.Abs(a[i].V-5) > 1e-12 {
			noisy = true
		}
	}
	if !noisy {
		t.Fatalf("noise sigma 0.1 should perturb samples")
	}
}

// TestSamplerNoiseIsOrderAndChunkInvariant pins the two properties the
// chunk-size determinism of the online pipeline rests on: a series'
// noise stream depends only on (seed, component, metric) and its own
// sample count, so (i) emitting series in a different order and (ii)
// splitting the emission window into grid-aligned chunks both produce
// byte-identical samples.
func TestSamplerNoiseIsOrderAndChunkInvariant(t *testing.T) {
	fn := func(simtime.Time) float64 { return 5 }
	end := simtime.Time(17 * simtime.Minute) // 3 full intervals + a partial tail

	// One batch emission, series A before B.
	batch := NewStore()
	sp := NewSampler(0.1, 9)
	sp.Record(batch, "a", VolReadTime, simtime.NewInterval(0, end), fn)
	sp.Record(batch, "b", VolReadTime, simtime.NewInterval(0, end), fn)

	// Chunked emission on the monitoring grid, series B before A.
	chunked := NewStore()
	sp2 := NewSampler(0.1, 9)
	cuts := []simtime.Time{0, simtime.Time(5 * simtime.Minute), simtime.Time(15 * simtime.Minute), end}
	for i := 0; i+1 < len(cuts); i++ {
		iv := simtime.NewInterval(cuts[i], cuts[i+1])
		sp2.Record(chunked, "b", VolReadTime, iv, fn)
		sp2.Record(chunked, "a", VolReadTime, iv, fn)
	}

	for _, c := range []string{"a", "b"} {
		got, want := chunked.Series(c, VolReadTime), batch.Series(c, VolReadTime)
		if len(got) != 4 || len(got) != len(want) {
			t.Fatalf("series %s: %d chunked vs %d batch samples", c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("series %s sample %d: chunked %+v != batch %+v", c, i, got[i], want[i])
			}
		}
	}
}

func time30() simtime.Duration { return 30 * simtime.Minute }

func TestSamplerPartialTrailingInterval(t *testing.T) {
	s := NewStore()
	sp := NewSampler(0, 0)
	// 7 minutes of data with 5-minute intervals: one full + one partial.
	iv := simtime.NewInterval(0, simtime.Time(7*simtime.Minute))
	sp.Record(s, "v", VolReadIO, iv, func(simtime.Time) float64 { return 3 })
	ser := s.Series("v", VolReadIO)
	if len(ser) != 2 {
		t.Fatalf("want 2 samples, got %d", len(ser))
	}
	if ser[1].T != simtime.Time(7*simtime.Minute) {
		t.Fatalf("trailing sample should end at interval end, got %v", ser[1].T)
	}
}

func TestWindowMeanProperty(t *testing.T) {
	// WindowMean over the full series equals the arithmetic mean of values.
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewStore()
		var sum float64
		for i, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // avoid overflow in the reference sum
			}
			s.MustAppend("c", VolWriteTime, Sample{T: simtime.Time(i), V: v})
			sum += v
		}
		mean, n := s.WindowMean("c", VolWriteTime, simtime.NewInterval(0, simtime.Time(len(vals))))
		if n != len(vals) {
			return false
		}
		want := sum / float64(len(vals))
		return math.Abs(mean-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"diads/internal/simtime"
)

func fill(s *Store, component string, n int, v func(i int) float64) {
	for i := 0; i < n; i++ {
		s.MustAppend(component, VolReadIO, Sample{T: simtime.Time(i * 300), V: v(i)})
	}
}

func TestWindowStatsMatchesDirectComputation(t *testing.T) {
	s := NewStore()
	fill(s, "vol-V1", 100, func(i int) float64 { return 10 + 3*math.Sin(float64(i)) })
	iv := simtime.NewInterval(simtime.Time(20*300), simtime.Time(70*300))

	w := s.Window("vol-V1", VolReadIO, iv)
	var sum, sum2 float64
	for _, smp := range w {
		sum += smp.V
		sum2 += smp.V * smp.V
	}
	mean := sum / float64(len(w))
	std := math.Sqrt(sum2/float64(len(w)) - mean*mean)

	st := s.WindowStats("vol-V1", VolReadIO, iv)
	if st.N != len(w) {
		t.Fatalf("N = %d, want %d", st.N, len(w))
	}
	if math.Abs(st.Mean-mean) > 1e-9 || math.Abs(st.Std-std) > 1e-6 {
		t.Errorf("stats = %+v, want mean %.9f std %.9f", st, mean, std)
	}
	gotMean, n := s.WindowMean("vol-V1", VolReadIO, iv)
	if n != st.N || math.Abs(gotMean-st.Mean) > 1e-12 {
		t.Errorf("WindowMean = %.9f/%d disagrees with WindowStats", gotMean, n)
	}
}

func TestWindowStatsEmptyAndMissing(t *testing.T) {
	s := NewStore()
	if st := s.WindowStats("nope", VolReadIO, simtime.NewInterval(0, 100)); st.N != 0 || st.Mean != 0 {
		t.Errorf("missing series stats = %+v, want zero", st)
	}
	fill(s, "vol-V1", 10, func(int) float64 { return 5 })
	if st := s.WindowStats("vol-V1", VolReadIO, simtime.NewInterval(1e6, 2e6)); st.N != 0 {
		t.Errorf("empty window stats = %+v, want zero", st)
	}
	// Constant series: variance must clamp to exactly zero, not a
	// negative cancellation residue.
	st := s.WindowStats("vol-V1", VolReadIO, simtime.NewInterval(0, 1e6))
	if st.Std != 0 {
		t.Errorf("constant series std = %g, want 0", st.Std)
	}
}

func TestSinceCursorSeesOnlyNewSamples(t *testing.T) {
	s := NewStore()
	fill(s, "vol-V1", 5, func(i int) float64 { return float64(i) })

	got, cur := s.Since("vol-V1", VolReadIO, 0)
	if len(got) != 5 || cur != 5 {
		t.Fatalf("first read: %d samples, cursor %d, want 5/5", len(got), cur)
	}
	if again, cur2 := s.Since("vol-V1", VolReadIO, cur); len(again) != 0 || cur2 != 5 {
		t.Fatalf("idle read: %d samples, cursor %d, want 0/5", len(again), cur2)
	}
	s.MustAppend("vol-V1", VolReadIO, Sample{T: simtime.Time(5 * 300), V: 42})
	tail, cur3 := s.Since("vol-V1", VolReadIO, cur)
	if len(tail) != 1 || tail[0].V != 42 || cur3 != 6 {
		t.Fatalf("tail read: %v cursor %d, want one sample of 42, cursor 6", tail, cur3)
	}
	if missing, mcur := s.Since("ghost", VolReadIO, 3); missing != nil || mcur != 3 {
		t.Errorf("missing series must keep the cursor: got %v/%d", missing, mcur)
	}
}

func TestLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("vol-V1", VolReadIO); ok {
		t.Error("Latest on empty store reported a sample")
	}
	fill(s, "vol-V1", 3, func(i int) float64 { return float64(i) })
	smp, ok := s.Latest("vol-V1", VolReadIO)
	if !ok || smp.V != 2 {
		t.Errorf("Latest = %v/%v, want V=2", smp, ok)
	}
}

// TestConcurrentAppendAndQuery exercises the store the way the online
// pipeline does — the sampler appending while monitor and diagnosis
// workers read — and must pass under -race.
func TestConcurrentAppendAndQuery(t *testing.T) {
	s := NewStore()
	const writers, perWriter, reads = 8, 200, 200
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			comp := fmt.Sprintf("vol-%d", w)
			for i := 0; i < perWriter; i++ {
				s.MustAppend(comp, VolReadIO, Sample{T: simtime.Time(i), V: float64(i)})
				if i%2 == 0 {
					s.MustAppend(comp, VolReadTime, Sample{T: simtime.Time(i), V: 0.01})
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			cursor := 0
			comp := fmt.Sprintf("vol-%d", r%writers)
			for i := 0; i < reads; i++ {
				iv := simtime.NewInterval(0, simtime.Time(perWriter))
				st := s.WindowStats(comp, VolReadIO, iv)
				if st.N > 0 && (st.Mean < 0 || st.Std < 0) {
					t.Errorf("inconsistent stats under concurrency: %+v", st)
					return
				}
				var tail []Sample
				tail, cursor = s.Since(comp, VolReadIO, cursor)
				for j := 1; j < len(tail); j++ {
					if tail[j].T < tail[j-1].T {
						t.Error("Since returned out-of-order samples")
						return
					}
				}
				s.Len()
				s.Latest(comp, VolReadIO)
			}
		}(r)
	}
	wg.Wait()
	readers.Wait()

	if got, want := s.Len(), writers*(perWriter+perWriter/2); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		comp := fmt.Sprintf("vol-%d", w)
		st := s.WindowStats(comp, VolReadIO, simtime.NewInterval(0, simtime.Time(perWriter)))
		if st.N != perWriter {
			t.Errorf("%s: N = %d, want %d", comp, st.N, perWriter)
		}
		wantMean := float64(perWriter-1) / 2
		if math.Abs(st.Mean-wantMean) > 1e-9 {
			t.Errorf("%s: mean = %f, want %f", comp, st.Mean, wantMean)
		}
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	s := NewStore()
	s.MustAppend("c", VolReadIO, Sample{T: 100, V: 1})
	if err := s.Append("c", VolReadIO, Sample{T: 50, V: 2}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Equal timestamps are allowed (non-decreasing).
	if err := s.Append("c", VolReadIO, Sample{T: 100, V: 3}); err != nil {
		t.Fatalf("equal-timestamp append rejected: %v", err)
	}
}

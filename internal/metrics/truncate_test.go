package metrics

import (
	"math"
	"math/rand"
	"testing"

	"diads/internal/simtime"
)

// TestTruncateDropsWholeSegments pins the segment granularity: a
// truncation horizon inside a segment frees only the segments fully
// below it, and the retained sample set is exactly the suffix at or
// above the first surviving segment.
func TestTruncateDropsWholeSegments(t *testing.T) {
	s := NewStore()
	n := 3*segmentSize + 17
	fill(s, "vol-V1", n, func(i int) float64 { return float64(i) })

	// Horizon in the middle of the second segment: only segment 0 drops.
	horizon := simtime.Time((segmentSize + segmentSize/2) * 300)
	dropped := s.Truncate(horizon)
	if dropped != segmentSize {
		t.Fatalf("Truncate dropped %d samples, want %d (one whole segment)", dropped, segmentSize)
	}
	if got := s.Len(); got != n-segmentSize {
		t.Fatalf("Len = %d after truncation, want %d", got, n-segmentSize)
	}
	if got := s.Dropped(); got != segmentSize {
		t.Fatalf("Dropped = %d, want %d", got, segmentSize)
	}
	ser := s.Series("vol-V1", VolReadIO)
	if len(ser) != n-segmentSize || ser[0].T != simtime.Time(segmentSize*300) {
		t.Fatalf("retained series starts at %v (%d samples), want %v (%d)",
			ser[0].T, len(ser), simtime.Time(segmentSize*300), n-segmentSize)
	}
	// Re-truncating at the same horizon is a no-op.
	if again := s.Truncate(horizon); again != 0 {
		t.Fatalf("second Truncate dropped %d, want 0", again)
	}
}

// TestTruncateCursorsSurvive pins the Since contract across truncation:
// cursors are absolute, so a cursor taken before Truncate resumes at the
// first retained sample and never replays or skips live samples.
func TestTruncateCursorsSurvive(t *testing.T) {
	s := NewStore()
	fill(s, "vol-V1", segmentSize, func(i int) float64 { return float64(i) })
	firstHalf, cursor := s.Since("vol-V1", VolReadIO, 0)
	if len(firstHalf) != segmentSize || cursor != segmentSize {
		t.Fatalf("Since(0) = %d samples, cursor %d", len(firstHalf), cursor)
	}

	for i := segmentSize; i < 3*segmentSize; i++ {
		s.MustAppend("vol-V1", VolReadIO, Sample{T: simtime.Time(i * 300), V: float64(i)})
	}
	s.Truncate(simtime.Time(2 * segmentSize * 300)) // drops segments 0 and 1

	// The pre-truncation cursor points into the dropped prefix; it must
	// resume at the first retained sample.
	tail, next := s.Since("vol-V1", VolReadIO, cursor)
	if len(tail) != segmentSize || tail[0].T != simtime.Time(2*segmentSize*300) {
		t.Fatalf("post-truncation Since resumed at %v with %d samples, want %v with %d",
			tail[0].T, len(tail), simtime.Time(2*segmentSize*300), segmentSize)
	}
	if next != 3*segmentSize {
		t.Fatalf("cursor advanced to %d, want %d", next, 3*segmentSize)
	}
	if more, _ := s.Since("vol-V1", VolReadIO, next); len(more) != 0 {
		t.Fatalf("drained cursor returned %d samples, want 0", len(more))
	}

	// Appends continue seamlessly after truncation.
	s.MustAppend("vol-V1", VolReadIO, Sample{T: simtime.Time(3 * segmentSize * 300), V: 1})
	if latest, ok := s.Latest("vol-V1", VolReadIO); !ok || latest.T != simtime.Time(3*segmentSize*300) {
		t.Fatalf("Latest after post-truncation append = %v/%v", latest, ok)
	}
}

// TestTruncateFloatExactProperty is the retention contract's property
// test: for random series and random truncation points, WindowMean and
// WindowStats over any window at or above the horizon are BIT-identical
// before and after Truncate. Exactness (not approximate equality) is
// what lets the fleet run retention under its byte-determinism
// invariant, so the comparison is == on every float, not a tolerance.
func TestTruncateFloatExactProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 50 + rng.Intn(4*segmentSize)
		ref := NewStore() // never truncated
		cut := NewStore() // truncated mid-stream, possibly repeatedly
		vals := make([]float64, n)
		for i := range vals {
			// Mix magnitudes so cancellation would be visible if the
			// prefix-sum anchoring were wrong.
			vals[i] = math.Exp(rng.Float64()*8) * rng.Float64()
		}
		for i, v := range vals {
			smp := Sample{T: simtime.Time(i * 300), V: v}
			ref.MustAppend("vol-V1", VolReadIO, smp)
			cut.MustAppend("vol-V1", VolReadIO, smp)
		}
		horizon := simtime.Time(rng.Intn(n) * 300)
		cut.Truncate(horizon)

		// Probe random windows that start at or above the horizon,
		// including degenerate and over-long ones.
		for probe := 0; probe < 30; probe++ {
			start := horizon.Add(simtime.Duration(rng.Intn(n) * 150))
			end := start.Add(simtime.Duration(rng.Intn(n) * 300))
			iv := simtime.NewInterval(start, end)
			want := ref.WindowStats("vol-V1", VolReadIO, iv)
			got := cut.WindowStats("vol-V1", VolReadIO, iv)
			if want.N != got.N || want.Sum != got.Sum || want.Mean != got.Mean || want.Std != got.Std {
				t.Fatalf("trial %d horizon %v window %v: stats diverged after Truncate:\n  ref %+v\n  cut %+v",
					trial, horizon, iv, want, got)
			}
			wm, wn := ref.WindowMean("vol-V1", VolReadIO, iv)
			gm, gn := cut.WindowMean("vol-V1", VolReadIO, iv)
			if wm != gm || wn != gn {
				t.Fatalf("trial %d window %v: WindowMean diverged: ref %.17g/%d cut %.17g/%d",
					trial, iv, wm, wn, gm, gn)
			}
		}

		// Keep appending after truncation and re-check: the carried base
		// sums must anchor future aggregates too.
		for i := n; i < n+100; i++ {
			v := math.Exp(rng.Float64()*8) * rng.Float64()
			smp := Sample{T: simtime.Time(i * 300), V: v}
			ref.MustAppend("vol-V1", VolReadIO, smp)
			cut.MustAppend("vol-V1", VolReadIO, smp)
		}
		iv := simtime.NewInterval(horizon, simtime.Time((n+100)*300))
		want := ref.WindowStats("vol-V1", VolReadIO, iv)
		got := cut.WindowStats("vol-V1", VolReadIO, iv)
		if want.N != got.N || want.Sum != got.Sum || want.Mean != got.Mean || want.Std != got.Std {
			t.Fatalf("trial %d: post-truncation appends diverged:\n  ref %+v\n  cut %+v", trial, want, got)
		}
	}
}

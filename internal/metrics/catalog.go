// Package metrics provides the monitoring substrate of the DIADS
// reproduction: the catalog of performance metrics collected from the
// database and the SAN (Figure 4 of the paper), a time-series store
// standing in for the management tool's DB2 repository, and a sampler
// that reproduces the coarse, noisy monitoring of production
// environments (5-minute interval averages).
package metrics

// Metric identifies one performance attribute collected from a component.
type Metric string

// Layer classifies metrics by where they are collected, matching the four
// column groups of Figure 4.
type Layer string

// Metric layers.
const (
	LayerDatabase Layer = "Database"
	LayerServer   Layer = "Server"
	LayerNetwork  Layer = "Network"
	LayerStorage  Layer = "Storage"
)

// Database metrics (Figure 4, first column). Operator- and plan-level
// start/stop times and record counts are stored per run rather than as
// time series; the remaining database metrics are sampled series.
const (
	DBLocksHeld       Metric = "Locks Held"
	DBLockWaitTime    Metric = "Lock Wait Time"
	DBSpaceUsage      Metric = "Space Usage"
	DBBlocksRead      Metric = "Blocks Read"
	DBBufferHits      Metric = "Buffer Hits"
	DBIndexScans      Metric = "Index Scans"
	DBIndexReads      Metric = "Index Reads"
	DBIndexFetches    Metric = "Index Fetches"
	DBSequentialScans Metric = "Sequential Scans"
)

// Server metrics (Figure 4, second column).
const (
	SrvCPUUsagePct      Metric = "CPU Usage (%ge)"
	SrvCPUUsageMhz      Metric = "CPU Usage (Mhz)"
	SrvHandles          Metric = "Handles"
	SrvThreads          Metric = "Threads"
	SrvProcesses        Metric = "Processes"
	SrvHeapMemoryKB     Metric = "Heap Memory Usage(KB)"
	SrvPhysMemoryPct    Metric = "Physical Memory Usage (%)"
	SrvKernelMemoryKB   Metric = "Kernel Memory(KB)"
	SrvSwappedMemoryKB  Metric = "Memory Being Swapped(KB)"
	SrvReservedMemoryKB Metric = "Reserved Memory Capacity(KB)"
)

// Network (FC fabric) metrics (Figure 4, third column).
const (
	NetBytesTransmitted   Metric = "Bytes Transmitted"
	NetBytesReceived      Metric = "Bytes Received"
	NetPacketsTransmitted Metric = "Packets Transmitted"
	NetPacketsReceived    Metric = "Packets Received"
	NetLIPCount           Metric = "LIP Count"
	NetNOSCount           Metric = "NOS Count"
	NetErrorFrames        Metric = "Error Frames"
	NetDumpedFrames       Metric = "Dumped Frames"
	NetLinkFailures       Metric = "Link Failures"
	NetCRCErrors          Metric = "CRC Errors"
	NetAddressErrors      Metric = "Address Errors"
)

// Storage metrics (Figure 4, fourth column), plus the per-volume read/write
// rate and response-time metrics that Table 2 of the paper reports anomaly
// scores for (readIO, writeIO, readTime, writeTime).
const (
	StBytesRead          Metric = "Bytes Read"
	StBytesWritten       Metric = "Bytes Written"
	StContaminatingWr    Metric = "Contaminating Writes"
	StPhysReadOps        Metric = "PhysicalStorageRead Operations"
	StPhysReadTime       Metric = "Physical Storage Read Time"
	StPhysWriteOps       Metric = "PhysicalStorageWriteOperations"
	StPhysWriteTime      Metric = "Physical Storage Write Time"
	StSeqReadRequests    Metric = "Sequential Read Requests"
	StSeqWriteRequests   Metric = "Sequential Write Requests"
	StTotalIOs           Metric = "Total IOs"
	VolReadIO            Metric = "readIO"
	VolWriteIO           Metric = "writeIO"
	VolReadTime          Metric = "readTime"
	VolWriteTime         Metric = "writeTime"
	VolSequentialReadHit Metric = "Sequential Read Hits"
)

// Catalog returns every metric DIADS collects, grouped by layer, in the
// order of Figure 4. Experiment E10 regenerates Figure 4 from it.
func Catalog() map[Layer][]Metric {
	return map[Layer][]Metric{
		LayerDatabase: {
			DBLocksHeld, DBLockWaitTime, DBSpaceUsage, DBBlocksRead,
			DBBufferHits, DBIndexScans, DBIndexReads, DBIndexFetches,
			DBSequentialScans,
		},
		LayerServer: {
			SrvCPUUsagePct, SrvCPUUsageMhz, SrvHandles, SrvThreads,
			SrvProcesses, SrvHeapMemoryKB, SrvPhysMemoryPct,
			SrvKernelMemoryKB, SrvSwappedMemoryKB, SrvReservedMemoryKB,
		},
		LayerNetwork: {
			NetBytesTransmitted, NetBytesReceived, NetPacketsTransmitted,
			NetPacketsReceived, NetLIPCount, NetNOSCount, NetErrorFrames,
			NetDumpedFrames, NetLinkFailures, NetCRCErrors, NetAddressErrors,
		},
		LayerStorage: {
			StBytesRead, StBytesWritten, StContaminatingWr, StPhysReadOps,
			StPhysReadTime, StPhysWriteOps, StPhysWriteTime,
			StSeqReadRequests, StSeqWriteRequests, StTotalIOs,
			VolReadIO, VolWriteIO, VolReadTime, VolWriteTime,
			VolSequentialReadHit,
		},
	}
}

// Layers returns the catalog layers in Figure 4's column order.
func Layers() []Layer {
	return []Layer{LayerDatabase, LayerServer, LayerNetwork, LayerStorage}
}

package metrics

import (
	"diads/internal/simtime"
)

// DefaultMonitorInterval is the production monitoring interval the paper
// cites as typical ("5 minutes or higher"), which is what averages out
// spikes and produces noisy data.
const DefaultMonitorInterval = 5 * simtime.Minute

// TrueValueFunc reports the instantaneous "ground truth" value of a metric
// at simulated time t. The sampler integrates it over each monitoring
// interval; diagnosis code only ever sees the resulting averages.
type TrueValueFunc func(t simtime.Time) float64

// Sampler converts instantaneous component behaviour into the coarse,
// noisy series a production monitoring tool records.
type Sampler struct {
	// Interval is the monitoring interval (default 5 minutes).
	Interval simtime.Duration
	// SubStep is the integration step used to average the true value
	// across an interval.
	SubStep simtime.Duration
	// NoiseSigma is the log-normal measurement-noise sigma applied to each
	// recorded sample (0 disables noise).
	NoiseSigma float64
	// Rand supplies measurement noise; it must be non-nil if NoiseSigma > 0.
	Rand *simtime.Rand
}

// NewSampler returns a sampler with the production defaults: 5-minute
// intervals, 15-second integration steps, and the given noise level.
func NewSampler(noiseSigma float64, rnd *simtime.Rand) *Sampler {
	return &Sampler{
		Interval:   DefaultMonitorInterval,
		SubStep:    15 * simtime.Second,
		NoiseSigma: noiseSigma,
		Rand:       rnd,
	}
}

// Record samples fn over [iv.Start, iv.End) and appends one sample per
// monitoring interval to store under (component, metric). Sample timestamps
// are the interval end points, matching how monitoring agents report.
func (sp *Sampler) Record(store *Store, component string, metric Metric, iv simtime.Interval, fn TrueValueFunc) {
	step := sp.Interval
	if step <= 0 {
		step = DefaultMonitorInterval
	}
	sub := sp.SubStep
	if sub <= 0 || sub > step {
		sub = step / 10
	}
	for start := iv.Start; start < iv.End; start = start.Add(step) {
		end := start.Add(step)
		if end > iv.End {
			end = iv.End
		}
		avg := integrateMean(fn, start, end, sub)
		if sp.NoiseSigma > 0 && sp.Rand != nil {
			avg = sp.Rand.Jitter(avg, sp.NoiseSigma)
		}
		store.MustAppend(component, metric, Sample{T: end, V: avg})
	}
}

// WindowMeanFunc reports the exact time-average of a metric over an
// interval; used for rate metrics whose averages are linear in the
// underlying load segments.
type WindowMeanFunc func(iv simtime.Interval) float64

// RecordWindowMean appends one sample per monitoring interval using exact
// window means instead of numeric integration. This matches how counters
// behave in real monitoring agents: a 3-second I/O burst still moves the
// interval's average by its exact share.
func (sp *Sampler) RecordWindowMean(store *Store, component string, metric Metric, iv simtime.Interval, fn WindowMeanFunc) {
	step := sp.Interval
	if step <= 0 {
		step = DefaultMonitorInterval
	}
	for start := iv.Start; start < iv.End; start = start.Add(step) {
		end := start.Add(step)
		if end > iv.End {
			end = iv.End
		}
		avg := fn(simtime.NewInterval(start, end))
		if sp.NoiseSigma > 0 && sp.Rand != nil {
			avg = sp.Rand.Jitter(avg, sp.NoiseSigma)
		}
		store.MustAppend(component, metric, Sample{T: end, V: avg})
	}
}

// integrateMean averages fn over [start, end) with the given step using the
// midpoint rule, which is exact for the piecewise-constant load timelines
// the SAN performance model produces (as long as step divides the pieces).
func integrateMean(fn TrueValueFunc, start, end simtime.Time, step simtime.Duration) float64 {
	if end <= start {
		return fn(start)
	}
	var sum float64
	var n int
	for t := start; t < end; t = t.Add(step) {
		mid := t.Add(step / 2)
		if mid >= end {
			mid = t.Add(simtime.Duration(float64(end.Sub(t)) / 2))
		}
		sum += fn(mid)
		n++
	}
	if n == 0 {
		return fn(start)
	}
	return sum / float64(n)
}

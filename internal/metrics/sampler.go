package metrics

import (
	"diads/internal/simtime"
)

// DefaultMonitorInterval is the production monitoring interval the paper
// cites as typical ("5 minutes or higher"), which is what averages out
// spikes and produces noisy data.
const DefaultMonitorInterval = 5 * simtime.Minute

// ReadWindow pads an activity window (a run's or operator's [start, stop]
// span, or a slowdown event's run-history span) by the monitoring
// interval on both sides. It is the single definition of the evidence
// window the diagnosis layers read: coarse series contribute their
// nearest samples, and the monitor's Gate holds an event until the
// emission watermark covers the padded window, so a diagnosis never
// races metric emission. Every window-padded metric read in the
// codebase must go through this function — a second copy of the padding
// arithmetic is how the watermark and the read window drift apart.
func ReadWindow(iv simtime.Interval) simtime.Interval {
	return simtime.NewInterval(
		iv.Start.Add(-DefaultMonitorInterval),
		iv.End.Add(DefaultMonitorInterval))
}

// TrueValueFunc reports the instantaneous "ground truth" value of a metric
// at simulated time t. The sampler integrates it over each monitoring
// interval; diagnosis code only ever sees the resulting averages.
type TrueValueFunc func(t simtime.Time) float64

// Sampler converts instantaneous component behaviour into the coarse,
// noisy series a production monitoring tool records.
//
// Measurement noise is drawn from a per-series random stream derived
// from (Seed, component, metric), never from one shared stream: a
// series' noise then depends only on its own sample count, so emitting
// the timeline in chunks of any size — or adding new series — produces
// byte-identical samples to a single batch emission. Samplers are not
// safe for concurrent use.
type Sampler struct {
	// Interval is the monitoring interval (default 5 minutes). The
	// evidence-window contract (ReadWindow) pads reads by
	// DefaultMonitorInterval regardless of this setting, so an interval
	// coarser than the default leaves run windows without samples —
	// keep overrides at or below DefaultMonitorInterval.
	Interval simtime.Duration
	// SubStep is the integration step used to average the true value
	// across an interval.
	SubStep simtime.Duration
	// NoiseSigma is the log-normal measurement-noise sigma applied to each
	// recorded sample (0 disables noise).
	NoiseSigma float64
	// Seed derives the per-series noise streams.
	Seed int64

	rands map[SeriesKey]*simtime.Rand
}

// NewSampler returns a sampler with the production defaults: 5-minute
// intervals, 15-second integration steps, and the given noise level.
// The seed derives the per-series measurement-noise streams.
func NewSampler(noiseSigma float64, seed int64) *Sampler {
	return &Sampler{
		Interval:   DefaultMonitorInterval,
		SubStep:    15 * simtime.Second,
		NoiseSigma: noiseSigma,
		Seed:       seed,
	}
}

// rand returns the noise stream for one series, creating it on first use.
func (sp *Sampler) rand(component string, metric Metric) *simtime.Rand {
	k := SeriesKey{Component: component, Metric: metric}
	if r, ok := sp.rands[k]; ok {
		return r
	}
	if sp.rands == nil {
		sp.rands = make(map[SeriesKey]*simtime.Rand)
	}
	r := simtime.NewRand(sp.Seed, "sampler/"+k.String())
	sp.rands[k] = r
	return r
}

// jitter applies one series' measurement noise to a sample value.
func (sp *Sampler) jitter(component string, metric Metric, v float64) float64 {
	if sp.NoiseSigma <= 0 {
		return v
	}
	return sp.rand(component, metric).Jitter(v, sp.NoiseSigma)
}

// Record samples fn over [iv.Start, iv.End) and appends one sample per
// monitoring interval to store under (component, metric). Sample timestamps
// are the interval end points, matching how monitoring agents report. The
// sampling grid is anchored at iv.Start: callers emitting a timeline in
// chunks must pass windows starting on multiples of Interval (the
// testbed's emission watermark guarantees it), so chunked and batch
// emission produce identical sample sets.
func (sp *Sampler) Record(store *Store, component string, metric Metric, iv simtime.Interval, fn TrueValueFunc) {
	step := sp.Interval
	if step <= 0 {
		step = DefaultMonitorInterval
	}
	sub := sp.SubStep
	if sub <= 0 || sub > step {
		sub = step / 10
	}
	for start := iv.Start; start < iv.End; start = start.Add(step) {
		end := start.Add(step)
		if end > iv.End {
			end = iv.End
		}
		avg := integrateMean(fn, start, end, sub)
		store.MustAppend(component, metric, Sample{T: end, V: sp.jitter(component, metric, avg)})
	}
}

// WindowMeanFunc reports the exact time-average of a metric over an
// interval; used for rate metrics whose averages are linear in the
// underlying load segments.
type WindowMeanFunc func(iv simtime.Interval) float64

// RecordWindowMean appends one sample per monitoring interval using exact
// window means instead of numeric integration. This matches how counters
// behave in real monitoring agents: a 3-second I/O burst still moves the
// interval's average by its exact share. The grid-alignment requirement
// of Record applies here too.
func (sp *Sampler) RecordWindowMean(store *Store, component string, metric Metric, iv simtime.Interval, fn WindowMeanFunc) {
	step := sp.Interval
	if step <= 0 {
		step = DefaultMonitorInterval
	}
	for start := iv.Start; start < iv.End; start = start.Add(step) {
		end := start.Add(step)
		if end > iv.End {
			end = iv.End
		}
		avg := fn(simtime.NewInterval(start, end))
		store.MustAppend(component, metric, Sample{T: end, V: sp.jitter(component, metric, avg)})
	}
}

// integrateMean averages fn over [start, end) with the given step using the
// midpoint rule, which is exact for the piecewise-constant load timelines
// the SAN performance model produces (as long as step divides the pieces).
func integrateMean(fn TrueValueFunc, start, end simtime.Time, step simtime.Duration) float64 {
	if end <= start {
		return fn(start)
	}
	var sum float64
	var n int
	for t := start; t < end; t = t.Add(step) {
		mid := t.Add(step / 2)
		if mid >= end {
			mid = t.Add(simtime.Duration(float64(end.Sub(t)) / 2))
		}
		sum += fn(mid)
		n++
	}
	if n == 0 {
		return fn(start)
	}
	return sum / float64(n)
}

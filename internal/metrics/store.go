package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"diads/internal/simtime"
	"diads/internal/telemetry"
)

// Sample is one monitored observation: the value of a metric on a
// component, averaged over the monitoring interval ending at T.
type Sample struct {
	T simtime.Time
	V float64
}

// SeriesKey identifies one time series in the store.
type SeriesKey struct {
	Component string
	Metric    Metric
}

// String implements fmt.Stringer.
func (k SeriesKey) String() string {
	return fmt.Sprintf("%s/%s", k.Component, k.Metric)
}

// segmentSize is the number of samples per storage segment. Truncation
// frees memory a whole segment at a time, so the size trades truncation
// granularity (one segment of slack per series) against per-segment
// bookkeeping. At the 5-minute monitoring interval, 256 samples cover
// about 21 simulated hours.
const segmentSize = 256

// Process-wide retention accounting, exposed as callback-backed
// instruments: per-store registration is infeasible at fleet scale
// (thousands of stores), and the budget that matters — live heap — is a
// process property anyway.
var (
	liveSamples    atomic.Int64
	truncatedTotal atomic.Int64
)

func init() {
	reg := telemetry.Default()
	reg.GaugeFunc("diads_store_samples_live",
		"samples currently resident across all metric stores", nil,
		func() float64 { return float64(liveSamples.Load()) })
	reg.CounterFunc("diads_store_truncated_total",
		"samples dropped by retention truncation across all metric stores", nil,
		func() float64 { return float64(truncatedTotal.Load()) })
}

// TruncatedTotal reports the process-wide count of samples dropped by
// retention truncation — the number behind the
// diads_store_truncated_total instrument, exported so tests can assert
// a retention-enabled run actually truncated (parity alone would pass
// vacuously if retention never fired).
func TruncatedTotal() int64 { return truncatedTotal.Load() }

// segment is one fixed-size run of a series. Its prefix sums are
// ABSOLUTE — anchored to the series origin, not the segment start — so
// window aggregates computed after older segments are dropped subtract
// exactly the same floating-point values they did before, making
// truncation bit-invisible to every surviving window query.
type segment struct {
	start   int // absolute index of samples[0] within the series
	samples []Sample
	sum     []float64 // sum[i] = Σ series samples[:start+i+1].V
	sum2    []float64 // sum2[i] = Σ series samples[:start+i+1].V²
}

// series holds one time series as a list of segments plus running prefix
// sums of value and squared value, so any window aggregate (mean,
// variance) is a few binary searches and a subtraction instead of a
// scan. Appends stay O(1) amortized, which is what lets the online
// monitor query baselines on every new sample without re-reading
// history. Truncation drops whole leading segments and carries their
// final cumulative sums in baseSum/baseSum2, preserving the absolute
// anchoring.
type series struct {
	dropped  int     // absolute index of the first retained sample
	baseSum  float64 // cumulative sum through sample dropped-1
	baseSum2 float64 // cumulative sum of squares through sample dropped-1
	segs     []*segment
}

// live returns the number of retained samples.
func (ser *series) live() int {
	if len(ser.segs) == 0 {
		return 0
	}
	last := ser.segs[len(ser.segs)-1]
	return last.start + len(last.samples) - ser.dropped
}

// total returns the absolute sample count, dropped samples included.
// Absolute indices in [dropped, total) address retained samples.
func (ser *series) total() int { return ser.dropped + ser.live() }

// locate returns the segment holding the retained sample at absolute
// index abs and its in-segment offset. abs must be in [dropped, total).
func (ser *series) locate(abs int) (*segment, int) {
	si := sort.Search(len(ser.segs), func(i int) bool { return ser.segs[i].start > abs })
	seg := ser.segs[si-1]
	return seg, abs - seg.start
}

// at returns the retained sample at absolute index abs.
func (ser *series) at(abs int) Sample {
	seg, i := ser.locate(abs)
	return seg.samples[i]
}

// cumAt returns the absolute cumulative (sum, sum²) through sample abs.
// abs may be dropped-1 (the carried base) or any retained index.
func (ser *series) cumAt(abs int) (float64, float64) {
	if abs < ser.dropped {
		return ser.baseSum, ser.baseSum2
	}
	seg, i := ser.locate(abs)
	return seg.sum[i], seg.sum2[i]
}

// searchT returns the absolute index of the first retained sample with
// T >= t, or total() if there is none.
func (ser *series) searchT(t simtime.Time) int {
	si := sort.Search(len(ser.segs), func(i int) bool {
		seg := ser.segs[i]
		return seg.samples[len(seg.samples)-1].T >= t
	})
	if si == len(ser.segs) {
		return ser.total()
	}
	seg := ser.segs[si]
	j := sort.Search(len(seg.samples), func(i int) bool { return seg.samples[i].T >= t })
	return seg.start + j
}

// bounds returns the absolute index range [lo, hi) of retained samples
// inside iv. Callers must hold at least the read lock.
func (ser *series) bounds(iv simtime.Interval) (lo, hi int) {
	return ser.searchT(iv.Start), ser.searchT(iv.End)
}

// copyRange copies retained samples [lo, hi) (absolute indices) into a
// fresh slice.
func (ser *series) copyRange(lo, hi int) []Sample {
	if hi <= lo {
		return nil
	}
	out := make([]Sample, 0, hi-lo)
	for _, seg := range ser.segs {
		end := seg.start + len(seg.samples)
		if end <= lo {
			continue
		}
		if seg.start >= hi {
			break
		}
		from, to := 0, len(seg.samples)
		if lo > seg.start {
			from = lo - seg.start
		}
		if hi < end {
			to = hi - seg.start
		}
		out = append(out, seg.samples[from:to]...)
	}
	return out
}

// append adds one sample with absolute cumulative sums carried from the
// previous sample (or the truncation base). size is the capacity of any
// new segment; a partially-filled trailing segment keeps its own.
func (ser *series) append(sample Sample, size int) {
	cum, cum2 := ser.baseSum, ser.baseSum2
	if n := ser.total(); n > ser.dropped {
		cum, cum2 = ser.cumAt(n - 1)
	}
	var seg *segment
	if n := len(ser.segs); n > 0 && len(ser.segs[n-1].samples) < cap(ser.segs[n-1].samples) {
		seg = ser.segs[n-1]
	} else {
		seg = &segment{
			start:   ser.total(),
			samples: make([]Sample, 0, size),
			sum:     make([]float64, 0, size),
			sum2:    make([]float64, 0, size),
		}
		ser.segs = append(ser.segs, seg)
	}
	seg.samples = append(seg.samples, sample)
	seg.sum = append(seg.sum, cum+sample.V)
	seg.sum2 = append(seg.sum2, cum2+sample.V*sample.V)
}

// truncate drops whole leading segments whose samples all lie strictly
// before the horizon, carrying their final cumulative sums so surviving
// aggregates are bit-identical. It returns the number of samples
// dropped.
func (ser *series) truncate(before simtime.Time) int {
	n := 0
	for len(ser.segs) > 0 {
		seg := ser.segs[0]
		if seg.samples[len(seg.samples)-1].T >= before {
			break
		}
		ser.baseSum = seg.sum[len(seg.sum)-1]
		ser.baseSum2 = seg.sum2[len(seg.sum2)-1]
		ser.dropped += len(seg.samples)
		n += len(seg.samples)
		ser.segs[0] = nil
		ser.segs = ser.segs[1:]
	}
	return n
}

// Store is the central monitoring repository, standing in for the
// management tool's DB2 time-series database. Samples for a series must be
// appended in non-decreasing time order, which is how the sampler produces
// them. All methods are safe for concurrent use.
//
// The store is retention-aware: Truncate drops evidence older than a
// horizon, segment by segment, and every cursor and aggregate is
// expressed in absolute sample indices so truncation is invisible to
// readers of the surviving window (see DESIGN.md "Memory model &
// retention").
type Store struct {
	mu     sync.RWMutex
	seg    int // segment capacity for new segments; 0 = segmentSize
	series map[SeriesKey]*series
}

// NewStore returns an empty monitoring store.
func NewStore() *Store {
	return &Store{series: make(map[SeriesKey]*series)}
}

// SetSegmentSize overrides the granularity of segments created by
// subsequent appends (default 256 samples). Smaller segments tighten
// retention — truncation frees whole segments, leaving at most one
// segment of slack per series — at the cost of more per-segment
// bookkeeping. Segmentation never affects values: prefix sums are
// running cumulative sums over the sample sequence, so every window
// aggregate is bit-identical under any segment size. Values below 1
// restore the default.
func (s *Store) SetSegmentSize(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 0
	}
	s.seg = n
}

// Append records one sample for (component, metric). It returns an error if
// the sample is out of time order for its series.
func (s *Store) Append(component string, metric Metric, sample Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := SeriesKey{Component: component, Metric: metric}
	ser := s.series[k]
	if ser == nil {
		ser = &series{}
		s.series[k] = ser
	}
	if n := ser.total(); n > ser.dropped && sample.T < ser.at(n-1).T {
		return fmt.Errorf("metrics: out-of-order sample for %s: %v after %v",
			k, sample.T, ser.at(n-1).T)
	}
	size := s.seg
	if size == 0 {
		size = segmentSize
	}
	ser.append(sample, size)
	liveSamples.Add(1)
	return nil
}

// MustAppend is Append for simulator-internal callers where out-of-order
// appends indicate a bug; it panics on error.
func (s *Store) MustAppend(component string, metric Metric, sample Sample) {
	if err := s.Append(component, metric, sample); err != nil {
		panic(err)
	}
}

// Truncate drops samples older than the horizon, whole segments at a
// time: a segment is freed only when every sample in it has T < before.
// Window aggregates over any interval at or above the horizon are
// bit-identical before and after — the prefix sums stay anchored to the
// series origin — which is what lets retention run under the fleet's
// byte-determinism contract. It returns the number of samples dropped.
//
// Callers must derive the horizon from the evidence low watermark
// (monitor warm-up, open-event read windows, undiagnosed run history);
// truncating past it discards evidence a future diagnosis may read.
func (s *Store) Truncate(before simtime.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	//lint:allow mapiter per-series truncation is independent and the integer drop count commutes
	for _, ser := range s.series {
		n += ser.truncate(before)
	}
	if n > 0 {
		liveSamples.Add(int64(-n))
		truncatedTotal.Add(int64(n))
	}
	return n
}

// get returns the series for (component, metric), or nil. Callers must
// hold at least the read lock.
func (s *Store) get(component string, metric Metric) *series {
	return s.series[SeriesKey{Component: component, Metric: metric}]
}

// Series returns all retained samples of a series in time order. The
// returned slice is a copy and may be retained by the caller.
func (s *Store) Series(component string, metric Metric) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil
	}
	return ser.copyRange(ser.dropped, ser.total())
}

// Window returns the samples of a series whose timestamps lie in iv.
func (s *Store) Window(component string, metric Metric, iv simtime.Interval) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil
	}
	lo, hi := ser.bounds(iv)
	return ser.copyRange(lo, hi)
}

// WindowMean returns the mean value of the series over iv and the number of
// samples it covers. With zero samples the mean is 0. It runs in O(log n)
// via the prefix sums, independent of the window's length.
func (s *Store) WindowMean(component string, metric Metric, iv simtime.Interval) (mean float64, n int) {
	st := s.WindowStats(component, metric, iv)
	return st.Mean, st.N
}

// Stats summarizes a window of one series.
type Stats struct {
	N    int
	Sum  float64
	Mean float64
	// Std is the population standard deviation of the window.
	Std float64
}

// WindowStats returns count, sum, mean, and standard deviation of the
// series over iv in O(log n), using the per-series prefix sums. This is
// the incremental query the online monitor relies on: evaluating a
// baseline window costs the same whether the store holds a day or a year
// of samples.
func (s *Store) WindowStats(component string, metric Metric, iv simtime.Interval) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return Stats{}
	}
	lo, hi := ser.bounds(iv)
	n := hi - lo
	if n <= 0 {
		return Stats{}
	}
	sum, sum2 := ser.cumAt(hi - 1)
	if lo > 0 {
		psum, psum2 := ser.cumAt(lo - 1)
		sum -= psum
		sum2 -= psum2
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if variance < 0 { // floating-point cancellation
		variance = 0
	}
	return Stats{N: n, Sum: sum, Mean: mean, Std: math.Sqrt(variance)}
}

// Since returns a copy of the samples appended to the series after the
// given cursor position, plus the new cursor. A zero cursor starts at the
// beginning; feeding the returned cursor back yields only samples that
// arrived in between. This is how streaming consumers (the monitor's
// metric watcher) tail the store without re-scanning it. Cursors are
// absolute sample indices, so they stay valid across Truncate: a cursor
// pointing into the dropped prefix resumes at the first retained sample.
func (s *Store) Since(component string, metric Metric, cursor int) ([]Sample, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil, cursor
	}
	if cursor < ser.dropped {
		cursor = ser.dropped
	}
	total := ser.total()
	if cursor >= total {
		return nil, total
	}
	return ser.copyRange(cursor, total), total
}

// Latest returns the most recent retained sample of the series, if any.
func (s *Store) Latest(component string, metric Metric) (Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil || ser.live() == 0 {
		return Sample{}, false
	}
	return ser.at(ser.total() - 1), true
}

// Keys returns every series key in the store, sorted for deterministic
// iteration.
func (s *Store) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Component != keys[j].Component {
			return keys[i].Component < keys[j].Component
		}
		return keys[i].Metric < keys[j].Metric
	})
	return keys
}

// Components returns the distinct component IDs present in the store,
// sorted.
func (s *Store) Components() []string {
	seen := make(map[string]bool)
	for _, k := range s.Keys() {
		seen[k.Component] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MetricsFor returns the metrics recorded for a component, sorted.
func (s *Store) MetricsFor(component string) []Metric {
	var out []Metric
	for _, k := range s.Keys() {
		if k.Component == component {
			out = append(out, k.Metric)
		}
	}
	return out
}

// Len returns the total number of retained samples across all series.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	//lint:allow mapiter live() is a pure per-series count and the integer sum commutes
	for _, ser := range s.series {
		n += ser.live()
	}
	return n
}

// Dropped returns the total number of samples truncated from the store
// over its lifetime.
func (s *Store) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ser := range s.series {
		n += ser.dropped
	}
	return n
}

package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"diads/internal/simtime"
)

// Sample is one monitored observation: the value of a metric on a
// component, averaged over the monitoring interval ending at T.
type Sample struct {
	T simtime.Time
	V float64
}

// SeriesKey identifies one time series in the store.
type SeriesKey struct {
	Component string
	Metric    Metric
}

// String implements fmt.Stringer.
func (k SeriesKey) String() string {
	return fmt.Sprintf("%s/%s", k.Component, k.Metric)
}

// series holds one time series plus running prefix sums of value and
// squared value, so any window aggregate (mean, variance) is two binary
// searches and a subtraction instead of a scan. Appends stay O(1)
// amortized, which is what lets the online monitor query baselines on
// every new sample without re-reading history.
type series struct {
	samples []Sample
	sum     []float64 // sum[i] = Σ samples[:i+1].V
	sum2    []float64 // sum2[i] = Σ samples[:i+1].V²
}

// Store is the central monitoring repository, standing in for the
// management tool's DB2 time-series database. Samples for a series must be
// appended in non-decreasing time order, which is how the sampler produces
// them. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
}

// NewStore returns an empty monitoring store.
func NewStore() *Store {
	return &Store{series: make(map[SeriesKey]*series)}
}

// Append records one sample for (component, metric). It returns an error if
// the sample is out of time order for its series.
func (s *Store) Append(component string, metric Metric, sample Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := SeriesKey{Component: component, Metric: metric}
	ser := s.series[k]
	if ser == nil {
		ser = &series{}
		s.series[k] = ser
	}
	if n := len(ser.samples); n > 0 && sample.T < ser.samples[n-1].T {
		return fmt.Errorf("metrics: out-of-order sample for %s: %v after %v",
			k, sample.T, ser.samples[n-1].T)
	}
	var cum, cum2 float64
	if n := len(ser.samples); n > 0 {
		cum, cum2 = ser.sum[n-1], ser.sum2[n-1]
	}
	ser.samples = append(ser.samples, sample)
	ser.sum = append(ser.sum, cum+sample.V)
	ser.sum2 = append(ser.sum2, cum2+sample.V*sample.V)
	return nil
}

// MustAppend is Append for simulator-internal callers where out-of-order
// appends indicate a bug; it panics on error.
func (s *Store) MustAppend(component string, metric Metric, sample Sample) {
	if err := s.Append(component, metric, sample); err != nil {
		panic(err)
	}
}

// get returns the series for (component, metric), or nil. Callers must
// hold at least the read lock.
func (s *Store) get(component string, metric Metric) *series {
	return s.series[SeriesKey{Component: component, Metric: metric}]
}

// Series returns all samples of a series in time order. The returned slice
// is a copy and may be retained by the caller.
func (s *Store) Series(component string, metric Metric) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil
	}
	out := make([]Sample, len(ser.samples))
	copy(out, ser.samples)
	return out
}

// bounds returns the index range [lo, hi) of samples inside iv. Callers
// must hold at least the read lock.
func (ser *series) bounds(iv simtime.Interval) (lo, hi int) {
	lo = sort.Search(len(ser.samples), func(i int) bool { return ser.samples[i].T >= iv.Start })
	hi = sort.Search(len(ser.samples), func(i int) bool { return ser.samples[i].T >= iv.End })
	return lo, hi
}

// Window returns the samples of a series whose timestamps lie in iv.
func (s *Store) Window(component string, metric Metric, iv simtime.Interval) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil
	}
	lo, hi := ser.bounds(iv)
	out := make([]Sample, hi-lo)
	copy(out, ser.samples[lo:hi])
	return out
}

// WindowMean returns the mean value of the series over iv and the number of
// samples it covers. With zero samples the mean is 0. It runs in O(log n)
// via the prefix sums, independent of the window's length.
func (s *Store) WindowMean(component string, metric Metric, iv simtime.Interval) (mean float64, n int) {
	st := s.WindowStats(component, metric, iv)
	return st.Mean, st.N
}

// Stats summarizes a window of one series.
type Stats struct {
	N    int
	Sum  float64
	Mean float64
	// Std is the population standard deviation of the window.
	Std float64
}

// WindowStats returns count, sum, mean, and standard deviation of the
// series over iv in O(log n), using the per-series prefix sums. This is
// the incremental query the online monitor relies on: evaluating a
// baseline window costs the same whether the store holds a day or a year
// of samples.
func (s *Store) WindowStats(component string, metric Metric, iv simtime.Interval) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return Stats{}
	}
	lo, hi := ser.bounds(iv)
	n := hi - lo
	if n <= 0 {
		return Stats{}
	}
	sum, sum2 := ser.sum[hi-1], ser.sum2[hi-1]
	if lo > 0 {
		sum -= ser.sum[lo-1]
		sum2 -= ser.sum2[lo-1]
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if variance < 0 { // floating-point cancellation
		variance = 0
	}
	return Stats{N: n, Sum: sum, Mean: mean, Std: math.Sqrt(variance)}
}

// Since returns a copy of the samples appended to the series after the
// given cursor position, plus the new cursor. A zero cursor starts at the
// beginning; feeding the returned cursor back yields only samples that
// arrived in between. This is how streaming consumers (the monitor's
// metric watcher) tail the store without re-scanning it.
func (s *Store) Since(component string, metric Metric, cursor int) ([]Sample, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil {
		return nil, cursor
	}
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(ser.samples) {
		return nil, len(ser.samples)
	}
	out := make([]Sample, len(ser.samples)-cursor)
	copy(out, ser.samples[cursor:])
	return out, len(ser.samples)
}

// Latest returns the most recent sample of the series, if any.
func (s *Store) Latest(component string, metric Metric) (Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.get(component, metric)
	if ser == nil || len(ser.samples) == 0 {
		return Sample{}, false
	}
	return ser.samples[len(ser.samples)-1], true
}

// Keys returns every series key in the store, sorted for deterministic
// iteration.
func (s *Store) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Component != keys[j].Component {
			return keys[i].Component < keys[j].Component
		}
		return keys[i].Metric < keys[j].Metric
	})
	return keys
}

// Components returns the distinct component IDs present in the store,
// sorted.
func (s *Store) Components() []string {
	seen := make(map[string]bool)
	for _, k := range s.Keys() {
		seen[k.Component] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MetricsFor returns the metrics recorded for a component, sorted.
func (s *Store) MetricsFor(component string) []Metric {
	var out []Metric
	for _, k := range s.Keys() {
		if k.Component == component {
			out = append(out, k.Metric)
		}
	}
	return out
}

// Len returns the total number of samples across all series.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ser := range s.series {
		n += len(ser.samples)
	}
	return n
}

package metrics

import (
	"fmt"
	"sort"
	"sync"

	"diads/internal/simtime"
)

// Sample is one monitored observation: the value of a metric on a
// component, averaged over the monitoring interval ending at T.
type Sample struct {
	T simtime.Time
	V float64
}

// SeriesKey identifies one time series in the store.
type SeriesKey struct {
	Component string
	Metric    Metric
}

// String implements fmt.Stringer.
func (k SeriesKey) String() string {
	return fmt.Sprintf("%s/%s", k.Component, k.Metric)
}

// Store is the central monitoring repository, standing in for the
// management tool's DB2 time-series database. Samples for a series must be
// appended in non-decreasing time order, which is how the sampler produces
// them.
type Store struct {
	mu     sync.RWMutex
	series map[SeriesKey][]Sample
}

// NewStore returns an empty monitoring store.
func NewStore() *Store {
	return &Store{series: make(map[SeriesKey][]Sample)}
}

// Append records one sample for (component, metric). It returns an error if
// the sample is out of time order for its series.
func (s *Store) Append(component string, metric Metric, sample Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := SeriesKey{Component: component, Metric: metric}
	ser := s.series[k]
	if n := len(ser); n > 0 && sample.T < ser[n-1].T {
		return fmt.Errorf("metrics: out-of-order sample for %s: %v after %v",
			k, sample.T, ser[n-1].T)
	}
	s.series[k] = append(ser, sample)
	return nil
}

// MustAppend is Append for simulator-internal callers where out-of-order
// appends indicate a bug; it panics on error.
func (s *Store) MustAppend(component string, metric Metric, sample Sample) {
	if err := s.Append(component, metric, sample); err != nil {
		panic(err)
	}
}

// Series returns all samples of a series in time order. The returned slice
// is a copy and may be retained by the caller.
func (s *Store) Series(component string, metric Metric) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.series[SeriesKey{Component: component, Metric: metric}]
	out := make([]Sample, len(ser))
	copy(out, ser)
	return out
}

// Window returns the samples of a series whose timestamps lie in iv.
func (s *Store) Window(component string, metric Metric, iv simtime.Interval) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser := s.series[SeriesKey{Component: component, Metric: metric}]
	lo := sort.Search(len(ser), func(i int) bool { return ser[i].T >= iv.Start })
	hi := sort.Search(len(ser), func(i int) bool { return ser[i].T >= iv.End })
	out := make([]Sample, hi-lo)
	copy(out, ser[lo:hi])
	return out
}

// WindowMean returns the mean value of the series over iv and the number of
// samples it covers. With zero samples the mean is 0.
func (s *Store) WindowMean(component string, metric Metric, iv simtime.Interval) (mean float64, n int) {
	w := s.Window(component, metric, iv)
	if len(w) == 0 {
		return 0, 0
	}
	var sum float64
	for _, smp := range w {
		sum += smp.V
	}
	return sum / float64(len(w)), len(w)
}

// Keys returns every series key in the store, sorted for deterministic
// iteration.
func (s *Store) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Component != keys[j].Component {
			return keys[i].Component < keys[j].Component
		}
		return keys[i].Metric < keys[j].Metric
	})
	return keys
}

// Components returns the distinct component IDs present in the store,
// sorted.
func (s *Store) Components() []string {
	seen := make(map[string]bool)
	for _, k := range s.Keys() {
		seen[k.Component] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MetricsFor returns the metrics recorded for a component, sorted.
func (s *Store) MetricsFor(component string) []Metric {
	var out []Metric
	for _, k := range s.Keys() {
		if k.Component == component {
			out = append(out, k.Metric)
		}
	}
	return out
}

// Len returns the total number of samples across all series.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ser := range s.series {
		n += len(ser)
	}
	return n
}

package pipeline

import (
	"fmt"
	"sync"
)

// Registry holds named pipelines — the catalog of diagnosis strategies.
// It is safe for concurrent use; registered pipelines are immutable.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Pipeline
	names  []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Pipeline)}
}

// Register adds a pipeline under its name. Duplicate names are an error:
// strategies must be distinguishable.
func (r *Registry) Register(p *Pipeline) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[p.name]; dup {
		return fmt.Errorf("pipeline registry: duplicate pipeline %q", p.name)
	}
	r.byName[p.name] = p
	r.names = append(r.names, p.name)
	return nil
}

// Get returns the named pipeline.
func (r *Registry) Get(name string) (*Pipeline, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byName[name]
	return p, ok
}

// Names returns the registered pipeline names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

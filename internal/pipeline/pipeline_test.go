package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// constModule returns a module that records its output under its name.
func constModule(name string, deps []string, v any) *Module {
	return &Module{
		Name: name,
		Deps: deps,
		Run: func(ctx context.Context, bb *Blackboard) (any, error) {
			return v, nil
		},
	}
}

func TestTopologicalOrderIsDeterministic(t *testing.T) {
	// Diamond: a -> {b, c} -> d, registered out of order.
	p, err := New("diamond",
		constModule("d", []string{"b", "c"}, 4),
		constModule("b", []string{"a"}, 2),
		constModule("c", []string{"a"}, 3),
		constModule("a", nil, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(p.ModuleNames(), ",")
	// Registration order breaks ties: b before c (both ready after a).
	if got != "a,b,c,d" {
		t.Fatalf("topological order: got %s", got)
	}
}

func TestValidationRejectsBadDAGs(t *testing.T) {
	if _, err := New("cycle",
		&Module{Name: "a", Deps: []string{"b"}, Run: func(context.Context, *Blackboard) (any, error) { return nil, nil }},
		&Module{Name: "b", Deps: []string{"a"}, Run: func(context.Context, *Blackboard) (any, error) { return nil, nil }},
	); err == nil {
		t.Fatal("cycle should be rejected")
	}
	if _, err := New("dangling",
		&Module{Name: "a", Deps: []string{"ghost"}, Run: func(context.Context, *Blackboard) (any, error) { return nil, nil }},
	); err == nil {
		t.Fatal("unknown dependency should be rejected")
	}
	if _, err := New("dup",
		constModule("a", nil, 1), constModule("a", nil, 2),
	); err == nil {
		t.Fatal("duplicate module should be rejected")
	}
	if _, err := New("empty"); err == nil {
		t.Fatal("empty pipeline should be rejected")
	}
}

func TestRunExecutesDAGAndTraces(t *testing.T) {
	p, err := New("sum",
		constModule("a", nil, 1),
		constModule("b", []string{"a"}, 2),
		&Module{Name: "c", Deps: []string{"a", "b"}, Run: func(ctx context.Context, bb *Blackboard) (any, error) {
			a, _ := Get[int](bb, "a")
			b, _ := Get[int](bb, "b")
			return a + b, nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	bb := NewBlackboard()
	trace, err := p.Run(context.Background(), bb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum, _ := Get[int](bb, "c"); sum != 3 {
		t.Fatalf("c = %d, want 3", sum)
	}
	for _, name := range []string{"a", "b", "c"} {
		mt := trace.Module(name)
		if mt == nil || mt.Status != StatusRan {
			t.Fatalf("module %s trace: %+v", name, mt)
		}
	}
}

// TestIndependentModulesRunConcurrently proves DA-style parallelism: two
// modules that both wait for the other to start can only complete if the
// scheduler runs them at the same time.
func TestIndependentModulesRunConcurrently(t *testing.T) {
	bStarted := make(chan struct{})
	cStarted := make(chan struct{})
	meet := func(mine, other chan struct{}) (any, error) {
		close(mine)
		select {
		case <-other:
			return "met", nil
		case <-time.After(5 * time.Second):
			return nil, errors.New("peer never started: modules did not run concurrently")
		}
	}
	p, err := New("parallel",
		constModule("a", nil, 1),
		&Module{Name: "b", Deps: []string{"a"}, Run: func(context.Context, *Blackboard) (any, error) {
			return meet(bStarted, cStarted)
		}},
		&Module{Name: "c", Deps: []string{"a"}, Run: func(context.Context, *Blackboard) (any, error) {
			return meet(cStarted, bStarted)
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), NewBlackboard(), Options{MaxParallel: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestCancellationMidPipeline cancels the context while two independent
// modules (the DA ∥ CR shape) are in flight; the run must return the
// context error and the trace must show the downstream module never ran.
func TestCancellationMidPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	inFlight := 0
	block := func(runCtx context.Context, bb *Blackboard) (any, error) {
		mu.Lock()
		inFlight++
		if inFlight == 2 {
			cancel() // both DA and CR are now mid-flight
		}
		mu.Unlock()
		<-runCtx.Done()
		return nil, runCtx.Err()
	}
	p, err := New("cancelable",
		constModule("co", nil, 1),
		&Module{Name: "da", Deps: []string{"co"}, Run: block},
		&Module{Name: "cr", Deps: []string{"co"}, Run: block},
		constModule("sd", []string{"da", "cr"}, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := p.Run(ctx, NewBlackboard(), Options{MaxParallel: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if mt := trace.Module("sd"); mt.Status != StatusNotRun {
		t.Fatalf("sd should never run after cancellation, got %s", mt.Status)
	}
	if mt := trace.Module("co"); mt.Status != StatusRan {
		t.Fatalf("co ran before the cancel, got %s", mt.Status)
	}
}

// TestPreCanceledContextRunsNothing mirrors the old workflow's behavior:
// a context canceled before Run starts no modules at all.
func TestPreCanceledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := New("noop", constModule("a", nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := p.Run(ctx, NewBlackboard(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if mt := trace.Module("a"); mt.Status != StatusNotRun {
		t.Fatalf("a should not run, got %s", mt.Status)
	}
}

func TestModuleErrorCancelsSiblingsAndPropagates(t *testing.T) {
	boom := errors.New("boom")
	siblingCanceled := false
	p, err := New("failing",
		constModule("a", nil, 1),
		&Module{Name: "bad", Deps: []string{"a"}, Run: func(context.Context, *Blackboard) (any, error) {
			return nil, boom
		}},
		&Module{Name: "slow", Deps: []string{"a"}, Run: func(ctx context.Context, bb *Blackboard) (any, error) {
			select {
			case <-ctx.Done():
				siblingCanceled = true
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return "done", nil
			}
		}},
		constModule("after", []string{"bad", "slow"}, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := p.Run(context.Background(), NewBlackboard(), Options{MaxParallel: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if !strings.Contains(err.Error(), "module bad") {
		t.Fatalf("error should name the failing module: %v", err)
	}
	if !siblingCanceled {
		t.Fatal("in-flight sibling should see the cancellation")
	}
	if mt := trace.Module("after"); mt.Status != StatusNotRun {
		t.Fatalf("downstream of failure should not run, got %s", mt.Status)
	}
}

func TestHaltShortCircuitsDownstream(t *testing.T) {
	p, err := New("shortcircuit",
		&Module{Name: "pd", Run: func(context.Context, *Blackboard) (any, error) {
			return Halt{Out: "plan changed"}, nil
		}},
		constModule("co", []string{"pd"}, 2),
		constModule("ia", []string{"co"}, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	bb := NewBlackboard()
	trace, err := p.Run(context.Background(), bb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := Get[string](bb, "pd"); v != "plan changed" {
		t.Fatalf("halting module's output should be recorded, got %q", v)
	}
	if mt := trace.Module("pd"); mt.Status != StatusRan || mt.Note != "short-circuit" {
		t.Fatalf("pd trace: %+v", mt)
	}
	for _, name := range []string{"co", "ia"} {
		mt := trace.Module(name)
		if mt.Status != StatusSkipped || !strings.Contains(mt.Note, "pd") {
			t.Fatalf("%s should be skipped with the short-circuit origin, got %+v", name, mt)
		}
	}
}

func TestCacheMiddlewareHitAndMiss(t *testing.T) {
	store := map[string]any{}
	runs := 0
	m := &Module{
		Name: "apg",
		Run: func(context.Context, *Blackboard) (any, error) {
			runs++
			return "built", nil
		},
		Cache: &CacheSpec{
			Key: func(bb *Blackboard) (string, bool) { return "plan-sig", true },
			Get: func(bb *Blackboard, key string) (any, bool) { v, ok := store[key]; return v, ok },
			Put: func(bb *Blackboard, key string, v any) { store[key] = v },
		},
	}
	p, err := New("cached", m)
	if err != nil {
		t.Fatal(err)
	}

	trace1, err := p.Run(context.Background(), NewBlackboard(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mt := trace1.Module("apg"); mt.Status != StatusRan || mt.Cache != CacheMiss {
		t.Fatalf("first run should miss: %+v", mt)
	}

	bb2 := NewBlackboard()
	trace2, err := p.Run(context.Background(), bb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mt := trace2.Module("apg"); mt.Status != StatusCacheHit || mt.Cache != CacheHit {
		t.Fatalf("second run should hit: %+v", mt)
	}
	if v, _ := Get[string](bb2, "apg"); v != "built" {
		t.Fatalf("cache hit should install the output, got %q", v)
	}
	if runs != 1 {
		t.Fatalf("module ran %d times, want 1", runs)
	}
}

// TestCachedHaltStillShortCircuits checks that a halting module's
// outcome survives the cache: a later run satisfied from the cache must
// short-circuit exactly as the original run did.
func TestCachedHaltStillShortCircuits(t *testing.T) {
	store := map[string]any{}
	p, err := New("cached-halt",
		&Module{
			Name: "pd",
			Run: func(context.Context, *Blackboard) (any, error) {
				return Halt{Out: "plan changed"}, nil
			},
			Cache: &CacheSpec{
				Key: func(bb *Blackboard) (string, bool) { return "sig", true },
				Get: func(bb *Blackboard, key string) (any, bool) { v, ok := store[key]; return v, ok },
				Put: func(bb *Blackboard, key string, v any) { store[key] = v },
			},
		},
		constModule("co", []string{"pd"}, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), NewBlackboard(), Options{}); err != nil {
		t.Fatal(err)
	}

	bb2 := NewBlackboard()
	trace, err := p.Run(context.Background(), bb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mt := trace.Module("pd"); mt.Status != StatusCacheHit {
		t.Fatalf("pd should be cache-satisfied, got %+v", mt)
	}
	if v, _ := Get[string](bb2, "pd"); v != "plan changed" {
		t.Fatalf("cache hit should install the unwrapped output, got %q", v)
	}
	if mt := trace.Module("co"); mt.Status != StatusSkipped {
		t.Fatalf("cached halt must still short-circuit downstream, got %+v", mt)
	}
}

// TestInteractiveStepWithEditHook drives the DAG one module at a time
// and edits an intermediate output between steps — the OverrideCOS-style
// hook — verifying dependency enforcement replaces precondition checks.
func TestInteractiveStepWithEditHook(t *testing.T) {
	p, err := New("interactive",
		constModule("co", nil, []int{1, 2, 3}),
		&Module{Name: "da", Deps: []string{"co"}, Run: func(ctx context.Context, bb *Blackboard) (any, error) {
			cos, _ := Get[[]int](bb, "co")
			return len(cos), nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	bb := NewBlackboard()

	// Out-of-order execution fails from the dependency declaration.
	if _, err := p.RunModule(context.Background(), "da", bb); err == nil ||
		!strings.Contains(err.Error(), "requires module co") {
		t.Fatalf("da before co should fail with the dependency, got %v", err)
	}
	if _, err := p.RunModule(context.Background(), "nope", bb); err == nil {
		t.Fatal("unknown module should fail")
	}

	if _, err := p.RunModule(context.Background(), "co", bb); err != nil {
		t.Fatal(err)
	}
	// The administrator prunes the intermediate result before the next step.
	bb.Put("co", []int{9})
	mt, err := p.RunModule(context.Background(), "da", bb)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Status != StatusRan {
		t.Fatalf("da trace: %+v", mt)
	}
	if n, _ := Get[int](bb, "da"); n != 1 {
		t.Fatalf("da should see the edited COS, got %d", n)
	}
}

func TestSequentialOptionNeverOverlaps(t *testing.T) {
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	mod := func(name string, deps []string) *Module {
		return &Module{Name: name, Deps: deps, Run: func(context.Context, *Blackboard) (any, error) {
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return name, nil
		}}
	}
	p, err := New("seq", mod("a", nil), mod("b", []string{"a"}), mod("c", []string{"a"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), NewBlackboard(), Options{MaxParallel: 1}); err != nil {
		t.Fatal(err)
	}
	if maxInFlight != 1 {
		t.Fatalf("sequential engine overlapped modules: max in flight %d", maxInFlight)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"diads", "san-only"} {
		p, err := New(name, constModule("m", nil, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := fmt.Sprint(r.Names()); got != "[diads san-only]" {
		t.Fatalf("names: %s", got)
	}
	if _, ok := r.Get("diads"); !ok {
		t.Fatal("diads should be registered")
	}
	if _, ok := r.Get("ghost"); ok {
		t.Fatal("ghost should not resolve")
	}
	dup, err := New("diads", constModule("m", nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register(dup); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}
